(* Shared helpers for the experiment harness. *)

let pf = Format.printf

let section title =
  pf "@.==============================================================@.";
  pf "%s@." title;
  pf "==============================================================@."

let paper fmt = pf ("  paper:    " ^^ fmt ^^ "@.")
let measured fmt = pf ("  measured: " ^^ fmt ^^ "@.")
let note fmt = pf ("  note:     " ^^ fmt ^^ "@.")

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

(* A deep copy of a knowledge base sharing dictionaries, with an optional
   replacement rule set. *)
let copy_kb ?rules kb =
  let kb2 = Kb.Gamma.create_like kb in
  Kb.Storage.iter
    (fun ~id:_ ~r ~x ~c1 ~y ~c2 ~w ->
      ignore (Kb.Gamma.add_fact kb2 ~r ~x ~c1 ~y ~c2 ~w))
    (Kb.Gamma.pi kb);
  List.iter (Kb.Gamma.add_rule kb2)
    (match rules with Some rs -> rs | None -> Kb.Gamma.rules kb);
  List.iter (Kb.Gamma.add_funcon kb2) (Kb.Gamma.omega kb);
  kb2

let minutes s = s /. 60.

(* --- run metadata for BENCH_*.json artifacts --- *)

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    if line = "" then None else Some line
  with _ -> None

(* Bump when the shape of a BENCH_*.json file changes. *)
let bench_schema_version = 3

(* [meta_json ~engine] identifies the run: schema version, engine variant,
   pool size, host parallelism, and the git revision (null outside a
   checkout). *)
let meta_json ~engine =
  Obs.Json.Obj
    [
      ("schema_version", Obs.Json.Int bench_schema_version);
      ("engine", Obs.Json.String engine);
      ("probkb_domains", Obs.Json.Int (Pool.env_domains ()));
      ("host_cores", Obs.Json.Int (Domain.recommended_domain_count ()));
      ( "git_rev",
        match git_rev () with
        | Some r -> Obs.Json.String r
        | None -> Obs.Json.Null );
    ]

(* Modeled DBMS time: measured in-process seconds plus the per-statement
   overhead derived from the paper's own Table 3 (see
   Relational.Dbms_model). *)
let modeled ?(tables = 0) ~statements measured =
  Relational.Dbms_model.modeled_seconds Relational.Dbms_model.default
    ~statements ~tables_created:tables ~measured

let precision_of noise kb =
  let correct = ref 0 and total = ref 0 in
  Kb.Storage.iter
    (fun ~id:_ ~r ~x ~c1 ~y ~c2 ~w ->
      if Relational.Table.is_null_weight w then begin
        incr total;
        if Workload.Noise.is_correct noise ~r ~x ~c1 ~y ~c2 then incr correct
      end)
    (Kb.Gamma.pi kb);
  (!correct, !total)

(* Global options parsed by main. *)
type options = {
  mutable experiments : string list; (* empty = all *)
  mutable full : bool; (* paper-scale sweeps *)
  mutable scale : float option; (* override default scale *)
  mutable quick : bool; (* CI-sized runs *)
  mutable out : string option; (* artifact path override *)
  mutable compare : string option; (* baseline BENCH_parallel.json *)
  mutable out_pipeline : string option; (* pipeline artifact path override *)
  mutable compare_pipeline : string option; (* baseline BENCH_pipeline.json *)
  mutable out_incremental : string option;
      (* incremental artifact path override *)
  mutable compare_incremental : string option;
      (* baseline BENCH_incremental.json *)
  mutable out_local : string option; (* local artifact path override *)
  mutable compare_local : string option; (* baseline BENCH_local.json *)
  mutable out_serve : string option; (* serve artifact path override *)
  mutable compare_serve : string option; (* baseline BENCH_serve.json *)
  mutable out_hybrid : string option; (* hybrid artifact path override *)
  mutable compare_hybrid : string option; (* baseline BENCH_hybrid.json *)
  mutable out_storage : string option; (* storage artifact path override *)
  mutable compare_storage : string option; (* baseline BENCH_storage.json *)
}

let options =
  {
    experiments = [];
    full = false;
    scale = None;
    quick = false;
    out = None;
    compare = None;
    out_pipeline = None;
    compare_pipeline = None;
    out_incremental = None;
    compare_incremental = None;
    out_local = None;
    compare_local = None;
    out_serve = None;
    compare_serve = None;
    out_hybrid = None;
    compare_hybrid = None;
    out_storage = None;
    compare_storage = None;
  }

(* The parallel experiment's artifact path ([--out] overrides the
   committed default so a fresh run can sit next to the baseline). *)
let parallel_out () = Option.value options.out ~default:"BENCH_parallel.json"

(* Same for the pipeline experiment ([--out-pipeline]). *)
let pipeline_out () =
  Option.value options.out_pipeline ~default:"BENCH_pipeline.json"

(* Same for the incremental experiment ([--out-incremental]). *)
let incremental_out () =
  Option.value options.out_incremental ~default:"BENCH_incremental.json"

(* Same for the local-grounding experiment ([--out-local]). *)
let local_out () = Option.value options.out_local ~default:"BENCH_local.json"

(* Same for the serving experiment ([--out-serve]). *)
let serve_out () = Option.value options.out_serve ~default:"BENCH_serve.json"

(* Same for the hybrid-inference experiment ([--out-hybrid]). *)
let hybrid_out () =
  Option.value options.out_hybrid ~default:"BENCH_hybrid.json"

(* Same for the out-of-core storage experiment ([--out-storage]). *)
let storage_out () =
  Option.value options.out_storage ~default:"BENCH_storage.json"

let scale_or default =
  match options.scale with
  | Some s -> s
  | None -> if options.quick then default /. 4. else default
