(* Incremental maintenance: DRed delete-rederive + delta ingest on a
   live session vs re-running the batch pipeline after every epoch, per
   pool size.

   One deterministic epoch stream (alternating small retractions and
   ingest batches over a ReVerb-Sherlock KB) is replayed twice per pool
   size: once through [Incremental.Dred] on a continuously-maintained
   store, once by rebuilding the KB from the surviving extractions and
   re-running [Ground.run] from scratch.  Both sides must land on the
   same closure; the artifact records the wall-clock of each side.

   Writes BENCH_incremental.json with the same
   [stages.{stage}.seconds.{d}] shape as BENCH_parallel.json, so
   [Compare] gates it with the same implementation. *)

open Bench_util
module Rng = Workload.Rng
module Gamma = Kb.Gamma
module Storage = Kb.Storage

let stage_names = [ "dred"; "reexpand" ]

type op =
  | Retract of (int * int * int * int * int) list
  | Ingest of (int * int * int * int * int * float) list

let base_facts kb =
  let acc = ref [] in
  Storage.iter
    (fun ~id:_ ~r ~x ~c1 ~y ~c2 ~w -> acc := (r, x, c1, y, c2, w) :: !acc)
    (Gamma.pi kb);
  List.rev !acc

let kb_of proto facts =
  let kb = Gamma.create_like proto in
  List.iter (Gamma.add_rule kb) (Gamma.rules proto);
  List.iter
    (fun (r, x, c1, y, c2, w) -> ignore (Gamma.add_fact kb ~r ~x ~c1 ~y ~c2 ~w))
    facts;
  kb

let closure_keys kb =
  let acc = ref [] in
  Storage.iter
    (fun ~id:_ ~r ~x ~c1 ~y ~c2 ~w:_ -> acc := (r, x, c1, y, c2) :: !acc)
    (Gamma.pi kb);
  List.sort compare !acc

let run () =
  section "Incremental maintenance — DRed epochs vs full re-expansion";
  let scale = scale_or 0.03 in
  let domains = if options.quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  let host_cores = Domain.recommended_domain_count () in
  let epochs = if options.quick then 6 else 10 in
  let batch = 4 in
  let g =
    Workload.Reverb_sherlock.generate
      { Workload.Reverb_sherlock.default_config with scale }
  in
  let proto = Workload.Reverb_sherlock.kb g in
  let base = Array.of_list (base_facts proto) in
  let rng = Rng.create 42 in
  Rng.shuffle rng base;
  (* Hold out the tail of the shuffled extractions: they arrive through
     the ingest epochs; the rest is the initial load. *)
  let holdout = (epochs / 2) * batch in
  let n_initial = Array.length base - holdout in
  let initial = Array.to_list (Array.sub base 0 n_initial) in
  (* The op stream is fixed up-front (keys, not ids) so the maintained
     and rebuilt sides — and every pool size — replay the same epochs. *)
  let next_held = ref n_initial in
  let ops =
    List.init epochs (fun i ->
        if i mod 2 = 0 && !next_held < Array.length base then begin
          let chunk =
            Array.to_list (Array.sub base !next_held batch)
          in
          next_held := !next_held + batch;
          Ingest chunk
        end
        else
          Retract
            (List.init batch (fun _ ->
                 let r, x, c1, y, c2, _w =
                   base.(Rng.int rng n_initial)
                 in
                 (r, x, c1, y, c2))))
  in
  note
    "ReVerb-Sherlock at scale %.3f: %d extractions loaded, %d held out; %d \
     epochs of %d-fact retract/ingest ops"
    scale n_initial holdout epochs batch;
  let times = Hashtbl.create 16 in
  let identical = ref true in
  let cone_sizes = ref [] in
  List.iter
    (fun d ->
      Pool.set_default_size d;
      (* Maintained side: expand once (not timed), then apply every epoch
         through DRed. *)
      let live = kb_of proto initial in
      let result = Grounding.Ground.run live in
      let st = Incremental.Dred.create live result.Grounding.Ground.graph in
      let record_cones = d = List.hd domains in
      let (), dred_s =
        time (fun () ->
            List.iter
              (fun op ->
                match op with
                | Retract keys ->
                  let stats = Incremental.Dred.retract_keys st keys in
                  if record_cones then
                    cone_sizes :=
                      stats.Incremental.Dred.cone :: !cone_sizes
                | Ingest facts -> ignore (Incremental.Dred.ingest st facts))
              ops)
      in
      (* Rebuild side: after every epoch, re-run the batch pipeline on
         the surviving extractions. *)
      let current = ref initial in
      let apply op =
        match op with
        | Retract keys ->
          current :=
            List.filter
              (fun (r, x, c1, y, c2, _) -> not (List.mem (r, x, c1, y, c2) keys))
              !current
        | Ingest facts -> current := !current @ facts
      in
      let last_rebuild = ref None in
      let (), full_s =
        time (fun () ->
            List.iter
              (fun op ->
                apply op;
                let kb = kb_of proto !current in
                ignore (Grounding.Ground.run kb);
                last_rebuild := Some kb)
              ops)
      in
      (match !last_rebuild with
      | Some kb ->
        (* The maintained closure must match the last rebuild exactly:
           retracting an extraction leaves its still-derivable
           consequences in both stores. *)
        if closure_keys live <> closure_keys kb then identical := false
      | None -> ());
      Hashtbl.replace times ("dred", d) dred_s;
      Hashtbl.replace times ("reexpand", d) full_s;
      measured "domains=%d  dred %7.3fs | full re-expansion %7.3fs (%.1fx)" d
        dred_s full_s
        (full_s /. Float.max 1e-9 dred_s))
    domains;
  Pool.set_default_size (Pool.env_domains ());
  let cones = List.rev !cone_sizes in
  let cone_max = List.fold_left max 0 cones in
  let cone_mean =
    if cones = [] then 0.
    else
      float_of_int (List.fold_left ( + ) 0 cones)
      /. float_of_int (List.length cones)
  in
  measured "closures identical after every epoch stream: %b" !identical;
  measured "retraction cones: mean %.1f facts, max %d" cone_mean cone_max;
  let t stage d = Hashtbl.find times (stage, d) in
  let oversubscribed d = d > host_cores in
  let per_domain f = List.map (fun d -> (string_of_int d, f d)) domains in
  let stage_json stage =
    ( stage,
      Obs.Json.Obj
        [
          ( "seconds",
            Obs.Json.Obj (per_domain (fun d -> Obs.Json.Float (t stage d))) );
          ( "oversubscribed",
            Obs.Json.Obj (per_domain (fun d -> Obs.Json.Bool (oversubscribed d)))
          );
        ] )
  in
  let json =
    Obs.Json.Obj
      [
        ("meta", meta_json ~engine:"incremental");
        ("domains", Obs.Json.List (List.map (fun d -> Obs.Json.Int d) domains));
        ("scale", Obs.Json.Float scale);
        ("host_cores", Obs.Json.Int host_cores);
        ("epochs", Obs.Json.Int epochs);
        ("batch", Obs.Json.Int batch);
        ("initial_extractions", Obs.Json.Int n_initial);
        ("identical_results", Obs.Json.Bool !identical);
        ( "cone",
          Obs.Json.Obj
            [
              ("mean", Obs.Json.Float cone_mean);
              ("max", Obs.Json.Int cone_max);
            ] );
        ( "dred_speedup",
          Obs.Json.Obj
            (per_domain (fun d ->
                 Obs.Json.Float (t "reexpand" d /. Float.max 1e-9 (t "dred" d))))
        );
        ("stages", Obs.Json.Obj (List.map stage_json stage_names));
      ]
  in
  let out = incremental_out () in
  let oc = open_out out in
  output_string oc (Obs.Json.to_pretty_string json);
  output_char oc '\n';
  close_out oc;
  note "wrote %s" out
