(* The bench regression gate: diff a fresh BENCH_*.json artifact against
   a committed baseline, per stage and pool size.  Generic over any
   artifact with a [stages.{stage}.seconds.{domain}] block (currently
   BENCH_parallel.json and BENCH_pipeline.json).

   Comparison rules:
   - entries flagged oversubscribed in EITHER file are skipped (a pool
     larger than the host's cores measures scheduler contention, not the
     code under test);
   - stage/domain cells below an absolute floor (50 ms in both files) are
     skipped — at that magnitude the delta is timer noise;
   - a wall-clock increase beyond the threshold (default 25%) on any
     remaining cell fails the gate. *)

let floor_seconds = 0.05
let default_threshold = 0.25

type cell = {
  stage : string;
  domain : string;
  base_s : float;
  fresh_s : float;
  delta : float; (* (fresh - base) / base *)
  skipped : string option; (* reason, when excluded from the gate *)
}

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Obs.Json.of_string s

let member_exn name json what =
  match Obs.Json.member name json with
  | Some v -> v
  | None -> failwith (Printf.sprintf "%s: missing %S" what name)

let float_field json name what =
  match Obs.Json.member name json |> Option.map Obs.Json.to_float with
  | Some (Some f) -> f
  | _ -> failwith (Printf.sprintf "%s: %S is not a number" what name)

let schema_version json =
  match Obs.Json.member "meta" json with
  | Some meta ->
    Option.bind (Obs.Json.member "schema_version" meta) Obs.Json.to_int
  | None -> None

(* Per-stage seconds and oversubscription flags, keyed by domain count.
   Schema v2 files predate the [oversubscribed] block; treat every entry
   as eligible there. *)
let stage_cells json what =
  let stages =
    match member_exn "stages" json what with
    | Obs.Json.Obj fields -> fields
    | _ -> failwith (what ^ ": \"stages\" is not an object")
  in
  List.map
    (fun (stage, body) ->
      let seconds =
        match member_exn "seconds" body (what ^ "." ^ stage) with
        | Obs.Json.Obj fields ->
          List.map
            (fun (d, v) ->
              match Obs.Json.to_float v with
              | Some f -> (d, f)
              | None -> failwith (what ^ ": non-numeric seconds"))
            fields
        | _ -> failwith (what ^ ": \"seconds\" is not an object")
      in
      let oversub d =
        match Obs.Json.member "oversubscribed" body with
        | Some (Obs.Json.Obj fields) -> (
          match List.assoc_opt d fields with
          | Some (Obs.Json.Bool b) -> b
          | _ -> false)
        | _ -> false
      in
      (stage, seconds, oversub))
    stages

let diff ~baseline ~fresh =
  let base_stages = stage_cells baseline "baseline" in
  let fresh_stages = stage_cells fresh "fresh" in
  List.concat_map
    (fun (stage, base_seconds, base_oversub) ->
      match
        List.find_opt (fun (s, _, _) -> s = stage) fresh_stages
      with
      | None -> []
      | Some (_, fresh_seconds, fresh_oversub) ->
        List.filter_map
          (fun (d, base_s) ->
            match List.assoc_opt d fresh_seconds with
            | None -> None
            | Some fresh_s ->
              let skipped =
                if base_oversub d || fresh_oversub d then
                  Some "oversubscribed"
                else if base_s < floor_seconds && fresh_s < floor_seconds
                then Some "below floor"
                else None
              in
              Some
                {
                  stage;
                  domain = d;
                  base_s;
                  fresh_s;
                  delta = (fresh_s -. base_s) /. Float.max 1e-9 base_s;
                  skipped;
                })
          base_seconds)
    base_stages

let pp_table ppf cells =
  Format.fprintf ppf "  %-8s %8s %10s %10s %8s  %s@." "stage" "domains"
    "baseline" "fresh" "delta" "gate";
  List.iter
    (fun c ->
      Format.fprintf ppf "  %-8s %8s %9.3fs %9.3fs %+7.1f%%  %s@." c.stage
        c.domain c.base_s c.fresh_s (c.delta *. 100.)
        (match c.skipped with
        | Some reason -> "skipped (" ^ reason ^ ")"
        | None -> "checked"))
    cells

(* Returns the number of regressions (0 = gate passed). *)
let run ?(threshold = default_threshold) ~baseline_path ~fresh_path () =
  let baseline = load baseline_path and fresh = load fresh_path in
  Format.printf "@.bench regression gate: %s vs baseline %s@." fresh_path
    baseline_path;
  (match (schema_version baseline, schema_version fresh) with
  | Some b, Some f when b <> f ->
    Format.printf "  note: schema versions differ (baseline v%d, fresh v%d)@."
      b f
  | None, _ ->
    Format.printf "  note: baseline has no schema version (pre-v2 file)@."
  | _ -> ());
  let cells = diff ~baseline ~fresh in
  if cells = [] then begin
    Format.printf "  no comparable stage entries — gate not applicable@.";
    0
  end
  else begin
    pp_table Format.std_formatter cells;
    let regressions =
      List.filter (fun c -> c.skipped = None && c.delta > threshold) cells
    in
    List.iter
      (fun c ->
        Format.printf "  REGRESSION: %s at %s domains is %.1f%% slower \
                       (threshold %.0f%%)@."
          c.stage c.domain (c.delta *. 100.) (threshold *. 100.))
      regressions;
    if regressions = [] then
      Format.printf "  gate passed: no stage regressed beyond %.0f%%@."
        (threshold *. 100.);
    List.length regressions
  end
