(* Treewidth-aware hybrid inference vs pure chromatic Gibbs on the
   grounded ReVerb-Sherlock workload.

   The ground graph decomposes into thousands of small or low-treewidth
   components plus a couple of dense cores (at scale 0.03: ~10k
   components, one ~24k-variable core).  The hybrid dispatcher settles
   every low-width component exactly (enumeration under the cap,
   junction-tree variable elimination under the width bound) and samples
   only the cores; pure chromatic Gibbs samples everything.  Measured
   here, per pool size:

   - wall clock of both routes (the [stages] shape [Compare] gates);
   - the fraction of variables settled exactly and the per-solver
     component counts;
   - identity: hybrid marginals on enumerable components are
     bit-identical to enumeration, and the whole hybrid result is
     bit-identical across pool sizes;
   - accuracy: the pure sampler's error and seed-to-seed spread on the
     exactly-settled subset (the hybrid answer there is ground truth,
     with zero variance by construction).

   Writes BENCH_hybrid.json. *)

open Bench_util
module Fgraph = Factor_graph.Fgraph

let stage_names = [ "pure"; "hybrid" ]

let run () =
  section "Hybrid inference — per-component dispatch vs pure chromatic Gibbs";
  let scale = scale_or 0.03 in
  let domains = if options.quick then [ 1; 4 ] else [ 1; 2; 4 ] in
  let host_cores = Domain.recommended_domain_count () in
  let samples = if options.quick then 100 else 500 in
  let gibbs = { Inference.Gibbs.default_options with samples } in
  let hybrid_options = { Inference.Hybrid.default_options with gibbs } in
  let g =
    Workload.Reverb_sherlock.generate
      { Workload.Reverb_sherlock.default_config with scale }
  in
  let proto = Workload.Reverb_sherlock.kb g in
  let times = Hashtbl.create 16 in
  let reference = ref None in
  let pool_identical = ref true in
  let exact_identical = ref true in
  let jtree_exact = ref true in
  let report_json = ref Obs.Json.Null in
  let accuracy_json = ref Obs.Json.Null in
  List.iter
    (fun d ->
      Pool.set_default_size d;
      let kb = copy_kb proto in
      let r = Grounding.Ground.run kb in
      let c = Fgraph.compile r.Grounding.Ground.graph in
      let pure, pure_s =
        time (fun () -> Inference.Chromatic.marginals ~options:gibbs c)
      in
      let (hyb, report), hybrid_s =
        time (fun () -> Inference.Hybrid.solve ~options:hybrid_options c)
      in
      Hashtbl.replace times ("pure", d) pure_s;
      Hashtbl.replace times ("hybrid", d) hybrid_s;
      let frac = Inference.Hybrid.exact_fraction report in
      measured
        "domains=%d  pure %7.3fs | hybrid %7.3fs (%.2fx)  exact %.1f%% of %d \
         vars"
        d pure_s hybrid_s
        (pure_s /. Float.max 1e-9 hybrid_s)
        (100. *. frac) report.Inference.Hybrid.total_vars;
      (match !reference with
      | None ->
        reference := Some hyb;
        measured
          "dispatch: %d enumerated, %d junction-tree (max width %d), %d \
           sampled"
          report.Inference.Hybrid.enumerated_components
          report.Inference.Hybrid.eliminated_components
          report.Inference.Hybrid.max_width_solved
          report.Inference.Hybrid.sampled_components;
        report_json :=
          Obs.Json.Obj
            [
              ("total_vars", Obs.Json.Int report.Inference.Hybrid.total_vars);
              ("exact_vars", Obs.Json.Int report.Inference.Hybrid.exact_vars);
              ( "sampled_vars",
                Obs.Json.Int report.Inference.Hybrid.sampled_vars );
              ("exact_fraction", Obs.Json.Float frac);
              ( "enumerated_components",
                Obs.Json.Int report.Inference.Hybrid.enumerated_components );
              ( "eliminated_components",
                Obs.Json.Int report.Inference.Hybrid.eliminated_components );
              ( "sampled_components",
                Obs.Json.Int report.Inference.Hybrid.sampled_components );
              ( "max_width_solved",
                Obs.Json.Int report.Inference.Hybrid.max_width_solved );
              ( "exact_seconds",
                Obs.Json.Float report.Inference.Hybrid.exact_seconds );
              ( "gibbs_seconds",
                Obs.Json.Float report.Inference.Hybrid.gibbs_seconds );
            ];
        (* Identity on the exact subset: enumerated components must be
           bit-for-bit the canonical enumeration; eliminated components
           are cross-checked against enumeration where it is still
           affordable (≤ 20 vars — a 25-var component enumerates in
           minutes, which is the point of the junction tree). *)
        let exact_vars = ref [] in
        Array.iteri
          (fun i comp ->
            match
              report.Inference.Hybrid.components.(i).Inference.Hybrid.solver
            with
            | Inference.Hybrid.Enumerated ->
              let e = Inference.Exact.enumerate comp in
              Array.iteri
                (fun l v ->
                  exact_vars := v :: !exact_vars;
                  if not (Float.equal hyb.(v) e.(l)) then
                    exact_identical := false)
                comp.Inference.Decompose.vars
            | Inference.Hybrid.Eliminated ->
              if Inference.Decompose.nvars comp <= 20 then begin
                let e = Inference.Exact.enumerate comp in
                Array.iteri
                  (fun l v ->
                    if Float.abs (hyb.(v) -. e.(l)) > 1e-9 then
                      jtree_exact := false)
                  comp.Inference.Decompose.vars
              end;
              Array.iter
                (fun v -> exact_vars := v :: !exact_vars)
                comp.Inference.Decompose.vars
            | Inference.Hybrid.Sampled -> ())
          (Inference.Decompose.components c);
        measured
          "enumerated subset bit-identical: %b | jtree within 1e-9 of \
           enumeration: %b"
          !exact_identical !jtree_exact;
        (* Sampler error on ground truth: the hybrid answer on the exact
           subset is exact, so the pure sampler's deviation there is its
           true error; a second seed shows the seed-to-seed spread the
           hybrid route eliminates. *)
        let pure2 =
          Inference.Chromatic.marginals
            ~options:{ gibbs with seed = gibbs.Inference.Gibbs.seed + 1 }
            c
        in
        let n = List.length !exact_vars in
        let mean xs =
          List.fold_left (fun a v -> a +. xs v) 0. !exact_vars
          /. float_of_int (max 1 n)
        and worst xs =
          List.fold_left (fun a v -> Float.max a (xs v)) 0. !exact_vars
        in
        let err m v = Float.abs (m.(v) -. hyb.(v)) in
        let spread v = Float.abs (pure.(v) -. pure2.(v)) in
        measured
          "pure-Gibbs error on the exact subset: mean %.5f max %.5f (spread \
           across seeds: mean %.5f max %.5f)"
          (mean (err pure)) (worst (err pure)) (mean spread) (worst spread);
        accuracy_json :=
          Obs.Json.Obj
            [
              ("exact_subset_vars", Obs.Json.Int n);
              ("gibbs_mean_error", Obs.Json.Float (mean (err pure)));
              ("gibbs_max_error", Obs.Json.Float (worst (err pure)));
              ("gibbs_mean_seed_spread", Obs.Json.Float (mean spread));
              ("gibbs_max_seed_spread", Obs.Json.Float (worst spread))
            ]
      | Some first -> if hyb <> first then pool_identical := false))
    domains;
  Pool.set_default_size (Pool.env_domains ());
  measured "hybrid marginals bit-identical across pool sizes: %b"
    !pool_identical;
  note "pure Gibbs sweeps every variable; hybrid samples only the \
        high-treewidth cores";
  let t stage d = Hashtbl.find times (stage, d) in
  let oversubscribed d = d > host_cores in
  let per_domain f = List.map (fun d -> (string_of_int d, f d)) domains in
  let stage_json stage =
    ( stage,
      Obs.Json.Obj
        [
          ( "seconds",
            Obs.Json.Obj (per_domain (fun d -> Obs.Json.Float (t stage d))) );
          ( "oversubscribed",
            Obs.Json.Obj (per_domain (fun d -> Obs.Json.Bool (oversubscribed d)))
          );
        ] )
  in
  let json =
    Obs.Json.Obj
      [
        ("meta", meta_json ~engine:"hybrid");
        ("domains", Obs.Json.List (List.map (fun d -> Obs.Json.Int d) domains));
        ("scale", Obs.Json.Float scale);
        ("host_cores", Obs.Json.Int host_cores);
        ("samples", Obs.Json.Int samples);
        ("dispatch", !report_json);
        ("accuracy", !accuracy_json);
        ("exact_subset_bitwise", Obs.Json.Bool !exact_identical);
        ("jtree_matches_enumeration", Obs.Json.Bool !jtree_exact);
        ("pool_identical", Obs.Json.Bool !pool_identical);
        ( "speedup_vs_pure",
          Obs.Json.Obj
            (per_domain (fun d ->
                 Obs.Json.Float (t "pure" d /. Float.max 1e-9 (t "hybrid" d))))
        );
        ("stages", Obs.Json.Obj (List.map stage_json stage_names));
      ]
  in
  let out = hybrid_out () in
  let oc = open_out out in
  output_string oc (Obs.Json.to_pretty_string json);
  output_char oc '\n';
  close_out oc;
  note "wrote %s" out
