(* The serving layer: reader throughput against the published epoch
   snapshot while a live write stream commits epochs behind it.

   For each reader-pool size the server is started on a loopback socket
   over a fresh copy of the ReVerb-Sherlock KB; d client domains replay
   a deterministic slice of point queries (budgeted [query_local] over
   the NDJSON protocol) while one writer client streams ingest epochs.
   Every reply records the epoch it was computed against, and afterwards
   the whole observation log is identity-checked against a serial
   replay: the same write stream applied to a fresh session, each
   epoch's snapshot queried directly.  A reader racing the writer must
   answer bit-for-bit what that epoch answers serially — snapshot
   isolation, measured and checked.

   The server runs with telemetry on and an admin listener attached:
   one timed mid-run GET /metrics scrape records what a live Prometheus
   poll costs, and a final scrape checks the exposed per-op request
   count against the client side's.

   Writes BENCH_serve.json with the same [stages.{stage}.seconds.{d}]
   shape as the other artifacts ("serve" = wall clock of the full query
   load at that pool size), so [Compare] gates it unchanged. *)

open Bench_util
module Rng = Workload.Rng
module Gamma = Kb.Gamma
module Storage = Kb.Storage
module Dict = Relational.Dict
module Json = Obs.Json
module Local = Grounding.Local
module Session = Probkb.Engine.Session
module Snapshot = Probkb.Snapshot
module Writer = Probkb.Engine.Writer
module Protocol = Serve.Protocol
module Server = Serve.Server
module Admin = Serve.Admin

let stage_names = [ "serve" ]

let percentile p xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(min (Array.length a - 1) (int_of_float (p *. float_of_int (Array.length a))))

let rec take n = function
  | [] -> ([], [])
  | x :: rest when n > 0 ->
    let this, after = take (n - 1) rest in
    (x :: this, after)
  | rest -> ([], rest)

let connect addr =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd addr;
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let request oc ic line =
  output_string oc line;
  output_char oc '\n';
  flush oc;
  input_line ic

(* A one-shot HTTP/1.0 GET against the admin listener (what a
   Prometheus poll does), returning the raw response. *)
let http_get addr path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      Unix.connect fd addr;
      let oc = Unix.out_channel_of_descr fd in
      output_string oc ("GET " ^ path ^ " HTTP/1.0\r\nHost: bench\r\n\r\n");
      flush oc;
      let ic = Unix.in_channel_of_descr fd in
      let buf = Buffer.create 4096 in
      (try
         while true do
           Buffer.add_channel buf ic 1
         done
       with End_of_file -> ());
      Buffer.contents buf)

(* The value of an exposition line ["<series> <value>"], parsed as an
   int ([-1] when the series is absent). *)
let scraped_int text series =
  let value = ref (-1) in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let prefix = series ^ " " in
         let np = String.length prefix in
         if String.length line > np && String.sub line 0 np = prefix then
           match
             int_of_string_opt (String.sub line np (String.length line - np))
           with
           | Some v -> value := v
           | None -> ());
  !value

(* A reader client: replay [keys] (index, string-key) in batches of
   [batch] per connection, recording per-request latency and the
   (key, epoch, marginal) triple of every reply. *)
let reader_client addr ~batch ~budget keys =
  let lat = ref [] and obs = ref [] and ok = ref true in
  let t0 = Unix.gettimeofday () in
  let rec loop = function
    | [] -> ()
    | keys ->
      let this, rest = take batch keys in
      let fd, ic, oc = connect addr in
      List.iter
        (fun (ki, key) ->
          let line =
            Json.to_string
              (Protocol.op_to_json
                 (Protocol.Query_local { key; budget = Some budget }))
          in
          let t = Unix.gettimeofday () in
          let reply = request oc ic line in
          lat := (Unix.gettimeofday () -. t) :: !lat;
          match Json.of_string_opt reply with
          | Some doc -> (
            match (Json.member "epoch" doc, Json.member "marginal" doc) with
            | Some (Json.Int e), Some (Json.Float m) ->
              obs := (ki, e, m) :: !obs
            | _ -> ok := false)
          | None -> ok := false)
        this;
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      loop rest
  in
  loop keys;
  (!lat, !obs, !ok, Unix.gettimeofday () -. t0)

(* The writer client: one ingest epoch per connection, paced so the
   stream spans the readers' window. *)
let writer_client addr ~pace facts =
  List.iter
    (fun (key, w) ->
      let fd, ic, oc = connect addr in
      ignore
        (request oc ic
           (Json.to_string (Protocol.op_to_json (Protocol.Ingest [ (key, w) ]))));
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      Unix.sleepf pace)
    facts

let run () =
  section "Serving — snapshot reads under a live write stream";
  let scale = scale_or 0.03 in
  let pools = if options.quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  let host_cores = Domain.recommended_domain_count () in
  let n_queries = if options.quick then 120 else 400 in
  let n_writes = if options.quick then 10 else 24 in
  let samples = if options.quick then 100 else 500 in
  let batch = 10 in
  let pace = 0.005 in
  let budget = Local.budget ~max_facts:32 () in
  let g =
    Workload.Reverb_sherlock.generate
      { Workload.Reverb_sherlock.default_config with scale }
  in
  let proto = Workload.Reverb_sherlock.kb g in
  let gibbs = { Inference.Gibbs.default_options with samples } in
  let config =
    Probkb.Config.make ~inference:(Some (Inference.Marginal.Chromatic gibbs)) ()
  in
  (* One deterministic base-fact key set, as names (the wire speaks
     strings): the first slice is the query replay, the next rows seed
     the write stream (same relations, one fresh entity each, so every
     committed epoch plumbs new factors into queried components). *)
  let rows = ref [] in
  Storage.iter
    (fun ~id:_ ~r ~x ~c1 ~y ~c2 ~w:_ ->
      rows :=
        ( Dict.name (Gamma.relations proto) r,
          Dict.name (Gamma.entities proto) x,
          Dict.name (Gamma.classes proto) c1,
          Dict.name (Gamma.entities proto) y,
          Dict.name (Gamma.classes proto) c2 )
        :: !rows)
    (Gamma.pi proto);
  let a = Array.of_list (List.rev !rows) in
  let rng = Rng.create 42 in
  Rng.shuffle rng a;
  let n_queries = min n_queries (Array.length a - n_writes) in
  let query_keys =
    List.init n_queries (fun i -> (i, a.(i)))
  in
  let write_facts =
    List.init n_writes (fun i ->
        let r, _, c1, y, c2 = a.(n_queries + i) in
        ((r, Printf.sprintf "srvw_%d" i, c1, y, c2), 0.8))
  in
  (* Serial replay: the same write stream applied to a fresh session,
     one frozen snapshot per epoch — the oracle every concurrent
     observation is checked against.  All copies share [proto]'s
     dictionaries, so symbol ids line up across runs. *)
  let snaps =
    let s = Probkb.Engine.session (Probkb.Engine.create ~config (copy_kb proto)) in
    let kb = Session.kb s in
    Array.init (n_writes + 1) (fun i ->
        if i > 0 then begin
          let ((r, x, c1, y, c2), w) = List.nth write_facts (i - 1) in
          ignore
            (Session.ingest s
               [
                 ( Gamma.relation kb r, Gamma.entity kb x, Gamma.cls kb c1,
                   Gamma.entity kb y, Gamma.cls kb c2, w );
               ])
        end;
        Session.snapshot s)
  in
  let key_ids =
    Array.map
      (fun (r, x, c1, y, c2) ->
        ( Gamma.relation proto r, Gamma.entity proto x, Gamma.cls proto c1,
          Gamma.entity proto y, Gamma.cls proto c2 ))
      (Array.sub a 0 n_queries)
  in
  let oracle = Hashtbl.create 1024 in
  let oracle_marginal ki e =
    match Hashtbl.find_opt oracle (ki, e) with
    | Some m -> m
    | None ->
      let r, x, c1, y, c2 = key_ids.(ki) in
      let m =
        match Snapshot.query_local ~budget snaps.(e) ~r ~x ~c1 ~y ~c2 with
        | Some answer -> answer.Snapshot.marginal
        | None -> Float.nan
      in
      Hashtbl.replace oracle (ki, e) m;
      m
  in
  let times = Hashtbl.create 8 in
  let qps = Hashtbl.create 8 in
  let p50s = Hashtbl.create 8 and p99s = Hashtbl.create 8 in
  let scrapes = Hashtbl.create 8 in
  let identical = ref true in
  let scrape_consistent = ref true in
  List.iter
    (fun d ->
      let kb = copy_kb proto in
      (* Telemetry on: the measured wall clock includes histogram
         recording per request, and the admin listener is scraped live —
         the serving numbers are what an observable deployment pays. *)
      let engine =
        Probkb.Engine.create
          ~config:
            (Probkb.Config.make ~inference:(Some (Inference.Marginal.Chromatic gibbs))
               ~obs:(Obs.Config.make ~enabled:true ~retain_spans:1024 ())
               ())
          kb
      in
      let s = Probkb.Engine.session engine in
      let writer = Writer.of_session s in
      let srv =
        Server.start ~pool:d ~obs:(Probkb.Engine.trace engine) ~kb ~writer
          ~addr:(Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
          ()
      in
      let addr = Server.sockaddr srv in
      let admin =
        Admin.start
          ~addr:(Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
          ~routes:
            [
              ( "/metrics",
                Admin.route ~content_type:"text/plain; version=0.0.4"
                  (fun () -> Server.metrics_text srv) );
            ]
          ()
      in
      let admin_addr = Admin.sockaddr admin in
      (* Round-robin slices: reader i replays keys i, i+d, i+2d, ... *)
      let slice i =
        List.filteri (fun j _ -> j mod d = i) query_keys
      in
      let writer_dom =
        Domain.spawn (fun () -> writer_client addr ~pace write_facts)
      in
      let readers =
        List.init d (fun i ->
            Domain.spawn (fun () ->
                reader_client addr ~batch ~budget (slice i)))
      in
      (* One timed mid-run scrape: the cost of a Prometheus poll while
         readers and the writer are hot (merges every domain's buffers). *)
      let scrape_t0 = Unix.gettimeofday () in
      ignore (http_get admin_addr "/metrics");
      let scrape_s = Unix.gettimeofday () -. scrape_t0 in
      let results = List.map Domain.join readers in
      Domain.join writer_dom;
      (* Final scrape, after every reply has been received: the scraped
         per-op request count must equal the client-side count (requests
         record their telemetry before the reply is written). *)
      let final = http_get admin_addr "/metrics" in
      let counted =
        scraped_int final "serve_request_seconds_count{op=\"query_local\"}"
      in
      if counted <> n_queries then begin
        scrape_consistent := false;
        note "pool=%d scrape mismatch: scraped %d, sent %d" d counted n_queries
      end;
      Admin.stop admin;
      Server.stop srv;
      let wall =
        List.fold_left (fun m (_, _, _, w) -> Float.max m w) 0. results
      in
      let lats = List.concat_map (fun (l, _, _, _) -> l) results in
      let observations = List.concat_map (fun (_, o, _, _) -> o) results in
      if List.exists (fun (_, _, ok, _) -> not ok) results then
        identical := false;
      let epochs_seen = Hashtbl.create 16 in
      let mismatches = ref 0 in
      List.iter
        (fun (ki, e, m) ->
          Hashtbl.replace epochs_seen e ();
          if not (e >= 0 && e <= n_writes && m = oracle_marginal ki e) then
            incr mismatches)
        observations;
      if !mismatches > 0 then identical := false;
      let p50 = percentile 0.5 lats and p99 = percentile 0.99 lats in
      let q = float_of_int n_queries /. Float.max 1e-9 wall in
      Hashtbl.replace times ("serve", d) wall;
      Hashtbl.replace qps d q;
      Hashtbl.replace p50s d p50;
      Hashtbl.replace p99s d p99;
      Hashtbl.replace scrapes d scrape_s;
      measured
        "pool=%d  %d queries in %6.3fs  qps %6.0f  p50 %.6fs  p99 %.6fs  \
         epochs seen %d/%d  mismatches %d  scrape %.6fs"
        d n_queries wall q p50 p99
        (Hashtbl.length epochs_seen)
        (n_writes + 1) !mismatches scrape_s)
    pools;
  measured "all replies identical to serial per-epoch replay: %b" !identical;
  measured "scraped request counts match the client side: %b" !scrape_consistent;
  let t stage d = Hashtbl.find times (stage, d) in
  let oversubscribed d = d > host_cores in
  let per_pool f = List.map (fun d -> (string_of_int d, f d)) pools in
  let stage_json stage =
    ( stage,
      Json.Obj
        [
          ("seconds", Json.Obj (per_pool (fun d -> Json.Float (t stage d))));
          ( "oversubscribed",
            Json.Obj (per_pool (fun d -> Json.Bool (oversubscribed d))) );
        ] )
  in
  let json =
    Json.Obj
      [
        ("meta", meta_json ~engine:"serve");
        ("domains", Json.List (List.map (fun d -> Json.Int d) pools));
        ("scale", Json.Float scale);
        ("host_cores", Json.Int host_cores);
        ("queries", Json.Int n_queries);
        ("writes", Json.Int n_writes);
        ("budget", Json.Int 32);
        ("identical_results", Json.Bool !identical);
        ("scrape_consistent", Json.Bool !scrape_consistent);
        ( "scrape_seconds",
          Json.Obj (per_pool (fun d -> Json.Float (Hashtbl.find scrapes d))) );
        ("qps", Json.Obj (per_pool (fun d -> Json.Float (Hashtbl.find qps d))));
        ( "p50_seconds",
          Json.Obj (per_pool (fun d -> Json.Float (Hashtbl.find p50s d))) );
        ( "p99_seconds",
          Json.Obj (per_pool (fun d -> Json.Float (Hashtbl.find p99s d))) );
        ("stages", Json.Obj (List.map stage_json stage_names));
      ]
  in
  let out = serve_out () in
  let oc = open_out out in
  output_string oc (Json.to_pretty_string json);
  output_char oc '\n';
  close_out oc;
  note "wrote %s" out
