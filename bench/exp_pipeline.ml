(* Executor comparison: the materializing reference engine vs the
   morsel-driven pipelined engine, on the grounding query workload
   (the Query 1-i plans over a grounded KB), per pool size.

   Writes BENCH_pipeline.json with the same [stages.{stage}.seconds.{d}]
   shape as BENCH_parallel.json, so [Compare] gates both artifacts with
   one implementation. *)

open Bench_util
module Table = Relational.Table
module Plan = Relational.Plan

let stage_names = [ "materializing"; "pipelined" ]

(* Bit-exact equality: same rows, same order, same weights. *)
let tables_identical a b =
  Table.nrows a = Table.nrows b
  && Table.width a = Table.width b
  && Table.weighted a = Table.weighted b
  &&
  let ok = ref true in
  for r = 0 to Table.nrows a - 1 do
    if not (Table.equal_rows a r b r) then ok := false;
    if Table.weighted a && compare (Table.weight a r) (Table.weight b r) <> 0
    then ok := false
  done;
  !ok

let run () =
  section "Pipelined executor — materializing vs morsel-driven pipelines";
  let scale = scale_or 0.05 in
  let domains = if options.quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  let host_cores = Domain.recommended_domain_count () in
  note
    "ReVerb-Sherlock at scale %.3f, grounded first so TΠ holds the derived \
     facts; each engine runs every Query 1-i plan"
    scale;
  let g =
    Workload.Reverb_sherlock.generate
      { Workload.Reverb_sherlock.default_config with scale }
  in
  let kb = Workload.Reverb_sherlock.kb g in
  ignore
    (Grounding.Ground.run
       ~options:{ Grounding.Ground.default_options with max_iterations = 4 }
       kb);
  let prepared = Grounding.Queries.prepare (Kb.Gamma.partitions kb) in
  let pi = Kb.Gamma.pi kb in
  let plans =
    List.filter_map
      (fun pat ->
        if Mln.Partition.count (Grounding.Queries.partitions prepared) pat > 0
        then Some (Grounding.Queries.atoms_plan prepared pat pi)
        else None)
      Mln.Pattern.all
  in
  let workload () = List.iter (fun p -> ignore (Plan.run p)) plans in
  let workload_mat () =
    List.iter (fun p -> ignore (Plan.run_materializing p)) plans
  in
  note "%d plans over %d facts; outputs checked bit-identical between engines"
    (List.length plans)
    (Kb.Storage.size pi);
  let times = Hashtbl.create 16 in
  let identical = ref true in
  let reps = if options.quick then 2 else 3 in
  List.iter
    (fun d ->
      Pool.set_default_size d;
      (* Warm-up doubles as the identity check. *)
      List.iter
        (fun p ->
          if not (tables_identical (Plan.run_materializing p) (Plan.run p))
          then identical := false)
        plans;
      (* Interleaved best-of-N: clock drift on a shared host hits both
         engines equally. *)
      let mat = ref infinity and pip = ref infinity in
      for _ = 1 to reps do
        let (), s = time workload_mat in
        mat := Float.min !mat s;
        let (), s = time workload in
        pip := Float.min !pip s
      done;
      Hashtbl.replace times ("materializing", d) !mat;
      Hashtbl.replace times ("pipelined", d) !pip;
      measured "domains=%d  materializing %7.3fs | pipelined %7.3fs (%.2fx)" d
        !mat !pip
        (!mat /. Float.max 1e-9 !pip))
    domains;
  Pool.set_default_size (Pool.env_domains ());
  measured "identical results across engines and pool sizes: %b" !identical;
  (* Peak intermediate allocation per engine, from the executor's
     high-water gauge (one instrumented pass at the default pool size). *)
  let peak_bytes wl =
    let obs = Obs.create ~config:Obs.Config.enabled () in
    Obs.with_ambient obs wl;
    let s = Obs.Summary.of_trace obs in
    match List.assoc_opt "exec.peak_intermediate_bytes" s.Obs.Summary.gauges with
    | Some v -> v
    | None -> 0.
  in
  let peak_mat = peak_bytes workload_mat in
  let peak_pip = peak_bytes workload in
  measured
    "peak intermediate allocation: materializing %.1f MB | pipelined %.1f MB"
    (peak_mat /. 1.048576e6)
    (peak_pip /. 1.048576e6);
  let t stage d = Hashtbl.find times (stage, d) in
  let oversubscribed d = d > host_cores in
  let per_domain f = List.map (fun d -> (string_of_int d, f d)) domains in
  let stage_json stage =
    ( stage,
      Obs.Json.Obj
        [
          ("seconds", Obs.Json.Obj (per_domain (fun d -> Obs.Json.Float (t stage d))));
          ( "oversubscribed",
            Obs.Json.Obj (per_domain (fun d -> Obs.Json.Bool (oversubscribed d)))
          );
        ] )
  in
  let json =
    Obs.Json.Obj
      [
        ("meta", meta_json ~engine:"plan_executors");
        ("domains", Obs.Json.List (List.map (fun d -> Obs.Json.Int d) domains));
        ("scale", Obs.Json.Float scale);
        ("host_cores", Obs.Json.Int host_cores);
        ("plans", Obs.Json.Int (List.length plans));
        ("facts", Obs.Json.Int (Kb.Storage.size pi));
        ("identical_results", Obs.Json.Bool !identical);
        ( "pipelined_speedup",
          Obs.Json.Obj
            (per_domain (fun d ->
                 Obs.Json.Float
                   (t "materializing" d /. Float.max 1e-9 (t "pipelined" d))))
        );
        ( "peak_intermediate_bytes",
          Obs.Json.Obj
            [
              ("materializing", Obs.Json.Float peak_mat);
              ("pipelined", Obs.Json.Float peak_pip);
            ] );
        ("stages", Obs.Json.Obj (List.map stage_json stage_names));
      ]
  in
  let out = pipeline_out () in
  let oc = open_out out in
  output_string oc (Obs.Json.to_pretty_string json);
  output_char oc '\n';
  close_out oc;
  note "wrote %s" out
