(* Performance experiments: Table 2, Table 3, Figure 4, Figures 6(a)-(c). *)

open Bench_util

(* ------------------------------------------------------------------ *)
(* Table 2: KB statistics                                              *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "Table 2 — ReVerb-Sherlock KB statistics";
  let scale = scale_or 1.0 in
  let g, gen_s =
    time (fun () ->
        Workload.Reverb_sherlock.generate
          { Workload.Reverb_sherlock.default_config with scale })
  in
  let s = Kb.Gamma.stats (Workload.Reverb_sherlock.kb g) in
  paper "82,768 relations | 30,912 rules | 277,216 entities | 407,247 facts";
  measured "%d relations | %d rules | %d entities | %d facts (scale %.2f, %.1fs)"
    s.Kb.Gamma.n_relations s.Kb.Gamma.n_rules s.Kb.Gamma.n_entities
    s.Kb.Gamma.n_facts scale gen_s;
  measured "plus %d functional constraints (Leibniz found 10,374 at scale 1)"
    s.Kb.Gamma.n_constraints

(* ------------------------------------------------------------------ *)
(* Table 3: the ReVerb-Sherlock case study                             *)
(* ------------------------------------------------------------------ *)

let noisy_kb scale =
  let base =
    Workload.Reverb_sherlock.generate
      { Workload.Reverb_sherlock.default_config with scale }
  in
  Workload.Noise.make base Workload.Noise.default_config

let table3 () =
  section "Table 3 — load + 4 grounding iterations + factor construction";
  let scale = scale_or 0.1 in
  note "run at scale %.2f of the ReVerb-Sherlock KB (--full for 1.0)" scale;
  note
    "modeled times add the per-SQL-statement cost the in-process engine lacks";
  let n = noisy_kb scale in
  let noisy = Workload.Noise.noisy n in
  let n_rules = List.length (Kb.Gamma.rules noisy) in
  (* §6.1.1: Query 3 once before inference, no further quality control. *)
  let prep () =
    let kb = copy_kb noisy in
    ignore
      (Quality.Semantic.apply ~ban:false (Kb.Gamma.pi kb) (Kb.Gamma.omega kb));
    kb
  in
  (* [q1] is oldest-iteration first. *)
  let pp_row name load q1 q2 result_size =
    pf "  %-10s load %7.2fs | Query 1 iters: %s | Query 2 %8.2fs | result %d@."
      name load
      (String.concat " " (List.map (fun s -> Printf.sprintf "%7.2fs" s) q1))
      q2 result_size
  in
  let pf' = pf in
  pf' "  (paper, minutes: ProbKB load .03 / iters .05 .12 .23 1.28 / Q2 36.28;@.";
  pf' "   ProbKB-p load .25 / iters .07 .07 .15 .48 / Q2 9.75;@.";
  pf' "   Tuffy-T load 18.22 / iters 1.92 9.40 22.40 44.77 / Q2 84.07;@.";
  pf' "   result sizes 396K -> 1.5M facts, 592M factors)@.";

  (* --- ProbKB (single node) --- *)
  let kb = prep () in
  let base_facts = Kb.Storage.size (Kb.Gamma.pi kb) in
  let load_kb, load_s = time (fun () -> copy_kb noisy) in
  ignore load_kb;
  let iter_times = ref [] in
  let last = ref (Unix.gettimeofday ()) in
  let patterns = ref 0 in
  let r, _ =
    time (fun () ->
        Grounding.Ground.run
          ~options:
            {
              Grounding.Ground.default_options with
              max_iterations = 4;
              on_iteration =
                Some
                  (fun ~iteration:_ ~new_facts:_ ->
                    let now = Unix.gettimeofday () in
                    iter_times := (now -. !last) :: !iter_times;
                    last := now);
            }
          kb)
  in
  patterns :=
    List.length
      (List.filter
         (fun p -> Mln.Partition.count (Kb.Gamma.partitions kb) p > 0)
         Mln.Pattern.all);
  let q2_s =
    List.fold_left
      (fun acc e ->
        if String.length e.Relational.Stats.label >= 7
           && String.sub e.Relational.Stats.label 0 7 = "Query 2"
        then acc +. e.Relational.Stats.seconds
        else acc)
      0.
      (Relational.Stats.entries r.Grounding.Ground.stats)
  in
  let probkb_iters =
    List.map (fun s -> modeled ~statements:!patterns s) !iter_times
  in
  pp_row "ProbKB"
    (modeled ~statements:1 ~tables:1 load_s)
    (List.rev probkb_iters)
    (modeled ~statements:!patterns q2_s)
    (Kb.Storage.size (Kb.Gamma.pi kb));
  let probkb_facts = Kb.Storage.size (Kb.Gamma.pi kb) in
  let probkb_factors = Factor_graph.Fgraph.size r.Grounding.Ground.graph in
  measured "ProbKB result: %d facts (%.1fx), %d factors" probkb_facts
    (float_of_int probkb_facts /. float_of_int base_facts)
    probkb_factors;

  (* --- ProbKB-p (MPP with views, simulated clock) --- *)
  let kb = prep () in
  let sim_marks = ref [] in
  let rp =
    Grounding.Ground_mpp.run
      ~options:
        {
          Grounding.Ground_mpp.default_options with
          max_iterations = 4;
          on_iteration =
            Some
              (fun ~iteration:_ ~new_facts:_ ~sim_elapsed ->
                sim_marks := sim_elapsed :: !sim_marks);
        }
      ~mode:Grounding.Ground_mpp.Views Mpp.Cluster.default kb
  in
  let sim_iters =
    let marks = List.rev !sim_marks in
    let rec deltas prev = function
      | [] -> []
      | m :: rest -> (m -. prev) :: deltas m rest
    in
    deltas 0. marks
  in
  let q2_sim =
    rp.Grounding.Ground_mpp.sim_seconds
    -. List.fold_left max 0. !sim_marks
  in
  pp_row "ProbKB-p"
    (modeled ~statements:1 ~tables:1
       (load_s /. 4. +. rp.Grounding.Ground_mpp.load_sim_seconds))
    (List.map (fun s -> modeled ~statements:!patterns s) sim_iters)
    (modeled ~statements:!patterns q2_sim)
    (Kb.Storage.size (Kb.Gamma.pi kb));
  measured "ProbKB-p result: %d facts, %d factors (equal to ProbKB: %b)"
    (Kb.Storage.size (Kb.Gamma.pi kb))
    (Factor_graph.Fgraph.size rp.Grounding.Ground_mpp.graph)
    (Kb.Storage.size (Kb.Gamma.pi kb) = probkb_facts
    && Factor_graph.Fgraph.size rp.Grounding.Ground_mpp.graph = probkb_factors);

  (* --- Tuffy-T --- *)
  let kb = prep () in
  let db = Tuffy.load kb in
  let tuffy_load =
    modeled ~statements:0 ~tables:(Tuffy.n_tables db) (Tuffy.load_seconds_of db)
  in
  let t_iter_times = ref [] in
  let t_last = ref (Unix.gettimeofday ()) in
  let rt, _ =
    time (fun () ->
        Tuffy.run ~max_iterations:4
          ~on_iteration:(fun ~iteration:_ ~new_facts:_ ->
            let now = Unix.gettimeofday () in
            t_iter_times := (now -. !t_last) :: !t_iter_times;
            t_last := now)
          kb)
  in
  let t_factor_s =
    List.fold_left
      (fun acc e ->
        if e.Relational.Stats.label = "factor query" then
          acc +. e.Relational.Stats.seconds
        else acc)
      0.
      (Relational.Stats.entries rt.Tuffy.stats)
  in
  pp_row "Tuffy-T" tuffy_load
    (List.rev (List.map (fun s -> modeled ~statements:n_rules s) !t_iter_times))
    (modeled ~statements:n_rules t_factor_s)
    rt.Tuffy.fact_count;
  measured "Tuffy-T result: %d facts, %d factors" rt.Tuffy.fact_count
    (Factor_graph.Fgraph.size rt.Tuffy.graph);
  note
    "Tuffy applies rules sequentially, so within one iteration later rules see earlier rules' inserts;";
  note
    "at a fixed iteration budget it runs slightly ahead of Algorithm 1 — the fixpoints coincide (differential tests)";
  note "per-iteration statements: ProbKB %d, Tuffy-T %d (the paper's 6 vs 30,912)"
    !patterns n_rules

(* ------------------------------------------------------------------ *)
(* Figure 4: plans with and without redistributed materialized views   *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  section "Figure 4 — M3 ⋈ TΠ plans with/without redistributed views";
  let n_facts = if options.full then 10_000_000 else 1_000_000 in
  note "synthetic TΠ with %d facts (paper: 10M; --full to match)" n_facts;
  let g =
    Workload.Synthetic.s2 ~scale:0.1
      ~seed:Workload.Reverb_sherlock.default_config.Workload.Reverb_sherlock.seed
      ~n_facts
  in
  let kb = Workload.Reverb_sherlock.kb g in
  (* Keep only the M3 rules, like the paper's sample run. *)
  let m3_rules =
    List.filter
      (fun c -> Mln.Pattern.classify c = Some Mln.Pattern.P3)
      (Kb.Gamma.rules kb)
  in
  let run mode =
    let kb' = copy_kb ~rules:m3_rules kb in
    Grounding.Ground_mpp.run
      ~options:
        {
          Grounding.Ground_mpp.default_options with
          max_iterations = 1;
          build_factors = false;
        }
      ~mode Mpp.Cluster.default kb'
  in
  let with_views = run Grounding.Ground_mpp.Views in
  let without = run Grounding.Ground_mpp.No_views in
  let qtime (r : Grounding.Ground_mpp.result) =
    r.Grounding.Ground_mpp.sim_seconds -. r.Grounding.Ground_mpp.load_sim_seconds
  in
  paper "optimized plan: Redistribute Motion 0.85s; unoptimized: Broadcast 8.06s";
  pf "  --- with redistributed views (ProbKB-p) ---@.  %a@."
    Mpp.Cost.pp_plan with_views.Grounding.Ground_mpp.cost;
  pf "  --- without (ProbKB-pn) ---@.  %a@."
    Mpp.Cost.pp_plan without.Grounding.Ground_mpp.cost;
  measured
    "steady-state query: %.3fs (views) vs %.3fs (no views), %.1fx; one-time load %.3fs vs %.3fs"
    (qtime with_views) (qtime without)
    (qtime without /. Float.max 1e-9 (qtime with_views))
    with_views.Grounding.Ground_mpp.load_sim_seconds
    without.Grounding.Ground_mpp.load_sim_seconds

(* ------------------------------------------------------------------ *)
(* Figure 6(a): time vs number of rules (S1)                           *)
(* ------------------------------------------------------------------ *)

let one_iteration_times kb =
  (* One grounding iteration (as in the S1/S2 experiments) on each system;
     returns (probkb, probkb_p, tuffy, inferred). *)
  let patterns kb =
    List.length
      (List.filter
         (fun p -> Mln.Partition.count (Kb.Gamma.partitions kb) p > 0)
         Mln.Pattern.all)
  in
  let kb1 = copy_kb kb in
  let np = patterns kb1 in
  let r1, wall1 =
    time (fun () ->
        Grounding.Ground.run
          ~options:
            {
              Grounding.Ground.default_options with
              max_iterations = 1;
              build_factors = true;
            }
          kb1)
  in
  let inferred = r1.Grounding.Ground.new_fact_count in
  let probkb = modeled ~statements:(2 * np) wall1 in
  let kb2 = copy_kb kb in
  let r2 =
    Grounding.Ground_mpp.run
      ~options:
        { Grounding.Ground_mpp.default_options with max_iterations = 1 }
      ~mode:Grounding.Ground_mpp.Views Mpp.Cluster.default kb2
  in
  let probkb_p =
    modeled ~statements:(2 * np)
      (r2.Grounding.Ground_mpp.sim_seconds
      -. r2.Grounding.Ground_mpp.load_sim_seconds)
  in
  let kb3 = copy_kb kb in
  let n_rules = List.length (Kb.Gamma.rules kb3) in
  let r3, wall3 = time (fun () -> Tuffy.run ~max_iterations:1 kb3) in
  ignore r3;
  let tuffy = modeled ~statements:(2 * n_rules) wall3 in
  (probkb, probkb_p, tuffy, inferred)

let fig6a () =
  section "Figure 6(a) — execution time vs number of rules (S1)";
  paper "at 1M rules: Tuffy-T 16,507s; ProbKB 210s; ProbKB-p 53s (speedup 311x)";
  let scale = scale_or 0.1 in
  let points =
    if options.full then Workload.Synthetic.paper_s1_points
    else if options.quick then [ 1_000; 5_000 ]
    else [ 1_000; 10_000; 20_000; 50_000 ]
  in
  note "facts at scale %.2f; rule counts %s" scale
    (String.concat ", " (List.map string_of_int points));
  pf "  %12s %12s %12s %12s %12s@." "#rules" "Tuffy-T(s)" "ProbKB(s)"
    "ProbKB-p(s)" "#inferred";
  List.iter
    (fun n_rules ->
      let g =
        Workload.Synthetic.s1 ~scale
          ~seed:
            Workload.Reverb_sherlock.default_config
              .Workload.Reverb_sherlock.seed ~n_rules
      in
      let kb = Workload.Reverb_sherlock.kb g in
      let actual_rules = List.length (Kb.Gamma.rules kb) in
      let probkb, probkb_p, tuffy, inferred = one_iteration_times kb in
      pf "  %12d %12.1f %12.1f %12.1f %12d@." actual_rules tuffy probkb
        probkb_p inferred)
    points

(* ------------------------------------------------------------------ *)
(* Figure 6(b): time vs number of facts (S2)                           *)
(* ------------------------------------------------------------------ *)

let s2_points () =
  if options.full then Workload.Synthetic.paper_s2_points
  else if options.quick then [ 10_000; 50_000; 100_000 ]
  else [ 100_000; 500_000; 1_000_000; 2_000_000 ]

let fig6b () =
  section "Figure 6(b) — execution time vs number of facts (S2)";
  paper "at 10M facts: speedup of 237x for ProbKB-p over Tuffy-T";
  let scale = scale_or 0.1 in
  let points = s2_points () in
  note "rules at scale %.2f; fact counts %s" scale
    (String.concat ", " (List.map string_of_int points));
  pf "  %12s %12s %12s %12s %12s@." "#facts" "Tuffy-T(s)" "ProbKB(s)"
    "ProbKB-p(s)" "#inferred";
  List.iter
    (fun n_facts ->
      let g =
        Workload.Synthetic.s2 ~scale
          ~seed:
            Workload.Reverb_sherlock.default_config
              .Workload.Reverb_sherlock.seed ~n_facts
      in
      let kb = Workload.Reverb_sherlock.kb g in
      let probkb, probkb_p, tuffy, inferred = one_iteration_times kb in
      pf "  %12d %12.1f %12.1f %12.1f %12d@." n_facts tuffy probkb probkb_p
        inferred)
    points

(* ------------------------------------------------------------------ *)
(* Figure 6(c): PostgreSQL vs Greenplum variants                       *)
(* ------------------------------------------------------------------ *)

let fig6c () =
  section "Figure 6(c) — ProbKB vs ProbKB-pn vs ProbKB-p (S2 sweep)";
  paper "at 10M facts: ProbKB-pn 3.1x, ProbKB-p 6.3x over ProbKB";
  note "all three on the simulated cluster clock (1 vs 32 segments)";
  let scale = scale_or 0.1 in
  let points = s2_points () in
  pf "  %12s %12s %12s %12s %10s %10s@." "#facts" "ProbKB(s)" "ProbKB-pn(s)"
    "ProbKB-p(s)" "pn speedup" "p speedup";
  List.iter
    (fun n_facts ->
      let g =
        Workload.Synthetic.s2 ~scale
          ~seed:
            Workload.Reverb_sherlock.default_config
              .Workload.Reverb_sherlock.seed ~n_facts
      in
      let kb = Workload.Reverb_sherlock.kb g in
      let run mode cluster =
        Grounding.Ground_mpp.run
          ~options:
            { Grounding.Ground_mpp.default_options with max_iterations = 1 }
          ~mode cluster (copy_kb kb)
      in
      let single = run Grounding.Ground_mpp.Views Mpp.Cluster.single_node in
      let pn = run Grounding.Ground_mpp.No_views Mpp.Cluster.default in
      let p = run Grounding.Ground_mpp.Views Mpp.Cluster.default in
      let qtime (r : Grounding.Ground_mpp.result) =
        r.Grounding.Ground_mpp.sim_seconds
        -. r.Grounding.Ground_mpp.load_sim_seconds
      in
      let s1 = qtime single and s2 = qtime pn and s3 = qtime p in
      pf "  %12d %12.2f %12.2f %12.2f %10.1f %10.1f@." n_facts s1 s2 s3
        (s1 /. s2) (s1 /. s3))
    points

(* ------------------------------------------------------------------ *)
(* Domain sweep: real multicore speedup on the pool                    *)
(* ------------------------------------------------------------------ *)

let stage_names = [ "ground"; "gibbs"; "mpp" ]

let parallel () =
  section "Domain sweep — pool speedup (grounding / chromatic Gibbs / MPP)";
  let scale = scale_or 0.05 in
  let domains = if options.quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  note "ReVerb-Sherlock at scale %.3f; pool sizes %s; wall-clock per stage"
    scale
    (String.concat ", " (List.map string_of_int domains));
  note "results are checked bit-identical across pool sizes";
  let host_cores = Domain.recommended_domain_count () in
  note
    "host has %d core(s) available — speedup above that many domains is \
     scheduling overhead"
    host_cores;
  let g =
    Workload.Reverb_sherlock.generate
      { Workload.Reverb_sherlock.default_config with scale }
  in
  let kb0 = Workload.Reverb_sherlock.kb g in
  let times = Hashtbl.create 16 in
  let ref_facts = ref None in
  let ref_marginals = ref None in
  let identical = ref true in
  List.iter
    (fun d ->
      Pool.set_default_size d;
      (* Stage 1: single-node grounding (Algorithm 1, inter- and
         intra-query parallelism). *)
      let kb = copy_kb kb0 in
      let r, ground_s =
        time (fun () ->
            Grounding.Ground.run
              ~options:
                { Grounding.Ground.default_options with max_iterations = 4 }
              kb)
      in
      let facts = Kb.Storage.size (Kb.Gamma.pi kb) in
      (match !ref_facts with
      | None -> ref_facts := Some facts
      | Some f -> if f <> facts then identical := false);
      (* Stage 2: chromatic Gibbs on the ground graph. *)
      let c = Factor_graph.Fgraph.compile r.Grounding.Ground.graph in
      let gopts = { Inference.Gibbs.burn_in = 20; samples = 80; seed = 42 } in
      let marg, gibbs_s =
        time (fun () -> Inference.Chromatic.marginals ~options:gopts c)
      in
      (match !ref_marginals with
      | None -> ref_marginals := Some marg
      | Some m -> if m <> marg then identical := false);
      (* Stage 3: the MPP driver (per-segment joins + view builds on the
         pool). *)
      let kbm = copy_kb kb0 in
      let _rm, mpp_s =
        time (fun () ->
            Grounding.Ground_mpp.run
              ~options:
                {
                  Grounding.Ground_mpp.default_options with max_iterations = 4;
                }
              Mpp.Cluster.default kbm)
      in
      List.iter2
        (fun stage s -> Hashtbl.replace times (stage, d) s)
        stage_names
        [ ground_s; gibbs_s; mpp_s ];
      measured "domains=%d  ground %6.2fs | gibbs %6.2fs | mpp %6.2fs" d
        ground_s gibbs_s mpp_s)
    domains;
  Pool.set_default_size (Pool.env_domains ());
  let t stage d = Hashtbl.find times (stage, d) in
  pf "  %8s %s@." "stage"
    (String.concat ""
       (List.map (fun d -> Printf.sprintf "%8s" (Printf.sprintf "%dd" d)) domains)
    ^ Printf.sprintf "%10s" "speedup");
  List.iter
    (fun stage ->
      let base = t stage (List.hd domains) in
      let last = t stage (List.nth domains (List.length domains - 1)) in
      pf "  %8s %s%10.2f@." stage
        (String.concat ""
           (List.map (fun d -> Printf.sprintf "%8.2f" (t stage d)) domains))
        (base /. Float.max 1e-9 last))
    stage_names;
  measured "identical results across pool sizes: %b" !identical;
  (* Oversubscribed pool sizes (more domains than host cores) measure
     scheduling overhead, not speedup — flag them and keep them out of
     the headline number. *)
  let oversubscribed d = d > host_cores in
  let eligible = List.filter (fun d -> not (oversubscribed d)) domains in
  let headline stage =
    match List.rev eligible with
    | [] | [ _ ] -> None
    | best :: _ ->
      Some (t stage (List.hd domains) /. Float.max 1e-9 (t stage best))
  in
  List.iter
    (fun stage ->
      match headline stage with
      | Some s ->
        measured "headline %s speedup (<=%d domains, host-eligible): %.2fx"
          stage host_cores s
      | None ->
        note
          "%s: no headline speedup — host has %d core(s), larger pools are \
           oversubscribed"
          stage host_cores)
    stage_names;
  (* Online-diagnostics overhead: the same chromatic run with Welford +
     lag-1 tracking on.  The two variants are interleaved (plain, online,
     plain, online, …) so slow clock drift on a shared host hits both
     sides equally, and each takes its best-of-5. *)
  let diag_overhead =
    let kb = copy_kb kb0 in
    let r =
      Grounding.Ground.run
        ~options:{ Grounding.Ground.default_options with max_iterations = 4 }
        kb
    in
    let c = Factor_graph.Fgraph.compile r.Grounding.Ground.graph in
    let gopts = { Inference.Gibbs.burn_in = 20; samples = 80; seed = 42 } in
    let plain () = ignore (Inference.Chromatic.marginals ~options:gopts c) in
    let online () =
      ignore (Inference.Chromatic.marginals_info ~options:gopts ~online:true c)
    in
    let plain_s = ref infinity and online_s = ref infinity in
    (* Warm-up pass primes caches and triggers any pending major GC. *)
    plain ();
    for _ = 1 to 5 do
      let _, dt = time plain in
      plain_s := Float.min !plain_s dt;
      let _, dt = time online in
      online_s := Float.min !online_s dt
    done;
    let plain_s = !plain_s and online_s = !online_s in
    let overhead = (online_s -. plain_s) /. Float.max 1e-9 plain_s in
    measured
      "online diagnostics overhead: %.1f%% (plain %.3fs, online %.3fs, \
       interleaved best of 5)"
      (overhead *. 100.) plain_s online_s;
    overhead
  in
  (* One extra instrumented run (telemetry enabled) for the per-stage
     breakdown in the artifact.  Stages are wrapped in their own spans so
     the single-node and MPP closures don't collide on the shared root
     span name. *)
  let obs = Obs.create ~config:Obs.Config.enabled () in
  Obs.with_ambient obs (fun () ->
      let kb = copy_kb kb0 in
      let r =
        Obs.with_span obs "ground" ~cat:"bench" (fun () ->
            Grounding.Ground.run
              ~options:
                {
                  Grounding.Ground.default_options with
                  max_iterations = 4;
                  obs;
                }
              kb)
      in
      let c = Factor_graph.Fgraph.compile r.Grounding.Ground.graph in
      let gopts = { Inference.Gibbs.burn_in = 20; samples = 80; seed = 42 } in
      Obs.with_span obs "gibbs" ~cat:"bench" (fun () ->
          ignore (Inference.Chromatic.marginals ~options:gopts ~obs c));
      let kbm = copy_kb kb0 in
      Obs.with_span obs "mpp" ~cat:"bench" (fun () ->
          ignore
            (Grounding.Ground_mpp.run
               ~options:
                 {
                   Grounding.Ground_mpp.default_options with
                   max_iterations = 4;
                   obs;
                 }
               Mpp.Cluster.default kbm)));
  let summary = Obs.Summary.of_trace obs in
  (* Machine-readable record for CI / plotting. *)
  let stage_json stage =
    let base = t stage (List.hd domains) in
    ( stage,
      Obs.Json.Obj
        ([
           ( "seconds",
             Obs.Json.Obj
               (List.map
                  (fun d -> (string_of_int d, Obs.Json.Float (t stage d)))
                  domains) );
           ( "speedup",
             Obs.Json.Obj
               (List.map
                  (fun d ->
                    ( string_of_int d,
                      Obs.Json.Float (base /. Float.max 1e-9 (t stage d)) ))
                  domains) );
           ( "oversubscribed",
             Obs.Json.Obj
               (List.map
                  (fun d ->
                    (string_of_int d, Obs.Json.Bool (oversubscribed d)))
                  domains) );
         ]
        @
        match headline stage with
        | Some s -> [ ("headline_speedup", Obs.Json.Float s) ]
        | None -> []) )
  in
  let json =
    Obs.Json.Obj
      [
        ("meta", meta_json ~engine:"single_node+mpp");
        ("domains", Obs.Json.List (List.map (fun d -> Obs.Json.Int d) domains));
        ("scale", Obs.Json.Float scale);
        ("host_cores", Obs.Json.Int host_cores);
        ("identical_results", Obs.Json.Bool !identical);
        ("online_diag_overhead", Obs.Json.Float diag_overhead);
        ("stages", Obs.Json.Obj (List.map stage_json stage_names));
        ("obs", Obs.Summary.to_json summary);
      ]
  in
  let out = parallel_out () in
  let oc = open_out out in
  output_string oc (Obs.Json.to_pretty_string json);
  output_char oc '\n';
  close_out oc;
  note "wrote %s" out
