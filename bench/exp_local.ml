(* Query-driven local grounding: single-fact query latency through
   [Engine.query_local] (backward walk + neighbourhood inference) vs the
   full-closure route (ground every factor, compile, infer the whole
   graph), per pool size, on an already-closed ReVerb-Sherlock [TΠ].

   Both routes start from the same closed fact table — the walk's
   documented precondition — so the comparison isolates exactly what the
   local path avoids: materializing [TΦ] and inferring over all of it.
   At an unbounded budget the walk's subgraph is identity-checked, factor
   row for factor row, against a plain BFS over the materialized full
   graph; a budget sweep then records how the latency/truncation
   trade-off moves as the node cap tightens.

   Writes BENCH_local.json with the same [stages.{stage}.seconds.{d}]
   shape as BENCH_parallel.json, so [Compare] gates it with the same
   implementation ("full" = one full-closure answer, "local" = all local
   queries end to end). *)

open Bench_util
module Rng = Workload.Rng
module Gamma = Kb.Gamma
module Storage = Kb.Storage
module Fgraph = Factor_graph.Fgraph
module Local = Grounding.Local

let stage_names = [ "full"; "local" ]

let percentile p xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(min (Array.length a - 1) (int_of_float (p *. float_of_int (Array.length a))))

(* Factor rows in table order (canonical for Local results). *)
let rows g =
  let acc = ref [] in
  Fgraph.iter (fun _ (i1, i2, i3, w) -> acc := (i1, i2, i3, w) :: !acc) g;
  List.rev !acc

let run () =
  section "Local grounding — point-query latency vs the full closure";
  let scale = scale_or 0.03 in
  let domains = if options.quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  let host_cores = Domain.recommended_domain_count () in
  let n_queries = if options.quick then 100 else 300 in
  let samples = if options.quick then 100 else 500 in
  let g =
    Workload.Reverb_sherlock.generate
      { Workload.Reverb_sherlock.default_config with scale }
  in
  let proto = Workload.Reverb_sherlock.kb g in
  let gibbs = { Inference.Gibbs.default_options with samples } in
  let times = Hashtbl.create 16 in
  let p50s = Hashtbl.create 16 in
  let identical = ref true in
  let sweep = ref [] in
  let query_keys = ref [] in
  List.iter
    (fun d ->
      Pool.set_default_size d;
      (* Shared precondition of both routes: the closed fact table. *)
      let kb = copy_kb proto in
      ignore (Grounding.Ground.closure kb);
      let pi = Gamma.pi kb in
      if !query_keys = [] then begin
        (* One deterministic query set (keys, not ids) replayed at every
           pool size and budget. *)
        let all = ref [] in
        Storage.iter
          (fun ~id:_ ~r ~x ~c1 ~y ~c2 ~w:_ -> all := (r, x, c1, y, c2) :: !all)
          pi;
        let a = Array.of_list (List.rev !all) in
        let rng = Rng.create 42 in
        Rng.shuffle rng a;
        query_keys :=
          Array.to_list (Array.sub a 0 (min n_queries (Array.length a)))
      end;
      let keys = !query_keys in
      (* Full-closure route: materialize TΦ, compile, infer everything —
         the price of one point query without local grounding. *)
      let prepared = Grounding.Queries.prepare (Gamma.partitions kb) in
      let full_graph = ref None in
      let (), full_s =
        time (fun () ->
            let graph = Fgraph.create () in
            List.iter
              (fun pat ->
                ignore (Grounding.Queries.ground_factors prepared pat pi graph))
              Mln.Pattern.all;
            ignore (Grounding.Queries.singleton_factors pi graph);
            let c = Fgraph.compile graph in
            ignore (Inference.Chromatic.marginals ~options:gibbs c);
            full_graph := Some graph)
      in
      (* Local route: one backward walk + neighbourhood solve per query. *)
      let engine =
        Probkb.Engine.create
          ~config:
            (Probkb.Config.make
               ~inference:(Some (Inference.Marginal.Chromatic gibbs))
               ())
          kb
      in
      let lat = ref [] in
      let (), local_s =
        time (fun () ->
            List.iter
              (fun (r, x, c1, y, c2) ->
                let _, s =
                  time (fun () ->
                      Probkb.Engine.query_local engine ~r ~x ~c1 ~y ~c2)
                in
                lat := s :: !lat)
              keys)
      in
      let p50 = percentile 0.5 !lat in
      Hashtbl.replace times ("full", d) full_s;
      Hashtbl.replace times ("local", d) local_s;
      Hashtbl.replace p50s d p50;
      measured
        "domains=%d  full closure %7.3fs | local p50 %.6fs p95 %.6fs (%.0fx)"
        d full_s p50
        (percentile 0.95 !lat)
        (full_s /. Float.max 1e-9 p50);
      if d = List.hd domains then begin
        let graph = Option.get !full_graph in
        (* Identity: the unbounded backward walk and a BFS of the
           materialized graph must emit the same canonical subgraph. *)
        let bsrc = Local.of_kb prepared pi in
        let gsrc = Local.of_adjacency (Local.adjacency_of_graph graph) in
        List.iter
          (fun (r, x, c1, y, c2) ->
            match Storage.find pi ~r ~x ~c1 ~y ~c2 with
            | None -> identical := false
            | Some q ->
              let rb = Local.run bsrc ~query:q in
              let rg = Local.run gsrc ~query:q in
              if
                rb.Local.truncated || rg.Local.truncated
                || rows rb.Local.graph <> rows rg.Local.graph
              then identical := false)
          keys;
        measured "unbounded walk = full-graph component on all %d queries: %b"
          (List.length keys) !identical;
        (* Budget sweep: how latency and truncation move with the cap. *)
        List.iter
          (fun cap ->
            let budget =
              match cap with
              | None -> None
              | Some max_facts -> Some (Local.budget ~max_facts ())
            in
            let lat = ref [] in
            let interior = ref 0 and truncated = ref 0 in
            List.iter
              (fun (r, x, c1, y, c2) ->
                let a, s =
                  time (fun () ->
                      Probkb.Engine.query_local ?budget engine ~r ~x ~c1 ~y
                        ~c2)
                in
                lat := s :: !lat;
                match a with
                | Some a ->
                  interior := !interior + a.Probkb.Engine.interior;
                  if a.Probkb.Engine.truncated then incr truncated
                | None -> ())
              keys;
            let n = List.length keys in
            let p50 = percentile 0.5 !lat in
            measured
              "budget %-9s  p50 %.6fs  mean interior %5.1f  truncated %d/%d"
              (match cap with None -> "unbounded" | Some c -> string_of_int c)
              p50
              (float_of_int !interior /. float_of_int n)
              !truncated n;
            sweep :=
              Obs.Json.Obj
                [
                  ( "budget",
                    match cap with
                    | None -> Obs.Json.Null
                    | Some c -> Obs.Json.Int c );
                  ("p50_seconds", Obs.Json.Float p50);
                  ( "mean_interior",
                    Obs.Json.Float (float_of_int !interior /. float_of_int n)
                  );
                  ("truncated", Obs.Json.Int !truncated);
                ]
              :: !sweep)
          [ Some 1; Some 4; Some 16; Some 64; None ]
      end)
    domains;
  Pool.set_default_size (Pool.env_domains ());
  let t stage d = Hashtbl.find times (stage, d) in
  let oversubscribed d = d > host_cores in
  let per_domain f = List.map (fun d -> (string_of_int d, f d)) domains in
  let stage_json stage =
    ( stage,
      Obs.Json.Obj
        [
          ( "seconds",
            Obs.Json.Obj (per_domain (fun d -> Obs.Json.Float (t stage d))) );
          ( "oversubscribed",
            Obs.Json.Obj (per_domain (fun d -> Obs.Json.Bool (oversubscribed d)))
          );
        ] )
  in
  let json =
    Obs.Json.Obj
      [
        ("meta", meta_json ~engine:"local");
        ("domains", Obs.Json.List (List.map (fun d -> Obs.Json.Int d) domains));
        ("scale", Obs.Json.Float scale);
        ("host_cores", Obs.Json.Int host_cores);
        ("queries", Obs.Json.Int (List.length !query_keys));
        ("identical_results", Obs.Json.Bool !identical);
        ( "p50_local_seconds",
          Obs.Json.Obj
            (per_domain (fun d -> Obs.Json.Float (Hashtbl.find p50s d))) );
        ( "speedup_p50",
          Obs.Json.Obj
            (per_domain (fun d ->
                 Obs.Json.Float
                   (t "full" d /. Float.max 1e-9 (Hashtbl.find p50s d)))) );
        ("budget_sweep", Obs.Json.List (List.rev !sweep));
        ("stages", Obs.Json.Obj (List.map stage_json stage_names));
      ]
  in
  let out = local_out () in
  let oc = open_out out in
  output_string oc (Obs.Json.to_pretty_string json);
  output_char oc '\n';
  close_out oc;
  note "wrote %s" out
