(* Quality experiments: Table 4, Figure 7(a), Figure 7(b). *)

open Bench_util

let table4 () =
  section "Table 4 — quality control parameter grid";
  paper "G1 (no SC): θ ∈ {1, 20%%, 10%%};  G2 (SC): θ ∈ {1, 50%%, 20%%}";
  measured "same grid, run below in Figure 7(a)"

let make_noisy scale =
  let base =
    Workload.Reverb_sherlock.generate
      { Workload.Reverb_sherlock.default_config with scale }
  in
  Workload.Noise.make base Workload.Noise.default_config

(* One Figure 7(a) configuration: expand the noisy KB with the given
   quality controls and trace cumulative precision every [batch] inferred
   facts (the paper estimates precision per 5,000 new facts). *)
let run_config n ~sc ~theta ~max_iterations ~batch =
  let noisy = Workload.Noise.noisy n in
  let rules =
    Quality.Rule_cleaning.clean ~theta (Workload.Noise.scored_rules n)
  in
  let kb = copy_kb ~rules noisy in
  let omega = Kb.Gamma.omega noisy in
  let hook = if sc then Some (Quality.Semantic.hook omega) else None in
  let r =
    Grounding.Ground.closure
      ~options:
        {
          Grounding.Ground.default_options with
          max_iterations;
          apply_constraints = hook;
        }
      kb
  in
  (* Cumulative precision curve in derivation (fact id) order. *)
  let verdicts = ref [] in
  Kb.Storage.iter
    (fun ~id ~r ~x ~c1 ~y ~c2 ~w ->
      if Relational.Table.is_null_weight w then
        verdicts := (id, Workload.Noise.is_correct n ~r ~x ~c1 ~y ~c2) :: !verdicts)
    (Kb.Gamma.pi kb);
  let verdicts =
    List.sort (fun (a, _) (b, _) -> compare a b) !verdicts
  in
  let curve = ref [] in
  let correct = ref 0 and total = ref 0 in
  List.iter
    (fun (_, ok) ->
      incr total;
      if ok then incr correct;
      if !total mod batch = 0 then
        curve :=
          (!correct, float_of_int !correct /. float_of_int !total) :: !curve)
    verdicts;
  if !total mod batch <> 0 && !total > 0 then
    curve := (!correct, float_of_int !correct /. float_of_int !total) :: !curve;
  (List.rev !curve, !correct, !total, r.Grounding.Ground.iterations)

let fig7a () =
  section "Figure 7(a) — precision of inferred facts per QC configuration";
  paper "no QC: 4,800 correct @ 0.14 | RC 10%%: 9,962 @ 0.72 | SC: 23,164 @ 0.55";
  paper "SC+RC 50%%: 22,654 @ 0.65 | SC+RC 20%%: 16,394 @ 0.75";
  let scale = scale_or 0.05 in
  let n = make_noisy scale in
  note "scale %.2f; truth closure %d facts; precision from the exact oracle"
    scale (Workload.Noise.truth_size n);
  note "no-SC configs capped at 4 iterations (the paper's runs could not finish)";
  let batch = max 200 (int_of_float (5000. *. scale /. 0.05) / 5) in
  let configs =
    [
      ("no-SC  RC 1.0 ", false, 1.0, 4);
      ("no-SC  RC 0.2 ", false, 0.2, 4);
      ("no-SC  RC 0.1 ", false, 0.1, 4);
      ("SC     RC 1.0 ", true, 1.0, 15);
      ("SC     RC 0.5 ", true, 0.5, 15);
      ("SC     RC 0.2 ", true, 0.2, 15);
    ]
  in
  pf "  %-16s %10s %10s %10s %6s@." "config" "#inferred" "#correct"
    "precision" "iters";
  let curves =
    List.map
      (fun (name, sc, theta, max_iterations) ->
        let curve, correct, total, iters =
          run_config n ~sc ~theta ~max_iterations ~batch
        in
        pf "  %-16s %10d %10d %10.2f %6d@." name total correct
          (float_of_int correct /. float_of_int (max 1 total))
          iters;
        (name, curve))
      configs
  in
  pf "@.  cumulative precision curves (x = #correct facts, y = precision):@.";
  List.iter
    (fun (name, curve) ->
      let pts =
        curve
        |> List.filteri (fun i _ -> i mod (max 1 (List.length curve / 6)) = 0)
        |> List.map (fun (c, p) -> Printf.sprintf "(%d, %.2f)" c p)
      in
      pf "  %-16s %s@." name (String.concat " " pts))
    curves

let fig7b () =
  section "Figure 7(b) — error sources behind constraint violations";
  paper
    "ambiguities 34%% | ambiguous join keys 24%% | incorrect rules 33%% |";
  paper "incorrect extractions 6%% | general types 2%% | synonyms 1%%";
  let scale = scale_or 0.05 in
  let n = make_noisy scale in
  let kb = copy_kb (Workload.Noise.noisy n) in
  let omega = Kb.Gamma.omega kb in
  (* Collect violations (with their fact groups) as the constraints fire
     during an SC-enabled run, deduplicating by entity as the paper counts
     violating entities. *)
  let seen_entities = Hashtbl.create 256 in
  let collected = ref [] in
  let hook pi =
    let vs = Quality.Semantic.violations pi omega in
    List.iter
      (fun v ->
        if not (Hashtbl.mem seen_entities v.Quality.Semantic.entity) then begin
          Hashtbl.replace seen_entities v.Quality.Semantic.entity ();
          collected :=
            (v, Quality.Semantic.violation_group pi v) :: !collected
        end)
      vs;
    (List.length vs, Quality.Semantic.apply pi omega)
  in
  ignore
    (Grounding.Ground.closure
       ~options:
         {
           Grounding.Ground.default_options with
           max_iterations = 15;
           apply_constraints = Some hook;
         }
       kb);
  let report =
    Quality.Error_analysis.categorize
      ~classify:(Workload.Noise.classify_violation n)
      !collected
  in
  measured "%d violating entities (paper: 1,483 at scale 1)" report.Quality.Error_analysis.total;
  pf "%a@." Quality.Error_analysis.pp report
