(* The experiment harness: regenerates every table and figure of the
   paper's evaluation (Section 6).

   Usage:
     dune exec bench/main.exe                   # everything, scaled defaults
     dune exec bench/main.exe -- -e table3      # one experiment
     dune exec bench/main.exe -- --full         # paper-scale sweeps (slow)
     dune exec bench/main.exe -- --quick        # CI-sized runs
     dune exec bench/main.exe -- --scale 0.2    # override the KB scale

   Every experiment prints the paper's published numbers next to the
   measured ones; EXPERIMENTS.md records the comparison. *)

let all_experiments =
  [
    ("table2", Exp_perf.table2);
    ("table3", Exp_perf.table3);
    ("fig4", Exp_perf.fig4);
    ("fig6a", Exp_perf.fig6a);
    ("fig6b", Exp_perf.fig6b);
    ("fig6c", Exp_perf.fig6c);
    ("parallel", Exp_perf.parallel);
    ("pipeline", Exp_pipeline.run);
    ("incremental", Exp_incremental.run);
    ("local", Exp_local.run);
    ("serve", Exp_serve.run);
    ("hybrid", Exp_hybrid.run);
    ("storage", Exp_storage.run);
    ("table4", Exp_quality.table4);
    ("fig7a", Exp_quality.fig7a);
    ("fig7b", Exp_quality.fig7b);
    ("micro", Exp_micro.run);
  ]

(* Re-exec'd child for the storage experiment's per-route peak-RSS
   measurement; prints one number and exits before the harness starts. *)
let () =
  match Sys.getenv_opt "PROBKB_STORAGE_RSS_CHILD" with
  | Some spec -> Exp_storage.rss_child spec
  | None -> ()

let () =
  let open Bench_util in
  let spec =
    [
      ( "-e",
        Arg.String (fun e -> options.experiments <- options.experiments @ [ e ]),
        "EXPERIMENT run one experiment (repeatable): "
        ^ String.concat ", " (List.map fst all_experiments) );
      ("--full", Arg.Unit (fun () -> options.full <- true), " paper-scale sweeps");
      ("--quick", Arg.Unit (fun () -> options.quick <- true), " CI-sized runs");
      ( "--scale",
        Arg.Float (fun s -> options.scale <- Some s),
        "S override the default KB scale" );
      ( "--out",
        Arg.String (fun p -> options.out <- Some p),
        "FILE write the parallel experiment's artifact here instead of \
         BENCH_parallel.json" );
      ( "--compare",
        Arg.String (fun p -> options.compare <- Some p),
        "BASELINE after the run, diff the fresh parallel artifact against \
         this BENCH_parallel.json; exit non-zero on a >25% wall-clock \
         regression" );
      ( "--out-pipeline",
        Arg.String (fun p -> options.out_pipeline <- Some p),
        "FILE write the pipeline experiment's artifact here instead of \
         BENCH_pipeline.json" );
      ( "--compare-pipeline",
        Arg.String (fun p -> options.compare_pipeline <- Some p),
        "BASELINE diff the fresh pipeline artifact against this \
         BENCH_pipeline.json; exit non-zero on a >25% regression" );
      ( "--out-incremental",
        Arg.String (fun p -> options.out_incremental <- Some p),
        "FILE write the incremental experiment's artifact here instead of \
         BENCH_incremental.json" );
      ( "--compare-incremental",
        Arg.String (fun p -> options.compare_incremental <- Some p),
        "BASELINE diff the fresh incremental artifact against this \
         BENCH_incremental.json; exit non-zero on a >25% regression" );
      ( "--out-local",
        Arg.String (fun p -> options.out_local <- Some p),
        "FILE write the local-grounding experiment's artifact here instead \
         of BENCH_local.json" );
      ( "--compare-local",
        Arg.String (fun p -> options.compare_local <- Some p),
        "BASELINE diff the fresh local-grounding artifact against this \
         BENCH_local.json; exit non-zero on a >25% regression" );
      ( "--out-serve",
        Arg.String (fun p -> options.out_serve <- Some p),
        "FILE write the serving experiment's artifact here instead of \
         BENCH_serve.json" );
      ( "--compare-serve",
        Arg.String (fun p -> options.compare_serve <- Some p),
        "BASELINE diff the fresh serving artifact against this \
         BENCH_serve.json; exit non-zero on a >25% regression" );
      ( "--out-hybrid",
        Arg.String (fun p -> options.out_hybrid <- Some p),
        "FILE write the hybrid-inference experiment's artifact here instead \
         of BENCH_hybrid.json" );
      ( "--compare-hybrid",
        Arg.String (fun p -> options.compare_hybrid <- Some p),
        "BASELINE diff the fresh hybrid-inference artifact against this \
         BENCH_hybrid.json; exit non-zero on a >25% regression" );
      ( "--out-storage",
        Arg.String (fun p -> options.out_storage <- Some p),
        "FILE write the out-of-core storage experiment's artifact here \
         instead of BENCH_storage.json" );
      ( "--compare-storage",
        Arg.String (fun p -> options.compare_storage <- Some p),
        "BASELINE diff the fresh storage artifact against this \
         BENCH_storage.json; exit non-zero on a >25% regression" );
    ]
  in
  Arg.parse spec
    (fun anon -> options.experiments <- options.experiments @ [ anon ])
    "ProbKB experiment harness";
  let selected =
    match options.experiments with
    | [] -> all_experiments
    | names ->
      List.map
        (fun n ->
          match List.assoc_opt n all_experiments with
          | Some f -> (n, f)
          | None ->
            Printf.eprintf "unknown experiment %S\n" n;
            exit 2)
        names
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (name, f) ->
      let t = Unix.gettimeofday () in
      f ();
      Format.printf "  [%s done in %.1fs]@." name (Unix.gettimeofday () -. t))
    selected;
  Format.printf "@.all experiments done in %.1fs@."
    (Unix.gettimeofday () -. t0);
  let gate what baseline_path fresh_path =
    if not (Sys.file_exists fresh_path) then begin
      Printf.eprintf
        "--compare%s: fresh artifact %s not found (run the %s experiment, \
         e.g. -e %s)\n"
        (if what = "parallel" then "" else "-" ^ what)
        fresh_path what what;
      exit 2
    end;
    Compare.run ~baseline_path ~fresh_path ()
  in
  let regressions =
    (match options.compare with
    | None -> 0
    | Some baseline -> gate "parallel" baseline (parallel_out ()))
    + (match options.compare_pipeline with
      | None -> 0
      | Some baseline -> gate "pipeline" baseline (pipeline_out ()))
    + (match options.compare_incremental with
      | None -> 0
      | Some baseline -> gate "incremental" baseline (incremental_out ()))
    + (match options.compare_local with
      | None -> 0
      | Some baseline -> gate "local" baseline (local_out ()))
    + (match options.compare_serve with
      | None -> 0
      | Some baseline -> gate "serve" baseline (serve_out ()))
    + (match options.compare_hybrid with
      | None -> 0
      | Some baseline -> gate "hybrid" baseline (hybrid_out ()))
    + (match options.compare_storage with
      | None -> 0
      | Some baseline -> gate "storage" baseline (storage_out ()))
  in
  if regressions > 0 then exit 1
