(* Out-of-core storage: spilled grounding vs fully in-memory, on an S2
   fact-count sweep, plus a beyond-RAM scan microbench over the final TΠ.

   Per sweep point the in-memory run is measured first; its TΠ byte size
   sets the spill threshold to an eighth of the table, so the spilled run
   always grounds a KB at least 4x larger than [spill_threshold_bytes]
   (the issue's acceptance bar).  Facts are identity-checked between the
   two runs at every point.

   The scan microbench reopens the largest point's spilled TΠ store twice:
   once materialized back to a resident table (the in-memory route), once
   streamed segment-by-segment through [Plan.Scan_segments].  Both scans
   select one fact id, so zone maps on the ascending id column prune all
   but one segment.  Peak RSS per route is measured in a fresh child
   process (the bench binary re-execs itself, see [rss_child]): inside the
   warm parent the allocator's pooled pages would absorb the
   materialization and the kernel's high-water mark would never move.

   Writes BENCH_storage.json with the same [stages.{stage}.seconds.{key}]
   shape as the other artifacts (keys are fact counts, not pool sizes), so
   [Compare] gates it with the same implementation. *)

open Bench_util
module Table = Relational.Table
module Plan = Relational.Plan
module Store = Storage.Store
module Spill = Storage.Spill

let stage_names = [ "in_memory"; "spilled" ]

(* Bit-exact equality: same rows, same order, same weights. *)
let tables_identical a b =
  Table.nrows a = Table.nrows b
  && Table.width a = Table.width b
  && Table.weighted a = Table.weighted b
  &&
  let ok = ref true in
  for r = 0 to Table.nrows a - 1 do
    if not (Table.equal_rows a r b r) then ok := false;
    if Table.weighted a && compare (Table.weight a r) (Table.weight b r) <> 0
    then ok := false
  done;
  !ok

(* Order-independent fact identity: the sorted key tuples of TΠ. *)
let fact_signature kb =
  let acc = ref [] in
  Kb.Storage.iter
    (fun ~id:_ ~r ~x ~c1 ~y ~c2 ~w:_ -> acc := (r, x, c1, y, c2) :: !acc)
    (Kb.Gamma.pi kb);
  List.sort compare !acc

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

(* Bytes the store occupies on disk (compressed segments + manifest). *)
let rec disk_bytes path =
  match Sys.is_directory path with
  | true ->
    Array.fold_left
      (fun acc e -> acc + disk_bytes (Filename.concat path e))
      0 (Sys.readdir path)
  | false -> (Unix.stat path).Unix.st_size
  | exception Sys_error _ -> 0

let rss () =
  match Obs.peak_rss_bytes () with Some b -> b | None -> 0

(* Child-process entry point, dispatched from [main] before argument
   parsing when PROBKB_STORAGE_RSS_CHILD is set to "MODE:ID:DIR".  Runs
   one scan route over the store at DIR — MODE "materialize" rebuilds the
   resident table first, MODE "stream" scans the segments directly — and
   prints the route's peak-RSS growth in bytes on stdout. *)
let rss_child spec =
  let mode, id, dir =
    match String.split_on_char ':' spec with
    | mode :: id :: rest ->
      (mode, int_of_string id, String.concat ":" rest)
    | _ -> failwith ("bad PROBKB_STORAGE_RSS_CHILD spec: " ^ spec)
  in
  let st = Store.open_dir dir in
  let pred = Plan.Eq_const (0, id) in
  Obs.reset_peak_rss ();
  let base = rss () in
  (match mode with
  | "materialize" ->
    let t = Store.to_table st in
    ignore (Plan.run_materializing (Plan.Select (pred, Plan.Scan t)))
  | "stream" ->
    let pool = Pool.create 1 in
    ignore (Plan.run ~pool (Plan.Select (pred, Plan.Scan_segments (Store.source st))));
    Pool.shutdown pool
  | other -> failwith ("unknown rss child mode " ^ other));
  Printf.printf "%d\n" (max 0 (rss () - base));
  exit 0

(* Peak-RSS of one scan route, measured in a fresh process. *)
let rss_subprocess mode ~id ~dir =
  let env =
    Array.append (Unix.environment ())
      [| Printf.sprintf "PROBKB_STORAGE_RSS_CHILD=%s:%d:%s" mode id dir |]
  in
  let out, inp, err =
    Unix.open_process_full (Filename.quote Sys.executable_name) env
  in
  let line = try input_line out with End_of_file -> "0" in
  (match Unix.close_process_full (out, inp, err) with
  | Unix.WEXITED 0 -> ()
  | _ -> Printf.eprintf "storage rss child (%s) failed\n" mode);
  Option.value (int_of_string_opt (String.trim line)) ~default:0

let run () =
  section "Out-of-core storage — spilled grounding vs fully in-memory";
  (* This experiment measures storage routes, not pool scaling: pin the
     default pool to 1 so the stage timings (and the regression gate)
     are invariant to the CI matrix's PROBKB_DOMAINS. *)
  Pool.set_default_size 1;
  let scale = scale_or 0.1 in
  let points =
    if options.full then [ 20_000; 80_000 ]
    else if options.quick then [ 2_000; 8_000 ]
    else [ 5_000; 20_000 ]
  in
  let seed =
    Workload.Reverb_sherlock.default_config.Workload.Reverb_sherlock.seed
  in
  let iterations = 2 in
  note
    "S2 rules at scale %.3f, fact counts %s, %d grounding iterations; each \
     point grounds twice (in-memory, then spilled at threshold = TΠ/8) and \
     the fact sets are checked identical"
    scale
    (String.concat ", " (List.map string_of_int points))
    iterations;
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "probkb-bench-storage-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists root) then Sys.mkdir root 0o755;
  let times = Hashtbl.create 16 in
  let identical = ref true in
  let thresholds = ref [] in
  let last_spilled_kb = ref None in
  pf "  %10s %12s %11s %11s %12s %10s@." "#facts" "threshold" "in-mem(s)"
    "spilled(s)" "TΠ bytes" "identical";
  List.iter
    (fun n_facts ->
      let g = Workload.Synthetic.s2 ~scale ~seed ~n_facts in
      let kb = Workload.Reverb_sherlock.kb g in
      let ground ?spill kb =
        Grounding.Ground.run
          ~options:
            {
              Grounding.Ground.default_options with
              max_iterations = iterations;
              spill;
            }
          kb
      in
      (* In-memory reference run: its final TΠ size sets the threshold. *)
      let kb_mem = copy_kb kb in
      let _, mem_s = time (fun () -> ignore (ground kb_mem)) in
      let pi_bytes =
        Table.byte_size (Kb.Storage.table (Kb.Gamma.pi kb_mem))
      in
      let sig_mem = fact_signature kb_mem in
      (* Spilled run: TΠ crosses the threshold mid-run and every closure
         iteration probes from the on-disk store after that. *)
      let threshold = max 1 (pi_bytes / 8) in
      let policy =
        Spill.create ~threshold_bytes:threshold
          ~root:(Filename.concat root (string_of_int n_facts))
          ()
      in
      let kb_spill = copy_kb kb in
      let _, spill_s = time (fun () -> ignore (ground ~spill:policy kb_spill)) in
      let same = sig_mem = fact_signature kb_spill in
      if not same then identical := false;
      Hashtbl.replace times ("in_memory", n_facts) mem_s;
      Hashtbl.replace times ("spilled", n_facts) spill_s;
      thresholds := (n_facts, threshold, pi_bytes) :: !thresholds;
      last_spilled_kb := Some kb_spill;
      pf "  %10d %12d %10.3fs %10.3fs %12d %10b@." n_facts threshold mem_s
        spill_s pi_bytes same)
    points;
  measured "identical fact sets across all points: %b" !identical;
  (* --- beyond-RAM scan over the largest point's TΠ --- *)
  let kb_last = Option.get !last_spilled_kb in
  let tpi = Kb.Storage.table (Kb.Gamma.pi kb_last) in
  let scan_dir = Filename.concat root "scan" in
  let segment_rows = 2048 in
  let st = Store.spill ~segment_rows ~dir:scan_dir tpi in
  let stored = disk_bytes scan_dir in
  let resident = Table.byte_size tpi in
  (* One fact id: the ascending id column's zone maps prune every other
     segment. *)
  let last_id = Table.get tpi (Table.nrows tpi - 1) 0 in
  let pred = Plan.Eq_const (0, last_id) in
  let mem_scan =
    let t = Store.to_table st in
    Plan.run_materializing (Plan.Select (pred, Plan.Scan t))
  in
  let spill_scan, summary =
    let obs = Obs.create ~config:Obs.Config.enabled () in
    let out =
      Obs.with_ambient obs (fun () ->
          Plan.run (Plan.Select (pred, Plan.Scan_segments (Store.source st))))
    in
    (out, Obs.Summary.of_trace obs)
  in
  let mem_rss = rss_subprocess "materialize" ~id:last_id ~dir:scan_dir in
  let spill_rss = rss_subprocess "stream" ~id:last_id ~dir:scan_dir in
  let skipped = Obs.Summary.counter summary "storage.segments_skipped" in
  let scanned = Obs.Summary.counter summary "storage.segments_scanned" in
  let scan_identical = tables_identical mem_scan spill_scan in
  if not scan_identical then identical := false;
  measured
    "TΠ scan (%d rows, %d segments): resident %.1f MB | on disk %.1f MB \
     (%.1fx compression)"
    (Table.nrows tpi) (Store.nsegments st)
    (float_of_int resident /. 1.048576e6)
    (float_of_int stored /. 1.048576e6)
    (float_of_int resident /. Float.max 1. (float_of_int stored));
  measured "zone maps: %d of %d segments skipped on the one-id select"
    skipped (Store.nsegments st);
  measured
    "peak RSS (fresh process per route): materialize-and-scan %.1f MB | \
     segment-streamed %.1f MB"
    (float_of_int mem_rss /. 1.048576e6)
    (float_of_int spill_rss /. 1.048576e6);
  measured "scan results identical: %b" scan_identical;
  rm_rf root;
  Pool.set_default_size (Pool.env_domains ());
  let t stage n = Hashtbl.find times (stage, n) in
  let per_point f =
    List.map (fun n -> (string_of_int n, f n)) points
  in
  let stage_json stage =
    ( stage,
      Obs.Json.Obj
        [ ("seconds", Obs.Json.Obj (per_point (fun n -> Obs.Json.Float (t stage n)))) ]
    )
  in
  let json =
    Obs.Json.Obj
      [
        ("meta", meta_json ~engine:"storage");
        ("scale", Obs.Json.Float scale);
        ("points", Obs.Json.List (List.map (fun n -> Obs.Json.Int n) points));
        ("iterations", Obs.Json.Int iterations);
        ("identical_results", Obs.Json.Bool !identical);
        ( "spill",
          Obs.Json.Obj
            (List.rev_map
               (fun (n, threshold, bytes) ->
                 ( string_of_int n,
                   Obs.Json.Obj
                     [
                       ("threshold_bytes", Obs.Json.Int threshold);
                       ("tpi_bytes", Obs.Json.Int bytes);
                       ( "scale_over_threshold",
                         Obs.Json.Float
                           (float_of_int bytes /. Float.max 1. (float_of_int threshold))
                       );
                     ] ))
               !thresholds) );
        ( "scan",
          Obs.Json.Obj
            [
              ("rows", Obs.Json.Int (Table.nrows tpi));
              ("segment_rows", Obs.Json.Int segment_rows);
              ("nsegments", Obs.Json.Int (Store.nsegments st));
              ("segments_scanned", Obs.Json.Int scanned);
              ("segments_skipped", Obs.Json.Int skipped);
              ("resident_bytes", Obs.Json.Int resident);
              ("stored_bytes", Obs.Json.Int stored);
              ( "peak_rss_bytes",
                Obs.Json.Obj
                  [
                    ("in_memory", Obs.Json.Float (float_of_int mem_rss));
                    ("spilled", Obs.Json.Float (float_of_int spill_rss));
                  ] );
            ] );
        ("stages", Obs.Json.Obj (List.map stage_json stage_names));
      ]
  in
  let out = storage_out () in
  let oc = open_out out in
  output_string oc (Obs.Json.to_pretty_string json);
  output_char oc '\n';
  close_out oc;
  note "wrote %s" out
