(* The probkb command-line tool.

   Subcommands:
     generate   synthesize a ReVerb-Sherlock-shaped KB to TSV files
     expand     load a KB, run knowledge expansion, save the result
     infer      expand + marginal inference, print the top inferred facts
     stats      print KB statistics (the Table 2 row)
     demo       the paper's Ruth Gruber worked example *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable debug logging.")

(* Progress chatter goes to stderr so [--metrics json] leaves stdout as a
   single machine-readable document. *)
let load_kb facts rules constraints =
  let kb = Kb.Gamma.create () in
  let n_facts = Kb.Loader.load_facts_file kb facts in
  let n_rules = Kb.Loader.load_rules_file kb rules in
  let n_cons =
    match constraints with
    | Some path -> Kb.Loader.load_constraints_file kb path
    | None -> 0
  in
  Format.eprintf "loaded %d facts, %d rules, %d constraints@." n_facts n_rules
    n_cons;
  kb

(* --- common arguments --- *)

let facts_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "facts" ] ~docv:"FILE" ~doc:"Tab-separated facts file.")

let rules_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "rules" ] ~docv:"FILE" ~doc:"Rules file (one Horn clause per line).")

let constraints_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "constraints" ] ~docv:"FILE"
        ~doc:"Functional constraints file (relation, I|II, degree).")

let sc_arg =
  Arg.(
    value & flag
    & info [ "sc" ] ~doc:"Apply semantic constraints during expansion.")

let theta_arg =
  Arg.(
    value & opt float 1.0
    & info [ "theta" ] ~docv:"T"
        ~doc:"Rule-cleaning threshold: keep the top T fraction of rules.")

let mpp_arg =
  Arg.(
    value & flag
    & info [ "mpp" ]
        ~doc:"Ground on the simulated MPP cluster (ProbKB-p configuration).")

let iterations_arg =
  Arg.(
    value & opt int 15
    & info [ "max-iterations" ] ~docv:"N" ~doc:"Grounding iteration budget.")

let spill_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "spill-dir" ] ~docv:"DIR"
        ~doc:
          "Out-of-core storage root: once the fact table outgrows the \
           spill threshold (64 MiB), grounding keeps an mmap-backed \
           columnar copy under DIR and probes its joins from it. Results \
           are identical to the fully in-memory run.")

let segment_rows_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "segment-rows" ] ~docv:"N"
        ~doc:
          "Rows per on-disk column segment for $(b,--spill-dir) \
           (default 65536).")

let spill_threshold_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "spill-threshold" ] ~docv:"BYTES"
        ~doc:
          "Resident byte size at which a table spills to \
           $(b,--spill-dir) (default 64 MiB).")

let config ?(obs = Probkb.Obs.Config.default) ?target_r_hat ?min_ess
    ?(hybrid = false) ?exact_max_vars ?max_width ?spill_dir ?segment_rows
    ?spill_threshold_bytes ~sc ~theta ~mpp ~iterations ~inference () =
  (* [Config.make] rejects out-of-range knobs (--max-width, \
     --exact-max-vars, --segment-rows) with [Invalid_argument]; surface \
     those as a clean usage error instead of an "internal error" crash. *)
  try
    Probkb.Config.make
      ~engine:
        (if mpp then
           Probkb.Config.Mpp { cluster = Mpp.Cluster.default; views = true }
         else Probkb.Config.Single_node)
      ~semantic_constraints:sc ~rule_theta:theta ~max_iterations:iterations
      ~inference ~obs ?target_r_hat ?min_ess ~hybrid ?exact_max_vars
      ?max_width ?spill_dir ?segment_rows ?spill_threshold_bytes ()
  with Invalid_argument msg ->
    Format.eprintf "probkb: %s@." msg;
    exit 2

(* --- hybrid-dispatch arguments (infer / query / session / serve) --- *)

let hybrid_arg =
  Arg.(
    value & flag
    & info [ "hybrid" ]
        ~doc:
          "Per-component hybrid inference: enumerate or junction-tree-solve \
           low-treewidth components exactly, sample only the high-treewidth \
           cores with chromatic Gibbs.")

let max_width_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-width" ] ~docv:"W"
        ~doc:
          "Induced-width bound for junction-tree variable elimination in \
           the per-component dispatcher (default 12, max 27 — elimination \
           cliques hold W+1 variables).")

let exact_max_vars_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "exact-max-vars" ] ~docv:"N"
        ~doc:
          "Per-component variable cap for exact enumeration (default 25, \
           max 30).")

(* --- observability arguments (expand / infer) --- *)

type metrics = Mjson | Mtext

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write the pipeline trace in Chrome trace_event format (open in \
           chrome://tracing or Perfetto).")

let metrics_arg =
  Arg.(
    value
    & opt (some (enum [ ("json", Mjson); ("text", Mtext) ])) None
    & info [ "metrics" ] ~docv:"json|text"
        ~doc:
          "Print stage metrics (span tree, counters, timers, gauges). With \
           $(b,json), stdout carries a single JSON document.")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "After expansion, run each grounding query (Query 1-i) as a \
           logical plan and print EXPLAIN ANALYZE output: estimated vs. \
           observed cardinalities per operator.")

let obs_config ~trace ~metrics =
  if trace <> None || metrics <> None then Probkb.Obs.Config.enabled
  else Probkb.Obs.Config.default

(* --- live-run snapshots (expand / infer) --- *)

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Print a live progress line per grounding iteration and sampler \
           checkpoint to stderr.")

let snapshots_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshots" ] ~docv:"FILE"
        ~doc:
          "Stream progress snapshots to FILE as NDJSON (one JSON document \
           per line, flushed as the run advances).")

(* Installs the snapshot sinks on the engine's trace; returns the cleanup
   that detaches them and closes the file. *)
let install_snapshots engine ~progress ~snapshots =
  let trace = Probkb.Engine.trace engine in
  let sinks = if progress then [ Obs.Snapshot.ticker Format.err_formatter ] else [] in
  let oc = Option.map open_out snapshots in
  let sinks =
    match oc with Some oc -> Obs.Snapshot.ndjson oc :: sinks | None -> sinks
  in
  if sinks <> [] then
    Probkb.Obs.set_snapshot_sink trace (Some (Obs.Snapshot.tee sinks));
  fun () ->
    Probkb.Obs.set_snapshot_sink trace None;
    match oc with
    | Some oc ->
      close_out oc;
      Format.eprintf "snapshots written to %s@."
        (Option.get snapshots)
    | None -> ()

let write_trace engine = function
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Probkb.Obs.write_chrome_trace (Probkb.Engine.trace engine) oc;
    close_out oc;
    Format.eprintf "trace written to %s@." path

(* EXPLAIN ANALYZE of the active grounding queries over the (expanded)
   fact table. *)
let explain_plans kb =
  let prepared = Grounding.Queries.prepare (Kb.Gamma.partitions kb) in
  let pi = Kb.Gamma.pi kb in
  List.filter_map
    (fun pat ->
      if Mln.Partition.count (Grounding.Queries.partitions prepared) pat = 0
      then None
      else
        let plan = Grounding.Queries.atoms_plan prepared pat pi in
        let _, analysis = Relational.Plan.analyze plan in
        Some (pat, analysis))
    Mln.Pattern.all

let print_explain plans =
  List.iter
    (fun (pat, a) ->
      Format.printf "--- EXPLAIN ANALYZE Query 1-%d (%s) ---@.%a@."
        (Mln.Pattern.index pat + 1)
        (Mln.Pattern.to_string pat)
        Relational.Plan.pp_analysis a)
    plans

let explain_json plans =
  Obs.Json.List
    (List.map
       (fun (pat, a) ->
         Obs.Json.Obj
           [
             ("pattern", Obs.Json.String (Mln.Pattern.to_string pat));
             ("query", Obs.Json.Int (Mln.Pattern.index pat + 1));
             ("plan", Relational.Plan.analysis_to_json a);
           ])
       plans)

(* --- generate --- *)

let generate scale seed out =
  let g =
    Workload.Reverb_sherlock.generate
      { Workload.Reverb_sherlock.default_config with scale; seed }
  in
  let kb = Workload.Reverb_sherlock.kb g in
  if not (Sys.file_exists out) then Sys.mkdir out 0o755;
  let write name f =
    let oc = open_out (Filename.concat out name) in
    f oc;
    close_out oc
  in
  write "facts.tsv" (Kb.Loader.save_facts kb);
  write "rules.mln" (Kb.Loader.save_rules kb);
  write "constraints.tsv" (fun oc ->
      let rel = Relational.Dict.name (Kb.Gamma.relations kb) in
      List.iter
        (fun (fc : Kb.Funcon.t) ->
          Printf.fprintf oc "%s\t%s\t%d\n" (rel fc.Kb.Funcon.rel)
            (match fc.Kb.Funcon.ftype with
            | Kb.Funcon.Type_I -> "I"
            | Kb.Funcon.Type_II -> "II")
            fc.Kb.Funcon.degree)
        (Kb.Gamma.omega kb));
  Format.printf "%a@.written to %s/@." Kb.Gamma.pp_stats (Kb.Gamma.stats kb) out;
  0

let generate_cmd =
  let scale =
    Arg.(
      value & opt float 0.05
      & info [ "scale" ] ~docv:"S" ~doc:"Scale factor (1.0 = Table 2 sizes).")
  in
  let seed =
    Arg.(value & opt int 20140622 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.")
  in
  let out =
    Arg.(
      value & opt string "kb-out"
      & info [ "out"; "o" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Synthesize a ReVerb-Sherlock-shaped KB.")
    Term.(const generate $ scale $ seed $ out)

(* --- expand --- *)

let lint_report kb =
  let issues = Quality.Lint.check ~kb (Kb.Gamma.rules kb) in
  if issues <> [] then begin
    Format.eprintf "rule lint: %d issues@." (List.length issues);
    List.iteri
      (fun i issue ->
        if i < 8 then
          Format.eprintf "  %s@."
            (Quality.Lint.describe
               ~rel_name:(Relational.Dict.name (Kb.Gamma.relations kb))
               ~cls_name:(Relational.Dict.name (Kb.Gamma.classes kb))
               issue))
      issues
  end

let expand facts rules constraints sc theta mpp iterations spill_dir
    segment_rows spill_threshold_bytes out trace metrics explain progress
    snapshots verbose =
  setup_logs verbose;
  let kb = load_kb facts rules constraints in
  lint_report kb;
  let engine =
    Probkb.Engine.create
      ~config:
        (config ~obs:(obs_config ~trace ~metrics) ?spill_dir ?segment_rows
           ?spill_threshold_bytes ~sc ~theta ~mpp ~iterations ~inference:None
           ())
      kb
  in
  let detach = install_snapshots engine ~progress ~snapshots in
  let e = Probkb.Engine.expand engine in
  detach ();
  let plans = if explain then explain_plans kb else [] in
  (match metrics with
  | Some Mjson ->
    let doc =
      Obs.Json.Obj
        (("expansion", Probkb.Report.expansion_to_json e)
        :: (if explain then [ ("explain", explain_json plans) ] else []))
    in
    print_endline (Obs.Json.to_string doc)
  | Some Mtext ->
    Format.printf "%a@." Probkb.Report.pp_expansion e;
    Format.printf "%a@." Probkb.Report.pp_trajectory e.Probkb.Engine.trajectory;
    if explain then print_explain plans;
    Format.printf "%a@." Probkb.Report.pp_summary e.Probkb.Engine.obs
  | None ->
    Format.printf "%a@." Probkb.Report.pp_expansion e;
    if explain then print_explain plans);
  write_trace engine trace;
  (match out with
  | Some path ->
    let oc = open_out path in
    Kb.Loader.save_facts kb oc;
    close_out oc;
    Format.eprintf "expanded facts written to %s@." path
  | None -> ());
  0

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write the expanded facts here.")

let expand_cmd =
  Cmd.v
    (Cmd.info "expand" ~doc:"Run knowledge expansion over a KB.")
    Term.(
      const expand $ facts_arg $ rules_arg $ constraints_arg $ sc_arg
      $ theta_arg $ mpp_arg $ iterations_arg $ spill_dir_arg
      $ segment_rows_arg $ spill_threshold_arg $ out_arg $ trace_arg
      $ metrics_arg $ explain_arg $ progress_arg $ snapshots_arg
      $ verbose_arg)

(* --- infer --- *)

let infer facts rules constraints sc theta iterations top samples target_r_hat
    min_ess hybrid max_width exact_max_vars trace metrics progress snapshots =
  let kb = load_kb facts rules constraints in
  let inference =
    Some
      (Inference.Marginal.Chromatic
         { Inference.Gibbs.default_options with samples })
  in
  let engine =
    Probkb.Engine.create
      ~config:
        (config ~obs:(obs_config ~trace ~metrics) ?target_r_hat ?min_ess
           ~hybrid ?exact_max_vars ?max_width ~sc ~theta ~mpp:false
           ~iterations ~inference ())
      kb
  in
  let detach = install_snapshots engine ~progress ~snapshots in
  let e = Probkb.Engine.expand engine in
  let marginals, run_info = Probkb.Engine.infer_full engine e in
  detach ();
  let marginals_stored = Probkb.Engine.store_marginals engine marginals in
  let result =
    {
      Probkb.Engine.expansion = e;
      marginals_stored;
      inference = run_info;
      obs = Probkb.Engine.summary engine;
    }
  in
  let inferred = ref [] in
  Kb.Storage.iter
    (fun ~id ~r:_ ~x:_ ~c1:_ ~y:_ ~c2:_ ~w:_ ->
      match Hashtbl.find_opt marginals id with
      | Some p -> inferred := (p, id) :: !inferred
      | None -> ())
    (Kb.Gamma.pi kb);
  let top_facts =
    List.sort (fun (a, _) (b, _) -> compare b a) !inferred
    |> List.filteri (fun i _ -> i < top)
  in
  (match metrics with
  | Some Mjson ->
    let doc =
      Obs.Json.Obj
        [
          ("result", Probkb.Report.result_to_json result);
          ( "top",
            Obs.Json.List
              (List.map
                 (fun (p, id) ->
                   Obs.Json.Obj
                     [
                       ("p", Obs.Json.Float p);
                       ( "fact",
                         Obs.Json.String
                           (Format.asprintf "%a" (Kb.Gamma.pp_fact kb) id) );
                     ])
                 top_facts) );
        ]
    in
    print_endline (Obs.Json.to_string doc)
  | (Some Mtext | None) as m ->
    Format.printf
      "expansion: %d new facts; showing the top %d by probability@."
      e.Probkb.Engine.new_fact_count top;
    (match run_info with
    | Some i -> Format.printf "%a@." Probkb.Report.pp_inference i
    | None -> ());
    List.iter
      (fun (p, id) ->
        Format.printf "  %.3f  %a@." p (Kb.Gamma.pp_fact kb) id)
      top_facts;
    if m = Some Mtext then begin
      Format.printf "%a@." Probkb.Report.pp_trajectory
        e.Probkb.Engine.trajectory;
      Format.printf "%a@." Probkb.Report.pp_summary result.Probkb.Engine.obs
    end);
  write_trace engine trace;
  0

let infer_cmd =
  let top =
    Arg.(
      value & opt int 20
      & info [ "top" ] ~docv:"N" ~doc:"How many facts to print.")
  in
  let samples =
    Arg.(
      value & opt int 500
      & info [ "samples" ] ~docv:"N" ~doc:"Gibbs estimation sweeps.")
  in
  let target_r_hat =
    Arg.(
      value
      & opt (some float) None
      & info [ "target-rhat" ] ~docv:"R"
          ~doc:
            "Stop sampling early once the online split-R-hat falls to R \
             (checked every checkpoint; see also $(b,--min-ess)).")
  in
  let min_ess =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-ess" ] ~docv:"N"
          ~doc:
            "Stop sampling early once every variable's effective sample \
             size reaches N.")
  in
  Cmd.v
    (Cmd.info "infer" ~doc:"Expand a KB and compute marginal probabilities.")
    Term.(
      const infer $ facts_arg $ rules_arg $ constraints_arg $ sc_arg
      $ theta_arg $ iterations_arg $ top $ samples $ target_r_hat $ min_ess
      $ hybrid_arg $ max_width_arg $ exact_max_vars_arg $ trace_arg
      $ metrics_arg $ progress_arg $ snapshots_arg)

(* --- stats --- *)

let stats facts rules constraints =
  let kb = load_kb facts rules constraints in
  Format.printf "%a@." Probkb.Report.pp_kb kb;
  0

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Print knowledge-base statistics.")
    Term.(const stats $ facts_arg $ rules_arg $ constraints_arg)

(* --- sql --- *)

let sql () =
  List.iter
    (fun p ->
      Format.printf "--- Query 1-%d (groundAtoms, %s) ---@.%s@.@."
        (Mln.Pattern.index p + 1)
        (Mln.Pattern.to_string p)
        (Grounding.Sql.ground_atoms p);
      Format.printf "--- Query 2-%d (groundFactors, %s) ---@.%s@.@."
        (Mln.Pattern.index p + 1)
        (Mln.Pattern.to_string p)
        (Grounding.Sql.ground_factors p))
    Mln.Pattern.all;
  Format.printf "--- Query 3 (applyConstraints) ---@.%s@."
    Grounding.Sql.apply_constraints;
  0

let sql_cmd =
  Cmd.v
    (Cmd.info "sql"
       ~doc:"Print the grounding queries as SQL (the paper's Figure 3).")
    Term.(const sql $ const ())

(* --- analyze --- *)

let analyze facts rules constraints iterations =
  let kb = load_kb facts rules constraints in
  let engine =
    Probkb.Engine.create
      ~config:
        (config ~sc:false ~theta:1.0 ~mpp:false ~iterations ~inference:None ())
      kb
  in
  let e = Probkb.Engine.expand engine in
  Format.printf "expanded: %d new facts, %d factors@.@."
    e.Probkb.Engine.new_fact_count e.Probkb.Engine.n_factors;
  let omega = Kb.Gamma.omega kb in
  let vs = Quality.Semantic.violations (Kb.Gamma.pi kb) omega in
  Format.printf "%d functional-constraint violations@." (List.length vs);
  let entity_name = Relational.Dict.name (Kb.Gamma.entities kb) in
  let rel_name = Relational.Dict.name (Kb.Gamma.relations kb) in
  List.iteri
    (fun i v ->
      if i < 15 then
        Format.printf "  %a@."
          (Quality.Semantic.pp_violation ~entity_name ~rel_name)
          v)
    vs;
  if List.length vs > 15 then Format.printf "  ... (%d more)@." (List.length vs - 15);
  (* Rule blame via lineage. *)
  let bad =
    List.concat_map
      (fun v ->
        Quality.Semantic.violation_group (Kb.Gamma.pi kb) v
        |> List.filter_map (fun ((r, x, c1, y, c2), _) ->
               Kb.Storage.find (Kb.Gamma.pi kb) ~r ~x ~c1 ~y ~c2))
      vs
  in
  let reports =
    Quality.Rule_feedback.attribute ~kb ~graph:e.Probkb.Engine.graph
      ~bad_facts:bad
  in
  let worst =
    List.filter (fun r -> Quality.Rule_feedback.penalty r > 0.) reports
    |> List.sort (fun a b ->
           compare
             (Quality.Rule_feedback.penalty b)
             (Quality.Rule_feedback.penalty a))
  in
  Format.printf "@.%d rules implicated; worst offenders:@." (List.length worst);
  let cls_name = Relational.Dict.name (Kb.Gamma.classes kb) in
  List.iteri
    (fun i (rep : Quality.Rule_feedback.report) ->
      if i < 10 then
        Format.printf "  penalty %.2f (%d/%d)  %s@."
          (Quality.Rule_feedback.penalty rep)
          rep.Quality.Rule_feedback.blamed rep.Quality.Rule_feedback.derived
          (Mln.Pretty.clause ~rel_name ~cls_name rep.Quality.Rule_feedback.clause))
    worst;
  0

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Expand a KB, report constraint violations and attribute them to \
          rules via lineage.")
    Term.(const analyze $ facts_arg $ rules_arg $ constraints_arg $ iterations_arg)

(* --- session --- *)

(* NDJSON op stream on stdin, one JSON result per line on stdout.  The
   op codec ([Serve.Protocol]) is shared with the [serve] subcommand —
   the wire schema is defined once (see DESIGN.md §13):

     {"op":"ingest","facts":[["r","x","C1","y","C2",0.93], ...]}
     {"op":"retract","keys":[["r","x","C1","y","C2"], ...],"ban":true}
     {"op":"retract_rules","head":"r"}
     {"op":"add_rules","rules":["1.4 r(x:C, y:D) :- q(x, y)"]}
     {"op":"reexpand"}
     {"op":"refresh"}
     {"op":"query","key":["r","x","C1","y","C2"]}
     {"op":"query_local","key":[...],"budget":64}
     {"op":"stats"}

   Epoch ops answer with the epoch ledger entry; query answers with the
   fact view.  Malformed input answers {"error": ...} and the stream
   continues. *)

let session_run facts rules constraints sc theta iterations samples hybrid
    max_width exact_max_vars verbose =
  setup_logs verbose;
  let kb = load_kb facts rules constraints in
  let inference =
    Some
      (Inference.Marginal.Chromatic
         { Inference.Gibbs.default_options with samples })
  in
  let engine =
    Probkb.Engine.create
      ~config:
        (config ~hybrid ?exact_max_vars ?max_width ~sc ~theta ~mpp:false
           ~iterations ~inference ())
      kb
  in
  let s = Probkb.Engine.session engine in
  Format.eprintf "session open: %d facts, %d factors@."
    (Kb.Storage.size (Kb.Gamma.pi kb))
    (Factor_graph.Fgraph.size (Probkb.Engine.Session.graph s));
  (try
     while true do
       let line = input_line stdin in
       if String.trim line <> "" then begin
         print_endline (Obs.Json.to_string (Serve.Protocol.step kb s line));
         flush stdout
       end
     done
   with End_of_file -> ());
  0

let session_cmd =
  let samples =
    Arg.(
      value & opt int 200
      & info [ "samples" ] ~docv:"N" ~doc:"Gibbs estimation sweeps per refresh.")
  in
  Cmd.v
    (Cmd.info "session"
       ~doc:
         "Open a live session over an expanded KB: read NDJSON \
          ingest/retract/refresh/query ops from stdin, answer one JSON \
          document per op on stdout.")
    Term.(
      const session_run $ facts_arg $ rules_arg $ constraints_arg $ sc_arg
      $ theta_arg $ iterations_arg $ samples $ hybrid_arg $ max_width_arg
      $ exact_max_vars_arg $ verbose_arg)

(* --- serve --- *)

(* The concurrent front-end: expand the KB, open a session, wrap it in a
   Writer (single mutable arm) and serve the NDJSON protocol over a
   socket — reads answered concurrently from the published epoch
   snapshot by a pool of reader domains, writes serialized through the
   writer domain.  With --connect, act as a client instead: pipe NDJSON
   stdin → server → stdout. *)

let connect_addr target =
  if String.contains target '/' then Unix.ADDR_UNIX target
  else
    match String.rindex_opt target ':' with
    | Some i ->
      let host = String.sub target 0 i in
      let port =
        int_of_string (String.sub target (i + 1) (String.length target - i - 1))
      in
      let inet =
        if host = "" || host = "localhost" then Unix.inet_addr_loopback
        else Unix.inet_addr_of_string host
      in
      Unix.ADDR_INET (inet, port)
    | None -> Unix.ADDR_UNIX target

let serve_client target =
  let addr = connect_addr target in
  let fd =
    Unix.socket
      (match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET)
      Unix.SOCK_STREAM 0
  in
  Unix.connect fd addr;
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     while true do
       let line = input_line stdin in
       if String.trim line <> "" then begin
         output_string oc line;
         output_char oc '\n';
         flush oc;
         print_endline (input_line ic);
         flush stdout
       end
     done
   with End_of_file -> ());
  (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
  0

let serve_run facts rules constraints sc theta iterations samples hybrid
    max_width exact_max_vars pool port socket connect admin_port access_log
    slow_ms metrics verbose =
  setup_logs verbose;
  match (connect, facts, rules) with
  | Some target, _, _ -> serve_client target
  | None, None, _ | None, _, None ->
    Format.eprintf "serve: --facts and --rules are required (unless --connect)@.";
    2
  | None, Some facts, Some rules ->
    let kb = load_kb facts rules constraints in
    let inference =
      Some
        (Inference.Marginal.Chromatic
           { Inference.Gibbs.default_options with samples })
    in
    (* The serving trace is always on: request histograms and counters
       are the server's runtime surface (/metrics, /statusz, the metrics
       op).  Span history is capped per domain — the cumulative metrics
       are unaffected, only explain-style span aggregation forgets old
       requests. *)
    let obs = Probkb.Obs.Config.make ~enabled:true ~retain_spans:4096 () in
    let engine =
      Probkb.Engine.create
        ~config:
          (config ~obs ~hybrid ?exact_max_vars ?max_width ~sc ~theta
             ~mpp:false ~iterations ~inference ())
        kb
    in
    let s = Probkb.Engine.session engine in
    let writer = Probkb.Engine.Writer.of_session s in
    let addr =
      match socket with
      | Some path -> Unix.ADDR_UNIX path
      | None -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)
    in
    let access_oc = Option.map open_out access_log in
    let srv =
      Serve.Server.start ~pool ~obs:(Probkb.Engine.trace engine)
        ?access_log:(Option.map Serve.Server.ndjson_sink access_oc)
        ?slow_ms ~kb ~writer ~addr ()
    in
    (match (Serve.Server.port srv, socket) with
    | Some p, _ ->
      Format.eprintf "serving on 127.0.0.1:%d (pool %d): %d facts, %d factors@."
        p pool
        (Kb.Storage.size (Kb.Gamma.pi kb))
        (Factor_graph.Fgraph.size (Probkb.Engine.Session.graph s))
    | None, Some path ->
      Format.eprintf "serving on %s (pool %d): %d facts, %d factors@." path pool
        (Kb.Storage.size (Kb.Gamma.pi kb))
        (Factor_graph.Fgraph.size (Probkb.Engine.Session.graph s))
    | None, None -> ());
    let admin =
      match admin_port with
      | None -> None
      | Some p ->
        let a =
          Serve.Admin.start
            ~addr:(Unix.ADDR_INET (Unix.inet_addr_loopback, p))
            ~routes:
              [
                ( "/metrics",
                  Serve.Admin.route ~content_type:"text/plain; version=0.0.4"
                    (fun () -> Serve.Server.metrics_text srv) );
                ( "/statusz",
                  Serve.Admin.route ~content_type:"application/json" (fun () ->
                      Obs.Json.to_string (Serve.Server.status_json srv) ^ "\n")
                );
              ]
            ()
        in
        (match Serve.Admin.port a with
        | Some ap ->
          Format.eprintf "admin on 127.0.0.1:%d (/metrics, /statusz)@." ap
        | None -> ());
        Some a
    in
    (* The handler may run on any domain under OCaml 5 — an atomic flag,
       not a plain ref, so the main loop is guaranteed to observe it. *)
    let stop_requested = Atomic.make false in
    let on_signal _ = Atomic.set stop_requested true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    while not (Atomic.get stop_requested) do
      try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    Format.eprintf "shutting down@.";
    Option.iter Serve.Admin.stop admin;
    Serve.Server.stop srv;
    (* Shutdown summary: the final merged telemetry, after every domain
       has been joined (so nothing is still recording). *)
    let summary = Obs.Summary.of_trace (Probkb.Engine.trace engine) in
    (match metrics with
    | Some Mjson -> print_endline (Obs.Json.to_string (Obs.Summary.to_json summary))
    | Some Mtext | None ->
      Format.eprintf
        "served %d requests (%d reads, %d writes), final epoch %d@."
        (Obs.Summary.counter summary "serve.requests")
        (Obs.Summary.counter summary "serve.reads")
        (Obs.Summary.counter summary "serve.writes")
        (match Obs.Summary.gauge summary "serve.epoch" with
        | Some e -> int_of_float e
        | None -> 0);
      Format.eprintf "%a@." Obs.Summary.pp summary);
    Option.iter close_out access_oc;
    0

let serve_cmd =
  let samples =
    Arg.(
      value & opt int 200
      & info [ "samples" ] ~docv:"N" ~doc:"Gibbs estimation sweeps per refresh.")
  in
  let pool =
    Arg.(
      value & opt int 4
      & info [ "pool" ] ~docv:"N"
          ~doc:"Reader domains serving queries concurrently.")
  in
  let port =
    Arg.(
      value & opt int 7474
      & info [ "port" ] ~docv:"PORT"
          ~doc:"TCP port to listen on (loopback only); 0 picks a free port.")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix-domain socket instead of TCP.")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"TARGET"
          ~doc:
            "Client mode: connect to a running server (HOST:PORT, or a \
             Unix-socket path) and pipe NDJSON ops from stdin, one reply \
             per line on stdout.  No KB is loaded.")
  in
  let facts_opt =
    Arg.(
      value
      & opt (some file) None
      & info [ "facts" ] ~docv:"FILE"
          ~doc:"Tab-separated facts file (server mode).")
  in
  let rules_opt =
    Arg.(
      value
      & opt (some file) None
      & info [ "rules" ] ~docv:"FILE"
          ~doc:"Rules file, one Horn clause per line (server mode).")
  in
  let admin_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "admin-port" ] ~docv:"PORT"
          ~doc:
            "Expose GET /metrics (Prometheus text) and GET /statusz (JSON) \
             on this loopback TCP port; 0 picks a free port (printed on \
             stderr).")
  in
  let access_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "access-log" ] ~docv:"FILE"
          ~doc:
            "Append one NDJSON record per request: \
             {ts, id, op, kind, seconds, epoch, slow}.")
  in
  let slow_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Slow-query threshold in milliseconds: slower requests are \
             counted, marked in the access log, and logged with their full \
             span subtree (grounding hops, boundary, pruned mass).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve the knowledge base over a socket: concurrent reads against \
          the published epoch snapshot, writes committed behind it by a \
          single writer domain (NDJSON protocol, one op per line).  \
          Telemetry: $(b,--admin-port) for HTTP scraping, the in-band \
          $(b,metrics) op, $(b,--access-log)/$(b,--slow-ms) for structured \
          request logs, and a shutdown summary on SIGINT/SIGTERM (to stderr, \
          or as JSON on stdout with $(b,--metrics) json).")
    Term.(
      const serve_run $ facts_opt $ rules_opt $ constraints_arg $ sc_arg
      $ theta_arg $ iterations_arg $ samples $ hybrid_arg $ max_width_arg
      $ exact_max_vars_arg $ pool $ port $ socket $ connect $ admin_port
      $ access_log $ slow_ms $ metrics_arg $ verbose_arg)

(* --- query --- *)

(* Answer one point query.  With --local, ground only the query's
   neighbourhood backward from the fact (no factor graph is ever
   materialized); without it, run the full pipeline for comparison.
   Stdout carries a single JSON document either way. *)

let query_run facts rules constraints sc theta iterations samples hybrid
    max_width exact_max_vars key local budget max_hops decay min_influence
    verbose =
  setup_logs verbose;
  let kb = load_kb facts rules constraints in
  match String.split_on_char ',' key with
  | [ r; x; c1; y; c2 ] ->
    let r = Kb.Gamma.relation kb (String.trim r)
    and x = Kb.Gamma.entity kb (String.trim x)
    and c1 = Kb.Gamma.cls kb (String.trim c1)
    and y = Kb.Gamma.entity kb (String.trim y)
    and c2 = Kb.Gamma.cls kb (String.trim c2) in
    let inference =
      Some
        (Inference.Marginal.Chromatic
           { Inference.Gibbs.default_options with samples })
    in
    let engine =
      Probkb.Engine.create
        ~config:
          (config ~hybrid ?exact_max_vars ?max_width ~sc ~theta ~mpp:false
             ~iterations ~inference ())
        kb
    in
    let seconds_json ~ground ~infer =
      Obs.Json.Obj
        [
          ("ground", Obs.Json.Float ground); ("infer", Obs.Json.Float infer);
        ]
    in
    let doc =
      if local then begin
        (* Fact closure only — the backward walk needs the fact table
           closed under the rules, but no factor graph. *)
        let hook =
          if sc then Some (Quality.Semantic.hook (Kb.Gamma.omega kb))
          else None
        in
        ignore
          (Grounding.Ground.closure
             ~options:
               {
                 Grounding.Ground.default_options with
                 max_iterations = iterations;
                 apply_constraints = hook;
                 obs = Probkb.Engine.trace engine;
               }
             kb);
        let budget =
          match (budget, max_hops, decay, min_influence) with
          | None, None, 1.0, 0.0 -> None
          | _ ->
            Some
              (Grounding.Local.budget ?max_facts:budget ?max_hops ~decay
                 ~min_influence ())
        in
        match Probkb.Engine.query_local ?budget engine ~r ~x ~c1 ~y ~c2 with
        | None -> Obs.Json.Obj [ ("found", Obs.Json.Bool false) ]
        | Some a ->
          Obs.Json.Obj
            [
              ("found", Obs.Json.Bool true);
              ("id", Obs.Json.Int a.Probkb.Engine.id);
              ("marginal", Obs.Json.Float a.Probkb.Engine.marginal);
              ( "method",
                Obs.Json.String
                  (if a.Probkb.Engine.enumerated then "local-exact"
                   else "local-gibbs") );
              ("interior", Obs.Json.Int a.Probkb.Engine.interior);
              ("boundary", Obs.Json.Int a.Probkb.Engine.boundary);
              ("hops", Obs.Json.Int a.Probkb.Engine.hops);
              ("factors", Obs.Json.Int a.Probkb.Engine.factors);
              ("pruned_mass", Obs.Json.Float a.Probkb.Engine.pruned_mass);
              ("truncated", Obs.Json.Bool a.Probkb.Engine.truncated);
              ( "seconds",
                seconds_json ~ground:a.Probkb.Engine.ground_seconds
                  ~infer:a.Probkb.Engine.infer_seconds );
            ]
      end
      else begin
        let t0 = Relational.Stats.now () in
        let e = Probkb.Engine.expand engine in
        let ground_seconds = Relational.Stats.now () -. t0 in
        let t1 = Relational.Stats.now () in
        let marginals = Probkb.Engine.infer engine e in
        let infer_seconds = Relational.Stats.now () -. t1 in
        match Kb.Storage.find (Kb.Gamma.pi kb) ~r ~x ~c1 ~y ~c2 with
        | None -> Obs.Json.Obj [ ("found", Obs.Json.Bool false) ]
        | Some id ->
          let marginal =
            match Hashtbl.find_opt marginals id with
            | Some p -> Some p
            | None -> (
              (* A fact outside the factor graph: its stored weight (the
                 extraction confidence) is the best available estimate. *)
              match Kb.Storage.row_of_id (Kb.Gamma.pi kb) id with
              | Some row ->
                let w =
                  Relational.Table.weight
                    (Kb.Storage.table (Kb.Gamma.pi kb))
                    row
                in
                if Relational.Table.is_null_weight w then None else Some w
              | None -> None)
          in
          Obs.Json.Obj
            [
              ("found", Obs.Json.Bool true);
              ("id", Obs.Json.Int id);
              ( "marginal",
                match marginal with
                | Some p -> Obs.Json.Float p
                | None -> Obs.Json.Null );
              ("method", Obs.Json.String "full");
              ("factors", Obs.Json.Int e.Probkb.Engine.n_factors);
              ("seconds", seconds_json ~ground:ground_seconds ~infer:infer_seconds);
            ]
      end
    in
    print_endline (Obs.Json.to_string doc);
    0
  | _ ->
    Format.eprintf "--key must be \"relation,x,C1,y,C2\" (comma-separated)@.";
    1

let query_cmd =
  let key =
    Arg.(
      required
      & opt (some string) None
      & info [ "key" ] ~docv:"KEY"
          ~doc:"The queried fact, as \"relation,x,C1,y,C2\" (comma-separated).")
  in
  let local =
    Arg.(
      value & flag
      & info [ "local" ]
          ~doc:
            "Answer by backward local grounding: walk the rules in reverse \
             from the queried fact and solve only its neighbourhood, \
             instead of grounding the whole KB.")
  in
  let budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Local-grounding frontier cap: expand at most N facts (query \
             included); facts beyond the cap are clamped at the boundary.")
  in
  let max_hops =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-hops" ] ~docv:"N"
          ~doc:"Stop the backward walk after N hops from the query.")
  in
  let decay =
    Arg.(
      value & opt float 1.0
      & info [ "decay" ] ~docv:"D"
          ~doc:
            "Per-hop influence decay in (0, 1]; combined with \
             $(b,--min-influence) it prunes low-influence frontier facts.")
  in
  let min_influence =
    Arg.(
      value & opt float 0.0
      & info [ "min-influence" ] ~docv:"I"
          ~doc:"Stop expanding once the hop influence D^hops falls below I.")
  in
  let samples =
    Arg.(
      value & opt int 500
      & info [ "samples" ] ~docv:"N"
          ~doc:
            "Gibbs estimation sweeps (used when the neighbourhood is too \
             large for exact enumeration).")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Answer a point query; with $(b,--local), ground only the query's \
          neighbourhood.")
    Term.(
      const query_run $ facts_arg $ rules_arg $ constraints_arg $ sc_arg
      $ theta_arg $ iterations_arg $ samples $ hybrid_arg $ max_width_arg
      $ exact_max_vars_arg $ key $ local $ budget $ max_hops $ decay
      $ min_influence $ verbose_arg)

(* --- demo --- *)

let demo () =
  let kb = Kb.Gamma.create () in
  ignore
    (Kb.Loader.load_rules kb
       [
         "1.40 live_in(x:Writer, y:Place) :- born_in(x, y)";
         "1.53 live_in(x:Writer, y:City) :- born_in(x, y)";
         "0.52 located_in(x:Place, y:City) :- born_in(z:Writer, x), born_in(z, y)";
       ]);
  ignore
    (Kb.Gamma.add_fact_by_name kb ~r:"born_in" ~x:"Ruth Gruber" ~c1:"Writer"
       ~y:"New York City" ~c2:"City" ~w:0.96);
  ignore
    (Kb.Gamma.add_fact_by_name kb ~r:"born_in" ~x:"Ruth Gruber" ~c1:"Writer"
       ~y:"Brooklyn" ~c2:"Place" ~w:0.93);
  let engine =
    Probkb.Engine.create
      ~config:(Probkb.Config.make ~inference:(Some Inference.Marginal.Exact) ())
      kb
  in
  ignore (Probkb.Engine.run engine);
  Kb.Storage.iter
    (fun ~id ~r:_ ~x:_ ~c1:_ ~y:_ ~c2:_ ~w ->
      Format.printf "  P = %s  %a@."
        (if Relational.Table.is_null_weight w then " ?? "
         else Printf.sprintf "%.2f" w)
        (Kb.Gamma.pp_fact kb) id)
    (Kb.Gamma.pi kb);
  0

let demo_cmd =
  Cmd.v
    (Cmd.info "demo" ~doc:"Run the paper's worked example.")
    Term.(const demo $ const ())

let () =
  let info =
    Cmd.info "probkb" ~version:"1.0.0"
      ~doc:"Knowledge expansion over probabilistic knowledge bases."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            generate_cmd; expand_cmd; infer_cmd; query_cmd; stats_cmd;
            sql_cmd; analyze_cmd; session_cmd; serve_cmd; demo_cmd;
          ]))
