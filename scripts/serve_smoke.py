#!/usr/bin/env python3
"""End-to-end smoke of the serve telemetry surface.

Starts `probkb serve` with an admin endpoint, an access log and a zero
slow-query threshold, drives a handful of NDJSON ops over the socket,
scrapes /metrics and /statusz over HTTP, then SIGINTs the server and
checks the shutdown summary and the access log.

Usage: serve_smoke.py PROBKB_EXE DATA_DIR

DATA_DIR must contain facts.tsv and rules.mln (from `probkb generate`);
the access log is written to DATA_DIR/access.ndjson.
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import time
import urllib.request

def fail(msg):
    print(f"serve smoke FAILED: {msg}", file=sys.stderr)
    sys.exit(1)

def main():
    exe, data = sys.argv[1], sys.argv[2]
    facts = os.path.join(data, "facts.tsv")
    rules = os.path.join(data, "rules.mln")
    access = os.path.join(data, "access.ndjson")

    with open(facts) as f:
        key = f.readline().split("\t")[:5]

    proc = subprocess.Popen(
        [exe, "serve", "--facts", facts, "--rules", rules,
         "--port", "0", "--admin-port", "0",
         "--access-log", access, "--slow-ms", "0"],
        stderr=subprocess.PIPE, text=True)

    # The server announces both listeners on stderr:
    #   serving on 127.0.0.1:PORT (pool N): ...
    #   admin on 127.0.0.1:PORT (/metrics, /statusz)
    port = admin = None
    stderr_lines = []
    deadline = time.time() + 120
    while (port is None or admin is None) and time.time() < deadline:
        line = proc.stderr.readline()
        if not line:
            break
        stderr_lines.append(line)
        m = re.search(r"serving on 127\.0\.0\.1:(\d+)", line)
        if m:
            port = int(m.group(1))
        m = re.search(r"admin on 127\.0\.0\.1:(\d+)", line)
        if m:
            admin = int(m.group(1))
    if port is None or admin is None:
        proc.kill()
        fail(f"did not announce both ports; stderr: {''.join(stderr_lines)}")

    # Drive the NDJSON protocol: one write, two reads, one in-band scrape.
    ops = [
        {"op": "ingest",
         "facts": [[key[0], "smoke_entity", key[2], key[3], key[4], 0.7]]},
        {"op": "query_local", "key": key, "max_facts": 32},
        {"op": "stats"},
        {"op": "metrics"},
    ]
    sock = socket.create_connection(("127.0.0.1", port), timeout=30)
    f = sock.makefile("rw")
    replies = []
    for op in ops:
        f.write(json.dumps(op) + "\n")
        f.flush()
        replies.append(json.loads(f.readline()))
    sock.close()

    if "epoch" not in replies[0]:
        fail(f"ingest reply: {replies[0]}")
    if replies[1].get("found") is not True:
        fail(f"query_local reply: {replies[1]}")
    if "epoch" not in replies[2]:
        fail(f"stats reply: {replies[2]}")
    summary = replies[3].get("metrics")
    if not isinstance(summary, dict) or "hists" not in summary:
        fail(f"metrics reply carries no summary: {replies[3]}")

    # The Prometheus exposition, over HTTP like a scraper would.
    with urllib.request.urlopen(f"http://127.0.0.1:{admin}/metrics") as r:
        ctype = r.headers["Content-Type"]
        text = r.read().decode()
    if not ctype.startswith("text/plain"):
        fail(f"/metrics content-type {ctype}")
    for needle in [
        "# TYPE serve_requests_total counter",
        f"serve_requests_total {len(ops)}",
        "# TYPE serve_request_seconds histogram",
        'serve_request_seconds_bucket{op="query_local",le="+Inf"} 1',
        'serve_request_seconds_count{op="query_local"} 1',
        "# TYPE serve_epoch_lag gauge",
        "serve_epoch_lag 0",
        "serve_apply_seconds_count 1",
    ]:
        if needle not in text:
            fail(f"/metrics missing {needle!r}\n{text}")

    with urllib.request.urlopen(f"http://127.0.0.1:{admin}/statusz") as r:
        status = json.loads(r.read().decode())
    if status.get("epoch") != 1 or status.get("requests") != len(ops):
        fail(f"/statusz figures off: {status}")
    for field in ["uptime_seconds", "epoch_lag", "queue_depth", "mem",
                  "request_seconds", "slow_requests"]:
        if field not in status:
            fail(f"/statusz missing {field!r}: {status}")
    if "query_local" not in status["request_seconds"]:
        fail(f"/statusz has no query_local digest: {status}")

    # Unknown path and non-GET answer HTTP errors, not hangs.
    try:
        urllib.request.urlopen(f"http://127.0.0.1:{admin}/nope")
        fail("/nope did not 404")
    except urllib.error.HTTPError as e:
        if e.code != 404:
            fail(f"/nope answered {e.code}")

    # SIGINT: clean shutdown with the summary on stderr.
    proc.send_signal(signal.SIGINT)
    _, err = proc.communicate(timeout=120)
    if proc.returncode != 0:
        fail(f"exit code {proc.returncode}; stderr: {err}")
    if f"served {len(ops)} requests" not in err:
        fail(f"no shutdown summary in stderr: {err}")
    if "histograms:" not in err or "serve.request_seconds" not in err:
        fail(f"shutdown summary has no histogram table: {err}")

    # The access log: one record per request, unique ids, span subtrees
    # on the slow ones (threshold 0 marks everything slow).
    with open(access) as fh:
        records = [json.loads(line) for line in fh]
    if len(records) != len(ops):
        fail(f"{len(records)} access records for {len(ops)} requests")
    ids = [rec["id"] for rec in records]
    if len(set(ids)) != len(ops):
        fail(f"request ids not unique: {ids}")
    for rec in records:
        for field in ["ts", "op", "kind", "seconds", "epoch", "slow"]:
            if field not in rec:
                fail(f"access record missing {field!r}: {rec}")
        if rec["slow"] and "spans" not in rec:
            fail(f"slow record has no spans: {rec}")
    ql = [rec for rec in records if rec["op"] == "query_local"]
    if not ql:
        fail("no query_local access record")
    spans = json.dumps(ql[0].get("spans", {}))
    for attr in ["query_local", "hops", "boundary", "pruned_mass"]:
        if attr not in spans:
            fail(f"slow-query subtree missing {attr!r}: {spans}")

    print("serve smoke ok")

if __name__ == "__main__":
    main()
