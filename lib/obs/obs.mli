(** Pipeline observability: structured tracing, counters, and metrics.

    A trace context ({!t}) collects monotonic-clock spans (with parent
    nesting), named counters, float timers, and gauges.  Recording is
    race-free under the domain pool: every domain writes to its own
    buffer (domain-local storage), and the buffers are merged only when a
    summary or a trace file is produced.  A disabled context (the
    default, {!null}) reduces every instrumentation point to a single
    branch, so the instrumented engine stays within noise of the
    uninstrumented one.

    Spans fanned out through [Pool] nest under the span that submitted
    them: a worker domain whose local span stack is empty parents new
    spans on the creator domain's innermost open span.  Because pool
    submissions are synchronous barriers, the resulting merged tree is
    the same for any pool size.

    Exports: {!Summary} (aggregated tree + counters, with JSON in both
    directions), and {!write_chrome_trace} (Chrome [trace_event] format,
    loadable in [chrome://tracing] / Perfetto). *)

(** Minimal JSON values, printer and parser (no external dependency). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  exception Malformed of string

  val to_string : t -> string
  val to_pretty_string : t -> string
  val pp : Format.formatter -> t -> unit

  (** @raise Malformed on invalid input. *)
  val of_string : string -> t

  val of_string_opt : string -> t option
  val member : string -> t -> t option
  val to_int : t -> int option
  val to_float : t -> float option
  val to_string_value : t -> string option
  val to_list : t -> t list option
end

module Config : sig
  type t = {
    enabled : bool;
    retain_spans : int option;
        (** per-domain cap on retained closed spans ([None] = unbounded).
            Long-running processes (the serving layer) set a cap so span
            history does not grow without limit; counters, timers, gauges
            and histograms are cumulative and unaffected. *)
  }

  val default : t
  (** disabled *)

  val disabled : t
  val enabled : t
  val make : ?enabled:bool -> ?retain_spans:int -> unit -> t
end

(** Attribute values attached to spans. *)
type value = I of int | F of float | S of string

(** {2 Histograms}

    Fixed log-bucketed histograms: 40 finite buckets whose upper bounds
    double from [1e-6] (microseconds to ~6.4 days when recording
    seconds), plus one overflow bucket.  All state is integral — the sum
    is kept in rounded micro-units — so merging per-domain histograms is
    commutative integer addition and the merged result is bit-identical
    for every pool size. *)

module Hist : sig
  type t

  val finite_buckets : int
  (** number of finite buckets (40) *)

  val n_buckets : int
  (** [finite_buckets + 1]: the last bucket is the overflow bucket *)

  (** [bound i] is the upper bound of finite bucket [i]
      ([1e-6 * 2. ** i]); bucket [0] holds observations [<= 1e-6], the
      overflow bucket everything above [bound (finite_buckets - 1)]. *)
  val bound : int -> float

  val create : unit -> t
  val copy : t -> t

  (** [observe h v] records one observation ([NaN] lands in the overflow
      bucket; non-finite values contribute 0 to the sum). *)
  val observe : t -> float -> unit

  (** [merge_into dst src] adds [src]'s counts and sum into [dst]. *)
  val merge_into : t -> t -> unit

  val count : t -> int

  val sum : t -> float
  (** sum of observations, from the micro-unit accumulator *)

  val sum_micro : t -> int
  val buckets : t -> int array

  (** [quantile h q] is the rank-interpolated [q]-quantile estimate over
      the bucket bounds: [nan] when empty; observations in the overflow
      bucket clamp to the last finite bound. *)
  val quantile : t -> float -> float

  (** [max_value h] is the upper bound of the highest occupied bucket
      ([nan] when empty). *)
  val max_value : t -> float

  val equal : t -> t -> bool
  val to_json : t -> Json.t

  (** @raise Failure on JSON that does not encode a histogram. *)
  val of_json : Json.t -> t
end

(** {2 Live-run snapshots}

    Periodic progress records emitted by long-running stages (grounding
    iterations, Gibbs checkpoints) through a pluggable sink.  The [data]
    payload is deterministic — identical for every pool size — while
    [at] and [perf] carry wall-clock and memory figures that are not. *)

module Snapshot : sig
  type t = {
    seq : int;  (** monotonic per trace *)
    stage : string;  (** e.g. ["ground"], ["mpp"], ["gibbs"] *)
    point : string;  (** e.g. ["iteration"], ["checkpoint"] *)
    step : int;  (** iteration / sweep number *)
    at : float;  (** seconds since the trace was created (volatile) *)
    data : (string * value) list;  (** deterministic fields *)
    perf : (string * value) list;  (** volatile fields: rates, memory *)
  }

  type sink = t -> unit

  val to_json : t -> Json.t

  (** [deterministic_json s] is [to_json s] without the volatile [at] and
      [perf] fields — the pool-size-invariant content. *)
  val deterministic_json : t -> Json.t

  (** @raise Failure / Json.Malformed on input that does not encode a
      snapshot. *)
  val of_json : Json.t -> t

  val of_json_string : string -> t

  (** [ndjson oc] is a sink writing one JSON document per line, flushed
      after every record. *)
  val ndjson : out_channel -> sink

  (** [ticker ppf] is a sink printing one human-readable line per
      snapshot (for [--progress] on stderr). *)
  val ticker : Format.formatter -> sink

  val tee : sink list -> sink
end

(** [mem_stats ()] is the volatile memory figures (OCaml heap MB, major
    collections, RSS when /proc is readable) for a snapshot's [perf]
    section. *)
val mem_stats : unit -> (string * value) list

(** [peak_rss_bytes ()] is the process's peak resident set size in bytes
    (Linux [VmHWM] from [/proc/self/status]); [None] where /proc is
    unavailable.  Executors emit it as the [exec.peak_rss_bytes]
    gauge next to [exec.peak_intermediate_bytes]. *)
val peak_rss_bytes : unit -> int option

(** [reset_peak_rss ()] rewinds the kernel's peak-RSS high-water mark to
    the current RSS (Linux; a no-op elsewhere), so separate phases of one
    process can be peak-measured independently. *)
val reset_peak_rss : unit -> unit

type t
(** A trace context. *)

type trace = t

val create : ?config:Config.t -> unit -> t

val null : t
(** the shared disabled context; recording into it is free *)

val enabled : t -> bool

(** {2 Ambient context}

    Operators too deep to thread a trace argument through (hash joins,
    distinct) read the process-wide ambient trace.  [null] unless a
    pipeline stage installed its trace. *)

val ambient : unit -> t
val set_ambient : t -> unit
val with_ambient : t -> (unit -> 'a) -> 'a

(** {2 Snapshot stream}

    Emission is gated on the sink alone, not on {!enabled}: a
    [--snapshots] run does not pay for span recording.  Snapshots must be
    emitted from single-threaded points (between pool barriers) — the
    grounding iteration boundary, the sampler checkpoint. *)

(** [set_snapshot_sink t sink] installs (or, with [None], removes) the
    snapshot sink.  Refused on {!null}, which is shared process-wide. *)
val set_snapshot_sink : t -> Snapshot.sink option -> unit

val snapshots_enabled : t -> bool

(** [snapshot t ~stage ~point ~step ?perf data] emits one record through
    the installed sink (no-op without one).  [data] must be deterministic
    across pool sizes; volatile figures belong in [perf]. *)
val snapshot :
  t ->
  stage:string ->
  point:string ->
  step:int ->
  ?perf:(string * value) list ->
  (string * value) list ->
  unit

(** {2 Spans} *)

type sp
(** An open span handle (a no-op token when the trace is disabled). *)

val begin_span : ?cat:string -> t -> string -> sp
val set_attr : sp -> string -> value -> unit
val end_span : ?attrs:(string * value) list -> t -> sp -> unit

(** [with_span t name f] wraps [f] in a span; the span is closed (with an
    ["error"] attribute) even if [f] raises.  Begin/end pairs must run on
    the same domain, innermost first — [with_span] guarantees both. *)
val with_span :
  ?cat:string ->
  ?attrs:(string * value) list ->
  t ->
  string ->
  (unit -> 'a) ->
  'a

(** {2 Recorded span subtrees}

    Materialized copies of closed spans for structured logging — the
    serving layer's slow-query log dumps the full [serve.request]
    subtree (grounding hops, boundary sizes, pruned mass) as JSON. *)

module Rec_span : sig
  type t = {
    name : string;
    cat : string;
    seconds : float;
    attrs : (string * value) list;
    children : t list;
  }

  val to_json : t -> Json.t
end

(** [subtree t sp] is the just-ended span [sp] with its same-domain
    descendants, oldest first.  Call it on the domain that ran the span,
    immediately after [end_span] (before {!Config.retain_spans}
    truncation can drop the descendants).  [None] on a disabled trace or
    when the span is no longer retained.  Spans fanned out to other pool
    domains are not expanded. *)
val subtree : t -> sp -> Rec_span.t option

(** {2 Counters, timers, gauges, histograms} *)

val add : t -> string -> int -> unit
val incr : t -> string -> unit
val add_time : t -> string -> float -> unit

(** [gauge t name v] sets a last-write-wins gauge. *)
val gauge : t -> string -> float -> unit

(** [gauge_max t name v] keeps the maximum over all writes. *)
val gauge_max : t -> string -> float -> unit

(** [observe t name v] records one observation into histogram [name] on
    the calling domain's buffer (race-free, like counters). *)
val observe : t -> string -> float -> unit

(** [timed t name f] accumulates [f]'s duration into timer [name]. *)
val timed : t -> string -> (unit -> 'a) -> 'a

(** [natural_compare a b] orders mixed text/number strings so that
    ["iteration 10"] sorts after ["iteration 2"]. *)
val natural_compare : string -> string -> int

(** {2 Aggregated summaries} *)

module Summary : sig
  (** One aggregation node: all spans sharing a root-to-here name path,
      children sorted by {!natural_compare}. *)
  type node = {
    name : string;
    count : int;
    seconds : float;
    children : node list;
  }

  type t = {
    total_seconds : float;  (** sum over root spans *)
    spans : node list;
    counters : (string * int) list;  (** sorted by name *)
    timers : (string * float) list;
    gauges : (string * float) list;
    hists : (string * Hist.t) list;  (** merged per-domain histograms *)
  }

  val empty : t

  (** [of_trace trace] merges the per-domain buffers (closed spans only)
      into a deterministic aggregated tree.  Call it between parallel
      regions, not during one. *)
  val of_trace : trace -> t

  val to_json : t -> Json.t

  (** @raise Failure on JSON that does not encode a summary. *)
  val of_json : Json.t -> t

  (** @raise Json.Malformed / Failure on malformed input. *)
  val of_json_string : string -> t

  (** [find t path] walks the span tree by name. *)
  val find : t -> string list -> node option

  (** [counter t name] is the counter's merged total (0 when absent). *)
  val counter : t -> string -> int

  (** [gauge t name] is the gauge's merged value, e.g. the serving
      layer's [serve.epoch_lag_max] ([None] when never set). *)
  val gauge : t -> string -> float option

  (** [hist t name] is the merged histogram ([None] when never
      observed). *)
  val hist : t -> string -> Hist.t option

  val pp : Format.formatter -> t -> unit
end

(** {2 Chrome trace_event export} *)

val write_chrome_trace : t -> out_channel -> unit
val chrome_trace_json : t -> Json.t
