(* A minimal JSON value type with a printer and a recursive-descent
   parser.  The telemetry subsystem must stay dependency-free, and the
   benchmark harness needs machine-readable output that round-trips, so
   this is hand-rolled rather than pulled from opam. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Floats must survive print-then-parse: integral floats keep a ".0" so
   they do not come back as [Int], and everything else uses enough digits
   to be exact.  JSON has no token for non-finite floats, so NaN and the
   infinities are encoded deterministically as the strings "NaN",
   "Infinity" and "-Infinity"; [to_float] decodes them back, and the
   parser rejects the bare (invalid-JSON) tokens with a clear error. *)
let float_repr f =
  if Float.is_nan f then "\"NaN\""
  else if f = Float.infinity then "\"Infinity\""
  else if f = Float.neg_infinity then "\"-Infinity\""
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* Indented form, for files meant to be read by humans too. *)
let rec write_pretty buf indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v -> write buf v
  | List [] -> Buffer.add_string buf "[]"
  | Obj [] -> Buffer.add_string buf "{}"
  | List items ->
    let pad = String.make (indent + 2) ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        write_pretty buf (indent + 2) v)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_char buf ']'
  | Obj fields ->
    let pad = String.make (indent + 2) ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        escape buf k;
        Buffer.add_string buf ": ";
        write_pretty buf (indent + 2) v)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_char buf '}'

let to_pretty_string v =
  let buf = Buffer.create 1024 in
  write_pretty buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_pretty_string v)

(* --- parsing --- *)

exception Malformed of string

type cursor = { src : string; mutable pos : int }

let error cur msg =
  raise (Malformed (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let skip_ws cur =
  while
    cur.pos < String.length cur.src
    && match cur.src.[cur.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    cur.pos <- cur.pos + 1
  done

let expect cur c =
  match peek cur with
  | Some d when d = c -> cur.pos <- cur.pos + 1
  | _ -> error cur (Printf.sprintf "expected %C" c)

let literal cur word value =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.src
    && String.sub cur.src cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else error cur (Printf.sprintf "expected %s" word)

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> error cur "unterminated string"
    | Some '"' -> cur.pos <- cur.pos + 1
    | Some '\\' ->
      cur.pos <- cur.pos + 1;
      (match peek cur with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'u' ->
        if cur.pos + 4 >= String.length cur.src then
          error cur "truncated \\u escape";
        let hex = String.sub cur.src (cur.pos + 1) 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> error cur "bad \\u escape"
        in
        (* Encode the code point as UTF-8 (surrogate pairs are passed
           through as two separate 3-byte sequences, which is enough for
           telemetry labels). *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
        end;
        cur.pos <- cur.pos + 4
      | _ -> error cur "bad escape");
      cur.pos <- cur.pos + 1;
      go ()
    | Some c ->
      Buffer.add_char buf c;
      cur.pos <- cur.pos + 1;
      go ()
  in
  go ();
  Buffer.contents buf

let non_finite_error cur token =
  error cur
    (Printf.sprintf
       "%s is not valid JSON (non-finite floats are encoded as the strings \
        \"NaN\", \"Infinity\" and \"-Infinity\")"
       token)

let parse_number cur =
  let start = cur.pos in
  let is_float = ref false in
  let advance () = cur.pos <- cur.pos + 1 in
  (match peek cur with Some '-' -> advance () | _ -> ());
  (match peek cur with
  | Some 'I' -> non_finite_error cur "-Infinity"
  | _ -> ());
  let rec digits () =
    match peek cur with
    | Some ('0' .. '9') ->
      advance ();
      digits ()
    | _ -> ()
  in
  digits ();
  (match peek cur with
  | Some '.' ->
    is_float := true;
    advance ();
    digits ()
  | _ -> ());
  (match peek cur with
  | Some ('e' | 'E') ->
    is_float := true;
    advance ();
    (match peek cur with Some ('+' | '-') -> advance () | _ -> ());
    digits ()
  | _ -> ());
  let s = String.sub cur.src start (cur.pos - start) in
  if s = "" || s = "-" then error cur "malformed number";
  if !is_float then Float (float_of_string s)
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> Float (float_of_string s)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> error cur "unexpected end of input"
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'N' -> non_finite_error cur "NaN"
  | Some 'I' -> non_finite_error cur "Infinity"
  | Some '"' -> String (parse_string cur)
  | Some '[' ->
    cur.pos <- cur.pos + 1;
    skip_ws cur;
    if peek cur = Some ']' then begin
      cur.pos <- cur.pos + 1;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          cur.pos <- cur.pos + 1;
          items (v :: acc)
        | Some ']' ->
          cur.pos <- cur.pos + 1;
          List.rev (v :: acc)
        | _ -> error cur "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    cur.pos <- cur.pos + 1;
    skip_ws cur;
    if peek cur = Some '}' then begin
      cur.pos <- cur.pos + 1;
      Obj []
    end
    else begin
      let field () =
        skip_ws cur;
        let k = parse_string cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        (k, v)
      in
      let rec fields acc =
        let f = field () in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          cur.pos <- cur.pos + 1;
          fields (f :: acc)
        | Some '}' ->
          cur.pos <- cur.pos + 1;
          List.rev (f :: acc)
        | _ -> error cur "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> error cur (Printf.sprintf "unexpected %C" c)

let of_string s =
  let cur = { src = s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then error cur "trailing garbage";
  v

let of_string_opt s = try Some (of_string s) with Malformed _ -> None

(* --- accessors (for consumers decoding summaries) --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | Float f when Float.is_integer f -> Some (int_of_float f) | _ -> None

(* The string spellings close the round-trip for non-finite floats. *)
let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | String "NaN" -> Some Float.nan
  | String "Infinity" -> Some Float.infinity
  | String "-Infinity" -> Some Float.neg_infinity
  | _ -> None
let to_string_value = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
