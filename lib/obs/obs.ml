module Json = Json

let now = Unix.gettimeofday

module Config = struct
  type t = { enabled : bool; retain_spans : int option }

  let disabled = { enabled = false; retain_spans = None }
  let enabled = { enabled = true; retain_spans = None }
  let default = disabled
  let make ?(enabled = false) ?retain_spans () = { enabled; retain_spans }
end

type value = I of int | F of float | S of string

(* --- histograms ------------------------------------------------------

   A fixed log-bucketed histogram: 40 finite buckets whose upper bounds
   double from 1e-6 (1µs up to ~5.5e5 in the recorded unit) plus one
   overflow bucket.  Counts and the sum are integers — the sum is kept in
   micro-units — so merging per-domain histograms is integer addition and
   therefore independent of merge order: the merged result is
   bit-identical for every pool size, unlike a float sum. *)

module Hist = struct
  let lo = 1e-6
  let finite_buckets = 40
  let n_buckets = finite_buckets + 1

  (* Upper bound of finite bucket [i]; bucket 0 holds v <= 1e-6, the
     overflow bucket everything above [bound (finite_buckets - 1)]. *)
  let bound i = lo *. Float.pow 2. (float_of_int i)

  type t = {
    mutable count : int;
    mutable sum_micro : int;  (* sum in 1e-6 units, rounded per sample *)
    buckets : int array;  (* length n_buckets; last is overflow *)
  }

  let create () = { count = 0; sum_micro = 0; buckets = Array.make n_buckets 0 }
  let copy h = { h with buckets = Array.copy h.buckets }

  let micro v =
    if Float.is_finite v then int_of_float (Float.round (v *. 1e6)) else 0

  let bucket_of v =
    if v <= lo then 0 (* NaN falls through every comparison to overflow *)
    else begin
      (* Start from a log2 estimate (may be off by one either way from
         float rounding), then walk up to the first bound >= v. *)
      let est = int_of_float (Float.ceil (Float.log (v /. lo) /. Float.log 2.)) in
      let i = ref (max 0 (min finite_buckets (est - 2))) in
      while !i < finite_buckets && v > bound !i do incr i done;
      !i
    end

  let observe h v =
    h.count <- h.count + 1;
    h.sum_micro <- h.sum_micro + micro v;
    let i = bucket_of v in
    h.buckets.(i) <- h.buckets.(i) + 1

  let merge_into dst src =
    dst.count <- dst.count + src.count;
    dst.sum_micro <- dst.sum_micro + src.sum_micro;
    Array.iteri (fun i c -> dst.buckets.(i) <- dst.buckets.(i) + c) src.buckets

  let count h = h.count
  let sum_micro h = h.sum_micro
  let sum h = float_of_int h.sum_micro /. 1e6
  let buckets h = Array.copy h.buckets
  let equal a b = a.count = b.count && a.sum_micro = b.sum_micro
                  && a.buckets = b.buckets

  (* Rank-interpolated quantile over the bucket bounds; the overflow
     bucket clamps to the last finite bound (there is no upper edge). *)
  let quantile h q =
    if h.count = 0 then Float.nan
    else begin
      let q = Float.max 0. (Float.min 1. q) in
      let rank = q *. float_of_int h.count in
      let rec go i cum =
        if i >= n_buckets then bound (finite_buckets - 1)
        else begin
          let here = h.buckets.(i) in
          let cum' = cum + here in
          if here > 0 && float_of_int cum' >= rank then
            if i >= finite_buckets then bound (finite_buckets - 1)
            else begin
              let lower = if i = 0 then 0. else bound (i - 1) in
              let frac = (rank -. float_of_int cum) /. float_of_int here in
              lower +. (Float.max 0. frac *. (bound i -. lower))
            end
          else go (i + 1) cum'
        end
      in
      go 0 0
    end

  (* Upper bound of the highest occupied bucket (an upper estimate of the
     maximum observation); nan when empty. *)
  let max_value h =
    let rec go i =
      if i < 0 then Float.nan
      else if h.buckets.(i) > 0 then bound (min i (finite_buckets - 1))
      else go (i - 1)
    in
    go (n_buckets - 1)

  (* Sparse encoding: only occupied buckets, keyed by index. *)
  let to_json h =
    let bs = ref [] in
    for i = n_buckets - 1 downto 0 do
      if h.buckets.(i) > 0 then
        bs := (string_of_int i, Json.Int h.buckets.(i)) :: !bs
    done;
    Json.Obj
      [
        ("count", Json.Int h.count);
        ("sum_micro", Json.Int h.sum_micro);
        ("buckets", Json.Obj !bs);
      ]

  let decode_error what = failwith ("Obs.Hist.of_json: malformed " ^ what)

  let of_json j =
    let int k =
      match Option.bind (Json.member k j) Json.to_int with
      | Some v -> v
      | None -> decode_error k
    in
    let h = create () in
    h.count <- int "count";
    h.sum_micro <- int "sum_micro";
    (match Json.member "buckets" j with
    | Some (Json.Obj kvs) ->
      List.iter
        (fun (k, v) ->
          match (int_of_string_opt k, Json.to_int v) with
          | Some i, Some c when i >= 0 && i < n_buckets -> h.buckets.(i) <- c
          | _ -> decode_error "buckets")
        kvs
    | None -> ()
    | Some _ -> decode_error "buckets");
    h
end

let json_of_value = function
  | I i -> Json.Int i
  | F f -> Json.Float f
  | S s -> Json.String s

(* --- live-run snapshots ---------------------------------------------

   A snapshot is one periodic progress record emitted by a long-running
   stage (a grounding iteration, a Gibbs checkpoint).  The deterministic
   payload ([data]) carries counts and step numbers that are identical
   for every pool size; the volatile payload ([perf]) carries wall-clock
   rates and memory figures.  Consumers that diff runs strip [at] and
   [perf] (see {!Snapshot.deterministic_json}). *)

module Snapshot = struct
  type t = {
    seq : int;  (** monotonic per trace *)
    stage : string;  (** "ground" | "mpp" | "gibbs" | ... *)
    point : string;  (** "iteration" | "checkpoint" | ... *)
    step : int;  (** iteration / sweep number *)
    at : float;  (** seconds since the trace was created (volatile) *)
    data : (string * value) list;  (** deterministic fields *)
    perf : (string * value) list;  (** volatile fields: rates, memory *)
  }

  type sink = t -> unit

  let fields_to_json fields =
    Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) fields)

  let to_json s =
    Json.Obj
      [
        ("seq", Json.Int s.seq);
        ("stage", Json.String s.stage);
        ("point", Json.String s.point);
        ("step", Json.Int s.step);
        ("at", Json.Float s.at);
        ("data", fields_to_json s.data);
        ("perf", fields_to_json s.perf);
      ]

  (* The pool-size-invariant part: everything except [at] and [perf]. *)
  let deterministic_json s =
    Json.Obj
      [
        ("seq", Json.Int s.seq);
        ("stage", Json.String s.stage);
        ("point", Json.String s.point);
        ("step", Json.Int s.step);
        ("data", fields_to_json s.data);
      ]

  let decode_error what = failwith ("Obs.Snapshot.of_json: malformed " ^ what)

  let get what decode j =
    match decode j with Some v -> v | None -> decode_error what

  let fields_of_json what = function
    | None -> []
    | Some (Json.Obj kvs) ->
      List.map
        (fun (k, v) ->
          match v with
          | Json.Int i -> (k, I i)
          | Json.Float f -> (k, F f)
          | Json.String s -> (k, S s)
          | _ -> decode_error what)
        kvs
    | Some _ -> decode_error what

  let of_json j =
    let int k = get k (fun j -> Option.bind (Json.member k j) Json.to_int) j in
    let str k =
      get k (fun j -> Option.bind (Json.member k j) Json.to_string_value) j
    in
    {
      seq = int "seq";
      stage = str "stage";
      point = str "point";
      step = int "step";
      at = get "at" (fun j -> Option.bind (Json.member "at" j) Json.to_float) j;
      data = fields_of_json "data" (Json.member "data" j);
      perf = fields_of_json "perf" (Json.member "perf" j);
    }

  let of_json_string s = of_json (Json.of_string s)

  (* One JSON document per line (NDJSON), flushed so a tail -f (or a
     crashed run) always shows complete records. *)
  let ndjson oc s =
    output_string oc (Json.to_string (to_json s));
    output_char oc '\n';
    flush oc

  let pp_fields ppf fields =
    List.iter
      (fun (k, v) ->
        match v with
        | I i -> Format.fprintf ppf " %s=%d" k i
        | F f -> Format.fprintf ppf " %s=%.4g" k f
        | S v -> Format.fprintf ppf " %s=%s" k v)
      fields

  (* Human ticker: one stderr line per snapshot. *)
  let ticker ppf s =
    Format.fprintf ppf "[%7.2fs] %s %s %d:%a%a@." s.at s.stage s.point s.step
      pp_fields s.data pp_fields s.perf

  let tee sinks s = List.iter (fun f -> f s) sinks
end

(* Volatile process stats for snapshot [perf] sections: OCaml heap and
   (when /proc is available) resident set size. *)
let mem_stats () =
  let st = Gc.quick_stat () in
  let gc =
    [
      ("heap_mb", F (float_of_int st.Gc.heap_words *. 8. /. 1e6));
      ("major_gcs", I st.Gc.major_collections);
    ]
  in
  match
    let ic = open_in "/proc/self/statm" in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Scanf.sscanf (input_line ic) "%d %d" (fun _ rss -> rss))
  with
  | rss_pages -> ("rss_mb", F (float_of_int rss_pages *. 4096. /. 1e6)) :: gc
  | exception _ -> gc

(* Peak resident set size, from the VmHWM high-water mark the kernel
   keeps in /proc/self/status.  [None] where /proc is unavailable
   (non-Linux) — callers treat the gauge as best-effort. *)
let peak_rss_bytes () =
  match
    let ic = open_in "/proc/self/status" in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec find () =
          let line = input_line ic in
          if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
            Scanf.sscanf
              (String.sub line 6 (String.length line - 6))
              " %d kB"
              (fun kb -> kb * 1024)
          else find ()
        in
        find ())
  with
  | bytes -> Some bytes
  | exception _ -> None

(* VmHWM is a process-lifetime high-water mark; writing "5" to
   /proc/self/clear_refs rewinds it to the current RSS so two phases of
   one process (e.g. an in-memory and a spilled bench run) can be peak-
   measured independently. *)
let reset_peak_rss () =
  match open_out "/proc/self/clear_refs" with
  | oc ->
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc "5\n")
  | exception _ -> ()

type span = {
  id : int;
  parent : int; (* -1 = root *)
  name : string;
  cat : string;
  dom : int;
  t0 : float;
  mutable t1 : float;
  mutable attrs : (string * value) list;
  seq : int; (* per-domain recording order *)
}

type buffer = {
  dom_id : int;
  mutable closed : span list; (* newest first *)
  mutable n_closed : int;
  mutable stack : span list; (* open spans on this domain *)
  counters : (string, int ref) Hashtbl.t;
  timers : (string, float ref) Hashtbl.t;
  gauges : (string, (int * float) ref) Hashtbl.t; (* write seq, value *)
  hists : (string, Hist.t) Hashtbl.t;
  mutable seq : int;
}

type registry = { reg_mutex : Mutex.t; mutable all : buffer list }

type t = {
  enabled : bool;
  (* Closed spans kept per domain: [None] is unbounded (batch pipelines
     summarize everything); a long-running server bounds it so the span
     history does not grow without limit.  Counters, timers, gauges and
     histograms are cumulative and unaffected. *)
  retain_spans : int option;
  t_start : float;
  next_id : int Atomic.t;
  gauge_seq : int Atomic.t;
  (* Parent for spans opened on a domain with an empty local stack: worker
     domains inherit the creator domain's innermost open span, so work
     fanned out through the pool nests under the span that submitted it.
     Pool submissions are synchronous barriers, so this value is stable
     for the whole parallel region. *)
  ambient_parent : int Atomic.t;
  creator_dom : int;
  registry : registry;
  key : buffer Domain.DLS.key;
  (* Live-run snapshot stream.  Independent of [enabled]: a sink can be
     installed on a disabled trace, so `--snapshots` works without paying
     for span recording.  Snapshots are emitted from single-threaded
     points (between pool barriers), so an atomic ref suffices. *)
  snapshot_sink : Snapshot.sink option Atomic.t;
  snapshot_seq : int Atomic.t;
}

type trace = t

let fresh_buffer dom_id =
  {
    dom_id;
    closed = [];
    n_closed = 0;
    stack = [];
    counters = Hashtbl.create 16;
    timers = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
    hists = Hashtbl.create 8;
    seq = 0;
  }

let make_trace ?retain_spans enabled =
  let registry = { reg_mutex = Mutex.create (); all = [] } in
  let key =
    Domain.DLS.new_key (fun () ->
        let b = fresh_buffer (Domain.self () :> int) in
        Mutex.lock registry.reg_mutex;
        registry.all <- b :: registry.all;
        Mutex.unlock registry.reg_mutex;
        b)
  in
  {
    enabled;
    retain_spans;
    t_start = now ();
    next_id = Atomic.make 1;
    gauge_seq = Atomic.make 0;
    ambient_parent = Atomic.make (-1);
    creator_dom = (Domain.self () :> int);
    registry;
    key;
    snapshot_sink = Atomic.make None;
    snapshot_seq = Atomic.make 0;
  }

let create ?(config = Config.default) () =
  make_trace ?retain_spans:config.Config.retain_spans config.Config.enabled

let null = make_trace false
let enabled t = t.enabled

(* --- snapshot emission ---------------------------------------------- *)

(* [null] is shared process-wide; installing a sink on it would leak the
   stream into every uninstrumented pipeline, so it is refused. *)
let set_snapshot_sink t sink =
  if t != null then Atomic.set t.snapshot_sink sink

let snapshots_enabled t = Atomic.get t.snapshot_sink <> None

let snapshot t ~stage ~point ~step ?(perf = []) data =
  match Atomic.get t.snapshot_sink with
  | None -> ()
  | Some sink ->
    sink
      {
        Snapshot.seq = Atomic.fetch_and_add t.snapshot_seq 1;
        stage;
        point;
        step;
        at = now () -. t.t_start;
        data;
        perf;
      }

(* --- ambient context -------------------------------------------------

   Deep operators (hash joins, distincts) sit far below any API that
   could reasonably thread a trace argument; they read the process-wide
   ambient trace instead.  The engine installs its trace for the duration
   of a pipeline stage.  The ambient trace is only ever set from the
   domain that owns the enclosing stage, before any parallel region
   starts, so a plain atomic is enough. *)

let ambient_trace = Atomic.make null
let ambient () = Atomic.get ambient_trace
let set_ambient t = Atomic.set ambient_trace t

let with_ambient t f =
  let saved = Atomic.get ambient_trace in
  Atomic.set ambient_trace t;
  Fun.protect ~finally:(fun () -> Atomic.set ambient_trace saved) f

(* --- spans --- *)

type sp = No_span | Sp of span

let begin_span ?(cat = "") t name =
  if not t.enabled then No_span
  else begin
    let b = Domain.DLS.get t.key in
    let parent =
      match b.stack with
      | s :: _ -> s.id
      | [] -> Atomic.get t.ambient_parent
    in
    let s =
      {
        id = Atomic.fetch_and_add t.next_id 1;
        parent;
        name;
        cat;
        dom = b.dom_id;
        t0 = now ();
        t1 = Float.nan;
        attrs = [];
        seq = b.seq;
      }
    in
    b.seq <- b.seq + 1;
    b.stack <- s :: b.stack;
    if b.dom_id = t.creator_dom then Atomic.set t.ambient_parent s.id;
    Sp s
  end

let set_attr sp name v =
  match sp with
  | No_span -> ()
  | Sp s -> s.attrs <- (name, v) :: List.remove_assoc name s.attrs

let end_span ?(attrs = []) t sp =
  match sp with
  | No_span -> ()
  | Sp s ->
    let b = Domain.DLS.get t.key in
    s.t1 <- Float.max s.t0 (now ());
    s.attrs <- List.rev attrs @ s.attrs;
    (* Pop the local stack down to (and including) [s]; spans must be
       ended on the domain that began them, innermost first. *)
    let rec pop = function
      | top :: rest when top.id = s.id -> rest
      | _ :: rest -> pop rest
      | [] -> []
    in
    b.stack <- pop b.stack;
    b.closed <- s :: b.closed;
    b.n_closed <- b.n_closed + 1;
    (* Amortized truncation: let the list grow to twice the cap, then
       keep the newest [cap] (one O(cap) pass per cap closures). *)
    (match t.retain_spans with
    | Some cap when b.n_closed > 2 * cap ->
      let rec take n acc = function
        | x :: rest when n > 0 -> take (n - 1) (x :: acc) rest
        | _ -> List.rev acc
      in
      b.closed <- take cap [] b.closed;
      b.n_closed <- cap
    | _ -> ());
    if b.dom_id = t.creator_dom then Atomic.set t.ambient_parent s.parent

let with_span ?cat ?(attrs = []) t name f =
  if not t.enabled then f ()
  else begin
    let sp = begin_span ?cat t name in
    match f () with
    | result ->
      end_span ~attrs t sp;
      result
    | exception e ->
      end_span ~attrs:(("error", S (Printexc.to_string e)) :: attrs) t sp;
      raise e
  end

(* --- recorded span subtrees ------------------------------------------

   A materialized copy of a closed span and its same-domain descendants,
   for structured logging (the serving layer's slow-query log).  Only
   spans closed on the domain that ran the root are collected — work
   fanned out through the pool is summarized by the request's own
   duration, not expanded. *)

module Rec_span = struct
  type t = {
    name : string;
    cat : string;
    seconds : float;
    attrs : (string * value) list;
    children : t list;
  }

  let rec to_json r =
    Json.Obj
      ([ ("name", Json.String r.name); ("seconds", Json.Float r.seconds) ]
      @ (if r.cat = "" then [] else [ ("cat", Json.String r.cat) ])
      @ (if r.attrs = [] then []
         else
           [
             ( "attrs",
               Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) r.attrs)
             );
           ])
      @
      if r.children = [] then []
      else [ ("children", Json.List (List.map to_json r.children)) ])
end

(* Span ids are allocated at [begin_span] from one global counter, so on
   a single domain ids increase with begin time; every span begun and
   closed while [root] was open on this domain is a descendant (the stack
   parenting rule).  In the newest-first closed list those descendants
   form the contiguous block right behind [root]'s own entry.  Call this
   promptly after [end_span], on the same domain, before retention
   truncation can drop the block. *)
let subtree t sp =
  match sp with
  | No_span -> None
  | Sp root ->
    let b = Domain.DLS.get t.key in
    let rec find = function
      | s :: rest when s.id = root.id -> Some rest
      | s :: rest when s.id > root.id -> find rest
      | _ -> None
    in
    (match find b.closed with
    | None -> None
    | Some behind ->
      let rec take acc = function
        | s :: rest when s.id > root.id -> take (s :: acc) rest
        | _ -> acc
      in
      let desc = take [] behind in
      let children_of pid = List.filter (fun s -> s.parent = pid) desc in
      let seconds s = if Float.is_nan s.t1 then 0. else s.t1 -. s.t0 in
      let rec build s =
        {
          Rec_span.name = s.name;
          cat = s.cat;
          seconds = seconds s;
          attrs = List.rev s.attrs;
          children = List.map build (children_of s.id);
        }
      in
      Some (build root))

(* --- counters / timers / gauges --- *)

let add t name n =
  if t.enabled && n <> 0 then begin
    let b = Domain.DLS.get t.key in
    match Hashtbl.find_opt b.counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.replace b.counters name (ref n)
  end

let incr t name = add t name 1

let add_time t name s =
  if t.enabled && s <> 0. then begin
    let b = Domain.DLS.get t.key in
    match Hashtbl.find_opt b.timers name with
    | Some r -> r := !r +. s
    | None -> Hashtbl.replace b.timers name (ref s)
  end

let gauge t name v =
  if t.enabled then begin
    let b = Domain.DLS.get t.key in
    let seq = Atomic.fetch_and_add t.gauge_seq 1 in
    match Hashtbl.find_opt b.gauges name with
    | Some r -> r := (seq, v)
    | None -> Hashtbl.replace b.gauges name (ref (seq, v))
  end

let gauge_max t name v =
  if t.enabled then begin
    let b = Domain.DLS.get t.key in
    match Hashtbl.find_opt b.gauges name with
    | Some r ->
      let seq, prev = !r in
      if v > prev then r := (seq, v)
    | None ->
      Hashtbl.replace b.gauges name
        (ref (Atomic.fetch_and_add t.gauge_seq 1, v))
  end

let observe t name v =
  if t.enabled then begin
    let b = Domain.DLS.get t.key in
    match Hashtbl.find_opt b.hists name with
    | Some h -> Hist.observe h v
    | None ->
      let h = Hist.create () in
      Hist.observe h v;
      Hashtbl.replace b.hists name h
  end

let timed t name f =
  if not t.enabled then f ()
  else begin
    let t0 = now () in
    Fun.protect ~finally:(fun () -> add_time t name (now () -. t0)) f
  end

(* --- merging -------------------------------------------------------- *)

let buffers t =
  Mutex.lock t.registry.reg_mutex;
  let all = t.registry.all in
  Mutex.unlock t.registry.reg_mutex;
  all

(* Closed spans from every domain, oldest first, with a deterministic
   tie-break (domain id, per-domain sequence). *)
let all_spans t =
  let spans =
    List.concat_map (fun b -> b.closed) (buffers t) |> Array.of_list
  in
  Array.sort
    (fun a b ->
      match Float.compare a.t0 b.t0 with
      | 0 -> compare (a.dom, a.seq) (b.dom, b.seq)
      | c -> c)
    spans;
  spans

(* "iteration 10" must sort after "iteration 2": compare mixed strings by
   alternating text and numeric runs. *)
let natural_compare a b =
  let len_a = String.length a and len_b = String.length b in
  let is_digit c = c >= '0' && c <= '9' in
  let rec go i j =
    if i >= len_a && j >= len_b then 0
    else if i >= len_a then -1
    else if j >= len_b then 1
    else if is_digit a.[i] && is_digit b.[j] then begin
      let rec num s k len = if k < len && is_digit s.[k] then num s (k + 1) len else k in
      let i' = num a i len_a and j' = num b j len_b in
      let na = int_of_string (String.sub a i (i' - i))
      and nb = int_of_string (String.sub b j (j' - j)) in
      match compare na nb with 0 -> go i' j' | c -> c
    end
    else
      match Char.compare a.[i] b.[j] with 0 -> go (i + 1) (j + 1) | c -> c
  in
  go 0 0

module Summary = struct
  type node = {
    name : string;
    count : int;
    seconds : float;
    children : node list;
  }

  type t = {
    total_seconds : float;
    spans : node list;
    counters : (string * int) list;
    timers : (string * float) list;
    gauges : (string * float) list;
    hists : (string * Hist.t) list;
  }

  let empty =
    {
      total_seconds = 0.;
      spans = [];
      counters = [];
      timers = [];
      gauges = [];
      hists = [];
    }

  (* Aggregation node under construction. *)
  type agg = {
    mutable a_count : int;
    mutable a_seconds : float;
    a_children : (string, agg) Hashtbl.t;
  }

  let fresh_agg () =
    { a_count = 0; a_seconds = 0.; a_children = Hashtbl.create 4 }

  let rec finalize name agg =
    let children =
      Hashtbl.fold (fun n a acc -> finalize n a :: acc) agg.a_children []
      |> List.sort (fun a b -> natural_compare a.name b.name)
    in
    { name; count = agg.a_count; seconds = agg.a_seconds; children }

  let of_trace trace =
    if not (enabled trace) then empty
    else begin
      let spans = all_spans trace in
      let by_id = Hashtbl.create (Array.length spans) in
      Array.iter (fun s -> Hashtbl.replace by_id s.id s) spans;
      (* Path of a span: names from the root down.  A parent that was
         never closed (or predates the snapshot) roots the chain. *)
      let rec path s =
        match Hashtbl.find_opt by_id s.parent with
        | Some p -> s.name :: path p
        | None -> [ s.name ]
      in
      let root = fresh_agg () in
      Array.iter
        (fun s ->
          let rev_path = List.rev (path s) in
          let node =
            List.fold_left
              (fun agg name ->
                match Hashtbl.find_opt agg.a_children name with
                | Some child -> child
                | None ->
                  let child = fresh_agg () in
                  Hashtbl.replace agg.a_children name child;
                  child)
              root rev_path
          in
          node.a_count <- node.a_count + 1;
          node.a_seconds <- node.a_seconds +. (s.t1 -. s.t0))
        spans;
      let tree = finalize "" root in
      let sorted_list of_tbl =
        List.concat_map
          (fun b -> of_tbl b)
          (buffers trace)
      in
      let counters =
        let merged = Hashtbl.create 16 in
        List.iter
          (fun (k, v) ->
            Hashtbl.replace merged k
              (v + Option.value ~default:0 (Hashtbl.find_opt merged k)))
          (sorted_list (fun b ->
               Hashtbl.fold (fun k r acc -> (k, !r) :: acc) b.counters []));
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) merged []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let timers =
        let merged = Hashtbl.create 16 in
        List.iter
          (fun (k, v) ->
            Hashtbl.replace merged k
              (v +. Option.value ~default:0. (Hashtbl.find_opt merged k)))
          (sorted_list (fun b ->
               Hashtbl.fold (fun k r acc -> (k, !r) :: acc) b.timers []));
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) merged []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let gauges =
        let merged = Hashtbl.create 8 in
        List.iter
          (fun (k, (seq, v)) ->
            match Hashtbl.find_opt merged k with
            | Some (seq', _) when seq' > seq -> ()
            | _ -> Hashtbl.replace merged k (seq, v))
          (sorted_list (fun b ->
               Hashtbl.fold (fun k r acc -> (k, !r) :: acc) b.gauges []));
        Hashtbl.fold (fun k (_, v) acc -> (k, v) :: acc) merged []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let hists =
        (* Integer merge: element-wise sums are independent of buffer
           order, so the merged histogram is bit-identical at any pool
           size. *)
        let merged = Hashtbl.create 8 in
        List.iter
          (fun (k, h) ->
            match Hashtbl.find_opt merged k with
            | Some m -> Hist.merge_into m h
            | None -> Hashtbl.replace merged k (Hist.copy h))
          (sorted_list (fun b ->
               Hashtbl.fold (fun k h acc -> (k, h) :: acc) b.hists []));
        Hashtbl.fold (fun k h acc -> (k, h) :: acc) merged []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let total_seconds =
        List.fold_left (fun acc n -> acc +. n.seconds) 0. tree.children
      in
      { total_seconds; spans = tree.children; counters; timers; gauges; hists }
    end

  (* --- JSON ---------------------------------------------------------- *)

  let rec node_to_json n =
    Json.Obj
      ([
         ("name", Json.String n.name);
         ("count", Json.Int n.count);
         ("seconds", Json.Float n.seconds);
       ]
      @
      if n.children = [] then []
      else [ ("children", Json.List (List.map node_to_json n.children)) ])

  let to_json t =
    Json.Obj
      [
        ("total_seconds", Json.Float t.total_seconds);
        ("spans", Json.List (List.map node_to_json t.spans));
        ( "counters",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) t.counters) );
        ( "timers",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) t.timers) );
        ( "gauges",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) t.gauges) );
        ( "hists",
          Json.Obj (List.map (fun (k, h) -> (k, Hist.to_json h)) t.hists) );
      ]

  let decode_error what = failwith ("Obs.Summary.of_json: malformed " ^ what)

  let get what decode j =
    match decode j with Some v -> v | None -> decode_error what

  let rec node_of_json j =
    let name =
      get "span name"
        (fun j -> Option.bind (Json.member "name" j) Json.to_string_value)
        j
    in
    let count =
      get "span count" (fun j -> Option.bind (Json.member "count" j) Json.to_int) j
    in
    let seconds =
      get "span seconds"
        (fun j -> Option.bind (Json.member "seconds" j) Json.to_float)
        j
    in
    let children =
      match Json.member "children" j with
      | None -> []
      | Some (Json.List l) -> List.map node_of_json l
      | Some _ -> decode_error "span children"
    in
    { name; count; seconds; children }

  let assoc_of_json what decode j =
    match j with
    | Some (Json.Obj fields) ->
      List.map (fun (k, v) -> (k, get what decode v)) fields
    | None -> []
    | Some _ -> decode_error what

  let of_json j =
    let total_seconds =
      get "total_seconds"
        (fun j -> Option.bind (Json.member "total_seconds" j) Json.to_float)
        j
    in
    let spans =
      match Json.member "spans" j with
      | Some (Json.List l) -> List.map node_of_json l
      | None -> []
      | Some _ -> decode_error "spans"
    in
    {
      total_seconds;
      spans;
      counters = assoc_of_json "counters" Json.to_int (Json.member "counters" j);
      timers = assoc_of_json "timers" Json.to_float (Json.member "timers" j);
      gauges = assoc_of_json "gauges" Json.to_float (Json.member "gauges" j);
      hists =
        assoc_of_json "hists"
          (fun j -> try Some (Hist.of_json j) with Failure _ -> None)
          (Json.member "hists" j);
    }

  let of_json_string s = of_json (Json.of_string s)

  (* --- lookup -------------------------------------------------------- *)

  let find t path =
    let rec go nodes = function
      | [] -> None
      | [ name ] -> List.find_opt (fun n -> n.name = name) nodes
      | name :: rest ->
        Option.bind
          (List.find_opt (fun n -> n.name = name) nodes)
          (fun n -> go n.children rest)
    in
    go t.spans path

  let counter t name =
    Option.value ~default:0 (List.assoc_opt name t.counters)

  let gauge t name = List.assoc_opt name t.gauges
  let hist t name = List.assoc_opt name t.hists

  (* --- rendering ----------------------------------------------------- *)

  let rec pp_node ppf ~depth n =
    Format.fprintf ppf "%s%-*s %5dx %9.3fs@,"
      (String.make (2 * depth) ' ')
      (max 1 (34 - (2 * depth)))
      n.name n.count n.seconds;
    List.iter (pp_node ppf ~depth:(depth + 1)) n.children

  let pp ppf t =
    Format.fprintf ppf "@[<v>";
    if t.spans = [] then Format.fprintf ppf "(no spans recorded)@,"
    else begin
      Format.fprintf ppf "span tree (%.3fs total):@," t.total_seconds;
      List.iter (pp_node ppf ~depth:1) t.spans
    end;
    if t.counters <> [] then begin
      Format.fprintf ppf "counters:@,";
      List.iter
        (fun (k, v) -> Format.fprintf ppf "  %-34s %12d@," k v)
        t.counters
    end;
    if t.timers <> [] then begin
      Format.fprintf ppf "timers:@,";
      List.iter
        (fun (k, v) -> Format.fprintf ppf "  %-34s %11.3fs@," k v)
        t.timers
    end;
    if t.gauges <> [] then begin
      Format.fprintf ppf "gauges:@,";
      List.iter
        (fun (k, v) -> Format.fprintf ppf "  %-34s %12.3f@," k v)
        t.gauges
    end;
    if t.hists <> [] then begin
      Format.fprintf ppf "histograms:@,";
      List.iter
        (fun (k, h) ->
          Format.fprintf ppf "  %-34s %8dx p50=%.4g p99=%.4g@," k
            (Hist.count h) (Hist.quantile h 0.5) (Hist.quantile h 0.99))
        t.hists
    end;
    Format.fprintf ppf "@]"
end

(* --- Chrome trace_event export -------------------------------------- *)

let chrome_trace_json t =
  let spans = all_spans t in
  let events =
    Array.to_list spans
    |> List.map (fun s ->
           let us x = Float.round (x *. 1e6) in
           Json.Obj
             ([
                ("name", Json.String s.name);
                ( "cat",
                  Json.String (if s.cat = "" then "probkb" else s.cat) );
                ("ph", Json.String "X");
                ("ts", Json.Float (us (s.t0 -. t.t_start)));
                ("dur", Json.Float (us (s.t1 -. s.t0)));
                ("pid", Json.Int 1);
                ("tid", Json.Int s.dom);
              ]
             @
             if s.attrs = [] then []
             else
               [
                 ( "args",
                   Json.Obj
                     (List.rev_map
                        (fun (k, v) -> (k, json_of_value v))
                        s.attrs) );
               ]))
  in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ms");
    ]

let write_chrome_trace t oc =
  output_string oc (Json.to_pretty_string (chrome_trace_json t))
