module Table = Relational.Table
module Index = Relational.Index

let seconds_for cluster bytes =
  cluster.Cluster.motion_latency_s
  +. (float_of_int bytes /. cluster.Cluster.bandwidth_bytes_per_s)

let redistribute_cost cluster dt =
  (* On average (nseg-1)/nseg of the rows change segment. *)
  let moved =
    Dtable.byte_size dt * (cluster.Cluster.nseg - 1) / max 1 cluster.Cluster.nseg
  in
  seconds_for cluster moved

let broadcast_cost cluster dt =
  seconds_for cluster (Dtable.byte_size dt * (cluster.Cluster.nseg - 1))

let redistribute cluster cost dt key =
  let nseg = cluster.Cluster.nseg in
  let sample = Dtable.seg dt 0 in
  let segs =
    Array.init nseg (fun i ->
        let s =
          Table.create ~weighted:(Table.weighted sample)
            ~name:(Printf.sprintf "%s@%d" (Table.name sample) i)
            (Table.cols sample)
        in
        Table.reserve s (Dtable.nrows dt / nseg);
        s)
  in
  let moved = ref 0 in
  for s = 0 to Dtable.nseg dt - 1 do
    let local = Dtable.seg dt s in
    Table.iter
      (fun r ->
        let target = Index.hash_row local key r mod nseg in
        if target <> s then moved := !moved + Table.row_bytes local;
        Table.append_from segs.(target) local r)
      local
  done;
  let rows = Dtable.nrows dt in
  Cost.charge cost
    (Cost.Redistribute { table = Dtable.name dt; rows; bytes = !moved })
    (seconds_for cluster !moved);
  Dtable.of_segments segs (Dtable.Hash key)

let broadcast cluster cost dt =
  let full = Dtable.gather dt in
  let bytes = Table.byte_size full * (cluster.Cluster.nseg - 1) in
  Cost.charge cost
    (Cost.Broadcast
       { table = Dtable.name dt; rows = Table.nrows full; bytes })
    (seconds_for cluster bytes);
  Dtable.of_segments
    (Array.init cluster.Cluster.nseg (fun i ->
         if i = 0 then full else Table.copy full))
    Dtable.Replicated

let gather cluster cost dt =
  let full = Dtable.gather dt in
  let bytes = Table.byte_size full in
  Cost.charge cost
    (Cost.Gather { table = Dtable.name dt; rows = Table.nrows full; bytes })
    (seconds_for cluster bytes);
  full
