(** Redistributed materialized views of the fact table [TΠ].

    The paper's key MPP optimization (Section 4.4): because rules (1)-(6)
    share join syntax, four hash-distributed replicas of [TΠ] cover every
    grounding query —

    {v (R, C1, C2)   (R, C1, x, C2)   (R, C1, C2, y)   (R, C1, x, C2, y) v}

    — so the fact side of each join is always collocated and only the
    (small) intermediate result moves.  [pick] chooses, for a given join
    key, the view whose distribution key is the largest subset of it. *)

type t

(** The four distribution keys, as column positions in [TΠ]
    ([I=0, R=1, x=2, C1=3, y=4, C2=5]). *)
val distribution_keys : int array list

(** [create cluster cost facts] materializes the four views — concurrently
    on [pool] (default {!Pool.get_default}) — charging the initial
    redistribution (with the measured build time split evenly across the
    four view charges). *)
val create : ?pool:Pool.t -> Cluster.t -> Cost.t -> Relational.Table.t -> t

(** [refresh v cluster cost facts] rebuilds the views after [TΠ] changed —
    the [redistribute(TΠ)] step of Algorithm 1, line 7. *)
val refresh :
  ?pool:Pool.t -> t -> Cluster.t -> Cost.t -> Relational.Table.t -> t

(** [pick v key] is the best-aligned view for a join on [key] columns of
    [TΠ]: the view with the largest distribution key contained in [key].
    Every grounding query key contains [(R, C1, C2)], so a view always
    qualifies. *)
val pick : t -> int array -> Dtable.t

(** [base v] is the [(R, C1, C2)] view (the default replica). *)
val base : t -> Dtable.t

(** [finest v] is the [(R, C1, x, C2, y)] view — the most finely hashed
    replica, hence the best load-balanced.  It is the right probe side for
    joins whose build side is replicated (the [Mi] tables): those joins
    are collocated under any distribution, so the planner picks the one
    that minimizes skew. *)
val finest : t -> Dtable.t
