module Table = Relational.Table
module Index = Relational.Index

type dist = Hash of int array | Replicated | Unknown
type t = { segs : Table.t array; dist : dist }

let seg_of_row cluster key tbl r =
  Index.hash_row tbl key r mod cluster.Cluster.nseg

let partition cluster tbl dist =
  match dist with
  | Unknown -> invalid_arg "Dtable.partition: cannot partition to Unknown"
  | Replicated ->
    { segs = Array.init cluster.Cluster.nseg (fun _ -> Table.copy tbl); dist }
  | Hash key ->
    let segs =
      Array.init cluster.Cluster.nseg (fun i ->
          let s =
            Table.create ~weighted:(Table.weighted tbl)
              ~name:(Printf.sprintf "%s@%d" (Table.name tbl) i)
              (Table.cols tbl)
          in
          (* Pre-size for a uniform spread; skewed segments still grow. *)
          Table.reserve s (Table.nrows tbl / cluster.Cluster.nseg);
          s)
    in
    Table.iter
      (fun r -> Table.append_from segs.(seg_of_row cluster key tbl r) tbl r)
      tbl;
    { segs; dist }

let of_segments segs dist = { segs; dist }
let dist t = t.dist
let nseg t = Array.length t.segs
let seg t i = t.segs.(i)

let nrows t =
  match t.dist with
  | Replicated -> Table.nrows t.segs.(0)
  | Hash _ | Unknown ->
    Array.fold_left (fun acc s -> acc + Table.nrows s) 0 t.segs

let byte_size t =
  match t.dist with
  | Replicated -> Table.byte_size t.segs.(0)
  | Hash _ | Unknown ->
    Array.fold_left (fun acc s -> acc + Table.byte_size s) 0 t.segs

let max_seg_rows t =
  Array.fold_left (fun acc s -> max acc (Table.nrows s)) 0 t.segs

let gather t =
  match t.dist with
  | Replicated -> Table.copy t.segs.(0)
  | Hash _ | Unknown ->
    let out =
      Table.create
        ~weighted:(Table.weighted t.segs.(0))
        ~name:(Table.name t.segs.(0))
        (Table.cols t.segs.(0))
    in
    Table.reserve out (nrows t);
    Array.iter (fun s -> Table.append_all out s) t.segs;
    out

let name t = Table.name t.segs.(0)
