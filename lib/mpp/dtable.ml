module Table = Relational.Table
module Index = Relational.Index
module Store = Storage.Store
module Spill = Storage.Spill

type dist = Hash of int array | Replicated | Unknown

(* A shard is either resident or an on-disk segment store.  Spilled
   shards are materialized on demand ([seg]) — operators read them back
   through the mmap for exactly the duration of their local plan, so at
   most a worker's active shard is resident at a time; metadata
   questions (row counts, logical sizes, names) never touch data
   pages. *)
type backing = Resident of Table.t | Spilled of Store.t

type t = { segs : backing array; dist : dist }

let seg_of_row cluster key tbl r =
  Index.hash_row tbl key r mod cluster.Cluster.nseg

let partition cluster tbl dist =
  match dist with
  | Unknown -> invalid_arg "Dtable.partition: cannot partition to Unknown"
  | Replicated ->
    {
      segs =
        Array.init cluster.Cluster.nseg (fun _ -> Resident (Table.copy tbl));
      dist;
    }
  | Hash key ->
    let segs =
      Array.init cluster.Cluster.nseg (fun i ->
          let s =
            Table.create ~weighted:(Table.weighted tbl)
              ~name:(Printf.sprintf "%s@%d" (Table.name tbl) i)
              (Table.cols tbl)
          in
          (* Pre-size for a uniform spread; skewed segments still grow. *)
          Table.reserve s (Table.nrows tbl / cluster.Cluster.nseg);
          s)
    in
    Table.iter
      (fun r -> Table.append_from segs.(seg_of_row cluster key tbl r) tbl r)
      tbl;
    { segs = Array.map (fun s -> Resident s) segs; dist }

(* Hash-partition and immediately flush every shard to its own segment
   store under the spill policy's root — the resident copies are dropped
   as each shard is written, so the distributed table holds only
   metadata afterwards. *)
let partition_spilled policy ~prefix cluster tbl dist =
  let dt = partition cluster tbl dist in
  {
    dt with
    segs =
      Array.map
        (function
          | Resident s ->
            Spilled
              (Store.spill
                 ~segment_rows:(Spill.segment_rows policy)
                 ~dir:(Spill.fresh_dir policy ~prefix) s)
          | Spilled _ as b -> b)
        dt.segs;
  }

let of_segments segs dist = { segs = Array.map (fun s -> Resident s) segs; dist }
let dist t = t.dist
let nseg t = Array.length t.segs

let seg t i =
  match t.segs.(i) with Resident tbl -> tbl | Spilled st -> Store.to_table st

(* Row count without materializing spilled shards. *)
let seg_rows t i =
  match t.segs.(i) with
  | Resident tbl -> Table.nrows tbl
  | Spilled st -> Store.rows st

let spilled t i = match t.segs.(i) with Resident _ -> false | Spilled _ -> true

(* Logical (resident/on-wire) byte size of one shard — motion costs are
   charged on materialized rows, not on the compressed files. *)
let seg_bytes t i =
  match t.segs.(i) with
  | Resident tbl -> Table.byte_size tbl
  | Spilled st ->
    Store.rows st
    * ((8 * Array.length (Store.cols st)) + if Store.weighted st then 8 else 0)

let nrows t =
  match t.dist with
  | Replicated -> seg_rows t 0
  | Hash _ | Unknown ->
    let acc = ref 0 in
    for i = 0 to nseg t - 1 do
      acc := !acc + seg_rows t i
    done;
    !acc

let byte_size t =
  match t.dist with
  | Replicated -> seg_bytes t 0
  | Hash _ | Unknown ->
    let acc = ref 0 in
    for i = 0 to nseg t - 1 do
      acc := !acc + seg_bytes t i
    done;
    !acc

let max_seg_rows t =
  let acc = ref 0 in
  for i = 0 to nseg t - 1 do
    acc := max !acc (seg_rows t i)
  done;
  !acc

let seg_meta t i =
  match t.segs.(i) with
  | Resident tbl -> (Table.name tbl, Table.cols tbl, Table.weighted tbl)
  | Spilled st -> (Store.name st, Store.cols st, Store.weighted st)

let gather t =
  match t.dist with
  | Replicated -> seg t 0
  | Hash _ | Unknown ->
    let name, cols, weighted = seg_meta t 0 in
    let out = Table.create ~weighted ~name cols in
    Table.reserve out (nrows t);
    for i = 0 to nseg t - 1 do
      Table.append_all out (seg t i)
    done;
    out

let name t =
  let n, _, _ = seg_meta t 0 in
  n
