module Table = Relational.Table
module Join = Relational.Join

type alignment = Replicated | Aligned of int array | Not_aligned

(* Positions within [key] of the distribution columns, in distribution
   order; two sides are collocated when these position sequences match. *)
let alignment key = function
  | Dtable.Replicated -> Replicated
  | Dtable.Unknown -> Not_aligned
  | Dtable.Hash d ->
    let find c =
      let rec go i =
        if i >= Array.length key then raise Not_found
        else if key.(i) = c then i
        else go (i + 1)
      in
      go 0
    in
    (match Array.map find d with
    | s -> Aligned s
    | exception Not_found -> Not_aligned)

(* The output distribution: if every distribution column of the local
   plan survives projection, the result stays hash-distributed on the
   corresponding output columns. *)
let derived_dist out bkey pkey = function
  | None -> Dtable.Unknown
  | Some s ->
    let find_out i =
      let want_b = Join.Col (Join.Build, bkey.(i)) in
      let want_p = Join.Col (Join.Probe, pkey.(i)) in
      let rec go j =
        if j >= Array.length out then raise Not_found
        else if out.(j) = want_b || out.(j) = want_p then j
        else go (j + 1)
      in
      go 0
    in
    (match Array.map find_out s with
    | cols -> Dtable.Hash cols
    | exception Not_found -> Dtable.Unknown)

let local_join ?pool cluster cost ~name ~cols ~out ~oweight ?dedup ?residual
    bdt bkey pdt pkey ~key_subset =
  let nseg = cluster.Cluster.nseg in
  let both_replicated =
    Dtable.dist bdt = Dtable.Replicated && Dtable.dist pdt = Dtable.Replicated
  in
  let weighted = oweight <> Join.No_weight in
  let empty i = Table.create ~weighted ~name:(Printf.sprintf "%s@%d" name i) cols in
  let pool = match pool with Some p -> p | None -> Pool.get_default () in
  let t0 = Unix.gettimeofday () in
  (* The per-segment plans are independent, so they execute concurrently
     on the domain pool — the collocated-join parallelism of Figure 4,
     measured for real instead of only simulated.  Per-segment joins fall
     back to their sequential path while the pool is busy here. *)
  let segs =
    Pool.map_reduce pool ~n:nseg
      ~map:(fun i ->
        if both_replicated && i > 0 then empty i
        else
          let b = Dtable.seg bdt i and p = Dtable.seg pdt i in
          Join.hash_join ~name:(Printf.sprintf "%s@%d" name i) ~cols ~out
            ~oweight ?dedup ?residual ~pool (b, bkey) (p, pkey))
      ~fold:(fun acc s -> s :: acc)
      ~init:[]
    |> List.rev |> Array.of_list
  in
  let measured = Unix.gettimeofday () -. t0 in
  let max_seg = ref 0 in
  let rows_out = ref 0 in
  Array.iteri
    (fun i result ->
      if not (both_replicated && i > 0) then begin
        (* Counts only — [seg] would re-materialize disk-backed shards. *)
        let work =
          Dtable.seg_rows bdt i + Dtable.seg_rows pdt i + Table.nrows result
        in
        max_seg := max !max_seg work;
        rows_out := !rows_out + Table.nrows result
      end)
    segs;
  Cost.charge ~measured_seconds:measured cost
    (Cost.Hash_join { name; rows_out = !rows_out; max_seg_rows = !max_seg })
    (float_of_int !max_seg *. cluster.Cluster.cost_per_row);
  (* A replicated×replicated join computed only on segment 0 must not be
     marked Replicated: the other segments hold empty pieces. *)
  let dist =
    if both_replicated then Dtable.Unknown
    else derived_dist out bkey pkey key_subset
  in
  Dtable.of_segments segs dist

let all_positions key = Array.init (Array.length key) Fun.id

let hash_join ?pool cluster cost ~name ~cols ~out ~oweight ?dedup ?residual
    (bdt, bkey) (pdt, pkey) =
  if Array.length bkey <> Array.length pkey then
    invalid_arg "Djoin.hash_join: key arity mismatch";
  let run ?key_subset b p =
    local_join ?pool cluster cost ~name ~cols ~out ~oweight ?dedup ?residual b
      bkey p pkey ~key_subset
  in
  let ba = alignment bkey (Dtable.dist bdt)
  and pa = alignment pkey (Dtable.dist pdt) in
  match (ba, pa) with
  | Replicated, Replicated -> run bdt pdt
  | Replicated, Aligned s | Aligned s, Replicated -> run ~key_subset:s bdt pdt
  | Replicated, Not_aligned | Not_aligned, Replicated -> run bdt pdt
  | Aligned sb, Aligned sp when sb = sp -> run ~key_subset:sb bdt pdt
  | _ ->
    (* Candidate plans with their motion costs. *)
    let sub key s = Array.map (fun i -> key.(i)) s in
    let candidates =
      [
        (* redistribute both by the full join key *)
        ( Motion.redistribute_cost cluster bdt
          +. Motion.redistribute_cost cluster pdt,
          fun () ->
            let b = Motion.redistribute cluster cost bdt bkey in
            let p = Motion.redistribute cluster cost pdt pkey in
            run ~key_subset:(all_positions bkey) b p );
        (* broadcast the build side *)
        ( Motion.broadcast_cost cluster bdt,
          fun () -> run (Motion.broadcast cluster cost bdt) pdt );
        (* broadcast the probe side *)
        ( Motion.broadcast_cost cluster pdt,
          fun () -> run bdt (Motion.broadcast cluster cost pdt) );
      ]
      @ (match ba with
        | Aligned s ->
          [
            (* probe follows the build side's distribution *)
            ( Motion.redistribute_cost cluster pdt,
              fun () ->
                let p = Motion.redistribute cluster cost pdt (sub pkey s) in
                run ~key_subset:s bdt p );
          ]
        | Replicated | Not_aligned -> [])
      @
      match pa with
      | Aligned s ->
        [
          ( Motion.redistribute_cost cluster bdt,
            fun () ->
              let b = Motion.redistribute cluster cost bdt (sub bkey s) in
              run ~key_subset:s b pdt );
        ]
      | Replicated | Not_aligned -> []
    in
    let _, best =
      List.fold_left
        (fun (bc, bf) (c, f) -> if c < bc then (c, f) else (bc, bf))
        (infinity, fun () -> assert false)
        candidates
    in
    best ()
