type op =
  | Seq_scan of { table : string; rows : int }
  | Hash_join of { name : string; rows_out : int; max_seg_rows : int }
  | Redistribute of { table : string; rows : int; bytes : int }
  | Broadcast of { table : string; rows : int; bytes : int }
  | Gather of { table : string; rows : int; bytes : int }
  | Coordinator of { label : string; rows : int }

type entry = { op : op; sim_seconds : float; measured_seconds : float }

type t = {
  mutable entries : entry list;
  mutable elapsed : float;
  mutable measured : float;
}

let create () = { entries = []; elapsed = 0.; measured = 0. }

let charge ?(measured_seconds = 0.) t op sim_seconds =
  t.entries <- { op; sim_seconds; measured_seconds } :: t.entries;
  t.elapsed <- t.elapsed +. sim_seconds;
  t.measured <- t.measured +. measured_seconds

let elapsed t = t.elapsed
let measured_seconds t = t.measured
let entries t = List.rev t.entries

let reset t =
  t.entries <- [];
  t.elapsed <- 0.;
  t.measured <- 0.

let motion_bytes t =
  List.fold_left
    (fun acc e ->
      match e.op with
      | Redistribute { bytes; _ } | Broadcast { bytes; _ } | Gather { bytes; _ }
        ->
        acc + bytes
      | Seq_scan _ | Hash_join _ | Coordinator _ -> acc)
    0 t.entries

let pp_op ppf = function
  | Seq_scan { table; rows } -> Format.fprintf ppf "Seq Scan on %s (%d rows)" table rows
  | Hash_join { name; rows_out; max_seg_rows } ->
    Format.fprintf ppf "Hash Join %s (%d rows out, %d max/seg)" name rows_out
      max_seg_rows
  | Redistribute { table; rows; bytes } ->
    Format.fprintf ppf "Redistribute Motion %s (%d rows, %.1f MB)" table rows
      (float_of_int bytes /. 1048576.)
  | Broadcast { table; rows; bytes } ->
    Format.fprintf ppf "Broadcast Motion %s (%d rows, %.1f MB)" table rows
      (float_of_int bytes /. 1048576.)
  | Gather { table; rows; bytes } ->
    Format.fprintf ppf "Gather Motion %s (%d rows, %.1f MB)" table rows
      (float_of_int bytes /. 1048576.)
  | Coordinator { label; rows } ->
    Format.fprintf ppf "Coordinator %s (%d rows)" label rows

let pp_plan ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
      Format.fprintf ppf "%7.3fs  %a@," e.sim_seconds pp_op e.op)
    (entries t);
  Format.fprintf ppf "total %7.3fs simulated (%.3fs measured), %.1f MB shipped@]"
    t.elapsed t.measured
    (float_of_int (motion_bytes t) /. 1048576.)
