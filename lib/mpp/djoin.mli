(** Collocation-aware distributed hash join.

    The planner mirrors Greenplum's choices in Figure 4 of the paper:

    - if both inputs are hash-distributed on corresponding subsets of the
      join key (or one is replicated), the join runs locally on every
      segment with {e no motion};
    - if one input is aligned, only the other is redistributed by the
      corresponding key columns;
    - otherwise it picks the cheapest of: redistributing both inputs by
      the full join key, or broadcasting the smaller input.

    All data movement is real; the simulated clock charges max-per-segment
    CPU plus motion network time.  The per-segment local joins execute
    concurrently on the domain pool ([pool], default
    {!Pool.get_default}); their measured wall-clock time is recorded on
    the cost trace next to the simulated charge. *)

(** [hash_join cluster cost ~name ~cols ~out ~oweight ?residual (b, bkey)
    (p, pkey)] is the distributed analogue of
    [Relational.Join.hash_join]; the result's distribution is derived from
    the executed plan when the distribution columns survive projection,
    [Unknown] otherwise. *)
val hash_join :
  ?pool:Pool.t ->
  Cluster.t ->
  Cost.t ->
  name:string ->
  cols:string array ->
  out:Relational.Join.out_col array ->
  oweight:Relational.Join.out_weight ->
  ?dedup:bool ->
  ?residual:(int -> int -> bool) ->
  Dtable.t * int array ->
  Dtable.t * int array ->
  Dtable.t
