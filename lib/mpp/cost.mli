(** Simulated-time accounting and plan traces.

    Every distributed operator reports what it did (an {!op}) and how long
    it would have taken on the cluster; the accumulated trace doubles as
    the annotated query plan of the paper's Figure 4. *)

type op =
  | Seq_scan of { table : string; rows : int }
  | Hash_join of { name : string; rows_out : int; max_seg_rows : int }
  | Redistribute of { table : string; rows : int; bytes : int }
  | Broadcast of { table : string; rows : int; bytes : int }
  | Gather of { table : string; rows : int; bytes : int }
  | Coordinator of { label : string; rows : int }

type entry = { op : op; sim_seconds : float; measured_seconds : float }
type t

val create : unit -> t

(** [charge ?measured_seconds t op seconds] records an operation: its
    simulated cluster duration and, optionally, the wall-clock time the
    operator actually took on the domain pool (default 0). *)
val charge : ?measured_seconds:float -> t -> op -> float -> unit

(** [elapsed t] is the total simulated time so far. *)
val elapsed : t -> float

(** [measured_seconds t] is the total measured wall-clock time recorded so
    far — the real (pool-parallel) execution time, as opposed to the
    simulated cluster clock of {!elapsed}. *)
val measured_seconds : t -> float

(** [entries t] is the trace, oldest first. *)
val entries : t -> entry list

(** [reset t] clears the trace and the clock. *)
val reset : t -> unit

(** [motion_bytes t] is the total bytes shipped by motions. *)
val motion_bytes : t -> int

(** [pp_plan ppf t] prints the trace as an annotated plan in the style of
    Figure 4 (operator, per-operator simulated duration). *)
val pp_plan : Format.formatter -> t -> unit
