(* TΠ columns: I=0 R=1 x=2 C1=3 y=4 C2=5. *)
let distribution_keys =
  [ [| 1; 3; 5 |]; [| 1; 3; 2; 5 |]; [| 1; 3; 5; 4 |]; [| 1; 3; 2; 5; 4 |] ]

type t = { views : (int array * Dtable.t) list }

let charge_view cluster cost facts ~measured_seconds dt =
  (* Building a view ships (nseg-1)/nseg of the table across the wire. *)
  let bytes =
    Dtable.byte_size dt * (cluster.Cluster.nseg - 1) / max 1 cluster.Cluster.nseg
  in
  Cost.charge ~measured_seconds cost
    (Cost.Redistribute
       {
         table = Relational.Table.name facts;
         rows = Relational.Table.nrows facts;
         bytes;
       })
    (cluster.Cluster.motion_latency_s
    +. (float_of_int bytes /. cluster.Cluster.bandwidth_bytes_per_s))

let create ?pool cluster cost facts =
  let pool = match pool with Some p -> p | None -> Pool.get_default () in
  let keys = Array.of_list distribution_keys in
  let t0 = Unix.gettimeofday () in
  (* The four re-partitions only read [facts]; build them concurrently and
     charge their (sequentially folded) motions afterwards. *)
  let views =
    Pool.map_reduce pool ~n:(Array.length keys)
      ~map:(fun i ->
        let key = keys.(i) in
        (key, Dtable.partition cluster facts (Dtable.Hash key)))
      ~fold:(fun acc v -> v :: acc)
      ~init:[]
    |> List.rev
  in
  let measured_seconds =
    (Unix.gettimeofday () -. t0) /. float_of_int (max 1 (Array.length keys))
  in
  List.iter (fun (_, dt) -> charge_view cluster cost facts ~measured_seconds dt) views;
  { views }

let refresh ?pool _old cluster cost facts = create ?pool cluster cost facts

let subset d key = Array.for_all (fun c -> Array.exists (( = ) c) key) d

let pick v key =
  let best =
    List.fold_left
      (fun acc (d, dt) ->
        if subset d key then
          match acc with
          | Some (d', _) when Array.length d' >= Array.length d -> acc
          | _ -> Some (d, dt)
        else acc)
      None v.views
  in
  match best with
  | Some (_, dt) -> dt
  | None -> invalid_arg "Matview.pick: no view is a subset of the join key"

let base v = List.assoc [| 1; 3; 5 |] v.views

let finest v = List.assoc [| 1; 3; 2; 5; 4 |] v.views
