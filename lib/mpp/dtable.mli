(** Distributed tables.

    A distributed table is one logical table whose rows are spread over
    the cluster's segments under a distribution policy.  Hash distribution
    places a row by hashing its distribution-key columns — matching rows
    of two tables hash-distributed on corresponding keys land on the same
    segment, which is the collocation property the paper's materialized
    views engineer (Section 4.4). *)

type dist =
  | Hash of int array  (** hash of the given columns *)
  | Replicated  (** full copy on every segment *)
  | Unknown  (** e.g. an intermediate join result: rows live where they
                 were produced *)

type t

(** [partition cluster tbl dist] splits [tbl] into per-segment pieces
    (a full copy each for [Replicated]; produced-where-they-are is not a
    constructible policy — [Unknown] inputs are rejected).
    @raise Invalid_argument on [Unknown]. *)
val partition : Cluster.t -> Relational.Table.t -> dist -> t

(** [partition_spilled policy ~prefix cluster tbl dist] is {!partition}
    followed by flushing every shard to its own on-disk segment store
    under [policy]'s spill root; the resident copies are dropped, so the
    distributed table holds only shard metadata.  [seg] materializes a
    shard back from its mmap'd segments on demand, so local joins pay
    the shard's read I/O inside the measured time — honest out-of-core
    MPP rather than an in-memory simulation.  Results are bit-identical
    to the resident partition.
    @raise Invalid_argument on [Unknown]. *)
val partition_spilled :
  Storage.Spill.t ->
  prefix:string ->
  Cluster.t ->
  Relational.Table.t ->
  dist ->
  t

(** [of_segments segs dist] wraps already-materialized per-segment pieces
    (used by operators for their outputs). *)
val of_segments : Relational.Table.t array -> dist -> t

val dist : t -> dist
val nseg : t -> int

(** [seg t i] is the i-th segment's local table.  Spilled shards are
    materialized from disk on every call — use {!seg_rows} for counts. *)
val seg : t -> int -> Relational.Table.t

(** [seg_rows t i] is the i-th shard's row count, without materializing
    spilled shards. *)
val seg_rows : t -> int -> int

(** [spilled t i] is true iff the i-th shard is disk-backed. *)
val spilled : t -> int -> bool

(** [nrows t] is the logical row count ([Replicated] counts one copy). *)
val nrows : t -> int

(** [byte_size t] is the logical byte size (one copy). *)
val byte_size : t -> int

(** [max_seg_rows t] is the largest per-segment cardinality — the skew
    measure that bounds parallel speedup. *)
val max_seg_rows : t -> int

(** [gather t] concatenates the segments back into one table
    ([Replicated] returns segment 0). *)
val gather : t -> Relational.Table.t

(** [name t] is the logical table name. *)
val name : t -> string
