(** The batch grounding queries (paper, Figure 3 and Section 4.3).

    Each structural partition [Mi] has one [groundAtoms] query (Query 1-i)
    and one [groundFactors] query (Query 2-i).  A query joins the [Mi]
    table with the fact table [TΠ] on the relation and class columns —
    thereby applying *every* rule of the partition in one batch — instead
    of issuing one query per rule as Tuffy does.

    One-atom patterns compile to a single hash join; two-atom patterns to
    two (Mi ⋈ TΠ, then the intermediate ⋈ TΠ with the shared-variable
    equality folded into the join key, e.g. [T2.x = T3.x] for pattern 3). *)

(** Physical description of one pattern's queries: the join keys (as
    column positions of [Mi], [TΠ] and the intermediate [J]) and the
    [TΠ] columns that supply the head's variables.  Exposed so the MPP
    driver executes exactly the same plans distributed. *)
module Shape : sig
  type t =
    | One_atom of {
        m_key : int array;
        t_key : int array;
        x_src : int;
        y_src : int;
      }
    | Two_atom of {
        m_key1 : int array;
        t_key1 : int array;
        z_src : int;
        x_src : int;
        j_key2 : int array;
        t_key2 : int array;
        y_src : int;
      }
end

(** [shape_of pat] is the query shape of a partition. *)
val shape_of : Mln.Pattern.t -> Shape.t

(** Column names of the intermediate and result tables. *)
val j_cols : string array

val atom_cols : string array
val atom_i_cols : string array

(** Projection (SELECT) lists of the three join kinds. *)
val step1_out : Shape.t -> Relational.Join.out_col array

val atoms_out : Shape.t -> Relational.Join.out_col array
val factors_out : Shape.t -> Relational.Join.out_col array

(** [resolve_heads rows pi g] finalizes a factor query: probe each row's
    head key [(R, x, C1, y, C2)] against [TΠ] and emit
    [(I1, I2, I3, w)] into [g]; rows whose head is missing (deleted by
    quality control) are skipped.  Returns the factor count. *)
val resolve_heads :
  Relational.Table.t -> Kb.Storage.t -> Factor_graph.Fgraph.t -> int

type prepared
(** Hash indexes over the six [Mi] tables, built once and reused across
    iterations. *)

(** [prepare parts] indexes the partition tables. *)
val prepare : Mln.Partition.t -> prepared

(** [partitions p] is the underlying partition set. *)
val partitions : prepared -> Mln.Partition.t

(** {1 Rule adjacency}

    The backward local grounder ({!Local}) needs, per hop, the rules whose
    head — or whose q/r body atom — a given fact can instantiate.  Scanning
    the rule list per hop would make every hop O(rules); instead the rules
    are bucketed once per rule set by the atom's class signature
    [(R, C_first, C_second)] and memoized on the [prepared] value (so the
    map is invalidated exactly when the indexes are: whenever the rule set
    changes and [prepare] runs again, e.g. via [Dred.refresh_rules]). *)

(** Which body atom of a two-atom pattern a fact instantiates. *)
type body_slot = Q_atom | R_atom

type rule_adjacency

(** [rule_adjacency p] is the memoized adjacency map (built on first use). *)
val rule_adjacency : prepared -> rule_adjacency

(** [head_rules adj ~r ~c1 ~c2] is the [(pattern, M-row)] list of rules
    whose head atom a fact with relation [r] and classes [(c1, c2)] can
    instantiate. *)
val head_rules :
  rule_adjacency -> r:int -> c1:int -> c2:int -> (Mln.Pattern.t * int) list

(** [body_rules adj ~r ~c1 ~c2] is the [(pattern, M-row, slot)] list of
    body-atom positions such a fact can fill (one-atom patterns only ever
    in the [Q_atom] slot). *)
val body_rules :
  rule_adjacency ->
  r:int ->
  c1:int ->
  c2:int ->
  (Mln.Pattern.t * int * body_slot) list

(** [atoms_plan p pat pi] is Query 1-i expressed as a logical plan over
    the *current* [Mi] and [TΠ] tables — the same joins and projections
    the physical path runs, with the join-folded dedup made an explicit
    [Distinct].  Feed it to [Relational.Plan.explain] (estimates only) or
    [Plan.analyze] (estimates vs. observed rows) for EXPLAIN output. *)
val atoms_plan : prepared -> Mln.Pattern.t -> Kb.Storage.t -> Relational.Plan.t

(** [ground_atoms p pat pi] is Query 1-i: the head atoms derivable by the
    rules of partition [pat] from the current facts.  The result has
    columns [R, x, C1, y, C2] and may contain duplicates (the caller
    deduplicates when merging into [TΠ]). *)
val ground_atoms :
  prepared -> Mln.Pattern.t -> Kb.Storage.t -> Relational.Table.t

(** [ground_atoms_spilled p pat ~src] is Query 1-i with [TΠ] probed from
    a segmented (spilled) scan source instead of the resident table —
    [src] must cover exactly the current facts (stored segments plus the
    resident tail, e.g. [Storage.Store.source ~tail]).  Output is
    bit-identical to {!ground_atoms}. *)
val ground_atoms_spilled :
  prepared -> Mln.Pattern.t -> src:Relational.Segsrc.t -> Relational.Table.t

(** [ground_atoms_delta p pat pi ~delta] is the semi-naive variant of
    Query 1-i: only derivations with at least one body atom bound to a
    [delta] fact (a table with the [TΠ] schema).  For two-atom patterns
    this runs the plan twice — once with Δ on the first body atom, once
    with Δ on the second via the *mirrored* pattern (P3↔P3, P4↔P5,
    P6↔P6 with transformed rule rows and the head columns swapped back
    inside the projection) — streaming both probe outputs into one
    shared dedup sink, so the union never materializes per-term
    tables. *)
val ground_atoms_delta :
  prepared ->
  Mln.Pattern.t ->
  Kb.Storage.t ->
  delta:Relational.Table.t ->
  Relational.Table.t

(** [ground_factors p pat pi g] is Query 2-i: for every ground rule of
    partition [pat] whose body facts and head fact all exist in [TΠ],
    append the factor [(I1, I2, I3, w)] to [g]; [w] is the rule weight.
    Returns the number of factors produced.  Per Proposition 1 of the
    paper, a deduplicated [Mi] produces no duplicate [(I1, I2, I3)]
    within the partition. *)
val ground_factors :
  prepared ->
  Mln.Pattern.t ->
  Kb.Storage.t ->
  Factor_graph.Fgraph.t ->
  int

(** [ground_factors_spilled p pat pi ~src g] is Query 2-i probing the
    segmented source [src] (covering exactly the current facts); head
    resolution still uses the resident store [pi].  Bit-identical to
    {!ground_factors}. *)
val ground_factors_spilled :
  prepared ->
  Mln.Pattern.t ->
  Kb.Storage.t ->
  src:Relational.Segsrc.t ->
  Factor_graph.Fgraph.t ->
  int

(** [ground_factors_delta p pat pi ~delta ~watermark g] is the
    incremental Query 2-i: only ground-clause instances with at least one
    body atom bound to a [delta] fact (a table with the [TΠ] schema).
    Like {!ground_atoms_delta} it runs two-atom patterns twice — Δ on the
    first body atom against all of [TΠ], then Δ on the second via the
    mirrored pattern with both the head columns and the body-id columns
    swapped back inside the projection — and avoids double-counting
    instances whose body atoms are both new by restricting the second
    term's other atom to facts with [id < watermark] (take the watermark
    from [Storage.next_id] before inserting the batch).  On a store whose
    previous closure converged, appending these factors to the factors of
    the previous epochs reproduces the batch [ground_factors] output over
    the grown [TΠ]: an instance built only from old facts would imply its
    head was already derivable, hence already present with its factor.
    Returns the number of factors appended. *)
val ground_factors_delta :
  prepared ->
  Mln.Pattern.t ->
  Kb.Storage.t ->
  delta:Relational.Table.t ->
  watermark:int ->
  Factor_graph.Fgraph.t ->
  int

(** [singleton_factors pi g] is [groundFactors(TΠ)] (Algorithm 1,
    line 10): one singleton factor per fact with a non-null weight.
    Returns the count. *)
val singleton_factors : Kb.Storage.t -> Factor_graph.Fgraph.t -> int
