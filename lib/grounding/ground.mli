(** Algorithm 1 — the grounding driver.

    Repeatedly applies every rule partition in batches, merging new facts
    into [TΠ], applying semantic constraints, until the transitive closure
    is reached (or an iteration budget is exhausted); then applies the
    partitions once more to construct the ground factors, plus one
    singleton factor per weighted base fact. *)

type options = {
  max_iterations : int;  (** closure iteration budget (paper: 15 suffice) *)
  apply_constraints : (Kb.Storage.t -> int * int) option;
      (** the [applyConstraints(TΠ)] hook of Algorithm 1, line 6; returns
          [(violations found, facts removed)] (see [Quality.Semantic]) *)
  distinct_before_merge : bool;
      (** deduplicate query outputs before merging (bounds peak memory on
          rule sets with heavy overlap; default true) *)
  build_factors : bool;  (** run the groundFactors phase (default true) *)
  semi_naive : bool;
      (** delta-driven evaluation: each iteration joins only against the
          facts added by the previous one instead of the whole of [TΠ].
          Sound because derivation is monotone; mid-run deletions by a
          constraint hook are handled by dropping the deleted rows from
          the pending delta after each constraint pass, so the hook no
          longer forces naive evaluation — the delta-mode closure matches
          the naive reference output.  An optimization the paper leaves on
          the table — see the ablation benchmark.  Default [false],
          matching the paper's Algorithm 1 *)
  initial_delta : Relational.Table.t option;
      (** incremental mode: a table with the [TΠ] schema holding the facts
          that were just added to an already-closed store; the first
          iteration joins only against them (implies [semi_naive]).  This
          is the paper's knowledge-expansion loop run *continuously*: new
          extractions arrive, only their consequences are derived *)
  on_iteration : (iteration:int -> new_facts:int -> unit) option;
      (** progress callback *)
  spill : Storage.Spill.t option;
      (** out-of-core probing (default [None]): once [TΠ] crosses the
          policy's byte threshold, keep an on-disk segment-store copy in
          step (whole segments appended per iteration, partial tail
          resident) and probe the closure and factor joins from it via
          mmap instead of the resident table.  The resident store stays
          the authority; results are bit-identical with or without
          spilling *)
  obs : Obs.t;
      (** trace context (default {!Obs.null}).  When enabled, the run
          emits a [closure > iteration i > M1..M6/merge] span tree, a
          [factors] span tree, and [ground.*] counters; the context is
          also installed as the ambient trace so the relational operators
          underneath record their own metrics. *)
}

val default_options : options

(** One point of the expansion trajectory — the per-iteration curve behind
    the paper's quality-over-iterations figures.  Point 0 (present only
    with a constraint hook) is the pre-closure constraint pass. *)
type trajectory_point = {
  iteration : int;
  new_facts : int;  (** facts added by this iteration's joins *)
  total_facts : int;  (** [TΠ] size after constraints ran *)
  violations : int;  (** constraint violations found this pass *)
  removed : int;  (** facts the constraint pass deleted *)
}

type result = {
  graph : Factor_graph.Fgraph.t;  (** [TΦ] *)
  iterations : int;  (** closure iterations executed *)
  converged : bool;  (** true iff a fixpoint was reached *)
  facts_per_iteration : int list;
      (** [TΠ] size after each iteration, oldest first *)
  trajectory : trajectory_point list;
      (** per-iteration expansion curve, oldest first; each point is also
          emitted as a snapshot (stage ["ground"], point ["iteration"])
          when [obs] has a sink installed *)
  new_fact_count : int;  (** facts added by inference in total *)
  removed_by_constraints : int;  (** facts deleted by the constraint hook *)
  n_singleton_factors : int;
  n_clause_factors : int;
  stats : Relational.Stats.t;  (** per-query timings and cardinalities *)
}

(** [run ?options kb] grounds the knowledge base in place: inferred facts
    are merged into [kb]'s fact store with null weights. *)
val run : ?options:options -> Kb.Gamma.t -> result

(** [closure ?options kb] is {!run} with [build_factors = false] — computes
    only the fact closure (the repeated Query 1 phase of Table 3). *)
val closure : ?options:options -> Kb.Gamma.t -> result

(** [local ?budget ?source kb ~query] grounds only the proof neighbourhood
    of fact [query] — see {!Local} for budget semantics and sources.  When
    [source] is omitted a backward-chaining source over [kb]'s indexes is
    prepared ad hoc; callers issuing many queries should build one
    [Local.of_kb]/[Local.of_adjacency] source and pass it in, so the rule
    adjacency and partial indexes are shared.  Requires the fact closure to
    have run ({!closure} or {!run}). *)
val local :
  ?budget:Local.budget ->
  ?source:Local.source ->
  Kb.Gamma.t ->
  query:int ->
  Local.result
