module Table = Relational.Table
module Index = Relational.Index
module Join = Relational.Join
module Sink = Relational.Sink
module Pattern = Mln.Pattern
module Storage = Kb.Storage
module Fgraph = Factor_graph.Fgraph

(* Column layouts, fixed by the storage modules:
   TΠ:      I=0  R=1  x=2  C1=3  y=4  C2=5
   M1/M2:   R1=0 R2=1 C1=2 C2=3
   M3..M6:  R1=0 R2=1 R3=2 C1=3 C2=4 C3=5
   J (the Mi ⋈ TΠ intermediate of two-atom patterns):
            R1=0 R3=1 C1=2 C2=3 C3=4 z=5 x=6 I2=7 *)

(* Physical description of the queries of one pattern. *)
module Shape = struct
type t =
  | One_atom of {
      m_key : int array;  (* join key columns on Mi *)
      t_key : int array;  (* join key columns on TΠ *)
      x_src : int;  (* TΠ column holding the head's x value *)
      y_src : int;  (* TΠ column holding the head's y value *)
    }
  | Two_atom of {
      m_key1 : int array;  (* step 1: Mi side *)
      t_key1 : int array;  (* step 1: TΠ side (the q atom) *)
      z_src : int;  (* TΠ column holding z in the q atom *)
      x_src : int;  (* TΠ column holding x in the q atom *)
      j_key2 : int array;  (* step 2: J side *)
      t_key2 : int array;  (* step 2: TΠ side (the r atom) *)
      y_src : int;  (* TΠ column holding y in the r atom *)
    }

end

open Shape

(* TΠ columns *)
let tR = 1
let tx = 2
let tC1 = 3
let ty = 4
let tC2 = 5

let shape_of : Pattern.t -> Shape.t = function
  | Pattern.P1 ->
    (* p(x,y) <- q(x,y):  M.R2 = T.R, M.C1 = T.C1, M.C2 = T.C2 *)
    One_atom
      { m_key = [| 1; 2; 3 |]; t_key = [| tR; tC1; tC2 |]; x_src = tx; y_src = ty }
  | Pattern.P2 ->
    (* p(x,y) <- q(y,x):  q's first argument is y ∈ C2, second is x ∈ C1 *)
    One_atom
      { m_key = [| 1; 3; 2 |]; t_key = [| tR; tC1; tC2 |]; x_src = ty; y_src = tx }
  | Pattern.P3 ->
    (* p(x,y) <- q(z,x), r(z,y) *)
    Two_atom
      {
        m_key1 = [| 1; 5; 3 |] (* R2, C3, C1 *);
        t_key1 = [| tR; tC1; tC2 |];
        z_src = tx;
        x_src = ty;
        j_key2 = [| 1; 4; 3; 5 |] (* R3, C3, C2, z *);
        t_key2 = [| tR; tC1; tC2; tx |];
        y_src = ty;
      }
  | Pattern.P4 ->
    (* p(x,y) <- q(x,z), r(z,y) *)
    Two_atom
      {
        m_key1 = [| 1; 3; 5 |] (* R2, C1, C3 *);
        t_key1 = [| tR; tC1; tC2 |];
        z_src = ty;
        x_src = tx;
        j_key2 = [| 1; 4; 3; 5 |];
        t_key2 = [| tR; tC1; tC2; tx |];
        y_src = ty;
      }
  | Pattern.P5 ->
    (* p(x,y) <- q(z,x), r(y,z) *)
    Two_atom
      {
        m_key1 = [| 1; 5; 3 |];
        t_key1 = [| tR; tC1; tC2 |];
        z_src = tx;
        x_src = ty;
        j_key2 = [| 1; 3; 4; 5 |] (* R3, C2, C3, z *);
        t_key2 = [| tR; tC1; tC2; ty |];
        y_src = tx;
      }
  | Pattern.P6 ->
    (* p(x,y) <- q(x,z), r(y,z) *)
    Two_atom
      {
        m_key1 = [| 1; 3; 5 |];
        t_key1 = [| tR; tC1; tC2 |];
        z_src = ty;
        x_src = tx;
        j_key2 = [| 1; 3; 4; 5 |];
        t_key2 = [| tR; tC1; tC2; ty |];
        y_src = tx;
      }

type body_slot = Q_atom | R_atom

type rule_adjacency = {
  by_head : (int * int * int, (Pattern.t * int) list) Hashtbl.t;
  by_body : (int * int * int, (Pattern.t * int * body_slot) list) Hashtbl.t;
}

type prepared = {
  parts : Mln.Partition.t;
  m_index : Index.t array; (* per pattern, on the step-1 Mi key *)
  mirror_index : Index.t option array; (* lazily built for semi-naive *)
  mutable rule_adj : rule_adjacency option; (* lazily built for local walks *)
}

let step1_key pat =
  match shape_of pat with
  | One_atom s -> s.m_key
  | Two_atom s -> s.m_key1

let prepare parts =
  {
    parts;
    m_index =
      Array.init 6 (fun i ->
          let pat = Pattern.of_index i in
          Index.build (Mln.Partition.table parts pat) (step1_key pat));
    mirror_index = Array.make 6 None;
    rule_adj = None;
  }

let partitions p = p.parts

(* Atom class signatures [(R, C_first, C_second)] of every atom position of
   every pattern, read off the M-row columns.  A fact [(r, x, C1, y, C2)]
   can play an atom role iff its [(r, C1, C2)] equals the signature — the
   key the backward walk probes with, one hash lookup per hop instead of a
   rescan of the rule list. *)
let head_sig pat m row =
  if Pattern.arity pat = 4 then
    (Table.get m row 0, Table.get m row 2, Table.get m row 3)
  else (Table.get m row 0, Table.get m row 3, Table.get m row 4)

let q_sig pat m row =
  let g = Table.get m row in
  match pat with
  | Pattern.P1 -> (g 1, g 2, g 3) (* q(x, y) *)
  | Pattern.P2 -> (g 1, g 3, g 2) (* q(y, x) *)
  | Pattern.P3 | Pattern.P5 -> (g 1, g 5, g 3) (* q(z, x) *)
  | Pattern.P4 | Pattern.P6 -> (g 1, g 3, g 5) (* q(x, z) *)

let r_sig pat m row =
  let g = Table.get m row in
  match pat with
  | Pattern.P1 | Pattern.P2 -> invalid_arg "Queries.r_sig: one-atom pattern"
  | Pattern.P3 | Pattern.P4 -> (g 2, g 5, g 4) (* r(z, y) *)
  | Pattern.P5 | Pattern.P6 -> (g 2, g 4, g 5) (* r(y, z) *)

let rule_adjacency p =
  match p.rule_adj with
  | Some adj -> adj
  | None ->
    let adj =
      { by_head = Hashtbl.create 64; by_body = Hashtbl.create 64 }
    in
    let push tbl k v =
      Hashtbl.replace tbl k
        (v :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
    in
    List.iter
      (fun pat ->
        let m = Mln.Partition.table p.parts pat in
        for row = 0 to Table.nrows m - 1 do
          push adj.by_head (head_sig pat m row) (pat, row);
          push adj.by_body (q_sig pat m row) (pat, row, Q_atom);
          if Pattern.arity pat = 6 then
            push adj.by_body (r_sig pat m row) (pat, row, R_atom)
        done)
      Pattern.all;
    p.rule_adj <- Some adj;
    adj

let head_rules adj ~r ~c1 ~c2 =
  Option.value ~default:[] (Hashtbl.find_opt adj.by_head (r, c1, c2))

let body_rules adj ~r ~c1 ~c2 =
  Option.value ~default:[] (Hashtbl.find_opt adj.by_body (r, c1, c2))

let j_cols = [| "R1"; "R3"; "C1"; "C2"; "C3"; "z"; "x"; "I2" |]
let atom_cols = [| "R"; "x"; "C1"; "y"; "C2" |]
let atom_i_cols = [| "R"; "x"; "C1"; "y"; "C2"; "I2"; "I3" |]

let step1_out (s : Shape.t) =
  match s with
  | One_atom _ -> invalid_arg "Queries.step1_out"
  | Two_atom s ->
    [|
      Join.Col (Join.Build, 0);
      Join.Col (Join.Build, 2);
      Join.Col (Join.Build, 3);
      Join.Col (Join.Build, 4);
      Join.Col (Join.Build, 5);
      Join.Col (Join.Probe, s.z_src);
      Join.Col (Join.Probe, s.x_src);
      Join.Col (Join.Probe, 0);
    |]

let atoms_out (s : Shape.t) =
  match s with
  | One_atom s ->
    [|
      Join.Col (Join.Build, 0);
      Join.Col (Join.Probe, s.x_src);
      Join.Col (Join.Build, 2);
      Join.Col (Join.Probe, s.y_src);
      Join.Col (Join.Build, 3);
    |]
  | Two_atom s ->
    [|
      Join.Col (Join.Build, 0);
      Join.Col (Join.Build, 6);
      Join.Col (Join.Build, 2);
      Join.Col (Join.Probe, s.y_src);
      Join.Col (Join.Build, 3);
    |]

let factors_out (s : Shape.t) =
  match s with
  | One_atom s ->
    [|
      Join.Col (Join.Build, 0);
      Join.Col (Join.Probe, s.x_src);
      Join.Col (Join.Build, 2);
      Join.Col (Join.Probe, s.y_src);
      Join.Col (Join.Build, 3);
      Join.Col (Join.Probe, 0);
      Join.Const Fgraph.null;
    |]
  | Two_atom s ->
    [|
      Join.Col (Join.Build, 0);
      Join.Col (Join.Build, 6);
      Join.Col (Join.Build, 2);
      Join.Col (Join.Probe, s.y_src);
      Join.Col (Join.Build, 3);
      Join.Col (Join.Build, 7);
      Join.Col (Join.Probe, 0);
    |]

(* Logical-plan mirror of Query 1-i, for EXPLAIN: the same joins and
   projections the physical path executes, expressed as a
   [Relational.Plan.t] so the planner's cardinality estimates can be
   printed (and compared) against observed row counts.  The physical path
   folds the final dedup into the join; the plan makes it an explicit
   [Distinct] node. *)
module Plan = Relational.Plan

let atoms_plan p pat pi =
  let t = Storage.table pi in
  let m_tbl = Mln.Partition.table p.parts pat in
  match shape_of pat with
  | One_atom s ->
    (* Mi has 4 columns, so TΠ columns sit at offset 4 in the join. *)
    let join =
      Plan.Equi_join
        { left = Plan.Scan m_tbl; right = Plan.Scan t;
          lkey = s.m_key; rkey = s.t_key }
    in
    Plan.Distinct
      (None, Plan.Project ([| 0; 4 + s.x_src; 2; 4 + s.y_src; 3 |], join))
  | Two_atom s ->
    (* Mi has 6 columns; J keeps (R1, R3, C1, C2, C3, z, x, I2). *)
    let j =
      Plan.Distinct
        ( None,
          Plan.Project
            ( [| 0; 2; 3; 4; 5; 6 + s.z_src; 6 + s.x_src; 6 |],
              Plan.Equi_join
                { left = Plan.Scan m_tbl; right = Plan.Scan t;
                  lkey = s.m_key1; rkey = s.t_key1 } ) )
    in
    let join2 =
      Plan.Equi_join
        { left = j; right = Plan.Scan t; lkey = s.j_key2; rkey = s.t_key2 }
    in
    Plan.Distinct (None, Plan.Project ([| 0; 6; 2; 8 + s.y_src; 3 |], join2))

(* Step 1 of two-atom patterns: J = Mi ⋈ (q side) — [q_tbl] is normally
   TΠ, or the delta facts under semi-naive evaluation. *)
let step1 midx pat (s : Shape.t) q_tbl =
  match s with
  | One_atom _ -> invalid_arg "step1"
  | Two_atom s2 ->
    Join.hash_join_pre
      ~name:(Pattern.to_string pat ^ "_J")
      ~cols:j_cols ~out:(step1_out s)
      ~oweight:(Join.Weight_of Join.Build)
      ~dedup:true midx (q_tbl, s2.t_key1)

(* The atoms query against explicit fact tables for each body atom. *)
let ground_atoms_tables midx pat ~q_tbl ~r_tbl =
  let s = shape_of pat in
  match s with
  | One_atom s1 ->
    Join.hash_join_pre
      ~name:("atoms_" ^ Pattern.to_string pat)
      ~cols:atom_cols ~out:(atoms_out s)
      ~oweight:Join.No_weight ~dedup:true midx (q_tbl, s1.t_key)
  | Two_atom s2 ->
    let j = step1 midx pat s q_tbl in
    Join.hash_join
      ~name:("atoms_" ^ Pattern.to_string pat)
      ~cols:atom_cols ~out:(atoms_out s)
      ~oweight:Join.No_weight ~dedup:true (j, s2.j_key2) (r_tbl, s2.t_key2)

let ground_atoms p pat pi =
  let t = Storage.table pi in
  ground_atoms_tables p.m_index.(Pattern.index pat) pat ~q_tbl:t ~r_tbl:t

(* --- out-of-core (spilled TΠ) variants ---------------------------

   Same joins, same output specs, same inline dedup as the in-memory
   queries, but TΠ is probed from a segmented scan source (a spilled
   segment store, plus the resident tail): each resident segment streams
   as one morsel, so the probe never materializes the spilled copy.
   Segmented scans hand out the same row ids and stream rows in the same
   order as a scan of the resident table, so the output is bit-identical
   to {!ground_atoms} / {!ground_factors}. *)

let step1_src midx pat (s : Shape.t) src =
  match s with
  | One_atom _ -> invalid_arg "step1_src"
  | Two_atom s2 ->
    Join.hash_join_pre_src
      ~name:(Pattern.to_string pat ^ "_J")
      ~cols:j_cols ~out:(step1_out s)
      ~oweight:(Join.Weight_of Join.Build)
      ~dedup:true midx (src, s2.t_key1)

let ground_atoms_spilled p pat ~src =
  let midx = p.m_index.(Pattern.index pat) in
  let s = shape_of pat in
  match s with
  | One_atom s1 ->
    Join.hash_join_pre_src
      ~name:("atoms_" ^ Pattern.to_string pat)
      ~cols:atom_cols ~out:(atoms_out s)
      ~oweight:Join.No_weight ~dedup:true midx (src, s1.t_key)
  | Two_atom s2 ->
    let j = step1_src midx pat s src in
    Join.hash_join_pre_src
      ~name:("atoms_" ^ Pattern.to_string pat)
      ~cols:atom_cols ~out:(atoms_out s)
      ~oweight:Join.No_weight ~dedup:true
      (Index.build j s2.j_key2)
      (src, s2.t_key2)

(* Resolve heads against TΠ and emit factor rows. *)
let resolve_heads rows pi g =
  let idx = Storage.key_index pi in
  let facts = Storage.table pi in
  let kv = Array.make 5 0 in
  let produced = ref 0 in
  for r = 0 to Table.nrows rows - 1 do
    for i = 0 to 4 do
      kv.(i) <- Table.get rows r i
    done;
    match Index.first_match idx kv with
    | Some head_row ->
      let i1 = Table.get facts head_row 0 in
      let i2 = Table.get rows r 5 and i3 = Table.get rows r 6 in
      Fgraph.add_clause g ~i1 ~i2
        ?i3:(if i3 = Fgraph.null then None else Some i3)
        ~w:(Table.weight rows r) ();
      incr produced
    | None -> () (* head was deleted by quality control *)
  done;
  !produced

(* --- semi-naive (delta) evaluation -------------------------------

   New facts at iteration k+1 need at least one body atom bound to a
   fact from iteration k's delta:

     Δ(q ⋈ r) = (Δ ⋈_q T) ∪ (T ⋈_q Δ_r)

   The second union term pivots the join to start from the r atom; by the
   patterns' symmetry this is the *mirrored* pattern run on transformed
   rule rows: swapping the roles of x and y maps
   q(x-atom), r(y-atom) to r(x-atom), q(y-atom) with
   P3↔P3, P4↔P5, P5↔P4, P6↔P6, rows (R1,R2,R3,C1,C2,C3) →
   (R1,R3,R2,C2,C1,C3), and the head emitted with x and y swapped. *)

let mirror_pattern = function
  | Pattern.P3 -> Pattern.P3
  | Pattern.P4 -> Pattern.P5
  | Pattern.P5 -> Pattern.P4
  | Pattern.P6 -> Pattern.P6
  | (Pattern.P1 | Pattern.P2) as p -> p

let mirror_rule_table pat tbl =
  let mp = mirror_pattern pat in
  let out =
    Table.create ~weighted:true
      ~name:(Table.name tbl ^ "_mirror")
      (Pattern.columns mp)
  in
  Table.iter
    (fun r ->
      Table.append_w out
        [|
          Table.get tbl r 0; Table.get tbl r 2; Table.get tbl r 1;
          Table.get tbl r 4; Table.get tbl r 3; Table.get tbl r 5;
        |]
        (Table.weight tbl r))
    tbl;
  out

(* [atoms_out] with the head columns swapped in the projection itself:
   (R, x', C1', y', C2') → (R, y', C2', x', C1').  The mirrored pattern's
   join emits rows directly in head orientation, so the delta path needs
   no post-hoc rewrite pass over a materialized table. *)
let atoms_out_swapped s =
  let a = atoms_out s in
  [| a.(0); a.(3); a.(4); a.(1); a.(2) |]

let mirror_index p pat =
  match p.mirror_index.(Pattern.index pat) with
  | Some idx -> idx
  | None ->
    let mp = mirror_pattern pat in
    let tbl =
      mirror_rule_table pat (Mln.Partition.table (partitions p) pat)
    in
    let idx = Index.build tbl (step1_key mp) in
    p.mirror_index.(Pattern.index pat) <- Some idx;
    idx

let ground_atoms_delta p pat pi ~delta =
  let t = Storage.table pi in
  let midx = p.m_index.(Pattern.index pat) in
  match shape_of pat with
  | Shape.One_atom _ -> ground_atoms_tables midx pat ~q_tbl:delta ~r_tbl:t
  | Shape.Two_atom _ ->
    (* Both union terms stream their probe output into one shared dedup
       sink — no per-term result table, no union materialization, and
       rows reachable through both body atoms appear once (the first
       term's occurrence wins, as a sequential distinct would pick). *)
    let sink =
      Sink.create
        ~dedup_key:(Array.init (Array.length atom_cols) Fun.id)
        ~name:("atoms_" ^ Pattern.to_string pat)
        atom_cols
    in
    let probe_into index as_pat ~out =
      match shape_of as_pat with
      | Shape.One_atom _ -> assert false
      | Shape.Two_atom s2 ->
        let shape = shape_of as_pat in
        let j = step1 index as_pat shape delta in
        Join.hash_join_pre_into ~out:(out shape) ~oweight:Join.No_weight ~sink
          (Index.build j s2.j_key2) (t, s2.t_key2)
    in
    (* Δ bound to the q atom… *)
    probe_into midx pat ~out:atoms_out;
    (* …then Δ bound to the r atom, via the mirrored pattern with the
       head columns swapped back inside the projection. *)
    probe_into (mirror_index p pat) (mirror_pattern pat) ~out:atoms_out_swapped;
    let obs = Obs.ambient () in
    if Obs.enabled obs then Sink.record_distinct_obs obs sink;
    Sink.table sink

let ground_factors p pat pi g =
  let s = shape_of pat in
  let t = Storage.table pi in
  let rows =
    match s with
    | One_atom s1 ->
      Join.hash_join_pre
        ~name:("factors_" ^ Pattern.to_string pat)
        ~cols:atom_i_cols ~out:(factors_out s)
        ~oweight:(Join.Weight_of Join.Build)
        p.m_index.(Pattern.index pat)
        (t, s1.t_key)
    | Two_atom s2 ->
      let j = step1 p.m_index.(Pattern.index pat) pat s t in
      Join.hash_join
        ~name:("factors_" ^ Pattern.to_string pat)
        ~cols:atom_i_cols ~out:(factors_out s)
        ~oweight:(Join.Weight_of Join.Build) (j, s2.j_key2) (t, s2.t_key2)
  in
  resolve_heads rows pi g

(* Query 2-i against a spilled TΠ: probes stream from the segment
   source; head resolution still looks heads up in the resident store
   (the authority). *)
let ground_factors_spilled p pat pi ~src g =
  let s = shape_of pat in
  let rows =
    match s with
    | One_atom s1 ->
      Join.hash_join_pre_src
        ~name:("factors_" ^ Pattern.to_string pat)
        ~cols:atom_i_cols ~out:(factors_out s)
        ~oweight:(Join.Weight_of Join.Build)
        p.m_index.(Pattern.index pat)
        (src, s1.t_key)
    | Two_atom s2 ->
      let j = step1_src p.m_index.(Pattern.index pat) pat s src in
      Join.hash_join_pre_src
        ~name:("factors_" ^ Pattern.to_string pat)
        ~cols:atom_i_cols ~out:(factors_out s)
        ~oweight:(Join.Weight_of Join.Build)
        (Index.build j s2.j_key2)
        (src, s2.t_key2)
  in
  resolve_heads rows pi g

(* [factors_out] for the mirrored run of a two-atom pattern: the head
   columns (x, C1)/(y, C2) *and* the body ids I2/I3 are swapped back to the
   original orientation, so delta-built factor rows are textually identical
   to the ones the batch Query 2 emits for the same instances. *)
let factors_out_swapped s =
  let a = factors_out s in
  [| a.(0); a.(3); a.(4); a.(1); a.(2); a.(6); a.(5) |]

let ground_factors_delta p pat pi ~delta ~watermark g =
  let t = Storage.table pi in
  let s = shape_of pat in
  match s with
  | One_atom s1 ->
    (* The only body atom must be a delta fact. *)
    let rows =
      Join.hash_join_pre
        ~name:("factors_" ^ Pattern.to_string pat ^ "_d")
        ~cols:atom_i_cols ~out:(factors_out s)
        ~oweight:(Join.Weight_of Join.Build)
        p.m_index.(Pattern.index pat)
        (delta, s1.t_key)
    in
    resolve_heads rows pi g
  | Two_atom s2 ->
    (* Δ bound to the q atom (the r atom ranges over all of TΠ)… *)
    let j = step1 p.m_index.(Pattern.index pat) pat s delta in
    let n1 =
      resolve_heads
        (Join.hash_join
           ~name:("factors_" ^ Pattern.to_string pat ^ "_dq")
           ~cols:atom_i_cols ~out:(factors_out s)
           ~oweight:(Join.Weight_of Join.Build) (j, s2.j_key2) (t, s2.t_key2))
        pi g
    in
    (* …then Δ bound to the r atom via the mirrored pattern, with the q
       atom restricted to *old* facts ([id < watermark]) so instances
       whose body atoms are both new are not emitted twice. *)
    let mp = mirror_pattern pat in
    let ms = shape_of mp in
    (match ms with
    | One_atom _ -> assert false
    | Two_atom ms2 ->
      let j2 = step1 (mirror_index p pat) mp ms delta in
      let rows2 =
        Join.hash_join
          ~name:("factors_" ^ Pattern.to_string pat ^ "_dr")
          ~cols:atom_i_cols
          ~out:(factors_out_swapped ms)
          ~oweight:(Join.Weight_of Join.Build)
          ~residual:(fun _ p_row -> Table.get t p_row 0 < watermark)
          (j2, ms2.j_key2) (t, ms2.t_key2)
      in
      n1 + resolve_heads rows2 pi g)

let singleton_factors pi g =
  let n = ref 0 in
  Storage.iter
    (fun ~id ~r:_ ~x:_ ~c1:_ ~y:_ ~c2:_ ~w ->
      if not (Table.is_null_weight w) then begin
        Fgraph.add_singleton g ~i:id ~w;
        incr n
      end)
    pi;
  !n
