module Table = Relational.Table
module Ops = Relational.Ops
module Stats = Relational.Stats
module Pattern = Mln.Pattern

(* The segment-store aliases must precede the [Kb.Storage] rebinding:
   [Storage] names the out-of-core library only up to the next line. *)
module Seg_store = Storage.Store
module Spill = Storage.Spill
module Storage = Kb.Storage
module Fgraph = Factor_graph.Fgraph

let src = Logs.Src.create "probkb.grounding" ~doc:"ProbKB grounding driver"

module Log = (val Logs.src_log src)

type options = {
  max_iterations : int;
  apply_constraints : (Storage.t -> int * int) option;
  distinct_before_merge : bool;
  build_factors : bool;
  semi_naive : bool;
  initial_delta : Table.t option;
  on_iteration : (iteration:int -> new_facts:int -> unit) option;
  spill : Spill.t option;
  obs : Obs.t;
}

let default_options =
  {
    max_iterations = 15;
    apply_constraints = None;
    distinct_before_merge = true;
    build_factors = true;
    semi_naive = false;
    initial_delta = None;
    on_iteration = None;
    spill = None;
    obs = Obs.null;
  }

type trajectory_point = {
  iteration : int;
  new_facts : int;
  total_facts : int;
  violations : int;
  removed : int;
}

type result = {
  graph : Fgraph.t;
  iterations : int;
  converged : bool;
  facts_per_iteration : int list;
  trajectory : trajectory_point list;
  new_fact_count : int;
  removed_by_constraints : int;
  n_singleton_factors : int;
  n_clause_factors : int;
  stats : Stats.t;
}

let all_atom_cols = [| 0; 1; 2; 3; 4 |]

let active_patterns prepared =
  List.filter
    (fun pat -> Mln.Partition.count (Queries.partitions prepared) pat > 0)
    Pattern.all

let pattern_name pat = Printf.sprintf "M%d" (Pattern.index pat + 1)

let run ?(options = default_options) kb =
  let obs = options.obs in
  Obs.with_ambient obs @@ fun () ->
  let pi = Kb.Gamma.pi kb in
  let prepared = Queries.prepare (Kb.Gamma.partitions kb) in
  let patterns = active_patterns prepared in
  let stats = Stats.create () in
  let graph = Fgraph.create () in
  let removed = ref 0 in
  let total_new = ref 0 in
  let facts_per_iteration = ref [] in
  let trajectory = ref [] in
  let iterations = ref 0 in
  let converged = ref false in
  (* Returns this pass's (violations, facts removed). *)
  let constrain pi =
    match options.apply_constraints with
    | Some f ->
      let nviol, n =
        Obs.timed obs "ground.constraints_seconds" (fun () -> f pi)
      in
      Obs.add obs "ground.constraint_removed" n;
      removed := !removed + n;
      (nviol, n)
    | None -> (0, 0)
  in
  let record_point ~iteration ~new_facts ~violations ~removed:rm =
    let total_facts = Storage.size pi in
    trajectory :=
      { iteration; new_facts; total_facts; violations; removed = rm }
      :: !trajectory;
    Obs.snapshot obs ~stage:"ground" ~point:"iteration" ~step:iteration
      ~perf:(Obs.mem_stats ())
      [
        ("new_facts", Obs.I new_facts);
        ("total_facts", Obs.I total_facts);
        ("violations", Obs.I violations);
        ("removed", Obs.I rm);
      ]
  in
  let semi_naive = options.semi_naive || options.initial_delta <> None in
  let delta = ref options.initial_delta in
  (* Out-of-core probing: once [TΠ] crosses the spill threshold, keep an
     on-disk segment-store copy in step (whole segments appended per
     iteration; the partial tail stays resident) and probe the closure
     and factor joins from it instead of the resident table.  The
     resident store remains the authority — merges, head resolution and
     constraint passes are untouched — and segmented probes are
     bit-identical to resident ones, so spilling changes I/O, never
     results. *)
  let spill_store = ref None in
  let sync_spill () =
    match options.spill with
    | None -> ()
    | Some policy -> (
      let facts = Storage.table pi in
      match !spill_store with
      | Some st ->
        spill_store := Some (Obs.timed obs "storage.spill_seconds" (fun () ->
            Seg_store.sync st facts))
      | None ->
        if Spill.should_spill policy facts then
          spill_store :=
            Some
              (Obs.timed obs "storage.spill_seconds" (fun () ->
                   Seg_store.spill
                     ~segment_rows:(Spill.segment_rows policy)
                     ~tail:false
                     ~dir:(Spill.fresh_dir policy ~prefix:"tpi")
                     facts)))
  in
  let fact_src () =
    Option.map
      (fun st -> Seg_store.source ~tail:(Storage.table pi) st)
      !spill_store
  in
  (* Deletions interact with semi-naive evaluation in exactly one place:
     the saved delta may still hold rows the constraint pass just removed
     from [TΠ], and joining against them would re-derive consequences of
     deleted facts.  Dropping those rows from the delta restores the
     semi-naive invariant (the delta is precisely the surviving facts the
     rest of [TΠ] has not yet been joined against), so a firing constraint
     hook no longer forces naive evaluation.  Banned keys vanish here too:
     a banned fact is deleted from storage, so its delta row dies with
     it. *)
  let filter_delta () =
    match !delta with
    | Some d ->
      delta :=
        Some
          (Table.filter d (fun r ->
               Storage.find pi ~r:(Table.get d r 1) ~x:(Table.get d r 2)
                 ~c1:(Table.get d r 3) ~y:(Table.get d r 4)
                 ~c2:(Table.get d r 5)
               <> None))
    | None -> ()
  in
  (* Constraints are applied once before inference starts (the paper's
     Section 6.1.1 protocol) and then after every iteration (Algorithm 1,
     line 6): an entity that already violates Ω must not seed the very
     first round of joins.  This pre-pass is trajectory point 0. *)
  if options.apply_constraints <> None then begin
    let violations, rm = constrain pi in
    if rm > 0 then filter_delta ();
    record_point ~iteration:0 ~new_facts:0 ~violations ~removed:rm
  end;
  (* Closure phase: Algorithm 1, lines 2-7. *)
  Obs.with_span obs "closure" ~cat:"grounding" (fun () ->
      while (not !converged) && !iterations < options.max_iterations do
        incr iterations;
        let iteration = !iterations in
        Obs.with_span obs
          (Printf.sprintf "iteration %d" iteration)
          ~cat:"grounding"
          (fun () ->
            let new_facts = ref 0 in
            (* Algorithm 1, lines 3-5: every Ti is computed against the same
               TΠ snapshot; the results are merged only after all partitions
               ran.  The snapshot isolation is what makes the per-partition
               queries (M1..M6) embarrassingly parallel — they only read TΠ
               and their own rule partition — so they run concurrently on
               the domain pool, and the merge below happens sequentially in
               pattern order. *)
            let pats = Array.of_list patterns in
            sync_spill ();
            (* One segmented source per iteration, shared read-only by
               the per-pattern workers (mmap'd segments are
               position-independent; each worker scans with its own
               batches). *)
            let src = fact_src () in
            let results =
              Pool.map_reduce (Pool.get_default ()) ~n:(Array.length pats)
                ~map:(fun i ->
                  let pat = pats.(i) in
                  let sp = Obs.begin_span ~cat:"grounding" obs (pattern_name pat) in
                  let t0 = Stats.now () in
                  let raw =
                    match (semi_naive, !delta, src) with
                    | true, Some d, _ ->
                      Queries.ground_atoms_delta prepared pat pi ~delta:d
                    | _, _, Some src ->
                      Queries.ground_atoms_spilled prepared pat ~src
                    | _ -> Queries.ground_atoms prepared pat pi
                  in
                  let t =
                    if options.distinct_before_merge then
                      Ops.distinct raw all_atom_cols
                    else raw
                  in
                  Obs.end_span obs sp
                    ~attrs:
                      [
                        ("rows_raw", Obs.I (Table.nrows raw));
                        ("rows_out", Obs.I (Table.nrows t));
                        ("dedup", Obs.I (Table.nrows raw - Table.nrows t));
                      ];
                  (pat, t, Stats.now () -. t0))
                ~fold:(fun acc r -> r :: acc)
                ~init:[]
              |> List.rev
              |> List.map (fun (pat, t, seconds) ->
                     let label =
                       Printf.sprintf "Query 1-%d" (Pattern.index pat + 1)
                     in
                     Stats.record stats ~label ~seconds
                       ~rows_out:(Table.nrows t);
                     (pat, t))
            in
            let before_merge = Table.nrows (Storage.table pi) in
            (* Merging a pattern's results into TΠ is part of that
               pattern's work, so it lands in the same M-span path (the
               summary aggregates the query and merge instances). *)
            List.iter
              (fun (pat, atoms) ->
                Obs.with_span obs (pattern_name pat) ~cat:"grounding"
                  (fun () ->
                    Obs.timed obs "ground.merge_seconds" (fun () ->
                        new_facts := !new_facts + Storage.merge_new pi atoms)))
              results;
            if semi_naive then begin
              let facts = Storage.table pi in
              delta :=
                Some
                  (Table.sub facts
                     (Array.init
                        (Table.nrows facts - before_merge)
                        (fun i -> before_merge + i)))
            end;
            let violations, rm = constrain pi in
            if rm > 0 && semi_naive then filter_delta ();
            total_new := !total_new + !new_facts;
            Obs.add obs "ground.new_facts" !new_facts;
            Obs.incr obs "ground.iterations";
            Log.debug (fun m ->
                m "iteration %d: +%d facts (T_Pi now %d)" iteration !new_facts
                  (Storage.size pi));
            facts_per_iteration := Storage.size pi :: !facts_per_iteration;
            record_point ~iteration ~new_facts:!new_facts ~violations
              ~removed:rm;
            (match options.on_iteration with
            | Some f -> f ~iteration ~new_facts:!new_facts
            | None -> ());
            if !new_facts = 0 then converged := true)
      done);
  (* Factor phase: Algorithm 1, lines 8-10. *)
  let n_clause_factors = ref 0 in
  let n_singleton_factors = ref 0 in
  if options.build_factors then begin
    Obs.with_span obs "factors" ~cat:"grounding" (fun () ->
        sync_spill ();
        let src = fact_src () in
        List.iter
          (fun pat ->
            let label = Printf.sprintf "Query 2-%d" (Pattern.index pat + 1) in
            let produced =
              Obs.with_span obs (pattern_name pat) ~cat:"grounding" (fun () ->
                  Stats.time stats ~label ~rows:Fun.id (fun () ->
                      match src with
                      | Some src ->
                        Queries.ground_factors_spilled prepared pat pi ~src
                          graph
                      | None -> Queries.ground_factors prepared pat pi graph))
            in
            n_clause_factors := !n_clause_factors + produced)
          patterns;
        n_singleton_factors :=
          Obs.with_span obs "singletons" ~cat:"grounding" (fun () ->
              Stats.time stats ~label:"singletons" ~rows:Fun.id (fun () ->
                  Queries.singleton_factors pi graph)));
    Obs.add obs "ground.clause_factors" !n_clause_factors;
    Obs.add obs "ground.singleton_factors" !n_singleton_factors;
    Log.debug (fun m ->
        m "factors: %d clause + %d singleton" !n_clause_factors
          !n_singleton_factors)
  end;
  {
    graph;
    iterations = !iterations;
    converged = !converged;
    facts_per_iteration = List.rev !facts_per_iteration;
    trajectory = List.rev !trajectory;
    new_fact_count = !total_new;
    removed_by_constraints = !removed;
    n_singleton_factors = !n_singleton_factors;
    n_clause_factors = !n_clause_factors;
    stats;
  }

let closure ?(options = default_options) kb =
  run ~options:{ options with build_factors = false } kb

(* Query-driven local grounding (ROADMAP item 2): ground only the proof
   neighbourhood of one fact instead of the whole of [TΦ].  See {!Local}
   for the walk and budget semantics. *)
let local ?budget ?source kb ~query =
  let source =
    match source with
    | Some s -> s
    | None ->
      Local.of_kb (Queries.prepare (Kb.Gamma.partitions kb)) (Kb.Gamma.pi kb)
  in
  Local.run ?budget source ~query
