(** Query-driven local grounding (ProPPR-style).

    Instead of paying for the full closure [TΦ], a point query grounds only
    the proof neighbourhood of the queried fact: a breadth-first walk over
    the fact↔factor adjacency, bounded by a PageRank-style budget, emitting
    a small self-contained {!Factor_graph.Fgraph} subgraph plus the
    interior/boundary variable mapping.

    Two interchangeable sources drive the walk:

    - {!of_adjacency} — a full factor graph is already materialized (e.g. a
      live session's provenance index); expansion is a pure index walk.
    - {!of_kb} — no graph exists; rule bodies are expanded backward against
      the KB indexes using the memoized {!Queries.rule_adjacency} buckets
      and two lazily-built partial-key indexes over [TΠ].  Requires the
      {e fact} closure to have run (the Query 1 fixpoint — the same
      precondition as the batch Query 2) and, like the batch
      [singleton_factors], reads extraction priors from the weight column
      (so run it before [store_marginals] rewrites inferred weights).

    Both sources produce the same canonical factor table for the same
    interior set — rows sorted by [(I1, I2, I3, w)] — so with an unbounded
    budget the subgraph is exactly the query's connected component of the
    full ground graph, factor for factor.  (Rule sets containing fully
    duplicate rule signatures within one partition are outside this
    identity: the batch two-atom path collapses such duplicates in its
    J-step dedup while the walk keeps each rule row distinct.)

    Budget semantics: the fact at hop [h] carries influence [decay^h]
    (query = hop 0, influence 1).  A reached fact is {e expanded} (made
    interior — all factors touching it enter the subgraph) only while its
    influence is at least [min_influence], its hop at most [max_hops] and
    the interior count below [max_facts]; next-hop candidates are admitted
    lowest-id first, so truncation is deterministic.  Reached-but-pruned
    facts become {e boundary} variables: they appear in interior facts'
    factors but their own adjacency is left unexplored, so inference must
    clamp them (see [Inference.Neighborhood]); their forgone influence is
    summed into {!result.pruned_mass}. *)

type budget = {
  max_facts : int option;
      (** cap on interior (expanded) facts, query included; the query
          itself is always expanded *)
  max_hops : int option;  (** expand facts at most this many hops out *)
  decay : float;  (** per-hop influence decay, in (0, 1] *)
  min_influence : float;  (** stop expanding below this influence *)
}

(** No cap, no decay: the walk covers the query's connected component. *)
val unbounded : budget

(** Smart constructor (defaults: no caps, [decay = 1.0],
    [min_influence = 0.0]).
    @raise Invalid_argument on out-of-range parameters. *)
val budget :
  ?max_facts:int ->
  ?max_hops:int ->
  ?decay:float ->
  ?min_influence:float ->
  unit ->
  budget

(** Fact↔factor adjacency of an already-materialized graph, as closures so
    [lib/incremental]'s provenance index can back it without a dependency
    cycle (incremental depends on grounding, not vice versa). *)
type adjacency = {
  iter_derivations : int -> (int -> unit) -> unit;
      (** clause factors with the fact as head *)
  iter_supports : int -> (int -> unit) -> unit;
      (** clause factors with the fact in the body (each once) *)
  singleton_of : int -> int option;  (** the fact's prior factor, if any *)
  factor_of : int -> int * int * int * float;  (** factor row by position *)
}

(** [adjacency_of_graph g] builds the adjacency by one scan of [g] — for
    tests and one-off use; live sessions should reuse their provenance
    index instead. *)
val adjacency_of_graph : Factor_graph.Fgraph.t -> adjacency

type source

(** [of_adjacency adj] walks a materialized graph. *)
val of_adjacency : adjacency -> source

(** [of_kb p pi] walks backward against the KB indexes.  The source is
    reusable across queries: the rule-adjacency buckets and the two
    partial-key [TΠ] indexes are built once (lazily) and shared. *)
val of_kb : Queries.prepared -> Kb.Storage.t -> source

type result = {
  graph : Factor_graph.Fgraph.t;
      (** the neighbourhood subgraph, rows in canonical [(I1, I2, I3, w)]
          order; variables are fact ids (compile to get dense indexes) *)
  interior : int array;  (** expanded facts, ascending; contains [query] *)
  boundary : int array;
      (** reached but pruned facts, ascending — clamp these *)
  hops : int;  (** deepest hop actually expanded *)
  pruned_mass : float;  (** summed influence of the boundary facts *)
  truncated : bool;  (** [boundary <> [||]] *)
}

(** [run ?budget source ~query] grounds the neighbourhood of fact [query].
    Unknown facts yield an empty graph with [interior = [| query |]]. *)
val run : ?budget:budget -> source -> query:int -> result
