module Table = Relational.Table
module Join = Relational.Join
module Ops = Relational.Ops
module Pattern = Mln.Pattern

(* The spill alias must precede the [Kb.Storage] rebinding: [Storage]
   names the out-of-core library only up to the next line. *)
module Spill = Storage.Spill
module Storage = Kb.Storage
module Fgraph = Factor_graph.Fgraph
module Shape = Queries.Shape

let src = Logs.Src.create "probkb.mpp" ~doc:"ProbKB distributed grounding"

module Log = (val Logs.src_log src)

type mode = Views | No_views

type options = {
  max_iterations : int;
  apply_constraints : (Storage.t -> int * int) option;
  build_factors : bool;
  on_iteration :
    (iteration:int -> new_facts:int -> sim_elapsed:float -> unit) option;
  spill : Spill.t option;
  obs : Obs.t;
}

let default_options =
  {
    max_iterations = 15;
    apply_constraints = None;
    build_factors = true;
    on_iteration = None;
    spill = None;
    obs = Obs.null;
  }

type result = {
  graph : Fgraph.t;
  iterations : int;
  converged : bool;
  trajectory : Ground.trajectory_point list;
  new_fact_count : int;
  n_singleton_factors : int;
  n_clause_factors : int;
  sim_seconds : float;
  measured_seconds : float;
  load_sim_seconds : float;
  motion_bytes : int;
  cost : Mpp.Cost.t;
}

(* In Greenplum the INSERT ... SELECT that merges new facts, the head
   resolution and the singleton scan all run distributed; this driver
   executes them materially on the coordinator (so results can be compared
   bit-for-bit with the single-node engine) but charges them at the
   distributed rate: one motion that ships the rows to their home segments
   plus balanced per-segment CPU. *)
let distributed_step cluster cost label rows row_bytes =
  let nseg = cluster.Mpp.Cluster.nseg in
  let bytes = rows * row_bytes * (nseg - 1) / max 1 nseg in
  Mpp.Cost.charge cost
    (Mpp.Cost.Redistribute { table = label; rows; bytes })
    (cluster.Mpp.Cluster.motion_latency_s
    +. (float_of_int bytes /. cluster.Mpp.Cluster.bandwidth_bytes_per_s));
  Mpp.Cost.charge cost
    (Mpp.Cost.Coordinator { label; rows })
    (float_of_int (rows / max 1 nseg + 1) *. cluster.Mpp.Cluster.cost_per_row)

let active_patterns parts =
  List.filter (fun pat -> Mln.Partition.count parts pat > 0) Pattern.all

let run ?(options = default_options) ?(mode = Views) cluster kb =
  let obs = options.obs in
  Obs.with_ambient obs @@ fun () ->
  let pi = Kb.Gamma.pi kb in
  let parts = Kb.Gamma.partitions kb in
  let patterns = active_patterns parts in
  let cost = Mpp.Cost.create () in
  let graph = Fgraph.create () in
  (* One-time distribution work (replicating the MLN tables, building the
     initial views / base table) is load, not query time — the paper's
     Table 3 accounts it in the Load column. *)
  let load_sim = ref 0. in
  let first_distribution = ref true in
  (* MLN tables are small: replicate them once. *)
  let m_repl =
    List.map
      (fun pat ->
        let tbl = Mln.Partition.table parts pat in
        let bytes = Table.byte_size tbl * (cluster.Mpp.Cluster.nseg - 1) in
        Mpp.Cost.charge cost
          (Mpp.Cost.Broadcast
             { table = Table.name tbl; rows = Table.nrows tbl; bytes })
          (cluster.Mpp.Cluster.motion_latency_s
          +. (float_of_int bytes /. cluster.Mpp.Cluster.bandwidth_bytes_per_s));
        (pat, Mpp.Dtable.partition cluster tbl Mpp.Dtable.Replicated))
      patterns
  in
  load_sim := Mpp.Cost.elapsed cost;
  let m_of pat = List.assoc pat m_repl in
  (* Distribution refresh.  Greenplum ships only the rows inserted since
     the previous iteration (the views are distributed tables receiving
     INSERTs), so motions are charged on the delta; the re-partition
     itself is executed materially on the whole table. *)
  let prev_rows = ref 0 in
  let distribute_facts () =
    let facts = Storage.table pi in
    let delta = max 0 (Table.nrows facts - !prev_rows) in
    prev_rows := Table.nrows facts;
    let charge_delta copies =
      let nseg = cluster.Mpp.Cluster.nseg in
      let bytes =
        copies * delta * Table.row_bytes facts * (nseg - 1) / max 1 nseg
      in
      let label = if !first_distribution then "T_Pi(load)" else "T_Pi(delta)" in
      let seconds =
        cluster.Mpp.Cluster.motion_latency_s
        +. (float_of_int bytes /. cluster.Mpp.Cluster.bandwidth_bytes_per_s)
      in
      Mpp.Cost.charge cost
        (Mpp.Cost.Redistribute { table = label; rows = copies * delta; bytes })
        seconds;
      if !first_distribution then begin
        load_sim := !load_sim +. seconds;
        first_distribution := false
      end
    in
    match mode with
    | Views ->
      charge_delta (List.length Mpp.Matview.distribution_keys);
      let silent = Mpp.Cost.create () in
      `Views
        (Obs.with_span obs "matview build" ~cat:"mpp"
           ~attrs:[ ("rows", Obs.I (Table.nrows facts)) ]
           (fun () -> Mpp.Matview.create cluster silent facts))
    | No_views ->
      charge_delta 1;
      (* ProbKB-pn with out-of-core shards: once the fact table crosses
         the spill threshold, each hash shard lives in its own segment
         store and local joins read it back through the mmap — so
         [measured_seconds] includes the shard I/O. *)
      `Pn
        (match options.spill with
        | Some policy when Spill.should_spill policy facts ->
          Obs.with_span obs "spill shards" ~cat:"mpp"
            ~attrs:[ ("rows", Obs.I (Table.nrows facts)) ]
            (fun () ->
              Mpp.Dtable.partition_spilled policy ~prefix:"pn" cluster facts
                (Mpp.Dtable.Hash [| 0 |]))
        | _ -> Mpp.Dtable.partition cluster facts (Mpp.Dtable.Hash [| 0 |]))
  in
  let djoin = Mpp.Djoin.hash_join cluster cost in
  let run_pattern distributed pat ~factors =
    let s = Queries.shape_of pat in
    let m = m_of pat in
    (* Joins against the replicated Mi tables are collocated under any
       distribution, so they read the finest (best-balanced) replica; the
       J ⋈ TΠ join needs the view aligned with its key. *)
    let balanced_view () =
      match distributed with
      | `Views v -> Mpp.Matview.finest v
      | `Pn dt -> dt
    in
    let view key =
      match distributed with
      | `Views v -> Mpp.Matview.pick v key
      | `Pn dt -> dt
    in
    let cols = if factors then Queries.atom_i_cols else Queries.atom_cols in
    let out = if factors then Queries.factors_out s else Queries.atoms_out s in
    let oweight =
      if factors then Join.Weight_of Join.Build else Join.No_weight
    in
    match s with
    | Shape.One_atom s1 ->
      djoin ~name:(Pattern.to_string pat) ~cols ~out ~oweight ~dedup:true
        (m, s1.m_key)
        (balanced_view (), s1.t_key)
    | Shape.Two_atom s2 ->
      let j =
        djoin
          ~name:(Pattern.to_string pat ^ "_J")
          ~cols:Queries.j_cols ~out:(Queries.step1_out s)
          ~oweight:(Join.Weight_of Join.Build) ~dedup:true (m, s2.m_key1)
          (balanced_view (), s2.t_key1)
      in
      djoin ~name:(Pattern.to_string pat) ~cols ~out ~oweight ~dedup:true
        (j, s2.j_key2)
        (view s2.t_key2, s2.t_key2)
  in
  let iterations = ref 0 in
  let converged = ref false in
  let total_new = ref 0 in
  let trajectory = ref [] in
  let constrain () =
    match options.apply_constraints with
    | Some f -> f pi
    | None -> (0, 0)
  in
  let record_point ~iteration ~new_facts ~violations ~removed =
    trajectory :=
      {
        Ground.iteration;
        new_facts;
        total_facts = Storage.size pi;
        violations;
        removed;
      }
      :: !trajectory;
    (* sim_seconds is deterministic (a cost-model figure, not a clock), so
       it belongs in the snapshot's [data] payload. *)
    Obs.snapshot obs ~stage:"mpp" ~point:"iteration" ~step:iteration
      ~perf:(Obs.mem_stats ())
      [
        ("new_facts", Obs.I new_facts);
        ("total_facts", Obs.I (Storage.size pi));
        ("violations", Obs.I violations);
        ("removed", Obs.I removed);
        ("sim_seconds", Obs.F (Mpp.Cost.elapsed cost));
        ("motion_bytes", Obs.I (Mpp.Cost.motion_bytes cost));
      ]
  in
  (* Apply constraints once before inference starts (Section 6.1.1). *)
  if options.apply_constraints <> None then begin
    let violations, removed = constrain () in
    record_point ~iteration:0 ~new_facts:0 ~violations ~removed
  end;
  Obs.with_span obs "closure" ~cat:"mpp" (fun () ->
      while (not !converged) && !iterations < options.max_iterations do
        incr iterations;
        Obs.with_span obs
          (Printf.sprintf "iteration %d" !iterations)
          ~cat:"mpp"
          (fun () ->
            (* redistribute(TΠ): refresh the views / re-load the pn table. *)
            let distributed =
              Obs.with_span obs "distribute" ~cat:"mpp" (fun () ->
                  distribute_facts ())
            in
            let results =
              List.map
                (fun pat ->
                  Obs.with_span obs
                    (Printf.sprintf "M%d" (Pattern.index pat + 1))
                    ~cat:"mpp"
                    (fun () ->
                      let dt = run_pattern distributed pat ~factors:false in
                      let gathered = Mpp.Dtable.gather dt in
                      let distinct =
                        Ops.distinct gathered [| 0; 1; 2; 3; 4 |]
                      in
                      distributed_step cluster cost "distinct+merge"
                        (Table.nrows gathered)
                        (Table.row_bytes gathered);
                      distinct))
                patterns
            in
            let new_facts = ref 0 in
            List.iter
              (fun atoms ->
                new_facts := !new_facts + Storage.merge_new pi atoms)
              results;
            let violations, removed = constrain () in
            total_new := !total_new + !new_facts;
            record_point ~iteration:!iterations ~new_facts:!new_facts
              ~violations ~removed;
            Obs.add obs "mpp.new_facts" !new_facts;
            Log.debug (fun m ->
                m "iteration %d: +%d facts, sim %.3fs" !iterations !new_facts
                  (Mpp.Cost.elapsed cost));
            (match options.on_iteration with
            | Some f ->
              f ~iteration:!iterations ~new_facts:!new_facts
                ~sim_elapsed:(Mpp.Cost.elapsed cost)
            | None -> ());
            if !new_facts = 0 then converged := true)
      done);
  let n_clause_factors = ref 0 in
  let n_singleton_factors = ref 0 in
  if options.build_factors then
    Obs.with_span obs "factors" ~cat:"mpp" (fun () ->
        let distributed = distribute_facts () in
        List.iter
          (fun pat ->
            Obs.with_span obs
              (Printf.sprintf "M%d" (Pattern.index pat + 1))
              ~cat:"mpp"
              (fun () ->
                let dt = run_pattern distributed pat ~factors:true in
                let rows = Mpp.Dtable.gather dt in
                distributed_step cluster cost "resolve heads"
                  (Table.nrows rows) (Table.row_bytes rows);
                n_clause_factors :=
                  !n_clause_factors + Queries.resolve_heads rows pi graph))
          patterns;
        n_singleton_factors := Queries.singleton_factors pi graph;
        distributed_step cluster cost "singletons" !n_singleton_factors 32);
  (* Motion and per-segment statistics, derived from the cost trace. *)
  if Obs.enabled obs then begin
    Obs.add obs "mpp.motion_bytes" (Mpp.Cost.motion_bytes cost);
    Obs.add_time obs "mpp.sim_seconds" (Mpp.Cost.elapsed cost);
    List.iter
      (fun (e : Mpp.Cost.entry) ->
        match e.op with
        | Mpp.Cost.Redistribute _ | Mpp.Cost.Broadcast _ | Mpp.Cost.Gather _ ->
          Obs.incr obs "mpp.motions"
        | Mpp.Cost.Hash_join { rows_out; max_seg_rows; _ } ->
          Obs.add_time obs "mpp.join_busy_seconds" e.sim_seconds;
          let nseg = cluster.Mpp.Cluster.nseg in
          if rows_out > 0 && nseg > 1 then
            Obs.gauge_max obs "mpp.seg_skew"
              (float_of_int (max_seg_rows * nseg) /. float_of_int rows_out)
        | Mpp.Cost.Seq_scan _ | Mpp.Cost.Coordinator _ -> ())
      (Mpp.Cost.entries cost)
  end;
  {
    graph;
    iterations = !iterations;
    converged = !converged;
    trajectory = List.rev !trajectory;
    new_fact_count = !total_new;
    n_singleton_factors = !n_singleton_factors;
    n_clause_factors = !n_clause_factors;
    sim_seconds = Mpp.Cost.elapsed cost;
    measured_seconds = Mpp.Cost.measured_seconds cost;
    load_sim_seconds = !load_sim;
    motion_bytes = Mpp.Cost.motion_bytes cost;
    cost;
  }
