module Table = Relational.Table
module Index = Relational.Index
module Pattern = Mln.Pattern
module Storage = Kb.Storage
module Fgraph = Factor_graph.Fgraph

(* --- budget ---------------------------------------------------------- *)

type budget = {
  max_facts : int option;
  max_hops : int option;
  decay : float;
  min_influence : float;
}

let unbounded =
  { max_facts = None; max_hops = None; decay = 1.0; min_influence = 0.0 }

let budget ?max_facts ?max_hops ?(decay = 1.0) ?(min_influence = 0.0) () =
  if not (decay > 0.0 && decay <= 1.0) then
    invalid_arg "Local.budget: decay must be in (0, 1]";
  if min_influence < 0.0 then
    invalid_arg "Local.budget: min_influence must be >= 0";
  (match max_hops with
  | Some h when h < 0 -> invalid_arg "Local.budget: max_hops must be >= 0"
  | _ -> ());
  { max_facts; max_hops; decay; min_influence }

(* --- sources --------------------------------------------------------- *)

type adjacency = {
  iter_derivations : int -> (int -> unit) -> unit;
  iter_supports : int -> (int -> unit) -> unit;
  singleton_of : int -> int option;
  factor_of : int -> int * int * int * float;
}

let adjacency_of_graph g =
  let derives = Hashtbl.create 256
  and supports = Hashtbl.create 256
  and singleton = Hashtbl.create 256 in
  let push tbl k v =
    Hashtbl.replace tbl k
      (v :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
  in
  Fgraph.iter
    (fun f (i1, i2, i3, _w) ->
      if i2 = Fgraph.null && i3 = Fgraph.null then
        Hashtbl.replace singleton i1 f
      else begin
        push derives i1 f;
        if i2 <> Fgraph.null then push supports i2 f;
        if i3 <> Fgraph.null && i3 <> i2 then push supports i3 f
      end)
    g;
  let iter_of tbl id k =
    match Hashtbl.find tbl id with
    | fs -> List.iter k fs
    | exception Not_found -> ()
  in
  {
    iter_derivations = iter_of derives;
    iter_supports = iter_of supports;
    singleton_of = (fun id -> Hashtbl.find_opt singleton id);
    factor_of = Fgraph.factor g;
  }

type walker = {
  prepared : Queries.prepared;
  pi : Storage.t;
  (* Partial-key indexes over TΠ, built on first use and shared by every
     query through this source.  [idx_xc] leaves y free, [idx_yc] leaves x
     free — between them they cover every body-atom probe of P1..P6 with
     one bound variable missing. *)
  mutable idx_xc : Index.t option; (* (R, x, C1, C2) *)
  mutable idx_yc : Index.t option; (* (R, C1, y, C2) *)
}

type source = Graph of adjacency | Backward of walker

let of_adjacency adj = Graph adj
let of_kb prepared pi = Backward { prepared; pi; idx_xc = None; idx_yc = None }

(* TΠ columns: I=0 R=1 x=2 C1=3 y=4 C2=5. *)
let xc_index w =
  match w.idx_xc with
  | Some i -> i
  | None ->
    let i = Index.build (Storage.table w.pi) [| 1; 2; 3; 5 |] in
    w.idx_xc <- Some i;
    i

let yc_index w =
  match w.idx_yc with
  | Some i -> i
  | None ->
    let i = Index.build (Storage.table w.pi) [| 1; 3; 4; 5 |] in
    w.idx_yc <- Some i;
    i

(* Iterate the live facts matching a partial key: the physical index may
   hold tombstoned rows, so each candidate is confirmed against the
   maintained key index before being reported. *)
let iter_live w idx kv k =
  let t = Storage.table w.pi in
  Index.iter_matches idx kv (fun row ->
      let id = Table.get t row 0 in
      match
        Storage.find w.pi ~r:(Table.get t row 1) ~x:(Table.get t row 2)
          ~c1:(Table.get t row 3) ~y:(Table.get t row 4)
          ~c2:(Table.get t row 5)
      with
      | Some id' when id' = id -> k id row
      | Some _ | None -> ())

(* --- factor identity -------------------------------------------------- *)

(* Dedup key for a factor discovered during the walk: a graph position in
   graph mode; the (pattern, M-row, body ids) instance identity in backward
   mode (per Proposition 1 of the paper that is exactly what makes a ground
   clause unique); the fact id for priors. *)
type fkey =
  | K_pos of int
  | K_rule of int * int * int * int
  | K_prior of int

(* --- backward expansion ----------------------------------------------- *)

(* Enumerate every factor adjacent to fact [fid] by probing the KB indexes
   with the memoized rule-adjacency buckets: derivations (fid as head, body
   atoms solved forward from the head bindings), supports (fid as q or r
   atom, the sibling atom and then the head solved from fid's bindings),
   and the extraction prior.  Requires the fact closure of [TΠ] to have
   been computed (Query 1 fixpoint) — the same precondition as the batch
   Query 2 — and reads base-fact priors from the weight column, like the
   batch [singleton_factors] (i.e. before [store_marginals] overwrites
   inferred facts' weights). *)
let expand_backward w fid emit =
  let pi = w.pi in
  let t = Storage.table pi in
  match Storage.row_of_id pi fid with
  | None -> () (* unknown fact: empty neighbourhood *)
  | Some frow ->
    let fr = Table.get t frow 1
    and fx = Table.get t frow 2
    and fc1 = Table.get t frow 3
    and fy = Table.get t frow 4
    and fc2 = Table.get t frow 5
    and fw = Table.weight t frow in
    if not (Table.is_null_weight fw) then
      emit (K_prior fid) fid Fgraph.null Fgraph.null fw;
    let adj = Queries.rule_adjacency w.prepared in
    let parts = Queries.partitions w.prepared in
    (* fid as head: find body instantiations. *)
    List.iter
      (fun (pat, row) ->
        let m = Mln.Partition.table parts pat in
        let g c = Table.get m row c in
        let rw = Table.weight m row in
        let emit2 i2 i3 =
          emit (K_rule (Pattern.index pat, row, i2, i3)) fid i2 i3 rw
        in
        let two_atom ~q_idx ~q_kv ~z_col ~r_probe =
          iter_live w q_idx q_kv (fun q qrow ->
              let z = Table.get t qrow z_col in
              match r_probe z with
              | Some r3 -> emit2 q r3
              | None -> ())
        in
        match pat with
        | Pattern.P1 -> (
          match Storage.find pi ~r:(g 1) ~x:fx ~c1:fc1 ~y:fy ~c2:fc2 with
          | Some q -> emit2 q Fgraph.null
          | None -> ())
        | Pattern.P2 -> (
          match Storage.find pi ~r:(g 1) ~x:fy ~c1:fc2 ~y:fx ~c2:fc1 with
          | Some q -> emit2 q Fgraph.null
          | None -> ())
        | Pattern.P3 ->
          (* q(z, x): z free ⇒ probe (R2, C3, x, C1) with x free on q's x
             column; r(z, y) fully bound once z is known. *)
          two_atom ~q_idx:(yc_index w)
            ~q_kv:[| g 1; g 5; fx; g 3 |]
            ~z_col:2
            ~r_probe:(fun z ->
              Storage.find pi ~r:(g 2) ~x:z ~c1:(g 5) ~y:fy ~c2:(g 4))
        | Pattern.P4 ->
          two_atom ~q_idx:(xc_index w)
            ~q_kv:[| g 1; fx; g 3; g 5 |]
            ~z_col:4
            ~r_probe:(fun z ->
              Storage.find pi ~r:(g 2) ~x:z ~c1:(g 5) ~y:fy ~c2:(g 4))
        | Pattern.P5 ->
          two_atom ~q_idx:(yc_index w)
            ~q_kv:[| g 1; g 5; fx; g 3 |]
            ~z_col:2
            ~r_probe:(fun z ->
              Storage.find pi ~r:(g 2) ~x:fy ~c1:(g 4) ~y:z ~c2:(g 5))
        | Pattern.P6 ->
          two_atom ~q_idx:(xc_index w)
            ~q_kv:[| g 1; fx; g 3; g 5 |]
            ~z_col:4
            ~r_probe:(fun z ->
              Storage.find pi ~r:(g 2) ~x:fy ~c1:(g 4) ~y:z ~c2:(g 5)))
      (Queries.head_rules adj ~r:fr ~c1:fc1 ~c2:fc2);
    (* fid as a body atom: find the sibling atom (if any), then the head. *)
    List.iter
      (fun (pat, row, slot) ->
        let m = Mln.Partition.table parts pat in
        let g c = Table.get m row c in
        let rw = Table.weight m row in
        let pidx = Pattern.index pat in
        let head ~x ~y =
          Storage.find pi ~r:(g 0) ~x
            ~c1:(if Pattern.arity pat = 4 then g 2 else g 3)
            ~y
            ~c2:(if Pattern.arity pat = 4 then g 3 else g 4)
        in
        (* fid in the q slot: enumerate sibling r atoms. *)
        let with_r ~r_idx ~r_kv ~y_head_col ~head_x ~head_y =
          iter_live w r_idx r_kv (fun r3 rrow ->
              let other = Table.get t rrow y_head_col in
              match head ~x:(head_x other) ~y:(head_y other) with
              | Some h -> emit (K_rule (pidx, row, fid, r3)) h fid r3 rw
              | None -> ())
        in
        (* fid in the r slot: enumerate sibling q atoms.  A candidate equal
           to fid itself is skipped — the instance with fid in both slots
           is already found by the q-slot enumeration (same K_rule key
           either way, so this only saves the duplicate probes). *)
        let with_q ~q_idx ~q_kv ~x_head_col ~head_x ~head_y =
          iter_live w q_idx q_kv (fun q qrow ->
              if q <> fid then
                let other = Table.get t qrow x_head_col in
                match head ~x:(head_x other) ~y:(head_y other) with
                | Some h -> emit (K_rule (pidx, row, q, fid)) h q fid rw
                | None -> ())
        in
        match (pat, slot) with
        | Pattern.P1, _ -> (
          (* head(x, y) ← f(x, y) *)
          match head ~x:fx ~y:fy with
          | Some h ->
            emit (K_rule (pidx, row, fid, Fgraph.null)) h fid Fgraph.null rw
          | None -> ())
        | Pattern.P2, _ -> (
          (* head(x, y) ← f(y, x) *)
          match head ~x:fy ~y:fx with
          | Some h ->
            emit (K_rule (pidx, row, fid, Fgraph.null)) h fid Fgraph.null rw
          | None -> ())
        | Pattern.P3, Queries.Q_atom ->
          (* f = q(z, x) ⇒ z = f.x, head x = f.y; r(z, y) has y free. *)
          with_r ~r_idx:(xc_index w)
            ~r_kv:[| g 2; fx; g 5; g 4 |]
            ~y_head_col:4
            ~head_x:(fun _ -> fy)
            ~head_y:(fun yh -> yh)
        | Pattern.P3, Queries.R_atom ->
          (* f = r(z, y) ⇒ z = f.x, head y = f.y; q(z, x) has x free. *)
          with_q ~q_idx:(xc_index w)
            ~q_kv:[| g 1; fx; g 5; g 3 |]
            ~x_head_col:4
            ~head_x:(fun xh -> xh)
            ~head_y:(fun _ -> fy)
        | Pattern.P4, Queries.Q_atom ->
          (* f = q(x, z) ⇒ head x = f.x, z = f.y; r(z, y) has y free. *)
          with_r ~r_idx:(xc_index w)
            ~r_kv:[| g 2; fy; g 5; g 4 |]
            ~y_head_col:4
            ~head_x:(fun _ -> fx)
            ~head_y:(fun yh -> yh)
        | Pattern.P4, Queries.R_atom ->
          (* f = r(z, y) ⇒ z = f.x, head y = f.y; q(x, z) has x free. *)
          with_q ~q_idx:(yc_index w)
            ~q_kv:[| g 1; g 3; fx; g 5 |]
            ~x_head_col:2
            ~head_x:(fun xh -> xh)
            ~head_y:(fun _ -> fy)
        | Pattern.P5, Queries.Q_atom ->
          (* f = q(z, x) ⇒ z = f.x, head x = f.y; r(y, z) has y free. *)
          with_r ~r_idx:(yc_index w)
            ~r_kv:[| g 2; g 4; fx; g 5 |]
            ~y_head_col:2
            ~head_x:(fun _ -> fy)
            ~head_y:(fun yh -> yh)
        | Pattern.P5, Queries.R_atom ->
          (* f = r(y, z) ⇒ head y = f.x, z = f.y; q(z, x) has x free. *)
          with_q ~q_idx:(xc_index w)
            ~q_kv:[| g 1; fy; g 5; g 3 |]
            ~x_head_col:4
            ~head_x:(fun xh -> xh)
            ~head_y:(fun _ -> fx)
        | Pattern.P6, Queries.Q_atom ->
          (* f = q(x, z) ⇒ head x = f.x, z = f.y; r(y, z) has y free. *)
          with_r ~r_idx:(yc_index w)
            ~r_kv:[| g 2; g 4; fy; g 5 |]
            ~y_head_col:2
            ~head_x:(fun _ -> fx)
            ~head_y:(fun yh -> yh)
        | Pattern.P6, Queries.R_atom ->
          (* f = r(y, z) ⇒ head y = f.x, z = f.y; q(x, z) has x free. *)
          with_q ~q_idx:(yc_index w)
            ~q_kv:[| g 1; g 3; fy; g 5 |]
            ~x_head_col:2
            ~head_x:(fun xh -> xh)
            ~head_y:(fun _ -> fx))
      (Queries.body_rules adj ~r:fr ~c1:fc1 ~c2:fc2)

let expand_graph adj f emit =
  let emit_pos p =
    let i1, i2, i3, w = adj.factor_of p in
    emit (K_pos p) i1 i2 i3 w
  in
  adj.iter_derivations f emit_pos;
  adj.iter_supports f emit_pos;
  match adj.singleton_of f with Some p -> emit_pos p | None -> ()

(* --- the walk --------------------------------------------------------- *)

type result = {
  graph : Fgraph.t;
  interior : int array;
  boundary : int array;
  hops : int;
  pruned_mass : float;
  truncated : bool;
}

let cmp_row (a1, a2, a3, aw) (b1, b2, b3, bw) =
  let c = Int.compare a1 b1 in
  if c <> 0 then c
  else
    let c = Int.compare a2 b2 in
    if c <> 0 then c
    else
      let c = Int.compare a3 b3 in
      if c <> 0 then c else Float.compare aw bw

let run ?(budget = unbounded) source ~query =
  let expand_fact =
    match source with
    | Graph adj -> expand_graph adj
    | Backward w -> expand_backward w
  in
  let visited = Hashtbl.create 256 in
  let factors = Hashtbl.create 256 in
  let rows = ref [] in
  let interior = ref [] and n_interior = ref 0 in
  let boundary = ref [] in
  let pruned_mass = ref 0. in
  let hops = ref 0 in
  Hashtbl.replace visited query ();
  let frontier = ref [ query ] in
  let hop = ref 0 in
  let influence = ref 1.0 in
  while !frontier <> [] do
    if !hop > 0 then hops := !hop;
    let next = ref [] in
    List.iter
      (fun f ->
        interior := f :: !interior;
        incr n_interior;
        expand_fact f (fun key i1 i2 i3 w ->
            if not (Hashtbl.mem factors key) then begin
              Hashtbl.replace factors key ();
              rows := (i1, i2, i3, w) :: !rows;
              let reach v =
                if v <> Fgraph.null && not (Hashtbl.mem visited v) then begin
                  Hashtbl.replace visited v ();
                  next := v :: !next
                end
              in
              reach i1;
              reach i2;
              reach i3
            end))
      !frontier;
    incr hop;
    influence := !influence *. budget.decay;
    (* Admit next-hop facts lowest-id first (deterministic under any pool
       size and either source), until the influence threshold, hop limit or
       node cap cuts the frontier; the rest become boundary facts whose
       pruned influence is summed into the truncation summary. *)
    let candidates = List.sort compare !next in
    let hop_ok =
      (match budget.max_hops with None -> true | Some h -> !hop <= h)
      && !influence >= budget.min_influence
    in
    let planned = ref !n_interior in
    let admitted = ref [] in
    List.iter
      (fun v ->
        let cap_ok =
          match budget.max_facts with None -> true | Some cap -> !planned < cap
        in
        if hop_ok && cap_ok then begin
          admitted := v :: !admitted;
          incr planned
        end
        else begin
          boundary := v :: !boundary;
          pruned_mass := !pruned_mass +. !influence
        end)
      candidates;
    frontier := List.rev !admitted
  done;
  (* Canonical subgraph: rows sorted by (I1, I2, I3, w).  Both sources
     produce the same factor multiset for the same interior set, so after
     this sort the emitted tables — and hence compiled variable order and
     any enumeration over them — are identical across modes. *)
  let graph = Fgraph.create () in
  List.iter
    (fun (i1, i2, i3, w) ->
      if i2 = Fgraph.null && i3 = Fgraph.null then
        Fgraph.add_singleton graph ~i:i1 ~w
      else
        Fgraph.add_clause graph ~i1
          ?i2:(if i2 = Fgraph.null then None else Some i2)
          ?i3:(if i3 = Fgraph.null then None else Some i3)
          ~w ())
    (List.sort cmp_row !rows);
  {
    graph;
    interior = Array.of_list (List.sort compare !interior);
    boundary = Array.of_list (List.sort compare !boundary);
    hops = !hops;
    pruned_mass = !pruned_mass;
    truncated = !boundary <> [];
  }
