(** Distributed grounding — ProbKB-p and ProbKB-pn (paper, Section 4.4).

    Runs the same grounding queries as {!Ground}, but with every
    [Mi ⋈ TΠ] join executed on the simulated MPP cluster.  In [Views]
    mode (ProbKB-p) the fact side of each join comes from the
    redistributed materialized views, so it is always collocated and only
    intermediates move; in [No_views] mode (ProbKB-pn) the fact table is
    distributed by its primary key and every join pays redistribution or
    broadcast motions — the two plans of Figure 4.

    Results (the inferred facts and the ground factors) are identical to
    the single-node driver; the differential tests assert it. *)

type mode =
  | Views  (** ProbKB-p: redistributed materialized views *)
  | No_views  (** ProbKB-pn: base distribution only *)

type options = {
  max_iterations : int;
  apply_constraints : (Kb.Storage.t -> int * int) option;
      (** the [applyConstraints(TΠ)] hook; returns
          [(violations found, facts removed)] *)
  build_factors : bool;
  on_iteration :
    (iteration:int -> new_facts:int -> sim_elapsed:float -> unit) option;
      (** progress callback with the cumulative simulated clock *)
  spill : Storage.Spill.t option;
      (** out-of-core shards for [No_views] mode (default [None]): once
          [TΠ] crosses the policy's byte threshold, each hash shard of
          the distributed fact table is flushed to its own on-disk
          segment store and local joins materialize it back through the
          mmap — [measured_seconds] then includes the shard read I/O.
          Results are bit-identical with or without spilling *)
  obs : Obs.t;
      (** trace context (default {!Obs.null}).  When enabled, the run
          emits [closure > iteration i > distribute/M1..M6] and
          [factors] span trees plus [mpp.*] counters (motions, motion
          bytes, per-segment join busy time and skew) derived from the
          cost trace. *)
}

val default_options : options

type result = {
  graph : Factor_graph.Fgraph.t;
  iterations : int;
  converged : bool;
  trajectory : Ground.trajectory_point list;
      (** per-iteration expansion curve (see {!Ground.trajectory_point});
          each point is also emitted as a snapshot (stage ["mpp"], point
          ["iteration"]) when [obs] has a sink installed *)
  new_fact_count : int;
  n_singleton_factors : int;
  n_clause_factors : int;
  sim_seconds : float;  (** simulated cluster time, including load *)
  measured_seconds : float;
      (** real wall-clock spent in the materially-executed operators
          (per-segment joins, view builds) on the domain pool *)
  load_sim_seconds : float;
      (** one-time distribution work (view creation, MLN replication) —
          the paper's Table 3 Load column; subtract from [sim_seconds]
          for steady-state query time *)
  motion_bytes : int;  (** bytes shipped by motions *)
  cost : Mpp.Cost.t;  (** the full trace (Figure 4-style plan) *)
}

(** [run ?options ?mode cluster kb] grounds [kb] in place on the simulated
    cluster. *)
val run : ?options:options -> ?mode:mode -> Mpp.Cluster.t -> Kb.Gamma.t -> result
