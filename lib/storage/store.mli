(** A spilled table: a directory of column {!Segment}s plus a manifest.

    The manifest (text, written last, atomic tmp+rename) records the
    schema, the ordered segment list and the table-level {!Colstats}
    merged from the per-segment zone maps, so {!open_dir} never rescans
    data.  Stores are append-only at segment granularity: a full
    {!spill} also writes the final partial segment, while the
    incremental {!sync} used by the grounding loop appends only whole
    segments and leaves the tail resident — {!source}[ ~tail] stitches
    the stored prefix and the in-memory tail into one scan source whose
    row ids equal the backing table's row indices. *)

type t

(** Alias of {!Segment.Corrupt}; also raised by {!open_dir} on a missing
    or malformed manifest. *)
exception Corrupt of string

val default_segment_rows : int
val format_version : int

(** [spill ?segment_rows ?tail ~dir tbl] writes [tbl] as segments of
    [segment_rows] rows under [dir] (created if needed) and returns the
    open store.  With [tail:false] the trailing partial segment is kept
    out (the caller keeps those rows resident and passes them to
    {!source}). *)
val spill :
  ?segment_rows:int -> ?tail:bool -> dir:string -> Relational.Table.t -> t

(** [sync st tbl] appends whole segments for the rows [tbl] gained since
    [st] was written and returns the updated store ([tbl] must be the
    same logical table, only grown — the stored prefix is immutable). *)
val sync : t -> Relational.Table.t -> t

(** [open_dir dir] loads a store from its manifest — no data pages are
    touched; segments are mapped lazily by {!source}.
    @raise Corrupt on malformed or version-mismatched manifests. *)
val open_dir : string -> t

(** [source ?tail st] is the store as a segmented scan source.  [tail]
    supplies the resident rows beyond the stored prefix (its row indices
    [>= rows st] become one extra segment). *)
val source : ?tail:Relational.Table.t -> t -> Relational.Segsrc.t

(** [to_table st] materializes the stored rows back into memory. *)
val to_table : t -> Relational.Table.t

val dir : t -> string
val name : t -> string
val cols : t -> string array
val weighted : t -> bool
val segment_rows : t -> int

(** Table-level statistics over the stored rows (persisted; merged from
    segment headers). *)
val stats : t -> Relational.Colstats.t

val nsegments : t -> int

(** [rows st] counts the stored rows (excludes any resident tail). *)
val rows : t -> int

(** Total on-disk bytes across segment files. *)
val byte_size : t -> int
