(** One immutable on-disk column segment.

    A segment file holds a contiguous slice of a table's rows in
    columnar form: per integer column a compressed lane (sorted
    dictionary or frame-of-reference, whichever is smaller for that
    column) plus an optional raw weight lane storing IEEE bits (the NaN
    null weight survives).  The versioned header is checksummed
    (FNV-1a) and records the expected file length plus per-column zone
    maps — ndv, min, max — so readers can validate a file and prune it
    against predicates without faulting in any data page.  Reads go
    through a {!Bigarray} mmap; writes are atomic (tmp + rename). *)

(** Raised by {!openf} on any validation failure: bad magic, checksum
    mismatch (torn header), length mismatch (truncation), out-of-bounds
    lanes. *)
exception Corrupt of string

val magic : string
val format_version : int

(** [write ~path tbl ~lo ~hi] writes rows [lo, hi)] of [tbl] (cells and,
    when weighted, weights) as a segment file at [path], atomically.
    @raise Invalid_argument if the range is empty. *)
val write : path:string -> Relational.Table.t -> lo:int -> hi:int -> unit

(** An open (mmap'd, validated) segment. *)
type t

(** [openf path] maps and validates a segment file.
    @raise Corrupt on any structural or checksum failure. *)
val openf : string -> t

val rows : t -> int
val width : t -> int
val weighted : t -> bool

(** File length in bytes (the on-disk, compressed size). *)
val byte_size : t -> int

(** Per-column zone maps, decoded from the header alone. *)
val ndv : t -> int array

val mins : t -> int array
val maxs : t -> int array

(** [get t r c] decodes one cell; [weight t r] one weight
    ({!Relational.Table.null_weight} when the segment is unweighted). *)
val get : t -> int -> int -> int

val weight : t -> int -> float

(** [to_seg t] is the segment as a {!Relational.Segsrc.seg}: scanned rows carry row
    ids [base_rid + local index]. *)
val to_seg : t -> Relational.Segsrc.seg
