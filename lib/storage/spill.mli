(** Spill policy: where segment stores live and when tables go there.

    One value is shared by an engine run; {!fresh_dir} allocates
    distinct store directories atomically, so concurrent spills from
    worker domains cannot collide. *)

type t

val default_segment_rows : int

(** 64 MiB. *)
val default_threshold_bytes : int

val create :
  ?segment_rows:int -> ?threshold_bytes:int -> root:string -> unit -> t

val root : t -> string
val segment_rows : t -> int
val threshold_bytes : t -> int

(** [should_spill t tbl] is [true] when [tbl]'s in-memory footprint has
    reached the threshold. *)
val should_spill : t -> Relational.Table.t -> bool

(** [fresh_dir t ~prefix] is a new unique directory path under the root
    (not yet created — {!Store.spill} creates it). *)
val fresh_dir : t -> prefix:string -> string
