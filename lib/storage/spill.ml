(* Spill policy: when a working table crosses the byte threshold it is
   flushed to a segment store under the spill root.  One policy value is
   shared by an engine run; directory allocation is atomic so concurrent
   spills (per-pattern workers) cannot collide. *)

module Table = Relational.Table

let default_segment_rows = Store.default_segment_rows
let default_threshold_bytes = 64 * 1024 * 1024

type t = {
  root : string;
  segment_rows : int;
  threshold_bytes : int;
  counter : int Atomic.t;
}

let create ?(segment_rows = default_segment_rows)
    ?(threshold_bytes = default_threshold_bytes) ~root () =
  if segment_rows < 1 then invalid_arg "Spill.create: segment_rows < 1";
  if threshold_bytes < 0 then invalid_arg "Spill.create: threshold_bytes < 0";
  { root; segment_rows; threshold_bytes; counter = Atomic.make 0 }

let root t = t.root
let segment_rows t = t.segment_rows
let threshold_bytes t = t.threshold_bytes
let should_spill t tbl = Table.byte_size tbl >= t.threshold_bytes

let fresh_dir t ~prefix =
  let n = Atomic.fetch_and_add t.counter 1 in
  Filename.concat t.root (Printf.sprintf "%s-%04d" prefix n)
