(* One immutable on-disk column segment.

   A segment holds a fixed slice of a table's rows in columnar form: one
   compressed lane per integer column plus an optional raw weight lane.
   The header is versioned, checksummed and carries per-column zone maps
   (ndv/min/max), so a reader can validate a file and prune it against a
   predicate without touching the data pages; reads go through a
   [Bigarray] mmap ({!Unix.map_file}), so skipped segments and skipped
   lanes never fault pages in.

   Layout (all fixed-width fields little-endian 64-bit unless noted):

   {v
     0   magic       "pkbseg01"
     8   checksum    FNV-1a 64 over bytes [16, header_len)
     16  header_len
     24  file_len    expected total size (truncation check)
     32  nrows
     40  width       number of integer columns
     48  weighted    0 | 1
     56  width x column entry (64 bytes each):
           ndv, min, max, mode (0=frame-of-reference, 1=dictionary),
           param (FOR base | dictionary length), code_width (1|2|4|8),
           dict_off (0 for FOR), lane_off
     ..  weight_off  0 when unweighted
   v}

   Column encodings, chosen per column by byte cost:
   - frame-of-reference: lane stores [v - base] at the smallest width
     covering the segment's value range;
   - sorted dictionary: the distinct values (ascending, 8 bytes each) at
     [dict_off], the lane stores indexes into it.

   Integer cells are OCaml ints (63-bit); encode/decode works modulo
   2^63, so extreme ranges still round-trip.  Weights are stored as the
   raw IEEE bits ({!Int64.bits_of_float}) — the NaN null survives. *)

module Table = Relational.Table
module Batch = Relational.Batch
module Segsrc = Relational.Segsrc

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt
let magic = "pkbseg01"
let format_version = 1 (* the "01" of the magic *)

(* --- little-endian primitives --- *)

(* OCaml ints round-trip through their int64 image modulo 2^63: byte 7
   of the encoding is the sign-extended top, and [lor]-ing it back in at
   bit 56 restores bits 56..62 (bit 63 falls off the 63-bit int). *)
let put_i64 buf v =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr ((v asr (8 * i)) land 0xff))
  done

let bytes_set_i64 b off v =
  for i = 0 to 7 do
    Bytes.set b (off + i) (Char.chr ((v asr (8 * i)) land 0xff))
  done

type map = (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let get_i64 (a : map) off =
  let b i = Bigarray.Array1.unsafe_get a (off + i) in
  b 0
  lor (b 1 lsl 8)
  lor (b 2 lsl 16)
  lor (b 3 lsl 24)
  lor (b 4 lsl 32)
  lor (b 5 lsl 40)
  lor (b 6 lsl 48)
  lor (b 7 lsl 56)

(* Weight bits need all 64: decode through Int64. *)
let get_f64 (a : map) off =
  let b i = Int64.of_int (Bigarray.Array1.unsafe_get a (off + i)) in
  let bits = ref 0L in
  for i = 7 downto 0 do
    bits := Int64.logor (Int64.shift_left !bits 8) (b i)
  done;
  Int64.float_of_bits !bits

let put_f64 buf w =
  let bits = Int64.bits_of_float w in
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr
         (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xffL)))
  done

(* FNV-1a 64 over a byte range. *)
let fnv1a_bytes b off len =
  let h = ref 0xcbf29ce484222325L in
  for i = off to off + len - 1 do
    h :=
      Int64.mul
        (Int64.logxor !h (Int64.of_int (Char.code (Bytes.get b i))))
        0x100000001b3L
  done;
  !h

(* --- encoding --- *)

(* Smallest lane width (bytes) holding the non-negative value [x]; [x]
   may have wrapped negative when the value range spans more than 62
   bits, which forces the full 8-byte lane. *)
let bytes_for x =
  if x < 0 then 8
  else if x <= 0xff then 1
  else if x <= 0xffff then 2
  else if x <= 0xffff_ffff then 4
  else 8

let add_packed buf w v =
  for i = 0 to w - 1 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

(* lower_bound over the sorted dictionary; values are guaranteed present. *)
let dict_code dict v =
  let lo = ref 0 and hi = ref (Array.length dict - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if dict.(mid) < v then lo := mid + 1 else hi := mid
  done;
  !lo

type col_entry = {
  ndv : int;
  cmin : int;
  cmax : int;
  mode : int; (* 0 = frame-of-reference, 1 = dictionary *)
  param : int; (* FOR base | dictionary length *)
  code_width : int;
  mutable dict_off : int;
  mutable lane_off : int;
}

let mode_for = 0
let mode_dict = 1

let header_len ~width = 64 + (width * 64)

let write ~path tbl ~lo ~hi =
  let n = hi - lo in
  if n <= 0 then invalid_arg "Segment.write: empty row range";
  let width = Table.width tbl in
  let weighted = Table.weighted tbl in
  let hlen = header_len ~width in
  let data = Buffer.create (n * width * 4) in
  (* Decide each column's encoding, then emit its lanes; offsets are
     absolute file positions (header precedes the data region). *)
  let entries =
    Array.init width (fun c ->
        let sorted = Array.init n (fun i -> Table.get tbl (lo + i) c) in
        Array.sort compare sorted;
        let ndv = ref 0 in
        Array.iteri
          (fun i v ->
            if i = 0 || sorted.(i - 1) <> v then begin
              sorted.(!ndv) <- v;
              incr ndv
            end)
          sorted;
        let ndv = !ndv in
        let dict = Array.sub sorted 0 ndv in
        let cmin = dict.(0) and cmax = dict.(ndv - 1) in
        let dw = bytes_for (ndv - 1) in
        let fw = bytes_for (cmax - cmin) in
        let dict_cost = (ndv * 8) + (n * dw) in
        let for_cost = n * fw in
        let e =
          if for_cost <= dict_cost then
            {
              ndv;
              cmin;
              cmax;
              mode = mode_for;
              param = cmin;
              code_width = fw;
              dict_off = 0;
              lane_off = 0;
            }
          else
            {
              ndv;
              cmin;
              cmax;
              mode = mode_dict;
              param = ndv;
              code_width = dw;
              dict_off = 0;
              lane_off = 0;
            }
        in
        if e.mode = mode_dict then begin
          e.dict_off <- hlen + Buffer.length data;
          Array.iter (fun v -> put_i64 data v) dict
        end;
        e.lane_off <- hlen + Buffer.length data;
        (if e.mode = mode_dict then
           for i = 0 to n - 1 do
             add_packed data e.code_width
               (dict_code dict (Table.get tbl (lo + i) c))
           done
         else
           for i = 0 to n - 1 do
             add_packed data e.code_width (Table.get tbl (lo + i) c - e.param)
           done);
        e)
  in
  let weight_off =
    if not weighted then 0
    else begin
      let off = hlen + Buffer.length data in
      for i = 0 to n - 1 do
        put_f64 data (Table.weight tbl (lo + i))
      done;
      off
    end
  in
  let file_len = hlen + Buffer.length data in
  let hdr = Bytes.make hlen '\000' in
  Bytes.blit_string magic 0 hdr 0 8;
  bytes_set_i64 hdr 16 hlen;
  bytes_set_i64 hdr 24 file_len;
  bytes_set_i64 hdr 32 n;
  bytes_set_i64 hdr 40 width;
  bytes_set_i64 hdr 48 (if weighted then 1 else 0);
  Array.iteri
    (fun c e ->
      let o = 56 + (c * 64) in
      bytes_set_i64 hdr o e.ndv;
      bytes_set_i64 hdr (o + 8) e.cmin;
      bytes_set_i64 hdr (o + 16) e.cmax;
      bytes_set_i64 hdr (o + 24) e.mode;
      bytes_set_i64 hdr (o + 32) e.param;
      bytes_set_i64 hdr (o + 40) e.code_width;
      bytes_set_i64 hdr (o + 48) e.dict_off;
      bytes_set_i64 hdr (o + 56) e.lane_off)
    entries;
  bytes_set_i64 hdr (56 + (width * 64)) weight_off;
  bytes_set_i64 hdr 8 (Int64.to_int (fnv1a_bytes hdr 16 (hlen - 16)));
  (* Atomic publish: a crash mid-write leaves only the tmp file; a
     reader never sees a half-written segment under its final name. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_bytes oc hdr;
      Buffer.output_buffer oc data);
  Sys.rename tmp path

(* --- reading --- *)

type t = {
  map : map;
  file_len : int;
  nrows : int;
  width : int;
  weighted : bool;
  entries : col_entry array;
  weight_off : int;
}

let fnv1a_map (a : map) off len =
  let h = ref 0xcbf29ce484222325L in
  for i = off to off + len - 1 do
    h :=
      Int64.mul
        (Int64.logxor !h (Int64.of_int (Bigarray.Array1.get a i)))
        0x100000001b3L
  done;
  !h

let openf path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  let map, size =
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let size = (Unix.fstat fd).Unix.st_size in
        if size < 64 then corrupt "%s: too small for a segment header" path;
        let g =
          Unix.map_file fd Bigarray.int8_unsigned Bigarray.c_layout false
            [| size |]
        in
        (Bigarray.array1_of_genarray g, size))
  in
  let magic_ok = ref true in
  String.iteri
    (fun i c -> if Bigarray.Array1.get map i <> Char.code c then magic_ok := false)
    magic;
  if not !magic_ok then corrupt "%s: bad magic (not a pkbseg01 segment)" path;
  let hlen = get_i64 map 16 in
  if hlen < 64 || hlen > size then
    corrupt "%s: header length %d out of bounds (file %d)" path hlen size;
  let sum = Int64.to_int (fnv1a_map map 16 (hlen - 16)) in
  if sum <> get_i64 map 8 then
    corrupt "%s: header checksum mismatch (torn write?)" path;
  let file_len = get_i64 map 24 in
  if file_len <> size then
    corrupt "%s: truncated: header expects %d bytes, file has %d" path
      file_len size;
  let nrows = get_i64 map 32 in
  let width = get_i64 map 40 in
  if nrows < 0 || width < 0 || hlen <> header_len ~width then
    corrupt "%s: inconsistent header (rows=%d width=%d)" path nrows width;
  let weighted =
    match get_i64 map 48 with
    | 0 -> false
    | 1 -> true
    | v -> corrupt "%s: bad weighted flag %d" path v
  in
  let entries =
    Array.init width (fun c ->
        let o = 56 + (c * 64) in
        let e =
          {
            ndv = get_i64 map o;
            cmin = get_i64 map (o + 8);
            cmax = get_i64 map (o + 16);
            mode = get_i64 map (o + 24);
            param = get_i64 map (o + 32);
            code_width = get_i64 map (o + 40);
            dict_off = get_i64 map (o + 48);
            lane_off = get_i64 map (o + 56);
          }
        in
        if e.mode <> mode_for && e.mode <> mode_dict then
          corrupt "%s: column %d: unknown encoding %d" path c e.mode;
        (match e.code_width with
        | 1 | 2 | 4 | 8 -> ()
        | w -> corrupt "%s: column %d: bad code width %d" path c w);
        if e.lane_off < hlen || e.lane_off + (nrows * e.code_width) > size
        then corrupt "%s: column %d: code lane out of bounds" path c;
        if
          e.mode = mode_dict
          && (e.dict_off < hlen || e.dict_off + (e.param * 8) > size)
        then corrupt "%s: column %d: dictionary out of bounds" path c;
        e)
  in
  let weight_off = get_i64 map (56 + (width * 64)) in
  if weighted && (weight_off < hlen || weight_off + (nrows * 8) > size) then
    corrupt "%s: weight lane out of bounds" path;
  { map; file_len = size; nrows; width; weighted; entries; weight_off }

let rows t = t.nrows
let width t = t.width
let weighted t = t.weighted
let byte_size t = t.file_len
let ndv t = Array.map (fun e -> e.ndv) t.entries
let mins t = Array.map (fun e -> e.cmin) t.entries
let maxs t = Array.map (fun e -> e.cmax) t.entries

let get_packed (a : map) off w =
  match w with
  | 1 -> Bigarray.Array1.unsafe_get a off
  | 2 -> Bigarray.Array1.unsafe_get a off lor (Bigarray.Array1.unsafe_get a (off + 1) lsl 8)
  | 4 ->
    Bigarray.Array1.unsafe_get a off
    lor (Bigarray.Array1.unsafe_get a (off + 1) lsl 8)
    lor (Bigarray.Array1.unsafe_get a (off + 2) lsl 16)
    lor (Bigarray.Array1.unsafe_get a (off + 3) lsl 24)
  | _ -> get_i64 a off

(* Cell accessors; decoding is modulo 2^63, matching the encoder. *)
let get t r c =
  let e = t.entries.(c) in
  let code = get_packed t.map (e.lane_off + (r * e.code_width)) e.code_width in
  if e.mode = mode_dict then get_i64 t.map (e.dict_off + (code * 8))
  else e.param + code

let weight t r =
  if not t.weighted then Table.null_weight
  else get_f64 t.map (t.weight_off + (r * 8))

let to_seg t =
  {
    Segsrc.rows = t.nrows;
    mins = (if t.nrows = 0 then [||] else mins t);
    maxs = (if t.nrows = 0 then [||] else maxs t);
    scan =
      (fun ~capacity ~base_rid push ->
        let b = Batch.create ~capacity ~weighted:t.weighted t.width in
        let batches = ref 0 in
        for r = 0 to t.nrows - 1 do
          if Batch.is_full b then begin
            incr batches;
            push b;
            Batch.clear b
          end;
          let i = Batch.alloc_row b ~rid:(base_rid + r) in
          for c = 0 to t.width - 1 do
            Batch.set b i c (get t r c)
          done;
          if t.weighted then Batch.set_weight b i (weight t r)
        done;
        if not (Batch.is_empty b) then begin
          incr batches;
          push b
        end;
        !batches);
  }
