(* A spilled table: a directory of column segments plus a MANIFEST.

   The manifest is a small text file naming the schema, the segment
   files in scan order, and the table-level column statistics (merged
   from the per-segment zone maps so reopening a store never rescans
   data).  It is written last, atomically — a crash mid-spill leaves at
   worst orphaned segment files, never a manifest pointing at missing
   or half-written segments.

   Two usage modes share the format:
   - a full spill ([spill]) writes every row, including a final partial
     segment — a static on-disk copy of the table;
   - an incremental store ([sync], used by the grounding loop) appends
     only whole segments as the backing table grows and leaves the tail
     resident; [source ~tail] stitches the stored prefix and the
     in-memory tail into one {!Segsrc.t} whose row ids equal the
     backing table's row indices. *)

module Table = Relational.Table
module Colstats = Relational.Colstats
module Segsrc = Relational.Segsrc

let manifest_magic = "pkbstore"
let format_version = 1
let manifest_name = "MANIFEST"
let default_segment_rows = 65536

type t = {
  dir : string;
  name : string;
  cols : string array;
  weighted : bool;
  segment_rows : int;
  stats : Colstats.t; (* over the stored rows only *)
  seg_files : string array;
  seg_rows : int array;
}

let dir t = t.dir
let name t = t.name
let cols t = t.cols
let weighted t = t.weighted
let segment_rows t = t.segment_rows
let stats t = t.stats
let nsegments t = Array.length t.seg_files
let rows t = Array.fold_left ( + ) 0 t.seg_rows

let byte_size t =
  Array.fold_left
    (fun acc f ->
      acc + try (Unix.stat (Filename.concat t.dir f)).Unix.st_size with _ -> 0)
    0 t.seg_files

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Table-level statistics merged from per-segment zone maps: min/max are
   exact, ndv is the capped sum (an overestimate — good enough for the
   planner, and it avoids keeping any per-value state). *)
let merge_stats ~width segs =
  let rows = ref 0 in
  let ndv = Array.make width 0 in
  let mins = Array.make width max_int in
  let maxs = Array.make width min_int in
  List.iter
    (fun (n, sndv, smins, smaxs) ->
      rows := !rows + n;
      for c = 0 to width - 1 do
        ndv.(c) <- ndv.(c) + sndv.(c);
        if smins.(c) < mins.(c) then mins.(c) <- smins.(c);
        if smaxs.(c) > maxs.(c) then maxs.(c) <- smaxs.(c)
      done)
    segs;
  let rows = !rows in
  Array.iteri (fun c d -> ndv.(c) <- min rows d) ndv;
  Colstats.of_parts ~rows ~ndv ~mins ~maxs

let ints_line tag vals =
  tag ^ " " ^ String.concat " " (Array.to_list (Array.map string_of_int vals))

let write_manifest st =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%s %d" manifest_magic format_version;
  line "name %s" st.name;
  line "weighted %d" (if st.weighted then 1 else 0);
  line "segment_rows %d" st.segment_rows;
  line "width %d" (Array.length st.cols);
  Array.iter (fun c -> line "col %s" c) st.cols;
  line "rows %d" (rows st);
  line "%s"
    (ints_line "ndv" (Array.init (Array.length st.cols) (Colstats.ndv st.stats)));
  line "%s"
    (ints_line "mins"
       (Array.map
          (fun c -> Option.value ~default:0 (Colstats.min_value st.stats c))
          (Array.init (Array.length st.cols) Fun.id)));
  line "%s"
    (ints_line "maxs"
       (Array.map
          (fun c -> Option.value ~default:0 (Colstats.max_value st.stats c))
          (Array.init (Array.length st.cols) Fun.id)));
  line "segments %d" (Array.length st.seg_files);
  Array.iteri (fun i f -> line "seg %s %d" f st.seg_rows.(i)) st.seg_files;
  line "end";
  let path = Filename.concat st.dir manifest_name in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Buffer.output_buffer oc buf);
  Sys.rename tmp path

let seg_file i = Printf.sprintf "seg-%06d.pkb" i

let check_schema tbl =
  Array.iter
    (fun c ->
      String.iter
        (fun ch ->
          if ch = ' ' || ch = '\n' || ch = '\t' then
            invalid_arg
              (Printf.sprintf "Store: column name %S not storable" c))
        c)
    (Table.cols tbl)

(* Write segments for rows [from, upto) in [segment_rows] slices; the
   last slice may be partial.  Returns the new (file, rows, stats parts)
   list in order. *)
let write_segments ~dir ~segment_rows ~first_idx tbl ~from ~upto =
  let obs = Obs.ambient () in
  let out = ref [] in
  let idx = ref first_idx in
  let lo = ref from in
  while !lo < upto do
    let hi = min upto (!lo + segment_rows) in
    let file = seg_file !idx in
    let path = Filename.concat dir file in
    Segment.write ~path tbl ~lo:!lo ~hi;
    let seg = Segment.openf path in
    if Obs.enabled obs then begin
      Obs.incr obs "storage.segments_written";
      Obs.add obs "storage.bytes_written" (Segment.byte_size seg)
    end;
    out :=
      (file, hi - !lo, (hi - !lo, Segment.ndv seg, Segment.mins seg, Segment.maxs seg))
      :: !out;
    incr idx;
    lo := hi
  done;
  List.rev !out

let make ~dir ~name ~cols ~weighted ~segment_rows segs =
  let stats = merge_stats ~width:(Array.length cols) (List.map (fun (_, _, p) -> p) segs) in
  let st =
    {
      dir;
      name;
      cols;
      weighted;
      segment_rows;
      stats;
      seg_files = Array.of_list (List.map (fun (f, _, _) -> f) segs);
      seg_rows = Array.of_list (List.map (fun (_, n, _) -> n) segs);
    }
  in
  write_manifest st;
  st

let spill ?(segment_rows = default_segment_rows) ?(tail = true) ~dir tbl =
  if segment_rows < 1 then invalid_arg "Store.spill: segment_rows < 1";
  check_schema tbl;
  mkdir_p dir;
  let n = Table.nrows tbl in
  let upto =
    if tail then n else n - (n mod segment_rows) (* whole segments only *)
  in
  let segs =
    write_segments ~dir ~segment_rows ~first_idx:0 tbl ~from:0 ~upto
  in
  make ~dir ~name:(Table.name tbl) ~cols:(Table.cols tbl)
    ~weighted:(Table.weighted tbl) ~segment_rows segs

(* Append whole segments for rows the backing table gained since the
   store was written.  The stored prefix is immutable: [tbl] must be the
   same logical table, only grown. *)
let sync st tbl =
  let stored = rows st in
  let n = Table.nrows tbl in
  if n < stored then
    invalid_arg "Store.sync: backing table shrank below the stored prefix";
  let upto = n - (n mod st.segment_rows) in
  if upto <= stored then st
  else begin
    let fresh =
      write_segments ~dir:st.dir ~segment_rows:st.segment_rows
        ~first_idx:(Array.length st.seg_files) tbl ~from:stored ~upto
    in
    let old =
      Array.to_list
        (Array.mapi
           (fun i f ->
             ( f,
               st.seg_rows.(i),
               (* stats parts of already-stored segments come from the
                  merged table stats only through [make]'s re-merge; we
                  reload them from the open segments' headers instead of
                  trusting a re-derivation. *)
               (let s = Segment.openf (Filename.concat st.dir f) in
                (Segment.rows s, Segment.ndv s, Segment.mins s, Segment.maxs s))
             ))
           st.seg_files)
    in
    make ~dir:st.dir ~name:st.name ~cols:st.cols ~weighted:st.weighted
      ~segment_rows:st.segment_rows (old @ fresh)
  end

(* --- manifest parsing --- *)

exception Corrupt = Segment.Corrupt

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let open_dir dir =
  let path = Filename.concat dir manifest_name in
  let ic =
    try open_in_bin path
    with Sys_error _ -> corrupt "%s: no %s (not a segment store)" dir manifest_name
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let next () =
        match input_line ic with
        | l -> l
        | exception End_of_file -> corrupt "%s: truncated manifest" path
      in
      let fields l = String.split_on_char ' ' l in
      let expect_tag tag l =
        match fields l with
        | t :: rest when t = tag -> rest
        | _ -> corrupt "%s: expected %S, got %S" path tag l
      in
      let int_of s =
        match int_of_string_opt s with
        | Some v -> v
        | None -> corrupt "%s: bad integer %S" path s
      in
      let one_int tag l =
        match expect_tag tag l with
        | [ v ] -> int_of v
        | _ -> corrupt "%s: malformed %S line" path tag
      in
      (match fields (next ()) with
      | [ m; v ] when m = manifest_magic ->
        let v = int_of v in
        if v <> format_version then
          corrupt "%s: unsupported store format version %d (this reader is %d)"
            path v format_version
      | _ -> corrupt "%s: bad manifest magic" path);
      let name =
        match expect_tag "name" (next ()) with
        | [ n ] -> n
        | _ -> corrupt "%s: malformed name line" path
      in
      let weighted = one_int "weighted" (next ()) <> 0 in
      let segment_rows = one_int "segment_rows" (next ()) in
      let width = one_int "width" (next ()) in
      let cols =
        Array.init width (fun _ ->
            match expect_tag "col" (next ()) with
            | [ c ] -> c
            | _ -> corrupt "%s: malformed col line" path)
      in
      let stored_rows = one_int "rows" (next ()) in
      let int_array tag l =
        let vs = Array.of_list (List.map int_of (expect_tag tag l)) in
        if Array.length vs <> width && not (width = 0 && vs = [| 0 |]) then
          corrupt "%s: %S arity mismatch" path tag;
        Array.sub vs 0 width
      in
      (* [ints_line] over an empty array still emits one empty field. *)
      let int_array tag l =
        if width = 0 then ( ignore (expect_tag tag l); [||]) else int_array tag l
      in
      let ndv = int_array "ndv" (next ()) in
      let mins = int_array "mins" (next ()) in
      let maxs = int_array "maxs" (next ()) in
      let nseg = one_int "segments" (next ()) in
      let seg_files = Array.make nseg "" in
      let seg_rows = Array.make nseg 0 in
      for i = 0 to nseg - 1 do
        match expect_tag "seg" (next ()) with
        | [ f; n ] ->
          seg_files.(i) <- f;
          seg_rows.(i) <- int_of n
        | _ -> corrupt "%s: malformed seg line" path
      done;
      (match next () with
      | "end" -> ()
      | l -> corrupt "%s: expected end, got %S" path l);
      let total = Array.fold_left ( + ) 0 seg_rows in
      if total <> stored_rows then
        corrupt "%s: row count mismatch (%d listed vs %d summed)" path
          stored_rows total;
      {
        dir;
        name;
        cols;
        weighted;
        segment_rows;
        stats = Colstats.of_parts ~rows:stored_rows ~ndv ~mins ~maxs;
        seg_files;
        seg_rows;
      })

(* --- scan sources --- *)

let tail_stats st tail stored =
  let n = Table.nrows tail in
  if n <= stored then st.stats
  else begin
    let width = Array.length st.cols in
    let seg = Segsrc.seg_of_table ~lo:stored tail in
    let parts =
      (seg.Segsrc.rows, Array.make width (seg.Segsrc.rows), seg.Segsrc.mins,
       seg.Segsrc.maxs)
    in
    let stored_parts =
      ( rows st,
        Array.init width (Colstats.ndv st.stats),
        Array.init width (fun c ->
            Option.value ~default:max_int (Colstats.min_value st.stats c)),
        Array.init width (fun c ->
            Option.value ~default:min_int (Colstats.max_value st.stats c)) )
    in
    merge_stats ~width [ stored_parts; parts ]
  end

let source ?tail st =
  let disk =
    Array.map
      (fun f -> Segment.to_seg (Segment.openf (Filename.concat st.dir f)))
      st.seg_files
  in
  let stored = rows st in
  let segs, stats =
    match tail with
    | None -> (disk, st.stats)
    | Some tbl ->
      if Table.nrows tbl < stored then
        invalid_arg "Store.source: tail table shorter than the stored prefix";
      if Table.nrows tbl = stored then (disk, st.stats)
      else
        ( Array.append disk [| Segsrc.seg_of_table ~lo:stored tbl |],
          tail_stats st tbl stored )
  in
  { Segsrc.name = st.name; cols = st.cols; weighted = st.weighted; stats; segs }

let to_table st = Segsrc.to_table (source st)
