(** Prometheus text-format exposition of an {!Obs.Summary}.

    Counters render as [<name>_total] counter families, timers as
    [<name>_seconds_total], gauges keep their (mangled) name, histograms
    expand to [_bucket] (cumulative, occupied [le] bounds plus [+Inf]),
    [_sum] and [_count].  Dots and other non-identifier characters
    mangle to ['_'].

    Labelled series: a metric recorded under ["base|k=v,k2=v2"] (the
    serving layer records per-op request latencies as
    ["serve.request_seconds|op=query_local"]) renders as family [base]
    with labels [{k="v",k2="v2"}]; all series of a family share one
    [# TYPE] line. *)

(** [render summary] is the full exposition text (trailing newline
    included). *)
val render : Obs.Summary.t -> string

(** [mangle name] maps [name] onto the Prometheus name alphabet
    ([[a-zA-Z0-9_:]], leading digit replaced). *)
val mangle : string -> string

(** [split_labels name] splits the ["base|k=v,..."] convention into base
    name and labels (empty without ['|']). *)
val split_labels : string -> string * (string * string) list

(** [hist_json h] is the compact JSON view used by [/statusz]:
    count/sum/p50/p90/p99/max.  Call only on non-empty histograms (the
    quantiles of an empty histogram are [nan], which JSON cannot
    carry). *)
val hist_json : Obs.Hist.t -> Obs.Json.t
