module Json = Obs.Json
module Writer = Probkb.Engine.Writer

(* A write op in flight: the requesting reader blocks on [m]/[c] until
   the writer domain fills [reply]. *)
type job = {
  rop : Protocol.resolved;
  m : Mutex.t;
  c : Condition.t;
  mutable reply : Json.t option;
}

type t = {
  fd : Unix.file_descr;
  bound : Unix.sockaddr;
  writer : Writer.t;
  kb : Kb.Gamma.t;
  trace : Obs.t;
  symbols : Mutex.t;  (* guards dictionary access during resolution *)
  accept_m : Mutex.t;  (* serializes accept() across the reader pool *)
  stop : bool Atomic.t;
  queue_m : Mutex.t;
  queue_c : Condition.t;
  mutable queue : job list;  (* newest first; drained in reverse *)
  mutable queue_depth : int;
  conns_m : Mutex.t;
  mutable conns : Unix.file_descr list;  (* open connections, for stop *)
  mutable readers : unit Domain.t list;
  mutable writer_dom : unit Domain.t option;
  mutable stopped : bool;
}

let sockaddr t = t.bound

let port t =
  match t.bound with Unix.ADDR_INET (_, p) -> Some p | Unix.ADDR_UNIX _ -> None

let writer t = t.writer

(* --- write queue ------------------------------------------------- *)

let enqueue t job =
  Mutex.lock t.queue_m;
  t.queue <- job :: t.queue;
  t.queue_depth <- t.queue_depth + 1;
  let depth = t.queue_depth in
  Condition.signal t.queue_c;
  Mutex.unlock t.queue_m;
  Obs.gauge t.trace "serve.queue_depth" (float_of_int depth);
  Obs.gauge_max t.trace "serve.queue_depth_max" (float_of_int depth)

let dequeue t =
  Mutex.lock t.queue_m;
  let rec wait () =
    if t.queue = [] && not (Atomic.get t.stop) then begin
      Condition.wait t.queue_c t.queue_m;
      wait ()
    end
  in
  wait ();
  match List.rev t.queue with
  | [] ->
    Mutex.unlock t.queue_m;
    None (* stopping and drained *)
  | oldest :: rest ->
    t.queue <- List.rev rest;
    t.queue_depth <- t.queue_depth - 1;
    Mutex.unlock t.queue_m;
    Some oldest

let fulfil job reply =
  Mutex.lock job.m;
  job.reply <- Some reply;
  Condition.signal job.c;
  Mutex.unlock job.m

let await job =
  Mutex.lock job.m;
  while job.reply = None do
    Condition.wait job.c job.m
  done;
  let r = Option.get job.reply in
  Mutex.unlock job.m;
  r

(* --- writer domain ----------------------------------------------- *)

let writer_loop t =
  let session = Writer.session t.writer in
  let rec loop () =
    match dequeue t with
    | None -> ()
    | Some job ->
      Obs.gauge_max t.trace "serve.epoch_lag_max"
        (float_of_int (Writer.epoch_lag t.writer + 1));
      let reply =
        try Protocol.apply session job.rop
        with e -> Protocol.error_json (Printexc.to_string e)
      in
      (* Publish before replying: a client that writes then reads on one
         connection observes its own write. *)
      ignore (Writer.publish t.writer);
      Obs.gauge t.trace "serve.epoch_lag"
        (float_of_int (Writer.epoch_lag t.writer));
      Obs.gauge t.trace "serve.epoch"
        (float_of_int (Probkb.Snapshot.epoch (Writer.published t.writer)));
      Obs.incr t.trace "serve.writes";
      fulfil job reply;
      loop ()
  in
  loop ()

(* --- request handling -------------------------------------------- *)

let handle t line =
  Obs.incr t.trace "serve.requests";
  let sp = Obs.begin_span ~cat:"serve" t.trace "serve.request" in
  let finish ~op ~kind reply =
    Obs.end_span t.trace sp
      ~attrs:[ ("op", Obs.S op); ("kind", Obs.S kind) ];
    reply
  in
  match Protocol.op_of_line line with
  | Error m -> finish ~op:"?" ~kind:"error" (Protocol.error_json m)
  | Ok op -> (
    let name =
      match op with
      | Protocol.Ingest _ -> "ingest"
      | Protocol.Retract _ -> "retract"
      | Protocol.Retract_rules _ -> "retract_rules"
      | Protocol.Add_rules _ -> "add_rules"
      | Protocol.Reexpand -> "reexpand"
      | Protocol.Refresh -> "refresh"
      | Protocol.Query _ -> "query"
      | Protocol.Query_local _ -> "query_local"
      | Protocol.Stats -> "stats"
    in
    (* Resolution touches the shared dictionaries: serialize it.  Write
       ops intern; read ops only look up — either way the lock is held
       for symbol resolution only, never across grounding/inference. *)
    Mutex.lock t.symbols;
    let resolved =
      match Protocol.resolve t.kb op with
      | r -> r
      | exception e ->
        Mutex.unlock t.symbols;
        raise e
    in
    Mutex.unlock t.symbols;
    match resolved with
    | Error m -> finish ~op:name ~kind:"error" (Protocol.error_json m)
    | Ok rop ->
      if Protocol.is_write op then begin
        let job = { rop; m = Mutex.create (); c = Condition.create (); reply = None } in
        enqueue t job;
        finish ~op:name ~kind:"write" (await job)
      end
      else begin
        Obs.incr t.trace "serve.reads";
        finish ~op:name ~kind:"read"
          (Protocol.answer (Writer.published t.writer) rop)
      end)

(* --- connections -------------------------------------------------- *)

let track_conn t fd =
  Mutex.lock t.conns_m;
  t.conns <- fd :: t.conns;
  Mutex.unlock t.conns_m

let untrack_conn t fd =
  Mutex.lock t.conns_m;
  t.conns <- List.filter (fun c -> c <> fd) t.conns;
  Mutex.unlock t.conns_m

let serve_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let rec loop () =
       let line = input_line ic in
       if String.trim line <> "" then begin
         let reply = handle t line in
         output_string oc (Json.to_string reply);
         output_char oc '\n';
         flush oc
       end;
       loop ()
     in
     loop ()
   with
  | End_of_file | Sys_error _ -> ()
  | Unix.Unix_error (_, _, _) -> ());
  untrack_conn t fd;
  (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())

let reader_loop t =
  let rec loop () =
    if Atomic.get t.stop then ()
    else begin
      let accepted =
        Mutex.lock t.accept_m;
        let r =
          if Atomic.get t.stop then None
          else
            match Unix.accept t.fd with
            | fd, _ -> Some fd
            | exception Unix.Unix_error (_, _, _) -> None
        in
        Mutex.unlock t.accept_m;
        r
      in
      match accepted with
      | None -> if Atomic.get t.stop then () else loop ()
      | Some fd ->
        track_conn t fd;
        serve_conn t fd;
        loop ()
    end
  in
  loop ()

(* --- lifecycle ---------------------------------------------------- *)

let start ?(pool = 1) ?(backlog = 16) ?(obs = Obs.null) ~kb ~writer ~addr () =
  if pool < 1 then invalid_arg "Server.start: pool must be >= 1";
  (* A client closing mid-reply must surface as EPIPE, not kill the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let domain =
    match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Unix.ADDR_UNIX path -> if Sys.file_exists path then Sys.remove path);
  Unix.bind fd addr;
  Unix.listen fd backlog;
  let t =
    {
      fd;
      bound = Unix.getsockname fd;
      writer;
      kb;
      trace = obs;
      symbols = Mutex.create ();
      accept_m = Mutex.create ();
      stop = Atomic.make false;
      queue_m = Mutex.create ();
      queue_c = Condition.create ();
      queue = [];
      queue_depth = 0;
      conns_m = Mutex.create ();
      conns = [];
      readers = [];
      writer_dom = None;
      stopped = false;
    }
  in
  t.writer_dom <- Some (Domain.spawn (fun () -> writer_loop t));
  t.readers <-
    List.init pool (fun _ -> Domain.spawn (fun () -> reader_loop t));
  t

(* Closing a listening socket does not wake a thread already blocked in
   accept() on Linux; connecting (and immediately abandoning) a throwaway
   client does.  accept() is serialized by [accept_m], so at most one
   reader is parked inside it — one successful poke is enough, but poking
   is cheap and idempotent. *)
let poke_accept t =
  let domain =
    match t.bound with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET
  in
  match Unix.socket domain Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (_, _, _) -> ()
  | fd ->
    (try Unix.connect fd t.bound with Unix.Unix_error (_, _, _) -> ());
    (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stop true;
    (* Wake the reader parked in accept(), then unblock future accepts
       and any connection read. *)
    poke_accept t;
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error (_, _, _) -> ());
    (try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ());
    Mutex.lock t.conns_m;
    let conns = t.conns in
    t.conns <- [];
    Mutex.unlock t.conns_m;
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL
        with Unix.Unix_error (_, _, _) -> ())
      conns;
    Mutex.lock t.queue_m;
    Condition.broadcast t.queue_c;
    Mutex.unlock t.queue_m;
    List.iter Domain.join t.readers;
    t.readers <- [];
    (match t.writer_dom with
    | Some d ->
      (* Readers are gone; wake the writer so it drains and exits. *)
      Mutex.lock t.queue_m;
      Condition.broadcast t.queue_c;
      Mutex.unlock t.queue_m;
      Domain.join d;
      t.writer_dom <- None
    | None -> ());
    match t.bound with
    | Unix.ADDR_UNIX path when Sys.file_exists path -> (
      try Sys.remove path with Sys_error _ -> ())
    | _ -> ()
  end
