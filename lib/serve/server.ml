module Json = Obs.Json
module Writer = Probkb.Engine.Writer

(* A write op in flight: the requesting reader blocks on [m]/[c] until
   the writer domain fills [reply]. *)
type job = {
  rop : Protocol.resolved;
  m : Mutex.t;
  c : Condition.t;
  mutable reply : Json.t option;
}

type t = {
  fd : Unix.file_descr;
  bound : Unix.sockaddr;
  writer : Writer.t;
  kb : Kb.Gamma.t;
  trace : Obs.t;
  started : float;  (* wall clock at start, for /statusz uptime *)
  req_ids : int Atomic.t;  (* request ids, unique across connections *)
  access : (Json.t -> unit) option;  (* structured access-log sink *)
  slow_s : float option;  (* slow-query threshold, seconds *)
  symbols : Mutex.t;  (* guards dictionary access during resolution *)
  accept_m : Mutex.t;  (* serializes accept() across the reader pool *)
  stop : bool Atomic.t;
  queue_m : Mutex.t;
  queue_c : Condition.t;
  mutable queue : job list;  (* newest first; drained in reverse *)
  mutable queue_depth : int;
  conns_m : Mutex.t;
  mutable conns : Unix.file_descr list;  (* open connections, for stop *)
  mutable readers : unit Domain.t list;
  mutable writer_dom : unit Domain.t option;
  mutable stopped : bool;
}

let sockaddr t = t.bound

let port t =
  match t.bound with Unix.ADDR_INET (_, p) -> Some p | Unix.ADDR_UNIX _ -> None

let writer t = t.writer
let trace t = t.trace

(* [ndjson_sink oc] serializes concurrent access-log records (reader
   domains log independently) onto one NDJSON channel. *)
let ndjson_sink oc =
  let m = Mutex.create () in
  fun (j : Json.t) ->
    Mutex.lock m;
    output_string oc (Json.to_string j);
    output_char oc '\n';
    flush oc;
    Mutex.unlock m

(* --- write queue ------------------------------------------------- *)

let enqueue t job =
  Mutex.lock t.queue_m;
  t.queue <- job :: t.queue;
  t.queue_depth <- t.queue_depth + 1;
  let depth = t.queue_depth in
  Condition.signal t.queue_c;
  Mutex.unlock t.queue_m;
  Obs.gauge t.trace "serve.queue_depth" (float_of_int depth);
  Obs.gauge_max t.trace "serve.queue_depth_max" (float_of_int depth)

let dequeue t =
  Mutex.lock t.queue_m;
  let rec wait () =
    if t.queue = [] && not (Atomic.get t.stop) then begin
      Condition.wait t.queue_c t.queue_m;
      wait ()
    end
  in
  wait ();
  match List.rev t.queue with
  | [] ->
    Mutex.unlock t.queue_m;
    None (* stopping and drained *)
  | oldest :: rest ->
    t.queue <- List.rev rest;
    t.queue_depth <- t.queue_depth - 1;
    Mutex.unlock t.queue_m;
    Some oldest

let fulfil job reply =
  Mutex.lock job.m;
  job.reply <- Some reply;
  Condition.signal job.c;
  Mutex.unlock job.m

let await job =
  Mutex.lock job.m;
  while job.reply = None do
    Condition.wait job.c job.m
  done;
  let r = Option.get job.reply in
  Mutex.unlock job.m;
  r

(* --- writer domain ----------------------------------------------- *)

let writer_loop t =
  let session = Writer.session t.writer in
  let rec loop () =
    match dequeue t with
    | None -> ()
    | Some job ->
      let lag_in = Writer.epoch_lag t.writer + 1 in
      Obs.gauge_max t.trace "serve.epoch_lag_max" (float_of_int lag_in);
      (* The gauge alone goes stale between writes; the distribution
         keeps every observed lag scrapeable (satellite: epoch lag as
         both current value and histogram). *)
      Obs.observe t.trace "serve.epoch_lag_dist" (float_of_int lag_in);
      let t0 = Unix.gettimeofday () in
      let reply =
        try Protocol.apply ~obs:t.trace session job.rop
        with e -> Protocol.error_json (Printexc.to_string e)
      in
      (* Publish before replying: a client that writes then reads on one
         connection observes its own write. *)
      ignore (Writer.publish t.writer);
      Obs.observe t.trace "serve.apply_seconds"
        (Unix.gettimeofday () -. t0);
      Obs.gauge t.trace "serve.epoch_lag"
        (float_of_int (Writer.epoch_lag t.writer));
      Obs.gauge t.trace "serve.epoch"
        (float_of_int (Probkb.Snapshot.epoch (Writer.published t.writer)));
      Obs.incr t.trace "serve.writes";
      fulfil job reply;
      loop ()
  in
  loop ()

(* --- request handling -------------------------------------------- *)

let op_name = function
  | Protocol.Ingest _ -> "ingest"
  | Protocol.Retract _ -> "retract"
  | Protocol.Retract_rules _ -> "retract_rules"
  | Protocol.Add_rules _ -> "add_rules"
  | Protocol.Reexpand -> "reexpand"
  | Protocol.Refresh -> "refresh"
  | Protocol.Query _ -> "query"
  | Protocol.Query_local _ -> "query_local"
  | Protocol.Stats -> "stats"
  | Protocol.Metrics -> "metrics"

let handle t line =
  Obs.incr t.trace "serve.requests";
  let req_id = Atomic.fetch_and_add t.req_ids 1 in
  let t0 = Unix.gettimeofday () in
  let sp = Obs.begin_span ~cat:"serve" t.trace "serve.request" in
  Obs.set_attr sp "req_id" (Obs.I req_id);
  let finish ~op ~kind reply =
    let dt = Unix.gettimeofday () -. t0 in
    Obs.end_span t.trace sp
      ~attrs:[ ("op", Obs.S op); ("kind", Obs.S kind) ];
    (* Overall and per-op latency distributions; the [|op=...] label
       convention renders as one Prometheus family with [op] labels. *)
    Obs.observe t.trace "serve.request_seconds" dt;
    Obs.observe t.trace ("serve.request_seconds|op=" ^ op) dt;
    let slow = match t.slow_s with Some th -> dt >= th | None -> false in
    if slow then Obs.incr t.trace "serve.slow_requests";
    (match t.access with
    | None -> ()
    | Some log ->
      (* One structured record per request.  Slow requests also carry
         the full span subtree — for query_local that is the grounding
         walk with hops/boundary/pruned_mass attributes. *)
      let spans =
        if slow then
          match Obs.subtree t.trace sp with
          | Some r -> [ ("spans", Obs.Rec_span.to_json r) ]
          | None -> []
        else []
      in
      log
        (Json.Obj
           ([
              ("ts", Json.Float t0);
              ("id", Json.Int req_id);
              ("op", Json.String op);
              ("kind", Json.String kind);
              ("seconds", Json.Float dt);
              ( "epoch",
                Json.Int (Probkb.Snapshot.epoch (Writer.published t.writer))
              );
              ("slow", Json.Bool slow);
            ]
           @ spans)));
    reply
  in
  match Protocol.op_of_line line with
  | Error m -> finish ~op:"?" ~kind:"error" (Protocol.error_json m)
  | Ok op -> (
    let name = op_name op in
    (* Resolution touches the shared dictionaries: serialize it.  Write
       ops intern; read ops only look up — either way the lock is held
       for symbol resolution only, never across grounding/inference. *)
    Mutex.lock t.symbols;
    let resolved =
      match Protocol.resolve t.kb op with
      | r -> r
      | exception e ->
        Mutex.unlock t.symbols;
        raise e
    in
    Mutex.unlock t.symbols;
    match resolved with
    | Error m -> finish ~op:name ~kind:"error" (Protocol.error_json m)
    | Ok rop ->
      if Protocol.is_write op then begin
        let job = { rop; m = Mutex.create (); c = Condition.create (); reply = None } in
        enqueue t job;
        finish ~op:name ~kind:"write" (await job)
      end
      else begin
        Obs.incr t.trace "serve.reads";
        finish ~op:name ~kind:"read"
          (Protocol.answer ~obs:t.trace (Writer.published t.writer) rop)
      end)

(* --- telemetry views ---------------------------------------------- *)

let json_of_value = function
  | Obs.I i -> Json.Int i
  | Obs.F f -> Json.Float f
  | Obs.S s -> Json.String s

(* The /statusz document: liveness figures plus per-op request-latency
   digests.  Scraping merges the per-domain buffers read-only; counters
   and histograms are cumulative, so concurrent recording at worst lags
   a scrape by the requests still in flight. *)
let status_json t =
  let s = Obs.Summary.of_trace t.trace in
  let snap = Writer.published t.writer in
  let per_op =
    List.filter_map
      (fun (name, h) ->
        match Metrics.split_labels name with
        | "serve.request_seconds", [ ("op", op) ] ->
          Some (op, Metrics.hist_json h)
        | _ -> None)
      s.Obs.Summary.hists
  in
  let all =
    match Obs.Summary.hist s "serve.request_seconds" with
    | Some h when Obs.Hist.count h > 0 -> [ ("all", Metrics.hist_json h) ]
    | _ -> []
  in
  Json.Obj
    [
      ("uptime_seconds", Json.Float (Unix.gettimeofday () -. t.started));
      ("epoch", Json.Int (Probkb.Snapshot.epoch snap));
      ("epoch_lag", Json.Int (Writer.epoch_lag t.writer));
      ("queue_depth", Json.Int t.queue_depth);
      ("requests", Json.Int (Obs.Summary.counter s "serve.requests"));
      ("reads", Json.Int (Obs.Summary.counter s "serve.reads"));
      ("writes", Json.Int (Obs.Summary.counter s "serve.writes"));
      ( "slow_requests",
        Json.Int (Obs.Summary.counter s "serve.slow_requests") );
      ( "mem",
        Json.Obj
          (List.map (fun (k, v) -> (k, json_of_value v)) (Obs.mem_stats ()))
      );
      ("request_seconds", Json.Obj (all @ per_op));
    ]

let metrics_text t = Metrics.render (Obs.Summary.of_trace t.trace)

(* --- connections -------------------------------------------------- *)

let track_conn t fd =
  Mutex.lock t.conns_m;
  t.conns <- fd :: t.conns;
  Mutex.unlock t.conns_m

let untrack_conn t fd =
  Mutex.lock t.conns_m;
  t.conns <- List.filter (fun c -> c <> fd) t.conns;
  Mutex.unlock t.conns_m

let serve_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let rec loop () =
       let line = input_line ic in
       if String.trim line <> "" then begin
         let reply = handle t line in
         output_string oc (Json.to_string reply);
         output_char oc '\n';
         flush oc
       end;
       loop ()
     in
     loop ()
   with
  | End_of_file | Sys_error _ -> ()
  | Unix.Unix_error (_, _, _) -> ());
  untrack_conn t fd;
  (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())

let reader_loop t =
  let rec loop () =
    if Atomic.get t.stop then ()
    else begin
      let accepted =
        Mutex.lock t.accept_m;
        let r =
          if Atomic.get t.stop then None
          else
            match Unix.accept t.fd with
            | fd, _ -> Some fd
            | exception Unix.Unix_error (_, _, _) -> None
        in
        Mutex.unlock t.accept_m;
        r
      in
      match accepted with
      | None -> if Atomic.get t.stop then () else loop ()
      | Some fd ->
        track_conn t fd;
        serve_conn t fd;
        loop ()
    end
  in
  loop ()

(* --- lifecycle ---------------------------------------------------- *)

let start ?(pool = 1) ?(backlog = 16) ?(obs = Obs.null) ?access_log ?slow_ms
    ~kb ~writer ~addr () =
  if pool < 1 then invalid_arg "Server.start: pool must be >= 1";
  (* A client closing mid-reply must surface as EPIPE, not kill the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let domain =
    match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Unix.ADDR_UNIX path -> if Sys.file_exists path then Sys.remove path);
  Unix.bind fd addr;
  Unix.listen fd backlog;
  let t =
    {
      fd;
      bound = Unix.getsockname fd;
      writer;
      kb;
      trace = obs;
      started = Unix.gettimeofday ();
      req_ids = Atomic.make 0;
      access = access_log;
      slow_s = Option.map (fun ms -> ms /. 1000.) slow_ms;
      symbols = Mutex.create ();
      accept_m = Mutex.create ();
      stop = Atomic.make false;
      queue_m = Mutex.create ();
      queue_c = Condition.create ();
      queue = [];
      queue_depth = 0;
      conns_m = Mutex.create ();
      conns = [];
      readers = [];
      writer_dom = None;
      stopped = false;
    }
  in
  (* Seed the liveness gauges so a scrape before the first write sees
     them (the writer only updates them per applied epoch). *)
  Obs.gauge obs "serve.epoch_lag"
    (float_of_int (Writer.epoch_lag writer));
  Obs.gauge obs "serve.epoch"
    (float_of_int (Probkb.Snapshot.epoch (Writer.published writer)));
  t.writer_dom <- Some (Domain.spawn (fun () -> writer_loop t));
  t.readers <-
    List.init pool (fun _ -> Domain.spawn (fun () -> reader_loop t));
  t

(* Closing a listening socket does not wake a thread already blocked in
   accept() on Linux; connecting (and immediately abandoning) a throwaway
   client does.  accept() is serialized by [accept_m], so at most one
   reader is parked inside it — one successful poke is enough, but poking
   is cheap and idempotent. *)
let poke_accept t =
  let domain =
    match t.bound with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET
  in
  match Unix.socket domain Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (_, _, _) -> ()
  | fd ->
    (try Unix.connect fd t.bound with Unix.Unix_error (_, _, _) -> ());
    (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stop true;
    (* Wake the reader parked in accept(), then unblock future accepts
       and any connection read. *)
    poke_accept t;
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error (_, _, _) -> ());
    (try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ());
    Mutex.lock t.conns_m;
    let conns = t.conns in
    t.conns <- [];
    Mutex.unlock t.conns_m;
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL
        with Unix.Unix_error (_, _, _) -> ())
      conns;
    Mutex.lock t.queue_m;
    Condition.broadcast t.queue_c;
    Mutex.unlock t.queue_m;
    List.iter Domain.join t.readers;
    t.readers <- [];
    (match t.writer_dom with
    | Some d ->
      (* Readers are gone; wake the writer so it drains and exits. *)
      Mutex.lock t.queue_m;
      Condition.broadcast t.queue_c;
      Mutex.unlock t.queue_m;
      Domain.join d;
      t.writer_dom <- None
    | None -> ());
    match t.bound with
    | Unix.ADDR_UNIX path when Sys.file_exists path -> (
      try Sys.remove path with Sys_error _ -> ())
    | _ -> ()
  end
