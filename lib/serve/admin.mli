(** A minimal HTTP admin listener for scrape endpoints.

    One accept domain, HTTP/1.0, GET only, one request per connection —
    enough for [curl]/Prometheus to fetch [/metrics] and [/statusz] from
    a running server without pulling an HTTP stack into the build.
    Non-GET methods answer 405, unknown paths 404, a raising route
    handler 500. *)

type t

(** A route body is re-evaluated per request (handlers render the
    current summary). *)
type route

val route : content_type:string -> (unit -> string) -> route

(** [start ?backlog ~addr ~routes ()] binds [addr] (port 0 lets the
    kernel pick; see {!port}) and serves [routes] (paths matched exactly,
    query strings stripped) on a dedicated domain. *)
val start :
  ?backlog:int -> addr:Unix.sockaddr -> routes:(string * route) list -> unit ->
  t

(** [sockaddr t] is the actual bound address. *)
val sockaddr : t -> Unix.sockaddr

(** [port t] is the bound TCP port ([None] for Unix-domain sockets). *)
val port : t -> int option

(** [stop t] closes the listener and joins the accept domain.
    Idempotent. *)
val stop : t -> unit
