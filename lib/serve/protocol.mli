(** The NDJSON op codec — defined once, shared by the [session]
    subcommand (stdin/stdout) and the [serve] subcommand (socket).

    Wire format: one JSON document per line in, one JSON document per
    line out (see DESIGN.md §13 for the full schema).  Ops:

    {v
    {"op":"ingest","facts":[["r","x","C1","y","C2",0.93], ...]}
    {"op":"retract","keys":[["r","x","C1","y","C2"], ...],"ban":true}
    {"op":"retract_rules","head":"r"}
    {"op":"add_rules","rules":["1.40 live_in(x:W, y:P) :- born_in(x, y)"]}
    {"op":"reexpand"}
    {"op":"refresh"}
    {"op":"query","key":["r","x","C1","y","C2"]}
    {"op":"query_local","key":[...],"budget":64,"max_hops":3,
     "decay":0.8,"min_influence":0.01}
    {"op":"stats"}
    {"op":"metrics"}
    v}

    Epoch ops answer with the epoch ledger entry
    ([Report.epoch_to_json]); [query] answers with the fact view;
    [query_local] with the point-query answer (carrying the [epoch] it
    was computed against); [stats] with the snapshot statistics.
    Malformed input answers [{"error": ...}] and the stream continues.

    The codec stages are split so the server can run them on different
    arms: {!op_of_json} (pure parse), {!resolve} (symbol resolution
    against the shared dictionaries — write ops intern, read ops only
    look up, so resolution for reads never mutates), then either
    {!apply} (full session semantics, single-threaded writer arm) or
    {!answer} (read ops against an immutable snapshot, any domain). *)

(** A fact key as strings, pre-resolution: relation, x, class of x, y,
    class of y. *)
type key = string * string * string * string * string

type op =
  | Ingest of (key * float) list
  | Retract of { keys : key list; ban : bool }
  | Retract_rules of { head : string }
  | Add_rules of string list  (** textual MLN rules, [Mln.Parse] syntax *)
  | Reexpand
  | Refresh
  | Query of key
  | Query_local of { key : key; budget : Grounding.Local.budget option }
  | Stats
  | Metrics
      (** in-band telemetry scrape: answers
          [{"metrics": Obs.Summary JSON}] of the serving trace *)

(** Write ops mutate the session (and must be serialized through the
    writer arm); read ops can be answered from a snapshot. *)
val is_write : op -> bool

(** [op_of_json doc] parses one request document.  [Error] carries the
    reply-ready message (["missing op"], ["unknown op %S"], ...). *)
val op_of_json : Obs.Json.t -> (op, string) result

(** [op_of_line line] is {!op_of_json} after JSON parsing
    (["malformed JSON"] on parse failure). *)
val op_of_line : string -> (op, string) result

(** [op_to_json op] is the wire document for [op] — the encoder used by
    the client mode and the load generator; round-trips through
    {!op_of_json}. *)
val op_to_json : op -> Obs.Json.t

(** A resolved op: symbols replaced by dictionary ids.  Read-op keys
    resolve to [None] when any symbol is unknown (the fact cannot
    exist). *)
type resolved =
  | RIngest of (int * int * int * int * int * float) list
  | RRetract of { keys : (int * int * int * int * int) list; ban : bool }
  | RRetract_rules of { head : int option }
  | RAdd_rules of Mln.Clause.t list
  | RReexpand
  | RRefresh
  | RQuery of (int * int * int * int * int) option
  | RQuery_local of {
      key : (int * int * int * int * int) option;
      budget : Grounding.Local.budget option;
    }
  | RStats
  | RMetrics

(** [resolve kb op] resolves symbols against [kb]'s dictionaries.
    Write ops intern new symbols (call only under the server's symbol
    lock, or single-threaded); read ops are pure lookups.  [Error] on
    unparsable rule text. *)
val resolve : Kb.Gamma.t -> op -> (resolved, string) result

(** [apply ?obs s rop] executes any resolved op against the live
    session — the single-threaded interpreter behind the [session]
    subcommand and the server's writer arm.  Returns the reply document.
    [obs] (default {!Obs.null}) is the trace the [metrics] op
    summarizes. *)
val apply :
  ?obs:Obs.t -> Probkb.Engine.Session.t -> resolved -> Obs.Json.t

(** [answer ?obs snap rop] answers a {e read} op from an immutable
    snapshot (safe from any domain); write ops answer
    [{"error": ...}]. *)
val answer : ?obs:Obs.t -> Probkb.Snapshot.t -> resolved -> Obs.Json.t

(** [error_json msg] is [{"error": msg}]. *)
val error_json : string -> Obs.Json.t

(** [step ?obs kb s line] is parse → resolve → {!apply}: one full
    session-mode step, errors rendered as reply documents. *)
val step :
  ?obs:Obs.t -> Kb.Gamma.t -> Probkb.Engine.Session.t -> string -> Obs.Json.t
