(* Prometheus text exposition of an [Obs.Summary].

   The mapping is mechanical: counters become [<name>_total] counter
   families, timers become [<name>_seconds_total] (they accumulate
   seconds), gauges keep their name, histograms expand to the
   [_bucket]/[_sum]/[_count] triple with cumulative [le] bounds.  Metric
   names containing the [|k=v,...] label convention (e.g.
   ["serve.request_seconds|op=query_local"]) split into one family with
   labelled series; series of one family share a single [# TYPE] line. *)

module Hist = Obs.Hist

(* Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*. *)
let mangle name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || c = '_' || c = ':'
        || (i > 0 && c >= '0' && c <= '9')
      in
      if not ok then Bytes.set b i '_')
    b;
  Bytes.to_string b

(* Label values: escape backslash, double quote, newline. *)
let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* ["base|k=v,k2=v2"] -> [("base", [k, v; k2, v2])]; no '|' -> no
   labels.  A malformed label chunk (no '=') is kept as an opaque
   ["label"] value rather than dropped. *)
let split_labels name =
  match String.index_opt name '|' with
  | None -> (name, [])
  | Some i ->
    let base = String.sub name 0 i in
    let rest = String.sub name (i + 1) (String.length name - i - 1) in
    let labels =
      String.split_on_char ',' rest
      |> List.filter (fun s -> s <> "")
      |> List.map (fun chunk ->
             match String.index_opt chunk '=' with
             | Some j ->
               ( String.sub chunk 0 j,
                 String.sub chunk (j + 1) (String.length chunk - j - 1) )
             | None -> ("label", chunk))
    in
    (base, labels)

let fmt_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=%S" (mangle k) (escape_label v))
           labels)
    ^ "}"

(* Shortest float form that round-trips through Prometheus parsers well
   enough for bounds and values. *)
let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let counter_family base =
  let base = mangle base in
  if ends_with ~suffix:"_total" base then base else base ^ "_total"

let timer_family base =
  let base = mangle base in
  let base = if ends_with ~suffix:"_seconds" base then base
             else base ^ "_seconds" in
  base ^ "_total"

(* One exposition family: every labelled series sharing a base name and
   type, emitted under one [# TYPE] header. *)
type series = { labels : (string * string) list; body : Buffer.t -> unit }
type family = { typ : string; mutable series : series list (* newest first *) }

let render (s : Obs.Summary.t) =
  let families : (string, family) Hashtbl.t = Hashtbl.create 32 in
  let order : string list ref = ref [] in
  let add fam typ labels body =
    match Hashtbl.find_opt families fam with
    | Some f -> f.series <- { labels; body } :: f.series
    | None ->
      Hashtbl.replace families fam { typ; series = [ { labels; body } ] };
      order := fam :: !order
  in
  let simple fam v =
   fun buf labels ->
    Buffer.add_string buf
      (Printf.sprintf "%s%s %s\n" fam (fmt_labels labels) v)
  in
  List.iter
    (fun (name, v) ->
      let base, labels = split_labels name in
      let fam = counter_family base in
      add fam "counter" labels (fun buf ->
          simple fam (string_of_int v) buf labels))
    s.Obs.Summary.counters;
  List.iter
    (fun (name, v) ->
      let base, labels = split_labels name in
      let fam = timer_family base in
      add fam "counter" labels (fun buf -> simple fam (fmt_float v) buf labels))
    s.Obs.Summary.timers;
  List.iter
    (fun (name, v) ->
      let base, labels = split_labels name in
      let fam = mangle base in
      add fam "gauge" labels (fun buf -> simple fam (fmt_float v) buf labels))
    s.Obs.Summary.gauges;
  List.iter
    (fun (name, h) ->
      let base, labels = split_labels name in
      let fam = mangle base in
      add fam "histogram" labels (fun buf ->
          let buckets = Hist.buckets h in
          let cum = ref 0 in
          (* Occupied buckets only (cumulative values stay correct and
             the text stays small); the [+Inf] bucket is always last. *)
          Array.iteri
            (fun i c ->
              if c > 0 then begin
                cum := !cum + c;
                let le =
                  if i >= Hist.finite_buckets then None
                  else Some (fmt_float (Hist.bound i))
                in
                match le with
                | Some le ->
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket%s %d\n" fam
                       (fmt_labels (labels @ [ ("le", le) ]))
                       !cum)
                | None -> ()
              end)
            buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" fam
               (fmt_labels (labels @ [ ("le", "+Inf") ]))
               (Hist.count h));
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" fam (fmt_labels labels)
               (fmt_float (Hist.sum h)));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" fam (fmt_labels labels)
               (Hist.count h))))
    s.Obs.Summary.hists;
  let buf = Buffer.create 4096 in
  List.iter
    (fun fam ->
      let f = Hashtbl.find families fam in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" fam f.typ);
      List.iter (fun series -> series.body buf) (List.rev f.series))
    (List.rev !order);
  Buffer.contents buf

(* Convenience JSON view of one histogram for /statusz. *)
let hist_json h =
  Obs.Json.Obj
    [
      ("count", Obs.Json.Int (Hist.count h));
      ("sum", Obs.Json.Float (Hist.sum h));
      ("p50", Obs.Json.Float (Hist.quantile h 0.5));
      ("p90", Obs.Json.Float (Hist.quantile h 0.9));
      ("p99", Obs.Json.Float (Hist.quantile h 0.99));
      ("max", Obs.Json.Float (Hist.max_value h));
    ]
