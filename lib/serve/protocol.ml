module Json = Obs.Json
module Gamma = Kb.Gamma
module Dict = Relational.Dict
module Table = Relational.Table
module Engine = Probkb.Engine
module Session = Probkb.Engine.Session
module Snapshot = Probkb.Snapshot
module Local = Grounding.Local

type key = string * string * string * string * string

type op =
  | Ingest of (key * float) list
  | Retract of { keys : key list; ban : bool }
  | Retract_rules of { head : string }
  | Add_rules of string list
  | Reexpand
  | Refresh
  | Query of key
  | Query_local of { key : key; budget : Local.budget option }
  | Stats
  | Metrics

let is_write = function
  | Ingest _ | Retract _ | Retract_rules _ | Add_rules _ | Reexpand | Refresh
    ->
    true
  | Query _ | Query_local _ | Stats | Metrics -> false

let error_json msg = Json.Obj [ ("error", Json.String msg) ]

(* ------------------------------------------------------------------ *)
(* Parsing *)

let key_of_json = function
  | Json.List
      [
        Json.String r;
        Json.String x;
        Json.String c1;
        Json.String y;
        Json.String c2;
      ] ->
    Some (r, x, c1, y, c2)
  | _ -> None

let fact_of_json = function
  | Json.List [ r; x; c1; y; c2; w ] -> (
    match (key_of_json (Json.List [ r; x; c1; y; c2 ]), Json.to_float w) with
    | Some k, Some w -> Some (k, w)
    | _ -> None)
  | _ -> None

let member_list name doc =
  Option.bind (Json.member name doc) Json.to_list |> Option.value ~default:[]

let budget_of_json doc =
  let int name = Option.bind (Json.member name doc) Json.to_int in
  let float name = Option.bind (Json.member name doc) Json.to_float in
  match
    (int "budget", int "max_hops", float "decay", float "min_influence")
  with
  | None, None, None, None -> Ok None
  | max_facts, max_hops, decay, min_influence -> (
    try Ok (Some (Local.budget ?max_facts ?max_hops ?decay ?min_influence ()))
    with Invalid_argument m -> Error m)

let op_of_json doc =
  match
    Option.bind (Json.member "op" doc) Json.to_string_value
  with
  | None -> Error "missing op"
  | Some "ingest" ->
    Ok (Ingest (List.filter_map fact_of_json (member_list "facts" doc)))
  | Some "retract" ->
    let ban =
      match Json.member "ban" doc with Some (Json.Bool b) -> b | _ -> false
    in
    Ok
      (Retract
         { keys = List.filter_map key_of_json (member_list "keys" doc); ban })
  | Some "retract_rules" -> (
    match Option.bind (Json.member "head" doc) Json.to_string_value with
    | None -> Error "retract_rules needs a head relation"
    | Some head -> Ok (Retract_rules { head }))
  | Some "add_rules" ->
    Ok
      (Add_rules
         (List.filter_map Json.to_string_value (member_list "rules" doc)))
  | Some "reexpand" -> Ok Reexpand
  | Some "refresh" -> Ok Refresh
  | Some "query" -> (
    match Option.bind (Json.member "key" doc) key_of_json with
    | None -> Error "query needs a key"
    | Some key -> Ok (Query key))
  | Some "query_local" -> (
    match Option.bind (Json.member "key" doc) key_of_json with
    | None -> Error "query_local needs a key"
    | Some key -> (
      match budget_of_json doc with
      | Error m -> Error m
      | Ok budget -> Ok (Query_local { key; budget })))
  | Some "stats" -> Ok Stats
  | Some "metrics" -> Ok Metrics
  | Some other -> Error (Printf.sprintf "unknown op %S" other)

let op_of_line line =
  match Json.of_string_opt line with
  | None -> Error "malformed JSON"
  | Some doc -> op_of_json doc

(* ------------------------------------------------------------------ *)
(* Encoding (client mode, load generator) *)

let key_to_json (r, x, c1, y, c2) =
  Json.List
    [
      Json.String r; Json.String x; Json.String c1; Json.String y;
      Json.String c2;
    ]

let op_to_json = function
  | Ingest facts ->
    Json.Obj
      [
        ("op", Json.String "ingest");
        ( "facts",
          Json.List
            (List.map
               (fun ((r, x, c1, y, c2), w) ->
                 Json.List
                   [
                     Json.String r; Json.String x; Json.String c1;
                     Json.String y; Json.String c2; Json.Float w;
                   ])
               facts) );
      ]
  | Retract { keys; ban } ->
    Json.Obj
      [
        ("op", Json.String "retract");
        ("keys", Json.List (List.map key_to_json keys));
        ("ban", Json.Bool ban);
      ]
  | Retract_rules { head } ->
    Json.Obj [ ("op", Json.String "retract_rules"); ("head", Json.String head) ]
  | Add_rules rules ->
    Json.Obj
      [
        ("op", Json.String "add_rules");
        ("rules", Json.List (List.map (fun r -> Json.String r) rules));
      ]
  | Reexpand -> Json.Obj [ ("op", Json.String "reexpand") ]
  | Refresh -> Json.Obj [ ("op", Json.String "refresh") ]
  | Query key ->
    Json.Obj [ ("op", Json.String "query"); ("key", key_to_json key) ]
  | Query_local { key; budget } ->
    Json.Obj
      ([ ("op", Json.String "query_local"); ("key", key_to_json key) ]
      @
      match budget with
      | None -> []
      | Some b ->
        List.concat
          [
            (match b.Local.max_facts with
            | Some n -> [ ("budget", Json.Int n) ]
            | None -> []);
            (match b.Local.max_hops with
            | Some n -> [ ("max_hops", Json.Int n) ]
            | None -> []);
            (if b.Local.decay = 1.0 then []
             else [ ("decay", Json.Float b.Local.decay) ]);
            (if b.Local.min_influence = 0.0 then []
             else [ ("min_influence", Json.Float b.Local.min_influence) ]);
          ])
  | Stats -> Json.Obj [ ("op", Json.String "stats") ]
  | Metrics -> Json.Obj [ ("op", Json.String "metrics") ]

(* ------------------------------------------------------------------ *)
(* Symbol resolution *)

type resolved =
  | RIngest of (int * int * int * int * int * float) list
  | RRetract of { keys : (int * int * int * int * int) list; ban : bool }
  | RRetract_rules of { head : int option }
  | RAdd_rules of Mln.Clause.t list
  | RReexpand
  | RRefresh
  | RQuery of (int * int * int * int * int) option
  | RQuery_local of {
      key : (int * int * int * int * int) option;
      budget : Local.budget option;
    }
  | RStats
  | RMetrics

let intern_key kb (r, x, c1, y, c2) =
  ( Gamma.relation kb r,
    Gamma.entity kb x,
    Gamma.cls kb c1,
    Gamma.entity kb y,
    Gamma.cls kb c2 )

(* Read-path resolution never interns: an unknown symbol means the fact
   cannot exist, and lookups leave the shared dictionaries untouched
   (they are only safe to read concurrently). *)
let lookup_key kb (r, x, c1, y, c2) =
  let ( let* ) = Option.bind in
  let* r = Dict.find_opt (Gamma.relations kb) r in
  let* x = Dict.find_opt (Gamma.entities kb) x in
  let* c1 = Dict.find_opt (Gamma.classes kb) c1 in
  let* y = Dict.find_opt (Gamma.entities kb) y in
  let* c2 = Dict.find_opt (Gamma.classes kb) c2 in
  Some (r, x, c1, y, c2)

let resolve kb = function
  | Ingest facts ->
    Ok
      (RIngest
         (List.map
            (fun (k, w) ->
              let r, x, c1, y, c2 = intern_key kb k in
              (r, x, c1, y, c2, w))
            facts))
  | Retract { keys; ban } ->
    (* Unknown symbols cannot name a stored fact; dropping them here is
       observationally identical to resolving and finding nothing. *)
    Ok (RRetract { keys = List.filter_map (lookup_key kb) keys; ban })
  | Retract_rules { head } ->
    Ok (RRetract_rules { head = Dict.find_opt (Gamma.relations kb) head })
  | Add_rules rules -> (
    try
      Ok
        (RAdd_rules
           (Mln.Parse.parse_lines
              ~intern_rel:(Gamma.relation kb)
              ~intern_cls:(Gamma.cls kb) rules))
    with Mln.Parse.Syntax_error m -> Error m)
  | Reexpand -> Ok RReexpand
  | Refresh -> Ok RRefresh
  | Query key -> Ok (RQuery (lookup_key kb key))
  | Query_local { key; budget } ->
    Ok (RQuery_local { key = lookup_key kb key; budget })
  | Stats -> Ok RStats
  | Metrics -> Ok RMetrics

(* ------------------------------------------------------------------ *)
(* Reply documents *)

let not_found = Json.Obj [ ("found", Json.Bool false) ]

let view_json (v : Snapshot.view) =
  Json.Obj
    [
      ("found", Json.Bool true);
      ("id", Json.Int v.Snapshot.id);
      ("base", Json.Bool v.Snapshot.base);
      ( "weight",
        if Table.is_null_weight v.Snapshot.weight then Json.Null
        else Json.Float v.Snapshot.weight );
      ( "marginal",
        match v.Snapshot.marginal with
        | Some p -> Json.Float p
        | None -> Json.Null );
    ]

let answer_json (a : Engine.local_answer) =
  Json.Obj
    [
      ("found", Json.Bool true);
      ("id", Json.Int a.Engine.id);
      ("epoch", Json.Int a.Engine.epoch);
      ("marginal", Json.Float a.Engine.marginal);
      ( "method",
        Json.String (if a.Engine.enumerated then "local-exact" else "local-gibbs")
      );
      ("interior", Json.Int a.Engine.interior);
      ("boundary", Json.Int a.Engine.boundary);
      ("hops", Json.Int a.Engine.hops);
      ("factors", Json.Int a.Engine.factors);
      ("pruned_mass", Json.Float a.Engine.pruned_mass);
      ("truncated", Json.Bool a.Engine.truncated);
      ( "seconds",
        Json.Obj
          [
            ("ground", Json.Float a.Engine.ground_seconds);
            ("infer", Json.Float a.Engine.infer_seconds);
          ] );
    ]

let stats_json (st : Snapshot.stats) =
  Json.Obj
    [
      ("epoch", Json.Int st.Snapshot.epoch);
      ("facts", Json.Int st.Snapshot.facts);
      ("factors", Json.Int st.Snapshot.factors);
      ("marginals_cached", Json.Int st.Snapshot.marginals_cached);
      ("frozen", Json.Bool st.Snapshot.frozen);
    ]

(* The [metrics] reply: the trace's merged summary (histograms
   included).  Counters and histograms are cumulative, so scraping is
   read-only; span aggregation reflects whatever the trace retained. *)
let metrics_json obs =
  Json.Obj [ ("metrics", Obs.Summary.to_json (Obs.Summary.of_trace obs)) ]

(* ------------------------------------------------------------------ *)
(* Interpreters *)

let apply ?(obs = Obs.null) s = function
  | RIngest facts -> Probkb.Report.epoch_to_json (Session.ingest s facts)
  | RRetract { keys; ban } ->
    Probkb.Report.epoch_to_json (Session.retract_keys ~ban s keys)
  | RRetract_rules { head } ->
    Probkb.Report.epoch_to_json
      (Session.retract_rules s ~remove:(fun c ->
           match head with
           | Some rel -> c.Mln.Clause.head_rel = rel
           | None -> false))
  | RAdd_rules rules -> Probkb.Report.epoch_to_json (Session.add_rules s rules)
  | RReexpand -> Probkb.Report.epoch_to_json (Session.reexpand s)
  | RRefresh -> (
    match Session.refresh_marginals s with
    | Some st -> Probkb.Report.epoch_to_json st
    | None -> error_json "inference disabled")
  | RQuery None -> not_found
  | RQuery (Some (r, x, c1, y, c2)) -> (
    match Session.query s ~r ~x ~c1 ~y ~c2 with
    | None -> not_found
    | Some v ->
      view_json
        {
          Snapshot.id = v.Session.id;
          base = v.Session.base;
          weight = v.Session.weight;
          marginal = v.Session.marginal;
        })
  | RQuery_local { key = None; budget = _ } -> not_found
  | RQuery_local { key = Some (r, x, c1, y, c2); budget } -> (
    match Session.query_local ?budget s ~r ~x ~c1 ~y ~c2 with
    | None -> not_found
    | Some a -> answer_json a)
  | RStats -> stats_json (Snapshot.stats (Session.snapshot s))
  | RMetrics -> metrics_json obs

let answer ?(obs = Obs.null) snap = function
  | RIngest _ | RRetract _ | RRetract_rules _ | RAdd_rules _ | RReexpand
  | RRefresh ->
    error_json "snapshot is read-only"
  | RQuery None -> not_found
  | RQuery (Some (r, x, c1, y, c2)) -> (
    match Snapshot.find snap ~r ~x ~c1 ~y ~c2 with
    | None -> not_found
    | Some id -> (
      match Snapshot.view snap id with
      | Some v -> view_json v
      | None ->
        view_json
          {
            Snapshot.id;
            base = false;
            weight = Table.null_weight;
            marginal = Snapshot.marginal snap id;
          }))
  | RQuery_local { key = None; budget = _ } -> not_found
  | RQuery_local { key = Some (r, x, c1, y, c2); budget } -> (
    match Snapshot.query_local ?budget snap ~r ~x ~c1 ~y ~c2 with
    | None -> not_found
    | Some a -> answer_json a)
  | RStats -> stats_json (Snapshot.stats snap)
  | RMetrics -> metrics_json obs

let step ?obs kb s line =
  match op_of_line line with
  | Error m -> error_json m
  | Ok op -> (
    match resolve kb op with
    | Error m -> error_json m
    | Ok rop -> apply ?obs s rop)
