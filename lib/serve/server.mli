(** The network front-end: epoch-snapshot reads under live writes.

    A pool of reader domains drives a shared accept loop on one listening
    socket (TCP or Unix-domain).  Each connection speaks the NDJSON
    protocol of {!Protocol}: one op per line, one reply document per
    line.  Read ops ([query], [query_local], [stats]) are answered on the
    reader's own domain against the {e currently published} frozen
    snapshot — one atomic load, no lock shared with the writer.  Write
    ops are enqueued to the single writer domain, which applies them to
    the underlying session in arrival order, publishes the new epoch's
    snapshot, and wakes the requesting reader with the ledger reply.

    Consistency model: a read observes exactly one published epoch
    (snapshot isolation; answers carry the epoch they were computed
    against).  A write's reply is sent only after its epoch is
    published, so a client that writes then reads on one connection sees
    its own write.  Readers never block on writers and vice versa — the
    only shared points are the snapshot pointer (atomic), the symbol
    dictionaries (a mutex held during request resolution only; read ops
    only look symbols up) and the write queue.

    Telemetry on the server's trace: a ["serve.request"] span per
    request (op + outcome + [req_id] attributes), ["serve.requests"] /
    ["serve.reads"] / ["serve.writes"] / ["serve.slow_requests"]
    counters, ["serve.queue_depth"] / ["serve.epoch_lag"] gauges
    (current and [_max] high-water marks), and histograms:
    ["serve.request_seconds"] (plus one ["|op=..."]-labelled series per
    op), ["serve.apply_seconds"], ["serve.epoch_lag_dist"].  {!metrics_text}
    renders it all as Prometheus text, {!status_json} as the /statusz
    document; wire both to {!Admin} for HTTP scraping, or scrape in-band
    with the [metrics] protocol op. *)

type t

(** [start ?pool ?backlog ?obs ?access_log ?slow_ms ~kb ~writer ~addr ()]
    binds [addr] (use port 0 to let the kernel pick — see {!port}),
    spawns the writer domain and [pool] reader domains, and returns
    immediately.  [kb] must be the knowledge base underlying [writer]'s
    session.  [obs] (default: no-op) receives the per-request telemetry.
    [access_log] (see {!ndjson_sink}) receives one structured record per
    request: [{ts, id, op, kind, seconds, epoch, slow}].  A request
    slower than [slow_ms] milliseconds is marked [slow] and its record
    carries the full [serve.request] span subtree under ["spans"] (for
    [query_local]: the grounding walk with hops / boundary / pruned-mass
    attributes).  SIGPIPE is ignored process-wide (client disconnects
    surface as [EPIPE] errors). *)
val start :
  ?pool:int ->
  ?backlog:int ->
  ?obs:Obs.t ->
  ?access_log:(Obs.Json.t -> unit) ->
  ?slow_ms:float ->
  kb:Kb.Gamma.t ->
  writer:Probkb.Engine.Writer.t ->
  addr:Unix.sockaddr ->
  unit ->
  t

(** [ndjson_sink oc] is an access-log sink writing one JSON document per
    line, mutex-serialized across reader domains, flushed per record. *)
val ndjson_sink : out_channel -> Obs.Json.t -> unit

(** [trace t] is the trace passed to {!start} ({!Obs.null} if none). *)
val trace : t -> Obs.t

(** [status_json t] is the /statusz document: uptime, epoch, epoch lag,
    queue depth, request/read/write/slow counters, memory figures
    ({!Obs.mem_stats}), and per-op request-latency digests
    (count/sum/p50/p90/p99/max). *)
val status_json : t -> Obs.Json.t

(** [metrics_text t] is the Prometheus text exposition of the server's
    merged telemetry (see {!Metrics}). *)
val metrics_text : t -> string

(** [sockaddr t] is the actual bound address (with the kernel-assigned
    port resolved). *)
val sockaddr : t -> Unix.sockaddr

(** [port t] is the bound TCP port ([None] for Unix-domain sockets). *)
val port : t -> int option

(** [writer t] is the writer arm passed to {!start}. *)
val writer : t -> Probkb.Engine.Writer.t

(** [stop t] shuts down: closes the listening socket and every open
    connection, drains the writer queue, and joins all domains.
    Idempotent. *)
val stop : t -> unit
