(* A deliberately tiny HTTP/1.0 admin listener: one accept domain, one
   request per connection, GET only.  It exists to expose /metrics and
   /statusz to scrapers (Prometheus, curl) without pulling an HTTP stack
   into the build; it is not a general web server. *)

type route = { content_type : string; body : unit -> string }

type t = {
  fd : Unix.file_descr;
  bound : Unix.sockaddr;
  routes : (string * route) list;
  stop : bool Atomic.t;
  mutable dom : unit Domain.t option;
  mutable stopped : bool;
}

let route ~content_type body = { content_type; body }

let sockaddr t = t.bound

let port t =
  match t.bound with Unix.ADDR_INET (_, p) -> Some p | Unix.ADDR_UNIX _ -> None

let respond oc ~status ~content_type body =
  output_string oc
    (Printf.sprintf
       "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
        Connection: close\r\n\r\n"
       status content_type (String.length body));
  output_string oc body;
  flush oc

(* Request line [METHOD /path?query HTTP/1.x]; headers are read up to
   the blank line and discarded. *)
let handle_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let request = input_line ic in
     let rec drain_headers () =
       match input_line ic with
       | "" | "\r" -> ()
       | _ -> drain_headers ()
       | exception End_of_file -> ()
     in
     drain_headers ();
     match String.split_on_char ' ' (String.trim request) with
     | meth :: target :: _ when meth <> "GET" ->
       ignore target;
       respond oc ~status:"405 Method Not Allowed" ~content_type:"text/plain"
         "only GET is supported\n"
     | _ :: target :: _ -> (
       let path =
         match String.index_opt target '?' with
         | Some i -> String.sub target 0 i
         | None -> target
       in
       match List.assoc_opt path t.routes with
       | Some r -> (
         match r.body () with
         | body -> respond oc ~status:"200 OK" ~content_type:r.content_type body
         | exception e ->
           respond oc ~status:"500 Internal Server Error"
             ~content_type:"text/plain"
             (Printexc.to_string e ^ "\n"))
       | None ->
         respond oc ~status:"404 Not Found" ~content_type:"text/plain"
           (Printf.sprintf "no route %s\n" path))
     | _ ->
       respond oc ~status:"400 Bad Request" ~content_type:"text/plain"
         "malformed request line\n"
   with
  | End_of_file | Sys_error _ -> ()
  | Unix.Unix_error (_, _, _) -> ());
  try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

let accept_loop t =
  let rec loop () =
    if Atomic.get t.stop then ()
    else begin
      (match Unix.accept t.fd with
      | fd, _ -> if Atomic.get t.stop then Unix.close fd else handle_conn t fd
      | exception Unix.Unix_error (_, _, _) -> ());
      loop ()
    end
  in
  loop ()

let start ?(backlog = 8) ~addr ~routes () =
  let domain =
    match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Unix.ADDR_UNIX path -> if Sys.file_exists path then Sys.remove path);
  Unix.bind fd addr;
  Unix.listen fd backlog;
  let t =
    {
      fd;
      bound = Unix.getsockname fd;
      routes;
      stop = Atomic.make false;
      dom = None;
      stopped = false;
    }
  in
  t.dom <- Some (Domain.spawn (fun () -> accept_loop t));
  t

(* Closing the listener does not wake a blocked accept() on Linux; a
   throwaway connect does (same trick as Server.poke_accept). *)
let poke t =
  let domain =
    match t.bound with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET
  in
  match Unix.socket domain Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (_, _, _) -> ()
  | fd ->
    (try Unix.connect fd t.bound with Unix.Unix_error (_, _, _) -> ());
    (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stop true;
    poke t;
    (try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ());
    (match t.dom with
    | Some d ->
      Domain.join d;
      t.dom <- None
    | None -> ());
    match t.bound with
    | Unix.ADDR_UNIX path when Sys.file_exists path -> (
      try Sys.remove path with Sys_error _ -> ())
    | _ -> ()
  end
