module Table = Relational.Table
module Index = Relational.Index

let cols = [| "I"; "R"; "x"; "C1"; "y"; "C2" |]
let key_cols = [| 1; 2; 3; 4; 5 |]

type t = {
  mutable facts : Table.t;
  mutable key_idx : Index.t;
  mutable next_id : int;
  mutable id_map : (int, int) Hashtbl.t option; (* id -> row, lazy *)
  banned : (int * int * int * int * int, unit) Hashtbl.t;
  tombstones : (int, unit) Hashtbl.t; (* ids marked deleted, not yet compacted *)
  mutable index_rebuilds : int;
}

let create () =
  let facts = Table.create ~weighted:true ~name:"T_Pi" cols in
  {
    facts;
    key_idx = Index.build facts key_cols;
    next_id = 0;
    id_map = None;
    banned = Hashtbl.create 16;
    tombstones = Hashtbl.create 16;
    index_rebuilds = 0;
  }

let table s = s.facts
let key_index s = s.key_idx
let size s = Table.nrows s.facts
let next_id s = s.next_id
let index_rebuilds s = s.index_rebuilds

let find s ~r ~x ~c1 ~y ~c2 =
  match Index.first_match s.key_idx [| r; x; c1; y; c2 |] with
  | Some row ->
    let id = Table.get s.facts row 0 in
    if Hashtbl.length s.tombstones > 0 && Hashtbl.mem s.tombstones id then None
    else Some id
  | None -> None

let add s ~r ~x ~c1 ~y ~c2 ~w =
  match find s ~r ~x ~c1 ~y ~c2 with
  | Some id -> `Dup id
  | None ->
    let id = s.next_id in
    s.next_id <- id + 1;
    Table.append_w s.facts [| id; r; x; c1; y; c2 |] w;
    Index.add s.key_idx (Table.nrows s.facts - 1);
    (match s.id_map with
    | Some m -> Hashtbl.replace m id (Table.nrows s.facts - 1)
    | None -> ());
    `Added id

(* [tbl] has columns R x C1 y C2 at positions 0..4. *)
let new_key_cols = [| 0; 1; 2; 3; 4 |]

let merge_new s tbl =
  let added = ref 0 in
  let buf = Array.make 6 0 in
  let is_banned r =
    Hashtbl.length s.banned > 0
    && Hashtbl.mem s.banned
         ( Table.get tbl r 0, Table.get tbl r 1, Table.get tbl r 2,
           Table.get tbl r 3, Table.get tbl r 4 )
  in
  for r = 0 to Table.nrows tbl - 1 do
    if (not (Index.mem_row s.key_idx tbl new_key_cols r)) && not (is_banned r)
    then begin
      let id = s.next_id in
      s.next_id <- id + 1;
      buf.(0) <- id;
      for i = 0 to 4 do
        buf.(i + 1) <- Table.get tbl r i
      done;
      Table.append s.facts buf;
      (* inferred: null weight *)
      Index.add s.key_idx (Table.nrows s.facts - 1);
      (match s.id_map with
      | Some m -> Hashtbl.replace m id (Table.nrows s.facts - 1)
      | None -> ());
      incr added
    end
  done;
  !added

let ban_key_of_row s r =
  Hashtbl.replace s.banned
    ( Table.get s.facts r 1, Table.get s.facts r 2, Table.get s.facts r 3,
      Table.get s.facts r 4, Table.get s.facts r 5 )
    ()

let mark_deleted s id = Hashtbl.replace s.tombstones id ()
let pending_deletes s = Hashtbl.length s.tombstones

let flush_deletes ?(ban = false) s =
  if Hashtbl.length s.tombstones = 0 then 0
  else begin
    let before = Table.nrows s.facts in
    let dead r = Hashtbl.mem s.tombstones (Table.get s.facts r 0) in
    if ban then
      Table.iter (fun r -> if dead r then ban_key_of_row s r) s.facts;
    let kept = Table.filter s.facts (fun r -> not (dead r)) in
    s.facts <- kept;
    s.key_idx <- Index.build kept key_cols;
    s.index_rebuilds <- s.index_rebuilds + 1;
    s.id_map <- None;
    Hashtbl.reset s.tombstones;
    before - Table.nrows kept
  end

let delete_ids ?ban s ids =
  List.iter (fun id -> mark_deleted s id) ids;
  flush_deletes ?ban s

let delete_where ?ban s p =
  Table.iter
    (fun r -> if p s.facts r then mark_deleted s (Table.get s.facts r 0))
    s.facts;
  flush_deletes ?ban s

let banned_count s = Hashtbl.length s.banned
let is_banned s ~r ~x ~c1 ~y ~c2 = Hashtbl.mem s.banned (r, x, c1, y, c2)

let iter f s =
  for row = 0 to Table.nrows s.facts - 1 do
    f
      ~id:(Table.get s.facts row 0)
      ~r:(Table.get s.facts row 1)
      ~x:(Table.get s.facts row 2)
      ~c1:(Table.get s.facts row 3)
      ~y:(Table.get s.facts row 4)
      ~c2:(Table.get s.facts row 5)
      ~w:(Table.weight s.facts row)
  done

let row_of_id s id =
  let m =
    match s.id_map with
    | Some m -> m
    | None ->
      let m = Hashtbl.create (max 16 (Table.nrows s.facts)) in
      for row = 0 to Table.nrows s.facts - 1 do
        Hashtbl.replace m (Table.get s.facts row 0) row
      done;
      s.id_map <- Some m;
      m
  in
  Hashtbl.find_opt m id

let ban_id s id =
  match row_of_id s id with
  | Some r -> ban_key_of_row s r
  | None -> ()

let copy s =
  let facts = Table.copy s.facts in
  {
    facts;
    key_idx = Index.build facts key_cols;
    next_id = s.next_id;
    id_map = None;
    banned = Hashtbl.copy s.banned;
    tombstones = Hashtbl.copy s.tombstones;
    index_rebuilds = 0;
  }
