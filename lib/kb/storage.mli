(** The fact table [TΠ].

    All facts — extracted and inferred — live in one table with schema
    [(I, R, x, C1, y, C2, w)] (paper, Definition 4): a single table rather
    than one table per relation, which is what lets grounding apply rule
    batches with one join per partition.  [C1]/[C2] replicate the class
    information into the fact rows so grounding joins never touch
    [TC]/[TR].

    A fact is identified by its key [(R, x, C1, y, C2)]; the weight [w] is
    the extraction confidence for base facts and null for inferred facts
    (their probability is produced later by marginal inference). *)

type t

(** The fact-key columns within {!table}: positions of [R, x, C1, y, C2]. *)
val key_cols : int array

(** [create ()] is an empty fact store. *)
val create : unit -> t

(** [table s] is the underlying [TΠ] table with columns
    [I, R, x, C1, y, C2] and a weight column.  Treat as read-only; mutate
    through this module so the key index stays consistent. *)
val table : t -> Relational.Table.t

(** [key_index s] is the maintained index on the fact key, usable as the
    build side of joins against [TΠ]. *)
val key_index : t -> Relational.Index.t

(** [size s] is the number of stored facts (tombstoned rows included until
    {!flush_deletes} compacts them away). *)
val size : t -> int

(** [next_id s] is the identifier the next inserted fact will receive.
    Identifiers are assigned in insertion order and never reused, so
    [next_id] taken before a batch of insertions is a watermark: exactly
    the facts with [id >= next_id] are newer than the batch boundary. *)
val next_id : t -> int

(** [add s ~r ~x ~c1 ~y ~c2 ~w] inserts a fact if its key is new and
    returns [`Added id]; otherwise returns [`Dup id] of the existing
    fact. *)
val add :
  t -> r:int -> x:int -> c1:int -> y:int -> c2:int -> w:float ->
  [ `Added of int | `Dup of int ]

(** [find s ~r ~x ~c1 ~y ~c2] is the identifier of the matching fact. *)
val find : t -> r:int -> x:int -> c1:int -> y:int -> c2:int -> int option

(** [merge_new s tbl] inserts every row of [tbl] — which must have columns
    [R, x, C1, y, C2] — as a new inferred fact (null weight) unless the key
    already exists.  This is the [TΠ ← TΠ ∪ (∪ Tj)] step of Algorithm 1,
    line 5.  Returns the number of facts actually added. *)
val merge_new : t -> Relational.Table.t -> int

(** {1 Deletion}

    Deletion is batched: callers tombstone any number of fact ids with
    {!mark_deleted} (or in one go with {!delete_ids} / {!delete_where})
    and the store compacts the table and rebuilds the key index {e once}
    per batch, in {!flush_deletes} — not once per deleted fact.  While a
    tombstone is pending, {!find} answers [None] for the dead fact but
    {!table}/{!size}/{!iter} still expose the physical rows (deleted
    facts must stay joinable while DRed computes their consequence cone).
    Do not insert a key that is currently tombstoned; flush first. *)

(** [mark_deleted s id] tombstones fact [id]; {!find} no longer reports
    it.  The physical row remains until {!flush_deletes}. *)
val mark_deleted : t -> int -> unit

(** [pending_deletes s] is the number of tombstoned, not-yet-compacted
    facts. *)
val pending_deletes : t -> int

(** [flush_deletes ?ban s] compacts all tombstoned rows out of the table
    and rebuilds the key index — one rebuild for the whole batch (a no-op
    returning 0 when nothing is tombstoned).  With [ban = true] (default
    [false]) the removed keys are remembered and {!merge_new} will never
    re-insert them.  Returns the number of facts removed. *)
val flush_deletes : ?ban:bool -> t -> int

(** [delete_ids ?ban s ids] is {!mark_deleted} on every id followed by one
    {!flush_deletes}. *)
val delete_ids : ?ban:bool -> t -> int list -> int

(** [delete_where ?ban s p] removes the facts whose row satisfies [p]
    (given the backing table and a row index) — implemented as one
    tombstone-and-flush batch, so it costs a single compaction + index
    rebuild regardless of how many rows match.  Fact identifiers are
    stable across deletions.  With [ban = true] (default [false]) the
    removed keys are remembered and {!merge_new} will never re-insert
    them: facts removed as constraint violations must not be re-derived by
    the next grounding iteration (paper, Section 5.1 — errors are removed
    "to avoid further propagation").  Returns the number of facts
    removed. *)
val delete_where : ?ban:bool -> t -> (Relational.Table.t -> int -> bool) -> int

(** [ban_id s id] bans the key of a {e live} fact without deleting it —
    used when a retraction must also block future re-derivation of
    specific facts (the DRed analogue of [delete_where ~ban], which bans
    every key it deletes; DRed bans only the explicitly retracted facts,
    not their overdeleted cone). *)
val ban_id : t -> int -> unit

(** [index_rebuilds s] counts key-index rebuilds caused by deletions —
    observable proof that a batch costs one rebuild. *)
val index_rebuilds : t -> int

(** [banned_count s] is the number of banned keys. *)
val banned_count : t -> int

(** [is_banned s ~r ~x ~c1 ~y ~c2] is [true] iff the key was banned. *)
val is_banned : t -> r:int -> x:int -> c1:int -> y:int -> c2:int -> bool

(** [iter f s] applies
    [f ~id ~r ~x ~c1 ~y ~c2 ~w] to every stored fact. *)
val iter :
  (id:int -> r:int -> x:int -> c1:int -> y:int -> c2:int -> w:float -> unit) ->
  t -> unit

(** [row_of_id s id] is the current row index of fact [id], if present
    (linear scan cached in a lazily built map; invalidated on deletes). *)
val row_of_id : t -> int -> int option

(** [copy s] is an independent deep copy. *)
val copy : t -> t
