(** Engine configuration for the ProbKB pipeline.

    Build configurations with {!make} and derive variants with the
    [with_*] updaters:

    {[
      let config =
        Config.make ~semantic_constraints:true ~max_iterations:10 ()
        |> Config.with_obs Obs.Config.enabled
    ]}

    The record remains public for pattern matching, but constructing it
    literally is deprecated in favour of [make] — new fields (like [obs])
    get defaults there, so call sites don't break when the configuration
    grows. *)

(** Where grounding executes. *)
type engine =
  | Single_node  (** the PostgreSQL-style configuration ("ProbKB") *)
  | Mpp of { cluster : Mpp.Cluster.t; views : bool }
      (** the Greenplum-style configuration: "ProbKB-p" with redistributed
          materialized views, "ProbKB-pn" without *)

(** Quality control (paper, Section 5). *)
type quality = {
  semantic_constraints : bool;  (** apply Ω during grounding *)
  rule_theta : float;  (** rule-cleaning threshold θ ∈ (0, 1]; 1 = keep all *)
}

type t = {
  engine : engine;
  quality : quality;
  max_iterations : int;
  inference : Inference.Marginal.method_ option;
      (** marginal inference to run after grounding; [None] skips it *)
  obs : Obs.Config.t;
      (** observability: when enabled, the engine's trace context records
          span trees, counters and operator metrics across every stage *)
  target_r_hat : float option;
      (** adaptive early stop: end Chromatic sampling once the online
          split-R̂ falls to this value (and [min_ess] holds).  [None]
          (default) runs the full sweep budget *)
  min_ess : float option;
      (** adaptive early stop: minimum effective sample size per
          variable.  Setting either criterion turns early stopping on *)
  checkpoint_sweeps : int;
      (** sweeps between diagnostic checkpoints / snapshot records
          (default {!Inference.Chromatic.default_checkpoint}) *)
  warm_start : bool;
      (** sessions: [Engine.Session.refresh_marginals] starts the
          Chromatic chain from the previous epoch's final state for the
          variables the epoch's updates did not touch, re-randomizing only
          the touched cone (default [true]; [false] re-initializes every
          variable from the seed stream) *)
  exact_max_vars : int;
      (** per-component enumeration cap for exact inference — threaded
          through [Neighborhood]'s dispatch on the local-query paths and
          into the hybrid method built by [make ~hybrid:true] (default
          {!Inference.Exact.max_vars}) *)
  max_width : int;
      (** induced-width bound for junction-tree variable elimination in
          the per-component dispatcher (default
          {!Inference.Jtree.default_max_width}) *)
  spill_dir : string option;
      (** out-of-core storage root (default [None] — fully in-memory).
          When set, grounding keeps an on-disk segment-store copy of
          [TΠ] once it crosses [spill_threshold_bytes] and probes the
          closure/factor joins from it (single node), or flushes the
          distributed fact shards to per-segment stores (MPP, pn mode).
          Results are bit-identical either way *)
  segment_rows : int;
      (** rows per column segment in spilled stores (default
          {!Storage.Spill.default_segment_rows}) *)
  spill_threshold_bytes : int;
      (** resident byte size at which a table is spilled (default
          {!Storage.Spill.default_threshold_bytes} = 64 MiB) *)
}

(** [make ()] is the default configuration: single node, no quality
    control, 15 iterations, Gibbs inference, observability off, no early
    stop.  Each labelled argument overrides one knob.

    [~hybrid:true] upgrades the batch inference method to the
    per-component dispatcher ({!Inference.Hybrid}): a [Gibbs]/[Chromatic]
    method contributes its sampler options to the residual cores; an
    explicit [Exact] or [Bp] method is left alone.  [exact_max_vars] and
    [max_width] parameterize both the hybrid method and the local-query
    dispatch.
    @raise Invalid_argument when [checkpoint_sweeps < 1],
    [exact_max_vars] is outside [[0, 30]], or [max_width] is outside
    [[0, Inference.Jtree.max_clique_vars - 1]] (elimination cliques hold
    width + 1 variables, so larger bounds could only abort on the
    clique-size guard). *)
val make :
  ?engine:engine ->
  ?semantic_constraints:bool ->
  ?rule_theta:float ->
  ?max_iterations:int ->
  ?inference:Inference.Marginal.method_ option ->
  ?obs:Obs.Config.t ->
  ?target_r_hat:float ->
  ?min_ess:float ->
  ?checkpoint_sweeps:int ->
  ?warm_start:bool ->
  ?exact_max_vars:int ->
  ?max_width:int ->
  ?hybrid:bool ->
  ?spill_dir:string ->
  ?segment_rows:int ->
  ?spill_threshold_bytes:int ->
  unit ->
  t

(** [make ()]. *)
val default : t

(** [no_inference c] disables the marginal-inference stage. *)
val no_inference : t -> t

val with_engine : engine -> t -> t
val with_quality : quality -> t -> t
val with_max_iterations : int -> t -> t
val with_inference : Inference.Marginal.method_ option -> t -> t
val with_obs : Obs.Config.t -> t -> t
val with_warm_start : bool -> t -> t
val with_exact_max_vars : int -> t -> t
val with_max_width : int -> t -> t

(** [with_spill ?spill_dir ?segment_rows ?spill_threshold_bytes c]
    reconfigures out-of-core storage; an absent [spill_dir] clears it
    (back to fully in-memory), absent size knobs keep their current
    values.
    @raise Invalid_argument on [segment_rows < 1] or a negative
    threshold. *)
val with_spill :
  ?spill_dir:string -> ?segment_rows:int -> ?spill_threshold_bytes:int ->
  t -> t

(** [spill_policy c] is the spill policy of one engine run ([None] when
    [spill_dir] is unset).  Build it once per run and share it: the
    policy's atomic counter is what keeps concurrently-allocated store
    directories distinct. *)
val spill_policy : t -> Storage.Spill.t option

(** [with_early_stop ?target_r_hat ?min_ess c] replaces both early-stop
    criteria (absent arguments clear them). *)
val with_early_stop : ?target_r_hat:float -> ?min_ess:float -> t -> t

(** [early_stop_criteria c] is the sampler criteria when either knob is
    set ([None] otherwise); an unset knob defaults to always-satisfied. *)
val early_stop_criteria :
  t -> Inference.Diagnostics.Online.criteria option

(** [domains ()] is the size of the shared-memory execution pool, read
    from the [PROBKB_DOMAINS] environment variable (default 1 — fully
    sequential, no domains spawned).  See {!Pool}. *)
val domains : unit -> int
