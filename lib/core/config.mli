(** Engine configuration for the ProbKB pipeline. *)

(** Where grounding executes. *)
type engine =
  | Single_node  (** the PostgreSQL-style configuration ("ProbKB") *)
  | Mpp of { cluster : Mpp.Cluster.t; views : bool }
      (** the Greenplum-style configuration: "ProbKB-p" with redistributed
          materialized views, "ProbKB-pn" without *)

(** Quality control (paper, Section 5). *)
type quality = {
  semantic_constraints : bool;  (** apply Ω during grounding *)
  rule_theta : float;  (** rule-cleaning threshold θ ∈ (0, 1]; 1 = keep all *)
}

type t = {
  engine : engine;
  quality : quality;
  max_iterations : int;
  inference : Inference.Marginal.method_ option;
      (** marginal inference to run after grounding; [None] skips it *)
}

(** Single node, no quality control, 15 iterations, Gibbs inference. *)
val default : t

(** [no_inference c] disables the marginal-inference stage. *)
val no_inference : t -> t

(** [domains ()] is the size of the shared-memory execution pool, read
    from the [PROBKB_DOMAINS] environment variable (default 1 — fully
    sequential, no domains spawned).  See {!Pool}. *)
val domains : unit -> int
