(** The ProbKB engine — the pipeline of Figure 1.

    The pipeline is exposed as explicit, composable stages sharing one
    trace context: {!expand} (rule cleaning + batch grounding + quality
    control), {!infer} (marginal inference over the ground factor graph),
    and {!store_marginals} (write each inferred fact's probability back
    into the knowledge base, "thereby avoiding query-time computation" —
    paper, Section 2.2).  {!run} is their composition.

    Every stage records into the engine's {!trace} (a no-op unless
    [config.obs] enables it); {!expansion} and {!result} carry the
    aggregated {!Obs.Summary.t} snapshot taken when the stage finished. *)

type t

(** [create ?config kb] wraps a knowledge base.  The KB is mutated by
    expansion (inferred facts are added to [TΠ]).  The engine owns a
    trace context created from [config.obs]. *)
val create : ?config:Config.t -> Kb.Gamma.t -> t

val kb : t -> Kb.Gamma.t
val config : t -> Config.t

(** [trace t] is the engine's trace context — pass it to ad-hoc
    instrumentation, or export it with {!Obs.write_chrome_trace}. *)
val trace : t -> Obs.t

(** [summary t] aggregates everything recorded into the trace so far. *)
val summary : t -> Obs.Summary.t

type expansion = {
  graph : Factor_graph.Fgraph.t;
  iterations : int;
  converged : bool;
  trajectory : Grounding.Ground.trajectory_point list;
      (** per-iteration expansion curve (new facts, totals, violations) *)
  new_fact_count : int;
  removed_by_constraints : int;
  n_factors : int;
  rules_used : int;  (** after rule cleaning *)
  wall_seconds : float;
  sim_seconds : float option;  (** simulated cluster time (MPP engines) *)
  obs : Obs.Summary.t;  (** trace snapshot at the end of the stage *)
}

(** [expand t] grounds the knowledge base (Algorithm 1 + quality
    control). *)
val expand : t -> expansion

(** [infer t e] runs the configured marginal inference over [e]'s factor
    graph; returns fact id → probability (empty when inference is
    disabled). *)
val infer : t -> expansion -> (int, float) Hashtbl.t

(** [infer_full t e] is {!infer} plus the per-method solve report —
    sweeps and online diagnostics for samplers, component/width/solver
    breakdown for the hybrid dispatcher ([None] only when inference is
    disabled).  The config's [target_r_hat] / [min_ess] criteria and
    [checkpoint_sweeps] cadence are applied here. *)
val infer_full :
  t -> expansion -> (int, float) Hashtbl.t * Inference.Marginal.solve_info option

(** [store_marginals t marginals] writes each probability into the weight
    column of the corresponding (inferred) fact.  Returns how many facts
    were updated. *)
val store_marginals : t -> (int, float) Hashtbl.t -> int

type result = {
  expansion : expansion;
  marginals_stored : int;
  inference : Inference.Marginal.solve_info option;
      (** per-method solve report ([None] when inference is disabled) *)
  obs : Obs.Summary.t;  (** trace snapshot over the whole pipeline *)
}

(** [run t] is [expand] + [infer] + [store_marginals]. *)
val run : t -> result

(** {1 Point queries: local grounding}

    Answering "what is P(fact)?" does not require grounding the whole
    knowledge base: {!query_local} grounds only the query's neighbourhood
    backward from the queried fact ([Grounding.Local]), clamps the
    budget-pruned boundary to prior probabilities, and solves the
    resulting subgraph — exactly (enumeration) when every connected
    component is small, by chromatic Gibbs otherwise. *)

(** One answered point query (the {!Snapshot.answer} record re-exported;
    [epoch] is the epoch the answer was computed against — 0 outside
    sessions). *)
type local_answer = Snapshot.answer = {
  id : int;  (** the queried fact *)
  marginal : float;  (** P(fact) over the local neighbourhood *)
  epoch : int;  (** epoch the answer was computed against *)
  interior : int;  (** facts fully expanded by the walk *)
  boundary : int;  (** facts clamped at the truncation frontier *)
  hops : int;  (** backward hops explored *)
  factors : int;  (** factor rows in the local subgraph (clamps incl.) *)
  pruned_mass : float;  (** influence discarded at the boundary *)
  truncated : bool;  (** a budget limit cut the walk short *)
  enumerated : bool;  (** solved exactly (vs chromatic Gibbs) *)
  ground_seconds : float;
  infer_seconds : float;
}

(** [query_local ?budget t ~r ~x ~c1 ~y ~c2] answers a point query by
    backward local grounding against the KB's fact indexes (the fact
    closure must have run — e.g. after {!expand} — but no factor graph is
    needed).  Boundary facts are clamped to their extraction prior
    (sigmoid of the weight column; uninformative 0.5 for inferred
    facts).  [None] when the fact is unknown.  With the default unbounded
    budget and a neighbourhood that fits the exact enumerator, the
    marginal is bit-identical to full-closure exact inference.  Emits a
    ["query_local"] span carrying frontier size, hops, pruned mass and
    the grounding/inference latency split.

    @deprecated This is now a thin wrapper over
    [Snapshot.query_local (Snapshot.of_engine t)] — the engine's cached
    live read view.  New code (and anything that shares answers across
    domains) should hold an {!Snapshot.t} explicitly. *)
val query_local :
  ?budget:Grounding.Local.budget ->
  t -> r:int -> x:int -> c1:int -> y:int -> c2:int -> local_answer option

(** {1 Live sessions}

    A session keeps a knowledge base expanded {e continuously}: epochs of
    {!Session.ingest} / {!Session.retract} update [TΠ] and [TΦ]
    incrementally (semi-naive closure for inserts, DRed delete–rederive
    for deletes — see [Incremental.Dred]) instead of re-running the batch
    pipeline, and {!Session.refresh_marginals} re-estimates probabilities
    warm-starting the sampler from the previous epoch wherever the
    updates did not reach. *)

module Session : sig
  type engine := t

  type t

  (** One epoch's ledger entry. *)
  type epoch_stats = {
    epoch : int;
    op : string;
        (** ["ingest" | "retract" | "retract_rules" | "add_rules" |
            "reexpand" | "refresh_marginals"] *)
    inserted : int;
    promoted : int;
    derived : int;
    retracted : int;  (** facts physically removed *)
    cone : int;  (** overdelete cone size *)
    rederived : int;
    violations : int;  (** constraint violations enforced this epoch *)
    facts : int;  (** [TΠ] size after the epoch *)
    factors : int;  (** [TΦ] size after the epoch *)
    wall_seconds : float;
  }

  val dred : t -> Incremental.Dred.t
  val engine : t -> engine
  val kb : t -> Kb.Gamma.t
  val graph : t -> Factor_graph.Fgraph.t

  (** [epoch s] is the number of epochs run so far (0 right after
      {!val:session}; every operation, including a refresh, is one
      epoch). *)
  val epoch : t -> int

  (** [history s] is the per-epoch ledger, oldest first; each epoch is
      also emitted as a snapshot (stage ["session"], point ["epoch"])
      when the trace has a sink installed. *)
  val history : t -> epoch_stats list

  (** [last_run s] is the solve report of the most recent
      {!refresh_marginals}, whatever the configured method ([None] until
      the first refresh). *)
  val last_run : t -> Inference.Marginal.solve_info option

  (** [ingest s facts] inserts extractions [(r, x, c1, y, c2, w)] and
      derives their consequences incrementally.  When the config enables
      semantic constraints, Ω is enforced afterwards {e as a DRed
      retraction with banned keys} — session mode never uses the
      in-closure hook. *)
  val ingest : t -> (int * int * int * int * int * float) list -> epoch_stats

  (** [retract ?ban s ids] removes facts with delete–rederive; see
      [Incremental.Dred.retract]. *)
  val retract : ?ban:bool -> t -> int list -> epoch_stats

  val retract_keys :
    ?ban:bool -> t -> (int * int * int * int * int) list -> epoch_stats

  val retract_rules : t -> remove:(Mln.Clause.t -> bool) -> epoch_stats
  val add_rules : t -> Mln.Clause.t list -> epoch_stats

  (** [reexpand s] runs a full-closure consistency pass (a no-op on a
      closed store). *)
  val reexpand : t -> epoch_stats

  (** [refresh_marginals s] re-estimates marginals over the current
      graph with the configured method ([None] when inference is
      disabled).  With the Chromatic method and [config.warm_start], the
      chain resumes from the previous refresh's final state for every
      variable no epoch has touched since; touched and new variables are
      re-initialized from the seed stream.  The result is deterministic
      for a given (seed, epoch history) at any pool size. *)
  val refresh_marginals : t -> epoch_stats option

  (** A fact as seen through the session. *)
  type fact_view = {
    id : int;
    base : bool;  (** carries extraction (singleton) support *)
    weight : float;  (** extraction confidence; null for inferred facts *)
    marginal : float option;  (** estimate from the last refresh, if any *)
  }

  (** [query s ~r ~x ~c1 ~y ~c2] looks a fact up by key. *)
  val query :
    t -> r:int -> x:int -> c1:int -> y:int -> c2:int -> fact_view option

  (** [marginal s id] is the fact's estimate from the last refresh. *)
  val marginal : t -> int -> float option

  (** [snapshot s] is the frozen snapshot of the session's current
      epoch: every input of the read path — factor rows, fact↔factor
      adjacency, key map, cached marginals — copied out of the live
      state, sharing nothing mutable with later epochs.  Cached until
      the next epoch mutation, so repeated calls between epochs return
      the {e same} snapshot (what [Engine.Writer.publish] hands to
      concurrent readers). *)
  val snapshot : t -> Snapshot.t

  (** [query_local ?budget s ~r ~x ~c1 ~y ~c2] is {!val:query_local}
      over the session's maintained provenance index (graph-walk mode —
      no rule-table probes), clamping each boundary fact to its cached
      marginal from the last {!refresh_marginals} when available, else
      its extraction prior.

      @deprecated This is now a thin wrapper over [Snapshot.query_local]
      on the session's live read view.  Concurrent readers must use
      {!snapshot} (frozen, domain-shareable) instead — this entry point
      reads live session state. *)
  val query_local :
    ?budget:Grounding.Local.budget ->
    t -> r:int -> x:int -> c1:int -> y:int -> c2:int -> local_answer option
end

(** {1 The Snapshot/Writer split}

    The serving layer's MVCC-by-epoch pair: an immutable, domain-shareable
    read arm ({!Snapshot.t}) and the single mutable write arm
    ({!Writer.t}) that commits session epochs and atomically publishes
    each one.  See DESIGN.md §13. *)

(** The [Snapshot] compilation unit re-exported, plus the constructors
    that tie it to engines and sessions. *)
module Snapshot : sig
  type engine := t

  include module type of struct
    include Snapshot
  end

  (** [of_engine t] is the engine's cached live read view (graph-less
      backward walk over the KB indexes; single-threaded — it reads live
      storage).  Rebuilt on demand after any mutation. *)
  val of_engine : engine -> t

  (** [of_session s] is [Session.snapshot s]: the frozen,
      domain-shareable snapshot of the session's current epoch. *)
  val of_session : Session.t -> t
end

(** The write arm: wraps a {!Session.t} (which must no longer be mutated
    by anyone else) and publishes frozen snapshots for concurrent
    readers.  All mutations stay on the owning domain; readers only ever
    touch {!Writer.published}'s result. *)
module Writer : sig
  type t

  (** [of_session s] takes ownership of [s] and publishes its current
      epoch. *)
  val of_session : Session.t -> t

  (** [session w] is the underlying session — mutate it only from the
      writer's own domain, then {!publish}. *)
  val session : t -> Session.t

  (** [published w] is the most recently published snapshot (one atomic
      load; safe from any domain). *)
  val published : t -> Snapshot.t

  (** [publish w] freezes the session's current epoch and atomically
      replaces the published snapshot.  Superseded snapshots are
      reclaimed by the GC once the last reader drops them. *)
  val publish : t -> Snapshot.t

  (** [epoch_lag w] is how many epochs the published snapshot trails the
      session's current epoch (0 right after {!publish}). *)
  val epoch_lag : t -> int
end

(** [session t] expands the knowledge base (epoch 0, the batch pipeline
    of {!expand}) and opens a live session over the result. *)
val session : t -> Session.t

(** [incorporate t facts] adds newly extracted facts
    [(r, x, c1, y, c2, w)] to an already-expanded knowledge base and
    derives {e only their consequences} (delta-driven grounding seeded
    with the insertions) instead of re-running full expansion.  An
    extraction whose fact already exists as an inferred fact promotes it
    (the fact takes the extraction weight, as in
    [Incremental.Dred.ingest]).  Returns [(inserted, inferred)].  Re-run
    {!expand} when a fresh factor graph is needed. *)
val incorporate :
  t -> (int * int * int * int * int * float) list -> int * int
