(** The ProbKB engine — the pipeline of Figure 1.

    The pipeline is exposed as explicit, composable stages sharing one
    trace context: {!expand} (rule cleaning + batch grounding + quality
    control), {!infer} (marginal inference over the ground factor graph),
    and {!store_marginals} (write each inferred fact's probability back
    into the knowledge base, "thereby avoiding query-time computation" —
    paper, Section 2.2).  {!run} is their composition.

    Every stage records into the engine's {!trace} (a no-op unless
    [config.obs] enables it); {!expansion} and {!result} carry the
    aggregated {!Obs.Summary.t} snapshot taken when the stage finished. *)

type t

(** [create ?config kb] wraps a knowledge base.  The KB is mutated by
    expansion (inferred facts are added to [TΠ]).  The engine owns a
    trace context created from [config.obs]. *)
val create : ?config:Config.t -> Kb.Gamma.t -> t

val kb : t -> Kb.Gamma.t
val config : t -> Config.t

(** [trace t] is the engine's trace context — pass it to ad-hoc
    instrumentation, or export it with {!Obs.write_chrome_trace}. *)
val trace : t -> Obs.t

(** [summary t] aggregates everything recorded into the trace so far. *)
val summary : t -> Obs.Summary.t

type expansion = {
  graph : Factor_graph.Fgraph.t;
  iterations : int;
  converged : bool;
  trajectory : Grounding.Ground.trajectory_point list;
      (** per-iteration expansion curve (new facts, totals, violations) *)
  new_fact_count : int;
  removed_by_constraints : int;
  n_factors : int;
  rules_used : int;  (** after rule cleaning *)
  wall_seconds : float;
  sim_seconds : float option;  (** simulated cluster time (MPP engines) *)
  obs : Obs.Summary.t;  (** trace snapshot at the end of the stage *)
}

(** [expand t] grounds the knowledge base (Algorithm 1 + quality
    control). *)
val expand : t -> expansion

(** [infer t e] runs the configured marginal inference over [e]'s factor
    graph; returns fact id → probability (empty when inference is
    disabled). *)
val infer : t -> expansion -> (int, float) Hashtbl.t

(** [infer_full t e] is {!infer} plus the sampler's run report (sweeps
    executed, early-stop sweep, final online diagnostics) when the
    configured method is Chromatic.  The config's [target_r_hat] /
    [min_ess] criteria and [checkpoint_sweeps] cadence are applied
    here. *)
val infer_full :
  t -> expansion -> (int, float) Hashtbl.t * Inference.Chromatic.run_info option

(** [store_marginals t marginals] writes each probability into the weight
    column of the corresponding (inferred) fact.  Returns how many facts
    were updated. *)
val store_marginals : t -> (int, float) Hashtbl.t -> int

type result = {
  expansion : expansion;
  marginals_stored : int;
  inference : Inference.Chromatic.run_info option;
      (** sampler run report (Chromatic method only) *)
  obs : Obs.Summary.t;  (** trace snapshot over the whole pipeline *)
}

(** [run t] is [expand] + [infer] + [store_marginals]. *)
val run : t -> result

(** [incorporate t facts] adds newly extracted facts
    [(r, x, c1, y, c2, w)] to an already-expanded knowledge base and
    derives {e only their consequences} (delta-driven grounding seeded
    with the insertions) instead of re-running full expansion.  Returns
    [(inserted, inferred)].  Re-run {!expand} when a fresh factor graph is
    needed. *)
val incorporate :
  t -> (int * int * int * int * int * float) list -> int * int
