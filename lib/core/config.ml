type engine = Single_node | Mpp of { cluster : Mpp.Cluster.t; views : bool }
type quality = { semantic_constraints : bool; rule_theta : float }

type t = {
  engine : engine;
  quality : quality;
  max_iterations : int;
  inference : Inference.Marginal.method_ option;
  obs : Obs.Config.t;
}

let make ?(engine = Single_node) ?(semantic_constraints = false)
    ?(rule_theta = 1.0) ?(max_iterations = 15)
    ?(inference =
      Some (Inference.Marginal.Gibbs Inference.Gibbs.default_options))
    ?(obs = Obs.Config.default) () =
  {
    engine;
    quality = { semantic_constraints; rule_theta };
    max_iterations;
    inference;
    obs;
  }

let default = make ()
let no_inference c = { c with inference = None }
let with_engine engine c = { c with engine }
let with_quality quality c = { c with quality }
let with_max_iterations max_iterations c = { c with max_iterations }
let with_inference inference c = { c with inference }
let with_obs obs c = { c with obs }
let domains = Pool.env_domains
