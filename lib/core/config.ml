type engine = Single_node | Mpp of { cluster : Mpp.Cluster.t; views : bool }
type quality = { semantic_constraints : bool; rule_theta : float }

type t = {
  engine : engine;
  quality : quality;
  max_iterations : int;
  inference : Inference.Marginal.method_ option;
  obs : Obs.Config.t;
  target_r_hat : float option;
  min_ess : float option;
  checkpoint_sweeps : int;
  warm_start : bool;
}

let make ?(engine = Single_node) ?(semantic_constraints = false)
    ?(rule_theta = 1.0) ?(max_iterations = 15)
    ?(inference =
      Some (Inference.Marginal.Gibbs Inference.Gibbs.default_options))
    ?(obs = Obs.Config.default) ?target_r_hat ?min_ess
    ?(checkpoint_sweeps = Inference.Chromatic.default_checkpoint)
    ?(warm_start = true) () =
  if checkpoint_sweeps < 1 then invalid_arg "Config.make: checkpoint_sweeps < 1";
  {
    engine;
    quality = { semantic_constraints; rule_theta };
    max_iterations;
    inference;
    obs;
    target_r_hat;
    min_ess;
    checkpoint_sweeps;
    warm_start;
  }

let default = make ()
let no_inference c = { c with inference = None }
let with_engine engine c = { c with engine }
let with_quality quality c = { c with quality }
let with_max_iterations max_iterations c = { c with max_iterations }
let with_inference inference c = { c with inference }
let with_obs obs c = { c with obs }
let with_warm_start warm_start c = { c with warm_start }

let with_early_stop ?target_r_hat ?min_ess c =
  { c with target_r_hat; min_ess }

(* Early stop is requested when either criterion is set; the other one
   defaults to a value that always holds. *)
let early_stop_criteria c =
  match (c.target_r_hat, c.min_ess) with
  | None, None -> None
  | tr, me ->
    Some
      {
        Inference.Diagnostics.Online.target_r_hat =
          Option.value tr ~default:Float.infinity;
        min_ess = Option.value me ~default:0.;
      }

let domains = Pool.env_domains
