type engine = Single_node | Mpp of { cluster : Mpp.Cluster.t; views : bool }
type quality = { semantic_constraints : bool; rule_theta : float }

type t = {
  engine : engine;
  quality : quality;
  max_iterations : int;
  inference : Inference.Marginal.method_ option;
  obs : Obs.Config.t;
  target_r_hat : float option;
  min_ess : float option;
  checkpoint_sweeps : int;
  warm_start : bool;
  exact_max_vars : int;
  max_width : int;
  spill_dir : string option;
  segment_rows : int;
  spill_threshold_bytes : int;
}

(* The enumerator allocates nothing per world but loops over [2^k]
   assignments; past 30 the shift itself would overflow long before the
   loop ever finished. *)
let max_exact_max_vars = 30

(* Elimination cliques hold width + 1 variables, so the width bound must
   sit one under [Jtree]'s clique-size guard — past it every "eliminable"
   component would abort on table allocation instead of being solved
   (and a 28-variable clique is already a 2 GiB float table). *)
let max_max_width = Inference.Jtree.max_clique_vars - 1

let make ?(engine = Single_node) ?(semantic_constraints = false)
    ?(rule_theta = 1.0) ?(max_iterations = 15)
    ?(inference =
      Some (Inference.Marginal.Gibbs Inference.Gibbs.default_options))
    ?(obs = Obs.Config.default) ?target_r_hat ?min_ess
    ?(checkpoint_sweeps = Inference.Chromatic.default_checkpoint)
    ?(warm_start = true) ?(exact_max_vars = Inference.Exact.max_vars)
    ?(max_width = Inference.Jtree.default_max_width) ?(hybrid = false)
    ?spill_dir ?(segment_rows = Storage.Spill.default_segment_rows)
    ?(spill_threshold_bytes = Storage.Spill.default_threshold_bytes) () =
  if checkpoint_sweeps < 1 then invalid_arg "Config.make: checkpoint_sweeps < 1";
  if segment_rows < 1 then invalid_arg "Config.make: segment_rows < 1";
  if spill_threshold_bytes < 0 then
    invalid_arg "Config.make: spill_threshold_bytes < 0";
  if exact_max_vars < 0 || exact_max_vars > max_exact_max_vars then
    invalid_arg
      (Printf.sprintf "Config.make: exact_max_vars must be in [0, %d]"
         max_exact_max_vars);
  if max_width < 0 || max_width > max_max_width then
    invalid_arg
      (Printf.sprintf "Config.make: max_width must be in [0, %d]"
         max_max_width);
  (* [~hybrid:true] upgrades the batch inference method to the
     per-component dispatcher, reusing the sampler options already
     chosen for the residual cores.  [Exact] and [Bp] are left alone —
     they are explicit requests for one specific engine. *)
  let inference =
    if not hybrid then inference
    else
      Option.map
        (fun m ->
          match m with
          | Inference.Marginal.Gibbs o | Inference.Marginal.Chromatic o ->
            Inference.Marginal.Hybrid
              { Inference.Hybrid.exact_max_vars; max_width; gibbs = o }
          | Inference.Marginal.Hybrid o ->
            Inference.Marginal.Hybrid
              { o with Inference.Hybrid.exact_max_vars; max_width }
          | (Inference.Marginal.Exact | Inference.Marginal.Bp _) as m -> m)
        inference
  in
  {
    engine;
    quality = { semantic_constraints; rule_theta };
    max_iterations;
    inference;
    obs;
    target_r_hat;
    min_ess;
    checkpoint_sweeps;
    warm_start;
    exact_max_vars;
    max_width;
    spill_dir;
    segment_rows;
    spill_threshold_bytes;
  }

let default = make ()
let no_inference c = { c with inference = None }
let with_engine engine c = { c with engine }
let with_quality quality c = { c with quality }
let with_max_iterations max_iterations c = { c with max_iterations }
let with_inference inference c = { c with inference }
let with_obs obs c = { c with obs }
let with_warm_start warm_start c = { c with warm_start }
let with_exact_max_vars exact_max_vars c = { c with exact_max_vars }
let with_max_width max_width c = { c with max_width }

let with_spill ?spill_dir ?segment_rows ?spill_threshold_bytes c =
  let segment_rows = Option.value segment_rows ~default:c.segment_rows in
  let spill_threshold_bytes =
    Option.value spill_threshold_bytes ~default:c.spill_threshold_bytes
  in
  if segment_rows < 1 then invalid_arg "Config.with_spill: segment_rows < 1";
  if spill_threshold_bytes < 0 then
    invalid_arg "Config.with_spill: spill_threshold_bytes < 0";
  { c with spill_dir; segment_rows; spill_threshold_bytes }

(* The shared spill policy of one engine run — its atomic directory
   counter is what keeps concurrent spills from colliding, so build it
   once per run, not per spill site. *)
let spill_policy c =
  Option.map
    (fun root ->
      Storage.Spill.create ~segment_rows:c.segment_rows
        ~threshold_bytes:c.spill_threshold_bytes ~root ())
    c.spill_dir

let with_early_stop ?target_r_hat ?min_ess c =
  { c with target_r_hat; min_ess }

(* Early stop is requested when either criterion is set; the other one
   defaults to a value that always holds. *)
let early_stop_criteria c =
  match (c.target_r_hat, c.min_ess) with
  | None, None -> None
  | tr, me ->
    Some
      {
        Inference.Diagnostics.Online.target_r_hat =
          Option.value tr ~default:Float.infinity;
        min_ess = Option.value me ~default:0.;
      }

let domains = Pool.env_domains
