type engine = Single_node | Mpp of { cluster : Mpp.Cluster.t; views : bool }
type quality = { semantic_constraints : bool; rule_theta : float }

type t = {
  engine : engine;
  quality : quality;
  max_iterations : int;
  inference : Inference.Marginal.method_ option;
}

let default =
  {
    engine = Single_node;
    quality = { semantic_constraints = false; rule_theta = 1.0 };
    max_iterations = 15;
    inference = Some (Inference.Marginal.Gibbs Inference.Gibbs.default_options);
  }

let no_inference c = { c with inference = None }

let domains = Pool.env_domains
