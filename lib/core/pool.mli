(** A fixed-size domain pool for shared-memory parallelism.

    OCaml 5 gives the runtime real parallelism through [Domain]s; this
    module owns a small set of long-lived worker domains and hands them
    chunked work: the probe side of a partitioned hash join, the colour
    classes of the chromatic Gibbs schedule, the per-segment plans of the
    simulated MPP cluster.

    Design constraints, in order:

    - A pool of size 1 spawns no domains and runs every submission inline
      on the caller, so the default configuration ([PROBKB_DOMAINS] unset)
      is byte-for-byte the old single-threaded engine.
    - Submissions are synchronous barriers: when {!run}, {!parallel_for}
      or {!map_reduce} returns, all work (and all its writes) is visible
      to the caller — the mutex handoff provides the happens-before edge.
    - The pool is not reentrant.  A nested submission (a parallel join
      issued from inside a parallel grounding query) detects that the pool
      is busy and degrades to inline sequential execution instead of
      deadlocking.
    - Worker domains are spawned lazily on the first real submission, so
      merely creating (or defaulting) a pool costs nothing. *)

type t

(** [create n] is a pool that runs submissions on [n] domains ([n - 1]
    workers plus the submitting domain).  [n <= 1] gives the inline pool.
    Workers are spawned on first use; if the runtime refuses a spawn (it
    caps live domains at 128), the pool degrades to the workers it got —
    the missing worker indexes run on the caller — rather than raising.
    @raise Invalid_argument if [n < 1] or [n > 1024]. *)
val create : int -> t

(** [size t] is the number of domains the pool schedules over (>= 1). *)
val size : t -> int

(** [shutdown t] stops and joins the worker domains.  Subsequent
    submissions run inline sequentially.  Idempotent. *)
val shutdown : t -> unit

(** [run t f] executes [f w] for every worker index [w] in
    [0 .. size t - 1], [f 0] on the calling domain, and waits for all of
    them.  If any [f w] raises, one of the exceptions is re-raised after
    the barrier.  If the pool is busy (nested submission) or stopped, the
    calls run inline sequentially. *)
val run : t -> (int -> unit) -> unit

(** [parallel_for t ~n f] executes [f i] for every [i] in [0 .. n - 1],
    dynamically scheduled over the pool.  The iterations must be
    independent (write disjoint state); their execution order is
    unspecified. *)
val parallel_for : t -> n:int -> (int -> unit) -> unit

(** [map_reduce t ~n ~map ~fold ~init] computes
    [fold (... (fold init (map 0)) ...) (map (n - 1))]: the [map]s run in
    parallel over the pool, the [fold] runs on the calling domain in
    index order, so the result is deterministic whenever [map] is. *)
val map_reduce :
  t -> n:int -> map:(int -> 'a) -> fold:('acc -> 'a -> 'acc) -> init:'acc ->
  'acc

(** [env_domains ()] is the pool size requested by the [PROBKB_DOMAINS]
    environment variable; 1 when unset or unparsable, clamped to the
    runtime's 128-domain limit. *)
val env_domains : unit -> int

(** [get_default ()] is the process-wide pool, created on first use with
    {!env_domains} domains.  The relational operators, the chromatic
    sampler and the MPP executor all draw on it unless handed an explicit
    pool. *)
val get_default : unit -> t

(** [set_default_size n] replaces the process-wide pool with a fresh pool
    of [n] domains, shutting the previous one down.  Used by the benchmark
    harness to sweep domain counts inside one process. *)
val set_default_size : int -> unit
