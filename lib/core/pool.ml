type t = {
  size : int;
  mutex : Mutex.t;
  ready : Condition.t;  (* a new generation was published *)
  finished : Condition.t;  (* pending dropped to 0 *)
  mutable job : int -> unit;
  mutable generation : int;
  mutable pending : int;
  mutable error : exn option;
  mutable stopping : bool;
  mutable busy : bool;
  mutable workers : unit Domain.t array;  (* [||] until first submission *)
  mutable spawn_failed : bool;  (* runtime refused a domain; don't retry *)
}

let no_job (_ : int) = ()

let create n =
  if n < 1 || n > 1024 then invalid_arg "Pool.create: size must be in 1..1024";
  {
    size = n;
    mutex = Mutex.create ();
    ready = Condition.create ();
    finished = Condition.create ();
    job = no_job;
    generation = 0;
    pending = 0;
    error = None;
    stopping = false;
    busy = false;
    workers = [||];
    spawn_failed = false;
  }

let size t = t.size

(* [gen0] is the generation at spawn time, captured while the spawner held
   the mutex: the worker must treat any later generation as new work, even
   one published before it first acquires the mutex. *)
let worker_loop t w gen0 =
  Mutex.lock t.mutex;
  let seen = ref gen0 in
  let rec loop () =
    while (not t.stopping) && t.generation = !seen do
      Condition.wait t.ready t.mutex
    done;
    if t.stopping then Mutex.unlock t.mutex
    else begin
      seen := t.generation;
      let job = t.job in
      Mutex.unlock t.mutex;
      let err = (try job w; None with e -> Some e) in
      Mutex.lock t.mutex;
      (match err with
      | Some e when t.error = None -> t.error <- Some e
      | _ -> ());
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.finished;
      loop ()
    end
  in
  loop ()

(* Must be called with [t.mutex] held.  The OCaml runtime caps live
   domains (Max_domains, 128); if a spawn is refused the pool keeps the
   workers it got and [run] covers the missing worker indexes on the
   caller instead of crashing. *)
let ensure_workers t =
  if Array.length t.workers = 0 && not t.spawn_failed then begin
    let gen0 = t.generation in
    let ws = ref [] in
    (try
       for i = 1 to t.size - 1 do
         ws := Domain.spawn (fun () -> worker_loop t i gen0) :: !ws
       done
     with _ -> t.spawn_failed <- true);
    t.workers <- Array.of_list (List.rev !ws)
  end

let run_inline t f =
  for w = 0 to t.size - 1 do
    f w
  done

let run t f =
  if t.size <= 1 then f 0
  else begin
    Mutex.lock t.mutex;
    if t.busy || t.stopping then begin
      (* Nested submission: the pool's domains are already working for an
         enclosing parallel region, so this region runs inline. *)
      Mutex.unlock t.mutex;
      run_inline t f
    end
    else begin
      t.busy <- true;
      ensure_workers t;
      let live = Array.length t.workers in
      t.job <- f;
      t.error <- None;
      t.pending <- live;
      t.generation <- t.generation + 1;
      Condition.broadcast t.ready;
      Mutex.unlock t.mutex;
      let main_err =
        try
          f 0;
          (* Worker indexes the runtime refused to spawn still run (on the
             caller), so [run]'s contract holds even degraded. *)
          for w = live + 1 to t.size - 1 do
            f w
          done;
          None
        with e -> Some e
      in
      Mutex.lock t.mutex;
      while t.pending > 0 do
        Condition.wait t.finished t.mutex
      done;
      let worker_err = t.error in
      t.job <- no_job;
      t.error <- None;
      t.busy <- false;
      Mutex.unlock t.mutex;
      match main_err, worker_err with
      | Some e, _ | None, Some e -> raise e
      | None, None -> ()
    end
  end

let shutdown t =
  if t.size > 1 then begin
    Mutex.lock t.mutex;
    t.stopping <- true;
    Condition.broadcast t.ready;
    let workers = t.workers in
    t.workers <- [||];
    Mutex.unlock t.mutex;
    Array.iter Domain.join workers
  end

let parallel_for t ~n f =
  if n > 0 then
    if t.size <= 1 || n = 1 then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      let next = Atomic.make 0 in
      run t (fun _w ->
          let rec go () =
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              f i;
              go ()
            end
          in
          go ())
    end

let map_reduce t ~n ~map ~fold ~init =
  if n <= 0 then init
  else if t.size <= 1 || n = 1 then begin
    let acc = ref init in
    for i = 0 to n - 1 do
      acc := fold !acc (map i)
    done;
    !acc
  end
  else begin
    let results = Array.make n None in
    parallel_for t ~n (fun i -> results.(i) <- Some (map i));
    Array.fold_left
      (fun acc r ->
        match r with Some v -> fold acc v | None -> assert false)
      init results
  end

let env_domains () =
  match Sys.getenv_opt "PROBKB_DOMAINS" with
  | None -> 1
  | Some s ->
    (* 128 is the runtime's Max_domains; asking for more can only fail. *)
    (match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> min n 128
    | _ -> 1)

let default_pool = ref None

let get_default () =
  match !default_pool with
  | Some p -> p
  | None ->
    let p = create (env_domains ()) in
    default_pool := Some p;
    p

let set_default_size n =
  (match !default_pool with Some p -> shutdown p | None -> ());
  default_pool := Some (create n)
