(** ProbKB — knowledge expansion over probabilistic knowledge bases.

    The public face of the library.  A typical session:

    {[
      let kb = Kb.Gamma.create () in
      ignore (Kb.Loader.load_facts_file kb "facts.tsv");
      ignore (Kb.Loader.load_rules_file kb "rules.mln");
      ignore (Kb.Loader.load_constraints_file kb "constraints.tsv");
      let engine = Probkb.Engine.create kb in
      let result = Probkb.Engine.run engine in
      ...
    ]}

    See {!Engine} for the pipeline, {!Config} for the engine / quality /
    inference knobs, and the underlying libraries ([Kb], [Mln],
    [Grounding], [Quality], [Inference], [Mpp], [Tuffy], [Workload]) for
    the components. *)

module Config = Config
module Engine = Engine

module Snapshot = Engine.Snapshot
(** The immutable read arm ({!Engine.Snapshot} re-exported at the top
    level): frozen epoch snapshots shareable across domains, plus the
    engine/session live views. *)

module Report = Report
module Obs = Obs
