module Storage = Kb.Storage
module Table = Relational.Table
module Fgraph = Factor_graph.Fgraph
module Local = Grounding.Local

type view = {
  id : int;
  base : bool;
  weight : float;
  marginal : float option;
}

type answer = {
  id : int;
  marginal : float;
  epoch : int;
  interior : int;
  boundary : int;
  hops : int;
  factors : int;
  pruned_mass : float;
  truncated : bool;
  enumerated : bool;
  ground_seconds : float;
  infer_seconds : float;
}

type stats = {
  epoch : int;
  facts : int;
  factors : int;
  marginals_cached : int;
  frozen : bool;
}

type t = {
  epoch : int;
  frozen : bool;
  source : Local.source;
  clamp : int -> float;
  find : r:int -> x:int -> c1:int -> y:int -> c2:int -> int option;
  view_of : int -> view option;
  marginal_of : int -> float option;
  facts : unit -> int;
  factors : unit -> int;
  marginals_cached : unit -> int;
  gibbs : Inference.Gibbs.options;
  exact_max_vars : int;  (* enumeration cap for neighbourhood dispatch *)
  max_width : int;  (* induced-width bound for variable elimination *)
  trace : Obs.t;
  fingerprint : (int * (unit -> int)) option;
      (* frozen only: hash taken at freeze time + re-hash of the copied
         factor arrays — equality is proof no writer tore through state
         the snapshot still references *)
}

let sigmoid w = 1. /. (1. +. exp (-.w))

let debug_checks =
  lazy
    (match Sys.getenv_opt "PROBKB_DEBUG" with
    | Some ("" | "0") | None -> false
    | Some _ -> true)

let epoch t = t.epoch
let frozen t = t.frozen

let stats t =
  {
    epoch = t.epoch;
    facts = t.facts ();
    factors = t.factors ();
    marginals_cached = t.marginals_cached ();
    frozen = t.frozen;
  }

let find t = t.find
let view t id = t.view_of id
let marginal t id = t.marginal_of id

let verify_integrity t =
  match t.fingerprint with
  | None -> true
  | Some (taken, rehash) -> rehash () = taken

(* ------------------------------------------------------------------ *)
(* Construction *)

let live ?(epoch = 0) ?(gibbs = Inference.Gibbs.default_options)
    ?(exact_max_vars = Inference.Exact.max_vars)
    ?(max_width = Inference.Jtree.default_max_width) ?(obs = Obs.null)
    ?(marginal_of = fun _ -> None) ?(view_of = fun _ -> None) ~source ~clamp
    ~find ~facts ~factors () =
  {
    epoch;
    frozen = false;
    source;
    clamp;
    find;
    view_of;
    marginal_of;
    facts;
    factors;
    marginals_cached = (fun () -> 0);
    gibbs;
    exact_max_vars;
    max_width;
    trace = obs;
    fingerprint = None;
  }

(* FNV-1a over the copied factor arrays: cheap, deterministic, and any
   in-place mutation of a row the snapshot references moves it. *)
let fingerprint_of ~fi1 ~fi2 ~fi3 ~fw =
  let h = ref 0x3f29ce484222325 in
  let mix v =
    h := (!h lxor v) * 0x100000001b3
  in
  let n = Array.length fi1 in
  mix n;
  for f = 0 to n - 1 do
    mix fi1.(f);
    mix fi2.(f);
    mix fi3.(f);
    mix (Int64.to_int (Int64.bits_of_float fw.(f)))
  done;
  !h land max_int

let freeze ?(epoch = 0) ?marginals ?(gibbs = Inference.Gibbs.default_options)
    ?(exact_max_vars = Inference.Exact.max_vars)
    ?(max_width = Inference.Jtree.default_max_width) ?(obs = Obs.null) ~pi
    ~graph () =
  (* Copy the factor rows: frozen snapshots must not alias the live
     graph ([Fgraph.retain] splices it in place under later epochs). *)
  let n = Fgraph.size graph in
  let fi1 = Array.make n 0
  and fi2 = Array.make n 0
  and fi3 = Array.make n 0
  and fw = Array.make n 0.0 in
  Fgraph.iter
    (fun f (i1, i2, i3, w) ->
      fi1.(f) <- i1;
      fi2.(f) <- i2;
      fi3.(f) <- i3;
      fw.(f) <- w)
    graph;
  (* Fact↔factor adjacency over the copy — same shape as
     [Local.adjacency_of_graph], so the walk behaves identically. *)
  let derives = Hashtbl.create 256
  and supports = Hashtbl.create 256
  and singleton = Hashtbl.create 256 in
  let push tbl k v =
    Hashtbl.replace tbl k
      (v :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
  in
  for f = 0 to n - 1 do
    let i1 = fi1.(f) and i2 = fi2.(f) and i3 = fi3.(f) in
    if i2 = Fgraph.null && i3 = Fgraph.null then Hashtbl.replace singleton i1 f
    else begin
      push derives i1 f;
      if i2 <> Fgraph.null then push supports i2 f;
      if i3 <> Fgraph.null && i3 <> i2 then push supports i3 f
    end
  done;
  let iter_of tbl id k =
    match Hashtbl.find tbl id with
    | fs -> List.iter k fs
    | exception Not_found -> ()
  in
  let adj =
    {
      Local.iter_derivations = iter_of derives;
      iter_supports = iter_of supports;
      singleton_of = (fun id -> Hashtbl.find_opt singleton id);
      factor_of = (fun f -> (fi1.(f), fi2.(f), fi3.(f), fw.(f)));
    }
  in
  (* Key map and weight column for the facts live at snapshot time.
     [Storage.iter] still exposes tombstoned rows while a delete batch is
     pending, so each key is confirmed through [Storage.find]. *)
  let keys = Hashtbl.create (max 16 (Storage.size pi)) in
  let weights = Hashtbl.create (max 16 (Storage.size pi)) in
  Storage.iter
    (fun ~id ~r ~x ~c1 ~y ~c2 ~w ->
      match Storage.find pi ~r ~x ~c1 ~y ~c2 with
      | Some live_id when live_id = id ->
        Hashtbl.replace keys (r, x, c1, y, c2) id;
        if not (Table.is_null_weight w) then Hashtbl.replace weights id w
      | Some _ | None -> ())
    pi;
  let marg =
    match marginals with
    | None -> Hashtbl.create 16
    | Some m -> Hashtbl.copy m
  in
  let clamp id =
    match Hashtbl.find_opt marg id with
    | Some p -> p
    | None -> (
      match Hashtbl.find_opt singleton id with
      | Some f -> sigmoid fw.(f)
      | None -> 0.5)
  in
  let view_of id =
    let base = Hashtbl.mem singleton id in
    let known =
      base || Hashtbl.mem weights id
      || Hashtbl.mem derives id || Hashtbl.mem supports id
    in
    if not known then None
    else
      Some
        {
          id;
          base;
          weight =
            Option.value ~default:Table.null_weight
              (Hashtbl.find_opt weights id);
          marginal = Hashtbl.find_opt marg id;
        }
  in
  let taken = fingerprint_of ~fi1 ~fi2 ~fi3 ~fw in
  {
    epoch;
    frozen = true;
    source = Local.of_adjacency adj;
    clamp;
    find =
      (fun ~r ~x ~c1 ~y ~c2 -> Hashtbl.find_opt keys (r, x, c1, y, c2));
    view_of;
    marginal_of = (fun id -> Hashtbl.find_opt marg id);
    facts = (fun () -> Hashtbl.length keys);
    factors = (fun () -> n);
    marginals_cached = (fun () -> Hashtbl.length marg);
    gibbs;
    exact_max_vars;
    max_width;
    trace = obs;
    fingerprint = Some (taken, fun () -> fingerprint_of ~fi1 ~fi2 ~fi3 ~fw);
  }

(* ------------------------------------------------------------------ *)
(* The solve path: local grounding walk → boundary clamp → compile →
   exact-or-sampled inference, under one "query_local" span whose end
   attributes carry the frontier/pruning/latency breakdown.  This is
   the one implementation behind [Engine.query_local],
   [Session.query_local] and the serving layer. *)

let answer_by_id ?budget t id =
  if t.frozen && Lazy.force debug_checks && not (verify_integrity t) then
    invalid_arg
      "Snapshot.answer_by_id: torn read — frozen state mutated under the \
       snapshot";
  let sp = Obs.begin_span ~cat:"engine" t.trace "query_local" in
  match
    let t0 = Relational.Stats.now () in
    let r = Local.run ?budget t.source ~query:id in
    let ground_seconds = Relational.Stats.now () -. t0 in
    Inference.Neighborhood.clamp_boundary r.Local.graph
      ~boundary:r.Local.boundary ~prob:t.clamp;
    let t1 = Relational.Stats.now () in
    let c = Fgraph.compile r.Local.graph in
    let marg, method_used =
      Inference.Neighborhood.solve ~obs:t.trace ~options:t.gibbs
        ~exact_max_vars:t.exact_max_vars ~max_width:t.max_width c
    in
    let infer_seconds = Relational.Stats.now () -. t1 in
    let marginal =
      match Hashtbl.find_opt c.Fgraph.var_of_id id with
      | Some v -> marg.(v)
      | None -> 0.5 (* no factor mentions the fact: uniform *)
    in
    Obs.add_time t.trace "query_local.ground_seconds" ground_seconds;
    Obs.add_time t.trace "query_local.infer_seconds" infer_seconds;
    (* Latency and frontier-size distributions — ProPPR-style budgeted
       inference costs vary wildly per query, which totals hide. *)
    Obs.observe t.trace "query_local.seconds"
      (ground_seconds +. infer_seconds);
    Obs.observe t.trace "query_local.ground_seconds_dist" ground_seconds;
    Obs.observe t.trace "query_local.infer_seconds_dist" infer_seconds;
    Obs.observe t.trace "query_local.factors_dist"
      (float_of_int (Fgraph.size r.Local.graph));
    {
      id;
      marginal;
      epoch = t.epoch;
      interior = Array.length r.Local.interior;
      boundary = Array.length r.Local.boundary;
      hops = r.Local.hops;
      factors = Fgraph.size r.Local.graph;
      pruned_mass = r.Local.pruned_mass;
      truncated = r.Local.truncated;
      enumerated = method_used = Inference.Neighborhood.Enumerated;
      ground_seconds;
      infer_seconds;
    }
  with
  | ans ->
    Obs.end_span t.trace sp
      ~attrs:
        [
          ("epoch", Obs.I t.epoch);
          ("interior", Obs.I ans.interior);
          ("boundary", Obs.I ans.boundary);
          ("hops", Obs.I ans.hops);
          ("factors", Obs.I ans.factors);
          ("pruned_mass", Obs.F ans.pruned_mass);
          ("truncated", Obs.S (if ans.truncated then "true" else "false"));
          ("ground_seconds", Obs.F ans.ground_seconds);
          ("infer_seconds", Obs.F ans.infer_seconds);
        ];
    ans
  | exception e ->
    Obs.end_span t.trace sp ~attrs:[ ("error", Obs.S "raised") ];
    raise e

let query_local ?budget t ~r ~x ~c1 ~y ~c2 =
  match t.find ~r ~x ~c1 ~y ~c2 with
  | None -> None
  | Some id -> Some (answer_by_id ?budget t id)
