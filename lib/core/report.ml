module Json = Obs.Json

let trajectory_point_to_json (p : Grounding.Ground.trajectory_point) =
  Json.Obj
    [
      ("iteration", Json.Int p.Grounding.Ground.iteration);
      ("new_facts", Json.Int p.Grounding.Ground.new_facts);
      ("total_facts", Json.Int p.Grounding.Ground.total_facts);
      ("violations", Json.Int p.Grounding.Ground.violations);
      ("removed", Json.Int p.Grounding.Ground.removed);
    ]

let trajectory_to_json traj = Json.List (List.map trajectory_point_to_json traj)

(* Text plot of the expansion curve: one bar per iteration, scaled to the
   largest new-fact count (the Figure 7-style quality-over-iterations
   view, in a terminal). *)
let pp_trajectory ppf (traj : Grounding.Ground.trajectory_point list) =
  match traj with
  | [] -> ()
  | _ ->
    let width = 40 in
    let peak =
      List.fold_left
        (fun m (p : Grounding.Ground.trajectory_point) ->
          max m p.Grounding.Ground.new_facts)
        1 traj
    in
    Format.fprintf ppf "@[<v>expansion trajectory (■ = new facts):@,";
    List.iter
      (fun (p : Grounding.Ground.trajectory_point) ->
        let open Grounding.Ground in
        let bar = p.new_facts * width / peak in
        let extras =
          if p.violations > 0 || p.removed > 0 then
            Printf.sprintf "  %d violations, -%d" p.violations p.removed
          else ""
        in
        Format.fprintf ppf "  %2d %s +%-6d total %d%s@," p.iteration
          (String.concat "" (List.init bar (fun _ -> "\xe2\x96\xa0")))
          p.new_facts p.total_facts extras)
      traj;
    Format.fprintf ppf "@]"

(* The Chromatic JSON keys ([sweeps_run], [stopped_at_sweep],
   [diagnostics]) are stable: downstream consumers grep for them. *)
let chromatic_to_json (i : Inference.Chromatic.run_info) =
  [
    ("sweeps_run", Json.Int i.Inference.Chromatic.sweeps_run);
    ( "stopped_at_sweep",
      match i.Inference.Chromatic.stopped_at_sweep with
      | Some s -> Json.Int s
      | None -> Json.Null );
    ( "diagnostics",
      match i.Inference.Chromatic.diag with
      | Some d ->
        Json.Obj
          [
            ("sweeps", Json.Int d.Inference.Diagnostics.Online.sweeps);
            ("max_r_hat", Json.Float d.Inference.Diagnostics.Online.max_r_hat);
            ("min_ess", Json.Float d.Inference.Diagnostics.Online.min_ess);
          ]
      | None -> Json.Null );
  ]

let inference_to_json (i : Inference.Marginal.solve_info) =
  match i with
  | Inference.Marginal.Enumerated_run { components; max_component_vars } ->
    Json.Obj
      [
        ("method", Json.String "exact");
        ("components", Json.Int components);
        ("max_component_vars", Json.Int max_component_vars);
      ]
  | Inference.Marginal.Gibbs_run { sweeps } ->
    Json.Obj
      [ ("method", Json.String "gibbs"); ("sweeps", Json.Int sweeps) ]
  | Inference.Marginal.Chromatic_run c ->
    Json.Obj (("method", Json.String "chromatic") :: chromatic_to_json c)
  | Inference.Marginal.Bp_run s ->
    Json.Obj
      [
        ("method", Json.String "bp");
        ("iterations", Json.Int s.Inference.Bp.iterations);
        ("converged", Json.Bool s.Inference.Bp.converged);
        ("max_delta", Json.Float s.Inference.Bp.max_delta);
      ]
  | Inference.Marginal.Hybrid_run r ->
    let open Inference.Hybrid in
    Json.Obj
      [
        ("method", Json.String "hybrid");
        ("total_vars", Json.Int r.total_vars);
        ("exact_vars", Json.Int r.exact_vars);
        ("sampled_vars", Json.Int r.sampled_vars);
        ("exact_fraction", Json.Float (exact_fraction r));
        ("enumerated_components", Json.Int r.enumerated_components);
        ("eliminated_components", Json.Int r.eliminated_components);
        ("sampled_components", Json.Int r.sampled_components);
        ("max_width_solved", Json.Int r.max_width_solved);
        ("exact_seconds", Json.Float r.exact_seconds);
        ("gibbs_seconds", Json.Float r.gibbs_seconds);
        ( "sampler",
          match r.gibbs with
          | Some c -> Json.Obj (chromatic_to_json c)
          | None -> Json.Null );
      ]

let pp_chromatic ppf (i : Inference.Chromatic.run_info) =
  let open Inference.Chromatic in
  Format.fprintf ppf "sampler: %d sweeps%s" i.sweeps_run
    (match i.stopped_at_sweep with
    | Some s -> Printf.sprintf " (early stop at %d)" s
    | None -> "");
  match i.diag with
  | Some d ->
    Format.fprintf ppf ", R-hat %.4f, ESS %.0f"
      d.Inference.Diagnostics.Online.max_r_hat
      d.Inference.Diagnostics.Online.min_ess
  | None -> ()

let pp_inference ppf (i : Inference.Marginal.solve_info) =
  match i with
  | Inference.Marginal.Enumerated_run { components; max_component_vars } ->
    Format.fprintf ppf "exact: %d components enumerated (largest %d vars)"
      components max_component_vars
  | Inference.Marginal.Gibbs_run { sweeps } ->
    Format.fprintf ppf "sampler: %d sweeps (sequential Gibbs)" sweeps
  | Inference.Marginal.Chromatic_run c -> pp_chromatic ppf c
  | Inference.Marginal.Bp_run s ->
    Format.fprintf ppf "bp: %d iterations%s, max delta %.2e"
      s.Inference.Bp.iterations
      (if s.Inference.Bp.converged then " (converged)" else "")
      s.Inference.Bp.max_delta
  | Inference.Marginal.Hybrid_run r ->
    let open Inference.Hybrid in
    Format.fprintf ppf
      "hybrid: %.1f%% of %d variables settled exactly@,\
      \  components: %d enumerated, %d junction-tree (max width %d), %d \
       sampled@,\
      \  time: %.3fs exact, %.3fs gibbs"
      (100. *. exact_fraction r)
      r.total_vars r.enumerated_components r.eliminated_components
      r.max_width_solved r.sampled_components r.exact_seconds r.gibbs_seconds;
    match r.gibbs with
    | Some c -> Format.fprintf ppf "@,  %a" pp_chromatic c
    | None -> ()

let pp_expansion ppf (e : Engine.expansion) =
  Format.fprintf ppf
    "@[<v>expansion: %d iterations%s, %d rules applied@,\
     facts: +%d inferred, %d removed by constraints@,\
     factors: %d@,\
     time: %.2fs wall%s@]"
    e.Engine.iterations
    (if e.Engine.converged then " (converged)" else " (budget hit)")
    e.Engine.rules_used e.Engine.new_fact_count e.Engine.removed_by_constraints
    e.Engine.n_factors e.Engine.wall_seconds
    (match e.Engine.sim_seconds with
    | Some s -> Printf.sprintf ", %.2fs simulated cluster" s
    | None -> "")

let expansion_to_json (e : Engine.expansion) =
  Json.Obj
    [
      ("iterations", Json.Int e.Engine.iterations);
      ("converged", Json.Bool e.Engine.converged);
      ("trajectory", trajectory_to_json e.Engine.trajectory);
      ("new_fact_count", Json.Int e.Engine.new_fact_count);
      ("removed_by_constraints", Json.Int e.Engine.removed_by_constraints);
      ("n_factors", Json.Int e.Engine.n_factors);
      ("rules_used", Json.Int e.Engine.rules_used);
      ("wall_seconds", Json.Float e.Engine.wall_seconds);
      ( "sim_seconds",
        match e.Engine.sim_seconds with
        | Some s -> Json.Float s
        | None -> Json.Null );
      ("obs", Obs.Summary.to_json e.Engine.obs);
    ]

let pp_result ppf (r : Engine.result) =
  Format.fprintf ppf "@[<v>%a@,marginals stored: %d" pp_expansion
    r.Engine.expansion r.Engine.marginals_stored;
  (match r.Engine.inference with
  | Some i -> Format.fprintf ppf "@,%a" pp_inference i
  | None -> ());
  Format.fprintf ppf "@]"

let result_to_json (r : Engine.result) =
  Json.Obj
    [
      ("expansion", expansion_to_json r.Engine.expansion);
      ("marginals_stored", Json.Int r.Engine.marginals_stored);
      ( "inference",
        match r.Engine.inference with
        | Some i -> inference_to_json i
        | None -> Json.Null );
      ("obs", Obs.Summary.to_json r.Engine.obs);
    ]

let pp_kb ppf kb =
  Format.fprintf ppf "@[<v>%a@," Kb.Gamma.pp_stats (Kb.Gamma.stats kb);
  let q = Kb.Query.prepare (Kb.Gamma.pi kb) in
  let rels = Kb.Query.relations q in
  Format.fprintf ppf "top relations by fact count:@,";
  List.iteri
    (fun i (r, n) ->
      if i < 10 then
        Format.fprintf ppf "  %6d  %s@," n
          (Relational.Dict.name (Kb.Gamma.relations kb) r))
    rels;
  if List.length rels > 10 then
    Format.fprintf ppf "  ... (%d more relations)@," (List.length rels - 10);
  Format.fprintf ppf "@]"

let kb_to_json kb =
  let s = Kb.Gamma.stats kb in
  let q = Kb.Query.prepare (Kb.Gamma.pi kb) in
  let rels = Kb.Query.relations q in
  Json.Obj
    [
      ("n_entities", Json.Int s.Kb.Gamma.n_entities);
      ("n_classes", Json.Int s.Kb.Gamma.n_classes);
      ("n_relations", Json.Int s.Kb.Gamma.n_relations);
      ("n_rules", Json.Int s.Kb.Gamma.n_rules);
      ("n_facts", Json.Int s.Kb.Gamma.n_facts);
      ("n_constraints", Json.Int s.Kb.Gamma.n_constraints);
      ( "relations",
        Json.List
          (List.map
             (fun (r, n) ->
               Json.Obj
                 [
                   ( "name",
                     Json.String
                       (Relational.Dict.name (Kb.Gamma.relations kb) r) );
                   ("facts", Json.Int n);
                 ])
             rels) );
    ]

let pp_summary = Obs.Summary.pp
let summary_to_json = Obs.Summary.to_json

let epoch_to_json (st : Engine.Session.epoch_stats) =
  Json.Obj
    [
      ("epoch", Json.Int st.Engine.Session.epoch);
      ("op", Json.String st.Engine.Session.op);
      ("inserted", Json.Int st.Engine.Session.inserted);
      ("promoted", Json.Int st.Engine.Session.promoted);
      ("derived", Json.Int st.Engine.Session.derived);
      ("retracted", Json.Int st.Engine.Session.retracted);
      ("cone", Json.Int st.Engine.Session.cone);
      ("rederived", Json.Int st.Engine.Session.rederived);
      ("violations", Json.Int st.Engine.Session.violations);
      ("facts", Json.Int st.Engine.Session.facts);
      ("factors", Json.Int st.Engine.Session.factors);
      ("wall_seconds", Json.Float st.Engine.Session.wall_seconds);
    ]

let pp_epoch ppf (st : Engine.Session.epoch_stats) =
  let open Engine.Session in
  Format.fprintf ppf
    "epoch %d %s: +%d inserted, +%d derived, -%d retracted (cone %d, %d \
     rederived), %d facts, %d factors, %.3fs"
    st.epoch st.op st.inserted st.derived st.retracted st.cone st.rederived
    st.facts st.factors st.wall_seconds
