module Json = Obs.Json

let pp_expansion ppf (e : Engine.expansion) =
  Format.fprintf ppf
    "@[<v>expansion: %d iterations%s, %d rules applied@,\
     facts: +%d inferred, %d removed by constraints@,\
     factors: %d@,\
     time: %.2fs wall%s@]"
    e.Engine.iterations
    (if e.Engine.converged then " (converged)" else " (budget hit)")
    e.Engine.rules_used e.Engine.new_fact_count e.Engine.removed_by_constraints
    e.Engine.n_factors e.Engine.wall_seconds
    (match e.Engine.sim_seconds with
    | Some s -> Printf.sprintf ", %.2fs simulated cluster" s
    | None -> "")

let expansion_to_json (e : Engine.expansion) =
  Json.Obj
    [
      ("iterations", Json.Int e.Engine.iterations);
      ("converged", Json.Bool e.Engine.converged);
      ("new_fact_count", Json.Int e.Engine.new_fact_count);
      ("removed_by_constraints", Json.Int e.Engine.removed_by_constraints);
      ("n_factors", Json.Int e.Engine.n_factors);
      ("rules_used", Json.Int e.Engine.rules_used);
      ("wall_seconds", Json.Float e.Engine.wall_seconds);
      ( "sim_seconds",
        match e.Engine.sim_seconds with
        | Some s -> Json.Float s
        | None -> Json.Null );
      ("obs", Obs.Summary.to_json e.Engine.obs);
    ]

let pp_result ppf (r : Engine.result) =
  Format.fprintf ppf "@[<v>%a@,marginals stored: %d@]" pp_expansion
    r.Engine.expansion r.Engine.marginals_stored

let result_to_json (r : Engine.result) =
  Json.Obj
    [
      ("expansion", expansion_to_json r.Engine.expansion);
      ("marginals_stored", Json.Int r.Engine.marginals_stored);
      ("obs", Obs.Summary.to_json r.Engine.obs);
    ]

let pp_kb ppf kb =
  Format.fprintf ppf "@[<v>%a@," Kb.Gamma.pp_stats (Kb.Gamma.stats kb);
  let q = Kb.Query.prepare (Kb.Gamma.pi kb) in
  let rels = Kb.Query.relations q in
  Format.fprintf ppf "top relations by fact count:@,";
  List.iteri
    (fun i (r, n) ->
      if i < 10 then
        Format.fprintf ppf "  %6d  %s@," n
          (Relational.Dict.name (Kb.Gamma.relations kb) r))
    rels;
  if List.length rels > 10 then
    Format.fprintf ppf "  ... (%d more relations)@," (List.length rels - 10);
  Format.fprintf ppf "@]"

let kb_to_json kb =
  let s = Kb.Gamma.stats kb in
  let q = Kb.Query.prepare (Kb.Gamma.pi kb) in
  let rels = Kb.Query.relations q in
  Json.Obj
    [
      ("n_entities", Json.Int s.Kb.Gamma.n_entities);
      ("n_classes", Json.Int s.Kb.Gamma.n_classes);
      ("n_relations", Json.Int s.Kb.Gamma.n_relations);
      ("n_rules", Json.Int s.Kb.Gamma.n_rules);
      ("n_facts", Json.Int s.Kb.Gamma.n_facts);
      ("n_constraints", Json.Int s.Kb.Gamma.n_constraints);
      ( "relations",
        Json.List
          (List.map
             (fun (r, n) ->
               Json.Obj
                 [
                   ( "name",
                     Json.String
                       (Relational.Dict.name (Kb.Gamma.relations kb) r) );
                   ("facts", Json.Int n);
                 ])
             rels) );
    ]

let pp_summary = Obs.Summary.pp
let summary_to_json = Obs.Summary.to_json
