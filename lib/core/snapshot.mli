(** Immutable epoch snapshots — the shareable read path.

    A snapshot answers point queries ({!query_local}), key lookups
    ({!find}, {!view}) and cached-marginal reads ({!marginal}) without
    touching any mutable engine or session state.  Two flavours exist:

    - {!freeze} copies everything the read path needs — the factor rows
      of [TΦ], the fact↔factor adjacency, the fact-key map and the cached
      marginals — out of a live session at a given epoch.  The result
      shares {e nothing} mutable with the writer, so it can be handed to
      any number of reader domains while the next epoch commits behind
      it (the serving layer's MVCC-by-epoch read arm; see DESIGN.md
      §13).  Storage's tombstone discipline keeps fact identifiers
      stable across deletions, which is what makes the copy cheap: ids,
      cached marginals and keys all carry over without remapping.
    - {!live} wraps caller-supplied closures over live state.  Nothing
      is copied; the caller guarantees single-threaded access.  This is
      how [Engine.query_local] / [Session.query_local] reuse the same
      solve path without paying for a freeze per query.

    Both flavours drive the identical grounding-walk → boundary-clamp →
    compile → per-component hybrid solve ([Inference.Neighborhood]), so
    a frozen snapshot's answers are bit-identical to querying the
    session it was frozen from.

    Under [PROBKB_DEBUG], every {!query_local} on a frozen snapshot
    re-hashes the copied factor arrays and compares against the
    fingerprint taken at freeze time — a torn read (a writer mutating
    state a snapshot still references) trips the check immediately. *)

(** A fact as seen through a snapshot (mirrors [Engine.Session.fact_view]). *)
type view = {
  id : int;
  base : bool;  (** carries extraction (singleton) support *)
  weight : float;  (** extraction confidence; null for inferred facts *)
  marginal : float option;  (** cached estimate, if any *)
}

(** One answered point query (re-exported as [Engine.local_answer]). *)
type answer = {
  id : int;  (** the queried fact *)
  marginal : float;  (** P(fact) over the local neighbourhood *)
  epoch : int;  (** the epoch this answer was computed against *)
  interior : int;  (** facts fully expanded by the walk *)
  boundary : int;  (** facts clamped at the truncation frontier *)
  hops : int;  (** backward hops explored *)
  factors : int;  (** factor rows in the local subgraph (clamps incl.) *)
  pruned_mass : float;  (** influence discarded at the boundary *)
  truncated : bool;  (** a budget limit cut the walk short *)
  enumerated : bool;  (** solved exactly (vs chromatic Gibbs) *)
  ground_seconds : float;
  infer_seconds : float;
}

type stats = {
  epoch : int;
  facts : int;  (** live fact keys at snapshot time *)
  factors : int;  (** factor rows ([TΦ] size; 0 in graph-less live mode) *)
  marginals_cached : int;
  frozen : bool;  (** [true] for {!freeze}, [false] for {!live} *)
}

type t

(** [freeze ?epoch ?marginals ?gibbs ?exact_max_vars ?max_width ?obs ~pi
    ~graph ()] copies the read state out of [(pi, graph)] — one
    O(facts + factors) pass, no re-grounding and no compile.
    Tombstoned-but-unflushed facts are excluded (they are already
    invisible to [Storage.find]).  [marginals] (copied) clamps boundary
    facts in preference to extraction priors.  [exact_max_vars] /
    [max_width] are the neighbourhood dispatch knobs (defaults
    {!Inference.Exact.max_vars} / {!Inference.Jtree.default_max_width});
    [obs] receives the per-query spans; pass the server's trace, or
    leave it [Obs.null]. *)
val freeze :
  ?epoch:int ->
  ?marginals:(int, float) Hashtbl.t ->
  ?gibbs:Inference.Gibbs.options ->
  ?exact_max_vars:int ->
  ?max_width:int ->
  ?obs:Obs.t ->
  pi:Kb.Storage.t ->
  graph:Factor_graph.Fgraph.t ->
  unit ->
  t

(** [live ...] wraps closures over live state (single-threaded use only).
    [clamp] maps a boundary fact to its clamp probability; [find] resolves
    a fact key; [view_of]/[marginal_of] may answer [None] when the backing
    state does not track them.  [facts]/[factors] seed {!stats};
    [exact_max_vars]/[max_width] as for {!freeze}. *)
val live :
  ?epoch:int ->
  ?gibbs:Inference.Gibbs.options ->
  ?exact_max_vars:int ->
  ?max_width:int ->
  ?obs:Obs.t ->
  ?marginal_of:(int -> float option) ->
  ?view_of:(int -> view option) ->
  source:Grounding.Local.source ->
  clamp:(int -> float) ->
  find:(r:int -> x:int -> c1:int -> y:int -> c2:int -> int option) ->
  facts:(unit -> int) ->
  factors:(unit -> int) ->
  unit ->
  t

val epoch : t -> int
val frozen : t -> bool
val stats : t -> stats

(** [find t ~r ~x ~c1 ~y ~c2] is the queried fact's identifier, if the
    fact existed (live, not tombstoned) at snapshot time. *)
val find : t -> r:int -> x:int -> c1:int -> y:int -> c2:int -> int option

(** [view t id] is the fact as of the snapshot ([None] for unknown ids,
    and always [None] in graph-less live mode). *)
val view : t -> int -> view option

(** [marginal t id] is the cached estimate carried by the snapshot. *)
val marginal : t -> int -> float option

(** [query_local ?budget t ~r ~x ~c1 ~y ~c2] answers a point query
    against the snapshot: backward local-grounding walk, boundary facts
    clamped to cached marginals (then extraction priors, then 0.5), then
    the per-component dispatch of [Inference.Neighborhood.solve] —
    enumeration or variable elimination where exact inference fits,
    chromatic Gibbs on the rest.  [None]
    when the fact is unknown at this epoch.  Emits a ["query_local"]
    span (with an ["epoch"] attribute) on the snapshot's trace. *)
val query_local :
  ?budget:Grounding.Local.budget ->
  t -> r:int -> x:int -> c1:int -> y:int -> c2:int -> answer option

(** [answer_by_id ?budget t id] is {!query_local} when the fact id is
    already known (ids are stable across epochs). *)
val answer_by_id : ?budget:Grounding.Local.budget -> t -> int -> answer

(** [verify_integrity t] re-hashes a frozen snapshot's copied factor
    arrays against the fingerprint taken at freeze time; [true] means no
    writer has torn through the snapshot's state (always [true] for live
    snapshots, which make no sharing claim).  Runs automatically per
    query under [PROBKB_DEBUG]. *)
val verify_integrity : t -> bool
