module Gamma = Kb.Gamma
module Storage = Kb.Storage
module Table = Relational.Table

type t = { kb : Gamma.t; config : Config.t; trace : Obs.t }

let create ?(config = Config.default) kb =
  { kb; config; trace = Obs.create ~config:config.Config.obs () }

let kb t = t.kb
let config t = t.config
let trace t = t.trace

type expansion = {
  graph : Factor_graph.Fgraph.t;
  iterations : int;
  converged : bool;
  trajectory : Grounding.Ground.trajectory_point list;
  new_fact_count : int;
  removed_by_constraints : int;
  n_factors : int;
  rules_used : int;
  wall_seconds : float;
  sim_seconds : float option;
  obs : Obs.Summary.t;
}

let clean_rules t =
  let theta = t.config.Config.quality.Config.rule_theta in
  if theta >= 1.0 then List.length (Gamma.rules t.kb)
  else begin
    (* Without learner scores, the MLN weight is the best available
       statistical-significance surrogate (paper, Section 5.3). *)
    let scored = Quality.Rule_cleaning.score_by_weight (Gamma.rules t.kb) in
    let kept = Quality.Rule_cleaning.clean ~theta scored in
    Gamma.set_rules t.kb kept;
    List.length kept
  end

let constraint_hook t =
  if t.config.Config.quality.Config.semantic_constraints then
    Some (Quality.Semantic.hook (Gamma.omega t.kb))
  else None

let expand t =
  Obs.with_ambient t.trace @@ fun () ->
  Obs.with_span t.trace "expand" ~cat:"engine" @@ fun () ->
  let rules_used =
    Obs.with_span t.trace "rule cleaning" ~cat:"engine" (fun () ->
        clean_rules t)
  in
  let hook = constraint_hook t in
  let t0 = Relational.Stats.now () in
  match t.config.Config.engine with
  | Config.Single_node ->
    let r =
      Grounding.Ground.run
        ~options:
          {
            Grounding.Ground.default_options with
            max_iterations = t.config.Config.max_iterations;
            apply_constraints = hook;
            obs = t.trace;
          }
        t.kb
    in
    {
      graph = r.Grounding.Ground.graph;
      iterations = r.Grounding.Ground.iterations;
      converged = r.Grounding.Ground.converged;
      trajectory = r.Grounding.Ground.trajectory;
      new_fact_count = r.Grounding.Ground.new_fact_count;
      removed_by_constraints = r.Grounding.Ground.removed_by_constraints;
      n_factors = Factor_graph.Fgraph.size r.Grounding.Ground.graph;
      rules_used;
      wall_seconds = Relational.Stats.now () -. t0;
      sim_seconds = None;
      obs = Obs.Summary.empty;
    }
  | Config.Mpp { cluster; views } ->
    let r =
      Grounding.Ground_mpp.run
        ~options:
          {
            Grounding.Ground_mpp.default_options with
            max_iterations = t.config.Config.max_iterations;
            apply_constraints = hook;
            obs = t.trace;
          }
        ~mode:
          (if views then Grounding.Ground_mpp.Views
           else Grounding.Ground_mpp.No_views)
        cluster t.kb
    in
    {
      graph = r.Grounding.Ground_mpp.graph;
      iterations = r.Grounding.Ground_mpp.iterations;
      converged = r.Grounding.Ground_mpp.converged;
      trajectory = r.Grounding.Ground_mpp.trajectory;
      new_fact_count = r.Grounding.Ground_mpp.new_fact_count;
      removed_by_constraints = 0;
      n_factors = Factor_graph.Fgraph.size r.Grounding.Ground_mpp.graph;
      rules_used;
      wall_seconds = Relational.Stats.now () -. t0;
      sim_seconds = Some r.Grounding.Ground_mpp.sim_seconds;
      obs = Obs.Summary.empty;
    }

let expand t =
  let e = expand t in
  { e with obs = Obs.Summary.of_trace t.trace }

let infer_full t e =
  match t.config.Config.inference with
  | None -> (Hashtbl.create 0, None)
  | Some m ->
    Obs.with_ambient t.trace @@ fun () ->
    Obs.with_span t.trace "infer" ~cat:"engine" @@ fun () ->
    Inference.Marginal.infer_full ~obs:t.trace
      ~checkpoint:t.config.Config.checkpoint_sweeps
      ?early_stop:(Config.early_stop_criteria t.config)
      e.graph m

let infer t e = fst (infer_full t e)

let store_marginals t marginals =
  Obs.with_span t.trace "store_marginals" ~cat:"engine" @@ fun () ->
  let pi = Gamma.pi t.kb in
  let tbl = Storage.table pi in
  let updated = ref 0 in
  Hashtbl.iter
    (fun id p ->
      match Storage.row_of_id pi id with
      | Some row when Table.is_null_weight (Table.weight tbl row) ->
        Table.set_weight tbl row p;
        incr updated
      | Some _ | None -> ())
    marginals;
  Obs.add t.trace "engine.marginals_stored" !updated;
  !updated

type result = {
  expansion : expansion;
  marginals_stored : int;
  inference : Inference.Chromatic.run_info option;
  obs : Obs.Summary.t;
}

let summary t = Obs.Summary.of_trace t.trace

let run t =
  let expansion = expand t in
  let marginals, inference = infer_full t expansion in
  let marginals_stored = store_marginals t marginals in
  { expansion; marginals_stored; inference; obs = summary t }

let incorporate t facts =
  let pi = Gamma.pi t.kb in
  let delta =
    Table.create ~weighted:true ~name:"delta"
      [| "I"; "R"; "x"; "C1"; "y"; "C2" |]
  in
  List.iter
    (fun (r, x, c1, y, c2, w) ->
      let before = Storage.size pi in
      let id = Gamma.add_fact t.kb ~r ~x ~c1 ~y ~c2 ~w in
      if Storage.size pi > before then
        Table.append_w delta [| id; r; x; c1; y; c2 |] w)
    facts;
  let inserted = Table.nrows delta in
  if inserted = 0 then (0, 0)
  else begin
    let result =
      Grounding.Ground.closure
        ~options:
          {
            Grounding.Ground.default_options with
            max_iterations = t.config.Config.max_iterations;
            initial_delta = Some delta;
            obs = t.trace;
          }
        t.kb
    in
    (inserted, result.Grounding.Ground.new_fact_count)
  end
