module Gamma = Kb.Gamma
module Storage = Kb.Storage
module Table = Relational.Table

type t = {
  kb : Gamma.t;
  config : Config.t;
  trace : Obs.t;
  mutable read : Snapshot.t option;
      (* lazily-built read view (backward-walk source + clamps) for
         [query_local]; dropped whenever facts or rules change under it —
         including session epochs committed over this engine *)
}

let create ?(config = Config.default) kb =
  { kb; config; trace = Obs.create ~config:config.Config.obs (); read = None }

let kb t = t.kb
let config t = t.config
let trace t = t.trace

type expansion = {
  graph : Factor_graph.Fgraph.t;
  iterations : int;
  converged : bool;
  trajectory : Grounding.Ground.trajectory_point list;
  new_fact_count : int;
  removed_by_constraints : int;
  n_factors : int;
  rules_used : int;
  wall_seconds : float;
  sim_seconds : float option;
  obs : Obs.Summary.t;
}

let clean_rules t =
  let theta = t.config.Config.quality.Config.rule_theta in
  if theta >= 1.0 then List.length (Gamma.rules t.kb)
  else begin
    (* Without learner scores, the MLN weight is the best available
       statistical-significance surrogate (paper, Section 5.3). *)
    let scored = Quality.Rule_cleaning.score_by_weight (Gamma.rules t.kb) in
    let kept = Quality.Rule_cleaning.clean ~theta scored in
    Gamma.set_rules t.kb kept;
    List.length kept
  end

let constraint_hook t =
  if t.config.Config.quality.Config.semantic_constraints then
    Some (Quality.Semantic.hook (Gamma.omega t.kb))
  else None

let expand t =
  t.read <- None;
  Obs.with_ambient t.trace @@ fun () ->
  Obs.with_span t.trace "expand" ~cat:"engine" @@ fun () ->
  let rules_used =
    Obs.with_span t.trace "rule cleaning" ~cat:"engine" (fun () ->
        clean_rules t)
  in
  let hook = constraint_hook t in
  let spill = Config.spill_policy t.config in
  let t0 = Relational.Stats.now () in
  match t.config.Config.engine with
  | Config.Single_node ->
    let r =
      Grounding.Ground.run
        ~options:
          {
            Grounding.Ground.default_options with
            max_iterations = t.config.Config.max_iterations;
            apply_constraints = hook;
            spill;
            obs = t.trace;
          }
        t.kb
    in
    {
      graph = r.Grounding.Ground.graph;
      iterations = r.Grounding.Ground.iterations;
      converged = r.Grounding.Ground.converged;
      trajectory = r.Grounding.Ground.trajectory;
      new_fact_count = r.Grounding.Ground.new_fact_count;
      removed_by_constraints = r.Grounding.Ground.removed_by_constraints;
      n_factors = Factor_graph.Fgraph.size r.Grounding.Ground.graph;
      rules_used;
      wall_seconds = Relational.Stats.now () -. t0;
      sim_seconds = None;
      obs = Obs.Summary.empty;
    }
  | Config.Mpp { cluster; views } ->
    let r =
      Grounding.Ground_mpp.run
        ~options:
          {
            Grounding.Ground_mpp.default_options with
            max_iterations = t.config.Config.max_iterations;
            apply_constraints = hook;
            spill;
            obs = t.trace;
          }
        ~mode:
          (if views then Grounding.Ground_mpp.Views
           else Grounding.Ground_mpp.No_views)
        cluster t.kb
    in
    {
      graph = r.Grounding.Ground_mpp.graph;
      iterations = r.Grounding.Ground_mpp.iterations;
      converged = r.Grounding.Ground_mpp.converged;
      trajectory = r.Grounding.Ground_mpp.trajectory;
      new_fact_count = r.Grounding.Ground_mpp.new_fact_count;
      removed_by_constraints = 0;
      n_factors = Factor_graph.Fgraph.size r.Grounding.Ground_mpp.graph;
      rules_used;
      wall_seconds = Relational.Stats.now () -. t0;
      sim_seconds = Some r.Grounding.Ground_mpp.sim_seconds;
      obs = Obs.Summary.empty;
    }

let expand t =
  let e = expand t in
  { e with obs = Obs.Summary.of_trace t.trace }

let infer_full t e =
  match t.config.Config.inference with
  | None -> (Hashtbl.create 0, None)
  | Some m ->
    Obs.with_ambient t.trace @@ fun () ->
    Obs.with_span t.trace "infer" ~cat:"engine" @@ fun () ->
    let marg, info =
      Inference.Marginal.infer_full ~obs:t.trace
        ~checkpoint:t.config.Config.checkpoint_sweeps
        ?early_stop:(Config.early_stop_criteria t.config)
        e.graph m
    in
    (marg, Some info)

let infer t e = fst (infer_full t e)

let store_marginals t marginals =
  Obs.with_span t.trace "store_marginals" ~cat:"engine" @@ fun () ->
  let pi = Gamma.pi t.kb in
  let tbl = Storage.table pi in
  let updated = ref 0 in
  Hashtbl.iter
    (fun id p ->
      match Storage.row_of_id pi id with
      | Some row when Table.is_null_weight (Table.weight tbl row) ->
        Table.set_weight tbl row p;
        incr updated
      | Some _ | None -> ())
    marginals;
  Obs.add t.trace "engine.marginals_stored" !updated;
  !updated

type result = {
  expansion : expansion;
  marginals_stored : int;
  inference : Inference.Marginal.solve_info option;
  obs : Obs.Summary.t;
}

let summary t = Obs.Summary.of_trace t.trace

let run t =
  let expansion = expand t in
  let marginals, inference = infer_full t expansion in
  let marginals_stored = store_marginals t marginals in
  { expansion; marginals_stored; inference; obs = summary t }

(* ------------------------------------------------------------------ *)
(* Query-driven local grounding (point queries without the closure's
   full factor graph).                                                 *)

type local_answer = Snapshot.answer = {
  id : int;
  marginal : float;
  epoch : int;
  interior : int;
  boundary : int;
  hops : int;
  factors : int;
  pruned_mass : float;
  truncated : bool;
  enumerated : bool;
  ground_seconds : float;
  infer_seconds : float;
}

let sigmoid w = 1. /. (1. +. exp (-.w))

let gibbs_options t =
  match t.config.Config.inference with
  | Some (Inference.Marginal.Gibbs o) | Some (Inference.Marginal.Chromatic o)
    ->
    o
  | Some (Inference.Marginal.Hybrid o) -> o.Inference.Hybrid.gibbs
  | _ -> Inference.Gibbs.default_options

(* The engine's read view: a live (graph-less) snapshot over the KB's
   fact indexes.  Cached because [Local.of_kb] memoizes rule-adjacency
   buckets and two partial-key TΠ indexes; invalidated whenever facts or
   rules change — [expand], [incorporate], and every session epoch. *)
let read_view t =
  match t.read with
  | Some s -> s
  | None ->
    let pi = Gamma.pi t.kb in
    let source =
      Grounding.Local.of_kb
        (Grounding.Queries.prepare (Gamma.partitions t.kb))
        (Gamma.pi t.kb)
    in
    let weight_of id =
      match Storage.row_of_id pi id with
      | Some row -> Some (Table.weight (Storage.table pi) row)
      | None -> None
    in
    (* Boundary facts are clamped to their extraction prior — before
       [store_marginals] the weight column of a base fact still holds
       sigmoid⁻¹-able confidence; [clamp_weight (sigmoid w) = w] restores
       the true prior singleton exactly.  Inferred boundary facts (null
       weight) get the uninformative 0.5. *)
    let clamp bid =
      match weight_of bid with
      | Some w when not (Table.is_null_weight w) -> sigmoid w
      | Some _ | None -> 0.5
    in
    let view_of id =
      match weight_of id with
      | None -> None
      | Some w ->
        Some
          {
            Snapshot.id;
            base = not (Table.is_null_weight w);
            weight = w;
            marginal = None;
          }
    in
    let s =
      Snapshot.live ~gibbs:(gibbs_options t)
        ~exact_max_vars:t.config.Config.exact_max_vars
        ~max_width:t.config.Config.max_width ~obs:t.trace ~view_of ~source
        ~clamp
        ~find:(fun ~r ~x ~c1 ~y ~c2 -> Storage.find pi ~r ~x ~c1 ~y ~c2)
        ~facts:(fun () -> Storage.size pi)
        ~factors:(fun () -> 0)
        ()
    in
    t.read <- Some s;
    s

let query_local ?budget t ~r ~x ~c1 ~y ~c2 =
  Obs.with_ambient t.trace @@ fun () ->
  Snapshot.query_local ?budget (read_view t) ~r ~x ~c1 ~y ~c2

module Session = struct
  type engine = t

  type epoch_stats = {
    epoch : int;
    op : string;
    inserted : int;
    promoted : int;
    derived : int;
    retracted : int;
    cone : int;
    rederived : int;
    violations : int;
    facts : int;
    factors : int;
    wall_seconds : float;
  }

  type t = {
    engine : engine;
    dred : Incremental.Dred.t;
    mutable epoch : int;
    state : (int, bool) Hashtbl.t;
        (* fact id → chain state at the end of the last refresh *)
    marginals : (int, float) Hashtbl.t;  (* fact id → last estimate *)
    touched : (int, unit) Hashtbl.t;
        (* facts whose support changed since the last refresh *)
    mutable last_info : Inference.Chromatic.run_info option;
        (* Chromatic chain state for warm starts (assignment indexes the
           full compiled graph, which is why Hybrid's embedded sampler —
           whose assignment indexes the residual subgraph — never lands
           here) *)
    mutable last_solve : Inference.Marginal.solve_info option;
        (* report of the last refresh, whatever the method *)
    mutable history : epoch_stats list;  (* newest first *)
    mutable read : Snapshot.t option;
        (* frozen snapshot of the current epoch, built on first demand
           and dropped by every epoch mutation *)
  }

  let dred s = s.dred
  let engine s = s.engine
  let kb s = s.engine.kb
  let graph s = Incremental.Dred.graph s.dred
  let epoch s = s.epoch
  let history s = List.rev s.history
  let last_run s = s.last_solve

  let touch s ids = List.iter (fun id -> Hashtbl.replace s.touched id ()) ids

  let forget s ids =
    List.iter
      (fun id ->
        Hashtbl.remove s.state id;
        Hashtbl.remove s.marginals id)
      ids

  let record s ~op ~(ins : Incremental.Dred.ingest_stats)
      ~(ret : Incremental.Dred.retract_stats) ~violations ~wall_seconds =
    s.epoch <- s.epoch + 1;
    (* Every epoch mutation invalidates both read caches: the session's
       frozen snapshot and the engine's memoized backward source (whose
       rule-adjacency buckets would otherwise go stale after
       [retract_rules]/[add_rules] — they are rebuilt on next demand). *)
    s.read <- None;
    s.engine.read <- None;
    let st =
      {
        epoch = s.epoch;
        op;
        inserted = ins.Incremental.Dred.inserted;
        promoted = ins.Incremental.Dred.promoted;
        derived = ins.Incremental.Dred.derived;
        retracted = ret.Incremental.Dred.overdeleted;
        cone = ret.Incremental.Dred.cone;
        rederived = ret.Incremental.Dred.rederived;
        violations;
        facts = Storage.size (Gamma.pi s.engine.kb);
        factors = Factor_graph.Fgraph.size (graph s);
        wall_seconds;
      }
    in
    s.history <- st :: s.history;
    (* Epoch-duration distribution: under the serving layer this is the
       writer arm's per-epoch cost, the other half of epoch lag. *)
    Obs.observe s.engine.trace "session.epoch_seconds" wall_seconds;
    Obs.snapshot s.engine.trace ~stage:"session" ~point:"epoch" ~step:st.epoch
      ~perf:[ ("wall_seconds", Obs.F wall_seconds) ]
      [
        ("op", Obs.S op);
        ("inserted", Obs.I st.inserted);
        ("promoted", Obs.I st.promoted);
        ("derived", Obs.I st.derived);
        ("retracted", Obs.I st.retracted);
        ("cone", Obs.I st.cone);
        ("rederived", Obs.I st.rederived);
        ("violations", Obs.I st.violations);
        ("facts", Obs.I st.facts);
        ("factors", Obs.I st.factors);
      ];
    st

  (* Session-mode constraint enforcement runs *after* the incremental
     closure, as a banned DRed retraction — not as the in-closure hook
     (the batch pipeline's choice); violations introduced by an epoch are
     removed together with their already-derived consequences. *)
  let constrain s =
    if s.engine.config.Config.quality.Config.semantic_constraints then begin
      let violations, ret = Incremental.Dred.enforce_constraints s.dred in
      touch s ret.Incremental.Dred.touched_ids;
      forget s ret.Incremental.Dred.deleted_ids;
      (violations, ret)
    end
    else (0, Incremental.Dred.no_retract)

  let ingest s facts =
    let t0 = Relational.Stats.now () in
    let ins =
      Incremental.Dred.ingest
        ~max_iterations:s.engine.config.Config.max_iterations s.dred facts
    in
    touch s ins.Incremental.Dred.new_ids;
    let violations, ret = constrain s in
    record s ~op:"ingest" ~ins ~ret ~violations
      ~wall_seconds:(Relational.Stats.now () -. t0)

  let retract ?ban s ids =
    let t0 = Relational.Stats.now () in
    let ret = Incremental.Dred.retract ?ban s.dred ids in
    touch s ret.Incremental.Dred.touched_ids;
    forget s ret.Incremental.Dred.deleted_ids;
    record s ~op:"retract" ~ins:Incremental.Dred.no_ingest ~ret ~violations:0
      ~wall_seconds:(Relational.Stats.now () -. t0)

  let retract_keys ?ban s keys =
    let pi = Gamma.pi s.engine.kb in
    retract ?ban s
      (List.filter_map
         (fun (r, x, c1, y, c2) -> Storage.find pi ~r ~x ~c1 ~y ~c2)
         keys)

  let retract_rules s ~remove =
    let t0 = Relational.Stats.now () in
    let ret = Incremental.Dred.retract_rules s.dred ~remove in
    touch s ret.Incremental.Dred.touched_ids;
    forget s ret.Incremental.Dred.deleted_ids;
    record s ~op:"retract_rules" ~ins:Incremental.Dred.no_ingest ~ret
      ~violations:0
      ~wall_seconds:(Relational.Stats.now () -. t0)

  let add_rules s rules =
    let t0 = Relational.Stats.now () in
    let ins =
      Incremental.Dred.extend_rules
        ~max_iterations:s.engine.config.Config.max_iterations s.dred rules
    in
    touch s ins.Incremental.Dred.new_ids;
    let violations, ret = constrain s in
    record s ~op:"add_rules" ~ins ~ret ~violations
      ~wall_seconds:(Relational.Stats.now () -. t0)

  let reexpand s =
    let t0 = Relational.Stats.now () in
    let ins =
      Incremental.Dred.reexpand
        ~max_iterations:s.engine.config.Config.max_iterations s.dred
    in
    touch s ins.Incremental.Dred.new_ids;
    let violations, ret = constrain s in
    record s ~op:"reexpand" ~ins ~ret ~violations
      ~wall_seconds:(Relational.Stats.now () -. t0)

  let refresh_marginals s =
    let t0 = Relational.Stats.now () in
    match s.engine.config.Config.inference with
    | None -> None
    | Some m ->
      Obs.with_ambient s.engine.trace @@ fun () ->
      Obs.with_span s.engine.trace "refresh_marginals" ~cat:"engine"
      @@ fun () ->
      let c = Factor_graph.Fgraph.compile (graph s) in
      let marg, solve =
        match m with
        | Inference.Marginal.Chromatic options ->
          (* Warm start: untouched variables resume from the previous
             epoch's final chain state; the touched cone (and any new
             variable) re-randomizes from the seed-derived init stream.
             Deterministic for a given (seed, epoch history) at any pool
             size. *)
          let init v =
            if not s.engine.config.Config.warm_start then None
            else
              let id = c.Factor_graph.Fgraph.var_ids.(v) in
              if Hashtbl.mem s.touched id then None
              else Hashtbl.find_opt s.state id
          in
          let marg, info =
            Inference.Chromatic.marginals_info ~options ~obs:s.engine.trace
              ~checkpoint:s.engine.config.Config.checkpoint_sweeps
              ?early_stop:(Config.early_stop_criteria s.engine.config)
              ~init c
          in
          (marg, Inference.Marginal.Chromatic_run info)
        | m ->
          Inference.Marginal.infer_compiled_full ~obs:s.engine.trace
            ~checkpoint:s.engine.config.Config.checkpoint_sweeps
            ?early_stop:(Config.early_stop_criteria s.engine.config)
            c m
      in
      Hashtbl.reset s.marginals;
      Array.iteri
        (fun v p ->
          Hashtbl.replace s.marginals c.Factor_graph.Fgraph.var_ids.(v) p)
        marg;
      (* Only a whole-graph Chromatic run produces chain state the next
         epoch's warm start can resume from; Hybrid's sampler covers just
         the residual subgraph, so its assignment stays out of [s.state]. *)
      (match solve with
      | Inference.Marginal.Chromatic_run i ->
        Hashtbl.reset s.state;
        Array.iteri
          (fun v b ->
            Hashtbl.replace s.state c.Factor_graph.Fgraph.var_ids.(v) b)
          i.Inference.Chromatic.assignment;
        s.last_info <- Some i
      | _ -> ());
      s.last_solve <- Some solve;
      Hashtbl.reset s.touched;
      s.epoch <- s.epoch + 1;
      (* A refresh is an epoch too: cached-marginal clamps changed, so
         any frozen snapshot of the previous epoch is now stale. *)
      s.read <- None;
      let st =
        {
          epoch = s.epoch;
          op = "refresh_marginals";
          inserted = 0;
          promoted = 0;
          derived = 0;
          retracted = 0;
          cone = 0;
          rederived = 0;
          violations = 0;
          facts = Storage.size (Gamma.pi s.engine.kb);
          factors = Factor_graph.Fgraph.size (graph s);
          wall_seconds = Relational.Stats.now () -. t0;
        }
      in
      s.history <- st :: s.history;
      Obs.observe s.engine.trace "refresh.seconds" st.wall_seconds;
      Some st

  type fact_view = {
    id : int;
    base : bool;  (** carries extraction (singleton) support *)
    weight : float;  (** extraction confidence; null for inferred facts *)
    marginal : float option;  (** estimate from the last refresh, if any *)
  }

  let query s ~r ~x ~c1 ~y ~c2 =
    let pi = Gamma.pi s.engine.kb in
    match Storage.find pi ~r ~x ~c1 ~y ~c2 with
    | None -> None
    | Some id ->
      let weight =
        match Storage.row_of_id pi id with
        | Some row -> Table.weight (Storage.table pi) row
        | None -> Table.null_weight
      in
      Some
        {
          id;
          base =
            Incremental.Provenance.is_base
              (Incremental.Dred.provenance s.dred)
              id;
          weight;
          marginal = Hashtbl.find_opt s.marginals id;
        }

  let marginal s id = Hashtbl.find_opt s.marginals id

  (* Sessions already maintain the fact↔factor adjacency (the provenance
     index), so the local walk runs over it directly — no rule-table
     probes.  Boundary clamps prefer the last refresh's estimate, then
     the extraction prior read off the fact's singleton factor.  The
     view is live (closures over the provenance index), so it is rebuilt
     per call — construction is a handful of closures; use {!snapshot}
     for a frozen, domain-shareable copy instead. *)
  let live_view s =
    let pi = Gamma.pi s.engine.kb in
    let adj = Incremental.Dred.local_adjacency s.dred in
    let prov = Incremental.Dred.provenance s.dred in
    let g = graph s in
    let clamp bid =
      match Hashtbl.find_opt s.marginals bid with
      | Some p -> p
      | None -> (
        match Incremental.Provenance.singleton_of prov bid with
        | Some f ->
          let _, _, _, w = Factor_graph.Fgraph.factor g f in
          sigmoid w
        | None -> 0.5)
    in
    let view_of id =
      match Storage.row_of_id pi id with
      | None -> None
      | Some row ->
        Some
          {
            Snapshot.id;
            base = Incremental.Provenance.is_base prov id;
            weight = Table.weight (Storage.table pi) row;
            marginal = Hashtbl.find_opt s.marginals id;
          }
    in
    Snapshot.live ~epoch:s.epoch ~gibbs:(gibbs_options s.engine)
      ~exact_max_vars:s.engine.config.Config.exact_max_vars
      ~max_width:s.engine.config.Config.max_width ~obs:s.engine.trace
      ~marginal_of:(fun id -> Hashtbl.find_opt s.marginals id)
      ~view_of
      ~source:(Grounding.Local.of_adjacency adj)
      ~clamp
      ~find:(fun ~r ~x ~c1 ~y ~c2 -> Storage.find pi ~r ~x ~c1 ~y ~c2)
      ~facts:(fun () -> Storage.size pi)
      ~factors:(fun () -> Factor_graph.Fgraph.size g)
      ()

  (* The session's frozen snapshot: everything the read path needs,
     copied once per epoch (cached until the next mutation), sharing
     nothing mutable with later epochs. *)
  let snapshot s =
    match s.read with
    | Some v -> v
    | None ->
      let v =
        Snapshot.freeze ~epoch:s.epoch ~marginals:s.marginals
          ~gibbs:(gibbs_options s.engine)
          ~exact_max_vars:s.engine.config.Config.exact_max_vars
          ~max_width:s.engine.config.Config.max_width ~obs:s.engine.trace
          ~pi:(Gamma.pi s.engine.kb) ~graph:(graph s) ()
      in
      s.read <- Some v;
      v

  let query_local ?budget s ~r ~x ~c1 ~y ~c2 =
    Obs.with_ambient s.engine.trace @@ fun () ->
    Snapshot.query_local ?budget (live_view s) ~r ~x ~c1 ~y ~c2
end

let session t =
  let e = expand t in
  {
    Session.engine = t;
    dred = Incremental.Dred.create ~obs:t.trace t.kb e.graph;
    epoch = 0;
    state = Hashtbl.create 256;
    marginals = Hashtbl.create 256;
    touched = Hashtbl.create 64;
    last_info = None;
    last_solve = None;
    history = [];
    read = None;
  }

(* ------------------------------------------------------------------ *)
(* The Snapshot/Writer split: an immutable, domain-shareable read arm
   and a single mutable write arm that builds the next epoch and
   atomically publishes it (MVCC-by-epoch; see DESIGN.md §13). *)

module Writer = struct
  type t = { session : Session.t; published : Snapshot.t Atomic.t }

  let of_session s = { session = s; published = Atomic.make (Session.snapshot s) }
  let session w = w.session
  let published w = Atomic.get w.published

  let publish w =
    let v = Session.snapshot w.session in
    Atomic.set w.published v;
    v

  let epoch_lag w =
    Session.epoch w.session - Snapshot.epoch (Atomic.get w.published)
end

module Snapshot = struct
  include Snapshot

  let of_engine = read_view
  let of_session = Session.snapshot
end

let incorporate t facts =
  t.read <- None;
  let pi = Gamma.pi t.kb in
  let delta =
    Table.create ~weighted:true ~name:"delta"
      [| "I"; "R"; "x"; "C1"; "y"; "C2" |]
  in
  List.iter
    (fun (r, x, c1, y, c2, w) ->
      match Storage.find pi ~r ~x ~c1 ~y ~c2 with
      | None ->
        let id = Gamma.add_fact t.kb ~r ~x ~c1 ~y ~c2 ~w in
        Table.append_w delta [| id; r; x; c1; y; c2 |] w
      | Some id ->
        (* An extraction arriving for an already-inferred fact promotes it
           to a base fact (same semantics as [Incremental.Dred.ingest]):
           it takes the extraction weight; its consequences are already
           derived, so it does not seed the delta. *)
        let tbl = Storage.table pi in
        (match Storage.row_of_id pi id with
        | Some row
          when Table.is_null_weight (Table.weight tbl row)
               && not (Table.is_null_weight w) ->
          Table.set_weight tbl row w
        | _ -> ()))
    facts;
  let inserted = Table.nrows delta in
  if inserted = 0 then (0, 0)
  else begin
    let result =
      Grounding.Ground.closure
        ~options:
          {
            Grounding.Ground.default_options with
            max_iterations = t.config.Config.max_iterations;
            initial_delta = Some delta;
            obs = t.trace;
          }
        t.kb
    in
    (inserted, result.Grounding.Ground.new_fact_count)
  end
