(** Reports for pipeline results: each result type has a [pp_*] printer
    for humans and a [*_to_json] encoder for machines, so the CLI and the
    benchmarks render the same data without private formatting code. *)

module Json = Obs.Json

(** [pp_expansion ppf e] prints a one-paragraph expansion summary
    (iterations, new facts, constraint removals, factor counts, wall and
    simulated time). *)
val pp_expansion : Format.formatter -> Engine.expansion -> unit

val expansion_to_json : Engine.expansion -> Json.t

(** [pp_trajectory ppf traj] plots the expansion curve as text: one bar
    per closure iteration, scaled to the peak new-fact count, annotated
    with constraint violations and removals. *)
val pp_trajectory :
  Format.formatter -> Grounding.Ground.trajectory_point list -> unit

val trajectory_to_json : Grounding.Ground.trajectory_point list -> Json.t

(** [pp_inference ppf i] prints the per-method solve report: sweeps /
    early-stop sweep / final R̂ and ESS for samplers, component counts
    for exact runs, and the per-solver breakdown (fraction settled
    exactly, junction-tree width, residual sampler line) for hybrid
    runs. *)
val pp_inference : Format.formatter -> Inference.Marginal.solve_info -> unit

val inference_to_json : Inference.Marginal.solve_info -> Json.t

(** [pp_result ppf r] is {!pp_expansion} plus the inference stage. *)
val pp_result : Format.formatter -> Engine.result -> unit

val result_to_json : Engine.result -> Json.t

(** [pp_kb ppf kb] prints the Table 2-style statistics block followed by
    the per-relation fact counts (largest first, capped at 10). *)
val pp_kb : Format.formatter -> Kb.Gamma.t -> unit

(** [kb_to_json kb] is the full statistics block (all relations). *)
val kb_to_json : Kb.Gamma.t -> Json.t

(** Trace summaries, re-exported for symmetry. *)
val pp_summary : Format.formatter -> Obs.Summary.t -> unit

val summary_to_json : Obs.Summary.t -> Json.t

(** [pp_epoch ppf st] prints one session epoch's ledger line. *)
val pp_epoch : Format.formatter -> Engine.Session.epoch_stats -> unit

val epoch_to_json : Engine.Session.epoch_stats -> Json.t
