module Fgraph = Factor_graph.Fgraph

type stats = { n_colors : int; ideal_speedup : float }

let neighbors c v each =
  for k = c.Fgraph.adj_off.(v) to c.Fgraph.adj_off.(v + 1) - 1 do
    let f = c.Fgraph.adj.(k) in
    let touch u = if u >= 0 && u <> v then each u in
    touch c.Fgraph.head.(f);
    touch c.Fgraph.body1.(f);
    touch c.Fgraph.body2.(f)
  done

let color c =
  let n = Fgraph.nvars c in
  let colors = Array.make n (-1) in
  let forbidden = Array.make (n + 1) (-1) in
  for v = 0 to n - 1 do
    neighbors c v (fun u -> if colors.(u) >= 0 then forbidden.(colors.(u)) <- v);
    let k = ref 0 in
    while forbidden.(!k) = v do
      incr k
    done;
    colors.(v) <- !k
  done;
  colors

let classes colors =
  let n_colors = 1 + Array.fold_left max (-1) colors in
  let by_color = Array.make n_colors [] in
  Array.iteri (fun v k -> by_color.(k) <- v :: by_color.(k)) colors;
  Array.map (fun l -> Array.of_list (List.rev l)) by_color

let verify_coloring c colors =
  let ok = ref true in
  let check u v = if u >= 0 && v >= 0 && u <> v && colors.(u) = colors.(v) then ok := false in
  Array.iteri
    (fun f _ ->
      let h = c.Fgraph.head.(f)
      and b1 = c.Fgraph.body1.(f)
      and b2 = c.Fgraph.body2.(f) in
      check h b1;
      check h b2;
      check b1 b2)
    c.Fgraph.fweight;
  !ok

let debug_checks =
  lazy
    (match Sys.getenv_opt "PROBKB_DEBUG" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false)

(* Fixed chunking of a colour class, independent of the pool size: the RNG
   stream of a chunk is derived from (seed, sweep, global chunk id), so the
   Markov chain — and hence the marginals — is bit-identical for any
   PROBKB_DOMAINS. *)
let chunk_size = 256

type run_info = {
  sweeps_run : int;
  stopped_at_sweep : int option;
  diag : Diagnostics.Online.report option;
  assignment : bool array;
}

let default_checkpoint = 20

let marginals_info ?(options = Gibbs.default_options) ?(obs = Obs.null) ?pool
    ?(checkpoint = default_checkpoint) ?online ?early_stop ?init c =
  if checkpoint < 1 then invalid_arg "Chromatic.marginals: checkpoint < 1";
  let n = Fgraph.nvars c in
  let t_start = if Obs.enabled obs then Unix.gettimeofday () else 0. in
  let colors = color c in
  if Lazy.force debug_checks && not (verify_coloring c colors) then
    invalid_arg "Chromatic.marginals: improper coloring";
  let by_color = classes colors in
  let pool = match pool with Some p -> p | None -> Pool.get_default () in
  (* Online diagnostics are on whenever an early-stop criterion needs
     them; [~online:true] turns them on for reporting alone. *)
  let diag =
    let requested =
      match online with Some b -> b | None -> early_stop <> None
    in
    if requested then Some (Diagnostics.Online.create ~segment:checkpoint n)
    else None
  in
  (* Chunks of each class, with schedule-order global ids. *)
  let class_chunks =
    Array.map
      (fun cls ->
        let len = Array.length cls in
        let nc = (len + chunk_size - 1) / chunk_size in
        Array.init nc (fun j ->
            (j * chunk_size, min len ((j + 1) * chunk_size))))
      by_color
  in
  let chunk_id0 = Array.make (Array.length by_color) 0 in
  let total = ref 0 in
  Array.iteri
    (fun k chs ->
      chunk_id0.(k) <- !total;
      total := !total + Array.length chs)
    class_chunks;
  (* Warm start: [init v] supplies the starting state of dense variable
     [v]; [None] falls back to a fresh random draw.  The fallback draws
     come from the same single-threaded stream in ascending variable
     order, so the initial state — and hence the whole chain — is a
     deterministic function of (seed, init) at any pool size. *)
  let init_rng = Random.State.make [| options.seed |] in
  let assignment =
    match init with
    | None -> Array.init n (fun _ -> Random.State.bool init_rng)
    | Some f ->
      Array.init n (fun v ->
          match f v with
          | Some b -> b
          | None -> Random.State.bool init_rng)
  in
  let acc = Array.make n 0. in
  let sweep_no = ref 0 in
  let sweep estimate =
    incr sweep_no;
    let s = !sweep_no in
    (* Refetched per sweep: a segment roll in [begin_sweep] swaps the
       accumulator arrays behind the view. *)
    let dview =
      match (estimate, diag) with
      | true, Some o -> Some (Diagnostics.Online.view o)
      | _ -> None
    in
    (* Spans share the name "sweep"/"class k" on purpose: the summary
       aggregates by path, so the tree stays bounded by the colour count
       while still timing every class of every sweep. *)
    Obs.with_span obs "sweep" ~cat:"inference" (fun () ->
        Array.iteri
          (fun k cls ->
            (* One parallel step: variables of a colour class share no
               factor, so their conditionals are mutually independent —
               neither the conditional of [v] nor its flip touches any
               state another chunk of the same class reads.  Classes are
               separated by the pool barrier. *)
            Obs.with_span obs
              (Printf.sprintf "class %d" k)
              ~cat:"inference"
              (fun () ->
                let chs = class_chunks.(k) in
                Pool.parallel_for pool ~n:(Array.length chs) (fun j ->
                    let lo, hi = chs.(j) in
                    let rng =
                      Random.State.make [| options.seed; s; chunk_id0.(k) + j |]
                    in
                    (* Three copies of the inner loop so the estimate and
                       diagnostics tests happen once per chunk, not once
                       per variable, and the Welford + lag-1 update is
                       inlined through the view rather than paying a
                       cross-module call per variable. *)
                    match (estimate, dview) with
                    | true, Some vw ->
                      let mean = vw.Diagnostics.Online.v_mean
                      and m2 = vw.Diagnostics.Online.v_m2
                      and ic = vw.Diagnostics.Online.v_inv_count
                      and prev = vw.Diagnostics.Online.v_prev
                      and cross = vw.Diagnostics.Online.v_cross in
                      for i = lo to hi - 1 do
                        let v = cls.(i) in
                        let p = Gibbs.conditional c assignment v in
                        assignment.(v) <- Random.State.float rng 1. < p;
                        acc.(v) <- acc.(v) +. p;
                        let d = p -. mean.(v) in
                        let m = mean.(v) +. (d *. ic) in
                        mean.(v) <- m;
                        m2.(v) <- m2.(v) +. (d *. (p -. m));
                        cross.(v) <- cross.(v) +. (p *. prev.(v));
                        prev.(v) <- p
                      done
                    | true, None ->
                      for i = lo to hi - 1 do
                        let v = cls.(i) in
                        let p = Gibbs.conditional c assignment v in
                        assignment.(v) <- Random.State.float rng 1. < p;
                        acc.(v) <- acc.(v) +. p
                      done
                    | false, _ ->
                      for i = lo to hi - 1 do
                        let v = cls.(i) in
                        let p = Gibbs.conditional c assignment v in
                        assignment.(v) <- Random.State.float rng 1. < p
                      done)))
          by_color)
  in
  (* Checkpoint emission: volatile rates are computed only when a sink is
     installed, so a metrics-off run pays nothing for the plumbing. *)
  let last_snap_t = ref (Unix.gettimeofday ()) in
  let last_snap_sweep = ref 0 in
  let snap ~phase ~step data =
    if Obs.snapshots_enabled obs then begin
      let t = Unix.gettimeofday () in
      let dt = t -. !last_snap_t in
      let swept = !sweep_no - !last_snap_sweep in
      let rate =
        if dt > 0. then float_of_int (swept * n) /. dt else 0.
      in
      last_snap_t := t;
      last_snap_sweep := !sweep_no;
      Obs.snapshot obs ~stage:"gibbs" ~point:"checkpoint" ~step
        ~perf:(("samples_per_sec", Obs.F rate) :: Obs.mem_stats ())
        (("phase", Obs.S phase)
        :: ("vars", Obs.I n)
        :: ("colors", Obs.I (Array.length by_color))
        :: data)
    end
  in
  Obs.with_span obs "burn_in" ~cat:"inference" (fun () ->
      for s = 1 to options.burn_in do
        sweep false;
        if s mod checkpoint = 0 || s = options.burn_in then
          snap ~phase:"burn_in" ~step:s []
      done);
  let stopped = ref None in
  let est_sweeps = ref 0 in
  let final_report = ref None in
  (* A checkpoint report is computed only when something consumes it — a
     stop criterion or an installed snapshot sink. *)
  let need_checkpoint_report () =
    early_stop <> None || Obs.snapshots_enabled obs
  in
  Obs.with_span obs "sampling" ~cat:"inference" (fun () ->
      try
        for s = 1 to options.samples do
          (match diag with
          | Some o -> Diagnostics.Online.begin_sweep o
          | None -> ());
          sweep true;
          est_sweeps := s;
          if s mod checkpoint = 0 || s = options.samples then begin
            let rep =
              match diag with
              | Some o when need_checkpoint_report () ->
                Some (Diagnostics.Online.report o)
              | _ -> None
            in
            final_report := rep;
            snap ~phase:"sampling" ~step:s
              (match rep with
              | Some r ->
                [
                  ("max_r_hat", Obs.F r.Diagnostics.Online.max_r_hat);
                  ("min_ess", Obs.F r.Diagnostics.Online.min_ess);
                ]
              | None -> []);
            match (early_stop, rep) with
            | Some crit, Some r
              when s < options.samples
                   && Diagnostics.Online.satisfied crit r ->
              stopped := Some s;
              raise Exit
            | _ -> ()
          end
        done
      with Exit -> ());
  let diag_report =
    match !final_report with
    | Some _ as r -> r
    | None -> Option.map Diagnostics.Online.report diag
  in
  if Obs.enabled obs then begin
    let elapsed = Unix.gettimeofday () -. t_start in
    Obs.add obs "gibbs.sweeps" !sweep_no;
    Obs.add obs "gibbs.variables" n;
    Obs.gauge obs "gibbs.colors" (float_of_int (Array.length by_color));
    (match !stopped with
    | Some s -> Obs.gauge obs "gibbs.stopped_at_sweep" (float_of_int s)
    | None -> ());
    if elapsed > 0. then
      Obs.gauge obs "gibbs.samples_per_sec"
        (float_of_int (!sweep_no * n) /. elapsed)
  end;
  ( Array.map (fun a -> a /. float_of_int (max 1 !est_sweeps)) acc,
    {
      sweeps_run = !est_sweeps;
      stopped_at_sweep = !stopped;
      diag = diag_report;
      assignment;
    } )

let marginals ?options ?obs ?pool c =
  fst (marginals_info ?options ?obs ?pool c)

let schedule_stats c =
  let by_color = classes (color c) in
  let n_colors = Array.length by_color in
  let n = float_of_int (Fgraph.nvars c) in
  (* With unbounded processors each colour costs one step. *)
  let span = float_of_int (max 1 n_colors) in
  { n_colors; ideal_speedup = (if n = 0. then 1. else n /. span) }
