module Fgraph = Factor_graph.Fgraph

type stats = { n_colors : int; ideal_speedup : float }

let neighbors c v each =
  for k = c.Fgraph.adj_off.(v) to c.Fgraph.adj_off.(v + 1) - 1 do
    let f = c.Fgraph.adj.(k) in
    let touch u = if u >= 0 && u <> v then each u in
    touch c.Fgraph.head.(f);
    touch c.Fgraph.body1.(f);
    touch c.Fgraph.body2.(f)
  done

let color c =
  let n = Fgraph.nvars c in
  let colors = Array.make n (-1) in
  let forbidden = Array.make (n + 1) (-1) in
  for v = 0 to n - 1 do
    neighbors c v (fun u -> if colors.(u) >= 0 then forbidden.(colors.(u)) <- v);
    let k = ref 0 in
    while forbidden.(!k) = v do
      incr k
    done;
    colors.(v) <- !k
  done;
  colors

let classes colors =
  let n_colors = 1 + Array.fold_left max (-1) colors in
  let by_color = Array.make n_colors [] in
  Array.iteri (fun v k -> by_color.(k) <- v :: by_color.(k)) colors;
  Array.map (fun l -> Array.of_list (List.rev l)) by_color

let verify_coloring c colors =
  let ok = ref true in
  let check u v = if u >= 0 && v >= 0 && u <> v && colors.(u) = colors.(v) then ok := false in
  Array.iteri
    (fun f _ ->
      let h = c.Fgraph.head.(f)
      and b1 = c.Fgraph.body1.(f)
      and b2 = c.Fgraph.body2.(f) in
      check h b1;
      check h b2;
      check b1 b2)
    c.Fgraph.fweight;
  !ok

let debug_checks =
  lazy
    (match Sys.getenv_opt "PROBKB_DEBUG" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false)

(* Fixed chunking of a colour class, independent of the pool size: the RNG
   stream of a chunk is derived from (seed, sweep, global chunk id), so the
   Markov chain — and hence the marginals — is bit-identical for any
   PROBKB_DOMAINS. *)
let chunk_size = 256

let marginals ?(options = Gibbs.default_options) ?(obs = Obs.null) ?pool c =
  let n = Fgraph.nvars c in
  let t_start = if Obs.enabled obs then Unix.gettimeofday () else 0. in
  let colors = color c in
  if Lazy.force debug_checks && not (verify_coloring c colors) then
    invalid_arg "Chromatic.marginals: improper coloring";
  let by_color = classes colors in
  let pool = match pool with Some p -> p | None -> Pool.get_default () in
  (* Chunks of each class, with schedule-order global ids. *)
  let class_chunks =
    Array.map
      (fun cls ->
        let len = Array.length cls in
        let nc = (len + chunk_size - 1) / chunk_size in
        Array.init nc (fun j ->
            (j * chunk_size, min len ((j + 1) * chunk_size))))
      by_color
  in
  let chunk_id0 = Array.make (Array.length by_color) 0 in
  let total = ref 0 in
  Array.iteri
    (fun k chs ->
      chunk_id0.(k) <- !total;
      total := !total + Array.length chs)
    class_chunks;
  let init_rng = Random.State.make [| options.seed |] in
  let assignment = Array.init n (fun _ -> Random.State.bool init_rng) in
  let acc = Array.make n 0. in
  let sweep_no = ref 0 in
  let sweep estimate =
    incr sweep_no;
    let s = !sweep_no in
    (* Spans share the name "sweep"/"class k" on purpose: the summary
       aggregates by path, so the tree stays bounded by the colour count
       while still timing every class of every sweep. *)
    Obs.with_span obs "sweep" ~cat:"inference" (fun () ->
        Array.iteri
          (fun k cls ->
            (* One parallel step: variables of a colour class share no
               factor, so their conditionals are mutually independent —
               neither the conditional of [v] nor its flip touches any
               state another chunk of the same class reads.  Classes are
               separated by the pool barrier. *)
            Obs.with_span obs
              (Printf.sprintf "class %d" k)
              ~cat:"inference"
              (fun () ->
                let chs = class_chunks.(k) in
                Pool.parallel_for pool ~n:(Array.length chs) (fun j ->
                    let lo, hi = chs.(j) in
                    let rng =
                      Random.State.make [| options.seed; s; chunk_id0.(k) + j |]
                    in
                    for i = lo to hi - 1 do
                      let v = cls.(i) in
                      let p = Gibbs.conditional c assignment v in
                      assignment.(v) <- Random.State.float rng 1. < p;
                      if estimate then acc.(v) <- acc.(v) +. p
                    done)))
          by_color)
  in
  Obs.with_span obs "burn_in" ~cat:"inference" (fun () ->
      for _ = 1 to options.burn_in do
        sweep false
      done);
  Obs.with_span obs "sampling" ~cat:"inference" (fun () ->
      for _ = 1 to options.samples do
        sweep true
      done);
  if Obs.enabled obs then begin
    let elapsed = Unix.gettimeofday () -. t_start in
    Obs.add obs "gibbs.sweeps" !sweep_no;
    Obs.add obs "gibbs.variables" n;
    Obs.gauge obs "gibbs.colors" (float_of_int (Array.length by_color));
    if elapsed > 0. then
      Obs.gauge obs "gibbs.samples_per_sec"
        (float_of_int (!sweep_no * n) /. elapsed)
  end;
  Array.map (fun a -> a /. float_of_int (max 1 options.samples)) acc

let schedule_stats c =
  let by_color = classes (color c) in
  let n_colors = Array.length by_color in
  let n = float_of_int (Fgraph.nvars c) in
  (* With unbounded processors each colour costs one step. *)
  let span = float_of_int (max 1 n_colors) in
  { n_colors; ideal_speedup = (if n = 0. then 1. else n /. span) }
