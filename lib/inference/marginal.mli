(** Front-end for marginal inference over a ground factor graph.

    Completes the ProbKB pipeline of Figure 1: grounding produces [TΦ]; an
    inference engine turns it into per-fact marginal probabilities that are
    stored back into the knowledge base, avoiding query-time computation
    (paper, Section 2.2).

    Methods are dispatched per call; {!Hybrid} additionally dispatches
    {e per connected component} — enumeration, junction-tree variable
    elimination, or chromatic Gibbs on the high-treewidth cores only
    (see {!Hybrid} and DESIGN.md §15). *)

type method_ =
  | Exact  (** enumeration; small components only *)
  | Gibbs of Gibbs.options
  | Chromatic of Gibbs.options  (** the GraphLab-style parallel schedule *)
  | Bp of Bp.options  (** loopy belief propagation (sum-product) *)
  | Hybrid of Hybrid.options
      (** per-component exact-or-sampled dispatch ({!Hybrid.solve}) *)

(** What each method reports about its run — every method returns its
    own constructor, so callers never get a misleading [None] (the old
    interface surfaced only {!Chromatic.run_info}). *)
type solve_info =
  | Enumerated_run of { components : int; max_component_vars : int }
      (** {!Exact}: component count and the largest enumerated size *)
  | Gibbs_run of { sweeps : int }
      (** sequential sampler: estimation sweeps actually executed
          ({!Gibbs.run_info}) *)
  | Chromatic_run of Chromatic.run_info
  | Bp_run of Bp.stats
  | Hybrid_run of Hybrid.report

(** [infer ?obs g method_] compiles [g] and returns fact identifier →
    P(fact = true).  [obs] (default {!Obs.null}) is threaded to engines
    that record telemetry ({!Chromatic} and {!Hybrid}). *)
val infer :
  ?obs:Obs.t -> Factor_graph.Fgraph.t -> method_ -> (int, float) Hashtbl.t

(** [infer_full ?obs ?checkpoint ?online ?early_stop g method_] is
    {!infer} plus the method's {!solve_info}.
    [checkpoint]/[online]/[early_stop] affect the sampling methods
    ({!Chromatic}, and {!Hybrid}'s residual run); see
    {!Chromatic.marginals_info} for their semantics. *)
val infer_full :
  ?obs:Obs.t ->
  ?checkpoint:int ->
  ?online:bool ->
  ?early_stop:Diagnostics.Online.criteria ->
  Factor_graph.Fgraph.t ->
  method_ ->
  (int, float) Hashtbl.t * solve_info

(** [infer_compiled ?obs c method_] runs on an already compiled graph and
    returns marginals per dense variable. *)
val infer_compiled :
  ?obs:Obs.t -> Factor_graph.Fgraph.compiled -> method_ -> float array

(** {!infer_compiled} with the method's {!solve_info}. *)
val infer_compiled_full :
  ?obs:Obs.t ->
  ?checkpoint:int ->
  ?online:bool ->
  ?early_stop:Diagnostics.Online.criteria ->
  Factor_graph.Fgraph.compiled ->
  method_ ->
  float array * solve_info
