(** Front-end for marginal inference over a ground factor graph.

    Completes the ProbKB pipeline of Figure 1: grounding produces [TΦ]; an
    inference engine turns it into per-fact marginal probabilities that are
    stored back into the knowledge base, avoiding query-time computation
    (paper, Section 2.2). *)

type method_ =
  | Exact  (** enumeration; small graphs only *)
  | Gibbs of Gibbs.options
  | Chromatic of Gibbs.options  (** the GraphLab-style parallel schedule *)
  | Bp of Bp.options  (** loopy belief propagation (sum-product) *)

(** [infer ?obs g method_] compiles [g] and returns fact identifier →
    P(fact = true).  [obs] (default {!Obs.null}) is threaded to samplers
    that record telemetry (currently {!Chromatic}). *)
val infer :
  ?obs:Obs.t -> Factor_graph.Fgraph.t -> method_ -> (int, float) Hashtbl.t

(** [infer_full ?obs ?checkpoint ?online ?early_stop g method_] is
    {!infer} plus the sampler's {!Chromatic.run_info} when [method_] is
    {!Chromatic} ([None] otherwise — the extra arguments only affect that
    method).  See {!Chromatic.marginals_info} for their semantics. *)
val infer_full :
  ?obs:Obs.t ->
  ?checkpoint:int ->
  ?online:bool ->
  ?early_stop:Diagnostics.Online.criteria ->
  Factor_graph.Fgraph.t ->
  method_ ->
  (int, float) Hashtbl.t * Chromatic.run_info option

(** [infer_compiled ?obs c method_] runs on an already compiled graph and
    returns marginals per dense variable. *)
val infer_compiled :
  ?obs:Obs.t -> Factor_graph.Fgraph.compiled -> method_ -> float array

(** {!infer_compiled} with the {!Chromatic.run_info} of a Chromatic run. *)
val infer_compiled_full :
  ?obs:Obs.t ->
  ?checkpoint:int ->
  ?online:bool ->
  ?early_stop:Diagnostics.Online.criteria ->
  Factor_graph.Fgraph.compiled ->
  method_ ->
  float array * Chromatic.run_info option
