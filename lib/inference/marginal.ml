module Fgraph = Factor_graph.Fgraph

type method_ =
  | Exact
  | Gibbs of Gibbs.options
  | Chromatic of Gibbs.options
  | Bp of Bp.options

let infer_compiled ?(obs = Obs.null) c = function
  | Exact -> Exact.marginals c
  | Gibbs options -> Gibbs.marginals ~options c
  | Chromatic options -> Chromatic.marginals ~options ~obs c
  | Bp options -> fst (Bp.marginals ~options c)

let infer ?obs g m =
  let c = Fgraph.compile g in
  let marg = infer_compiled ?obs c m in
  let out = Hashtbl.create (Array.length marg) in
  Array.iteri (fun v p -> Hashtbl.replace out c.Fgraph.var_ids.(v) p) marg;
  out
