module Fgraph = Factor_graph.Fgraph

type method_ =
  | Exact
  | Gibbs of Gibbs.options
  | Chromatic of Gibbs.options
  | Bp of Bp.options

let infer_compiled_full ?(obs = Obs.null) ?checkpoint ?online ?early_stop c =
  function
  | Exact -> (Exact.marginals c, None)
  | Gibbs options -> (Gibbs.marginals ~options c, None)
  | Chromatic options ->
    let marg, info =
      Chromatic.marginals_info ~options ~obs ?checkpoint ?online ?early_stop c
    in
    (marg, Some info)
  | Bp options -> (fst (Bp.marginals ~options c), None)

let infer_compiled ?obs c m = fst (infer_compiled_full ?obs c m)

let to_table c marg =
  let out = Hashtbl.create (Array.length marg) in
  Array.iteri (fun v p -> Hashtbl.replace out c.Fgraph.var_ids.(v) p) marg;
  out

let infer_full ?obs ?checkpoint ?online ?early_stop g m =
  let c = Fgraph.compile g in
  let marg, info =
    infer_compiled_full ?obs ?checkpoint ?online ?early_stop c m
  in
  (to_table c marg, info)

let infer ?obs g m = fst (infer_full ?obs g m)
