module Fgraph = Factor_graph.Fgraph

type method_ =
  | Exact
  | Gibbs of Gibbs.options
  | Chromatic of Gibbs.options
  | Bp of Bp.options
  | Hybrid of Hybrid.options

type solve_info =
  | Enumerated_run of { components : int; max_component_vars : int }
  | Gibbs_run of { sweeps : int }
  | Chromatic_run of Chromatic.run_info
  | Bp_run of Bp.stats
  | Hybrid_run of Hybrid.report

let infer_compiled_full ?(obs = Obs.null) ?checkpoint ?online ?early_stop c =
  function
  | Exact ->
    let comps = Decompose.components c in
    let marg = Array.make (Fgraph.nvars c) 0. in
    Array.iter (fun comp -> Exact.solve_component comp marg) comps;
    ( marg,
      Enumerated_run
        {
          components = Array.length comps;
          max_component_vars =
            Array.fold_left
              (fun m comp -> max m (Decompose.nvars comp))
              0 comps;
        } )
  | Gibbs options ->
    let marg, info = Gibbs.marginals_info ~options c in
    (marg, Gibbs_run { sweeps = info.Gibbs.sweeps_run })
  | Chromatic options ->
    let marg, info =
      Chromatic.marginals_info ~options ~obs ?checkpoint ?online ?early_stop c
    in
    (marg, Chromatic_run info)
  | Bp options ->
    let marg, stats = Bp.marginals ~options c in
    (marg, Bp_run stats)
  | Hybrid options ->
    let marg, report =
      Hybrid.solve ~options ~obs ?checkpoint ?online ?early_stop c
    in
    (marg, Hybrid_run report)

let infer_compiled ?obs c m = fst (infer_compiled_full ?obs c m)

let to_table c marg =
  let out = Hashtbl.create (Array.length marg) in
  Array.iteri (fun v p -> Hashtbl.replace out c.Fgraph.var_ids.(v) p) marg;
  out

let infer_full ?obs ?checkpoint ?online ?early_stop g m =
  let c = Fgraph.compile g in
  let marg, info =
    infer_compiled_full ?obs ?checkpoint ?online ?early_stop c m
  in
  (to_table c marg, info)

let infer ?obs g m = fst (infer_full ?obs g m)
