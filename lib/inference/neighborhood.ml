module Fgraph = Factor_graph.Fgraph

type method_used = Enumerated | Sampled

let clamp_epsilon = 1e-6

let clamp_weight p =
  let p = Float.min (1. -. clamp_epsilon) (Float.max clamp_epsilon p) in
  log (p /. (1. -. p))

let clamp_boundary g ~boundary ~prob =
  Array.iter
    (fun id -> Fgraph.add_singleton g ~i:id ~w:(clamp_weight (prob id)))
    boundary

let solve ?obs ?(options = Gibbs.default_options)
    ?(exact_max_vars = Exact.max_vars) ?(max_width = Jtree.default_max_width)
    c =
  if Fgraph.nvars c = 0 then ([||], Enumerated)
  else begin
    let marg, report =
      Hybrid.solve
        ~options:{ Hybrid.exact_max_vars; max_width; gibbs = options }
        ?obs c
    in
    (marg, if report.Hybrid.sampled_vars = 0 then Enumerated else Sampled)
  end
