(** Exact marginals by junction-tree variable elimination.

    Generalizes the ≤{!Exact.max_vars}-variable enumerator to any
    component whose {e induced width} is small: bucket elimination along
    a {!Triangulate} order defines a clique tree, and one upward plus
    one downward message pass yields every single-variable marginal —
    cost O(n · 2^(width+1)) instead of 2^nvars, so thousand-variable
    trees and chains solve exactly in microseconds.

    Deterministic and RNG-free: results are a pure function of the
    canonical component and the elimination order.  Unlike {!Exact}'s
    enumerator the accumulation order differs from enumeration's, so
    marginals agree with {!Exact.marginals} to float tolerance, not bit
    for bit — which is why the {!Hybrid} dispatcher routes components
    under the enumeration cap through {!Exact} and reserves this module
    for larger low-width components.

    Potentials are max-normalized at every combine, keeping tables in
    (0, 1] with an exact 1.0 present — no overflow or all-zero
    underflow; the normalization constants cancel in the final
    per-variable ratio. *)

(** Default induced-width bound for dispatching to this module (12 —
    tables of at most 2^13 entries). *)
val default_max_width : int

(** Hard allocation guard on clique size; {!solve} raises
    [Invalid_argument] beyond it. *)
val max_clique_vars : int

(** [solve ?order comp] is the exact marginal P(X = 1) per {e local}
    variable of one canonical component (indexed like
    [comp.Decompose.vars]).  [order] is an elimination order from
    {!Triangulate.analyze} (recomputed when absent).
    @raise Invalid_argument when a clique exceeds {!max_clique_vars}. *)
val solve : ?order:int array -> Decompose.component -> float array

(** [marginals ?max_width c] solves every component by variable
    elimination — the whole-graph convenience used by tests and benches.
    @raise Invalid_argument when some component's induced width exceeds
    [max_width] (default {!default_max_width}). *)
val marginals :
  ?max_width:int -> Factor_graph.Fgraph.compiled -> float array
