(** Elimination orders and induced-width estimates per component.

    The dispatcher needs to know, per connected component, whether
    variable elimination is feasible: it is when the component's {e
    induced width} along a good elimination order stays under a bound
    (tables of 2^(width+1) entries).  This module computes a Maximum
    Cardinality Search order (Tarjan & Yannakakis — exact on chordal
    graphs, a standard heuristic otherwise) over the component's
    variable-interaction graph and the width its fill-in induces.

    Everything here is deterministic: the order is a pure function of
    the canonical component ({!Decompose}), so repeated analyses — and
    analyses of the same component reached through a locally grounded
    subgraph — agree. *)

type t = {
  order : int array;
      (** elimination order over local variables: [order.(0)] is
          eliminated first (the reverse of the MCS visit order) *)
  width : int;
      (** induced width along [order]: the largest uneliminated
          neighbourhood met while eliminating with fill-in (0 for a
          single variable, 1 for trees and chains, 2 for simple
          cycles).  When a [cap] was given and exceeded, reported as
          [cap + 1] (a lower bound) *)
}

(** [analyze ?cap comp] is the MCS elimination order and its induced
    width.  [cap] bounds the fill-in simulation: computation stops as
    soon as the width provably exceeds it (reported as [cap + 1]),
    keeping the cost on huge high-treewidth cores at O(m + n·cap²). *)
val analyze : ?cap:int -> Decompose.component -> t

(** [width_of ?cap comp] is [(analyze ?cap comp).width]. *)
val width_of : ?cap:int -> Decompose.component -> int
