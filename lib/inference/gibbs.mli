(** Gibbs sampling for marginal inference.

    ProbKB delegates marginal inference over the ground factor graph to a
    Gibbs sampler (the paper uses the parallel sampler of GraphLab; see
    also {!Chromatic}).  This module is the sequential sweep sampler with
    Rao-Blackwellized marginal estimates: instead of averaging 0/1 samples
    it averages the exact conditional P(Xᵥ = 1 | rest) used at each update,
    which has strictly lower variance. *)

type options = {
  burn_in : int;  (** sweeps discarded before estimation *)
  samples : int;  (** estimation sweeps *)
  seed : int;  (** RNG seed (runs are deterministic given the seed) *)
}

val default_options : options

(** [conditional c assignment v] is P(Xᵥ = 1 | X₋ᵥ) under the current
    assignment — exposed for the chromatic sampler and for tests. *)
val conditional : Factor_graph.Fgraph.compiled -> bool array -> int -> float

(** Estimation sweeps actually executed — measured by the loop, not
    echoed from [options], so reports stay honest if a run is ever cut
    short (mirrors {!Chromatic.run_info}). *)
type run_info = { sweeps_run : int }

(** [marginals ?options c] estimates the marginal P(X = 1) per dense
    variable. *)
val marginals : ?options:options -> Factor_graph.Fgraph.compiled -> float array

(** {!marginals} plus the measured {!run_info}. *)
val marginals_info :
  ?options:options -> Factor_graph.Fgraph.compiled -> float array * run_info
