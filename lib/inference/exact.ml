module Fgraph = Factor_graph.Fgraph

let max_vars = 25

let sum_weights c assignment =
  let total = ref 0. in
  for f = 0 to Array.length c.Fgraph.head - 1 do
    if Fgraph.satisfied c f assignment then
      total := !total +. c.Fgraph.fweight.(f)
  done;
  !total

let fold_worlds c k =
  let n = Fgraph.nvars c in
  if n > max_vars then
    invalid_arg
      (Printf.sprintf "Exact: %d variables exceeds the limit of %d" n max_vars);
  let assignment = Array.make n false in
  for world = 0 to (1 lsl n) - 1 do
    for v = 0 to n - 1 do
      assignment.(v) <- (world lsr v) land 1 = 1
    done;
    k assignment
  done

(* --- connected components --------------------------------------------

   The measure factorizes over connected components of the factor graph,
   so marginals are computed per component: 2^c worlds for each component
   of c variables instead of 2^n for the whole graph, and the {!max_vars}
   cap applies per component.

   Within a component everything is *canonicalized* before enumeration:
   factors are ordered by their fact-id row [(I1, I2, I3, w)] and
   variables by first mention in that order.  Floating-point accumulation
   then visits the same values in the same order regardless of how the
   graph was assembled — which is what lets a locally grounded
   neighbourhood ([Grounding.Local], whose subgraph table is emitted in
   exactly that canonical order) reproduce the full-closure marginals
   bit for bit. *)

let components c =
  let n = Fgraph.nvars c in
  let parent = Array.init n Fun.id in
  let rec find v =
    if parent.(v) = v then v
    else begin
      let r = find parent.(v) in
      parent.(v) <- r;
      r
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(max ra rb) <- find (min ra rb)
  in
  let m = Array.length c.Fgraph.head in
  for f = 0 to m - 1 do
    let h = c.Fgraph.head.(f) in
    if c.Fgraph.body1.(f) >= 0 then union h c.Fgraph.body1.(f);
    if c.Fgraph.body2.(f) >= 0 then union h c.Fgraph.body2.(f)
  done;
  (* Factor lists per root, in factor order (re-sorted canonically later). *)
  let groups = Hashtbl.create 16 in
  for f = m - 1 downto 0 do
    let root = find c.Fgraph.head.(f) in
    Hashtbl.replace groups root
      (f :: Option.value ~default:[] (Hashtbl.find_opt groups root))
  done;
  groups

let max_component_size c =
  let n = Fgraph.nvars c in
  if n = 0 then 0
  else begin
    let groups = components c in
    let sizes = Hashtbl.create 16 in
    (* Count variables per root: every variable is mentioned by at least
       one factor (compile interns them from factors), so walking each
       group's factors with a seen-set counts exactly the member vars. *)
    let largest = ref 0 in
    Hashtbl.iter
      (fun _root fs ->
        Hashtbl.reset sizes;
        List.iter
          (fun f ->
            let mark v = if v >= 0 then Hashtbl.replace sizes v () in
            mark c.Fgraph.head.(f);
            mark c.Fgraph.body1.(f);
            mark c.Fgraph.body2.(f))
          fs;
        largest := max !largest (Hashtbl.length sizes))
      groups;
    !largest
  end

let factor_key c f =
  let id v = if v < 0 then Fgraph.null else c.Fgraph.var_ids.(v) in
  ( id c.Fgraph.head.(f),
    id c.Fgraph.body1.(f),
    id c.Fgraph.body2.(f),
    c.Fgraph.fweight.(f) )

let cmp_key (a1, a2, a3, aw) (b1, b2, b3, bw) =
  let c = Int.compare a1 b1 in
  if c <> 0 then c
  else
    let c = Int.compare a2 b2 in
    if c <> 0 then c
    else
      let c = Int.compare a3 b3 in
      if c <> 0 then c else Float.compare aw bw

(* Enumerate one component's 2^k worlds; scatter P(X=1) into [marg]. *)
let solve_component c fs marg =
  let fs =
    List.sort (fun a b -> cmp_key (factor_key c a) (factor_key c b)) fs
  in
  (* Local variable numbering: first mention, head before body, in
     canonical factor order — the numbering [Fgraph.compile] would assign
     to the canonically ordered subgraph. *)
  let lvar = Hashtbl.create 16 in
  let globals = ref [] in
  let intern v =
    if v < 0 then -1
    else
      match Hashtbl.find_opt lvar v with
      | Some i -> i
      | None ->
        let i = Hashtbl.length lvar in
        Hashtbl.add lvar v i;
        globals := v :: !globals;
        i
  in
  let m = List.length fs in
  let lh = Array.make m 0
  and lb1 = Array.make m (-1)
  and lb2 = Array.make m (-1)
  and lw = Array.make m 0.
  and lsing = Array.make m false in
  List.iteri
    (fun i f ->
      lh.(i) <- intern c.Fgraph.head.(f);
      lb1.(i) <- intern c.Fgraph.body1.(f);
      lb2.(i) <- intern c.Fgraph.body2.(f);
      lw.(i) <- c.Fgraph.fweight.(f);
      lsing.(i) <- c.Fgraph.singleton.(f))
    fs;
  let globals = Array.of_list (List.rev !globals) in
  let k = Array.length globals in
  if k > max_vars then
    invalid_arg
      (Printf.sprintf
         "Exact: a connected component of %d variables exceeds the limit \
          of %d"
         k max_vars);
  let sum_w a =
    let total = ref 0. in
    for f = 0 to m - 1 do
      let sat =
        if lsing.(f) then a.(lh.(f))
        else
          let body_true =
            (lb1.(f) < 0 || a.(lb1.(f))) && (lb2.(f) < 0 || a.(lb2.(f)))
          in
          (not body_true) || a.(lh.(f))
      in
      if sat then total := !total +. lw.(f)
    done;
    !total
  in
  let a = Array.make k false in
  let each body =
    for world = 0 to (1 lsl k) - 1 do
      for v = 0 to k - 1 do
        a.(v) <- (world lsr v) land 1 = 1
      done;
      body ()
    done
  in
  (* Stabilize with the max exponent, as the whole-graph path always did. *)
  let max_e = ref neg_infinity in
  each (fun () -> max_e := Float.max !max_e (sum_w a));
  let max_e = !max_e in
  let mass = Array.make k 0. in
  let z = ref 0. in
  each (fun () ->
      let p = exp (sum_w a -. max_e) in
      z := !z +. p;
      for v = 0 to k - 1 do
        if a.(v) then mass.(v) <- mass.(v) +. p
      done);
  for v = 0 to k - 1 do
    marg.(globals.(v)) <- mass.(v) /. !z
  done

let marginals c =
  let n = Fgraph.nvars c in
  let marg = Array.make n 0. in
  let groups = components c in
  (* Solve in ascending root order — deterministic, though components are
     independent so the order only affects nothing but traversal. *)
  let roots = Hashtbl.fold (fun root _ acc -> root :: acc) groups [] in
  List.iter
    (fun root -> solve_component c (Hashtbl.find groups root) marg)
    (List.sort compare roots);
  marg

let log_partition c =
  let max_e = ref neg_infinity in
  fold_worlds c (fun a -> max_e := Float.max !max_e (sum_weights c a));
  let z = ref 0. in
  fold_worlds c (fun a -> z := !z +. exp (sum_weights c a -. !max_e));
  !max_e +. log !z
