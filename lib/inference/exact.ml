module Fgraph = Factor_graph.Fgraph

let max_vars = 25

let sum_weights c assignment =
  let total = ref 0. in
  for f = 0 to Array.length c.Fgraph.head - 1 do
    if Fgraph.satisfied c f assignment then
      total := !total +. c.Fgraph.fweight.(f)
  done;
  !total

let fold_worlds c k =
  let n = Fgraph.nvars c in
  if n > max_vars then
    invalid_arg
      (Printf.sprintf "Exact: %d variables exceeds the limit of %d" n max_vars);
  let assignment = Array.make n false in
  for world = 0 to (1 lsl n) - 1 do
    for v = 0 to n - 1 do
      assignment.(v) <- (world lsr v) land 1 = 1
    done;
    k assignment
  done

(* The measure factorizes over connected components of the factor graph,
   so marginals are computed per component: 2^c worlds for each component
   of c variables instead of 2^n for the whole graph, and the variable
   cap applies per component.  {!Decompose} owns the component finding
   and the canonical factor/variable ordering that keeps the enumeration
   bit-reproducible across graph assemblies (see its documentation). *)

let max_component_size = Decompose.max_size

(* Enumerate one canonical component's 2^k worlds; P(X=1) per local
   variable. *)
let enumerate ?(max_vars = max_vars) comp =
  let k = Decompose.nvars comp in
  if k > max_vars then
    invalid_arg
      (Printf.sprintf
         "Exact: a connected component of %d variables exceeds the limit \
          of %d"
         k max_vars);
  let a = Array.make k false in
  let each body =
    for world = 0 to (1 lsl k) - 1 do
      for v = 0 to k - 1 do
        a.(v) <- (world lsr v) land 1 = 1
      done;
      body ()
    done
  in
  (* Stabilize with the max exponent, as the whole-graph path always did. *)
  let max_e = ref neg_infinity in
  each (fun () -> max_e := Float.max !max_e (Decompose.sum_weights comp a));
  let max_e = !max_e in
  let mass = Array.make k 0. in
  let z = ref 0. in
  each (fun () ->
      let p = exp (Decompose.sum_weights comp a -. max_e) in
      z := !z +. p;
      for v = 0 to k - 1 do
        if a.(v) then mass.(v) <- mass.(v) +. p
      done);
  let out = Array.make k 0. in
  for v = 0 to k - 1 do
    out.(v) <- mass.(v) /. !z
  done;
  out

let solve_component ?max_vars comp marg =
  let local = enumerate ?max_vars comp in
  Array.iteri (fun v p -> marg.(comp.Decompose.vars.(v)) <- p) local

let marginals ?max_vars c =
  let marg = Array.make (Fgraph.nvars c) 0. in
  (* Components come back in ascending root order — deterministic, though
     they are independent so the order affects nothing but traversal. *)
  Array.iter
    (fun comp -> solve_component ?max_vars comp marg)
    (Decompose.components c);
  marg

let log_partition c =
  let max_e = ref neg_infinity in
  fold_worlds c (fun a -> max_e := Float.max !max_e (sum_weights c a));
  let z = ref 0. in
  fold_worlds c (fun a -> z := !z +. exp (sum_weights c a -. !max_e));
  !max_e +. log !z
