module Fgraph = Factor_graph.Fgraph

type options = { burn_in : int; samples : int; seed : int }

let default_options = { burn_in = 200; samples = 800; seed = 42 }

let conditional c assignment v =
  let delta = ref 0. in
  let prev = assignment.(v) in
  for k = c.Fgraph.adj_off.(v) to c.Fgraph.adj_off.(v + 1) - 1 do
    let f = c.Fgraph.adj.(k) in
    assignment.(v) <- true;
    let s1 = Fgraph.satisfied c f assignment in
    assignment.(v) <- false;
    let s0 = Fgraph.satisfied c f assignment in
    if s1 <> s0 then
      delta :=
        !delta +. if s1 then c.Fgraph.fweight.(f) else -.c.Fgraph.fweight.(f)
  done;
  assignment.(v) <- prev;
  1. /. (1. +. exp (-. !delta))

type run_info = { sweeps_run : int }

let marginals_info ?(options = default_options) c =
  let n = Fgraph.nvars c in
  let rng = Random.State.make [| options.seed |] in
  let assignment = Array.init n (fun _ -> Random.State.bool rng) in
  let acc = Array.make n 0. in
  let sweep estimate =
    for v = 0 to n - 1 do
      let p1 = conditional c assignment v in
      assignment.(v) <- Random.State.float rng 1. < p1;
      if estimate then acc.(v) <- acc.(v) +. p1
    done
  in
  for _ = 1 to options.burn_in do
    sweep false
  done;
  let executed = ref 0 in
  for _ = 1 to options.samples do
    sweep true;
    incr executed
  done;
  ( Array.map (fun a -> a /. float_of_int (max 1 !executed)) acc,
    { sweeps_run = !executed } )

let marginals ?options c = fst (marginals_info ?options c)
