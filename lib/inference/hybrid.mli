(** Treewidth-aware hybrid inference: per-component solver dispatch.

    Ground graphs from sparse rule sets decompose into many small or
    low-treewidth components plus (sometimes) a few dense loopy cores.
    This dispatcher routes every connected component to the cheapest
    exact solver that fits, and samples only what is left:

    - [vars ≤ min exact_max_vars enum_cutoff] — the canonical enumerator
      ({!Exact}), {e bit-identical} to [Exact.marginals] by construction;
    - induced width ≤ [max_width] ({!Triangulate}) — junction-tree
      variable elimination ({!Jtree}), exact and deterministic;
    - [vars ≤ exact_max_vars] — enumeration again: small but too dense
      to eliminate under the width bound;
    - otherwise — one chromatic Gibbs run ({!Chromatic}) over the
      subgraph of the remaining cores only.

    Determinism: exact components are solved in parallel across the
    domain pool but each writes a disjoint slice of the result, and the
    residual subgraph is assembled in original factor order, so the
    sampler's variable numbering, colouring and RNG streams are pure
    functions of the input graph — marginals are bit-identical at any
    [PROBKB_DOMAINS] value (see DESIGN.md §15). *)

type options = {
  exact_max_vars : int;
      (** enumeration cap per component (default {!Exact.max_vars}) *)
  max_width : int;
      (** induced-width bound for variable elimination (default
          {!Jtree.default_max_width}).  Widths at or past
          {!Jtree.max_clique_vars} never route to elimination regardless
          of this bound — the planner degrades to enumeration or
          sampling instead of letting {!Jtree.solve} raise on its
          clique-size guard *)
  gibbs : Gibbs.options;  (** sampler options for the residual cores *)
}

val default_options : options

(** Size up to which enumeration is the preferred exact solver.
    Enumeration costs O(2{^k} · (k + factors)) against the junction
    tree's O(k · 2{^width+2}), so past this point low-width components
    route to elimination even when they fit under [exact_max_vars]. *)
val enum_cutoff : int

(** How one component was solved. *)
type solver =
  | Enumerated  (** canonical enumeration, bit-identical to {!Exact} *)
  | Eliminated  (** junction-tree variable elimination *)
  | Sampled  (** part of the residual chromatic Gibbs run *)

val solver_name : solver -> string

type component_info = {
  vars : int;
  factors : int;
  width : int;
      (** induced width estimate; [max_width + 1] means "over the
          bound" (the fill-in simulation bails early) *)
  solver : solver;
  seconds : float;  (** exact-solve wall clock; 0 for sampled *)
}

(** The per-run report surfaced through [Marginal.solve_info] into run
    reports and EXPLAIN-ANALYZE output. *)
type report = {
  components : component_info array;  (** canonical component order *)
  total_vars : int;
  exact_vars : int;  (** variables settled by an exact solver *)
  sampled_vars : int;
  enumerated_components : int;
  eliminated_components : int;
  sampled_components : int;
  max_width_solved : int;  (** largest width solved by elimination *)
  gibbs : Chromatic.run_info option;
      (** the residual sampler's run info; [None] when everything was
          solved exactly *)
  exact_seconds : float;
  gibbs_seconds : float;
}

(** Fraction of variables settled exactly (1 on the empty graph). *)
val exact_fraction : report -> float

(** [solve ?options ?obs ?pool ?checkpoint ?online ?early_stop c] is the
    marginal P(X = 1) per dense variable plus the dispatch report.
    [checkpoint]/[online]/[early_stop] thread through to the residual
    {!Chromatic.marginals_info} run.  Telemetry: [hybrid.*] counters and
    phase spans always; per-component spans when the graph has at most
    256 components. *)
val solve :
  ?options:options ->
  ?obs:Obs.t ->
  ?pool:Pool.t ->
  ?checkpoint:int ->
  ?online:bool ->
  ?early_stop:Diagnostics.Online.criteria ->
  Factor_graph.Fgraph.compiled ->
  float array * report
