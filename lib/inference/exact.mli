(** Exact marginal inference by exhaustive enumeration.

    Computes the marginal distribution P(Xᵢ = 1) of equation (4) of the
    paper exactly.  The measure factorizes over connected components of
    the ground factor graph, so enumeration runs per component — 2^c
    worlds for a component of c variables — with each component
    {e canonicalized} first (factors ordered by their [(I1, I2, I3, w)]
    row, variables by first mention in that order).  Canonicalization
    makes the floating-point accumulation order a function of the factor
    multiset alone, so a locally grounded neighbourhood
    ([Grounding.Local]) reproduces the full-closure marginals bit for
    bit.  Feasible for small components; it exists to validate the
    samplers and to solve local query neighbourhoods exactly. *)

(** Maximum number of variables accepted per connected component (25). *)
val max_vars : int

(** [marginals c] is the exact marginal P(X = 1) per dense variable.
    @raise Invalid_argument if some connected component has more than
    {!max_vars} variables. *)
val marginals : Factor_graph.Fgraph.compiled -> float array

(** [max_component_size c] is the variable count of the largest connected
    component — the feasibility check for {!marginals}
    ([max_component_size c <= max_vars]). *)
val max_component_size : Factor_graph.Fgraph.compiled -> int

(** [log_partition c] is [log Z], the log normalization constant
    (whole-graph enumeration: requires [nvars c <= max_vars]). *)
val log_partition : Factor_graph.Fgraph.compiled -> float
