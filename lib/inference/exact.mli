(** Exact marginal inference by exhaustive enumeration.

    Computes the marginal distribution P(Xᵢ = 1) of equation (4) of the
    paper exactly.  The measure factorizes over connected components of
    the ground factor graph, so enumeration runs per component — 2^c
    worlds for a component of c variables — with each component
    {e canonicalized} first by {!Decompose} (factors ordered by their
    [(I1, I2, I3, w)] row, variables by first mention in that order).
    Canonicalization makes the floating-point accumulation order a
    function of the factor multiset alone, so a locally grounded
    neighbourhood ([Grounding.Local]) reproduces the full-closure
    marginals bit for bit.  Feasible for small components; it exists to
    validate the samplers, to solve local query neighbourhoods exactly,
    and as the enumeration arm of the {!Hybrid} dispatcher. *)

(** Default maximum number of variables accepted per connected component
    (25).  Call sites thread the [Config.exact_max_vars] knob through the
    [?max_vars] arguments below; this constant is its default. *)
val max_vars : int

(** [marginals ?max_vars c] is the exact marginal P(X = 1) per dense
    variable.
    @raise Invalid_argument if some connected component has more than
    [max_vars] (default {!max_vars}) variables. *)
val marginals : ?max_vars:int -> Factor_graph.Fgraph.compiled -> float array

(** [enumerate ?max_vars comp] is the exact marginal per {e local}
    variable of one canonical component (indexed like
    [comp.Decompose.vars]).
    @raise Invalid_argument if the component exceeds [max_vars]. *)
val enumerate : ?max_vars:int -> Decompose.component -> float array

(** [solve_component ?max_vars comp marg] scatters {!enumerate}'s result
    into the global per-dense-variable array [marg]. *)
val solve_component :
  ?max_vars:int -> Decompose.component -> float array -> unit

(** [max_component_size c] is the variable count of the largest connected
    component — the feasibility check for {!marginals}
    ([max_component_size c <= max_vars]). *)
val max_component_size : Factor_graph.Fgraph.compiled -> int

(** [log_partition c] is [log Z], the log normalization constant
    (whole-graph enumeration: requires [nvars c <= max_vars]). *)
val log_partition : Factor_graph.Fgraph.compiled -> float
