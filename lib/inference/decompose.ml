module Fgraph = Factor_graph.Fgraph

type component = {
  root : int;
  factors : int array;
  vars : int array;
  head : int array;
  body1 : int array;
  body2 : int array;
  weight : float array;
  singleton : bool array;
}

let nvars comp = Array.length comp.vars
let nfactors comp = Array.length comp.factors

(* Union-find over dense variables; two variables share a component when
   some factor mentions both. *)
let roots c =
  let n = Fgraph.nvars c in
  let parent = Array.init n Fun.id in
  let rec find v =
    if parent.(v) = v then v
    else begin
      let r = find parent.(v) in
      parent.(v) <- r;
      r
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(max ra rb) <- find (min ra rb)
  in
  let m = Array.length c.Fgraph.head in
  for f = 0 to m - 1 do
    let h = c.Fgraph.head.(f) in
    if c.Fgraph.body1.(f) >= 0 then union h c.Fgraph.body1.(f);
    if c.Fgraph.body2.(f) >= 0 then union h c.Fgraph.body2.(f)
  done;
  find

let groups c =
  let find = roots c in
  let m = Array.length c.Fgraph.head in
  (* Factor lists per root, in factor order (re-sorted canonically later). *)
  let groups = Hashtbl.create 16 in
  for f = m - 1 downto 0 do
    let root = find c.Fgraph.head.(f) in
    Hashtbl.replace groups root
      (f :: Option.value ~default:[] (Hashtbl.find_opt groups root))
  done;
  groups

let factor_key c f =
  let id v = if v < 0 then Fgraph.null else c.Fgraph.var_ids.(v) in
  ( id c.Fgraph.head.(f),
    id c.Fgraph.body1.(f),
    id c.Fgraph.body2.(f),
    c.Fgraph.fweight.(f) )

let cmp_key (a1, a2, a3, aw) (b1, b2, b3, bw) =
  let c = Int.compare a1 b1 in
  if c <> 0 then c
  else
    let c = Int.compare a2 b2 in
    if c <> 0 then c
    else
      let c = Int.compare a3 b3 in
      if c <> 0 then c else Float.compare aw bw

(* Canonicalize one root's factor list: sort by the fact-id row
   [(I1, I2, I3, w)] and number the variables by first mention (head
   before body) in that order — the numbering [Fgraph.compile] would
   assign to the canonically ordered subgraph.  Downstream solvers then
   visit the same values in the same order regardless of how the graph
   was assembled, which is what keeps a locally grounded neighbourhood
   bit-identical to the full closure (see {!Exact}). *)
let canonicalize c root fs =
  let fs =
    List.sort (fun a b -> cmp_key (factor_key c a) (factor_key c b)) fs
  in
  let lvar = Hashtbl.create 16 in
  let globals = ref [] in
  let intern v =
    if v < 0 then -1
    else
      match Hashtbl.find_opt lvar v with
      | Some i -> i
      | None ->
        let i = Hashtbl.length lvar in
        Hashtbl.add lvar v i;
        globals := v :: !globals;
        i
  in
  let m = List.length fs in
  let factors = Array.make m 0
  and lh = Array.make m 0
  and lb1 = Array.make m (-1)
  and lb2 = Array.make m (-1)
  and lw = Array.make m 0.
  and lsing = Array.make m false in
  List.iteri
    (fun i f ->
      factors.(i) <- f;
      lh.(i) <- intern c.Fgraph.head.(f);
      lb1.(i) <- intern c.Fgraph.body1.(f);
      lb2.(i) <- intern c.Fgraph.body2.(f);
      lw.(i) <- c.Fgraph.fweight.(f);
      lsing.(i) <- c.Fgraph.singleton.(f))
    fs;
  {
    root;
    factors;
    vars = Array.of_list (List.rev !globals);
    head = lh;
    body1 = lb1;
    body2 = lb2;
    weight = lw;
    singleton = lsing;
  }

let components c =
  let groups = groups c in
  let roots = Hashtbl.fold (fun root _ acc -> root :: acc) groups [] in
  let roots = List.sort compare roots in
  Array.of_list
    (List.map (fun root -> canonicalize c root (Hashtbl.find groups root)) roots)

let max_size c =
  if Fgraph.nvars c = 0 then 0
  else
    (* Count variables per root with a seen-set walk over each group's
       factors: every variable is mentioned by at least one factor
       ([Fgraph.compile] interns them from factors), and the canonical
       sort is irrelevant to the count, so skip it. *)
    let groups = groups c in
    let sizes = Hashtbl.create 16 in
    let largest = ref 0 in
    Hashtbl.iter
      (fun _root fs ->
        Hashtbl.reset sizes;
        List.iter
          (fun f ->
            let mark v = if v >= 0 then Hashtbl.replace sizes v () in
            mark c.Fgraph.head.(f);
            mark c.Fgraph.body1.(f);
            mark c.Fgraph.body2.(f))
          fs;
        largest := max !largest (Hashtbl.length sizes))
      groups;
    !largest

(* Local log-weight of one assignment: the sum of satisfied factors'
   weights, visiting factors in canonical order — shared by the exact
   enumerator and by tests. *)
let sum_weights comp a =
  let total = ref 0. in
  for f = 0 to Array.length comp.head - 1 do
    let sat =
      if comp.singleton.(f) then a.(comp.head.(f))
      else
        let body_true =
          (comp.body1.(f) < 0 || a.(comp.body1.(f)))
          && (comp.body2.(f) < 0 || a.(comp.body2.(f)))
        in
        (not body_true) || a.(comp.head.(f))
    in
    if sat then total := !total +. comp.weight.(f)
  done;
  !total
