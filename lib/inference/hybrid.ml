module Fgraph = Factor_graph.Fgraph

type options = {
  exact_max_vars : int;
  max_width : int;
  gibbs : Gibbs.options;
}

let default_options =
  {
    exact_max_vars = Exact.max_vars;
    max_width = Jtree.default_max_width;
    gibbs = Gibbs.default_options;
  }

(* Enumeration costs O(2^k · (k + factors)); variable elimination costs
   O(k · 2^(width+2)).  Past [enum_cutoff] variables enumeration loses by
   orders of magnitude whenever the induced width is under the bound —
   the quality workload's 17-25-variable components are two decimal
   orders slower to enumerate than to eliminate — so bigger components
   prefer the junction tree and enumeration is kept where it is the
   cheapest exact route, or the only one (small but too dense to
   eliminate under the width bound). *)
let enum_cutoff = 16

type solver = Enumerated | Eliminated | Sampled

let solver_name = function
  | Enumerated -> "enumerated"
  | Eliminated -> "jtree"
  | Sampled -> "sampled"

type component_info = {
  vars : int;
  factors : int;
  width : int;
  solver : solver;
  seconds : float;
}

type report = {
  components : component_info array;
  total_vars : int;
  exact_vars : int;
  sampled_vars : int;
  enumerated_components : int;
  eliminated_components : int;
  sampled_components : int;
  max_width_solved : int;
  gibbs : Chromatic.run_info option;
  exact_seconds : float;
  gibbs_seconds : float;
}

let exact_fraction r =
  if r.total_vars = 0 then 1.
  else float_of_int r.exact_vars /. float_of_int r.total_vars

(* Per-component spans get emitted only on modestly decomposed graphs —
   a closure with 10^5 singleton components would drown the trace; the
   aggregate counters always fire. *)
let max_component_spans = 256

let solve ?(options = default_options) ?(obs = Obs.null) ?pool ?checkpoint
    ?online ?early_stop c =
  let n = Fgraph.nvars c in
  let marg = Array.make n 0. in
  Obs.with_span obs "hybrid" ~cat:"inference" @@ fun () ->
  let comps =
    Obs.with_span obs "hybrid.decompose" ~cat:"inference" (fun () ->
        Decompose.components c)
  in
  let nc = Array.length comps in
  (* Routing: components under the enumeration cutoff keep the canonical
     enumerator (bit-identical to [Exact.marginals] by construction);
     larger components go to variable elimination when their induced
     width is under the bound, falling back to enumeration when they are
     small enough for the cap but too dense to eliminate; the remaining
     high-treewidth cores are sampled together in one chromatic Gibbs
     run over their subgraph.  Elimination cliques hold width + 1
     variables, so widths at or past [Jtree.max_clique_vars] never route
     to [Eliminated] even under a permissive [max_width] (an options
     record built directly can exceed [Config.make]'s bound) — those
     components degrade to the next solver instead of letting
     [Jtree.solve] abort the run on its allocation guard. *)
  let plans =
    Obs.with_span obs "hybrid.plan" ~cat:"inference" (fun () ->
        Array.map
          (fun comp ->
            let tri = Triangulate.analyze ~cap:options.max_width comp in
            let k = Decompose.nvars comp in
            let solver =
              if k <= min options.exact_max_vars enum_cutoff then Enumerated
              else if
                tri.Triangulate.width <= options.max_width
                && tri.Triangulate.width < Jtree.max_clique_vars
              then Eliminated
              else if k <= options.exact_max_vars then Enumerated
              else Sampled
            in
            (solver, tri))
          comps)
  in
  let infos =
    Array.map
      (fun comp ->
        {
          vars = Decompose.nvars comp;
          factors = Decompose.nfactors comp;
          width = 0;
          solver = Sampled;
          seconds = 0.;
        })
      comps
  in
  (* Exact phase: components are independent and each writes a disjoint
     slice of [marg], so the pool order cannot affect the result —
     bit-identical at any pool size. *)
  let pool = match pool with Some p -> p | None -> Pool.get_default () in
  let (), exact_seconds =
    let t0 = Unix.gettimeofday () in
    Obs.with_span obs "hybrid.exact" ~cat:"inference" (fun () ->
        Pool.parallel_for pool ~n:nc (fun i ->
            let solver, tri = plans.(i) in
            let t0 = Unix.gettimeofday () in
            (match solver with
            | Sampled -> ()
            | Enumerated ->
              Exact.solve_component ~max_vars:options.exact_max_vars
                comps.(i) marg
            | Eliminated ->
              let local =
                Jtree.solve ~order:tri.Triangulate.order comps.(i)
              in
              Array.iteri
                (fun v p -> marg.(comps.(i).Decompose.vars.(v)) <- p)
                local);
            infos.(i) <-
              {
                (infos.(i)) with
                width = tri.Triangulate.width;
                solver;
                seconds =
                  (match solver with
                  | Sampled -> 0.
                  | _ -> Unix.gettimeofday () -. t0);
              }));
    ((), Unix.gettimeofday () -. t0)
  in
  (* Sampled phase: one chromatic Gibbs run over the subgraph of the
     high-treewidth cores only. *)
  let sampled = ref [] in
  Array.iteri
    (fun i (solver, _) -> if solver = Sampled then sampled := i :: !sampled)
    plans;
  let sampled = List.rev !sampled in
  let gibbs_info, gibbs_seconds =
    match sampled with
    | [] -> (None, 0.)
    | _ ->
      Obs.with_span obs "hybrid.gibbs" ~cat:"inference" (fun () ->
          let t0 = Unix.gettimeofday () in
          let m = Array.length c.Fgraph.head in
          let keep = Array.make m false in
          List.iter
            (fun i ->
              Array.iter
                (fun f -> keep.(f) <- true)
                comps.(i).Decompose.factors)
            sampled;
          (* Rebuild the residual rows in original factor order, so the
             subgraph — and the sampler's variable numbering, colouring
             and RNG streams — is a pure function of the input graph. *)
          let g = Fgraph.create () in
          let id v = c.Fgraph.var_ids.(v) in
          for f = 0 to m - 1 do
            if keep.(f) then
              if c.Fgraph.singleton.(f) then
                Fgraph.add_singleton g ~i:(id c.Fgraph.head.(f))
                  ~w:c.Fgraph.fweight.(f)
              else
                Fgraph.add_clause g
                  ~i1:(id c.Fgraph.head.(f))
                  ?i2:
                    (if c.Fgraph.body1.(f) >= 0 then
                       Some (id c.Fgraph.body1.(f))
                     else None)
                  ?i3:
                    (if c.Fgraph.body2.(f) >= 0 then
                       Some (id c.Fgraph.body2.(f))
                     else None)
                  ~w:c.Fgraph.fweight.(f) ()
          done;
          let sub = Fgraph.compile g in
          let smarg, info =
            Chromatic.marginals_info ~options:options.gibbs ~obs ~pool
              ?checkpoint ?online ?early_stop sub
          in
          Array.iteri
            (fun sv p ->
              marg.(Hashtbl.find c.Fgraph.var_of_id sub.Fgraph.var_ids.(sv)) <-
                p)
            smarg;
          let seconds = Unix.gettimeofday () -. t0 in
          List.iter
            (fun i ->
              let _, tri = plans.(i) in
              infos.(i) <-
                { (infos.(i)) with width = tri.Triangulate.width })
            sampled;
          (Some info, seconds))
  in
  (* Telemetry: aggregate counters always; per-component spans only on
     modestly decomposed graphs. *)
  let total_vars = ref 0
  and exact_vars = ref 0
  and sampled_vars = ref 0
  and enumerated_components = ref 0
  and eliminated_components = ref 0
  and sampled_components = ref 0
  and max_width_solved = ref 0 in
  Array.iter
    (fun info ->
      total_vars := !total_vars + info.vars;
      (match info.solver with
      | Enumerated ->
        incr enumerated_components;
        exact_vars := !exact_vars + info.vars
      | Eliminated ->
        incr eliminated_components;
        exact_vars := !exact_vars + info.vars;
        max_width_solved := max !max_width_solved info.width
      | Sampled ->
        incr sampled_components;
        sampled_vars := !sampled_vars + info.vars);
      Obs.observe obs "hybrid.component_width" (float_of_int info.width))
    infos;
  Obs.add obs "hybrid.components" nc;
  Obs.add obs "hybrid.components_enumerated" !enumerated_components;
  Obs.add obs "hybrid.components_jtree" !eliminated_components;
  Obs.add obs "hybrid.components_sampled" !sampled_components;
  Obs.add obs "hybrid.vars_exact" !exact_vars;
  Obs.add obs "hybrid.vars_sampled" !sampled_vars;
  Obs.add_time obs "hybrid.exact_seconds" exact_seconds;
  Obs.add_time obs "hybrid.gibbs_seconds" gibbs_seconds;
  if nc <= max_component_spans then
    Array.iteri
      (fun i info ->
        let sp =
          Obs.begin_span ~cat:"inference" obs
            (Printf.sprintf "hybrid.component %d" i)
        in
        Obs.end_span obs sp
          ~attrs:
            [
              ("solver", Obs.S (solver_name info.solver));
              ("vars", Obs.I info.vars);
              ("factors", Obs.I info.factors);
              ("width", Obs.I info.width);
              ("seconds", Obs.F info.seconds);
            ])
      infos;
  ( marg,
    {
      components = infos;
      total_vars = !total_vars;
      exact_vars = !exact_vars;
      sampled_vars = !sampled_vars;
      enumerated_components = !enumerated_components;
      eliminated_components = !eliminated_components;
      sampled_components = !sampled_components;
      max_width_solved = !max_width_solved;
      gibbs = gibbs_info;
      exact_seconds;
      gibbs_seconds;
    } )
