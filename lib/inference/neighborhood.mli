(** Inference over locally grounded query neighbourhoods.

    A [Grounding.Local] subgraph is small by construction, so marginal
    inference picks the strongest feasible method per query by handing
    the compiled neighbourhood to the same per-component dispatcher the
    batch path uses ({!Hybrid.solve}): components under the enumeration
    cap are enumerated {e exactly} (zero variance, and — thanks to the
    canonical component order of {!Decompose} — bit-identical to the
    full-closure exact marginals whenever the neighbourhood is the whole
    component); larger components whose induced width is under the bound
    are solved exactly by variable elimination ({!Jtree}); only
    high-treewidth cores fall back to chromatic Gibbs restricted to
    their subgraph.

    Boundary conditions: facts the budget pruned appear in interior
    factors but have unexplored adjacency.  {!clamp_boundary} pins each to
    a given probability (its cached marginal or extraction prior) by
    adding a pseudo-prior singleton factor with the log-odds weight
    [log (p / (1 - p))] — the single-variable factor whose marginal, in
    isolation, is exactly [p].  With an unbounded budget the boundary is
    empty and no clamp factor is added, so identity with the full closure
    is unaffected. *)

(** [Enumerated] means {e every} variable was settled by an exact solver
    (enumeration or variable elimination); [Sampled] means at least one
    component fell back to Gibbs. *)
type method_used = Enumerated | Sampled

(** Probabilities are clipped to [[ε, 1 - ε]] (ε = 1e-6) before the
    log-odds transform, keeping clamp weights finite. *)
val clamp_epsilon : float

(** [clamp_weight p] is [log (p / (1 - p))] after clipping. *)
val clamp_weight : float -> float

(** [clamp_boundary g ~boundary ~prob] adds one pseudo-prior singleton per
    boundary fact, weighted to pin it at [prob id].  Call before
    compiling [g]. *)
val clamp_boundary :
  Factor_graph.Fgraph.t -> boundary:int array -> prob:(int -> float) -> unit

(** [solve ?obs ?options ?exact_max_vars ?max_width c] is the marginal
    P(X = 1) per dense variable and the method used.  [options] are the
    Gibbs options for sampled components (default
    {!Gibbs.default_options}); [exact_max_vars] (default
    {!Exact.max_vars}) and [max_width] (default
    {!Jtree.default_max_width}) are the dispatch knobs threaded down
    from [Config]. *)
val solve :
  ?obs:Obs.t ->
  ?options:Gibbs.options ->
  ?exact_max_vars:int ->
  ?max_width:int ->
  Factor_graph.Fgraph.compiled ->
  float array * method_used
