(** Inference over locally grounded query neighbourhoods.

    A [Grounding.Local] subgraph is small by construction, so marginal
    inference picks the strongest feasible method per query: when every
    connected component fits the exact enumerator's per-component cap the
    marginals are computed {e exactly} (zero variance, and — thanks to the
    canonical enumeration order of {!Exact} — bit-identical to the
    full-closure exact marginals whenever the neighbourhood is the whole
    component); larger neighbourhoods fall back to chromatic Gibbs
    restricted to the subgraph.

    Boundary conditions: facts the budget pruned appear in interior
    factors but have unexplored adjacency.  {!clamp_boundary} pins each to
    a given probability (its cached marginal or extraction prior) by
    adding a pseudo-prior singleton factor with the log-odds weight
    [log (p / (1 - p))] — the single-variable factor whose marginal, in
    isolation, is exactly [p].  With an unbounded budget the boundary is
    empty and no clamp factor is added, so identity with the full closure
    is unaffected. *)

type method_used = Enumerated | Sampled

(** Probabilities are clipped to [[ε, 1 - ε]] (ε = 1e-6) before the
    log-odds transform, keeping clamp weights finite. *)
val clamp_epsilon : float

(** [clamp_weight p] is [log (p / (1 - p))] after clipping. *)
val clamp_weight : float -> float

(** [clamp_boundary g ~boundary ~prob] adds one pseudo-prior singleton per
    boundary fact, weighted to pin it at [prob id].  Call before
    compiling [g]. *)
val clamp_boundary :
  Factor_graph.Fgraph.t -> boundary:int array -> prob:(int -> float) -> unit

(** [solve ?obs ?options c] is the marginal P(X = 1) per dense variable
    and the method used: exact enumeration when
    [Exact.max_component_size c <= Exact.max_vars], otherwise chromatic
    Gibbs with [options] (default {!Gibbs.default_options}). *)
val solve :
  ?obs:Obs.t ->
  ?options:Gibbs.options ->
  Factor_graph.Fgraph.compiled ->
  float array * method_used
