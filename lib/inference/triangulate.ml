type t = { order : int array; width : int }

(* Variable-interaction adjacency of one canonical component: sets of
   local variable indexes; two variables are adjacent when some factor
   mentions both. *)
let adjacency comp =
  let n = Decompose.nvars comp in
  let adj = Array.init n (fun _ -> Hashtbl.create 4) in
  let connect a b =
    if a >= 0 && b >= 0 && a <> b then begin
      Hashtbl.replace adj.(a) b ();
      Hashtbl.replace adj.(b) a ()
    end
  in
  for f = 0 to Decompose.nfactors comp - 1 do
    let h = comp.Decompose.head.(f)
    and b1 = comp.Decompose.body1.(f)
    and b2 = comp.Decompose.body2.(f) in
    connect h b1;
    connect h b2;
    connect b1 b2
  done;
  adj

(* Maximum Cardinality Search (Tarjan & Yannakakis): repeatedly visit the
   unvisited vertex adjacent to the most visited ones.  Bucket queue with
   lazy deletion — O(n + m) — seeded in descending index order so ties in
   a bucket break toward the lowest index among equally stale entries;
   the visit order is a pure function of the canonical component, which
   is all determinism requires. *)
let mcs adj =
  let n = Array.length adj in
  let weight = Array.make n 0 in
  let visited = Array.make n false in
  let buckets = Array.make (n + 1) [] in
  for v = n - 1 downto 0 do
    buckets.(0) <- v :: buckets.(0)
  done;
  let order = Array.make n 0 in
  let maxw = ref 0 in
  for i = 0 to n - 1 do
    let rec pop () =
      match buckets.(!maxw) with
      | v :: rest ->
        buckets.(!maxw) <- rest;
        if visited.(v) || weight.(v) <> !maxw then pop () else v
      | [] ->
        decr maxw;
        pop ()
    in
    let v = pop () in
    visited.(v) <- true;
    order.(i) <- v;
    Hashtbl.iter
      (fun u () ->
        if not visited.(u) then begin
          weight.(u) <- weight.(u) + 1;
          buckets.(weight.(u)) <- u :: buckets.(weight.(u))
        end)
      adj.(v);
    incr maxw
  done;
  order

(* Simulate elimination along [order] with fill-in, tracking the induced
   width (the largest uneliminated neighbourhood met).  With [cap], stop
   as soon as the width provably exceeds it and report [cap + 1] — the
   dispatcher only needs "over the bound", and bailing early keeps the
   cost on huge loopy cores at O(m + n·cap²). *)
let fill_in_width ?cap adj order =
  let n = Array.length adj in
  let cap = match cap with Some c -> c | None -> n in
  let eliminated = Array.make n false in
  let width = ref 0 in
  (try
     Array.iter
       (fun v ->
         let nb =
           Hashtbl.fold
             (fun u () acc -> if eliminated.(u) then acc else u :: acc)
             adj.(v) []
         in
         width := max !width (List.length nb);
         if !width > cap then raise Exit;
         (* Fill: the eliminated vertex's neighbourhood becomes a clique. *)
         List.iter
           (fun a ->
             List.iter
               (fun b ->
                 if a < b then begin
                   Hashtbl.replace adj.(a) b ();
                   Hashtbl.replace adj.(b) a ()
                 end)
               nb)
           nb;
         eliminated.(v) <- true)
       order
   with Exit -> width := cap + 1);
  !width

let analyze ?cap comp =
  let n = Decompose.nvars comp in
  if n = 0 then { order = [||]; width = 0 }
  else begin
    let adj = adjacency comp in
    let visit = mcs adj in
    (* Reverse MCS visit order is a perfect elimination order on chordal
       graphs; on general graphs it is the heuristic whose fill-in
       defines our width estimate. *)
    let order = Array.init n (fun i -> visit.(n - 1 - i)) in
    let width = fill_in_width ?cap adj order in
    { order; width }
  end

let width_of ?cap comp = (analyze ?cap comp).width
