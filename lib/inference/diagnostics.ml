module Fgraph = Factor_graph.Fgraph

type report = {
  r_hat : float array;
  max_r_hat : float;
  chains : int;
  samples_per_chain : int;
}

(* One chain: per-variable running mean and M2 (Welford) over the
   Rao-Blackwellized conditional at each update. *)
let run_chain c (options : Gibbs.options) seed =
  let n = Fgraph.nvars c in
  let rng = Random.State.make [| seed |] in
  let assignment = Array.init n (fun _ -> Random.State.bool rng) in
  let mean = Array.make n 0. and m2 = Array.make n 0. in
  let count = ref 0 in
  let sweep estimate =
    for v = 0 to n - 1 do
      let p1 = Gibbs.conditional c assignment v in
      assignment.(v) <- Random.State.float rng 1. < p1;
      if estimate then begin
        let d = p1 -. mean.(v) in
        mean.(v) <- mean.(v) +. (d /. float_of_int !count);
        m2.(v) <- m2.(v) +. (d *. (p1 -. mean.(v)))
      end
    done
  in
  for _ = 1 to options.Gibbs.burn_in do
    sweep false
  done;
  for _ = 1 to options.Gibbs.samples do
    incr count;
    sweep true
  done;
  let samples = float_of_int (max 1 options.Gibbs.samples) in
  (mean, Array.map (fun s -> s /. Float.max 1. (samples -. 1.)) m2)

let r_hat ?(chains = 4) ?(options = Gibbs.default_options) c =
  if chains < 2 then invalid_arg "Diagnostics.r_hat: need at least 2 chains";
  let n = Fgraph.nvars c in
  let per_chain =
    List.init chains (fun i -> run_chain c options (options.Gibbs.seed + (7919 * (i + 1))))
  in
  let m = float_of_int chains in
  let samples = float_of_int (max 2 options.Gibbs.samples) in
  let r = Array.make n 1. in
  for v = 0 to n - 1 do
    let means = List.map (fun (mean, _) -> mean.(v)) per_chain in
    let vars = List.map (fun (_, var) -> var.(v)) per_chain in
    let grand = List.fold_left ( +. ) 0. means /. m in
    let b =
      samples /. (m -. 1.)
      *. List.fold_left (fun acc mu -> acc +. ((mu -. grand) ** 2.)) 0. means
    in
    let w = List.fold_left ( +. ) 0. vars /. m in
    if w > 1e-12 then begin
      let var_plus = (((samples -. 1.) /. samples) *. w) +. (b /. samples) in
      r.(v) <- sqrt (var_plus /. w)
    end
  done;
  {
    r_hat = r;
    max_r_hat = Array.fold_left Float.max 1. r;
    chains;
    samples_per_chain = options.Gibbs.samples;
  }

let converged ?(threshold = 1.1) report = report.max_r_hat < threshold

(* --- online (single-run) diagnostics --------------------------------

   The offline [r_hat] above answers "can I stop?" by running four fresh
   chains — a 4x cost multiplier on inference.  The online estimator
   answers it incrementally on the one chain the sampler is already
   running: per-variable Welford mean/variance accumulated in fixed-size
   segments (one per checkpoint window), split-R̂ computed by merging the
   first-half segments against the second-half segments (Chan's parallel
   variance combination, exact), and effective sample size from the
   lag-1 autocorrelation of the Rao-Blackwellized conditionals
   (AR(1) approximation: ESS = n (1-ρ₁)/(1+ρ₁)).

   All state is per-variable arrays: under the chromatic schedule each
   variable is updated by exactly one chunk per sweep, so parallel
   [observe] calls write disjoint indices and the result is bit-identical
   for every pool size. *)

module Online = struct
  type criteria = { target_r_hat : float; min_ess : float }

  let default_criteria = { target_r_hat = 1.05; min_ess = 100. }

  type seg = {
    s_mean : float array;
    s_m2 : float array;
    mutable s_count : int; (* sweeps observed into this segment *)
  }

  type t = {
    n : int;
    seg_len : int;
    mutable segs : seg list; (* newest first; the head is [cur] *)
    mutable cur : seg; (* hot-path alias of [List.hd segs] *)
    mutable inv_count : float; (* 1 / cur.s_count, refreshed per sweep *)
    mutable sweeps : int;
    prev : float array; (* last observed value per variable *)
    cross : float array; (* Σ x_t · x_{t-1} *)
  }

  (* Before the first [begin_sweep] the current segment is a zero-length
     sentinel: any [observe] then raises on the array access. *)
  let sentinel =
    { s_mean = [||]; s_m2 = [||]; s_count = 0 }

  let create ?(segment = 20) n =
    if segment < 1 then invalid_arg "Diagnostics.Online.create: segment < 1";
    {
      n;
      seg_len = segment;
      segs = [];
      cur = sentinel;
      inv_count = 0.;
      sweeps = 0;
      prev = Array.make n 0.;
      cross = Array.make n 0.;
    }

  let sweeps t = t.sweeps

  (* Must be called before the sweep's [observe]s, from the coordinating
     domain (it may allocate a fresh segment). *)
  let begin_sweep t =
    t.sweeps <- t.sweeps + 1;
    (match t.segs with
    | s :: _ when s.s_count < t.seg_len -> s.s_count <- s.s_count + 1
    | _ ->
      let s =
        {
          s_mean = Array.make t.n 0.;
          s_m2 = Array.make t.n 0.;
          s_count = 1;
        }
      in
      t.segs <- s :: t.segs;
      t.cur <- s);
    t.inv_count <- 1. /. float_of_int t.cur.s_count

  (* Branch-free on the hot path: the sentinel makes the missing
     [begin_sweep] case an array bounds error, and the lag-1 cross term
     needs no first-sweep guard because [prev] starts at zero, so the
     first contribution is exactly 0. *)
  let observe t v x =
    let s = t.cur in
    let d = x -. s.s_mean.(v) in
    let m = s.s_mean.(v) +. (d *. t.inv_count) in
    s.s_mean.(v) <- m;
    s.s_m2.(v) <- s.s_m2.(v) +. (d *. (x -. m));
    t.cross.(v) <- t.cross.(v) +. (x *. t.prev.(v));
    t.prev.(v) <- x

  (* A per-sweep snapshot of the accumulator arrays, so a tight sampling
     loop can inline the [observe] update instead of paying a
     cross-module call per variable.  Valid until the next [begin_sweep]
     (a segment roll swaps the mean/M2 arrays). *)
  type view = {
    v_mean : float array;
    v_m2 : float array;
    v_inv_count : float;
    v_prev : float array;
    v_cross : float array;
  }

  let view t =
    {
      v_mean = t.cur.s_mean;
      v_m2 = t.cur.s_m2;
      v_inv_count = t.inv_count;
      v_prev = t.prev;
      v_cross = t.cross;
    }

  type report = {
    sweeps : int;
    r_hat : float array; (* NaN until two full checkpoint windows exist *)
    ess : float array;
    max_r_hat : float;
    min_ess : float;
  }

  (* Chan et al.: exact combination of two (mean, M2, count) summaries. *)
  let combine (m1, s1, n1) (m2, s2, n2) =
    if n1 = 0. then (m2, s2, n2)
    else if n2 = 0. then (m1, s1, n1)
    else begin
      let n = n1 +. n2 in
      let d = m2 -. m1 in
      (m1 +. (d *. n2 /. n), s1 +. s2 +. (d *. d *. n1 *. n2 /. n), n)
    end

  let zero_var = 1e-12

  let report t =
    let segs = Array.of_list (List.rev t.segs) in
    let k = Array.length segs in
    let r = Array.make t.n Float.nan in
    let ess = Array.make t.n Float.nan in
    let half = k / 2 in
    let merge v lo hi =
      let acc = ref (0., 0., 0.) in
      for s = lo to hi - 1 do
        acc :=
          combine !acc
            ( segs.(s).s_mean.(v),
              segs.(s).s_m2.(v),
              float_of_int segs.(s).s_count )
      done;
      !acc
    in
    for v = 0 to t.n - 1 do
      let mean_a, m2_a, n_a = merge v 0 half in
      let mean_b, m2_b, n_b = merge v half k in
      let mean, m2, nf = combine (mean_a, m2_a, n_a) (mean_b, m2_b, n_b) in
      let var = if nf > 1. then m2 /. (nf -. 1.) else 0. in
      if var < zero_var then begin
        (* Fully determined variable: converged by construction. *)
        r.(v) <- 1.;
        ess.(v) <- nf
      end
      else begin
        (* Split-R̂ over the two halves (m = 2 chains). *)
        if k >= 2 && n_a > 1. && n_b > 1. then begin
          let nc = Float.min n_a n_b in
          let grand = (mean_a +. mean_b) /. 2. in
          let b =
            nc
            *. (((mean_a -. grand) ** 2.) +. ((mean_b -. grand) ** 2.))
          in
          let w =
            ((m2_a /. (n_a -. 1.)) +. (m2_b /. (n_b -. 1.))) /. 2.
          in
          if w > zero_var then begin
            let var_plus = (((nc -. 1.) /. nc) *. w) +. (b /. nc) in
            r.(v) <- sqrt (var_plus /. w)
          end
          else r.(v) <- 1.
        end;
        (* AR(1) ESS from the online lag-1 cross-moment. *)
        if nf > 1. then begin
          let pairs = nf -. 1. in
          let rho =
            ((t.cross.(v) /. pairs) -. (mean *. mean)) /. var
          in
          let rho = Float.max (-0.9999) (Float.min 0.9999 rho) in
          ess.(v) <- Float.max 1. (Float.min nf (nf *. (1. -. rho) /. (1. +. rho)))
        end
      end
    done;
    (* Float.max/min propagate NaN, so one incomputable variable makes
       the aggregate incomputable — exactly what the stop check needs. *)
    let max_r = Array.fold_left Float.max Float.neg_infinity r in
    let min_e = Array.fold_left Float.min Float.infinity ess in
    {
      sweeps = t.sweeps;
      r_hat = r;
      ess;
      max_r_hat = (if t.n = 0 then 1. else max_r);
      min_ess = (if t.n = 0 then Float.infinity else min_e);
    }

  (* NaN comparisons are false, so an incomputable R̂ (fewer than two
     checkpoint windows) never satisfies the stop criteria. *)
  let satisfied criteria report =
    report.max_r_hat <= criteria.target_r_hat
    && report.min_ess >= criteria.min_ess
end
