(** Chromatic ("parallel") Gibbs sampling.

    The parallel Gibbs sampler of Gonzalez et al. (AISTATS 2011) — the
    algorithm behind the GraphLab engine the paper hands its factor graphs
    to — colours the Markov blanket graph and updates each colour class
    jointly: variables of one colour share no factor, so their conditionals
    are mutually independent and are sampled in parallel — each colour
    class is split into fixed-size chunks that the domain pool sweeps
    concurrently, with a barrier between classes.  Every chunk draws from
    its own RNG stream derived from [(seed, sweep, chunk id)] with a
    chunking function that depends only on the class sizes, so the Markov
    chain — and hence the marginals — is bit-identical for every
    [PROBKB_DOMAINS] value.  {!stats} reports the idealized parallel
    span. *)

type stats = {
  n_colors : int;
  ideal_speedup : float;
      (** sequential work / parallel span with unbounded processors:
          [nvars / max_color_class_size] is the bound the colouring itself
          imposes; we report [nvars /. n_colors /. max_class] refined as
          span = Σ per-colour 1 (one parallel step per colour). *)
}

(** [color c] greedily colours the variable-interaction graph; two
    variables are adjacent when some factor mentions both.  Returns the
    colour per dense variable. *)
val color : Factor_graph.Fgraph.compiled -> int array

(** [verify_coloring c colors] is [true] iff no factor of [c] mentions two
    distinct variables of the same colour — i.e. the parallel schedule is
    race-free.  {!marginals} asserts this when [PROBKB_DEBUG] is set; the
    test suite calls it directly. *)
val verify_coloring : Factor_graph.Fgraph.compiled -> int array -> bool

(** [marginals ?options ?obs ?pool c] estimates marginals with the
    chromatic schedule, sweeping each colour class across [pool] (default
    {!Pool.get_default}).  Options are shared with {!Gibbs.options};
    results do not depend on the pool size.  When [obs] (default
    {!Obs.null}) is enabled, sweeps emit an aggregated
    [burn_in/sampling > sweep > class k] span tree plus [gibbs.*]
    counters and a samples-per-second gauge. *)
val marginals :
  ?options:Gibbs.options ->
  ?obs:Obs.t ->
  ?pool:Pool.t ->
  Factor_graph.Fgraph.compiled ->
  float array

(** [schedule_stats c] is the colouring statistics for reporting. *)
val schedule_stats : Factor_graph.Fgraph.compiled -> stats
