(** Chromatic ("parallel") Gibbs sampling.

    The parallel Gibbs sampler of Gonzalez et al. (AISTATS 2011) — the
    algorithm behind the GraphLab engine the paper hands its factor graphs
    to — colours the Markov blanket graph and updates each colour class
    jointly: variables of one colour share no factor, so their conditionals
    are mutually independent and are sampled in parallel — each colour
    class is split into fixed-size chunks that the domain pool sweeps
    concurrently, with a barrier between classes.  Every chunk draws from
    its own RNG stream derived from [(seed, sweep, chunk id)] with a
    chunking function that depends only on the class sizes, so the Markov
    chain — and hence the marginals — is bit-identical for every
    [PROBKB_DOMAINS] value.  {!stats} reports the idealized parallel
    span. *)

type stats = {
  n_colors : int;
  ideal_speedup : float;
      (** sequential work / parallel span with unbounded processors:
          [nvars / max_color_class_size] is the bound the colouring itself
          imposes; we report [nvars /. n_colors /. max_class] refined as
          span = Σ per-colour 1 (one parallel step per colour). *)
}

(** [color c] greedily colours the variable-interaction graph; two
    variables are adjacent when some factor mentions both.  Returns the
    colour per dense variable. *)
val color : Factor_graph.Fgraph.compiled -> int array

(** [verify_coloring c colors] is [true] iff no factor of [c] mentions two
    distinct variables of the same colour — i.e. the parallel schedule is
    race-free.  {!marginals} asserts this when [PROBKB_DEBUG] is set; the
    test suite calls it directly. *)
val verify_coloring : Factor_graph.Fgraph.compiled -> int array -> bool

(** Outcome of one sampling run beyond the marginals themselves. *)
type run_info = {
  sweeps_run : int;  (** estimation sweeps actually executed *)
  stopped_at_sweep : int option;
      (** [Some s] when the early-stop criteria fired at sweep [s] *)
  diag : Diagnostics.Online.report option;
      (** final online diagnostics, when they were tracked *)
  assignment : bool array;
      (** the chain's final state, per dense variable — feed it back as
          [?init] to warm-start the next run on an updated graph *)
}

(** Default checkpoint cadence (sweeps between diagnostic checkpoints /
    snapshot records). *)
val default_checkpoint : int

(** [marginals ?options ?obs ?pool c] estimates marginals with the
    chromatic schedule, sweeping each colour class across [pool] (default
    {!Pool.get_default}).  Options are shared with {!Gibbs.options};
    results do not depend on the pool size.  When [obs] (default
    {!Obs.null}) is enabled, sweeps emit an aggregated
    [burn_in/sampling > sweep > class k] span tree plus [gibbs.*]
    counters and a samples-per-second gauge. *)
val marginals :
  ?options:Gibbs.options ->
  ?obs:Obs.t ->
  ?pool:Pool.t ->
  Factor_graph.Fgraph.compiled ->
  float array

(** [marginals_info ?options ?obs ?pool ?checkpoint ?online ?early_stop c]
    is {!marginals} with live-run support:

    - every [checkpoint] sweeps (default {!default_checkpoint}) a
      snapshot is emitted through [obs]'s sink (see {!Obs.snapshot}) with
      the current phase, sweep number, and — when diagnostics are on —
      the running max-R̂/min-ESS;
    - [~online:true] tracks {!Diagnostics.Online} state on the run
      (implied by [early_stop]);
    - [~early_stop:criteria] ends sampling at the first checkpoint whose
      diagnostics satisfy [criteria], normalizing the marginals by the
      sweeps actually run;
    - [~init] warm-starts the chain: [init v] is the starting state of
      dense variable [v], [None] falling back to a fresh draw from the
      seed-derived init stream (drawn in ascending variable order, so the
      initial state is deterministic for a given (seed, init) at any pool
      size).  Pass the previous run's {!run_info.assignment} for the
      variables an update did not touch, [None] for the touched cone.

    Diagnostic values in the returned {!run_info} and in snapshot [data]
    are bit-identical for every pool size (the chain itself is). *)
val marginals_info :
  ?options:Gibbs.options ->
  ?obs:Obs.t ->
  ?pool:Pool.t ->
  ?checkpoint:int ->
  ?online:bool ->
  ?early_stop:Diagnostics.Online.criteria ->
  ?init:(int -> bool option) ->
  Factor_graph.Fgraph.compiled ->
  float array * run_info

(** [schedule_stats c] is the colouring statistics for reporting. *)
val schedule_stats : Factor_graph.Fgraph.compiled -> stats
