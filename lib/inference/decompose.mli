(** Connected-component decomposition of a compiled factor graph.

    The Markov-network measure over [TΦ] factorizes over connected
    components of the factor graph, so every downstream solver — exact
    enumeration ({!Exact}), variable elimination ({!Jtree}), and the
    hybrid dispatcher ({!Hybrid}) — works per component.  This module
    owns the decomposition and the {e canonical} per-component form that
    previously lived inside {!Exact}:

    - components are returned in ascending order of their union-find
      root (the smallest dense variable in the component);
    - within a component, factors are sorted by their fact-id row
      [(I1, I2, I3, w)];
    - variables are renumbered by first mention (head before body) in
      that canonical factor order.

    The canonical form makes floating-point accumulation visit the same
    values in the same order regardless of how the graph was assembled,
    which is what lets a locally grounded neighbourhood
    ([Grounding.Local]) reproduce full-closure marginals bit for bit. *)

(** One connected component in canonical form.  [factors] are graph
    factor indexes in canonical order; [vars.(l)] is the global dense
    variable of local variable [l]; [head]/[body1]/[body2] hold local
    variable indexes ([-1] for null bodies), aligned with [weight] and
    [singleton]. *)
type component = {
  root : int;  (** smallest global dense variable of the component *)
  factors : int array;
  vars : int array;
  head : int array;
  body1 : int array;
  body2 : int array;
  weight : float array;
  singleton : bool array;
}

(** Variable count of the component. *)
val nvars : component -> int

(** Factor count of the component. *)
val nfactors : component -> int

(** [components c] is every connected component of [c] in canonical
    form, ascending by root. *)
val components : Factor_graph.Fgraph.compiled -> component array

(** [max_size c] is the variable count of the largest component ([0] on
    the empty graph) — computed without canonicalizing, for cheap
    dispatch checks. *)
val max_size : Factor_graph.Fgraph.compiled -> int

(** [sum_weights comp a] is the component-local log-weight of assignment
    [a] (indexed by local variable): the sum of satisfied factors'
    weights in canonical factor order. *)
val sum_weights : component -> bool array -> float
