(** Sampler convergence diagnostics.

    MCMC estimates are only trustworthy once the chains have mixed; the
    standard check is the Gelman–Rubin potential scale reduction factor
    (R̂): run several independent chains and compare between-chain to
    within-chain variance.  Values near 1 indicate convergence; the usual
    acceptance threshold is 1.1.

    This is operational support the paper's pipeline leaves to GraphLab;
    here it closes the loop for the built-in Gibbs sampler. *)

type report = {
  r_hat : float array;  (** per dense variable *)
  max_r_hat : float;
  chains : int;
  samples_per_chain : int;
}

(** [r_hat ?chains ?options c] runs [chains] (default 4) independent Gibbs
    chains (seeds derived from [options.seed]) and computes per-variable
    R̂ over the Rao-Blackwellized conditionals.  Variables whose chains
    show no variance (fully determined) report R̂ = 1. *)
val r_hat :
  ?chains:int ->
  ?options:Gibbs.options ->
  Factor_graph.Fgraph.compiled ->
  report

(** [converged ?threshold report] is [max_r_hat < threshold]
    (default 1.1). *)
val converged : ?threshold:float -> report -> bool

(** Online (single-run) diagnostics.

    {!r_hat} re-runs several fresh chains — a 4x inference-cost
    multiplier.  [Online] computes split-R̂ and an effective sample size
    incrementally on the chain the sampler is already running: Welford
    mean/variance per dense variable accumulated in fixed-size segments
    (one per checkpoint window), split-R̂ from merging first-half against
    second-half segments (Chan's exact combination), ESS from the lag-1
    autocorrelation of the Rao-Blackwellized conditionals
    (AR(1): ESS = n·(1-ρ₁)/(1+ρ₁)).

    Thread safety under the chromatic schedule: each variable is updated
    by exactly one chunk per sweep, so concurrent {!observe} calls write
    disjoint indices; {!begin_sweep} and {!report} must run between pool
    barriers.  The accumulated state — and hence every diagnostic — is
    bit-identical for every pool size. *)
module Online : sig
  (** Early-stop criteria: both must hold at a checkpoint. *)
  type criteria = { target_r_hat : float; min_ess : float }

  (** R̂ ≤ 1.05 and ESS ≥ 100. *)
  val default_criteria : criteria

  type t

  (** [create ?segment n] tracks [n] variables with [segment] sweeps per
      accumulation window (default 20 — match the checkpoint cadence). *)
  val create : ?segment:int -> int -> t

  (** Sweeps observed so far. *)
  val sweeps : t -> int

  (** Starts a sweep; call before that sweep's {!observe}s, from the
      coordinating domain. *)
  val begin_sweep : t -> unit

  (** [observe t v p] records variable [v]'s Rao-Blackwellized
      conditional for the current sweep. *)
  val observe : t -> int -> float -> unit

  (** Hot-path alternative to {!observe}: a direct view of the current
      sweep's accumulator arrays, letting a tight sampling loop inline
      the Welford + lag-1 update (writing
      [v_mean]/[v_m2]/[v_cross]/[v_prev] exactly as {!observe} would).
      Invalidated by the next {!begin_sweep} — refetch each sweep. *)
  type view = {
    v_mean : float array;
    v_m2 : float array;
    v_inv_count : float;
    v_prev : float array;
    v_cross : float array;
  }

  val view : t -> view

  type report = {
    sweeps : int;
    r_hat : float array;
        (** per variable; NaN until two checkpoint windows exist *)
    ess : float array;
    max_r_hat : float;  (** NaN when any variable's R̂ is incomputable *)
    min_ess : float;
  }

  (** [report t] computes the diagnostics over everything observed so
      far.  Zero-variance (fully determined) variables report R̂ = 1 and
      ESS = n. *)
  val report : t -> report

  (** [satisfied criteria report] — NaN never satisfies, so a chain too
      short to diagnose is never stopped. *)
  val satisfied : criteria -> report -> bool
end
