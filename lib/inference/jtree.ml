module Fgraph = Factor_graph.Fgraph

let default_max_width = 12

(* Allocation guard: a clique of k variables needs a 2^k table. *)
let max_clique_vars = 28

(* --- dense potential tables -----------------------------------------

   A table is a [float array] of 2^k entries over a *scope* — a sorted
   array of k local variable indexes; bit [j] of an entry's index is the
   value of [scope.(j)].  All arithmetic is max-normalized: every
   factor, message, and *running product* is divided by its largest
   entry after each combine, which keeps tables in (0, 1] with an exact
   1.0 present, so no pass can overflow or underflow to an all-zero
   table.  Renormalizing the accumulators matters, not just the inputs:
   a hub clique receiving thousands of conflicting messages decays like
   p^k and would underflow both belief entries to 0.0 (NaN marginals)
   even though each input had max 1.  Normalization constants cancel in
   the final per-variable ratio. *)

let position scope v =
  let p = ref (-1) in
  Array.iteri (fun j u -> if u = v then p := j) scope;
  !p

let union a b =
  let out = ref [] and i = ref 0 and j = ref 0 in
  let la = Array.length a and lb = Array.length b in
  while !i < la || !j < lb do
    if !j >= lb || (!i < la && a.(!i) < b.(!j)) then begin
      out := a.(!i) :: !out;
      incr i
    end
    else if !i >= la || b.(!j) < a.(!i) then begin
      out := b.(!j) :: !out;
      incr j
    end
    else begin
      out := a.(!i) :: !out;
      incr i;
      incr j
    end
  done;
  Array.of_list (List.rev !out)

(* [mult_into acc acc_scope t t_scope] multiplies [t] (whose scope is a
   subset of [acc_scope]) pointwise into [acc]. *)
let mult_into acc acc_scope t t_scope =
  let pos = Array.map (fun v -> position acc_scope v) t_scope in
  for idx = 0 to Array.length acc - 1 do
    let tidx = ref 0 in
    for j = 0 to Array.length pos - 1 do
      if (idx lsr pos.(j)) land 1 = 1 then tidx := !tidx lor (1 lsl j)
    done;
    acc.(idx) <- acc.(idx) *. t.(!tidx)
  done

let max_normalize t =
  let m = ref 0. in
  Array.iter (fun x -> if x > !m then m := x) t;
  if !m > 0. then
    for i = 0 to Array.length t - 1 do
      t.(i) <- t.(i) /. !m
    done

(* Sum variable [scope.(p)] out of [t]; returns the reduced scope and
   table. *)
let sum_out scope t p =
  let k = Array.length scope in
  let out = Array.make (1 lsl (k - 1)) 0. in
  let low = (1 lsl p) - 1 in
  for idx = 0 to Array.length t - 1 do
    let o = idx land low lor ((idx lsr (p + 1)) lsl p) in
    out.(o) <- out.(o) +. t.(idx)
  done;
  (Array.init (k - 1) (fun j -> if j < p then scope.(j) else scope.(j + 1)), out)

(* Marginalize [t] onto [sub] (a subset of [scope]). *)
let project scope t sub =
  let pos = Array.map (fun v -> position scope v) sub in
  let out = Array.make (1 lsl Array.length sub) 0. in
  for idx = 0 to Array.length t - 1 do
    let o = ref 0 in
    for j = 0 to Array.length pos - 1 do
      if (idx lsr pos.(j)) land 1 = 1 then o := !o lor (1 lsl j)
    done;
    out.(!o) <- out.(!o) +. t.(idx)
  done;
  out

(* Potential table of one factor: exp(w) when satisfied, 1 otherwise
   (the log-linear measure of equation (3)), max-normalized. *)
let factor_table comp f =
  let h = comp.Decompose.head.(f)
  and b1 = comp.Decompose.body1.(f)
  and b2 = comp.Decompose.body2.(f)
  and w = comp.Decompose.weight.(f)
  and sing = comp.Decompose.singleton.(f) in
  let vars = List.filter (fun v -> v >= 0) [ h; b1; b2 ] in
  let scope = Array.of_list (List.sort_uniq compare vars) in
  let value idx v = (idx lsr position scope v) land 1 = 1 in
  let ew = exp w in
  let t =
    Array.init
      (1 lsl Array.length scope)
      (fun idx ->
        let sat =
          if sing then value idx h
          else
            let body_true =
              (b1 < 0 || value idx b1) && (b2 < 0 || value idx b2)
            in
            (not body_true) || value idx h
        in
        if sat then ew else 1.)
  in
  max_normalize t;
  (scope, t)

(* --- clique-tree propagation ----------------------------------------

   Bucket elimination along the given order defines the clique tree:
   clique [i] gathers the original factors whose earliest-eliminated
   variable is [order.(i)] plus the messages earlier cliques sent here,
   sums [order.(i)] out, and passes the result to the clique of the
   earliest-eliminated variable remaining in scope (its parent).  The
   backward pass sends each child the marginalized product of everything
   outside its subtree, after which clique [i]'s belief is proportional
   to the joint marginal over its scope — one upward and one downward
   sweep yield every single-variable marginal.  Purely deterministic:
   no RNG, and the traversal is a function of the canonical component
   and the elimination order alone. *)

let solve ?order comp =
  let n = Decompose.nvars comp in
  if n = 0 then [||]
  else begin
    let order =
      match order with
      | Some o -> o
      | None -> (Triangulate.analyze comp).Triangulate.order
    in
    let step = Array.make n 0 in
    Array.iteri (fun i v -> step.(v) <- i) order;
    (* Original factors, bucketed at their earliest-eliminated variable
       (consed in reverse so each bucket keeps canonical factor order). *)
    let bucket = Array.make n [] in
    for f = Decompose.nfactors comp - 1 downto 0 do
      let scope, t = factor_table comp f in
      let tgt =
        Array.fold_left
          (fun best v -> if step.(v) < step.(best) then v else best)
          scope.(0) scope
      in
      bucket.(step.(tgt)) <- (scope, t) :: bucket.(step.(tgt))
    done;
    let clique_scope = Array.make n [||] in
    let clique_psi = Array.make n [||] in
    let inbox = Array.make n [] in (* (sender step, sep, msg), receipt order *)
    let up_sep = Array.make n [||] in
    (* Upward (elimination) pass. *)
    for i = 0 to n - 1 do
      let v = order.(i) in
      let kids = List.rev inbox.(i) in
      inbox.(i) <- kids;
      let scope =
        List.fold_left
          (fun acc (_, sep, _) -> union acc sep)
          (List.fold_left (fun acc (s, _) -> union acc s) [| v |] bucket.(i))
          kids
      in
      if Array.length scope > max_clique_vars then
        invalid_arg
          (Printf.sprintf
             "Jtree: a clique of %d variables exceeds the limit of %d"
             (Array.length scope) max_clique_vars);
      let psi = Array.make (1 lsl Array.length scope) 1. in
      List.iter
        (fun (s, t) ->
          mult_into psi scope t s;
          max_normalize psi)
        bucket.(i);
      clique_scope.(i) <- scope;
      clique_psi.(i) <- psi;
      let b = Array.copy psi in
      List.iter
        (fun (_, sep, m) ->
          mult_into b scope m sep;
          max_normalize b)
        kids;
      let sep, m = sum_out scope b (position scope v) in
      up_sep.(i) <- sep;
      if Array.length sep > 0 then begin
        max_normalize m;
        let u =
          Array.fold_left
            (fun best w -> if step.(w) < step.(best) then w else best)
            sep.(0) sep
        in
        inbox.(step.(u)) <- (i, sep, m) :: inbox.(step.(u))
      end
    done;
    (* Downward pass: [down.(i)] is the product of everything outside
       clique [i]'s subtree, marginalized onto its upward separator. *)
    let down = Array.make n [| 1. |] in
    let marg = Array.make n 0. in
    for i = n - 1 downto 0 do
      let scope = clique_scope.(i) in
      let kids = Array.of_list inbox.(i) in
      let nk = Array.length kids in
      let base = Array.copy clique_psi.(i) in
      mult_into base scope down.(i) up_sep.(i);
      max_normalize base;
      (* Prefix/suffix products make every except-one combination O(nk)
         tables instead of O(nk²) — star-shaped cliques receive
         thousands of messages.  Each accumulator is renormalized per
         step; any per-table scale cancels in the belief ratio and in
         the projected-then-normalized down messages. *)
      let pre = Array.make (nk + 1) base in
      for t = 0 to nk - 1 do
        let _, sep, m = kids.(t) in
        let next = Array.copy pre.(t) in
        mult_into next scope m sep;
        max_normalize next;
        pre.(t + 1) <- next
      done;
      let suf = Array.make (nk + 1) [||] in
      suf.(nk) <- Array.make (Array.length base) 1.;
      for t = nk - 1 downto 0 do
        let _, sep, m = kids.(t) in
        let next = Array.copy suf.(t + 1) in
        mult_into next scope m sep;
        max_normalize next;
        suf.(t) <- next
      done;
      (* Belief = psi × down × all child messages. *)
      let belief = pre.(nk) in
      let v = order.(i) in
      let one = project scope belief [| v |] in
      marg.(v) <- one.(1) /. (one.(0) +. one.(1));
      Array.iteri
        (fun t (sender, sep, _) ->
          let outside = Array.copy pre.(t) in
          mult_into outside scope suf.(t + 1) scope;
          let d = project scope outside sep in
          max_normalize d;
          down.(sender) <- d)
        kids
    done;
    marg
  end

let marginals ?(max_width = default_max_width) c =
  let marg = Array.make (Fgraph.nvars c) 0. in
  Array.iter
    (fun comp ->
      let tri = Triangulate.analyze ~cap:max_width comp in
      if tri.Triangulate.width > max_width then
        invalid_arg
          (Printf.sprintf
             "Jtree: component induced width exceeds the bound of %d"
             max_width);
      let local = solve ~order:tri.Triangulate.order comp in
      Array.iteri
        (fun v p -> marg.(comp.Decompose.vars.(v)) <- p)
        local)
    (Decompose.components c);
  marg
