(** Fixed-capacity row chunks for batch-at-a-time execution.

    A batch is the unit of data flow in the pipelined executor
    ({!Pipeline}): a row-major slab of integer cells over the same flat
    layout as {!Table}, plus an optional float weight lane (mirroring the
    nullable [w] attribute) and a row-id lane carrying each row's
    provenance in the pipeline's source table (used by residual join
    predicates).

    Operator kernels mutate batches in place — a filter compacts the
    surviving rows to the front, a probe fills a private output batch —
    so steady-state execution allocates nothing per row.  The concrete
    record is exposed for the kernels' inner loops; everything outside
    [lib/relational] should treat values as abstract. *)

type t = {
  width : int;
  weighted : bool;
  capacity : int;
  mutable n : int;  (** number of live rows, [0 <= n <= capacity] *)
  cells : int array;  (** [capacity * width] row-major cells *)
  wts : float array;  (** [capacity] weights when [weighted], else [[||]] *)
  rids : int array;  (** [capacity] source row ids *)
}

(** Rows per batch unless overridden: large enough to amortize per-batch
    dispatch, small enough to stay cache-resident (1024 rows × 7 columns
    × 8 bytes ≈ 56 KiB for the fact table's widest schema). *)
val default_capacity : int

(** [create ~weighted width] is an empty batch of [width] integer
    columns.  @raise Invalid_argument if [capacity < 1]. *)
val create : ?capacity:int -> weighted:bool -> int -> t

val width : t -> int
val weighted : t -> bool
val capacity : t -> int

(** [length b] is the number of live rows. *)
val length : t -> int

val is_empty : t -> bool
val is_full : t -> bool

(** [clear b] drops all rows, keeping storage. *)
val clear : t -> unit

(** [get b r c] is the value at row [r], column [c]. *)
val get : t -> int -> int -> int

val set : t -> int -> int -> int -> unit

(** [weight b r] is the weight of row [r]; {!Table.null_weight} when the
    batch is unweighted. *)
val weight : t -> int -> float

val set_weight : t -> int -> float -> unit

(** [rid b r] is the source-table row id carried by row [r]. *)
val rid : t -> int -> int

(** [push_from_table b tbl r] appends row [r] of [tbl] — cells, weight
    (null when [tbl] is unweighted), and row id [r].  The caller must
    check {!is_full} first. *)
val push_from_table : t -> Table.t -> int -> unit

(** [alloc_row b ~rid] opens a fresh row with the given row id (weight
    initialized to null) and returns its index; the caller fills the
    cells via {!set}.  The caller must check {!is_full} first. *)
val alloc_row : t -> rid:int -> int

(** [move_row b ~src ~dst] copies row [src] onto [dst] ([dst <= src]);
    used by filters compacting a batch in place. *)
val move_row : t -> src:int -> dst:int -> unit

(** [truncate b n] sets the live row count to [n] ([n <= length b]). *)
val truncate : t -> int -> unit

(** [append_row_to_table tbl b r] appends batch row [r] to [tbl],
    carrying the weight when both sides are weighted. *)
val append_row_to_table : Table.t -> t -> int -> unit
