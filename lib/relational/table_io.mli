(** Spilling tables to disk.

    Tab-separated text with a one-line header carrying the format version
    and the schema:

    {v
    #table:2 T_Pi weighted I R x C1 y C2
    0	3	17	1	24	2	0.96
    1	3	18	1	24	2	-
    v}

    Weights serialize as [-] when null.  The format exists for
    checkpointing intermediate tables and moving them between processes;
    knowledge-base-level I/O (with symbol names) lives in [Kb.Loader].
    Files written by a different format version (including unversioned
    version-1 files, whose header keyword is a bare [#table]) are
    rejected with {!Parse_error} instead of being garbled through the
    row decoder. *)

exception Parse_error of string

(** The format version {!write} stamps into the header; {!read} rejects
    any other. *)
val format_version : int

(** [write tbl oc] writes the table. *)
val write : Table.t -> out_channel -> unit

(** [read ic] parses a table written by {!write}.
    @raise Parse_error on malformed input. *)
val read : in_channel -> Table.t

(** [to_file tbl path] / [of_file path] are file-level conveniences. *)
val to_file : Table.t -> string -> unit

val of_file : string -> Table.t
