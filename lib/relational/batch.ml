type t = {
  width : int;
  weighted : bool;
  capacity : int;
  mutable n : int;
  cells : int array;
  wts : float array;
  rids : int array;
}

let default_capacity = 1024

let create ?(capacity = default_capacity) ~weighted width =
  if capacity < 1 then invalid_arg "Batch.create: capacity";
  {
    width;
    weighted;
    capacity;
    n = 0;
    cells = Array.make (capacity * max 1 width) 0;
    wts = (if weighted then Array.make capacity Table.null_weight else [||]);
    rids = Array.make capacity 0;
  }

let width b = b.width
let weighted b = b.weighted
let capacity b = b.capacity
let length b = b.n
let is_empty b = b.n = 0
let is_full b = b.n >= b.capacity
let clear b = b.n <- 0
let get b r c = b.cells.((r * b.width) + c)
let set b r c v = b.cells.((r * b.width) + c) <- v
let weight b r = if b.weighted then b.wts.(r) else Table.null_weight

let set_weight b r w =
  if not b.weighted then invalid_arg "Batch.set_weight: not weighted";
  b.wts.(r) <- w

let rid b r = b.rids.(r)

let push_from_table b tbl r =
  let i = b.n in
  Table.blit_row tbl r b.cells (i * b.width);
  if b.weighted then
    b.wts.(i) <-
      (if Table.weighted tbl then Table.weight tbl r else Table.null_weight);
  b.rids.(i) <- r;
  b.n <- i + 1

let alloc_row b ~rid =
  let i = b.n in
  b.rids.(i) <- rid;
  if b.weighted then b.wts.(i) <- Table.null_weight;
  b.n <- i + 1;
  i

let move_row b ~src ~dst =
  if src <> dst then begin
    Array.blit b.cells (src * b.width) b.cells (dst * b.width) b.width;
    if b.weighted then b.wts.(dst) <- b.wts.(src);
    b.rids.(dst) <- b.rids.(src)
  end

let truncate b n = b.n <- n

let append_row_to_table tbl b r =
  if Table.weighted tbl && b.weighted then
    Table.append_slice_w tbl b.cells (r * b.width) b.wts.(r)
  else Table.append_slice tbl b.cells (r * b.width)
