type t = {
  name : string;
  cols : string array;
  width : int;
  weighted : bool;
  mutable nrows : int;
  mutable cells : int array;
  mutable wts : float array;
}

let null_weight = nan
let is_null_weight w = Float.is_nan w

let create ?(weighted = false) ~name cols =
  let width = Array.length cols in
  {
    name;
    cols;
    width;
    weighted;
    nrows = 0;
    cells = Array.make (16 * max 1 width) 0;
    wts = (if weighted then Array.make 16 null_weight else [||]);
  }

let name t = t.name
let cols t = t.cols
let width t = t.width
let weighted t = t.weighted
let nrows t = t.nrows

let col_index t c =
  let rec find i =
    if i >= t.width then raise Not_found
    else if String.equal t.cols.(i) c then i
    else find (i + 1)
  in
  find 0

let ensure t extra =
  let needed = (t.nrows + extra) * t.width in
  if needed > Array.length t.cells then begin
    let cap = ref (max 16 (Array.length t.cells)) in
    while !cap < needed do
      cap := 2 * !cap
    done;
    let cells = Array.make !cap 0 in
    Array.blit t.cells 0 cells 0 (t.nrows * t.width);
    t.cells <- cells
  end;
  if t.weighted && t.nrows + extra > Array.length t.wts then begin
    let cap = ref (max 16 (Array.length t.wts)) in
    while !cap < t.nrows + extra do
      cap := 2 * !cap
    done;
    let wts = Array.make !cap null_weight in
    Array.blit t.wts 0 wts 0 t.nrows;
    t.wts <- wts
  end

let reserve t n = if n > 0 then ensure t n

let append t row =
  if Array.length row <> t.width then invalid_arg "Table.append: width";
  ensure t 1;
  Array.blit row 0 t.cells (t.nrows * t.width) t.width;
  if t.weighted then t.wts.(t.nrows) <- null_weight;
  t.nrows <- t.nrows + 1

let append_w t row w =
  if not t.weighted then invalid_arg "Table.append_w: table not weighted";
  if Array.length row <> t.width then invalid_arg "Table.append_w: width";
  ensure t 1;
  Array.blit row 0 t.cells (t.nrows * t.width) t.width;
  t.wts.(t.nrows) <- w;
  t.nrows <- t.nrows + 1

let append_from dst src r =
  if src.width <> dst.width then invalid_arg "Table.append_from: width";
  ensure dst 1;
  Array.blit src.cells (r * src.width) dst.cells (dst.nrows * dst.width)
    dst.width;
  if dst.weighted then
    dst.wts.(dst.nrows) <-
      (if src.weighted then src.wts.(r) else null_weight);
  dst.nrows <- dst.nrows + 1

let get t r c = t.cells.((r * t.width) + c)
let set t r c v = t.cells.((r * t.width) + c) <- v

let weight t r =
  if not t.weighted then invalid_arg "Table.weight: table not weighted";
  t.wts.(r)

let set_weight t r w =
  if not t.weighted then invalid_arg "Table.set_weight: not weighted";
  t.wts.(r) <- w

let read_row t r buf = Array.blit t.cells (r * t.width) buf 0 t.width
let blit_row t r buf off = Array.blit t.cells (r * t.width) buf off t.width

let append_slice t src off =
  ensure t 1;
  Array.blit src off t.cells (t.nrows * t.width) t.width;
  if t.weighted then t.wts.(t.nrows) <- null_weight;
  t.nrows <- t.nrows + 1

let append_slice_w t src off w =
  if not t.weighted then invalid_arg "Table.append_slice_w: not weighted";
  ensure t 1;
  Array.blit src off t.cells (t.nrows * t.width) t.width;
  t.wts.(t.nrows) <- w;
  t.nrows <- t.nrows + 1

let row t r =
  let buf = Array.make t.width 0 in
  read_row t r buf;
  buf

let iter f t =
  for r = 0 to t.nrows - 1 do
    f r
  done

let clear t = t.nrows <- 0

let copy t =
  {
    t with
    cells = Array.sub t.cells 0 (max 1 (t.nrows * t.width));
    wts = (if t.weighted then Array.sub t.wts 0 (max 1 t.nrows) else [||]);
  }

let filter t p =
  let out = create ~weighted:t.weighted ~name:t.name t.cols in
  for r = 0 to t.nrows - 1 do
    if p r then append_from out t r
  done;
  out

let sub t rows =
  let out = create ~weighted:t.weighted ~name:t.name t.cols in
  Array.iter (fun r -> append_from out t r) rows;
  out

let append_all dst src =
  ensure dst src.nrows;
  for r = 0 to src.nrows - 1 do
    append_from dst src r
  done

let row_bytes t = (8 * t.width) + if t.weighted then 8 else 0
let byte_size t = t.nrows * row_bytes t

let equal_rows a ra b rb =
  let rec eq c =
    c >= a.width
    || a.cells.((ra * a.width) + c) = b.cells.((rb * b.width) + c)
       && eq (c + 1)
  in
  a.width = b.width && eq 0

let pp ?(max_rows = 20) ppf t =
  Format.fprintf ppf "@[<v>%s (%d rows)@," t.name t.nrows;
  Format.fprintf ppf "  %a%s@,"
    Fmt.(array ~sep:(any " | ") string)
    t.cols
    (if t.weighted then " | w" else "");
  let shown = min max_rows t.nrows in
  for r = 0 to shown - 1 do
    Format.fprintf ppf "  ";
    for c = 0 to t.width - 1 do
      if c > 0 then Format.fprintf ppf " | ";
      Format.fprintf ppf "%d" (get t r c)
    done;
    if t.weighted then
      if is_null_weight t.wts.(r) then Format.fprintf ppf " | NULL"
      else Format.fprintf ppf " | %.2f" t.wts.(r);
    Format.fprintf ppf "@,"
  done;
  if shown < t.nrows then Format.fprintf ppf "  ... (%d more)@," (t.nrows - shown);
  Format.fprintf ppf "@]"
