(** Segmented scan sources: spilled tables as the executor sees them.

    A source is an ordered array of immutable segments, each knowing its
    row count, per-column min/max zone maps, and how to stream its rows
    out as {!Batch.t} chunks.  The storage layer ([lib/storage]) builds
    these over mmap'd column-segment files; {!Pipeline.run_segments}
    drives them (one segment = one morsel) and {!Plan} prunes segments
    whose zone maps exclude a scan's predicates.  Row ids handed out by
    a segmented scan equal the row indices of the unspilled table, so
    downstream residual predicates behave identically. *)

type seg = {
  rows : int;
  mins : int array;  (** per-column minima; [[||]] when [rows = 0] *)
  maxs : int array;  (** per-column maxima; [[||]] when [rows = 0] *)
  scan : capacity:int -> base_rid:int -> (Batch.t -> unit) -> int;
      (** [scan ~capacity ~base_rid push] streams the segment's rows in
          order as batches of at most [capacity] rows, with row ids
          [base_rid + local index]; returns the number of batches
          pushed.  Must be re-entrant. *)
}

type t = {
  name : string;
  cols : string array;
  weighted : bool;
  stats : Colstats.t;
      (** whole-table statistics (persisted by the store, so reopening
          never rescans) *)
  segs : seg array;
}

(** [rows t] is the total row count over all segments. *)
val rows : t -> int

(** [seg_of_table ?lo ?hi tbl] wraps rows [lo, hi)] (default: all) of an
    in-memory table as one segment — the tail of a partially spilled
    table, or a test double. *)
val seg_of_table : ?lo:int -> ?hi:int -> Table.t -> seg

(** [of_table tbl] is a single-segment in-memory source over [tbl]. *)
val of_table : Table.t -> t

(** [to_table t] materializes the source back into an in-memory table
    (identity checks; the materializing executor). *)
val to_table : t -> Table.t
