type t = {
  table : Table.t;
  dedup : Index.t option;
  dedup_key : int array;
  kbuf : int array;
  mutable pushed : int;
}

let create ?dedup_key ?reserve ?(weighted = false) ~name cols =
  let table = Table.create ~weighted ~name cols in
  (match reserve with
  | Some n when n > 0 ->
    (* Pre-size from the caller's cardinality estimate, capped so a wild
       over-estimate cannot allocate an arena nobody fills. *)
    Table.reserve table (min n (1 lsl 20))
  | _ -> ());
  let dedup_key = Option.value dedup_key ~default:[||] in
  {
    table;
    dedup =
      (if Array.length dedup_key > 0 then Some (Index.build table dedup_key)
       else None);
    dedup_key;
    kbuf = Array.make (Array.length dedup_key) 0;
    pushed = 0;
  }

let clone_empty s =
  create
    ?dedup_key:
      (if Array.length s.dedup_key > 0 then Some s.dedup_key else None)
    ~weighted:(Table.weighted s.table) ~name:(Table.name s.table)
    (Table.cols s.table)

let table s = s.table
let rows_out s = Table.nrows s.table
let pushed s = s.pushed
let add_pushed s n = s.pushed <- s.pushed + n
let is_dedup s = s.dedup <> None

let push_batch s b =
  let n = Batch.length b in
  s.pushed <- s.pushed + n;
  match s.dedup with
  | None ->
    Table.reserve s.table n;
    for r = 0 to n - 1 do
      Batch.append_row_to_table s.table b r
    done
  | Some idx ->
    let key = s.dedup_key and kbuf = s.kbuf in
    for r = 0 to n - 1 do
      for i = 0 to Array.length key - 1 do
        kbuf.(i) <- Batch.get b r key.(i)
      done;
      if not (Index.mem idx kbuf) then begin
        Batch.append_row_to_table s.table b r;
        Index.add idx (Table.nrows s.table - 1)
      end
    done

(* Appends every row of [src] (same schema as the sink table), re-checking
   the dedup set so the sink's global first occurrence wins.  Used when
   merging per-morsel sinks in morsel order; does not count as pushes —
   the driver transfers the local sinks' push counts instead. *)
let absorb s src =
  match s.dedup with
  | None -> Table.append_all s.table src
  | Some idx ->
    let key = s.dedup_key in
    for r = 0 to Table.nrows src - 1 do
      if not (Index.mem_row idx src key r) then begin
        Table.append_from s.table src r;
        Index.add idx (Table.nrows s.table - 1)
      end
    done

(* The one place dedup telemetry is emitted: inline join dedup and
   standalone DISTINCT both report through here, so their counters obey
   the same identity (rows_in - duplicates = rows_out) and can be
   compared directly. *)
let record_distinct_obs obs s =
  if Obs.enabled obs && s.dedup <> None then begin
    Obs.add obs "distinct.rows_in" s.pushed;
    Obs.add obs "distinct.rows_out" (rows_out s);
    Obs.add obs "distinct.duplicates" (s.pushed - rows_out s)
  end
