(* A segmented scan source: the executor-facing face of a spilled table.

   [lib/storage] keeps tables as immutable on-disk column segments; the
   pipelined executor only needs, per segment, the row count, the
   per-column zone maps (for partition pruning) and a way to stream the
   rows out as batches.  This record is that contract — it lives in
   [lib/relational] so {!Pipeline} and {!Plan} can consume spilled
   tables without depending on the storage layer (and so tests can back
   a source with plain in-memory tables). *)

type seg = {
  rows : int;
  mins : int array;  (* per-column minima; [[||]] when [rows = 0] *)
  maxs : int array;  (* per-column maxima; [[||]] when [rows = 0] *)
  scan : capacity:int -> base_rid:int -> (Batch.t -> unit) -> int;
      (* stream the segment's rows, in order, as batches of at most
         [capacity] rows; row ids are [base_rid + local row index] so a
         segmented scan hands out the same rids as a scan of the
         unspilled table.  Returns the number of batches pushed; must be
         re-entrant (parallel scans each call it with their own push). *)
}

type t = {
  name : string;
  cols : string array;
  weighted : bool;
  stats : Colstats.t;  (* table-level statistics, persisted with the store *)
  segs : seg array;
}

let rows t = Array.fold_left (fun acc s -> acc + s.rows) 0 t.segs

(* An in-memory table wrapped as a single-segment source: the test
   double for spilled stores, and the tail of a partially spilled table
   (rows not yet flushed into full segments). *)
let seg_of_table ?(lo = 0) ?hi tbl =
  let hi = match hi with Some h -> h | None -> Table.nrows tbl in
  let n = max 0 (hi - lo) in
  let width = Table.width tbl in
  let mins = Array.make (if n = 0 then 0 else width) max_int in
  let maxs = Array.make (if n = 0 then 0 else width) min_int in
  for r = lo to hi - 1 do
    for c = 0 to width - 1 do
      let v = Table.get tbl r c in
      if v < mins.(c) then mins.(c) <- v;
      if v > maxs.(c) then maxs.(c) <- v
    done
  done;
  let scan ~capacity ~base_rid push =
    ignore base_rid;
    (* rids from an in-memory segment are the table's own row indices —
       [base_rid] is implied by [lo]. *)
    let b = Batch.create ~capacity ~weighted:(Table.weighted tbl) width in
    let batches = ref 0 in
    for r = lo to hi - 1 do
      if Batch.is_full b then begin
        incr batches;
        push b;
        Batch.clear b
      end;
      Batch.push_from_table b tbl r
    done;
    if not (Batch.is_empty b) then begin
      incr batches;
      push b
    end;
    !batches
  in
  { rows = n; mins; maxs; scan }

let of_table tbl =
  {
    name = Table.name tbl;
    cols = Table.cols tbl;
    weighted = Table.weighted tbl;
    stats = Colstats.stats_for tbl;
    segs = [| seg_of_table tbl |];
  }

(* Materialize the whole source back into a table (the reference path:
   identity checks and the materializing executor). *)
let to_table t =
  let out = Table.create ~weighted:t.weighted ~name:t.name t.cols in
  Table.reserve out (rows t);
  let base = ref 0 in
  Array.iter
    (fun s ->
      ignore
        (s.scan ~capacity:Batch.default_capacity ~base_rid:!base (fun b ->
             for r = 0 to Batch.length b - 1 do
               Batch.append_row_to_table out b r
             done));
      base := !base + s.rows)
    t.segs;
  out
