type pred =
  | Eq_const of int * int
  | Eq_cols of int * int
  | Lt_const of int * int
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type t =
  | Scan of Table.t
  | Scan_segments of Segsrc.t
  | Select of pred * t
  | Project of int array * t
  | Equi_join of { left : t; right : t; lkey : int array; rkey : int array }
  | Distinct of int array option * t
  | Order_by of int array * t

let check_cols what schema cols =
  Array.iter
    (fun c ->
      if c < 0 || c >= Array.length schema then
        invalid_arg
          (Printf.sprintf "Plan.%s: column %d out of range (width %d)" what c
             (Array.length schema)))
    cols

let rec columns = function
  | Scan tbl -> Table.cols tbl
  | Scan_segments s -> s.Segsrc.cols
  | Select (_, child) -> columns child
  | Project (cols, child) ->
    let schema = columns child in
    check_cols "project" schema cols;
    Array.map (fun c -> schema.(c)) cols
  | Equi_join { left; right; lkey; rkey } ->
    let ls = columns left and rs = columns right in
    check_cols "join(left)" ls lkey;
    check_cols "join(right)" rs rkey;
    if Array.length lkey <> Array.length rkey then
      invalid_arg "Plan.join: key arity mismatch";
    Array.append ls rs
  | Distinct (key, child) ->
    let schema = columns child in
    Option.iter (check_cols "distinct" schema) key;
    schema
  | Order_by (key, child) ->
    let schema = columns child in
    check_cols "order_by" schema key;
    schema

let width p = Array.length (columns p)

(* --- cardinality estimation --- *)

(* Trace an output column back to the statistics of the base table (or
   spilled store — its stats are persisted with the segment headers, so
   no rescan happens here) it is read from: columns pass through
   filters, projections and joins unchanged, so selectivities and
   distinct counts can use {!Colstats} instead of textbook constants. *)
let rec resolve_col p c =
  match p with
  | Scan tbl -> Some (Colstats.stats_for tbl, c)
  | Scan_segments s -> Some (s.Segsrc.stats, c)
  | Select (_, child) | Distinct (_, child) | Order_by (_, child) ->
    resolve_col child c
  | Project (cols, child) -> resolve_col child cols.(c)
  | Equi_join { left; right; _ } ->
    let lw = width left in
    if c < lw then resolve_col left c else resolve_col right (c - lw)

let eq_selectivity = 0.1
let range_selectivity = 0.3

let rec pred_selectivity child = function
  | Eq_const (c, v) -> (
    (* 1/ndv under the uniform assumption; 0 outside the column's value
       range; the textbook constant when the column cannot be traced to
       a base table. *)
    match resolve_col child c with
    | Some (st, bc) when Colstats.rows st > 0 -> (
      match (Colstats.min_value st bc, Colstats.max_value st bc) with
      | Some lo, Some hi when v < lo || v > hi -> 0.
      | _ -> 1. /. float_of_int (max 1 (Colstats.ndv st bc)))
    | _ -> eq_selectivity)
  | Eq_cols _ -> eq_selectivity
  | Lt_const _ -> range_selectivity
  | And (a, b) -> pred_selectivity child a *. pred_selectivity child b
  | Or (a, b) ->
    let sa = pred_selectivity child a and sb = pred_selectivity child b in
    sa +. sb -. (sa *. sb)
  | Not p -> 1. -. pred_selectivity child p

(* NDV of a composite key over a node's output, resolved column by
   column to base-table statistics; [cap] bounds the product (a key
   cannot take more distinct values than there are rows).  [None] when
   some column cannot be traced. *)
let ndv_resolved node key ~cap =
  let resolved = Array.map (resolve_col node) key in
  if Array.length key > 0 && Array.for_all Option.is_some resolved then
    Some
      (max 1
         (min (max 1 cap)
            (Array.fold_left
               (fun acc r ->
                 if acc > cap then acc
                 else
                   let st, bc = Option.get r in
                   acc * max 1 (Colstats.ndv st bc))
               1 resolved)))
  else None

let rec estimate_rows = function
  | Scan tbl -> Table.nrows tbl
  | Scan_segments s -> Segsrc.rows s
  | Select (p, child) ->
    int_of_float
      (Float.round
         (pred_selectivity child p *. float_of_int (estimate_rows child)))
  | Project (_, child) -> estimate_rows child
  | Equi_join { left; right; lkey; rkey } ->
    (* |L|·|R| / max(ndv_L(key), ndv_R(key)), with NDVs resolved to base
       tables when possible and estimated otherwise. *)
    let nl = estimate_rows left and nr = estimate_rows right in
    let ndv_of node key fallback =
      match ndv_resolved node key ~cap:fallback with
      | Some d -> d
      | None -> max 1 (fallback / 10)
    in
    let d = max (ndv_of left lkey nl) (ndv_of right rkey nr) in
    if d = 0 then 0 else nl * nr / max 1 d
  | Distinct (key, child) ->
    (* Capped by the distinct count of the key when its columns resolve
       to base tables. *)
    let est = estimate_rows child in
    let keycols =
      match key with
      | Some k -> k
      | None -> Array.init (width child) Fun.id
    in
    if est = 0 then 0
    else (
      match ndv_resolved child keycols ~cap:est with
      | Some d -> min est d
      | None -> est)
  | Order_by (_, child) -> estimate_rows child

(* --- shared physical choices --- *)

let all_cols tbl = Array.init (Table.width tbl) Fun.id

(* Build side of an equi-join: the smaller estimated input.  One static
   rule shared by the materializing and the pipelined engines — the
   streaming engine cannot know actual cardinalities before running, and
   sharing the choice keeps the two engines' output orders (probe order
   × hash-chain order) bit-identical. *)
let join_build_left left right = estimate_rows left <= estimate_rows right

let rec plan_weighted = function
  | Scan tbl -> Table.weighted tbl
  | Scan_segments s -> s.Segsrc.weighted
  | Select (_, child) | Project (_, child) | Distinct (_, child)
  | Order_by (_, child) ->
    plan_weighted child
  | Equi_join _ -> false

let compile_pred p tbl =
  let rec eval p r =
    match p with
    | Eq_const (c, v) -> Table.get tbl r c = v
    | Eq_cols (a, b) -> Table.get tbl r a = Table.get tbl r b
    | Lt_const (c, v) -> Table.get tbl r c < v
    | And (a, b) -> eval a r && eval b r
    | Or (a, b) -> eval a r || eval b r
    | Not a -> not (eval a r)
  in
  eval p

let compile_pred_batch p =
  let rec eval p b r =
    match p with
    | Eq_const (c, v) -> Batch.get b r c = v
    | Eq_cols (a, b') -> Batch.get b r a = Batch.get b r b'
    | Lt_const (c, v) -> Batch.get b r c < v
    | And (x, y) -> eval x b r && eval y b r
    | Or (x, y) -> eval x b r || eval y b r
    | Not x -> not (eval x b r)
  in
  fun b r -> eval p b r

let project_table tbl cols name =
  let schema = Array.map (fun c -> (Table.cols tbl).(c)) cols in
  let out = Table.create ~weighted:(Table.weighted tbl) ~name schema in
  let buf = Array.make (Array.length cols) 0 in
  Table.iter
    (fun r ->
      Array.iteri (fun i c -> buf.(i) <- Table.get tbl r c) cols;
      if Table.weighted tbl then Table.append_w out buf (Table.weight tbl r)
      else Table.append out buf)
    tbl;
  out

(* The out spec of a plan join: left columns then right columns,
   regardless of which side physically builds. *)
let join_out ~build_left l_width r_width =
  let out_for side w = Array.init w (fun c -> Pipeline.Col (side, c)) in
  if build_left then
    Array.append
      (out_for Pipeline.Build l_width)
      (out_for Pipeline.Probe r_width)
  else
    Array.append
      (out_for Pipeline.Probe l_width)
      (out_for Pipeline.Build r_width)

(* Peak-intermediate-allocation accounting: every table an executor run
   materializes (sinks, sorts, join outputs — not base scans) is summed
   and the per-run total reported as a high-water gauge, so the bench
   can compare how much scratch memory each engine touches. *)
let note_intermediate bytes tbl = bytes := !bytes + Table.byte_size tbl

let record_intermediate_bytes bytes =
  let obs = Obs.ambient () in
  if Obs.enabled obs then begin
    Obs.gauge_max obs "exec.peak_intermediate_bytes" (float_of_int !bytes);
    (* Resident-set high water (OS view of the same question: how much
       memory did this run actually pin), when the platform exposes it. *)
    match Obs.peak_rss_bytes () with
    | Some rss -> Obs.gauge_max obs "exec.peak_rss_bytes" (float_of_int rss)
    | None -> ()
  end

(* --- zone-map pruning --- *)

let rec conjuncts p acc =
  match p with And (a, b) -> conjuncts a (conjuncts b acc) | p -> p :: acc

(* Map an output column of a streaming Select/Project prefix back to the
   column of the segmented scan at its base; [None] once the trace
   leaves the prefix (crosses a join or hits a plain scan). *)
let rec prefix_col q c =
  match q with
  | Scan_segments _ -> Some c
  | Select (_, child) -> prefix_col child c
  | Project (cols, child) -> prefix_col child cols.(c)
  | _ -> None

(* The prunable predicates of a streaming spine: [Eq_const] / [Lt_const]
   conjuncts of the Selects sitting between the segmented source scan
   and the first pipeline breaker (following the probe side of joins,
   exactly as the spine does), each resolved to a source column.  A
   segment whose zone map excludes any of them cannot contribute a row
   to the pipeline, so the driver may skip it without changing results —
   only the [storage.segments_skipped] counter. *)
let segment_keep stream =
  let rec go q acc =
    match q with
    | Select (p, child) ->
      let add acc c =
        match c with
        | Eq_const (col, v) -> (
          match prefix_col child col with
          | Some bc -> `Eq (bc, v) :: acc
          | None -> acc)
        | Lt_const (col, v) -> (
          match prefix_col child col with
          | Some bc -> `Lt (bc, v) :: acc
          | None -> acc)
        | _ -> acc
      in
      go child (List.fold_left add acc (conjuncts p []))
    | Project (_, child) -> go child acc
    | Equi_join { left; right; _ } ->
      go (if join_build_left left right then right else left) acc
    | _ -> acc
  in
  let prunes = go stream [] in
  fun (seg : Segsrc.seg) ->
    List.for_all
      (function
        | `Eq (c, v) -> v >= seg.Segsrc.mins.(c) && v <= seg.Segsrc.maxs.(c)
        | `Lt (c, v) -> seg.Segsrc.mins.(c) < v)
      prunes

(* --- materializing executor (the pre-pipeline reference engine) --- *)

let exec_join ?pool ~build_left p l r lkey rkey =
  let btbl, bkey, ptbl, pkey =
    if build_left then (l, lkey, r, rkey) else (r, rkey, l, lkey)
  in
  let out = join_out ~build_left (Table.width l) (Table.width r) in
  Join.hash_join ~name:"join" ~cols:(columns p) ~out ~oweight:Join.No_weight
    ?pool (btbl, bkey) (ptbl, pkey)

let run_materializing ?stats ?pool p =
  (* Validate schemas eagerly so errors carry plan context. *)
  ignore (columns p);
  let bytes = ref 0 in
  let timed label rows f =
    match stats with
    | None -> f ()
    | Some st -> Stats.time st ~label ~rows f
  in
  let rec go p =
    match p with
    | Scan tbl -> tbl
    | Scan_segments s ->
      let out = timed "segment_scan" Table.nrows (fun () -> Segsrc.to_table s) in
      note_intermediate bytes out;
      out
    | Select (pred, child) ->
      let input = go child in
      let out =
        timed "select" Table.nrows (fun () ->
            Table.filter input (compile_pred pred input))
      in
      note_intermediate bytes out;
      out
    | Project (cols, child) ->
      let input = go child in
      let out =
        timed "project" Table.nrows (fun () ->
            project_table input cols "project")
      in
      note_intermediate bytes out;
      out
    | Equi_join { left; right; lkey; rkey } ->
      let build_left = join_build_left left right in
      let l = go left and r = go right in
      let out =
        timed "hash_join" Table.nrows (fun () ->
            exec_join ?pool ~build_left p l r lkey rkey)
      in
      note_intermediate bytes out;
      out
    | Distinct (key, child) ->
      let input = go child in
      let key = Option.value key ~default:(all_cols input) in
      let out =
        timed "distinct" Table.nrows (fun () -> Ops.distinct ?pool input key)
      in
      note_intermediate bytes out;
      out
    | Order_by (key, child) ->
      let input = go child in
      let out = timed "sort" Table.nrows (fun () -> Sort.sort input key) in
      note_intermediate bytes out;
      out
  in
  let out = go p in
  record_intermediate_bytes bytes;
  out

(* --- pipelined executor --- *)

(* Per-node execution meters for EXPLAIN ANALYZE: row counts are bumped
   by counting kernels spliced into the chain (atomically — morsels run
   in parallel); batches and wall time are stamped per pipeline by the
   driving thread. *)
type node_meter = {
  rows : int Atomic.t;
  mutable batches : int;
  mutable seconds : float;
}

type mctx = { mutable meters : (t * node_meter) list }

let meter_of m p =
  match List.find_opt (fun (q, _) -> q == p) m.meters with
  | Some (_, nm) -> nm
  | None ->
    let nm = { rows = Atomic.make 0; batches = 0; seconds = 0. } in
    m.meters <- (p, nm) :: m.meters;
    nm

let count_kernel nm (next : Pipeline.kernel) =
  {
    Pipeline.push =
      (fun b ->
        ignore (Atomic.fetch_and_add nm.rows (Batch.length b));
        next.Pipeline.push b);
    flush = next.Pipeline.flush;
  }

(* What a streaming spine reads from: a resident table (morsel-split by
   {!Pipeline.run}) or a segmented spilled source ({!Pipeline.run_segments},
   one segment per morsel, zone-map pruned). *)
type spine_src = Src_table of Table.t | Src_segments of Segsrc.t

(* Executes [p] on the pipelined engine.  Streaming spines
   (Scan→Select→Project→probe chains) run batch-at-a-time into a single
   sink; only hash build sides, [Distinct] (a dedup sink) and
   [Order_by] materialize. *)
let run_pipelined ?stats ?pool ?m p =
  ignore (columns p);
  let bytes = ref 0 in
  let meter q = Option.map (fun m -> meter_of m q) m in
  let with_meter q next =
    match meter q with Some nm -> count_kernel nm next | None -> next
  in
  (* [spine q] decomposes the streaming prefix of [q]: returns the
     source table, a kernel-chain builder (applied to the terminal
     kernel), and the streaming nodes of the pipeline for metering. *)
  let rec exec p : Table.t =
    match p with
    | Scan tbl ->
      (match meter p with
      | Some nm -> Atomic.set nm.rows (Table.nrows tbl)
      | None -> ());
      tbl
    | Order_by (key, child) ->
      let t0 = Unix.gettimeofday () in
      let input = exec child in
      let out =
        match stats with
        | None -> Sort.sort input key
        | Some st -> Stats.time st ~label:"sort" ~rows:Table.nrows (fun () ->
              Sort.sort input key)
      in
      note_intermediate bytes out;
      (match meter p with
      | Some nm ->
        Atomic.set nm.rows (Table.nrows out);
        nm.seconds <- Unix.gettimeofday () -. t0
      | None -> ());
      out
    | Distinct (key, child) ->
      let kcols =
        match key with
        | Some k -> k
        | None -> Array.init (width child) Fun.id
      in
      drive ~root:p ~dedup:(Some kcols) child
    | Scan_segments _ | Select _ | Project _ | Equi_join _ ->
      drive ~root:p ~dedup:None p
  and drive ~root ~dedup stream =
    let t0 = Unix.gettimeofday () in
    let src, build, nodes = spine stream in
    let sink =
      Sink.create ?dedup_key:dedup
        ~reserve:(estimate_rows root)
        ~weighted:(plan_weighted stream) ~name:"pipeline" (columns stream)
    in
    let chain s = build (Pipeline.into_sink s) in
    let make_sink () = Sink.clone_empty sink in
    let batches =
      match src with
      | Src_table source ->
        Pipeline.run ?pool ~source ~make_sink ~chain ~sink ()
      | Src_segments source ->
        Pipeline.run_segments ?pool ~source ~keep:(segment_keep stream)
          ~make_sink ~chain ~sink ()
    in
    let out = Sink.table sink in
    note_intermediate bytes out;
    let elapsed = Unix.gettimeofday () -. t0 in
    (match stats with
    | Some st ->
      Stats.record st ~label:"pipeline" ~seconds:elapsed
        ~rows_out:(Table.nrows out)
    | None -> ());
    (if dedup <> None then
       let obs = Obs.ambient () in
       if Obs.enabled obs then begin
         Sink.record_distinct_obs obs sink;
         Obs.add_time obs "distinct.seconds" elapsed
       end);
    (match m with
    | Some _ ->
      List.iter
        (fun q ->
          match meter q with
          | Some nm ->
            nm.batches <- batches;
            nm.seconds <- elapsed
          | None -> ())
        (root :: nodes);
      (match meter root with
      | Some nm -> Atomic.set nm.rows (Table.nrows out)
      | None -> ())
    | None -> ());
    out
  and spine q =
    match q with
    | Select (pred, child) ->
      let src, build, nodes = spine child in
      let pb = compile_pred_batch pred in
      ( src,
        (fun next -> build (Pipeline.select pb ~next:(with_meter q next))),
        q :: nodes )
    | Project (cols, child) ->
      let weighted = plan_weighted child in
      let src, build, nodes = spine child in
      ( src,
        (fun next ->
          build
            (Pipeline.project ~cols ~weighted ~next:(with_meter q next) ())),
        q :: nodes )
    | Equi_join { left; right; lkey; rkey } ->
      let build_left = join_build_left left right in
      let bplan, bkey, pplan, pkey =
        if build_left then (left, lkey, right, rkey)
        else (right, rkey, left, lkey)
      in
      let btbl = exec bplan in
      let bidx = Index.build btbl bkey in
      let out = join_out ~build_left (width left) (width right) in
      let src, build, nodes = spine pplan in
      ( src,
        (fun next ->
          build
            (Pipeline.probe bidx ~pkey ~out ~oweight:Pipeline.No_weight
               ~next:(with_meter q next) ())),
        q :: nodes )
    | Scan_segments s ->
      (match meter q with
      | Some nm -> Atomic.set nm.rows (Segsrc.rows s)
      | None -> ());
      (Src_segments s, Fun.id, [ q ])
    | Scan _ | Distinct _ | Order_by _ ->
      let tbl = exec q in
      (Src_table tbl, Fun.id, [])
  in
  let out = exec p in
  record_intermediate_bytes bytes;
  out

let run ?stats ?pool p = run_pipelined ?stats ?pool p

(* --- explain --- *)

(* Pipeline membership, for EXPLAIN annotations: every streaming node
   belongs to the pipeline that consumes its batches; breakers terminate
   their child's pipeline and source a new one.  Computed with the same
   build-side rule the executors use. *)
let pipeline_annotations p =
  let acc = ref [] in
  let next = ref 0 in
  let fresh () =
    let id = !next in
    incr next;
    id
  in
  let add q note = acc := (q, note) :: !acc in
  let rec assign ~pid q =
    match q with
    | Scan _ | Scan_segments _ -> add q (Printf.sprintf "pipeline %d" pid)
    | Select (_, child) | Project (_, child) ->
      add q (Printf.sprintf "pipeline %d" pid);
      assign ~pid child
    | Equi_join { left; right; _ } ->
      let build_left = join_build_left left right in
      add q
        (Printf.sprintf "pipeline %d, build=%s" pid
           (if build_left then "left" else "right"));
      let bplan, pplan = if build_left then (left, right) else (right, left) in
      assign ~pid:(fresh ()) bplan;
      assign ~pid pplan
    | Distinct (_, child) ->
      let child_pid = fresh () in
      add q (Printf.sprintf "breaker: dedup sink of pipeline %d" child_pid);
      assign ~pid:child_pid child
    | Order_by (_, child) ->
      let child_pid = fresh () in
      add q (Printf.sprintf "breaker: sort of pipeline %d" child_pid);
      assign ~pid:child_pid child
  in
  assign ~pid:(fresh ()) p;
  !acc

let annotation_for annots q =
  match List.find_opt (fun (n, _) -> n == q) annots with
  | Some (_, note) -> note
  | None -> ""

let rec explain_node ppf ~annots ~indent p =
  let pad = String.make indent ' ' in
  let schema = String.concat ", " (Array.to_list (columns p)) in
  let est = estimate_rows p in
  let note =
    match annotation_for annots p with "" -> "" | n -> "  [" ^ n ^ "]"
  in
  (match p with
  | Scan tbl ->
    Format.fprintf ppf "%sSeq Scan on %s  (rows=%d)%s@," pad (Table.name tbl)
      (Table.nrows tbl) note
  | Scan_segments s ->
    Format.fprintf ppf "%sSegment Scan on %s  (segments=%d rows=%d)%s@," pad
      s.Segsrc.name
      (Array.length s.Segsrc.segs)
      (Segsrc.rows s) note
  | Select (_, _) -> Format.fprintf ppf "%sFilter  (est=%d)%s@," pad est note
  | Project (cols, _) ->
    Format.fprintf ppf "%sProject [%s]  (est=%d)%s@," pad
      (String.concat ";" (Array.to_list (Array.map string_of_int cols)))
      est note
  | Equi_join { lkey; rkey; _ } ->
    Format.fprintf ppf "%sHash Join on %s = %s  (est=%d)%s@," pad
      (String.concat "," (Array.to_list (Array.map string_of_int lkey)))
      (String.concat "," (Array.to_list (Array.map string_of_int rkey)))
      est note
  | Distinct (_, _) -> Format.fprintf ppf "%sDistinct  (est=%d)%s@," pad est note
  | Order_by (key, _) ->
    Format.fprintf ppf "%sSort by [%s]  (est=%d)%s@," pad
      (String.concat ";" (Array.to_list (Array.map string_of_int key)))
      est note);
  Format.fprintf ppf "%s  -> [%s]@," pad schema;
  match p with
  | Scan _ | Scan_segments _ -> ()
  | Select (_, c) | Project (_, c) | Distinct (_, c) | Order_by (_, c) ->
    explain_node ppf ~annots ~indent:(indent + 2) c
  | Equi_join { left; right; _ } ->
    explain_node ppf ~annots ~indent:(indent + 2) left;
    explain_node ppf ~annots ~indent:(indent + 2) right

let explain ppf p =
  let annots = pipeline_annotations p in
  Format.fprintf ppf "@[<v>";
  explain_node ppf ~annots ~indent:0 p;
  Format.fprintf ppf "@]"

(* --- explain analyze --- *)

type analysis = {
  op : string;
  schema : string array;
  est_rows : int;
  rows : int;
  batches : int;
  seconds : float;
  children : analysis list;
}

let node_label = function
  | Scan tbl -> Printf.sprintf "Seq Scan on %s" (Table.name tbl)
  | Scan_segments s ->
    Printf.sprintf "Segment Scan on %s (%d segments)" s.Segsrc.name
      (Array.length s.Segsrc.segs)
  | Select (_, _) -> "Filter"
  | Project (cols, _) ->
    Printf.sprintf "Project [%s]"
      (String.concat ";" (Array.to_list (Array.map string_of_int cols)))
  | Equi_join { lkey; rkey; _ } ->
    Printf.sprintf "Hash Join on %s = %s"
      (String.concat "," (Array.to_list (Array.map string_of_int lkey)))
      (String.concat "," (Array.to_list (Array.map string_of_int rkey)))
  | Distinct (_, _) -> "Distinct"
  | Order_by (key, _) ->
    Printf.sprintf "Sort by [%s]"
      (String.concat ";" (Array.to_list (Array.map string_of_int key)))

let analyze ?pool p =
  let m = { meters = [] } in
  let table = run_pipelined ?pool ~m p in
  let rec build q =
    let nm = meter_of m q in
    {
      op = node_label q;
      schema = columns q;
      est_rows = estimate_rows q;
      rows = Atomic.get nm.rows;
      batches = nm.batches;
      seconds = nm.seconds;
      children =
        (match q with
        | Scan _ | Scan_segments _ -> []
        | Select (_, c) | Project (_, c) | Distinct (_, c) | Order_by (_, c)
          ->
          [ build c ]
        | Equi_join { left; right; _ } -> [ build left; build right ]);
    }
  in
  (table, build p)

let rec pp_analysis_node ppf ~indent a =
  let pad = String.make indent ' ' in
  Format.fprintf ppf "%s%s  (est=%d rows=%d time=%.3fms%s)@," pad a.op
    a.est_rows a.rows (a.seconds *. 1e3)
    (if a.batches > 0 then Printf.sprintf " batches=%d" a.batches else "");
  Format.fprintf ppf "%s  -> [%s]@," pad
    (String.concat ", " (Array.to_list a.schema));
  List.iter (pp_analysis_node ppf ~indent:(indent + 2)) a.children

let pp_analysis ppf a =
  Format.fprintf ppf "@[<v>";
  pp_analysis_node ppf ~indent:0 a;
  Format.fprintf ppf "@]"

let rec analysis_to_json a =
  Obs.Json.Obj
    [
      ("op", Obs.Json.String a.op);
      ( "schema",
        Obs.Json.List
          (Array.to_list (Array.map (fun c -> Obs.Json.String c) a.schema)) );
      ("est_rows", Obs.Json.Int a.est_rows);
      ("rows", Obs.Json.Int a.rows);
      ("batches", Obs.Json.Int a.batches);
      ("seconds", Obs.Json.Float a.seconds);
      ("children", Obs.Json.List (List.map analysis_to_json a.children));
    ]

let explain_analyze ?pool ppf p =
  let table, a = analyze ?pool p in
  pp_analysis ppf a;
  table
