type pred =
  | Eq_const of int * int
  | Eq_cols of int * int
  | Lt_const of int * int
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type t =
  | Scan of Table.t
  | Select of pred * t
  | Project of int array * t
  | Equi_join of { left : t; right : t; lkey : int array; rkey : int array }
  | Distinct of int array option * t
  | Order_by of int array * t

let check_cols what schema cols =
  Array.iter
    (fun c ->
      if c < 0 || c >= Array.length schema then
        invalid_arg
          (Printf.sprintf "Plan.%s: column %d out of range (width %d)" what c
             (Array.length schema)))
    cols

let rec columns = function
  | Scan tbl -> Table.cols tbl
  | Select (_, child) -> columns child
  | Project (cols, child) ->
    let schema = columns child in
    check_cols "project" schema cols;
    Array.map (fun c -> schema.(c)) cols
  | Equi_join { left; right; lkey; rkey } ->
    let ls = columns left and rs = columns right in
    check_cols "join(left)" ls lkey;
    check_cols "join(right)" rs rkey;
    if Array.length lkey <> Array.length rkey then
      invalid_arg "Plan.join: key arity mismatch";
    Array.append ls rs
  | Distinct (key, child) ->
    let schema = columns child in
    Option.iter (check_cols "distinct" schema) key;
    schema
  | Order_by (key, child) ->
    let schema = columns child in
    check_cols "order_by" schema key;
    schema

(* --- cardinality estimation --- *)

let eq_selectivity = 0.1
let range_selectivity = 0.3

let rec pred_selectivity = function
  | Eq_const _ | Eq_cols _ -> eq_selectivity
  | Lt_const _ -> range_selectivity
  | And (a, b) -> pred_selectivity a *. pred_selectivity b
  | Or (a, b) ->
    let sa = pred_selectivity a and sb = pred_selectivity b in
    sa +. sb -. (sa *. sb)
  | Not p -> 1. -. pred_selectivity p

let rec estimate_rows = function
  | Scan tbl -> Table.nrows tbl
  | Select (p, child) ->
    int_of_float
      (Float.round (pred_selectivity p *. float_of_int (estimate_rows child)))
  | Project (_, child) -> estimate_rows child
  | Equi_join { left; right; lkey; rkey } ->
    (* |L|·|R| / max(ndv_L(key), ndv_R(key)), with NDVs taken from base
       tables when available and estimated otherwise. *)
    let nl = estimate_rows left and nr = estimate_rows right in
    let ndv_of node key fallback =
      match node with
      | Scan tbl -> Colstats.ndv_key (Colstats.analyze tbl) key
      | _ -> max 1 (fallback / 10)
    in
    let d = max (ndv_of left lkey nl) (ndv_of right rkey nr) in
    if d = 0 then 0 else nl * nr / max 1 d
  | Distinct (_, child) -> estimate_rows child
  | Order_by (_, child) -> estimate_rows child

(* --- execution --- *)

let compile_pred p tbl =
  let rec eval p r =
    match p with
    | Eq_const (c, v) -> Table.get tbl r c = v
    | Eq_cols (a, b) -> Table.get tbl r a = Table.get tbl r b
    | Lt_const (c, v) -> Table.get tbl r c < v
    | And (a, b) -> eval a r && eval b r
    | Or (a, b) -> eval a r || eval b r
    | Not a -> not (eval a r)
  in
  eval p

let all_cols tbl = Array.init (Table.width tbl) Fun.id

let project_table tbl cols name =
  let schema = Array.map (fun c -> (Table.cols tbl).(c)) cols in
  let out = Table.create ~weighted:(Table.weighted tbl) ~name schema in
  let buf = Array.make (Array.length cols) 0 in
  Table.iter
    (fun r ->
      Array.iteri (fun i c -> buf.(i) <- Table.get tbl r c) cols;
      if Table.weighted tbl then Table.append_w out buf (Table.weight tbl r)
      else Table.append out buf)
    tbl;
  out

(* The physical equi-join shared by [run] and [analyze]: build on the
   smaller materialized input, emit l's columns then r's regardless of
   which side physically builds. *)
let exec_join ?pool p l r lkey rkey =
  let build_left = Table.nrows l <= Table.nrows r in
  let btbl, bkey, ptbl, pkey =
    if build_left then (l, lkey, r, rkey) else (r, rkey, l, lkey)
  in
  let out_for tbl side = Array.map (fun c -> Join.Col (side, c)) (all_cols tbl) in
  let out =
    Array.append
      (out_for l (if build_left then Join.Build else Join.Probe))
      (out_for r (if build_left then Join.Probe else Join.Build))
  in
  Join.hash_join ~name:"join" ~cols:(columns p) ~out ~oweight:Join.No_weight
    ?pool (btbl, bkey) (ptbl, pkey)

let rec run ?stats ?pool p =
  (* Validate schemas eagerly so errors carry plan context. *)
  ignore (columns p);
  let timed label rows f =
    match stats with
    | None -> f ()
    | Some st -> Stats.time st ~label ~rows f
  in
  match p with
  | Scan tbl -> tbl
  | Select (pred, child) ->
    let input = run ?stats ?pool child in
    timed "select" Table.nrows (fun () ->
        Table.filter input (compile_pred pred input))
  | Project (cols, child) ->
    let input = run ?stats ?pool child in
    timed "project" Table.nrows (fun () -> project_table input cols "project")
  | Equi_join { left; right; lkey; rkey } ->
    let l = run ?stats ?pool left and r = run ?stats ?pool right in
    timed "hash_join" Table.nrows (fun () -> exec_join ?pool p l r lkey rkey)
  | Distinct (key, child) ->
    let input = run ?stats ?pool child in
    let key = Option.value key ~default:(all_cols input) in
    timed "distinct" Table.nrows (fun () -> Ops.distinct ?pool input key)
  | Order_by (key, child) ->
    let input = run ?stats ?pool child in
    timed "sort" Table.nrows (fun () -> Sort.sort input key)

(* --- explain --- *)

let rec explain_node ppf ~indent p =
  let pad = String.make indent ' ' in
  let schema = String.concat ", " (Array.to_list (columns p)) in
  let est = estimate_rows p in
  (match p with
  | Scan tbl ->
    Format.fprintf ppf "%sSeq Scan on %s  (rows=%d)@," pad (Table.name tbl)
      (Table.nrows tbl)
  | Select (_, _) -> Format.fprintf ppf "%sFilter  (est=%d)@," pad est
  | Project (cols, _) ->
    Format.fprintf ppf "%sProject [%s]  (est=%d)@," pad
      (String.concat ";" (Array.to_list (Array.map string_of_int cols)))
      est
  | Equi_join { lkey; rkey; _ } ->
    Format.fprintf ppf "%sHash Join on %s = %s  (est=%d)@," pad
      (String.concat "," (Array.to_list (Array.map string_of_int lkey)))
      (String.concat "," (Array.to_list (Array.map string_of_int rkey)))
      est
  | Distinct (_, _) -> Format.fprintf ppf "%sDistinct  (est=%d)@," pad est
  | Order_by (key, _) ->
    Format.fprintf ppf "%sSort by [%s]  (est=%d)@," pad
      (String.concat ";" (Array.to_list (Array.map string_of_int key)))
      est);
  Format.fprintf ppf "%s  -> [%s]@," pad schema;
  match p with
  | Scan _ -> ()
  | Select (_, c) | Project (_, c) | Distinct (_, c) | Order_by (_, c) ->
    explain_node ppf ~indent:(indent + 2) c
  | Equi_join { left; right; _ } ->
    explain_node ppf ~indent:(indent + 2) left;
    explain_node ppf ~indent:(indent + 2) right

let explain ppf p =
  Format.fprintf ppf "@[<v>";
  explain_node ppf ~indent:0 p;
  Format.fprintf ppf "@]"

(* --- explain analyze --- *)

type analysis = {
  op : string;
  schema : string array;
  est_rows : int;
  rows : int;
  seconds : float;
  children : analysis list;
}

let node_label = function
  | Scan tbl -> Printf.sprintf "Seq Scan on %s" (Table.name tbl)
  | Select (_, _) -> "Filter"
  | Project (cols, _) ->
    Printf.sprintf "Project [%s]"
      (String.concat ";" (Array.to_list (Array.map string_of_int cols)))
  | Equi_join { lkey; rkey; _ } ->
    Printf.sprintf "Hash Join on %s = %s"
      (String.concat "," (Array.to_list (Array.map string_of_int lkey)))
      (String.concat "," (Array.to_list (Array.map string_of_int rkey)))
  | Distinct (_, _) -> "Distinct"
  | Order_by (key, _) ->
    Printf.sprintf "Sort by [%s]"
      (String.concat ";" (Array.to_list (Array.map string_of_int key)))

let rec analyze ?pool p =
  ignore (columns p);
  let t0 = Stats.now () in
  let table, children =
    match p with
    | Scan tbl -> (tbl, [])
    | Select (pred, child) ->
      let input, a = analyze ?pool child in
      (Table.filter input (compile_pred pred input), [ a ])
    | Project (cols, child) ->
      let input, a = analyze ?pool child in
      (project_table input cols "project", [ a ])
    | Equi_join { left; right; lkey; rkey } ->
      let l, al = analyze ?pool left in
      let r, ar = analyze ?pool right in
      (exec_join ?pool p l r lkey rkey, [ al; ar ])
    | Distinct (key, child) ->
      let input, a = analyze ?pool child in
      let key = Option.value key ~default:(all_cols input) in
      (Ops.distinct ?pool input key, [ a ])
    | Order_by (key, child) ->
      let input, a = analyze ?pool child in
      (Sort.sort input key, [ a ])
  in
  ( table,
    {
      op = node_label p;
      schema = columns p;
      est_rows = estimate_rows p;
      rows = Table.nrows table;
      seconds = Stats.now () -. t0;
      children;
    } )

let rec pp_analysis_node ppf ~indent a =
  let pad = String.make indent ' ' in
  Format.fprintf ppf "%s%s  (est=%d rows=%d time=%.3fms)@," pad a.op a.est_rows
    a.rows (a.seconds *. 1e3);
  Format.fprintf ppf "%s  -> [%s]@," pad
    (String.concat ", " (Array.to_list a.schema));
  List.iter (pp_analysis_node ppf ~indent:(indent + 2)) a.children

let pp_analysis ppf a =
  Format.fprintf ppf "@[<v>";
  pp_analysis_node ppf ~indent:0 a;
  Format.fprintf ppf "@]"

let rec analysis_to_json a =
  Obs.Json.Obj
    [
      ("op", Obs.Json.String a.op);
      ( "schema",
        Obs.Json.List
          (Array.to_list (Array.map (fun c -> Obs.Json.String c) a.schema)) );
      ("est_rows", Obs.Json.Int a.est_rows);
      ("rows", Obs.Json.Int a.rows);
      ("seconds", Obs.Json.Float a.seconds);
      ("children", Obs.Json.List (List.map analysis_to_json a.children));
    ]

let explain_analyze ?pool ppf p =
  let table, a = analyze ?pool p in
  pp_analysis ppf a;
  table
