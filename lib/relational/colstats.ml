type t = {
  rows : int;
  ndv : int array;
  mins : int array;
  maxs : int array;
}

let analyze tbl =
  let width = Table.width tbl in
  let n = Table.nrows tbl in
  let ndv = Array.make width 0 in
  let mins = Array.make width max_int in
  let maxs = Array.make width min_int in
  let seen = Array.init width (fun _ -> Hashtbl.create 64) in
  for r = 0 to n - 1 do
    for c = 0 to width - 1 do
      let v = Table.get tbl r c in
      if not (Hashtbl.mem seen.(c) v) then begin
        Hashtbl.replace seen.(c) v ();
        ndv.(c) <- ndv.(c) + 1
      end;
      if v < mins.(c) then mins.(c) <- v;
      if v > maxs.(c) then maxs.(c) <- v
    done
  done;
  { rows = n; ndv; mins; maxs }

(* A small cache keyed by physical table identity and the row count at
   analysis time, so repeated plan estimates (every EXPLAIN, every
   build-side choice) do not rescan unchanged base tables.  Bounded ring
   with mutex protection: plans may be estimated from worker domains. *)
let cache_slots = 16
let cache : (Table.t * int * t) option array = Array.make cache_slots None
let cache_next = ref 0
let cache_mutex = Mutex.create ()

let stats_for tbl =
  let n = Table.nrows tbl in
  Mutex.lock cache_mutex;
  let hit =
    Array.fold_left
      (fun acc slot ->
        match (acc, slot) with
        | Some _, _ -> acc
        | None, Some (t, rows, st) when t == tbl && rows = n -> Some st
        | None, _ -> None)
      None cache
  in
  Mutex.unlock cache_mutex;
  match hit with
  | Some st -> st
  | None ->
    let st = analyze tbl in
    Mutex.lock cache_mutex;
    cache.(!cache_next) <- Some (tbl, n, st);
    cache_next := (!cache_next + 1) mod cache_slots;
    Mutex.unlock cache_mutex;
    st

(* Rebuild statistics from persisted parts (the segment store serializes
   them with its headers so reopening a spilled table never rescans). *)
let of_parts ~rows ~ndv ~mins ~maxs =
  let w = Array.length ndv in
  if Array.length mins <> w || Array.length maxs <> w then
    invalid_arg "Colstats.of_parts: array length mismatch";
  { rows; ndv = Array.copy ndv; mins = Array.copy mins; maxs = Array.copy maxs }

let rows st = st.rows
let ndv st c = st.ndv.(c)
let min_value st c = if st.rows = 0 then None else Some st.mins.(c)
let max_value st c = if st.rows = 0 then None else Some st.maxs.(c)

let ndv_key st key =
  if st.rows = 0 then 0
  else
    let product =
      Array.fold_left
        (fun acc c ->
          if acc > st.rows then acc else acc * max 1 st.ndv.(c))
        1 key
    in
    min st.rows product
