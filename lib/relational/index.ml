type t = {
  table : Table.t;
  key : int array;
  mutable buckets : int array; (* row + 1; 0 means empty *)
  mutable next : int array; (* chain: next.(r) = following row + 1 *)
  mutable mask : int;
  mutable count : int;
}

(* FNV-style multiplicative mixing over the key columns, finished with a
   Murmur-like avalanche so low bits are usable as bucket indexes. *)
let finalize h =
  let h = h lxor (h lsr 33) in
  let h = h * 0x7f51afd7ed558ccd in
  let h = h lxor (h lsr 33) in
  h land max_int

let hash_key kv =
  let h = ref 0x811c9dc5 in
  for i = 0 to Array.length kv - 1 do
    h := (!h lxor kv.(i)) * 0x01000193
  done;
  finalize !h

let hash_row tbl key r =
  let h = ref 0x811c9dc5 in
  for i = 0 to Array.length key - 1 do
    h := (!h lxor Table.get tbl r key.(i)) * 0x01000193
  done;
  finalize !h

let next_pow2 n =
  let rec go c = if c >= n then c else go (2 * c) in
  go 16

let ensure_next idx r =
  if r >= Array.length idx.next then begin
    let cap = ref (max 16 (Array.length idx.next)) in
    while !cap <= r do
      cap := 2 * !cap
    done;
    let next = Array.make !cap 0 in
    Array.blit idx.next 0 next 0 (Array.length idx.next);
    idx.next <- next
  end

let insert idx r =
  let b = hash_row idx.table idx.key r land idx.mask in
  ensure_next idx r;
  idx.next.(r) <- idx.buckets.(b);
  idx.buckets.(b) <- r + 1;
  idx.count <- idx.count + 1

let rehash idx =
  let nbuckets = next_pow2 (2 * max 16 idx.count) in
  idx.buckets <- Array.make nbuckets 0;
  idx.mask <- nbuckets - 1;
  let count = idx.count in
  idx.count <- 0;
  (* Re-insert the first [count] rows that were indexed.  Rows are always
     indexed in order 0..count-1 (build) then appended, so the indexed rows
     are exactly 0..count-1. *)
  for r = 0 to count - 1 do
    insert idx r
  done

let build tbl key =
  let n = Table.nrows tbl in
  let nbuckets = next_pow2 (2 * max 8 n) in
  let idx =
    {
      table = tbl;
      key;
      buckets = Array.make nbuckets 0;
      next = Array.make (max 16 n) 0;
      mask = nbuckets - 1;
      count = 0;
    }
  in
  for r = 0 to n - 1 do
    insert idx r
  done;
  idx

let table idx = idx.table
let key idx = idx.key

let add idx r =
  if idx.count >= (idx.mask + 1) * 3 / 4 then rehash idx;
  insert idx r

let key_matches idx kv r =
  let rec eq i =
    i >= Array.length idx.key
    || Table.get idx.table r idx.key.(i) = kv.(i) && eq (i + 1)
  in
  eq 0

let iter_matches idx kv f =
  let b = hash_key kv land idx.mask in
  let rec walk cursor =
    if cursor <> 0 then begin
      let r = cursor - 1 in
      if key_matches idx kv r then f r;
      walk idx.next.(r)
    end
  in
  walk idx.buckets.(b)

exception Found of int

let first_match idx kv =
  match iter_matches idx kv (fun r -> raise_notrace (Found r)) with
  | () -> None
  | exception Found r -> Some r

let mem idx kv = Option.is_some (first_match idx kv)

let row_matches idx other okey r ir =
  let rec eq i =
    i >= Array.length idx.key
    || Table.get idx.table ir idx.key.(i) = Table.get other r okey.(i)
       && eq (i + 1)
  in
  eq 0

let mem_row idx other okey r =
  let b = hash_row other okey r land idx.mask in
  let rec walk cursor =
    cursor <> 0
    &&
    let ir = cursor - 1 in
    row_matches idx other okey r ir || walk idx.next.(ir)
  in
  walk idx.buckets.(b)

let count_matches idx kv =
  let n = ref 0 in
  iter_matches idx kv (fun _ -> incr n);
  !n

let size idx = idx.count

let chain_stats idx =
  let occupied = ref 0 and max_chain = ref 0 in
  Array.iter
    (fun cursor ->
      if cursor <> 0 then begin
        incr occupied;
        let len = ref 0 in
        let c = ref cursor in
        while !c <> 0 do
          incr len;
          c := idx.next.(!c - 1)
        done;
        if !len > !max_chain then max_chain := !len
      end)
    idx.buckets;
  (max 0 (idx.count - !occupied), !max_chain)
