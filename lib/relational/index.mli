(** Hash indexes over table key columns.

    An index maps a tuple of key-column values to the set of rows carrying
    those values.  It is the build side of {!Join.hash_join}, the dedup
    structure behind fact merging during grounding, and the lookup path for
    head atoms when constructing ground factors.

    Indexes support incremental maintenance: rows appended to the table
    after the index was built can be registered with {!add}. *)

type t

(** [build tbl key] indexes the current rows of [tbl] on the columns [key]
    (given as column positions). *)
val build : Table.t -> int array -> t

(** [table idx] is the indexed table. *)
val table : t -> Table.t

(** [key idx] is the key column positions. *)
val key : t -> int array

(** [add idx r] registers row [r] of the indexed table (the row must
    already exist in the table). *)
val add : t -> int -> unit

(** [iter_matches idx kv f] applies [f r] to every indexed row [r] whose
    key columns equal [kv] (length must equal the key arity). *)
val iter_matches : t -> int array -> (int -> unit) -> unit

(** [first_match idx kv] is the first indexed row matching [kv], if any. *)
val first_match : t -> int array -> int option

(** [mem idx kv] is [true] iff some indexed row matches [kv]. *)
val mem : t -> int array -> bool

(** [mem_row idx other r] is [true] iff some indexed row's key equals the
    key columns of row [r] in table [other] read at positions
    [okey].  Used for anti-joins without materializing key buffers. *)
val mem_row : t -> Table.t -> int array -> int -> bool

(** [count_matches idx kv] is the number of indexed rows matching [kv]. *)
val count_matches : t -> int array -> int

(** [size idx] is the number of indexed rows. *)
val size : t -> int

(** [chain_stats idx] is [(collisions, max_chain)]: how many indexed rows
    share a bucket with an earlier row, and the longest bucket chain.
    O(buckets + rows) — meant for telemetry, not hot paths. *)
val chain_stats : t -> int * int

(** [hash_key kv] is the hash used internally for a key tuple; exposed so
    the MPP layer hash-distributes rows consistently with join probes. *)
val hash_key : int array -> int

(** [hash_row tbl key r] hashes the key columns of row [r] of [tbl],
    consistently with {!hash_key}. *)
val hash_row : Table.t -> int array -> int -> int
