(** Hash joins.

    The grounding queries of the paper (Queries 1-i, 2-i, 3) are equi-joins
    between the rule partition tables [Mi] and the fact table [TΠ].  This
    module provides the single physical operator they compile to: a
    build/probe hash join with projection, optional residual predicate and
    weight propagation.

    The output specification names, for each output column, which side and
    column it is read from; this is the SELECT clause of the SQL queries in
    Figure 3 of the paper. *)

(** Which input a projected column or weight comes from (re-exported
    from {!Pipeline}, whose probe kernel executes the join). *)
type side = Pipeline.side =
  | Build  (** the (usually smaller) side the hash table is built on *)
  | Probe  (** the side streamed through the hash table *)

(** One output column of the join. *)
type out_col = Pipeline.out_col =
  | Col of side * int  (** column [i] of the given side *)
  | Const of int  (** a constant *)

(** Where the output weight column comes from. *)
type out_weight = Pipeline.out_weight =
  | No_weight  (** output is not weighted *)
  | Weight_of of side  (** copy the weight of the given side's row *)

(** [hash_join ~name ~out ~oweight ?residual (b, bkey) (p, pkey)] joins
    tables [b] and [p] on the equality of their key columns ([bkey] against
    [pkey], positionally).  For every matching pair of rows the optional
    [residual b_row p_row] predicate is evaluated; surviving pairs are
    projected through [out] into a fresh table named [name] whose columns
    are named [cols].  With [dedup = true] (default [false]) the join
    performs an inline DISTINCT over the integer output columns — the
    first matching row wins — so duplicate-heavy queries never
    materialize their raw output.

    When [pool] (default {!Pool.get_default}) has more than one domain and
    the probe side is large enough, the probe rows are partitioned into
    one contiguous chunk per worker; each worker probes the shared
    read-only build index into a private table and the chunks are
    concatenated (re-deduplicating when [dedup] is set) in worker order.
    The output — row order, weights, dedup winners — is bit-identical to
    the sequential join for every pool size.

    @raise Invalid_argument if the key arities differ. *)
val hash_join :
  name:string ->
  cols:string array ->
  out:out_col array ->
  oweight:out_weight ->
  ?dedup:bool ->
  ?residual:(int -> int -> bool) ->
  ?pool:Pool.t ->
  Table.t * int array ->
  Table.t * int array ->
  Table.t

(** [hash_join_pre ~build_index ...] is {!hash_join} but reuses an already
    built index on the build side (its table and key are taken from the
    index).  This models reusing a persistent index across the queries of
    one grounding iteration. *)
val hash_join_pre :
  name:string ->
  cols:string array ->
  out:out_col array ->
  oweight:out_weight ->
  ?dedup:bool ->
  ?residual:(int -> int -> bool) ->
  ?pool:Pool.t ->
  Index.t ->
  Table.t * int array ->
  Table.t

(** [hash_join_pre_into ~sink ...] is {!hash_join_pre} but streams the
    join output into a caller-owned {!Sink.t} instead of a fresh table:
    several joins can union into one shared dedup sink with no
    intermediate table (the grounding delta path does exactly this).
    The sink's schema must match the output spec.  Emits the [join.*]
    counters; the caller records the sink's dedup counters once the sink
    is complete ({!Sink.record_distinct_obs}). *)
val hash_join_pre_into :
  out:out_col array ->
  oweight:out_weight ->
  ?residual:(int -> int -> bool) ->
  ?pool:Pool.t ->
  sink:Sink.t ->
  Index.t ->
  Table.t * int array ->
  unit

(** [hash_join_pre_src ...] is {!hash_join_pre} with a segmented
    (spilled) probe side: each resident segment of the source streams as
    one morsel and the spilled table is never materialized.  Same output
    spec, telemetry and bit-identical-output contract; row ids seen by
    [residual] equal the row indices of the unspilled probe table. *)
val hash_join_pre_src :
  name:string ->
  cols:string array ->
  out:out_col array ->
  oweight:out_weight ->
  ?dedup:bool ->
  ?residual:(int -> int -> bool) ->
  ?pool:Pool.t ->
  Index.t ->
  Segsrc.t * int array ->
  Table.t

(** [probe_src_into ~sink ...] is {!hash_join_pre_into} with a segmented
    probe side (no [join.*] telemetry — the caller owns the sink and the
    counters, exactly as with {!hash_join_pre_into}). *)
val probe_src_into :
  out:out_col array ->
  oweight:out_weight ->
  ?residual:(int -> int -> bool) ->
  ?pool:Pool.t ->
  sink:Sink.t ->
  Index.t ->
  Segsrc.t * int array ->
  unit

(** [nested_loop ...] is a reference implementation of the same operator
    with O(n·m) complexity.  It exists for differential testing only; it
    honours the same [dedup] inline-DISTINCT flag as {!hash_join} so plan
    fallbacks cannot silently produce duplicate rows. *)
val nested_loop :
  name:string ->
  cols:string array ->
  out:out_col array ->
  oweight:out_weight ->
  ?dedup:bool ->
  ?residual:(int -> int -> bool) ->
  Table.t * int array ->
  Table.t * int array ->
  Table.t

(** [semi_join_absent tbl key idx] is the anti-semi-join: the rows of [tbl]
    whose [key] columns match no row of the index.  Used to keep only facts
    not already present in [TΠ] when merging grounding results. *)
val semi_join_absent : Table.t -> int array -> Index.t -> Table.t
