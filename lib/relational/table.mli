(** In-memory relational tables.

    A table holds fixed-width rows of dictionary-encoded integers plus an
    optional [weight] column of floats.  The weight column models the
    nullable [w] attribute of the paper's fact table [TΠ] and rule tables
    [Mi]; a null weight is represented as [nan] (see {!null_weight}).

    Storage is row-major in a single flat [int array], which keeps appends,
    scans and hash probes allocation-free. *)

type t

(** Weight value representing SQL [NULL] ([nan]). *)
val null_weight : float

(** [is_null_weight w] is [true] iff [w] is the null weight. *)
val is_null_weight : float -> bool

(** [create ~name cols] is an empty table whose columns are named [cols].
    If [weighted] is [true] (default [false]) the table carries a float
    weight column in addition to the integer columns. *)
val create : ?weighted:bool -> name:string -> string array -> t

(** [name t] is the table's name (used in plan printouts). *)
val name : t -> string

(** [cols t] is the array of column names. *)
val cols : t -> string array

(** [width t] is the number of integer columns. *)
val width : t -> int

(** [weighted t] is [true] iff the table has a weight column. *)
val weighted : t -> bool

(** [nrows t] is the current number of rows. *)
val nrows : t -> int

(** [col_index t c] is the position of column [c].
    @raise Not_found if there is no such column. *)
val col_index : t -> string -> int

(** [reserve t n] grows the backing storage so that [n] further rows can
    be appended without reallocation.  A no-op when capacity already
    suffices (or [n <= 0]); never shrinks. *)
val reserve : t -> int -> unit

(** [append t row] appends [row] (weight set to null when weighted).
    @raise Invalid_argument if [Array.length row <> width t]. *)
val append : t -> int array -> unit

(** [append_w t row w] appends [row] with weight [w].
    @raise Invalid_argument on width mismatch or if [t] is not weighted. *)
val append_w : t -> int array -> float -> unit

(** [append_from dst src r] appends row [r] of [src] (and its weight when
    both tables are weighted) to [dst].  Tables must have equal width. *)
val append_from : t -> t -> int -> unit

(** [get t r c] is the value in row [r], column [c]. *)
val get : t -> int -> int -> int

(** [set t r c v] overwrites the value in row [r], column [c]. *)
val set : t -> int -> int -> int -> unit

(** [weight t r] is the weight of row [r] ([null_weight] if unset).
    @raise Invalid_argument if [t] is not weighted. *)
val weight : t -> int -> float

(** [set_weight t r w] sets the weight of row [r]. *)
val set_weight : t -> int -> float -> unit

(** [read_row t r buf] copies row [r] into [buf] (length ≥ width). *)
val read_row : t -> int -> int array -> unit

(** [blit_row t r buf off] copies row [r] into [buf] starting at offset
    [off] (allocation-free row export for batch builders). *)
val blit_row : t -> int -> int array -> int -> unit

(** [append_slice t src off] appends the [width t] cells found in [src]
    at offset [off] as a new row (weight set to null when weighted). *)
val append_slice : t -> int array -> int -> unit

(** [append_slice_w t src off w] is {!append_slice} with weight [w].
    @raise Invalid_argument if [t] is not weighted. *)
val append_slice_w : t -> int array -> int -> float -> unit

(** [row t r] is a fresh array holding row [r]. *)
val row : t -> int -> int array

(** [iter f t] applies [f r] to every row index [r] in order. *)
val iter : (int -> unit) -> t -> unit

(** [clear t] removes all rows, keeping capacity. *)
val clear : t -> unit

(** [copy t] is a deep copy of [t]. *)
val copy : t -> t

(** [filter t p] is a new table with the rows satisfying [p]. *)
val filter : t -> (int -> bool) -> t

(** [sub t rows] is a new table containing exactly the given row indices. *)
val sub : t -> int array -> t

(** [append_all dst src] appends every row of [src] to [dst]. *)
val append_all : t -> t -> unit

(** [byte_size t] is the approximate in-memory (and on-wire, for MPP motion
    cost accounting) size of the table in bytes. *)
val byte_size : t -> int

(** [row_bytes t] is the approximate per-row byte size. *)
val row_bytes : t -> int

(** [equal_rows a ra b rb] is [true] iff row [ra] of [a] and row [rb] of [b]
    have identical integer cells (weights are ignored). *)
val equal_rows : t -> int -> t -> int -> bool

(** [pp ?max_rows ppf t] prints a human-readable rendering of [t]. *)
val pp : ?max_rows:int -> Format.formatter -> t -> unit
