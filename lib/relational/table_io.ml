exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* The on-disk format version, carried in the header keyword
   ([#table:2 ...]).  Version 1 files began with a bare [#table] — a
   version-1 name would otherwise decode as this format's first column,
   so the reader rejects any version it does not write. *)
let format_version = 2

let write tbl oc =
  Printf.fprintf oc "#table:%d %s %s%s\n" format_version (Table.name tbl)
    (if Table.weighted tbl then "weighted " else "")
    (String.concat " " (Array.to_list (Table.cols tbl)));
  let width = Table.width tbl in
  Table.iter
    (fun r ->
      for c = 0 to width - 1 do
        if c > 0 then output_char oc '\t';
        output_string oc (string_of_int (Table.get tbl r c))
      done;
      if Table.weighted tbl then begin
        output_char oc '\t';
        let w = Table.weight tbl r in
        output_string oc
          (if Table.is_null_weight w then "-" else Printf.sprintf "%.17g" w)
      end;
      output_char oc '\n')
    tbl

let read ic =
  let header = try input_line ic with End_of_file -> fail "empty input" in
  let check_version = function
    | "#table" ->
      fail "unversioned table file (format 1); this reader requires format %d"
        format_version
    | kw -> (
      match String.split_on_char ':' kw with
      | [ "#table"; v ] -> (
        match int_of_string_opt v with
        | Some v when v = format_version -> ()
        | Some v ->
          fail "unsupported table format version %d (this reader is %d)" v
            format_version
        | None -> fail "bad format version %S in header" v)
      | _ -> fail "bad header %S" header)
  in
  let tbl =
    match String.split_on_char ' ' header with
    | kw :: name :: "weighted" :: cols when cols <> [] ->
      check_version kw;
      Table.create ~weighted:true ~name (Array.of_list cols)
    | kw :: name :: cols when cols <> [] ->
      check_version kw;
      Table.create ~name (Array.of_list cols)
    | _ -> fail "bad header %S" header
  in
  let width = Table.width tbl in
  let buf = Array.make width 0 in
  let lineno = ref 1 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.length line > 0 then begin
         let fields = String.split_on_char '\t' line in
         let expected = width + if Table.weighted tbl then 1 else 0 in
         if List.length fields <> expected then
           fail "line %d: expected %d fields, got %d" !lineno expected
             (List.length fields);
         List.iteri
           (fun i f ->
             if i < width then
               match int_of_string_opt f with
               | Some v -> buf.(i) <- v
               | None -> fail "line %d: bad integer %S" !lineno f)
           fields;
         if Table.weighted tbl then begin
           let w = List.nth fields width in
           let w =
             if String.equal w "-" then Table.null_weight
             else
               match float_of_string_opt w with
               | Some f -> f
               | None -> fail "line %d: bad weight %S" !lineno w
           in
           Table.append_w tbl buf w
         end
         else Table.append tbl buf
       end
     done
   with End_of_file -> ());
  tbl

let to_file tbl path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> write tbl oc)

let of_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> read ic)
