let parallel_distinct_threshold = 4096

(* DISTINCT is a pipeline with no kernels: the source streams straight
   into a dedup sink (per-morsel private sinks absorbed in morsel order
   when parallel — the first occurrence in row order wins, exactly as in
   a sequential pass).  Inline join dedup terminates in the same sink
   abstraction, so both paths report identical Obs counters. *)
let distinct_sink ?pool t key =
  let sink =
    Sink.create ~dedup_key:key ~weighted:(Table.weighted t)
      ~name:(Table.name t) (Table.cols t)
  in
  ignore
    (Pipeline.run ?pool ~threshold:parallel_distinct_threshold ~source:t
       ~make_sink:(fun () -> Sink.clone_empty sink)
       ~chain:Pipeline.into_sink ~sink ());
  sink

let distinct_raw ?pool t key = Sink.table (distinct_sink ?pool t key)

let distinct ?pool t key =
  let obs = Obs.ambient () in
  if not (Obs.enabled obs) then distinct_raw ?pool t key
  else begin
    let t0 = Unix.gettimeofday () in
    let sink = distinct_sink ?pool t key in
    Sink.record_distinct_obs obs sink;
    Obs.add_time obs "distinct.seconds" (Unix.gettimeofday () -. t0);
    Sink.table sink
  end

let group_count t key =
  let kcols = Array.map (fun c -> (Table.cols t).(c)) key in
  let groups =
    Table.create ~name:(Table.name t ^ "_groups")
      (Array.append kcols [| "count" |])
  in
  (* The group table's key columns are positions 0..k-1. *)
  let gkey = Array.init (Array.length key) (fun i -> i) in
  let idx = Index.build groups gkey in
  let kv = Array.make (Array.length key) 0 in
  let buf = Array.make (Array.length key + 1) 0 in
  for r = 0 to Table.nrows t - 1 do
    for i = 0 to Array.length key - 1 do
      kv.(i) <- Table.get t r key.(i)
    done;
    match Index.first_match idx kv with
    | Some g -> Table.set groups g (Array.length key) (Table.get groups g (Array.length key) + 1)
    | None ->
      Array.blit kv 0 buf 0 (Array.length kv);
      buf.(Array.length key) <- 1;
      Table.append groups buf;
      Index.add idx (Table.nrows groups - 1)
  done;
  groups

type agg = Count | Sum of int | Min of int | Max of int

let agg_name = function
  | Count -> "count"
  | Sum c -> Printf.sprintf "sum_%d" c
  | Min c -> Printf.sprintf "min_%d" c
  | Max c -> Printf.sprintf "max_%d" c

let group t key aggs =
  let aggs = Array.of_list aggs in
  let kcols = Array.map (fun c -> (Table.cols t).(c)) key in
  let out =
    Table.create ~name:(Table.name t ^ "_groups")
      (Array.append kcols (Array.map agg_name aggs))
  in
  let gkey = Array.init (Array.length key) Fun.id in
  let idx = Index.build out gkey in
  let kv = Array.make (Array.length key) 0 in
  let width = Array.length key + Array.length aggs in
  let buf = Array.make width 0 in
  let update g r =
    Array.iteri
      (fun i agg ->
        let col = Array.length key + i in
        let cur = Table.get out g col in
        let next =
          match agg with
          | Count -> cur + 1
          | Sum c -> cur + Table.get t r c
          | Min c -> min cur (Table.get t r c)
          | Max c -> max cur (Table.get t r c)
        in
        Table.set out g col next)
      aggs
  in
  for r = 0 to Table.nrows t - 1 do
    for i = 0 to Array.length key - 1 do
      kv.(i) <- Table.get t r key.(i)
    done;
    match Index.first_match idx kv with
    | Some g -> update g r
    | None ->
      Array.blit kv 0 buf 0 (Array.length kv);
      Array.iteri
        (fun i agg ->
          buf.(Array.length key + i) <-
            (match agg with
            | Count -> 1
            | Sum c | Min c | Max c -> Table.get t r c))
        aggs;
      Table.append out buf;
      Index.add idx (Table.nrows out - 1)
  done;
  out

let union_all = function
  | [] -> invalid_arg "Ops.union_all: empty list"
  | first :: rest ->
    let out = Table.copy first in
    List.iter (fun t -> Table.append_all out t) rest;
    out

let set_minus = Join.semi_join_absent

let count_where t p =
  let n = ref 0 in
  for r = 0 to Table.nrows t - 1 do
    if p r then incr n
  done;
  !n
