(** Materializing sinks: where pipelines end.

    A sink owns the output table of a pipeline and, optionally, the
    dedup index that makes it a streaming DISTINCT: rows pushed into a
    dedup sink are appended only on their first occurrence.  Inline join
    deduplication ({!Join.hash_join} [~dedup:true]) and the standalone
    {!Ops.distinct} operator both terminate in this one abstraction, so
    their [Obs] dedup counters are computed identically
    ({!record_distinct_obs}).

    Parallel (morsel-driven) pipelines give each worker a private sink
    and {!absorb} them into the global one in morsel order; absorbing
    re-checks the dedup set so the global first occurrence — the one the
    sequential engine would keep — wins. *)

type t

(** [create ~name cols] is a sink over an empty table.  [dedup_key]
    (positions in [cols]) makes it a dedup sink; [reserve] pre-sizes the
    table from a cardinality estimate (capped internally, so estimates
    may be wild); [weighted] as in {!Table.create}. *)
val create :
  ?dedup_key:int array ->
  ?reserve:int ->
  ?weighted:bool ->
  name:string ->
  string array ->
  t

(** [clone_empty s] is a fresh empty sink with the same schema, weight
    and dedup configuration — the per-morsel private sink of the
    parallel driver. *)
val clone_empty : t -> t

(** [table s] is the sink's output table. *)
val table : t -> Table.t

(** [rows_out s] is the number of rows kept so far. *)
val rows_out : t -> int

(** [pushed s] is the number of rows offered so far ([>= rows_out];
    the difference is the dedup hits). *)
val pushed : t -> int

(** [add_pushed s n] transfers [n] logical pushes into [s]'s count —
    used by the morsel driver when the physical pushes happened in
    per-worker sinks. *)
val add_pushed : t -> int -> unit

(** [is_dedup s] is [true] iff the sink deduplicates. *)
val is_dedup : t -> bool

(** [push_batch s b] offers every row of [b] to the sink. *)
val push_batch : t -> Batch.t -> unit

(** [absorb s src] appends the rows of [src] (same schema), re-checked
    against the dedup set; does not count as pushes. *)
val absorb : t -> Table.t -> unit

(** [record_distinct_obs obs s] emits the uniform dedup counters
    ([distinct.rows_in], [distinct.rows_out], [distinct.duplicates]) for
    a dedup sink; a no-op for plain sinks or a disabled trace. *)
val record_distinct_obs : Obs.t -> t -> unit
