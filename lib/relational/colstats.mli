(** Per-column table statistics.

    The number of distinct values (NDV), minimum and maximum per column —
    the inputs to {!Plan}'s cardinality estimates, playing the role of
    PostgreSQL's [pg_statistic] for this engine.  NDV is computed exactly
    (the engine is in-memory; a scan is cheap relative to the joins the
    estimates guard). *)

type t

(** [analyze tbl] scans the table once and collects statistics. *)
val analyze : Table.t -> t

(** [stats_for tbl] is {!analyze} behind a small process-wide cache
    keyed by physical table identity and current row count, so repeated
    plan estimates against unchanged base tables do not rescan them.
    Thread-safe. *)
val stats_for : Table.t -> t

(** [of_parts ~rows ~ndv ~mins ~maxs] rebuilds statistics from persisted
    per-column figures (the segment store serializes them alongside its
    zone maps, so reopening a spilled table costs no rescan).  Arrays are
    copied; one entry per column.
    @raise Invalid_argument on length mismatches. *)
val of_parts :
  rows:int -> ndv:int array -> mins:int array -> maxs:int array -> t

(** [rows st] is the row count at analysis time. *)
val rows : t -> int

(** [ndv st c] is the number of distinct values in column [c]. *)
val ndv : t -> int -> int

(** [min_value st c] / [max_value st c] are the column extrema
    ([None] on an empty table). *)
val min_value : t -> int -> int option

val max_value : t -> int -> int option

(** [ndv_key st key] is the number of distinct composite values over the
    given columns (computed during {!analyze} only for single columns;
    composite keys are bounded by the product, capped at [rows]). *)
val ndv_key : t -> int array -> int
