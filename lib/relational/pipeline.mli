(** Push-based, batch-at-a-time operator pipelines.

    This is the execution engine under {!Join}, {!Ops} and {!Plan}: a
    source table is scanned in {!Batch.t} chunks, a chain of kernels
    transforms each batch in flight (filters compact in place, probes
    stream against prebuilt hash indexes), and a {!Sink.t} materializes
    the survivors.  The only pipeline breakers are hash-table build
    sides, DISTINCT (a dedup sink) and sorts — Scan→Select→Project→probe
    chains never materialize an intermediate table.

    Parallelism is morsel-driven: the driver splits the source scan into
    contiguous morsels, dynamically scheduled over the domain pool; each
    worker runs the whole kernel chain over its morsel into a private
    sink, and the private sinks are absorbed into the global sink in
    morsel order.  Output is therefore bit-identical to the sequential
    engine for any pool size — including first-occurrence semantics of
    dedup sinks, which re-check their dedup set while absorbing. *)

(** Which input of a join an output column or weight is drawn from.
    These types are re-exported by {!Join} under the same constructors;
    the probe side of a pipeline join streams as batches while the build
    side is a materialized, indexed table. *)
type side = Build | Probe

type out_col = Col of side * int | Const of int
type out_weight = No_weight | Weight_of of side

(** An operator kernel: [push] consumes one batch (the producer may
    reuse the batch after [push] returns), [flush] drains buffered
    output at end of stream and propagates downstream. *)
type kernel = { push : Batch.t -> unit; flush : unit -> unit }

(** [into_sink s] is the terminal kernel appending into [s]. *)
val into_sink : Sink.t -> kernel

(** [select pred ~next] keeps the rows satisfying [pred b r], compacting
    the batch in place. *)
val select : (Batch.t -> int -> bool) -> next:kernel -> kernel

(** [project ~cols ~weighted ~next ()] maps each row to the given child
    columns (weights carried over when [weighted]). *)
val project : cols:int array -> weighted:bool -> next:kernel -> unit -> kernel

(** [probe idx ~pkey ~out ~oweight ?residual ~next ()] hash-probes each
    batch row (key columns [pkey]) against [idx], emitting one output
    row per match as specified by [out]/[oweight] — in probe-row order,
    with matches in the index's chain order, exactly like the
    materializing join.  [residual] sees (build row, probe source row
    id) and filters matches before emission. *)
val probe :
  Index.t ->
  pkey:int array ->
  out:out_col array ->
  oweight:out_weight ->
  ?residual:(int -> int -> bool) ->
  next:kernel ->
  unit ->
  kernel

(** Source-row count below which {!run} stays sequential (the per-morsel
    sinks and the ordered absorb cost more than they save). *)
val default_parallel_threshold : int

(** [run ~source ~make_sink ~chain ~sink ()] drives a full pipeline:
    scans [source] through [chain sink] sequentially, or — when the pool
    has workers and the source clears [threshold] — through
    [chain (make_sink ())] per morsel with ordered absorption into
    [sink].  [chain] must build a fresh kernel chain ending at the given
    sink each time it is called.  Returns the number of source batches
    scanned; records [pipeline.*] counters and the morsel-skew gauge on
    the ambient trace when enabled. *)
val run :
  ?pool:Pool.t ->
  ?batch_capacity:int ->
  ?threshold:int ->
  source:Table.t ->
  make_sink:(unit -> Sink.t) ->
  chain:(Sink.t -> kernel) ->
  sink:Sink.t ->
  unit ->
  int

(** [run_segments ~source ~keep ~make_sink ~chain ~sink ()] is {!run}
    over a segmented (spilled) source: each segment [keep] accepts is
    one morsel; rejected segments are never read (partition pruning —
    [keep] may only reject segments none of whose rows could survive the
    chain, so pruning changes counters, never results).  Sequentially
    the kept segments stream in order through one chain with a single
    final flush; in parallel each segment runs a private chain/sink,
    absorbed in segment order — output is bit-identical to scanning the
    unspilled table at any pool size.  Records the [pipeline.*] counters
    plus [storage.segments_scanned] / [storage.segments_skipped]. *)
val run_segments :
  ?pool:Pool.t ->
  ?batch_capacity:int ->
  source:Segsrc.t ->
  keep:(Segsrc.seg -> bool) ->
  make_sink:(unit -> Sink.t) ->
  chain:(Sink.t -> kernel) ->
  sink:Sink.t ->
  unit ->
  int
