(** Set-oriented auxiliary operators: distinct, grouped counting, union.

    These back the DISTINCT / GROUP BY ... HAVING clauses of the paper's
    Query 3 (constraint application) and the bag/set unions of Algorithm 1
    (lines 5 and 9-10). *)

(** [distinct t key] is a new table keeping the first row of [t] for each
    distinct valuation of the [key] columns (all columns are copied).
    Large inputs are deduplicated in parallel over [pool] (default
    {!Pool.get_default}) — per-worker local dedup over contiguous chunks
    followed by an ordered global merge — with output identical to the
    sequential pass for every pool size. *)
val distinct : ?pool:Pool.t -> Table.t -> int array -> Table.t

(** [group_count t key] groups the rows of [t] by the [key] columns and
    returns a table with columns [key-cols @ ["count"]]: one row per group
    with the group's cardinality in the last column. *)
val group_count : Table.t -> int array -> Table.t

(** Aggregate functions over one integer column. *)
type agg =
  | Count  (** group cardinality (the column argument is ignored) *)
  | Sum of int
  | Min of int
  | Max of int

(** [group t key aggs] groups the rows of [t] by the [key] columns and
    returns a table with columns [key-cols @ agg-cols]: one row per group
    carrying each aggregate in order.  [Min]/[Max] of an empty group
    cannot occur (groups are non-empty by construction). *)
val group : Table.t -> int array -> agg list -> Table.t

(** [union_all ts] is the bag union (concatenation) of the tables, which
    must share width; the result takes its schema from the first table.
    @raise Invalid_argument on an empty list. *)
val union_all : Table.t list -> Table.t

(** [set_minus t key idx] is the rows of [t] whose [key] columns match no
    row in the index (an anti-join; alias of {!Join.semi_join_absent}). *)
val set_minus : Table.t -> int array -> Index.t -> Table.t

(** [count_where t p] is the number of rows satisfying [p]. *)
val count_where : Table.t -> (int -> bool) -> int
