(** Logical query plans.

    The grounding engine calls the physical operators directly (its six
    query shapes are fixed), but a knowledge base is also a database, and
    ad-hoc queries deserve a planner: this module provides composable
    logical plans, statistics-based cardinality estimates, automatic
    build-side selection for joins, an EXPLAIN printer — and two
    executors that produce bit-identical output:

    - {!run} (the default) compiles the plan into push-based pipelines:
      Scan→Select→Project→probe chains stream batch-at-a-time into a
      sink and never materialize intermediates; the only pipeline
      breakers are hash-table build sides, [Distinct] (a dedup sink) and
      [Order_by].  Large sources are split into contiguous morsels
      executed by pool workers and merged in morsel order.
    - {!run_materializing} materializes every node bottom-up — the
      pre-pipeline reference engine, kept for differential testing and
      the bench comparison.

    Column addressing is positional: each node exposes an output schema
    ({!columns}); joins concatenate the left and the right schemas. *)

(** Row predicates over a node's output columns. *)
type pred =
  | Eq_const of int * int  (** column = constant *)
  | Eq_cols of int * int  (** column = column *)
  | Lt_const of int * int  (** column < constant *)
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type t =
  | Scan of Table.t
  | Scan_segments of Segsrc.t
      (** segmented (spilled) source; the pipelined engine streams each
          resident segment as one morsel and skips segments whose zone
          maps exclude the [Eq_const]/[Lt_const] conjuncts of the
          Selects directly above the scan — pruning changes only the
          [storage.segments_skipped] counter, never results *)
  | Select of pred * t
  | Project of int array * t  (** keep the given child columns, in order *)
  | Equi_join of { left : t; right : t; lkey : int array; rkey : int array }
      (** output = left columns ++ right columns *)
  | Distinct of int array option * t  (** [None] = over all columns *)
  | Order_by of int array * t

(** [columns p] is the output schema (column names).
    @raise Invalid_argument on out-of-range column references. *)
val columns : t -> string array

(** [estimate_rows p] is the planner's cardinality estimate.  Columns are
    traced through filters, projections and joins back to base tables so
    {!Colstats} can be consulted: [Eq_const] selectivity is 1/NDV of the
    column (0 when the constant falls outside the column's min/max),
    equi-joins use |L|·|R| / max(ndv keys), [Distinct] is capped by the
    NDV product of its key.  Textbook constants are the fallback when a
    column cannot be resolved to a base table. *)
val estimate_rows : t -> int

(** [run ?stats ?pool p] executes the plan on the pipelined engine and
    materializes only the final sink (plus pipeline breakers: hash build
    sides, dedup sinks, sorts).  Hash joins build on the side with the
    smaller {e estimated} cardinality.  Sources above a size threshold
    are morsel-parallel on [pool] (default {!Pool.get_default});
    per-worker sinks are merged in morsel order, so output — rows,
    order, weights — is bit-identical to {!run_materializing} and to
    sequential execution, for every pool size.  When [stats] is given,
    one ["pipeline"] entry is recorded per pipeline plus one per
    breaker. *)
val run : ?stats:Stats.t -> ?pool:Pool.t -> t -> Table.t

(** [run_materializing ?stats ?pool p] materializes the plan bottom-up,
    one table per node — the reference engine.  Same build-side rule,
    same operators, same output as {!run}; when [stats] is given each
    node's execution is recorded under its operator label. *)
val run_materializing : ?stats:Stats.t -> ?pool:Pool.t -> t -> Table.t

(** [explain ppf p] prints the plan tree with schemas, row estimates and
    pipeline annotations: each streaming node is tagged with the
    pipeline that consumes its batches ([pipeline N], with the join
    build side noted), and each breaker with the pipeline it
    terminates. *)
val explain : Format.formatter -> t -> unit

(** One plan node's EXPLAIN ANALYZE record: the estimated cardinality
    side by side with what execution actually produced.  Streaming nodes
    share their pipeline's [batches] count and wall time; breaker nodes
    ([Distinct], [Order_by]) time their own materialization.  [batches]
    is 0 for nodes that did not stream (scans, sorts). *)
type analysis = {
  op : string;
  schema : string array;
  est_rows : int;
  rows : int;
  batches : int;
  seconds : float;
  children : analysis list;
}

(** [analyze ?pool p] executes the plan on the pipelined engine while
    metering, per node, observed cardinality, batch count and pipeline
    wall time alongside the optimizer estimate. *)
val analyze : ?pool:Pool.t -> t -> Table.t * analysis

(** [pp_analysis ppf a] prints the analyzed tree, one node per line as
    [op  (est=… rows=… time=…ms batches=…)]. *)
val pp_analysis : Format.formatter -> analysis -> unit

(** [analysis_to_json a] is the analyzed tree as JSON (for [--metrics
    json] and bench artifacts). *)
val analysis_to_json : analysis -> Obs.Json.t

(** [explain_analyze ?pool ppf p] runs {!analyze}, prints the tree, and
    returns the result table. *)
val explain_analyze : ?pool:Pool.t -> Format.formatter -> t -> Table.t
