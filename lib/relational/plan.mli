(** Logical query plans.

    The grounding engine calls the physical operators directly (its six
    query shapes are fixed), but a knowledge base is also a database, and
    ad-hoc queries deserve a planner: this module provides composable
    logical plans with an executor, statistics-based cardinality
    estimates, automatic build-side selection for joins, and an EXPLAIN
    printer.

    Column addressing is positional: each node exposes an output schema
    ({!columns}); joins concatenate the left and the right schemas. *)

(** Row predicates over a node's output columns. *)
type pred =
  | Eq_const of int * int  (** column = constant *)
  | Eq_cols of int * int  (** column = column *)
  | Lt_const of int * int  (** column < constant *)
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type t =
  | Scan of Table.t
  | Select of pred * t
  | Project of int array * t  (** keep the given child columns, in order *)
  | Equi_join of { left : t; right : t; lkey : int array; rkey : int array }
      (** output = left columns ++ right columns *)
  | Distinct of int array option * t  (** [None] = over all columns *)
  | Order_by of int array * t

(** [columns p] is the output schema (column names).
    @raise Invalid_argument on out-of-range column references. *)
val columns : t -> string array

(** [estimate_rows p] is a textbook cardinality estimate: selections take
    fixed selectivities, equi-joins use |L|·|R| / max(ndv keys), distinct
    caps at the input estimate. *)
val estimate_rows : t -> int

(** [run ?stats ?pool p] materializes the plan bottom-up.  Hash joins
    build on the smaller (materialized) input; [Order_by] uses the sort
    operator; when [stats] is given, each node's execution is recorded.
    Joins and distincts over large inputs execute on [pool] (default
    {!Pool.get_default}) with sequential-identical output. *)
val run : ?stats:Stats.t -> ?pool:Pool.t -> t -> Table.t

(** [explain ppf p] prints the plan tree with schemas and row
    estimates. *)
val explain : Format.formatter -> t -> unit

(** One plan node's EXPLAIN ANALYZE record: the estimated cardinality
    side by side with what execution actually produced.  [seconds] is
    inclusive of children (wall time to materialize this node). *)
type analysis = {
  op : string;
  schema : string array;
  est_rows : int;
  rows : int;
  seconds : float;
  children : analysis list;
}

(** [analyze ?pool p] executes the plan like {!run} while recording, per
    node, observed output cardinality and inclusive wall time alongside
    the optimizer estimate. *)
val analyze : ?pool:Pool.t -> t -> Table.t * analysis

(** [pp_analysis ppf a] prints the analyzed tree, one node per line as
    [op  (est=… rows=… time=…ms)]. *)
val pp_analysis : Format.formatter -> analysis -> unit

(** [analysis_to_json a] is the analyzed tree as JSON (for [--metrics
    json] and bench artifacts). *)
val analysis_to_json : analysis -> Obs.Json.t

(** [explain_analyze ?pool ppf p] runs {!analyze}, prints the tree, and
    returns the result table. *)
val explain_analyze : ?pool:Pool.t -> Format.formatter -> t -> Table.t
