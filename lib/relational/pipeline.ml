(* Push-based, batch-at-a-time operator pipelines (HyPer-style morsel
   parallelism over MonetDB/X100-style vectorized kernels).

   A pipeline is: a source table scanned in fixed-size batches, a chain
   of kernels transforming batches in flight, and a sink materializing
   the survivors.  The only materialization points are sinks — filters,
   projections and hash-probe chains never produce a Table.t.

   Determinism contract (same as the partitioned operators this layer
   replaces): the parallel driver hands contiguous morsels to pool
   workers, each worker runs the whole kernel chain over its morsel into
   a private sink, and the private sinks are absorbed into the global
   sink in morsel order — so the output is bit-identical to the
   sequential engine for any pool size, including first-occurrence
   semantics of dedup sinks. *)

type side = Build | Probe
type out_col = Col of side * int | Const of int
type out_weight = No_weight | Weight_of of side

type kernel = { push : Batch.t -> unit; flush : unit -> unit }

let into_sink s = { push = Sink.push_batch s; flush = (fun () -> ()) }

(* Filter: compacts the incoming batch in place (the producer refills it
   from scratch after the push returns). *)
let select pred ~next =
  {
    push =
      (fun b ->
        let n = Batch.length b in
        let keep = ref 0 in
        for r = 0 to n - 1 do
          if pred b r then begin
            Batch.move_row b ~src:r ~dst:!keep;
            incr keep
          end
        done;
        Batch.truncate b !keep;
        if !keep > 0 then next.push b);
    flush = next.flush;
  }

(* Projection: 1:1 into a private output batch (allocated on first push,
   matching the incoming capacity), weights and row ids carried over. *)
let project ~cols ~weighted ~next () =
  let out = ref None in
  let ncols = Array.length cols in
  let out_for b =
    match !out with
    | Some o -> o
    | None ->
      let o = Batch.create ~capacity:(Batch.capacity b) ~weighted ncols in
      out := Some o;
      o
  in
  {
    push =
      (fun b ->
        let o = out_for b in
        let n = Batch.length b in
        for r = 0 to n - 1 do
          let i = Batch.alloc_row o ~rid:(Batch.rid b r) in
          for j = 0 to ncols - 1 do
            Batch.set o i j (Batch.get b r cols.(j))
          done;
          if weighted then Batch.set_weight o i (Batch.weight b r)
        done;
        if n > 0 then begin
          next.push o;
          Batch.clear o
        end);
    flush = next.flush;
  }

(* Hash probe: streams probe batches against a prebuilt index, emitting
   join rows into a private output batch pushed downstream whenever it
   fills.  [residual] sees (build row, probe source row id). *)
let probe idx ~pkey ~out ~oweight ?residual ~next () =
  let btbl = Index.table idx in
  let weighted = oweight <> No_weight in
  let width = Array.length out in
  let ob = Batch.create ~weighted width in
  let kv = Array.make (Array.length pkey) 0 in
  let emit b r br =
    if Batch.is_full ob then begin
      next.push ob;
      Batch.clear ob
    end;
    let i = Batch.alloc_row ob ~rid:(Batch.rid b r) in
    for j = 0 to width - 1 do
      Batch.set ob i j
        (match out.(j) with
        | Const v -> v
        | Col (Build, c) -> Table.get btbl br c
        | Col (Probe, c) -> Batch.get b r c)
    done;
    match oweight with
    | No_weight -> ()
    | Weight_of Build -> Batch.set_weight ob i (Table.weight btbl br)
    | Weight_of Probe -> Batch.set_weight ob i (Batch.weight b r)
  in
  {
    push =
      (fun b ->
        let n = Batch.length b in
        for r = 0 to n - 1 do
          for i = 0 to Array.length pkey - 1 do
            kv.(i) <- Batch.get b r pkey.(i)
          done;
          match residual with
          | None -> Index.iter_matches idx kv (fun br -> emit b r br)
          | Some keep ->
            Index.iter_matches idx kv (fun br ->
                if keep br (Batch.rid b r) then emit b r br)
        done);
    flush =
      (fun () ->
        if not (Batch.is_empty ob) then begin
          next.push ob;
          Batch.clear ob
        end;
        next.flush ());
  }

(* --- the morsel driver --- *)

let default_parallel_threshold = 2048
let min_morsel_rows = 1024

(* Scans rows [lo, hi) of [tbl] through [kernel] in batches, counting the
   batches produced; flushes the chain at the end. *)
let scan_range ~batch_capacity kernel tbl lo hi =
  let b =
    Batch.create ~capacity:batch_capacity ~weighted:(Table.weighted tbl)
      (Table.width tbl)
  in
  let batches = ref 0 in
  for r = lo to hi - 1 do
    if Batch.is_full b then begin
      incr batches;
      kernel.push b;
      Batch.clear b
    end;
    Batch.push_from_table b tbl r
  done;
  if not (Batch.is_empty b) then begin
    incr batches;
    kernel.push b;
    Batch.clear b
  end;
  kernel.flush ();
  !batches

let run ?pool ?(batch_capacity = Batch.default_capacity)
    ?(threshold = default_parallel_threshold) ~source ~make_sink ~chain ~sink
    () =
  let n = Table.nrows source in
  let pool = match pool with Some p -> p | None -> Pool.get_default () in
  let nworkers = Pool.size pool in
  let obs = Obs.ambient () in
  let enabled = Obs.enabled obs in
  let now () = if enabled then Unix.gettimeofday () else 0. in
  let t0 = now () in
  let batches, busy, skew =
    if nworkers <= 1 || n < threshold then begin
      let t = now () in
      let batches = scan_range ~batch_capacity (chain sink) source 0 n in
      (batches, now () -. t, 1.)
    end
    else begin
      (* Morsel-driven: contiguous morsels, dynamically scheduled over
         the pool, each with a private sink absorbed in morsel order. *)
      let nm =
        min (nworkers * 4)
          (max 1 ((n + min_morsel_rows - 1) / min_morsel_rows))
      in
      let chunk = (n + nm - 1) / nm in
      let batches, busy, max_rows, total_rows =
        Pool.map_reduce pool ~n:nm
          ~map:(fun i ->
            let lo = i * chunk and hi = min n ((i + 1) * chunk) in
            let s = make_sink () in
            let t = now () in
            let batches =
              if lo < hi then scan_range ~batch_capacity (chain s) source lo hi
              else 0
            in
            (s, batches, now () -. t))
          ~fold:(fun (batches, busy, max_rows, total_rows) (s, b, sec) ->
            let rows = Sink.rows_out s in
            Sink.absorb sink (Sink.table s);
            Sink.add_pushed sink (Sink.pushed s);
            (batches + b, busy +. sec, max max_rows rows, total_rows + rows))
          ~init:(0, 0., 0, 0)
      in
      let mean = float_of_int total_rows /. float_of_int nm in
      (batches, busy, if mean > 0. then float_of_int max_rows /. mean else 1.)
    end
  in
  if enabled then begin
    Obs.incr obs "pipeline.runs";
    Obs.add obs "pipeline.rows" n;
    Obs.add obs "pipeline.batches" batches;
    Obs.add_time obs "pipeline.busy_seconds" busy;
    Obs.add_time obs "pipeline.seconds" (now () -. t0);
    Obs.gauge_max obs "pipeline.morsel_skew" skew
  end;
  batches

(* --- the segmented-source driver --- *)

(* Drives a pipeline whose source is a spilled (segmented) table: each
   resident segment is one morsel.  [keep] is the partition-pruning
   predicate — segments it rejects are never touched (their pages stay
   cold); pruning must be semantically transparent, i.e. [keep] may only
   reject segments none of whose rows can survive the downstream chain.

   Determinism matches {!run}: sequentially, one kernel chain consumes
   the kept segments in order with a single flush at the end; in
   parallel, each segment streams through a private chain/sink and the
   sinks are absorbed in segment order.  Kernels emit in row order
   either way, so the output is bit-identical to a scan of the unspilled
   table at any pool size (dedup sinks re-check while absorbing, exactly
   as the morsel driver's). *)
let run_segments ?pool ?(batch_capacity = Batch.default_capacity) ~source
    ~keep ~make_sink ~chain ~sink () =
  let segs = source.Segsrc.segs in
  let nseg = Array.length segs in
  (* Base rids: skipped segments still advance them, so surviving rows
     carry the same source row ids as an unspilled scan. *)
  let bases = Array.make (max 1 nseg) 0 in
  let nrows = ref 0 in
  for i = 0 to nseg - 1 do
    bases.(i) <- !nrows;
    nrows := !nrows + segs.(i).Segsrc.rows
  done;
  let kept = ref [] in
  for i = nseg - 1 downto 0 do
    if segs.(i).Segsrc.rows > 0 && keep segs.(i) then kept := i :: !kept
  done;
  let kept = Array.of_list !kept in
  let nkept = Array.length kept in
  let pool = match pool with Some p -> p | None -> Pool.get_default () in
  let nworkers = Pool.size pool in
  let obs = Obs.ambient () in
  let enabled = Obs.enabled obs in
  let now () = if enabled then Unix.gettimeofday () else 0. in
  let t0 = now () in
  let scan_one kernel i =
    segs.(i).Segsrc.scan ~capacity:batch_capacity ~base_rid:bases.(i)
      kernel.push
  in
  let batches, busy, skew =
    if nworkers <= 1 || nkept <= 1 then begin
      let t = now () in
      let kernel = chain sink in
      let batches = ref 0 in
      Array.iter (fun i -> batches := !batches + scan_one kernel i) kept;
      kernel.flush ();
      (!batches, now () -. t, 1.)
    end
    else begin
      let batches, busy, max_rows, total_rows =
        Pool.map_reduce pool ~n:nkept
          ~map:(fun j ->
            let s = make_sink () in
            let t = now () in
            let kernel = chain s in
            let b = scan_one kernel kept.(j) in
            kernel.flush ();
            (s, b, now () -. t))
          ~fold:(fun (batches, busy, max_rows, total_rows) (s, b, sec) ->
            let rows = Sink.rows_out s in
            Sink.absorb sink (Sink.table s);
            Sink.add_pushed sink (Sink.pushed s);
            (batches + b, busy +. sec, max max_rows rows, total_rows + rows))
          ~init:(0, 0., 0, 0)
      in
      let mean = float_of_int total_rows /. float_of_int nkept in
      (batches, busy, if mean > 0. then float_of_int max_rows /. mean else 1.)
    end
  in
  if enabled then begin
    Obs.incr obs "pipeline.runs";
    Obs.add obs "pipeline.rows" !nrows;
    Obs.add obs "pipeline.batches" batches;
    Obs.add_time obs "pipeline.busy_seconds" busy;
    Obs.add_time obs "pipeline.seconds" (now () -. t0);
    Obs.gauge_max obs "pipeline.morsel_skew" skew;
    Obs.add obs "storage.segments_scanned" nkept;
    Obs.add obs "storage.segments_skipped" (nseg - nkept)
  end;
  batches
