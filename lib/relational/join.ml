type side = Build | Probe
type out_col = Col of side * int | Const of int
type out_weight = No_weight | Weight_of of side

let emit out oweight btbl ptbl result dedup_idx buf br pr =
  for i = 0 to Array.length out - 1 do
    buf.(i) <-
      (match out.(i) with
      | Const v -> v
      | Col (Build, c) -> Table.get btbl br c
      | Col (Probe, c) -> Table.get ptbl pr c)
  done;
  let fresh =
    match dedup_idx with
    | None -> true
    | Some idx -> not (Index.mem idx buf)
  in
  if fresh then begin
    (match oweight with
    | No_weight -> Table.append result buf
    | Weight_of Build -> Table.append_w result buf (Table.weight btbl br)
    | Weight_of Probe -> Table.append_w result buf (Table.weight ptbl pr));
    match dedup_idx with
    | Some idx -> Index.add idx (Table.nrows result - 1)
    | None -> ()
  end

(* Probe rows [lo, hi) of [ptbl] against the shared build index, emitting
   into [result].  Each caller passes private [result]/[dedup_idx]; the
   index and both input tables are only read, so concurrent probes over
   disjoint ranges are race-free. *)
let probe_range ~out ~oweight ~residual bidx (ptbl, pkey) result dedup_idx lo
    hi =
  let btbl = Index.table bidx in
  let buf = Array.make (Array.length out) 0 in
  let kv = Array.make (Array.length pkey) 0 in
  match residual with
  | None ->
    for pr = lo to hi - 1 do
      for i = 0 to Array.length pkey - 1 do
        kv.(i) <- Table.get ptbl pr pkey.(i)
      done;
      Index.iter_matches bidx kv (fun br ->
          emit out oweight btbl ptbl result dedup_idx buf br pr)
    done
  | Some keep ->
    for pr = lo to hi - 1 do
      for i = 0 to Array.length pkey - 1 do
        kv.(i) <- Table.get ptbl pr pkey.(i)
      done;
      Index.iter_matches bidx kv (fun br ->
          if keep br pr then emit out oweight btbl ptbl result dedup_idx buf br pr)
    done

(* Below this many probe rows the per-chunk tables and the merge pass cost
   more than they save. *)
let parallel_probe_threshold = 2048

let hash_join_pre_raw ~name ~cols ~out ~oweight ?(dedup = false) ?residual
    ?pool bidx (ptbl, pkey) =
  if Array.length (Index.key bidx) <> Array.length pkey then
    invalid_arg "Join.hash_join: key arity mismatch";
  let weighted = oweight <> No_weight in
  (* Inline DISTINCT: dedup on all integer output columns as rows are
     emitted, so duplicate-heavy queries never materialize their raw
     output. *)
  let fresh_result () =
    let result = Table.create ~weighted ~name cols in
    let dedup_idx =
      if dedup then
        Some (Index.build result (Array.init (Array.length out) Fun.id))
      else None
    in
    (result, dedup_idx)
  in
  let nprobe = Table.nrows ptbl in
  let pool = match pool with Some p -> p | None -> Pool.get_default () in
  let nworkers = Pool.size pool in
  if nworkers <= 1 || nprobe < parallel_probe_threshold then begin
    let result, dedup_idx = fresh_result () in
    probe_range ~out ~oweight ~residual bidx (ptbl, pkey) result dedup_idx 0
      nprobe;
    result
  end
  else begin
    (* Partition the probe side into one contiguous chunk per worker.
       Concatenating the private chunk outputs in chunk order reproduces
       the sequential probe order exactly, so the parallel join (including
       its first-occurrence dedup) is bit-identical to the sequential
       one. *)
    let chunk = (nprobe + nworkers - 1) / nworkers in
    let parts =
      Pool.map_reduce pool ~n:nworkers
        ~map:(fun i ->
          let lo = i * chunk and hi = min nprobe ((i + 1) * chunk) in
          let part, part_idx = fresh_result () in
          if lo < hi then
            probe_range ~out ~oweight ~residual bidx (ptbl, pkey) part
              part_idx lo hi;
          part)
        ~fold:(fun acc part -> part :: acc)
        ~init:[]
      |> List.rev
    in
    (* Partition skew: ratio of the heaviest chunk's output to the mean —
       1.0 means the probe work split evenly across the pool. *)
    (let obs = Obs.ambient () in
     if Obs.enabled obs then begin
       let rows = List.map Table.nrows parts in
       let total = List.fold_left ( + ) 0 rows in
       let mean = float_of_int total /. float_of_int (max 1 nworkers) in
       if mean > 0. then
         Obs.gauge_max obs "join.partition_skew"
           (float_of_int (List.fold_left max 0 rows) /. mean)
     end);
    if not dedup then begin
      match parts with
      | [] -> fst (fresh_result ())
      | first :: rest ->
        List.iter (fun part -> Table.append_all first part) rest;
        first
    end
    else begin
      (* Per-chunk dedup is only local; re-dedup while concatenating so
         the global first occurrence (in sequential probe order) wins. *)
      let result, dedup_idx = fresh_result () in
      let idx = Option.get dedup_idx in
      let all = Array.init (Array.length out) Fun.id in
      List.iter
        (fun part ->
          for r = 0 to Table.nrows part - 1 do
            if not (Index.mem_row idx part all r) then begin
              Table.append_from result part r;
              Index.add idx (Table.nrows result - 1)
            end
          done)
        parts;
      result
    end
  end

(* Telemetry wrapper: when the ambient trace is enabled, record rows
   in/out, probe time, and hash-chain statistics of the build index; when
   disabled this is one branch over the raw join. *)
let hash_join_pre ~name ~cols ~out ~oweight ?dedup ?residual ?pool bidx
    (ptbl, pkey) =
  let obs = Obs.ambient () in
  if not (Obs.enabled obs) then
    hash_join_pre_raw ~name ~cols ~out ~oweight ?dedup ?residual ?pool bidx
      (ptbl, pkey)
  else begin
    let t0 = Unix.gettimeofday () in
    let result =
      hash_join_pre_raw ~name ~cols ~out ~oweight ?dedup ?residual ?pool bidx
        (ptbl, pkey)
    in
    Obs.incr obs "join.joins";
    Obs.add obs "join.build_rows" (Index.size bidx);
    Obs.add obs "join.probe_rows" (Table.nrows ptbl);
    Obs.add obs "join.rows_out" (Table.nrows result);
    Obs.add_time obs "join.probe_seconds" (Unix.gettimeofday () -. t0);
    let collisions, max_chain = Index.chain_stats bidx in
    Obs.add obs "join.hash_collisions" collisions;
    Obs.gauge_max obs "join.max_hash_chain" (float_of_int max_chain);
    result
  end

let hash_join ~name ~cols ~out ~oweight ?dedup ?residual ?pool (btbl, bkey)
    (ptbl, pkey) =
  let obs = Obs.ambient () in
  let t0 = if Obs.enabled obs then Unix.gettimeofday () else 0. in
  let bidx = Index.build btbl bkey in
  if Obs.enabled obs then
    Obs.add_time obs "join.build_seconds" (Unix.gettimeofday () -. t0);
  hash_join_pre ~name ~cols ~out ~oweight ?dedup ?residual ?pool bidx
    (ptbl, pkey)

let nested_loop ~name ~cols ~out ~oweight ?(dedup = false) ?residual
    (btbl, bkey) (ptbl, pkey) =
  if Array.length bkey <> Array.length pkey then
    invalid_arg "Join.nested_loop: key arity mismatch";
  let weighted = oweight <> No_weight in
  let result = Table.create ~weighted ~name cols in
  let dedup_idx =
    if dedup then
      Some (Index.build result (Array.init (Array.length out) Fun.id))
    else None
  in
  let buf = Array.make (Array.length out) 0 in
  let keys_equal br pr =
    let rec eq i =
      i >= Array.length bkey
      || Table.get btbl br bkey.(i) = Table.get ptbl pr pkey.(i) && eq (i + 1)
    in
    eq 0
  in
  let keep = match residual with None -> fun _ _ -> true | Some f -> f in
  for pr = 0 to Table.nrows ptbl - 1 do
    for br = 0 to Table.nrows btbl - 1 do
      if keys_equal br pr && keep br pr then
        emit out oweight btbl ptbl result dedup_idx buf br pr
    done
  done;
  result

let semi_join_absent tbl key idx =
  Table.filter tbl (fun r -> not (Index.mem_row idx tbl key r))
