(* The single physical join operator: a build/probe hash join executed on
   the pipelined engine ({!Pipeline}) — the probe side streams in batches
   through a probe kernel into a {!Sink}, so the local operators, the
   query planner and the per-segment MPP joins all share one kernel
   implementation.  The output spec types are re-exported from
   [Pipeline]. *)

type side = Pipeline.side = Build | Probe
type out_col = Pipeline.out_col = Col of side * int | Const of int
type out_weight = Pipeline.out_weight = No_weight | Weight_of of side

(* Below this many probe rows the per-morsel sinks and the ordered
   absorb cost more than they save. *)
let parallel_probe_threshold = 2048

let check_arity bidx pkey =
  if Array.length (Index.key bidx) <> Array.length pkey then
    invalid_arg "Join.hash_join: key arity mismatch"

(* Streams the probe side through a probe kernel into [sink].  Inline
   DISTINCT is the sink's dedup set (over the integer output columns),
   so duplicate-heavy queries never materialize their raw output. *)
let probe_into ~out ~oweight ?residual ?pool ~sink bidx (ptbl, pkey) =
  check_arity bidx pkey;
  let chain s =
    Pipeline.probe bidx ~pkey ~out ~oweight ?residual
      ~next:(Pipeline.into_sink s) ()
  in
  ignore
    (Pipeline.run ?pool ~threshold:parallel_probe_threshold ~source:ptbl
       ~make_sink:(fun () -> Sink.clone_empty sink)
       ~chain ~sink ())

let hash_join_pre_raw ~name ~cols ~out ~oweight ?(dedup = false) ?residual
    ?pool bidx (ptbl, pkey) =
  let weighted = oweight <> No_weight in
  let dedup_key =
    if dedup then Some (Array.init (Array.length out) Fun.id) else None
  in
  let sink =
    Sink.create ?dedup_key ~reserve:(Table.nrows ptbl) ~weighted ~name cols
  in
  probe_into ~out ~oweight ?residual ?pool ~sink bidx (ptbl, pkey);
  sink

(* Telemetry wrapper: when the ambient trace is enabled, record rows
   in/out, probe time, hash-chain statistics of the build index, and —
   through the shared sink abstraction — the same dedup counters a
   standalone DISTINCT reports; when disabled this is one branch over
   the raw join. *)
let hash_join_pre ~name ~cols ~out ~oweight ?dedup ?residual ?pool bidx
    (ptbl, pkey) =
  let obs = Obs.ambient () in
  if not (Obs.enabled obs) then
    Sink.table
      (hash_join_pre_raw ~name ~cols ~out ~oweight ?dedup ?residual ?pool
         bidx (ptbl, pkey))
  else begin
    let t0 = Unix.gettimeofday () in
    let sink =
      hash_join_pre_raw ~name ~cols ~out ~oweight ?dedup ?residual ?pool bidx
        (ptbl, pkey)
    in
    let result = Sink.table sink in
    Obs.incr obs "join.joins";
    Obs.add obs "join.build_rows" (Index.size bidx);
    Obs.add obs "join.probe_rows" (Table.nrows ptbl);
    Obs.add obs "join.rows_out" (Table.nrows result);
    Obs.add_time obs "join.probe_seconds" (Unix.gettimeofday () -. t0);
    let collisions, max_chain = Index.chain_stats bidx in
    Obs.add obs "join.hash_collisions" collisions;
    Obs.gauge_max obs "join.max_hash_chain" (float_of_int max_chain);
    Sink.record_distinct_obs obs sink;
    result
  end

(* Join into a caller-owned sink: several joins can stream into one
   shared dedup sink (the grounding delta path unions its two join
   branches this way without an intermediate table).  Emits the join.*
   counters; dedup counters are the caller's to record once the sink is
   complete ({!Sink.record_distinct_obs}). *)
let hash_join_pre_into ~out ~oweight ?residual ?pool ~sink bidx (ptbl, pkey) =
  let obs = Obs.ambient () in
  if not (Obs.enabled obs) then
    probe_into ~out ~oweight ?residual ?pool ~sink bidx (ptbl, pkey)
  else begin
    let before = Sink.rows_out sink in
    let t0 = Unix.gettimeofday () in
    probe_into ~out ~oweight ?residual ?pool ~sink bidx (ptbl, pkey);
    Obs.incr obs "join.joins";
    Obs.add obs "join.build_rows" (Index.size bidx);
    Obs.add obs "join.probe_rows" (Table.nrows ptbl);
    Obs.add obs "join.rows_out" (Sink.rows_out sink - before);
    Obs.add_time obs "join.probe_seconds" (Unix.gettimeofday () -. t0);
    let collisions, max_chain = Index.chain_stats bidx in
    Obs.add obs "join.hash_collisions" collisions;
    Obs.gauge_max obs "join.max_hash_chain" (float_of_int max_chain)
  end

(* Segmented-probe variant: the probe side is a spilled scan source
   rather than a resident table — each resident segment streams as one
   morsel ({!Pipeline.run_segments}), so probing a spilled fact table
   never materializes it.  The build side stays a resident index.  No
   zone-map pruning here ([keep] accepts everything): a join must see
   every probe row; pruning belongs to scan pipelines in {!Plan}. *)
let probe_src_into ~out ~oweight ?residual ?pool ~sink bidx (psrc, pkey) =
  check_arity bidx pkey;
  let chain s =
    Pipeline.probe bidx ~pkey ~out ~oweight ?residual
      ~next:(Pipeline.into_sink s) ()
  in
  ignore
    (Pipeline.run_segments ?pool ~source:psrc
       ~keep:(fun _ -> true)
       ~make_sink:(fun () -> Sink.clone_empty sink)
       ~chain ~sink ())

let hash_join_pre_src ~name ~cols ~out ~oweight ?(dedup = false) ?residual
    ?pool bidx (psrc, pkey) =
  let weighted = oweight <> No_weight in
  let dedup_key =
    if dedup then Some (Array.init (Array.length out) Fun.id) else None
  in
  let run () =
    let sink =
      Sink.create ?dedup_key ~reserve:(Segsrc.rows psrc) ~weighted ~name cols
    in
    probe_src_into ~out ~oweight ?residual ?pool ~sink bidx (psrc, pkey);
    sink
  in
  let obs = Obs.ambient () in
  if not (Obs.enabled obs) then Sink.table (run ())
  else begin
    let t0 = Unix.gettimeofday () in
    let sink = run () in
    let result = Sink.table sink in
    Obs.incr obs "join.joins";
    Obs.add obs "join.build_rows" (Index.size bidx);
    Obs.add obs "join.probe_rows" (Segsrc.rows psrc);
    Obs.add obs "join.rows_out" (Table.nrows result);
    Obs.add_time obs "join.probe_seconds" (Unix.gettimeofday () -. t0);
    let collisions, max_chain = Index.chain_stats bidx in
    Obs.add obs "join.hash_collisions" collisions;
    Obs.gauge_max obs "join.max_hash_chain" (float_of_int max_chain);
    Sink.record_distinct_obs obs sink;
    result
  end

let hash_join ~name ~cols ~out ~oweight ?dedup ?residual ?pool (btbl, bkey)
    (ptbl, pkey) =
  let obs = Obs.ambient () in
  let t0 = if Obs.enabled obs then Unix.gettimeofday () else 0. in
  let bidx = Index.build btbl bkey in
  if Obs.enabled obs then
    Obs.add_time obs "join.build_seconds" (Unix.gettimeofday () -. t0);
  hash_join_pre ~name ~cols ~out ~oweight ?dedup ?residual ?pool bidx
    (ptbl, pkey)

let nested_loop ~name ~cols ~out ~oweight ?(dedup = false) ?residual
    (btbl, bkey) (ptbl, pkey) =
  if Array.length bkey <> Array.length pkey then
    invalid_arg "Join.nested_loop: key arity mismatch";
  let weighted = oweight <> No_weight in
  let result = Table.create ~weighted ~name cols in
  let dedup_idx =
    if dedup then
      Some (Index.build result (Array.init (Array.length out) Fun.id))
    else None
  in
  let buf = Array.make (Array.length out) 0 in
  let emit br pr =
    for i = 0 to Array.length out - 1 do
      buf.(i) <-
        (match out.(i) with
        | Const v -> v
        | Col (Build, c) -> Table.get btbl br c
        | Col (Probe, c) -> Table.get ptbl pr c)
    done;
    let fresh =
      match dedup_idx with
      | None -> true
      | Some idx -> not (Index.mem idx buf)
    in
    if fresh then begin
      (match oweight with
      | No_weight -> Table.append result buf
      | Weight_of Build -> Table.append_w result buf (Table.weight btbl br)
      | Weight_of Probe -> Table.append_w result buf (Table.weight ptbl pr));
      match dedup_idx with
      | Some idx -> Index.add idx (Table.nrows result - 1)
      | None -> ()
    end
  in
  let keys_equal br pr =
    let rec eq i =
      i >= Array.length bkey
      || Table.get btbl br bkey.(i) = Table.get ptbl pr pkey.(i) && eq (i + 1)
    in
    eq 0
  in
  let keep = match residual with None -> fun _ _ -> true | Some f -> f in
  for pr = 0 to Table.nrows ptbl - 1 do
    for br = 0 to Table.nrows btbl - 1 do
      if keys_equal br pr && keep br pr then emit br pr
    done
  done;
  result

let semi_join_absent tbl key idx =
  Table.filter tbl (fun r -> not (Index.mem_row idx tbl key r))
