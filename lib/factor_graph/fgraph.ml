module Table = Relational.Table

let null = -1

type t = { tphi : Table.t }

let create () =
  { tphi = Table.create ~weighted:true ~name:"T_Phi" [| "I1"; "I2"; "I3" |] }

let table ~g = g.tphi
let add_singleton g ~i ~w = Table.append_w g.tphi [| i; null; null |] w

let add_clause g ~i1 ?(i2 = null) ?(i3 = null) ~w () =
  Table.append_w g.tphi [| i1; i2; i3 |] w

let append_rows g tbl = Table.append_all g.tphi tbl
let size g = Table.nrows g.tphi

let factor g f =
  ( Table.get g.tphi f 0,
    Table.get g.tphi f 1,
    Table.get g.tphi f 2,
    Table.weight g.tphi f )

let iter f g =
  for i = 0 to size g - 1 do
    f i (factor g i)
  done

let retain g ~keep =
  let n = size g in
  if Array.length keep <> n then invalid_arg "Fgraph.retain: mask length";
  let remap = Array.make n (-1) in
  let next = ref 0 in
  for f = 0 to n - 1 do
    if keep.(f) then begin
      remap.(f) <- !next;
      incr next
    end
  done;
  if !next < n then begin
    (* [Table.filter] appends survivors in scan order, so the surviving
       factors keep their relative order — [compile] interns variables in
       factor-table order, so variable numbering (and the chromatic
       schedule) of the untouched part of the graph stays stable. *)
    let kept = Table.filter g.tphi (fun f -> keep.(f)) in
    Table.clear g.tphi;
    Table.append_all g.tphi kept
  end;
  (n - !next, remap)

type compiled = {
  var_ids : int array;
  var_of_id : (int, int) Hashtbl.t;
  head : int array;
  body1 : int array;
  body2 : int array;
  fweight : float array;
  singleton : bool array;
  adj_off : int array;
  adj : int array;
}

let nvars c = Array.length c.var_ids

let compile g =
  let n = size g in
  (* Keep only finite-weight factors. *)
  let keep = Array.make n false in
  let kept = ref 0 in
  for f = 0 to n - 1 do
    let w = Table.weight g.tphi f in
    if Float.is_finite w then begin
      keep.(f) <- true;
      incr kept
    end
  done;
  let var_of_id = Hashtbl.create (2 * max 16 n) in
  let ids = ref [] in
  let intern id =
    if id = null then -1
    else
      match Hashtbl.find_opt var_of_id id with
      | Some v -> v
      | None ->
        let v = Hashtbl.length var_of_id in
        Hashtbl.add var_of_id id v;
        ids := id :: !ids;
        v
  in
  let m = !kept in
  let head = Array.make m 0
  and body1 = Array.make m (-1)
  and body2 = Array.make m (-1)
  and fweight = Array.make m 0.
  and singleton = Array.make m false in
  let fi = ref 0 in
  for f = 0 to n - 1 do
    if keep.(f) then begin
      let i1 = Table.get g.tphi f 0
      and i2 = Table.get g.tphi f 1
      and i3 = Table.get g.tphi f 2 in
      head.(!fi) <- intern i1;
      body1.(!fi) <- intern i2;
      body2.(!fi) <- intern i3;
      fweight.(!fi) <- Table.weight g.tphi f;
      singleton.(!fi) <- i2 = null && i3 = null;
      incr fi
    end
  done;
  let var_ids = Array.of_list (List.rev !ids) in
  let nv = Array.length var_ids in
  (* CSR adjacency: variable -> factors mentioning it. *)
  (* Each factor is listed once per *distinct* variable so that Gibbs
     never double-counts a factor whose head coincides with a body atom. *)
  let distinct_vars f each =
    let h = head.(f) and b1 = body1.(f) and b2 = body2.(f) in
    each h;
    if b1 >= 0 && b1 <> h then each b1;
    if b2 >= 0 && b2 <> h && b2 <> b1 then each b2
  in
  let deg = Array.make (nv + 1) 0 in
  for f = 0 to m - 1 do
    distinct_vars f (fun v -> deg.(v + 1) <- deg.(v + 1) + 1)
  done;
  for v = 1 to nv do
    deg.(v) <- deg.(v) + deg.(v - 1)
  done;
  let adj_off = Array.copy deg in
  let adj = Array.make deg.(nv) 0 in
  let cursor = Array.copy adj_off in
  for f = 0 to m - 1 do
    distinct_vars f (fun v ->
        adj.(cursor.(v)) <- f;
        cursor.(v) <- cursor.(v) + 1)
  done;
  { var_ids; var_of_id; head; body1; body2; fweight; singleton; adj_off; adj }

let satisfied c f assignment =
  if c.singleton.(f) then assignment.(c.head.(f))
  else
    let body_true =
      (c.body1.(f) < 0 || assignment.(c.body1.(f)))
      && (c.body2.(f) < 0 || assignment.(c.body2.(f)))
    in
    (not body_true) || assignment.(c.head.(f))
