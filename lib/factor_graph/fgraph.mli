(** Ground factor graphs — the relational table [TΦ].

    Grounding produces factors identified by their variables and weight
    (paper, Section 4.2.3, Definition 7): rows [(I1, I2, I3, w)] where the
    [I]s are fact identifiers, [I2]/[I3] may be null, and each row encodes
    the weighted ground Horn clause [I1 ← I2, I3].  Rows with null [I2] and
    [I3] are singleton factors carrying the prior weight of an extracted
    fact.

    The graph is also the lineage store: a clause factor records which
    facts derived which (see {!Lineage}). *)

type t

(** Null variable marker used in the [I2]/[I3] columns. *)
val null : int

(** [create ()] is an empty factor graph. *)
val create : unit -> t

(** [table g] is the backing [TΦ] table with integer columns
    [I1, I2, I3] and a weight column. *)
val table : g:t -> Relational.Table.t

(** [add_singleton g ~i ~w] records the singleton factor of fact [i] with
    prior weight [w]. *)
val add_singleton : t -> i:int -> w:float -> unit

(** [add_clause g ~i1 ?i2 ?i3 ~w ()] records the ground clause factor
    [i1 ← i2, i3]. *)
val add_clause : t -> i1:int -> ?i2:int -> ?i3:int -> w:float -> unit -> unit

(** [append_rows g tbl] bag-unions ([∪B], Algorithm 1 lines 9-10) a table
    of factor rows with columns [I1, I2, I3] and weights into [g]. *)
val append_rows : t -> Relational.Table.t -> unit

(** [size g] is the number of factors. *)
val size : t -> int

(** [factor g f] is [(i1, i2, i3, w)] for factor index [f]
    ([i2]/[i3] = {!null} when absent). *)
val factor : t -> int -> int * int * int * float

(** [iter f g] applies [f idx (i1, i2, i3, w)] to all factors. *)
val iter : (int -> int * int * int * float -> unit) -> t -> unit

(** [retain g ~keep] splices the graph in place, dropping every factor [f]
    with [keep.(f) = false].  Surviving factors keep their relative order
    (so {!compile}'s variable numbering over the untouched part of the
    graph is stable — marginals stay comparable across a retraction).
    Returns [(removed, remap)] where [remap.(old) = new] for survivors and
    [-1] for removed factors — apply it to any external index holding
    factor positions (see [Incremental.Provenance]). *)
val retain : t -> keep:bool array -> int * int array

(** {1 Compiled form}

    Inference works over a compiled view with dense variable indexes and a
    CSR variable→factor adjacency. *)

type compiled = {
  var_ids : int array;  (** dense var index → fact identifier *)
  var_of_id : (int, int) Hashtbl.t;  (** fact identifier → dense index *)
  head : int array;  (** per factor: dense var of [I1] *)
  body1 : int array;  (** dense var of [I2], or -1 *)
  body2 : int array;  (** dense var of [I3], or -1 *)
  fweight : float array;
  singleton : bool array;  (** true for prior factors *)
  adj_off : int array;  (** CSR offsets, length [nvars + 1] *)
  adj : int array;  (** factor indexes, grouped by variable *)
}

(** [compile g] builds the dense view.  Factors with non-finite weights are
    excluded (hard rules are handled by quality control, not inference). *)
val compile : t -> compiled

(** [nvars c] is the number of distinct variables. *)
val nvars : compiled -> int

(** [satisfied c f assignment] is [true] iff factor [f] is satisfied under
    the boolean [assignment] (indexed by dense variable): a singleton is
    satisfied when its variable is true; a clause is satisfied unless its
    body is true and its head false. *)
val satisfied : compiled -> int -> bool array -> bool
