module Table = Relational.Table
module Join = Relational.Join
module Ops = Relational.Ops
module Funcon = Kb.Funcon
module Storage = Kb.Storage

type violation = {
  entity : int;
  cls : int;
  rel : int;
  ftype : Funcon.ftype;
  count : int;
  degree : int;
}

(* TΠ columns: I=0 R=1 x=2 C1=3 y=4 C2=5.
   For Type I the constrained position is (x, C1); for Type II, (y, C2).
   Following Query 3 of the paper we group by (R, entity, entity-class,
   other-class) and compare the group size against the degree. *)

let positions = function
  | Funcon.Type_I -> (2, 3, 5) (* entity, its class, other class *)
  | Funcon.Type_II -> (4, 5, 3)

let degree_map omega ftype =
  let m = Hashtbl.create 16 in
  List.iter
    (fun (c : Funcon.t) ->
      if c.Funcon.ftype = ftype then
        match Hashtbl.find_opt m c.Funcon.rel with
        | Some d -> Hashtbl.replace m c.Funcon.rel (min d c.Funcon.degree)
        | None -> Hashtbl.replace m c.Funcon.rel c.Funcon.degree)
    omega;
  m

let violations_of_type pi omega ftype =
  let degrees = degree_map omega ftype in
  if Hashtbl.length degrees = 0 then []
  else begin
    let ent, ecls, ocls = positions ftype in
    let facts = Storage.table pi in
    (* TΠ ⋈ TΩ on R: keep only facts of constrained relations. *)
    let omega_tbl =
      Funcon.to_table
        (List.filter (fun (c : Funcon.t) -> c.Funcon.ftype = ftype) omega)
    in
    let constrained =
      Join.hash_join ~name:"constrained"
        ~cols:[| "R"; "e"; "Ce"; "Co" |]
        ~out:
          [|
            Join.Col (Join.Probe, 1);
            Join.Col (Join.Probe, ent);
            Join.Col (Join.Probe, ecls);
            Join.Col (Join.Probe, ocls);
          |]
        ~oweight:Join.No_weight
        (Ops.distinct omega_tbl [| 0 |], [| 0 |])
        (facts, [| 1 |])
    in
    (* GROUP BY (R, e, Ce, Co) HAVING the group count exceed the degree. *)
    let groups = Ops.group_count constrained [| 0; 1; 2; 3 |] in
    let acc = ref [] in
    Table.iter
      (fun g ->
        let rel = Table.get groups g 0 in
        let count = Table.get groups g 4 in
        let degree = Hashtbl.find degrees rel in
        if count > degree then
          acc :=
            {
              entity = Table.get groups g 1;
              cls = Table.get groups g 2;
              rel;
              ftype;
              count;
              degree;
            }
            :: !acc)
      groups;
    List.rev !acc
  end

let violations pi omega =
  violations_of_type pi omega Funcon.Type_I
  @ violations_of_type pi omega Funcon.Type_II

let apply_collect ?(ban = true) pi omega =
  let obs = Obs.ambient () in
  let t0 = if Obs.enabled obs then Unix.gettimeofday () else 0. in
  let record vs deleted =
    if Obs.enabled obs then begin
      Obs.add obs "quality.violations" (List.length vs);
      Obs.add obs "quality.deleted" deleted;
      Obs.add_time obs "quality.seconds" (Unix.gettimeofday () -. t0)
    end
  in
  let vs = violations pi omega in
  if vs = [] then begin
    record [] 0;
    ([], 0)
  end
  else begin
    (* Delete every fact whose constrained position holds a violating
       (entity, class) pair. *)
    let bad_subject = Hashtbl.create 64 and bad_object = Hashtbl.create 64 in
    List.iter
      (fun v ->
        let tbl =
          match v.ftype with
          | Funcon.Type_I -> bad_subject
          | Funcon.Type_II -> bad_object
        in
        Hashtbl.replace tbl (v.entity, v.cls) ())
      vs;
    (* Collect the doomed ids, then delete them as one batch — a single
       table compaction and key-index rebuild no matter how many facts
       the violating entities reach (see [Storage.delete_ids]). *)
    let t = Storage.table pi in
    let doomed = ref [] in
    Table.iter
      (fun row ->
        if
          Hashtbl.mem bad_subject (Table.get t row 2, Table.get t row 3)
          || Hashtbl.mem bad_object (Table.get t row 4, Table.get t row 5)
        then doomed := Table.get t row 0 :: !doomed)
      t;
    let deleted = Storage.delete_ids ~ban pi (List.rev !doomed) in
    record vs deleted;
    (vs, deleted)
  end

let apply ?ban pi omega = snd (apply_collect ?ban pi omega)
let hook omega pi =
  let vs, deleted = apply_collect pi omega in
  (List.length vs, deleted)

let pp_violation ~entity_name ~rel_name ppf v =
  Format.fprintf ppf "%s violates %s (%s): %d facts, degree %d"
    (entity_name v.entity) (rel_name v.rel)
    (match v.ftype with Funcon.Type_I -> "I" | Funcon.Type_II -> "II")
    v.count v.degree


let violation_group pi (v : violation) =
  let tbl = Storage.table pi in
  let epos, cpos =
    match v.ftype with Funcon.Type_I -> (2, 3) | Funcon.Type_II -> (4, 5)
  in
  let acc = ref [] in
  Table.iter
    (fun row ->
      if
        Table.get tbl row 1 = v.rel
        && Table.get tbl row epos = v.entity
        && Table.get tbl row cpos = v.cls
      then
        acc :=
          ( ( Table.get tbl row 1, Table.get tbl row 2, Table.get tbl row 3,
              Table.get tbl row 4, Table.get tbl row 5 ),
            Table.is_null_weight (Table.weight tbl row) )
          :: !acc)
    tbl;
  List.rev !acc
