(** Semantic (functional) constraint checking — the paper's Query 3.

    A Type-I functional relation [R(Ci, Cj)] with degree δ tolerates at
    most δ facts [R(x, ·)] per entity [x ∈ Ci] (δ = 1 for strictly
    functional relations; larger for pseudo-functional ones).  Entities
    exceeding the degree *violate* the constraint; following the paper's
    greedy policy, every fact in which a violating entity appears in the
    constrained position is deleted (Section 5.4, Query 3).

    Violations are detected with one grouped aggregate per constraint
    type — applying all constraints in batches, exactly like the rules. *)

type violation = {
  entity : int;  (** the violating entity *)
  cls : int;  (** the class it was used under *)
  rel : int;  (** the functional relation it violates *)
  ftype : Kb.Funcon.ftype;
  count : int;  (** facts observed in the constrained position *)
  degree : int;  (** allowed degree δ *)
}

(** [violations pi omega] finds all constraint violations in the current
    fact table, without modifying it. *)
val violations : Kb.Storage.t -> Kb.Funcon.t list -> violation list

(** [apply ?ban pi omega] is [applyConstraints(TΠ)]: deletes every fact
    whose constrained-position entity violates some constraint.  With
    [ban = true] (default) the removed keys can never be re-derived by a
    later grounding iteration; pass [ban:false] for the one-shot cleaning
    of the paper's Section 6.1.1 protocol, where inference afterwards runs
    without quality control.  Returns the number of facts deleted. *)
val apply : ?ban:bool -> Kb.Storage.t -> Kb.Funcon.t list -> int

(** [apply_collect pi omega] is {!apply} but also returns the violations
    that triggered the deletions — the per-iteration violation log behind
    the error-source analysis of Figure 7(b). *)
val apply_collect :
  ?ban:bool -> Kb.Storage.t -> Kb.Funcon.t list -> violation list * int

(** [violation_group pi v] lists the facts of the violating group as
    [(key, inferred)] pairs, where [key = (r, x, c1, y, c2)] and
    [inferred] marks null-weight facts.  Capture this *before* applying
    the constraints — the group is deleted by {!apply}. *)
val violation_group :
  Kb.Storage.t -> violation -> ((int * int * int * int * int) * bool) list

(** [hook omega] packages {!apply_collect} as the [apply_constraints]
    option of the grounding driver, returning
    [(violation count, facts deleted)]. *)
val hook : Kb.Funcon.t list -> Kb.Storage.t -> int * int

(** [pp_violation ~entity_name ~rel_name ppf v] prints a violation. *)
val pp_violation :
  entity_name:(int -> string) ->
  rel_name:(int -> string) ->
  Format.formatter ->
  violation ->
  unit
