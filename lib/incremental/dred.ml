module Table = Relational.Table
module Storage = Kb.Storage
module Gamma = Kb.Gamma
module Fgraph = Factor_graph.Fgraph
module Pattern = Mln.Pattern
module Queries = Grounding.Queries

type t = {
  kb : Gamma.t;
  graph : Fgraph.t;
  prov : Provenance.t;
  mutable prepared : Queries.prepared;
  obs : Obs.t;
}

let create ?(obs = Obs.null) kb graph =
  {
    kb;
    graph;
    prov = Provenance.of_graph graph;
    prepared = Queries.prepare (Gamma.partitions kb);
    obs;
  }

let kb t = t.kb
let graph t = t.graph
let provenance t = t.prov

let refresh_rules t = t.prepared <- Queries.prepare (Gamma.partitions t.kb)

(* The provenance index as a local-grounding source: the fact↔factor
   adjacency is already maintained across epochs, so a point query walks
   it directly instead of re-deriving the neighbourhood from the rule
   tables. *)
let local_adjacency t =
  Provenance.sync t.prov t.graph;
  {
    Grounding.Local.iter_derivations = Provenance.iter_derivations t.prov;
    iter_supports = Provenance.iter_supports t.prov;
    singleton_of = Provenance.singleton_of t.prov;
    factor_of = Fgraph.factor t.graph;
  }

type retract_stats = {
  requested : int;
  cone : int;
  overdeleted : int;
  rederived : int;
  demoted : int;
  factors_removed : int;
  empty_cone : bool;
  deleted_ids : int list;
  touched_ids : int list;
}

let no_retract =
  {
    requested = 0;
    cone = 0;
    overdeleted = 0;
    rederived = 0;
    demoted = 0;
    factors_removed = 0;
    empty_cone = true;
    deleted_ids = [];
    touched_ids = [];
  }

type ingest_stats = {
  inserted : int;
  promoted : int;
  derived : int;
  new_factors : int;
  closure_iterations : int;
  converged : bool;
  new_ids : int list;
}

let no_ingest =
  {
    inserted = 0;
    promoted = 0;
    derived = 0;
    new_factors = 0;
    closure_iterations = 0;
    converged = true;
    new_ids = [];
  }

let active_patterns st =
  List.filter
    (fun pat -> Mln.Partition.count (Queries.partitions st.prepared) pat > 0)
    Pattern.all

let tpi_cols = [| "I"; "R"; "x"; "C1"; "y"; "C2" |]

(* The frontier of one overdelete wave as a delta table with the [TΠ]
   schema (the facts are still physically present — deleted facts must
   stay joinable while their consequence cone is computed). *)
let delta_of_ids pi ids =
  let t = Storage.table pi in
  let d = Table.create ~weighted:true ~name:"delta_retract" tpi_cols in
  List.iter
    (fun id ->
      match Storage.row_of_id pi id with
      | Some row -> Table.append_from d t row
      | None -> ())
    ids;
  d

(* Overdelete (DRed phase 1): the descendant cone of the seeds, computed
   semi-naively with the M1..M6 partition queries — each wave joins the
   current frontier as the delta, exactly like [initial_delta] does for
   inserts.  Only inferred facts (no singleton support) enter the cone;
   base facts found as heads keep their extraction support and stop the
   wave.  Returns the membership set and the discovery order. *)
let expand_cone st pi ~seeds ~in_cone =
  let order = ref (List.rev seeds) in
  let frontier = ref seeds in
  let patterns = active_patterns st in
  while !frontier <> [] do
    let delta = delta_of_ids pi !frontier in
    let next = ref [] in
    List.iter
      (fun pat ->
        Obs.with_span st.obs (Pattern.to_string pat) ~cat:"incremental"
          (fun () ->
            let atoms = Queries.ground_atoms_delta st.prepared pat pi ~delta in
            for row = 0 to Table.nrows atoms - 1 do
              match
                Storage.find pi ~r:(Table.get atoms row 0)
                  ~x:(Table.get atoms row 1) ~c1:(Table.get atoms row 2)
                  ~y:(Table.get atoms row 3) ~c2:(Table.get atoms row 4)
              with
              | Some id
                when (not (Hashtbl.mem in_cone id))
                     && not (Provenance.is_base st.prov id) ->
                Hashtbl.replace in_cone id ();
                order := id :: !order;
                next := id :: !next
              | Some _ | None -> ()
            done))
      patterns;
    frontier := List.rev !next
  done;
  List.rev !order

(* Rederive (DRed phase 2): a worklist fixpoint over the provenance index.
   A cone fact survives when some recorded derivation has its whole body
   alive (outside the cone, or already rederived); each rescue re-examines
   the cone facts it supports.  On a converged closure the factor graph
   records {e every} derivation among the stored facts (Query 2 enumerates
   them all), so this pure index walk is complete — no queries needed. *)
let rederive st ~in_cone ~order ~banned =
  let rederived = Hashtbl.create 64 in
  let alive id =
    (not (Hashtbl.mem in_cone id)) || Hashtbl.mem rederived id
  in
  let exception Found in
  let supported id =
    try
      Provenance.iter_derivations st.prov id (fun f ->
          let _, i2, i3, _ = Fgraph.factor st.graph f in
          if (i2 = Fgraph.null || alive i2) && (i3 = Fgraph.null || alive i3)
          then raise_notrace Found);
      false
    with Found -> true
  in
  let queue = Queue.create () in
  List.iter (fun id -> Queue.add id queue) order;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    if
      Hashtbl.mem in_cone id
      && (not (Hashtbl.mem rederived id))
      && (not (Hashtbl.mem banned id))
      && supported id
    then begin
      Hashtbl.replace rederived id ();
      (* A rescued fact may complete the last missing body atom of a
         derivation of another cone fact. *)
      Provenance.iter_supports st.prov id (fun f ->
          let h, _, _, _ = Fgraph.factor st.graph f in
          if Hashtbl.mem in_cone h && not (Hashtbl.mem rederived h) then
            Queue.add h queue)
    end
  done;
  rederived

(* Splice (DRed phase 3): drop every factor that mentions a dead fact,
   plus the singletons of demoted base facts; remap the provenance index
   through the surviving positions. *)
let splice st ~dead ~demoted =
  let keep = Array.make (Fgraph.size st.graph) true in
  Fgraph.iter
    (fun f (i1, i2, i3, _w) ->
      if i2 = Fgraph.null && i3 = Fgraph.null then begin
        if Hashtbl.mem dead i1 || Hashtbl.mem demoted i1 then keep.(f) <- false
      end
      else if
        Hashtbl.mem dead i1
        || (i2 <> Fgraph.null && Hashtbl.mem dead i2)
        || (i3 <> Fgraph.null && Hashtbl.mem dead i3)
      then keep.(f) <- false)
    st.graph;
  let removed, remap = Fgraph.retain st.graph ~keep in
  Provenance.remap st.prov remap;
  removed

(* The shared delete–rederive core.  [seeds] are the facts whose support
   just changed (already deduplicated, present in [TΠ]); [withdrawn] are
   the seeds losing their {e base} (singleton) support — explicitly
   retracted extractions; [ban] additionally bans the keys of the
   retracted facts that end up deleted and blocks their rederivation. *)
let run_dred st ~seeds ~withdrawn ~ban =
  let pi = Gamma.pi st.kb in
  let in_cone = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace in_cone id ()) seeds;
  let empty_cone =
    not (List.exists (fun id -> Provenance.has_supports st.prov id) seeds)
  in
  let order =
    if empty_cone then begin
      (* None of the retracted facts supports any derivation: skip the
         M-query machinery entirely — delete, rederive locally, splice. *)
      Obs.incr st.obs "incremental.empty_cone_fast_path";
      seeds
    end
    else
      Obs.with_span st.obs "overdelete" ~cat:"incremental" (fun () ->
          expand_cone st pi ~seeds ~in_cone)
  in
  let banned = Hashtbl.create 16 in
  if ban then List.iter (fun id -> Hashtbl.replace banned id ()) withdrawn;
  let rederived =
    Obs.with_span st.obs "rederive" ~cat:"incremental" (fun () ->
        rederive st ~in_cone ~order ~banned)
  in
  (* Survivors of the withdrawn set keep the fact but lose base status:
     the singleton factor goes, the weight becomes null (inferred). *)
  let demoted = Hashtbl.create 16 in
  List.iter
    (fun id ->
      if Hashtbl.mem rederived id && Provenance.is_base st.prov id then
        Hashtbl.replace demoted id ())
    withdrawn;
  let dead = Hashtbl.create 64 in
  let deleted_ids =
    List.filter
      (fun id ->
        if Hashtbl.mem rederived id then false
        else begin
          Hashtbl.replace dead id ();
          true
        end)
      order
  in
  Obs.with_span st.obs "splice" ~cat:"incremental" (fun () ->
      (* Ban only the explicitly retracted keys — the overdeleted cone
         remains legitimately re-derivable should new support arrive. *)
      if ban then
        List.iter
          (fun id -> if Hashtbl.mem dead id then Storage.ban_id pi id)
          withdrawn;
      let tbl = Storage.table pi in
      Hashtbl.iter
        (fun id () ->
          match Storage.row_of_id pi id with
          | Some row -> Table.set_weight tbl row Table.null_weight
          | None -> ())
        demoted;
      let overdeleted = Storage.delete_ids pi deleted_ids in
      let factors_removed = splice st ~dead ~demoted in
      let stats =
        {
          requested = List.length seeds;
          cone = List.length order;
          overdeleted;
          rederived = Hashtbl.length rederived;
          demoted = Hashtbl.length demoted;
          factors_removed;
          empty_cone;
          deleted_ids;
          touched_ids = order;
        }
      in
      Obs.add st.obs "incremental.cone" stats.cone;
      Obs.add st.obs "incremental.overdeleted" stats.overdeleted;
      Obs.add st.obs "incremental.rederived" stats.rederived;
      Obs.add st.obs "incremental.factors_removed" stats.factors_removed;
      stats)

let retract ?(ban = false) st ids =
  Obs.with_ambient st.obs @@ fun () ->
  Obs.with_span st.obs "retract" ~cat:"incremental" @@ fun () ->
  Provenance.sync st.prov st.graph;
  let pi = Gamma.pi st.kb in
  let requested =
    List.sort_uniq compare ids
    |> List.filter (fun id -> Storage.row_of_id pi id <> None)
  in
  if requested = [] then no_retract
  else run_dred st ~seeds:requested ~withdrawn:requested ~ban

let retract_keys ?ban st keys =
  let pi = Gamma.pi st.kb in
  retract ?ban st
    (List.filter_map
       (fun (r, x, c1, y, c2) -> Storage.find pi ~r ~x ~c1 ~y ~c2)
       keys)

(* Rule retraction: enumerate the ground instances of the removed rules
   over the current [TΠ] (the batch Query 2 with a single-partition rule
   set), remove exactly those factor rows from the graph (multiset
   subtraction — identical instances from identical surviving rules are
   not over-removed), then DRed from the orphaned heads under the
   remaining rule set. *)
let retract_rules st ~remove =
  Obs.with_ambient st.obs @@ fun () ->
  Obs.with_span st.obs "retract" ~cat:"incremental" @@ fun () ->
  Provenance.sync st.prov st.graph;
  let removed_rules, kept_rules = List.partition remove (Gamma.rules st.kb) in
  if removed_rules = [] then no_retract
  else begin
    let pi = Gamma.pi st.kb in
    let tmp = Fgraph.create () in
    let rp = Queries.prepare (Mln.Partition.of_rules removed_rules) in
    List.iter
      (fun pat ->
        if Mln.Partition.count (Queries.partitions rp) pat > 0 then
          ignore (Queries.ground_factors rp pat pi tmp))
      Pattern.all;
    let want = Hashtbl.create 64 in
    Fgraph.iter
      (fun _ row ->
        Hashtbl.replace want row
          (1 + Option.value ~default:0 (Hashtbl.find_opt want row)))
      tmp;
    let keep = Array.make (Fgraph.size st.graph) true in
    let seen_seed = Hashtbl.create 16 in
    let seeds = ref [] in
    Fgraph.iter
      (fun f ((i1, i2, i3, _w) as row) ->
        if i2 <> Fgraph.null || i3 <> Fgraph.null then
          match Hashtbl.find_opt want row with
          | Some n when n > 0 ->
            Hashtbl.replace want row (n - 1);
            keep.(f) <- false;
            if
              (not (Hashtbl.mem seen_seed i1))
              && not (Provenance.is_base st.prov i1)
            then begin
              Hashtbl.replace seen_seed i1 ();
              seeds := i1 :: !seeds
            end
          | _ -> ())
      st.graph;
    let rule_factors_removed, remap =
      Obs.with_span st.obs "splice" ~cat:"incremental" (fun () ->
          Fgraph.retain st.graph ~keep)
    in
    Provenance.remap st.prov remap;
    (* The remaining rules take over before the cone is explored: every
       head of a removed instance is a seed already, so descendants via
       the removed rules need no queries — only the surviving rules can
       extend the cone. *)
    Gamma.set_rules st.kb kept_rules;
    refresh_rules st;
    let stats =
      match List.rev !seeds with
      | [] ->
        Obs.incr st.obs "incremental.empty_cone_fast_path";
        no_retract
      | seeds -> run_dred st ~seeds ~withdrawn:[] ~ban:false
    in
    Obs.add st.obs "incremental.factors_removed" rule_factors_removed;
    { stats with factors_removed = stats.factors_removed + rule_factors_removed }
  end

(* Constraint enforcement as a retraction delta (paper, Section 5.1 —
   errors are removed "to avoid further propagation"): the violating
   groups are retracted through DRed with their keys banned, so their
   already-derived consequences leave [TΠ] {e and} [TΦ] — instead of the
   in-closure hook's delete-and-re-close. *)
let enforce_constraints st =
  Obs.with_ambient st.obs @@ fun () ->
  let pi = Gamma.pi st.kb in
  let omega = Gamma.omega st.kb in
  let vs = Quality.Semantic.violations pi omega in
  if vs = [] then (0, no_retract)
  else begin
    let bad_subject = Hashtbl.create 64 and bad_object = Hashtbl.create 64 in
    List.iter
      (fun (v : Quality.Semantic.violation) ->
        let tbl =
          match v.Quality.Semantic.ftype with
          | Kb.Funcon.Type_I -> bad_subject
          | Kb.Funcon.Type_II -> bad_object
        in
        Hashtbl.replace tbl (v.Quality.Semantic.entity, v.Quality.Semantic.cls) ())
      vs;
    let t = Storage.table pi in
    let doomed = ref [] in
    Table.iter
      (fun row ->
        if
          Hashtbl.mem bad_subject (Table.get t row 2, Table.get t row 3)
          || Hashtbl.mem bad_object (Table.get t row 4, Table.get t row 5)
        then doomed := Table.get t row 0 :: !doomed)
      t;
    (List.length vs, retract ~ban:true st (List.rev !doomed))
  end

(* --- insert epochs: closure + incremental factor maintenance --------- *)

let ingest ?(max_iterations = 15) st facts =
  Obs.with_ambient st.obs @@ fun () ->
  Obs.with_span st.obs "ingest" ~cat:"incremental" @@ fun () ->
  Provenance.sync st.prov st.graph;
  let pi = Gamma.pi st.kb in
  let watermark = Storage.next_id pi in
  let delta = Table.create ~weighted:true ~name:"delta" tpi_cols in
  let inserted = ref [] and promoted = ref [] in
  List.iter
    (fun (r, x, c1, y, c2, w) ->
      if not (Storage.is_banned pi ~r ~x ~c1 ~y ~c2) then
        match Storage.find pi ~r ~x ~c1 ~y ~c2 with
        | None ->
          let id = Gamma.add_fact st.kb ~r ~x ~c1 ~y ~c2 ~w in
          Table.append_w delta [| id; r; x; c1; y; c2 |] w;
          inserted := id :: !inserted
        | Some id ->
          (* An extraction arriving for an already-inferred fact promotes
             it to a base fact: it gains the extraction weight and a
             singleton factor; its consequences are already derived.  A
             second extraction of an existing base fact is a no-op (first
             weight wins, as in batch loading). *)
          if
            (not (Provenance.is_base st.prov id))
            && not (Table.is_null_weight w)
          then begin
            (match Storage.row_of_id pi id with
            | Some row -> Table.set_weight (Storage.table pi) row w
            | None -> ());
            promoted := id :: !promoted
          end)
    facts;
  let inserted = List.rev !inserted and promoted = List.rev !promoted in
  let closure_result =
    if inserted = [] then None
    else
      Some
        (Grounding.Ground.closure
           ~options:
             {
               Grounding.Ground.default_options with
               max_iterations;
               initial_delta = Some delta;
               obs = st.obs;
             }
           st.kb)
  in
  (* Incremental factor maintenance: every ground-clause instance with at
     least one atom among this epoch's new facts (inserted or derived —
     exactly the rows with [id >= watermark], a contiguous suffix of the
     table since ids are assigned in insertion order), plus one singleton
     per new or promoted base fact. *)
  let new_factors = ref 0 in
  Obs.with_span st.obs "factors" ~cat:"incremental" (fun () ->
      let t = Storage.table pi in
      let start = ref (Table.nrows t) in
      while !start > 0 && Table.get t (!start - 1) 0 >= watermark do
        decr start
      done;
      let fdelta =
        Table.sub t
          (Array.init (Table.nrows t - !start) (fun i -> !start + i))
      in
      if Table.nrows fdelta > 0 then
        List.iter
          (fun pat ->
            Obs.with_span st.obs (Pattern.to_string pat) ~cat:"incremental"
              (fun () ->
                new_factors :=
                  !new_factors
                  + Queries.ground_factors_delta st.prepared pat pi
                      ~delta:fdelta ~watermark st.graph))
          (active_patterns st);
      List.iter
        (fun id ->
          match Storage.row_of_id pi id with
          | Some row ->
            let w = Table.weight t row in
            if not (Table.is_null_weight w) then begin
              Fgraph.add_singleton st.graph ~i:id ~w;
              incr new_factors
            end
          | None -> ())
        (inserted @ promoted));
  Provenance.sync st.prov st.graph;
  let derived, iters, converged =
    match closure_result with
    | Some r ->
      ( r.Grounding.Ground.new_fact_count,
        r.Grounding.Ground.iterations,
        r.Grounding.Ground.converged )
    | None -> (0, 0, true)
  in
  let new_ids =
    let acc = ref (List.rev promoted) in
    let t = Storage.table pi in
    for row = 0 to Table.nrows t - 1 do
      let id = Table.get t row 0 in
      if id >= watermark then acc := id :: !acc
    done;
    List.rev !acc
  in
  Obs.add st.obs "incremental.inserted" (List.length inserted);
  Obs.add st.obs "incremental.promoted" (List.length promoted);
  Obs.add st.obs "incremental.derived" derived;
  Obs.add st.obs "incremental.new_factors" !new_factors;
  {
    inserted = List.length inserted;
    promoted = List.length promoted;
    derived;
    new_factors = !new_factors;
    closure_iterations = iters;
    converged;
    new_ids;
  }

(* Rule addition / re-expansion.  New rules can fire on pairs of {e old}
   facts, so the closure runs naively; the factor extension splits into
   (a) a batch pass with just the new rules over the whole of [TΠ] and
   (b) the delta factor queries with the {e previous} rule set over the
   facts the closure added — together exactly the new instances, counted
   once. *)
let extend_rules ?(max_iterations = 15) st rules =
  Obs.with_ambient st.obs @@ fun () ->
  Obs.with_span st.obs "reexpand" ~cat:"incremental" @@ fun () ->
  Provenance.sync st.prov st.graph;
  let pi = Gamma.pi st.kb in
  let watermark = Storage.next_id pi in
  let prepared_old = st.prepared in
  let old_patterns = active_patterns st in
  List.iter (Gamma.add_rule st.kb) rules;
  refresh_rules st;
  let result =
    Grounding.Ground.closure
      ~options:
        {
          Grounding.Ground.default_options with
          max_iterations;
          obs = st.obs;
        }
      st.kb
  in
  let new_factors = ref 0 in
  Obs.with_span st.obs "factors" ~cat:"incremental" (fun () ->
      (if rules <> [] then
         let rp = Queries.prepare (Mln.Partition.of_rules rules) in
         List.iter
           (fun pat ->
             if Mln.Partition.count (Queries.partitions rp) pat > 0 then
               new_factors :=
                 !new_factors + Queries.ground_factors rp pat pi st.graph)
           Pattern.all);
      let t = Storage.table pi in
      let start = ref (Table.nrows t) in
      while !start > 0 && Table.get t (!start - 1) 0 >= watermark do
        decr start
      done;
      let fdelta =
        Table.sub t
          (Array.init (Table.nrows t - !start) (fun i -> !start + i))
      in
      if Table.nrows fdelta > 0 then
        List.iter
          (fun pat ->
            new_factors :=
              !new_factors
              + Queries.ground_factors_delta prepared_old pat pi ~delta:fdelta
                  ~watermark st.graph)
          old_patterns);
  Provenance.sync st.prov st.graph;
  let new_ids =
    let acc = ref [] in
    let t = Storage.table pi in
    for row = 0 to Table.nrows t - 1 do
      let id = Table.get t row 0 in
      if id >= watermark then acc := id :: !acc
    done;
    List.rev !acc
  in
  {
    inserted = 0;
    promoted = 0;
    derived = result.Grounding.Ground.new_fact_count;
    new_factors = !new_factors;
    closure_iterations = result.Grounding.Ground.iterations;
    converged = result.Grounding.Ground.converged;
    new_ids;
  }

let reexpand ?max_iterations st = extend_rules ?max_iterations st []
