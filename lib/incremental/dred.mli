(** Change propagation over a grounded knowledge base: DRed retraction
    and incremental re-expansion.

    The paper's pipeline is batch: extract, ground to a fixpoint, build
    [TΦ], infer.  This module keeps a grounded store {e live} across
    epochs of updates without re-running the batch pipeline:

    - {!retract} removes facts with delete–rederive (DRed, Gupta,
      Mumick & Subrahmanian, SIGMOD 1993): first {e overdelete} the
      retracted facts' consequence cone — computed semi-naively with the
      same M1..M6 partition queries that ground inserts, the
      frontier-of-deleted playing the role of the delta — then
      {e rederive} the overdeleted facts that still have an alternative
      derivation (a pure walk of the {!Provenance} index; no queries),
      and finally {e splice} the factor graph in place ([Fgraph.retain]),
      keeping surviving fact ids and factor order stable so marginals
      remain comparable across the retraction.
    - {!ingest} inserts a batch: semi-naive closure from the batch as the
      initial delta, then the delta factor queries
      ([Queries.ground_factors_delta]) extend [TΦ] with exactly the new
      ground-clause instances, plus singletons for new base facts.
    - {!retract_rules} / {!extend_rules} change the rule set [H] and
      repair facts and factors accordingly.
    - {!enforce_constraints} applies the semantic constraints Ω as a
      retraction (with banned keys), so a violation's already-derived
      consequences leave both [TΠ] and [TΦ] — the session-mode
      replacement for the in-closure constraint hook.

    All operations emit [incremental.*] counters and a
    [retract > overdelete > M1..M6 / rederive / splice] (resp.
    [ingest > closure / factors]) span tree through the attached [Obs]
    context. *)

type t

(** [create ?obs kb graph] wraps an already-grounded knowledge base: [kb]
    closed under its rules and [graph] the matching factor graph (as
    produced by [Ground.run] / [Engine.expand]).  Builds the provenance
    index and prepares the partition query plans. *)
val create : ?obs:Obs.t -> Kb.Gamma.t -> Factor_graph.Fgraph.t -> t

val kb : t -> Kb.Gamma.t
val graph : t -> Factor_graph.Fgraph.t
val provenance : t -> Provenance.t

(** [refresh_rules t] re-prepares the partition plans after the rule set
    changed behind this module's back (prefer {!extend_rules} /
    {!retract_rules}). *)
val refresh_rules : t -> unit

(** [local_adjacency t] exposes the maintained provenance index as a
    [Grounding.Local] adjacency (syncing it to the graph first), so live
    sessions answer point queries by walking the existing fact↔factor
    index instead of re-deriving the neighbourhood backward from the rule
    tables. *)
val local_adjacency : t -> Grounding.Local.adjacency

(** Outcome of one retraction epoch. *)
type retract_stats = {
  requested : int;  (** seed facts actually present and retracted *)
  cone : int;  (** size of the overdeleted candidate cone (seeds incl.) *)
  overdeleted : int;  (** facts physically removed from [TΠ] *)
  rederived : int;  (** cone facts rescued by an alternative derivation *)
  demoted : int;
      (** retracted {e base} facts that survived as inferred facts: an
          alternative derivation remains, so the fact keeps its id but
          loses its singleton factor and extraction weight *)
  factors_removed : int;  (** factor rows spliced out of [TΦ] *)
  empty_cone : bool;
      (** no retracted fact supported any derivation — the M-query
          machinery was skipped entirely *)
  deleted_ids : int list;  (** the removed fact ids, discovery order *)
  touched_ids : int list;
      (** every fact whose support changed (cone order): deleted,
          rederived and demoted — the set whose marginals a warm-started
          refresh must re-randomize *)
}

val no_retract : retract_stats

(** Outcome of one insert / rule-change epoch. *)
type ingest_stats = {
  inserted : int;  (** genuinely new base facts *)
  promoted : int;
      (** extractions whose key already existed as an {e inferred} fact:
          the fact keeps its id and gains the extraction weight and a
          singleton factor *)
  derived : int;  (** facts added by the incremental closure *)
  new_factors : int;  (** factor rows appended to [TΦ] *)
  closure_iterations : int;
  converged : bool;
  new_ids : int list;
      (** ids of inserted, promoted and derived facts, ascending (the
          epoch's touched set) *)
}

val no_ingest : ingest_stats

(** [retract ?ban t ids] removes the given facts and repairs [TΠ]/[TΦ]
    with delete–rederive.  Facts in the overdeleted cone that retain an
    alternative derivation survive; retracted base facts with an
    alternative derivation are demoted to inferred.  With [ban = true]
    (default [false]) the retracted facts' keys are banned — they can
    never be rederived now nor re-derived by a later epoch — while the
    rest of the cone stays legitimately re-derivable.  Unknown ids are
    ignored. *)
val retract : ?ban:bool -> t -> int list -> retract_stats

(** [retract_keys ?ban t keys] is {!retract} after resolving the
    [(r, x, c1, y, c2)] keys. *)
val retract_keys : ?ban:bool -> t -> (int * int * int * int * int) list -> retract_stats

(** [retract_rules t ~remove] deletes every rule satisfying [remove] from
    [H], removes exactly their ground instances from [TΦ] (multiset
    subtraction, so instances shared with surviving identical rules are
    kept), and DReds the facts those instances derived under the
    remaining rule set. *)
val retract_rules : t -> remove:(Mln.Clause.t -> bool) -> retract_stats

(** [enforce_constraints t] applies Ω as a banned retraction: every fact
    whose constrained position holds a violating (entity, class) pair is
    retracted through DRed together with its no-longer-supported
    consequences.  Returns [(violations found, retraction stats)].  One
    pass reaches a fixpoint — deleting facts only shrinks the groups Ω
    counts. *)
val enforce_constraints : t -> int * retract_stats

(** [ingest ?max_iterations t facts] inserts a batch of weighted
    extractions [(r, x, c1, y, c2, w)], runs the incremental closure with
    the batch as the initial delta, and extends [TΦ] with the new ground
    instances and singletons.  Banned keys are silently skipped;
    extractions for existing inferred facts promote them (see
    {!ingest_stats.promoted}); duplicate extractions of base facts are
    no-ops. *)
val ingest :
  ?max_iterations:int -> t -> (int * int * int * int * int * float) list ->
  ingest_stats

(** [extend_rules ?max_iterations t rules] appends deductive rules to [H]
    and re-expands: a naive closure (new rules fire on pairs of old
    facts, so there is no delta to restrict to), then the factor
    extension — one batch pass with just the new rules over all of [TΠ],
    plus the delta factor queries with the {e previous} rule set over the
    facts the closure added.  Together these append exactly the
    instances a from-scratch grounding of the grown store would add. *)
val extend_rules : ?max_iterations:int -> t -> Mln.Clause.t list -> ingest_stats

(** [reexpand ?max_iterations t] is {!extend_rules} with no new rules: a
    consistency pass that derives anything the last epochs left out (a
    no-op returning [converged = true], [derived = 0] on a closed
    store). *)
val reexpand : ?max_iterations:int -> t -> ingest_stats
