(** The provenance index: fact → factor positions, kept incrementally.

    [Factor_graph.Lineage] answers the same questions from a from-scratch
    batch build over factor {e tuples}; change propagation needs the
    factor {e positions} too (so the graph can be spliced in place), and
    needs the index to survive epochs of appends and retractions without
    rebuilding.  This index maps each fact id to

    - the clause factors deriving it ({!derivations} — factors with the
      fact as head),
    - the clause factors it supports ({!supports_of} — factors with the
      fact in the body), and
    - its singleton (prior) factor, when the fact is an extracted base
      fact ({!singleton_of}).

    Presence of a singleton is the authoritative base-vs-inferred marker:
    the weight column of [TΠ] is unreliable for this once
    [Engine.store_marginals] has written probabilities into it.

    Keep the index current with {!sync} after appending factors and
    {!remap} after [Fgraph.retain] removed some. *)

type t

(** [create ()] is an empty index (synced to an empty graph). *)
val create : unit -> t

(** [of_graph g] is [create] followed by [sync _ g]. *)
val of_graph : Factor_graph.Fgraph.t -> t

(** [sync t g] indexes the factors appended to [g] since the last sync
    (all of them on a fresh index).  [g] must only have grown by appends
    since then. *)
val sync : t -> Factor_graph.Fgraph.t -> unit

(** [synced_factors t] is the number of factors currently indexed. *)
val synced_factors : t -> int

(** [derivations t id] lists the clause factors with head [id] (most
    recently appended first). *)
val derivations : t -> int -> int list

(** [supports_of t id] lists the clause factors with [id] in the body
    (each factor once, even when [id] fills both body slots). *)
val supports_of : t -> int -> int list

(** [iter_derivations t id f] applies [f] to every clause-factor position
    with head [id] — {!derivations} without building (or defaulting) a
    list, for hot walk loops. *)
val iter_derivations : t -> int -> (int -> unit) -> unit

(** [iter_supports t id f] applies [f] to every clause-factor position with
    [id] in the body; allocation-free like {!iter_derivations}. *)
val iter_supports : t -> int -> (int -> unit) -> unit

(** [has_supports t id] is [true] iff [id] appears in some clause body —
    [supports_of t id <> []] without materializing the list. *)
val has_supports : t -> int -> bool

(** [singleton_of t id] is the position of [id]'s singleton factor. *)
val singleton_of : t -> int -> int option

(** [is_base t id] is [true] iff the fact has a singleton factor — i.e. it
    carries extraction (prior) support. *)
val is_base : t -> int -> bool

(** [remap t mapping] rewrites every stored factor position through
    [mapping] (as returned by [Fgraph.retain]): positions mapped to [-1]
    are dropped, facts left with no entries disappear from the index.
    @raise Invalid_argument when the index is not synced to exactly
    [Array.length mapping] factors. *)
val remap : t -> int array -> unit
