module Fgraph = Factor_graph.Fgraph

type t = {
  mutable synced : int;
  mutable derives : (int, int list) Hashtbl.t;
  mutable supports : (int, int list) Hashtbl.t;
  mutable singleton : (int, int) Hashtbl.t;
}

let create () =
  {
    synced = 0;
    derives = Hashtbl.create 256;
    supports = Hashtbl.create 256;
    singleton = Hashtbl.create 256;
  }

let push tbl k v =
  Hashtbl.replace tbl k
    (v :: Option.value ~default:[] (Hashtbl.find_opt tbl k))

let index_factor t f (i1, i2, i3, _w) =
  if i2 = Fgraph.null && i3 = Fgraph.null then
    Hashtbl.replace t.singleton i1 f
  else begin
    push t.derives i1 f;
    if i2 <> Fgraph.null then push t.supports i2 f;
    if i3 <> Fgraph.null && i3 <> i2 then push t.supports i3 f
  end

let sync t g =
  let n = Fgraph.size g in
  for f = t.synced to n - 1 do
    index_factor t f (Fgraph.factor g f)
  done;
  t.synced <- n

let of_graph g =
  let t = create () in
  sync t g;
  t

let synced_factors t = t.synced

let derivations t id =
  Option.value ~default:[] (Hashtbl.find_opt t.derives id)

let supports_of t id =
  Option.value ~default:[] (Hashtbl.find_opt t.supports id)

(* Allocation-free variants of {!derivations} / {!supports_of}: no [Some]
   wrapper, no default list — the hot path of the DRed rederive fixpoint
   and of the local grounding walk. *)
let iter_derivations t id f =
  match Hashtbl.find t.derives id with
  | fs -> List.iter f fs
  | exception Not_found -> ()

let iter_supports t id f =
  match Hashtbl.find t.supports id with
  | fs -> List.iter f fs
  | exception Not_found -> ()

let has_supports t id = Hashtbl.mem t.supports id

let singleton_of t id = Hashtbl.find_opt t.singleton id
let is_base t id = Hashtbl.mem t.singleton id

let remap t mapping =
  if t.synced <> Array.length mapping then
    invalid_arg "Provenance.remap: index out of sync with the graph";
  let keep f = if mapping.(f) >= 0 then Some mapping.(f) else None in
  let rebuild_list tbl =
    let nt = Hashtbl.create (max 16 (Hashtbl.length tbl)) in
    Hashtbl.iter
      (fun id fs ->
        match List.filter_map keep fs with
        | [] -> ()
        | fs' -> Hashtbl.replace nt id fs')
      tbl;
    nt
  in
  let rebuild_one tbl =
    let nt = Hashtbl.create (max 16 (Hashtbl.length tbl)) in
    Hashtbl.iter
      (fun id f -> match keep f with Some f' -> Hashtbl.replace nt id f' | None -> ())
      tbl;
    nt
  in
  t.derives <- rebuild_list t.derives;
  t.supports <- rebuild_list t.supports;
  t.singleton <- rebuild_one t.singleton;
  t.synced <- Array.fold_left (fun n m -> if m >= 0 then n + 1 else n) 0 mapping
