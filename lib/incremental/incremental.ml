(** Live maintenance of a grounded knowledge base: the provenance index
    and the DRed delete–rederive / incremental re-expansion engine. *)

module Provenance = Provenance
module Dred = Dred
