module Gamma = Kb.Gamma
module Storage = Kb.Storage
module Funcon = Kb.Funcon
module Loader = Kb.Loader
module Table = Relational.Table

let check_int = Alcotest.(check int)

(* --- storage --- *)

let test_storage_add_dedup () =
  let s = Storage.create () in
  (match Storage.add s ~r:1 ~x:2 ~c1:3 ~y:4 ~c2:5 ~w:0.5 with
  | `Added id -> check_int "first id" 0 id
  | `Dup _ -> Alcotest.fail "unexpected dup");
  (match Storage.add s ~r:1 ~x:2 ~c1:3 ~y:4 ~c2:5 ~w:0.9 with
  | `Dup id -> check_int "dup id" 0 id
  | `Added _ -> Alcotest.fail "expected dup");
  check_int "size" 1 (Storage.size s)

let test_storage_find () =
  let s = Storage.create () in
  ignore (Storage.add s ~r:1 ~x:2 ~c1:3 ~y:4 ~c2:5 ~w:0.5);
  Alcotest.(check (option int)) "found" (Some 0)
    (Storage.find s ~r:1 ~x:2 ~c1:3 ~y:4 ~c2:5);
  Alcotest.(check (option int)) "class matters" None
    (Storage.find s ~r:1 ~x:2 ~c1:9 ~y:4 ~c2:5)

let test_storage_merge_new () =
  let s = Storage.create () in
  ignore (Storage.add s ~r:1 ~x:1 ~c1:1 ~y:1 ~c2:1 ~w:0.5);
  let t = Table.create ~name:"new" [| "R"; "x"; "C1"; "y"; "C2" |] in
  Table.append t [| 1; 1; 1; 1; 1 |] (* dup *);
  Table.append t [| 2; 1; 1; 1; 1 |];
  Table.append t [| 2; 1; 1; 1; 1 |] (* dup within batch *);
  check_int "added" 1 (Storage.merge_new s t);
  check_int "size" 2 (Storage.size s);
  (* Merged facts have null weights (inferred). *)
  let nulls = ref 0 in
  Storage.iter
    (fun ~id:_ ~r:_ ~x:_ ~c1:_ ~y:_ ~c2:_ ~w ->
      if Table.is_null_weight w then incr nulls)
    s;
  check_int "inferred null weight" 1 !nulls

let test_storage_delete_preserves_ids () =
  let s = Storage.create () in
  for i = 0 to 9 do
    ignore (Storage.add s ~r:i ~x:0 ~c1:0 ~y:0 ~c2:0 ~w:1.0)
  done;
  let removed = Storage.delete_where s (fun t row -> Table.get t row 1 mod 2 = 0) in
  check_int "removed" 5 removed;
  check_int "size" 5 (Storage.size s);
  (* Surviving facts keep their ids, and new facts get fresh ids. *)
  Alcotest.(check (option int)) "id stable" (Some 3)
    (Storage.find s ~r:3 ~x:0 ~c1:0 ~y:0 ~c2:0);
  (match Storage.add s ~r:100 ~x:0 ~c1:0 ~y:0 ~c2:0 ~w:1.0 with
  | `Added id -> check_int "fresh id" 10 id
  | `Dup _ -> Alcotest.fail "dup");
  Alcotest.(check (option int)) "row_of_id after delete" None
    (Storage.row_of_id s 0)

let test_storage_batched_delete () =
  let s = Storage.create () in
  for i = 0 to 19 do
    ignore (Storage.add s ~r:i ~x:0 ~c1:0 ~y:0 ~c2:0 ~w:1.0)
  done;
  check_int "no rebuilds yet" 0 (Storage.index_rebuilds s);
  (* One batch of tombstones costs exactly one compaction + rebuild. *)
  let removed = Storage.delete_ids s [ 0; 2; 4; 6; 8; 10 ] in
  check_int "batch removed" 6 removed;
  check_int "one rebuild for the whole batch" 1 (Storage.index_rebuilds s);
  (* A pending tombstone hides the fact from [find] but keeps the row. *)
  Storage.mark_deleted s 1;
  check_int "pending" 1 (Storage.pending_deletes s);
  Alcotest.(check (option int)) "tombstoned fact invisible to find" None
    (Storage.find s ~r:1 ~x:0 ~c1:0 ~y:0 ~c2:0);
  check_int "row still physical" 14 (Storage.size s);
  check_int "still one rebuild" 1 (Storage.index_rebuilds s);
  check_int "flush removes it" 1 (Storage.flush_deletes s);
  check_int "second rebuild" 2 (Storage.index_rebuilds s);
  check_int "empty flush is free" 0 (Storage.flush_deletes s);
  check_int "no rebuild on empty flush" 2 (Storage.index_rebuilds s);
  (* delete_where is one batch too. *)
  let removed = Storage.delete_where s (fun t row -> Table.get t row 1 < 9) in
  check_int "predicate batch" 3 removed;
  check_int "one more rebuild" 3 (Storage.index_rebuilds s);
  (* ban_id bans a live fact's key without deleting it. *)
  Storage.ban_id s 11;
  check_int "fact 11 still present" 10 (Storage.size s);
  Alcotest.(check bool) "key banned" true
    (Storage.is_banned s ~r:11 ~x:0 ~c1:0 ~y:0 ~c2:0)

let test_storage_copy_independent () =
  let s = Storage.create () in
  ignore (Storage.add s ~r:1 ~x:1 ~c1:1 ~y:1 ~c2:1 ~w:1.0);
  let c = Storage.copy s in
  ignore (Storage.add c ~r:2 ~x:1 ~c1:1 ~y:1 ~c2:1 ~w:1.0);
  check_int "original unchanged" 1 (Storage.size s);
  check_int "copy grew" 2 (Storage.size c)

let test_storage_merge_qcheck =
  Tutil.qcheck_case "merge_new = set union on keys"
    QCheck.(pair (list (pair (int_bound 4) (int_bound 4)))
              (list (pair (int_bound 4) (int_bound 4))))
    (fun (base, extra) ->
      let s = Storage.create () in
      List.iter (fun (r, x) -> ignore (Storage.add s ~r ~x ~c1:0 ~y:0 ~c2:0 ~w:1.0)) base;
      let t = Table.create ~name:"n" [| "R"; "x"; "C1"; "y"; "C2" |] in
      List.iter (fun (r, x) -> Table.append t [| r; x; 0; 0; 0 |]) extra;
      ignore (Storage.merge_new s t);
      let expected =
        List.sort_uniq compare (List.map (fun (r, x) -> (r, x)) (base @ extra))
      in
      Storage.size s = List.length expected)

(* --- gamma --- *)

let test_gamma_membership_and_signatures () =
  let kb = Gamma.create () in
  let id =
    Gamma.add_fact_by_name kb ~r:"born_in" ~x:"ruth" ~c1:"W" ~y:"nyc" ~c2:"C"
      ~w:0.96
  in
  check_int "fact id" 0 id;
  let w = Gamma.cls kb "W" and c = Gamma.cls kb "C" in
  let ruth = Gamma.entity kb "ruth" and nyc = Gamma.entity kb "nyc" in
  Alcotest.(check bool) "ruth in W" true (Gamma.member kb ~cls:w ~entity:ruth);
  Alcotest.(check bool) "nyc in C" true (Gamma.member kb ~cls:c ~entity:nyc);
  Alcotest.(check bool) "ruth not in C" false (Gamma.member kb ~cls:c ~entity:ruth);
  check_int "TR rows" 1 (Table.nrows (Gamma.tr kb));
  (* Idempotent declarations. *)
  ignore
    (Gamma.add_fact_by_name kb ~r:"born_in" ~x:"ruth" ~c1:"W" ~y:"bk" ~c2:"C"
       ~w:0.93);
  check_int "TR rows unchanged" 1 (Table.nrows (Gamma.tr kb));
  check_int "TC rows" 3 (Table.nrows (Gamma.tc kb))

let test_gamma_subclass () =
  let kb = Gamma.create () in
  let city = Gamma.cls kb "City" and place = Gamma.cls kb "Place" in
  let a = Gamma.entity kb "a" and b = Gamma.entity kb "b" in
  Gamma.declare_member kb ~cls:city ~entity:a;
  Gamma.declare_member kb ~cls:place ~entity:a;
  Gamma.declare_member kb ~cls:place ~entity:b;
  Alcotest.(check bool) "City ⊆ Place" true (Gamma.subclass kb ~sub:city ~super:place);
  Alcotest.(check bool) "Place ⊄ City" false (Gamma.subclass kb ~sub:place ~super:city)

let test_gamma_stats () =
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  let s = Gamma.stats kb in
  check_int "entities" 3 s.Gamma.n_entities;
  check_int "classes" 3 s.Gamma.n_classes;
  check_int "relations" 4 s.Gamma.n_relations;
  check_int "rules" 6 s.Gamma.n_rules;
  check_int "facts" 2 s.Gamma.n_facts

let test_gamma_rejects_hard_rule () =
  let kb = Gamma.create () in
  let c =
    Mln.Parse.parse_rule
      ~intern_rel:(Gamma.relation kb)
      ~intern_cls:(Gamma.cls kb)
      "inf p(x:A, y:B) :- q(x, y)"
  in
  Alcotest.check_raises "hard rules rejected"
    (Invalid_argument "Gamma.add_rule: hard rules belong in Omega") (fun () ->
      Gamma.add_rule kb c)

(* --- funcon --- *)

let test_funcon_table_roundtrip () =
  let cs =
    [
      Funcon.make ~rel:3 ~ftype:Funcon.Type_I ~degree:1;
      Funcon.make ~rel:7 ~ftype:Funcon.Type_II ~degree:4;
    ]
  in
  let t = Funcon.to_table cs in
  check_int "rows" 2 (Table.nrows t);
  Alcotest.(check bool) "roundtrip" true (Funcon.of_table t = cs)

let test_funcon_rejects_degree_zero () =
  Alcotest.check_raises "degree 0"
    (Invalid_argument "Funcon.make: degree must be >= 1") (fun () ->
      ignore (Funcon.make ~rel:0 ~ftype:Funcon.Type_I ~degree:0))

(* --- loader --- *)

let test_loader_facts () =
  let kb = Gamma.create () in
  let n =
    Loader.load_facts kb
      [
        "# comment";
        "born_in\truth\tW\tnyc\tC\t0.96";
        "born_in\truth\tW\tbk\tP\t0.93";
        "born_in\truth\tW\tnyc\tC\t0.96";
        "";
      ]
  in
  check_int "loaded" 2 n;
  check_int "facts" 2 (Storage.size (Gamma.pi kb))

let test_loader_rules_and_constraints () =
  let kb = Gamma.create () in
  check_int "rules" 1
    (Loader.load_rules kb [ "1.0 p(x:A, y:B) :- q(x, y)" ]);
  check_int "constraints" 2
    (Loader.load_constraints kb [ "born_in\tI\t1"; "capital_of\tII\t2" ]);
  match Gamma.omega kb with
  | [ a; b ] ->
    Alcotest.(check bool) "type I" true (a.Funcon.ftype = Funcon.Type_I);
    Alcotest.(check bool) "deg" true (b.Funcon.degree = 2)
  | _ -> Alcotest.fail "expected two constraints"

let test_loader_bad_input () =
  let kb = Gamma.create () in
  (match Loader.load_facts kb [ "only\tthree\tfields" ] with
  | _ -> Alcotest.fail "expected Load_error"
  | exception Loader.Load_error _ -> ());
  (match Loader.load_facts kb [ "r\tx\tA\ty\tB\tnotafloat" ] with
  | _ -> Alcotest.fail "expected Load_error"
  | exception Loader.Load_error _ -> ());
  match Loader.load_constraints kb [ "r\tIII\t1" ] with
  | _ -> Alcotest.fail "expected Load_error"
  | exception Loader.Load_error _ -> ()

let test_loader_save_load_roundtrip () =
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  ignore (Grounding.Ground.run kb);
  let path = Filename.temp_file "probkb" ".tsv" in
  let oc = open_out path in
  Loader.save_facts kb oc;
  close_out oc;
  let kb2 = Gamma.create () in
  let n = Loader.load_facts_file kb2 path in
  Sys.remove path;
  check_int "all facts reloaded" (Storage.size (Gamma.pi kb)) n;
  (* Inferred facts keep their null weight through the roundtrip. *)
  let nulls s =
    let n = ref 0 in
    Storage.iter
      (fun ~id:_ ~r:_ ~x:_ ~c1:_ ~y:_ ~c2:_ ~w ->
        if Table.is_null_weight w then incr n)
      s;
    !n
  in
  check_int "null weights preserved" (nulls (Gamma.pi kb)) (nulls (Gamma.pi kb2))

(* --- query --- *)

let query_fixture () =
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  ignore (Grounding.Ground.run kb);
  (kb, Kb.Query.prepare (Gamma.pi kb))

let test_query_lookup () =
  let kb, q = query_fixture () in
  check_int "snapshot size" 7 (Kb.Query.size q);
  let born = Gamma.relation kb "born_in" in
  check_int "by relation" 2 (List.length (Kb.Query.lookup q ~r:born ()));
  let rg = Gamma.entity kb "Ruth Gruber" in
  check_int "by relation+subject" 2
    (List.length (Kb.Query.lookup q ~r:born ~x:rg ()));
  let nyc = Gamma.entity kb "New York City" in
  check_int "fully bound" 1
    (List.length (Kb.Query.lookup q ~r:born ~x:rg ~y:nyc ()));
  check_int "unbound = all" 7 (List.length (Kb.Query.lookup q ()));
  check_int "no match" 0
    (List.length (Kb.Query.lookup q ~r:born ~x:nyc ()))

let test_query_about () =
  let kb, q = query_fixture () in
  let brooklyn = Gamma.entity kb "Brooklyn" in
  (* born_in, live_in, grow_up_in (as object) + located_in (as subject). *)
  check_int "mentions of Brooklyn" 4 (List.length (Kb.Query.about q brooklyn))

let test_query_top_k () =
  let kb, q = query_fixture () in
  let top = Kb.Query.top_k q ~k:2 () in
  check_int "k results" 2 (List.length top);
  (* The two extraction-weighted facts outrank the unscored inferred ones. *)
  Alcotest.(check (float 1e-9)) "best" 0.96 (List.hd top).Kb.Query.weight;
  let born = Gamma.relation kb "born_in" in
  check_int "per-relation top" 2
    (List.length (Kb.Query.top_k q ~r:born ~k:10 ()))

let test_query_relations () =
  let kb, q = query_fixture () in
  let rels = Kb.Query.relations q in
  check_int "four relations" 4 (List.length rels);
  let born = Gamma.relation kb "born_in" in
  check_int "count born_in" 2 (Kb.Query.count q ~r:born);
  (* Counts sum to the store size. *)
  check_int "counts sum" 7 (List.fold_left (fun a (_, n) -> a + n) 0 rels)

let () =
  Alcotest.run "kb"
    [
      ( "storage",
        [
          Alcotest.test_case "add dedup" `Quick test_storage_add_dedup;
          Alcotest.test_case "find" `Quick test_storage_find;
          Alcotest.test_case "merge_new" `Quick test_storage_merge_new;
          Alcotest.test_case "delete preserves ids" `Quick
            test_storage_delete_preserves_ids;
          Alcotest.test_case "batched delete" `Quick
            test_storage_batched_delete;
          Alcotest.test_case "copy" `Quick test_storage_copy_independent;
          test_storage_merge_qcheck;
        ] );
      ( "gamma",
        [
          Alcotest.test_case "membership/signatures" `Quick
            test_gamma_membership_and_signatures;
          Alcotest.test_case "subclass" `Quick test_gamma_subclass;
          Alcotest.test_case "stats" `Quick test_gamma_stats;
          Alcotest.test_case "hard rules rejected" `Quick
            test_gamma_rejects_hard_rule;
        ] );
      ( "funcon",
        [
          Alcotest.test_case "table roundtrip" `Quick test_funcon_table_roundtrip;
          Alcotest.test_case "degree >= 1" `Quick test_funcon_rejects_degree_zero;
        ] );
      ( "query",
        [
          Alcotest.test_case "lookup" `Quick test_query_lookup;
          Alcotest.test_case "about" `Quick test_query_about;
          Alcotest.test_case "top_k" `Quick test_query_top_k;
          Alcotest.test_case "relations" `Quick test_query_relations;
        ] );
      ( "loader",
        [
          Alcotest.test_case "facts" `Quick test_loader_facts;
          Alcotest.test_case "rules/constraints" `Quick
            test_loader_rules_and_constraints;
          Alcotest.test_case "bad input" `Quick test_loader_bad_input;
          Alcotest.test_case "save/load roundtrip" `Quick
            test_loader_save_load_roundtrip;
        ] );
    ]
