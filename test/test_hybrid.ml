(* Treewidth-aware hybrid inference: Triangulate / Jtree / Hybrid
   dispatch.  The load-bearing properties are (1) junction-tree variable
   elimination agrees with enumeration, (2) the dispatcher is
   bit-identical to [Exact] wherever it enumerates, and (3) hybrid
   marginals are bit-identical at any pool size. *)

module Fgraph = Factor_graph.Fgraph

let compile_graph build =
  let g = Fgraph.create () in
  build g;
  Fgraph.compile g

let the_component c =
  match Inference.Decompose.components c with
  | [| comp |] -> comp
  | comps -> Alcotest.failf "expected one component, got %d" (Array.length comps)

let max_abs_diff a b =
  let m = ref 0. in
  Array.iteri (fun i x -> m := Float.max !m (Float.abs (x -. b.(i)))) a;
  !m

(* --- induced width --- *)

let test_width_closed_forms () =
  let width build = Inference.Triangulate.width_of (the_component (compile_graph build)) in
  Alcotest.(check int) "single var" 0
    (width (fun g -> Fgraph.add_singleton g ~i:0 ~w:0.5));
  Alcotest.(check int) "path" 1
    (width (fun g ->
         for i = 0 to 8 do
           Fgraph.add_clause g ~i1:i ~i2:(i + 1) ~w:0.5 ()
         done));
  Alcotest.(check int) "star" 1
    (width (fun g ->
         for i = 1 to 9 do
           Fgraph.add_clause g ~i1:0 ~i2:i ~w:0.5 ()
         done));
  Alcotest.(check int) "cycle" 2
    (width (fun g ->
         for i = 0 to 5 do
           Fgraph.add_clause g ~i1:i ~i2:((i + 1) mod 6) ~w:0.5 ()
         done));
  Alcotest.(check int) "K4" 3
    (width (fun g ->
         for i = 0 to 3 do
           for j = i + 1 to 3 do
             Fgraph.add_clause g ~i1:i ~i2:j ~w:0.5 ()
           done
         done))

let test_width_cap_bails_early () =
  (* A 10-clique has width 9; with cap 3 the simulation must stop and
     report the lower bound cap + 1. *)
  let c =
    compile_graph (fun g ->
        for i = 0 to 9 do
          for j = i + 1 to 9 do
            Fgraph.add_clause g ~i1:i ~i2:j ~w:0.2 ()
          done
        done)
  in
  let comp = the_component c in
  Alcotest.(check int) "capped report" 4
    (Inference.Triangulate.width_of ~cap:3 comp);
  Alcotest.(check int) "uncapped is exact" 9
    (Inference.Triangulate.width_of comp)

(* --- junction tree vs enumeration --- *)

(* Random tree-shaped component: var i > 0 hangs off a random earlier
   var, every var gets a singleton prior.  Width 1, enumerable. *)
let random_tree_graph rng n =
  compile_graph (fun g ->
      for i = 0 to n - 1 do
        Fgraph.add_singleton g ~i ~w:(Random.State.float rng 3.0 -. 1.5)
      done;
      for i = 1 to n - 1 do
        let p = Random.State.int rng i in
        let w = Random.State.float rng 2.0 in
        if Random.State.bool rng then Fgraph.add_clause g ~i1:i ~i2:p ~w ()
        else Fgraph.add_clause g ~i1:p ~i2:i ~w ()
      done)

let test_jtree_matches_enumeration =
  Tutil.qcheck_case ~count:80 "jtree = enumeration on random trees"
    QCheck.(pair (int_range 1 14) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Tutil.rng (seed + (7919 * n)) in
      let comp = the_component (random_tree_graph rng n) in
      let exact = Inference.Exact.enumerate comp in
      let ve = Inference.Jtree.solve comp in
      max_abs_diff exact ve < 1e-9)

let test_jtree_matches_enumeration_loopy () =
  (* Cycles and a small clique: width 2-3, still enumerable. *)
  List.iter
    (fun seed ->
      let rng = Tutil.rng seed in
      let c =
        compile_graph (fun g ->
            for i = 0 to 9 do
              Fgraph.add_singleton g ~i ~w:(Random.State.float rng 2.0 -. 1.0)
            done;
            for i = 0 to 9 do
              Fgraph.add_clause g ~i1:i ~i2:((i + 1) mod 10)
                ~w:(Random.State.float rng 1.5) ()
            done;
            (* a chord and a triangle factor *)
            Fgraph.add_clause g ~i1:0 ~i2:5 ~w:0.7 ();
            Fgraph.add_clause g ~i1:2 ~i2:4 ~i3:6 ~w:0.9 ())
      in
      let comp = the_component c in
      let d = max_abs_diff (Inference.Exact.enumerate comp) (Inference.Jtree.solve comp) in
      if d > 1e-9 then Alcotest.failf "seed %d: VE deviates by %g" seed d)
    [ 1; 2; 3; 4; 5 ]

let test_jtree_scales_past_enumeration () =
  (* A 400-variable chain: far beyond the enumeration cap, width 1.  BP
     is exact on trees, so it cross-checks VE. *)
  let c =
    compile_graph (fun g ->
        for i = 0 to 399 do
          Fgraph.add_singleton g ~i ~w:((float_of_int (i mod 7) /. 3.) -. 1.)
        done;
        for i = 0 to 398 do
          Fgraph.add_clause g ~i1:(i + 1) ~i2:i ~w:0.8 ()
        done)
  in
  let ve = Inference.Jtree.marginals c in
  let bp, st = Inference.Bp.marginals c in
  Alcotest.(check bool) "BP converged" true st.Inference.Bp.converged;
  let d = max_abs_diff ve bp in
  Alcotest.(check bool)
    (Printf.sprintf "VE matches BP on the chain (%.2e)" d)
    true (d < 1e-5)

let test_jtree_deterministic () =
  let rng = Tutil.rng 99 in
  let c = random_tree_graph rng 200 in
  let a = Inference.Jtree.marginals c in
  let b = Inference.Jtree.marginals c in
  Alcotest.(check bool) "bit-identical" true (a = b)

let test_jtree_hub_underflow () =
  (* Regression: a hub with thousands of conflicting leaf factors has
     induced width 1, but the hub clique's belief is a product of ~2000
     message tables.  Without per-combine renormalization of the running
     products the belief entries decay like p^k, underflow to an
     all-zero table, and every marginal comes out NaN (0/0). *)
  let n = 2001 in
  let leaf_prior i = if i mod 3 = 0 then 0.4 else -0.3 in
  let clause_w i = if i mod 2 = 0 then 1.5 else -1.5 in
  let c =
    compile_graph (fun g ->
        for i = 1 to n - 1 do
          Fgraph.add_singleton g ~i ~w:(leaf_prior i);
          Fgraph.add_clause g ~i1:0 ~i2:i ~w:(clause_w i) ()
        done)
  in
  let marg = Inference.Jtree.marginals c in
  Array.iteri
    (fun v p ->
      if not (Float.is_finite p && 0. <= p && p <= 1.) then
        Alcotest.failf "var %d: marginal %g is not a probability" v p)
    marg;
  (* The conflict nets out against the hub: its log-odds fall linearly
     in n, so P(hub) ~ e^-cn is indistinguishable from 0 here and every
     leaf has the closed-form marginal P(leaf | hub = 0) =
     e^prior / (e^prior + e^w) — with the hub false, the implication is
     satisfied exactly when the leaf body is false.  (BP is no oracle at
     this scale: its hub product underflows the same way and it reports
     a "converged" 0.5.) *)
  let p v = marg.(Hashtbl.find c.Fgraph.var_of_id v) in
  Alcotest.(check bool) "hub settles at 0" true (p 0 < 1e-9);
  for i = 1 to n - 1 do
    let expected =
      exp (leaf_prior i) /. (exp (leaf_prior i) +. exp (clause_w i))
    in
    if Float.abs (p i -. expected) > 1e-9 then
      Alcotest.failf "leaf %d: %.12f should be %.12f" i (p i) expected
  done

let test_jtree_rejects_high_width () =
  let c =
    compile_graph (fun g ->
        for i = 0 to 9 do
          for j = i + 1 to 9 do
            Fgraph.add_clause g ~i1:i ~i2:j ~w:0.2 ()
          done
        done)
  in
  match Inference.Jtree.marginals ~max_width:3 c with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* --- the dispatcher --- *)

let random_graph seed nvars nfactors =
  let rng = Tutil.rng seed in
  compile_graph (fun g ->
      for i = 0 to nvars - 1 do
        Fgraph.add_singleton g ~i ~w:(Random.State.float rng 3.0 -. 1.5)
      done;
      for _ = 1 to nfactors do
        let i1 = Random.State.int rng nvars
        and i2 = Random.State.int rng nvars
        and i3 = Random.State.int rng nvars in
        let w = Random.State.float rng 2.0 in
        if Random.State.bool rng then Fgraph.add_clause g ~i1 ~i2 ~w ()
        else Fgraph.add_clause g ~i1 ~i2 ~i3 ~w ()
      done)

let test_hybrid_bit_identical_to_exact () =
  (* Every component fits under the enumeration cutoff, so the
     dispatcher must reproduce [Exact.marginals] bit for bit. *)
  List.iter
    (fun seed ->
      let c = random_graph seed Inference.Hybrid.enum_cutoff 14 in
      let exact = Inference.Exact.marginals c in
      let marg, report = Inference.Hybrid.solve c in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: bitwise equal" seed)
        true (marg = exact);
      Alcotest.(check int) "nothing sampled" 0
        report.Inference.Hybrid.sampled_components;
      Alcotest.(check (float 1e-12)) "all exact" 1.0
        (Inference.Hybrid.exact_fraction report))
    [ 10; 11; 12 ]

let test_hybrid_forced_elimination () =
  (* exact_max_vars = 0 shuts the enumerator off: low-width components
     must route through the junction tree and still be exact. *)
  let c = random_tree_graph (Tutil.rng 17) 18 in
  let options =
    { Inference.Hybrid.default_options with exact_max_vars = 0 }
  in
  let marg, report = Inference.Hybrid.solve ~options c in
  Alcotest.(check int) "no enumeration" 0
    report.Inference.Hybrid.enumerated_components;
  Alcotest.(check bool) "eliminated instead" true
    (report.Inference.Hybrid.eliminated_components > 0);
  Alcotest.(check (float 1e-12)) "still all exact" 1.0
    (Inference.Hybrid.exact_fraction report);
  let d = max_abs_diff marg (Inference.Exact.marginals c) in
  Alcotest.(check bool)
    (Printf.sprintf "VE marginals match enumeration (%.2e)" d)
    true (d < 1e-9)

let test_cost_aware_routing () =
  (* Past the enumeration cutoff a low-width component must route to
     variable elimination even though it fits under [exact_max_vars]:
     enumerating it costs O(2^k) against the junction tree's O(k·2^w). *)
  let tree = random_tree_graph (Tutil.rng 23) 20 in
  let marg, report = Inference.Hybrid.solve tree in
  Alcotest.(check int) "tree eliminated" 1
    report.Inference.Hybrid.eliminated_components;
  Alcotest.(check int) "nothing enumerated" 0
    report.Inference.Hybrid.enumerated_components;
  let d = max_abs_diff marg (Inference.Exact.marginals tree) in
  Alcotest.(check bool)
    (Printf.sprintf "still exact (%.2e)" d)
    true (d < 1e-9);
  (* A component past the cutoff but too dense to eliminate under the
     width bound falls back to enumeration, not sampling: K17 has width
     16 > the default bound, yet 17 vars fit the enumeration cap. *)
  let k17 =
    compile_graph (fun g ->
        for i = 0 to 16 do
          for j = i + 1 to 16 do
            Fgraph.add_clause g ~i1:i ~i2:j ~w:0.05 ()
          done
        done)
  in
  let marg, report = Inference.Hybrid.solve k17 in
  Alcotest.(check int) "dense fallback enumerated" 1
    report.Inference.Hybrid.enumerated_components;
  Alcotest.(check int) "nothing sampled" 0
    report.Inference.Hybrid.sampled_components;
  Alcotest.(check bool) "bitwise equal to enumeration" true
    (marg = Inference.Exact.marginals k17)

(* A K30 core (width 29 — beyond both the enumeration cap and any
   feasible elimination bound) plus easy satellites: the canonical
   mixed workload. *)
let mixed_graph () =
  compile_graph (fun g ->
      for i = 0 to 29 do
        for j = i + 1 to 29 do
          Fgraph.add_clause g ~i1:(1000 + i) ~i2:(1000 + j) ~w:0.05 ()
        done
      done;
      for i = 0 to 19 do
        Fgraph.add_singleton g ~i ~w:((float_of_int i /. 10.) -. 1.)
      done;
      for i = 0 to 8 do
        Fgraph.add_clause g ~i1:(100 + i + 1) ~i2:(100 + i) ~w:0.9 ()
      done)

let test_hybrid_mixed_workload () =
  let c = mixed_graph () in
  let marg, report = Inference.Hybrid.solve c in
  Alcotest.(check int) "one sampled core" 1
    report.Inference.Hybrid.sampled_components;
  Alcotest.(check bool) "satellites enumerated" true
    (report.Inference.Hybrid.enumerated_components > 0);
  Alcotest.(check int) "sampled vars = the clique" 30
    report.Inference.Hybrid.sampled_vars;
  let f = Inference.Hybrid.exact_fraction report in
  Alcotest.(check bool)
    (Printf.sprintf "exact fraction %.3f strictly between 0 and 1" f)
    true
    (f > 0. && f < 1.);
  (match report.Inference.Hybrid.gibbs with
  | Some i ->
    Alcotest.(check bool) "residual sampler ran" true
      (i.Inference.Chromatic.sweeps_run > 0)
  | None -> Alcotest.fail "sampled core must carry the sampler's run info");
  (* Exactly-solved components are bit-identical to enumeration. *)
  Array.iter
    (fun comp ->
      if Inference.Decompose.nvars comp <= Inference.Exact.max_vars then begin
        let e = Inference.Exact.enumerate comp in
        Array.iteri
          (fun l v ->
            if not (Float.equal marg.(v) e.(l)) then
              Alcotest.failf "component at root %d deviates"
                comp.Inference.Decompose.root)
          comp.Inference.Decompose.vars
      end)
    (Inference.Decompose.components c)

let test_hybrid_pool_deterministic () =
  let c = mixed_graph () in
  let options =
    {
      Inference.Hybrid.default_options with
      gibbs = { Inference.Gibbs.burn_in = 20; samples = 60; seed = 11 };
    }
  in
  let p1 = Pool.create 1 and p4 = Pool.create 4 in
  Fun.protect
    ~finally:(fun () ->
      Pool.shutdown p1;
      Pool.shutdown p4)
    (fun () ->
      let a, ra = Inference.Hybrid.solve ~options ~pool:p1 c in
      let b, rb = Inference.Hybrid.solve ~options ~pool:p4 c in
      Alcotest.(check bool) "marginals bit-identical across pools" true (a = b);
      Alcotest.(check int) "same dispatch"
        ra.Inference.Hybrid.sampled_components
        rb.Inference.Hybrid.sampled_components;
      Alcotest.(check int) "same exact vars" ra.Inference.Hybrid.exact_vars
        rb.Inference.Hybrid.exact_vars)

let test_hybrid_permissive_width_samples () =
  (* A directly-built options record can carry a width bound past
     [Jtree.max_clique_vars] ([Config.make] rejects those, direct callers
     can't be stopped).  The planner must route the K30 core (width 29,
     under the permissive bound) to sampling instead of letting
     [Jtree.solve] abort the whole run on its clique-size guard. *)
  let options =
    {
      Inference.Hybrid.default_options with
      max_width = 100;
      gibbs = { Inference.Gibbs.burn_in = 10; samples = 20; seed = 3 };
    }
  in
  let marg, report = Inference.Hybrid.solve ~options (mixed_graph ()) in
  Alcotest.(check int) "clique core sampled, not eliminated" 1
    report.Inference.Hybrid.sampled_components;
  Array.iter
    (fun p ->
      if not (Float.is_finite p) then Alcotest.fail "non-finite marginal")
    marg

let test_neighborhood_dispatch () =
  (* A 100-var chain exceeds the enumeration cap but has width 1, so the
     neighbourhood dispatcher must still report an exact solve. *)
  let chain =
    compile_graph (fun g ->
        Fgraph.add_singleton g ~i:0 ~w:1.0;
        for i = 0 to 98 do
          Fgraph.add_clause g ~i1:(i + 1) ~i2:i ~w:0.7 ()
        done)
  in
  let marg, how = Inference.Neighborhood.solve chain in
  Alcotest.(check bool) "chain solved exactly" true
    (how = Inference.Neighborhood.Enumerated);
  let d = max_abs_diff marg (Inference.Jtree.marginals chain) in
  Alcotest.(check bool) "marginals are the VE solution" true (d < 1e-12);
  let _, how = Inference.Neighborhood.solve (mixed_graph ()) in
  Alcotest.(check bool) "clique core reports Sampled" true
    (how = Inference.Neighborhood.Sampled)

(* --- front-end and config --- *)

let test_marginal_hybrid_front_end () =
  let g = Fgraph.create () in
  Fgraph.add_singleton g ~i:42 ~w:1.0;
  Fgraph.add_clause g ~i1:7 ~i2:42 ~w:0.5 ();
  let m, info =
    Inference.Marginal.infer_full g
      (Inference.Marginal.Hybrid Inference.Hybrid.default_options)
  in
  Alcotest.(check bool) "fact ids mapped" true
    (Hashtbl.mem m 42 && Hashtbl.mem m 7);
  match info with
  | Inference.Marginal.Hybrid_run r ->
    Alcotest.(check (float 1e-12)) "everything exact" 1.0
      (Inference.Hybrid.exact_fraction r)
  | _ -> Alcotest.fail "hybrid method must return Hybrid_run"

let test_config_hybrid_knobs () =
  let c =
    Probkb.Config.make
      ~inference:
        (Some (Inference.Marginal.Chromatic Inference.Gibbs.default_options))
      ~hybrid:true ~exact_max_vars:12 ~max_width:5 ()
  in
  (match c.Probkb.Config.inference with
  | Some (Inference.Marginal.Hybrid o) ->
    Alcotest.(check int) "cap threaded" 12 o.Inference.Hybrid.exact_max_vars;
    Alcotest.(check int) "width threaded" 5 o.Inference.Hybrid.max_width
  | _ -> Alcotest.fail "hybrid:true must upgrade Chromatic to Hybrid");
  Alcotest.(check int) "knob stored" 12 c.Probkb.Config.exact_max_vars;
  (* An explicit Exact request is left alone. *)
  (match
     (Probkb.Config.make ~inference:(Some Inference.Marginal.Exact)
        ~hybrid:true ())
       .Probkb.Config.inference
   with
  | Some Inference.Marginal.Exact -> ()
  | _ -> Alcotest.fail "hybrid:true must not override an explicit Exact");
  (match Probkb.Config.make ~exact_max_vars:31 () with
  | _ -> Alcotest.fail "exact_max_vars 31 must be rejected"
  | exception Invalid_argument _ -> ());
  (* Widths past Jtree's clique guard can only abort on allocation —
     e.g. `--max-width 40` used to crash mid-inference. *)
  match Probkb.Config.make ~max_width:40 () with
  | _ -> Alcotest.fail "max_width 40 must be rejected"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "hybrid"
    [
      ( "triangulate",
        [
          Alcotest.test_case "closed-form widths" `Quick
            test_width_closed_forms;
          Alcotest.test_case "cap bails early" `Quick test_width_cap_bails_early;
        ] );
      ( "jtree",
        [
          test_jtree_matches_enumeration;
          Alcotest.test_case "loopy components" `Quick
            test_jtree_matches_enumeration_loopy;
          Alcotest.test_case "scales past enumeration" `Quick
            test_jtree_scales_past_enumeration;
          Alcotest.test_case "deterministic" `Quick test_jtree_deterministic;
          Alcotest.test_case "hub underflow regression" `Quick
            test_jtree_hub_underflow;
          Alcotest.test_case "rejects high width" `Quick
            test_jtree_rejects_high_width;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "bit-identical to exact" `Quick
            test_hybrid_bit_identical_to_exact;
          Alcotest.test_case "forced elimination" `Quick
            test_hybrid_forced_elimination;
          Alcotest.test_case "cost-aware routing" `Quick
            test_cost_aware_routing;
          Alcotest.test_case "mixed workload" `Quick test_hybrid_mixed_workload;
          Alcotest.test_case "pool deterministic" `Quick
            test_hybrid_pool_deterministic;
          Alcotest.test_case "permissive width samples" `Quick
            test_hybrid_permissive_width_samples;
          Alcotest.test_case "neighbourhood dispatch" `Quick
            test_neighborhood_dispatch;
        ] );
      ( "front-end",
        [
          Alcotest.test_case "hybrid run info" `Quick
            test_marginal_hybrid_front_end;
          Alcotest.test_case "config knobs" `Quick test_config_hybrid_knobs;
        ] );
    ]
