module Table = Relational.Table
module Dict = Relational.Dict
module Index = Relational.Index
module Join = Relational.Join
module Ops = Relational.Ops

let check_int = Alcotest.(check int)

(* --- Dict --- *)

let test_dict_roundtrip () =
  let d = Dict.create () in
  let a = Dict.intern d "alpha" in
  let b = Dict.intern d "beta" in
  check_int "stable ids" a (Dict.intern d "alpha");
  Alcotest.(check string) "name a" "alpha" (Dict.name d a);
  Alcotest.(check string) "name b" "beta" (Dict.name d b);
  check_int "size" 2 (Dict.size d);
  Alcotest.(check bool) "mem" true (Dict.mem d "alpha");
  Alcotest.(check (option int)) "find_opt" None (Dict.find_opt d "gamma")

let test_dict_dense_ids () =
  let d = Dict.create ~initial_capacity:1 () in
  for i = 0 to 999 do
    check_int "dense" i (Dict.intern d (string_of_int i))
  done;
  check_int "size" 1000 (Dict.size d);
  let count = ref 0 in
  Dict.iter (fun id name -> if string_of_int id = name then incr count) d;
  check_int "iter order" 1000 !count

(* --- Table --- *)

let test_table_append_get () =
  let t = Table.create ~name:"t" [| "a"; "b"; "c" |] in
  for i = 0 to 99 do
    Table.append t [| i; i * 2; i * 3 |]
  done;
  check_int "nrows" 100 (Table.nrows t);
  check_int "get" 42 (Table.get t 21 1);
  Table.set t 21 1 7;
  check_int "set" 7 (Table.get t 21 1);
  check_int "col_index" 2 (Table.col_index t "c");
  Alcotest.check_raises "bad col" Not_found (fun () ->
      ignore (Table.col_index t "zz"))

let test_table_weights () =
  let t = Table.create ~weighted:true ~name:"t" [| "a" |] in
  Table.append_w t [| 1 |] 0.5;
  Table.append t [| 2 |];
  Alcotest.(check (float 0.)) "weight" 0.5 (Table.weight t 0);
  Alcotest.(check bool) "null" true (Table.is_null_weight (Table.weight t 1));
  Table.set_weight t 1 0.25;
  Alcotest.(check (float 0.)) "set_weight" 0.25 (Table.weight t 1)

let test_table_filter_sub_copy () =
  let t = Table.create ~name:"t" [| "a" |] in
  for i = 0 to 9 do
    Table.append t [| i |]
  done;
  let even = Table.filter t (fun r -> Table.get t r 0 mod 2 = 0) in
  check_int "filter" 5 (Table.nrows even);
  let s = Table.sub t [| 3; 7 |] in
  check_int "sub rows" 2 (Table.nrows s);
  check_int "sub val" 7 (Table.get s 1 0);
  let c = Table.copy t in
  Table.set c 0 0 99;
  check_int "copy is deep" 0 (Table.get t 0 0)

let test_table_append_from_weight_transfer () =
  let src = Table.create ~weighted:true ~name:"s" [| "a" |] in
  Table.append_w src [| 5 |] 1.5;
  let dst = Table.create ~weighted:true ~name:"d" [| "a" |] in
  Table.append_from dst src 0;
  Alcotest.(check (float 0.)) "weight moved" 1.5 (Table.weight dst 0);
  let unw = Table.create ~name:"u" [| "a" |] in
  Table.append_from unw src 0;
  check_int "value moved" 5 (Table.get unw 0 0)

(* --- Index --- *)

let test_index_basic () =
  let t = Table.create ~name:"t" [| "k"; "v" |] in
  for i = 0 to 999 do
    Table.append t [| i mod 10; i |]
  done;
  let idx = Index.build t [| 0 |] in
  check_int "matches" 100 (Index.count_matches idx [| 3 |]);
  check_int "no match" 0 (Index.count_matches idx [| 77 |]);
  Alcotest.(check bool) "mem" true (Index.mem idx [| 0 |]);
  check_int "size" 1000 (Index.size idx)

let test_index_incremental () =
  let t = Table.create ~name:"t" [| "k" |] in
  let idx = Index.build t [| 0 |] in
  for i = 0 to 4999 do
    Table.append t [| i mod 7 |];
    Index.add idx (Table.nrows t - 1)
  done;
  check_int "incremental matches" 715 (Index.count_matches idx [| 0 |]);
  check_int "incremental matches 6" 714 (Index.count_matches idx [| 6 |])

let test_index_vs_scan_qcheck =
  Tutil.qcheck_case "index agrees with scan"
    QCheck.(pair (list (pair small_nat small_nat)) small_nat)
    (fun (rows, probe) ->
      let t = Table.create ~name:"t" [| "k"; "v" |] in
      List.iter (fun (k, v) -> Table.append t [| k; v |]) rows;
      let idx = Index.build t [| 0 |] in
      let by_index = Index.count_matches idx [| probe |] in
      let by_scan = Ops.count_where t (fun r -> Table.get t r 0 = probe) in
      by_index = by_scan)

(* --- Join --- *)

let random_table st name n kmax =
  let t = Table.create ~weighted:true ~name [| "k"; "v" |] in
  for _ = 1 to n do
    Table.append_w t
      [| Random.State.int st kmax; Random.State.int st 1000 |]
      (Random.State.float st 1.)
  done;
  t

let join_out =
  [|
    Join.Col (Join.Build, 0);
    Join.Col (Join.Build, 1);
    Join.Col (Join.Probe, 1);
  |]

let test_join_matches_nested_loop () =
  let st = Tutil.rng 7 in
  for trial = 1 to 20 do
    let a = random_table st "a" (Random.State.int st 200) 12 in
    let b = random_table st "b" (Random.State.int st 200) 12 in
    let fast =
      Join.hash_join ~name:"j" ~cols:[| "k"; "va"; "vb" |] ~out:join_out
        ~oweight:Join.No_weight (a, [| 0 |]) (b, [| 0 |])
    in
    let slow =
      Join.nested_loop ~name:"j" ~cols:[| "k"; "va"; "vb" |] ~out:join_out
        ~oweight:Join.No_weight (a, [| 0 |]) (b, [| 0 |])
    in
    if not (Tutil.table_rows_equal fast slow) then
      Alcotest.failf "join mismatch on trial %d" trial
  done

let test_join_residual () =
  let a = Table.create ~name:"a" [| "k"; "v" |] in
  let b = Table.create ~name:"b" [| "k"; "v" |] in
  Table.append a [| 1; 10 |];
  Table.append a [| 1; 20 |];
  Table.append b [| 1; 10 |];
  Table.append b [| 1; 30 |];
  let j =
    Join.hash_join ~name:"j" ~cols:[| "k"; "va"; "vb" |] ~out:join_out
      ~oweight:Join.No_weight
      ~residual:(fun br pr -> Table.get a br 1 = Table.get b pr 1)
      (a, [| 0 |]) (b, [| 0 |])
  in
  check_int "residual filters" 1 (Table.nrows j);
  check_int "kept pair" 10 (Table.get j 0 1)

let test_join_weight_propagation () =
  let a = Table.create ~weighted:true ~name:"a" [| "k" |] in
  Table.append_w a [| 1 |] 0.75;
  let b = Table.create ~name:"b" [| "k" |] in
  Table.append b [| 1 |];
  let j =
    Join.hash_join ~name:"j" ~cols:[| "k" |]
      ~out:[| Join.Col (Join.Build, 0) |]
      ~oweight:(Join.Weight_of Join.Build) (a, [| 0 |]) (b, [| 0 |])
  in
  Alcotest.(check (float 0.)) "weight" 0.75 (Table.weight j 0)

let test_join_const_output () =
  let a = Table.create ~name:"a" [| "k" |] in
  Table.append a [| 1 |];
  let b = Table.create ~name:"b" [| "k" |] in
  Table.append b [| 1 |];
  let j =
    Join.hash_join ~name:"j" ~cols:[| "c" |] ~out:[| Join.Const (-1) |]
      ~oweight:Join.No_weight (a, [| 0 |]) (b, [| 0 |])
  in
  check_int "const" (-1) (Table.get j 0 0)

let test_join_multi_column_key () =
  let st = Tutil.rng 11 in
  let mk name n =
    let t = Table.create ~name [| "k1"; "k2"; "v" |] in
    for _ = 1 to n do
      Table.append t
        [| Random.State.int st 5; Random.State.int st 5; Random.State.int st 100 |]
    done;
    t
  in
  let a = mk "a" 150 and b = mk "b" 150 in
  let out = [| Join.Col (Join.Build, 2); Join.Col (Join.Probe, 2) |] in
  let fast =
    Join.hash_join ~name:"j" ~cols:[| "va"; "vb" |] ~out
      ~oweight:Join.No_weight (a, [| 0; 1 |]) (b, [| 1; 0 |])
  in
  let slow =
    Join.nested_loop ~name:"j" ~cols:[| "va"; "vb" |] ~out
      ~oweight:Join.No_weight (a, [| 0; 1 |]) (b, [| 1; 0 |])
  in
  Alcotest.(check bool) "multi-key equal" true (Tutil.table_rows_equal fast slow)

let test_semi_join_absent () =
  let have = Table.create ~name:"h" [| "k" |] in
  Table.append have [| 1 |];
  Table.append have [| 3 |];
  let idx = Index.build have [| 0 |] in
  let cand = Table.create ~name:"c" [| "k" |] in
  List.iter (fun k -> Table.append cand [| k |]) [ 1; 2; 3; 4 ];
  let missing = Join.semi_join_absent cand [| 0 |] idx in
  Alcotest.(check (list (list int)))
    "absent keys" [ [ 2 ]; [ 4 ] ]
    (Tutil.rows_as_sorted_lists missing)

(* --- Ops --- *)

let test_distinct () =
  let t = Table.create ~name:"t" [| "a"; "b" |] in
  List.iter (fun (a, b) -> Table.append t [| a; b |])
    [ (1, 1); (1, 2); (1, 1); (2, 1); (2, 1) ];
  let d = Ops.distinct t [| 0; 1 |] in
  check_int "distinct both" 3 (Table.nrows d);
  let d1 = Ops.distinct t [| 0 |] in
  check_int "distinct first" 2 (Table.nrows d1)

let test_distinct_keeps_first () =
  let t = Table.create ~weighted:true ~name:"t" [| "a" |] in
  Table.append_w t [| 1 |] 0.1;
  Table.append_w t [| 1 |] 0.9;
  let d = Ops.distinct t [| 0 |] in
  Alcotest.(check (float 0.)) "first kept" 0.1 (Table.weight d 0)

let test_group_count () =
  let t = Table.create ~name:"t" [| "g"; "v" |] in
  List.iter (fun (g, v) -> Table.append t [| g; v |])
    [ (1, 0); (1, 0); (2, 0); (1, 0); (3, 0); (3, 0) ];
  let g = Ops.group_count t [| 0 |] in
  let counts =
    Tutil.rows_as_sorted_lists g
  in
  Alcotest.(check (list (list int))) "counts" [ [ 1; 3 ]; [ 2; 1 ]; [ 3; 2 ] ] counts

let test_group_aggregates () =
  let t = Table.create ~name:"t" [| "g"; "v" |] in
  List.iter (fun (g, v) -> Table.append t [| g; v |])
    [ (1, 5); (1, 9); (2, 3); (1, 1); (2, 7) ];
  let g = Ops.group t [| 0 |] [ Ops.Count; Ops.Sum 1; Ops.Min 1; Ops.Max 1 ] in
  Alcotest.(check (list (list int)))
    "count/sum/min/max per group"
    [ [ 1; 3; 15; 1; 9 ]; [ 2; 2; 10; 3; 7 ] ]
    (Tutil.rows_as_sorted_lists g)

let test_group_agg_matches_group_count =
  Tutil.qcheck_case "group Count = group_count"
    QCheck.(list (pair (int_bound 8) (int_bound 50)))
    (fun rows ->
      let t = Table.create ~name:"t" [| "g"; "v" |] in
      List.iter (fun (g, v) -> Table.append t [| g; v |]) rows;
      Tutil.table_rows_equal
        (Ops.group t [| 0 |] [ Ops.Count ])
        (Ops.group_count t [| 0 |]))

let test_union_all () =
  let a = Table.create ~name:"a" [| "x" |] in
  Table.append a [| 1 |];
  let b = Table.create ~name:"b" [| "x" |] in
  Table.append b [| 2 |];
  Table.append b [| 2 |];
  let u = Ops.union_all [ a; b ] in
  check_int "bag union" 3 (Table.nrows u);
  Alcotest.check_raises "empty union" (Invalid_argument "Ops.union_all: empty list")
    (fun () -> ignore (Ops.union_all []))

let test_distinct_qcheck =
  Tutil.qcheck_case "distinct = sorted dedup"
    QCheck.(list (pair (int_bound 10) (int_bound 10)))
    (fun rows ->
      let t = Table.create ~name:"t" [| "a"; "b" |] in
      List.iter (fun (a, b) -> Table.append t [| a; b |]) rows;
      let d = Ops.distinct t [| 0; 1 |] in
      let expect = List.sort_uniq compare (List.map (fun (a, b) -> [ a; b ]) rows) in
      Tutil.rows_as_sorted_lists d = expect)

let test_group_count_qcheck =
  Tutil.qcheck_case "group_count sums to nrows"
    QCheck.(list (int_bound 20))
    (fun keys ->
      let t = Table.create ~name:"t" [| "k" |] in
      List.iter (fun k -> Table.append t [| k |]) keys;
      let g = Ops.group_count t [| 0 |] in
      let total = ref 0 in
      Table.iter (fun r -> total := !total + Table.get g r 1) g;
      !total = List.length keys)

(* --- sort-based operators --- *)

let test_sort_orders_rows () =
  let t = Table.create ~name:"t" [| "a"; "b" |] in
  List.iter (fun (a, b) -> Table.append t [| a; b |])
    [ (3, 1); (1, 2); (2, 0); (1, 1); (3, 0) ];
  let s = Relational.Sort.sort t [| 0; 1 |] in
  Alcotest.(check bool) "sorted" true (Relational.Sort.is_sorted s [| 0; 1 |]);
  Alcotest.(check (list (list int))) "order"
    [ [ 1; 1 ]; [ 1; 2 ]; [ 2; 0 ]; [ 3; 0 ]; [ 3; 1 ] ]
    (List.init (Table.nrows s) (fun r -> Array.to_list (Table.row s r)))

let test_sort_is_stable () =
  let t = Table.create ~weighted:true ~name:"t" [| "k"; "tag" |] in
  Table.append_w t [| 1; 10 |] 0.1;
  Table.append_w t [| 1; 20 |] 0.2;
  Table.append_w t [| 0; 30 |] 0.3;
  let s = Relational.Sort.sort t [| 0 |] in
  (* Equal keys keep input order (10 before 20) and weights follow. *)
  check_int "first of group" 10 (Table.get s 1 1);
  check_int "second of group" 20 (Table.get s 2 1);
  Alcotest.(check (float 0.)) "weights follow" 0.3 (Table.weight s 0)

let test_merge_join_matches_hash_join =
  Tutil.qcheck_case "merge join = hash join"
    QCheck.(pair (list (pair (int_bound 8) (int_bound 50)))
              (list (pair (int_bound 8) (int_bound 50))))
    (fun (xs, ys) ->
      let mk name rows =
        let t = Table.create ~name [| "k"; "v" |] in
        List.iter (fun (k, v) -> Table.append t [| k; v |]) rows;
        t
      in
      let a = mk "a" xs and b = mk "b" ys in
      let out = [| Join.Col (Join.Build, 1); Join.Col (Join.Probe, 1) |] in
      let hash =
        Join.hash_join ~name:"h" ~cols:[| "va"; "vb" |] ~out
          ~oweight:Join.No_weight (a, [| 0 |]) (b, [| 0 |])
      in
      let merge =
        Relational.Sort.merge_join ~name:"m" ~cols:[| "va"; "vb" |] ~out
          ~oweight:Join.No_weight
          (Relational.Sort.sort a [| 0 |], [| 0 |])
          (Relational.Sort.sort b [| 0 |], [| 0 |])
      in
      Tutil.table_rows_equal hash merge)

let test_merge_join_requires_sorted () =
  let t = Table.create ~name:"t" [| "k" |] in
  Table.append t [| 2 |];
  Table.append t [| 1 |];
  match
    Relational.Sort.merge_join ~name:"m" ~cols:[| "k" |]
      ~out:[| Join.Col (Join.Build, 0) |]
      ~oweight:Join.No_weight (t, [| 0 |]) (t, [| 0 |])
  with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_distinct_sorted_matches_hash_distinct =
  Tutil.qcheck_case "sorted distinct = hash distinct"
    QCheck.(list (pair (int_bound 6) (int_bound 6)))
    (fun rows ->
      let t = Table.create ~name:"t" [| "a"; "b" |] in
      List.iter (fun (a, b) -> Table.append t [| a; b |]) rows;
      let sorted = Relational.Sort.sort t [| 0; 1 |] in
      let d1 = Relational.Sort.distinct_sorted sorted [| 0; 1 |] in
      let d2 = Ops.distinct t [| 0; 1 |] in
      Tutil.rows_as_sorted_lists d1 = Tutil.rows_as_sorted_lists d2)

(* --- stats --- *)

let test_stats_accumulation () =
  let st = Relational.Stats.create () in
  let r = Relational.Stats.time st ~label:"q" ~rows:List.length (fun () -> [ 1; 2; 3 ]) in
  Alcotest.(check (list int)) "result passthrough" [ 1; 2; 3 ] r;
  Relational.Stats.record st ~label:"q" ~seconds:0.5 ~rows_out:10;
  Alcotest.(check int) "queries" 2 (Relational.Stats.queries st);
  Alcotest.(check int) "rows" 13 (Relational.Stats.total_rows st);
  Alcotest.(check bool) "time positive" true (Relational.Stats.total_seconds st >= 0.5);
  let st2 = Relational.Stats.create () in
  Relational.Stats.record st2 ~label:"w" ~seconds:1.0 ~rows_out:1;
  Relational.Stats.merge st st2;
  Alcotest.(check int) "merged" 3 (Relational.Stats.queries st);
  Relational.Stats.reset st;
  Alcotest.(check int) "reset" 0 (Relational.Stats.queries st)

(* --- dbms model --- *)

let test_dbms_model () =
  let m = Relational.Dbms_model.default in
  (* The constants are derived from the paper's Table 3: Tuffy's four
     iterations over 30,912 rules should model to about 78.5 minutes. *)
  let modeled =
    Relational.Dbms_model.modeled_seconds m ~statements:(30_912 * 4)
      ~tables_created:0 ~measured:0.
  in
  Alcotest.(check bool) "within 10% of 78.5 min" true
    (Float.abs ((modeled /. 60.) -. 78.5) < 8.);
  let load =
    Relational.Dbms_model.modeled_seconds m ~statements:0 ~tables_created:83_000
      ~measured:0.
  in
  Alcotest.(check bool) "load within 10% of 18.2 min" true
    (Float.abs ((load /. 60.) -. 18.2) < 2.);
  Alcotest.(check (float 1e-9)) "zero model is identity" 1.5
    (Relational.Dbms_model.modeled_seconds Relational.Dbms_model.zero
       ~statements:1000 ~tables_created:1000 ~measured:1.5)

(* --- inline dedup --- *)

let test_join_inline_dedup () =
  let a = Table.create ~name:"a" [| "k"; "v" |] in
  let b = Table.create ~name:"b" [| "k"; "v" |] in
  (* Two build rows with the same projected output. *)
  Table.append a [| 1; 7 |];
  Table.append a [| 1; 7 |];
  Table.append b [| 1; 9 |];
  Table.append b [| 1; 9 |];
  let dup =
    Join.hash_join ~name:"j" ~cols:[| "k" |]
      ~out:[| Join.Col (Join.Build, 0) |]
      ~oweight:Join.No_weight (a, [| 0 |]) (b, [| 0 |])
  in
  check_int "without dedup: 4 rows" 4 (Table.nrows dup);
  let deduped =
    Join.hash_join ~name:"j" ~cols:[| "k" |]
      ~out:[| Join.Col (Join.Build, 0) |]
      ~oweight:Join.No_weight ~dedup:true (a, [| 0 |]) (b, [| 0 |])
  in
  check_int "with dedup: 1 row" 1 (Table.nrows deduped)

let test_join_dedup_qcheck =
  Tutil.qcheck_case "dedup join = distinct of raw join"
    QCheck.(pair (list (pair (int_bound 5) (int_bound 5)))
              (list (pair (int_bound 5) (int_bound 5))))
    (fun (xs, ys) ->
      let mk name rows =
        let t = Table.create ~name [| "k"; "v" |] in
        List.iter (fun (k, v) -> Table.append t [| k; v |]) rows;
        t
      in
      let a = mk "a" xs and b = mk "b" ys in
      let out = [| Join.Col (Join.Build, 1); Join.Col (Join.Probe, 1) |] in
      let raw =
        Join.hash_join ~name:"r" ~cols:[| "va"; "vb" |] ~out
          ~oweight:Join.No_weight (a, [| 0 |]) (b, [| 0 |])
      in
      let ded =
        Join.hash_join ~name:"d" ~cols:[| "va"; "vb" |] ~out
          ~oweight:Join.No_weight ~dedup:true (a, [| 0 |]) (b, [| 0 |])
      in
      Tutil.rows_as_sorted_lists ded
      = List.sort_uniq compare (Tutil.rows_as_sorted_lists raw))

(* --- parallel partitioned probe --- *)

(* Bit-exact comparison: same rows in the same order with the same
   weights — stronger than [Tutil.table_rows_equal]. *)
let tables_identical a b =
  Table.nrows a = Table.nrows b
  && Table.width a = Table.width b
  && Table.weighted a = Table.weighted b
  &&
  let ok = ref true in
  for r = 0 to Table.nrows a - 1 do
    if not (Table.equal_rows a r b r) then ok := false;
    if Table.weighted a && compare (Table.weight a r) (Table.weight b r) <> 0
    then ok := false
  done;
  !ok

let test_parallel_join_deterministic () =
  (* Above the parallel threshold (2048 probe rows), a pool of 4 must
     produce the byte-identical table a pool of 1 does — with and without
     inline dedup, with and without weights. *)
  let st = Tutil.rng 23 in
  let a = random_table st "a" 500 40 in
  let b = random_table st "b" 6000 40 in
  let p1 = Pool.create 1 and p4 = Pool.create 4 in
  Fun.protect
    ~finally:(fun () ->
      Pool.shutdown p1;
      Pool.shutdown p4)
    (fun () ->
      List.iter
        (fun dedup ->
          List.iter
            (fun oweight ->
              let run pool =
                Join.hash_join ~name:"j" ~cols:[| "k"; "va"; "vb" |]
                  ~out:join_out ~oweight ~dedup ~pool (a, [| 0 |]) (b, [| 0 |])
              in
              Alcotest.(check bool)
                (Printf.sprintf "dedup=%b identical" dedup)
                true
                (tables_identical (run p1) (run p4)))
            [ Join.No_weight; Join.Weight_of Join.Build ])
        [ false; true ])

let test_parallel_distinct_deterministic () =
  let st = Tutil.rng 29 in
  let t = Table.create ~name:"t" [| "k"; "v" |] in
  for _ = 1 to 10_000 do
    Table.append t [| Random.State.int st 50; Random.State.int st 20 |]
  done;
  let p1 = Pool.create 1 and p4 = Pool.create 4 in
  Fun.protect
    ~finally:(fun () ->
      Pool.shutdown p1;
      Pool.shutdown p4)
    (fun () ->
      Alcotest.(check bool)
        "distinct identical" true
        (tables_identical
           (Ops.distinct ~pool:p1 t [| 0; 1 |])
           (Ops.distinct ~pool:p4 t [| 0; 1 |])))

let test_nested_loop_dedup () =
  let a = Table.create ~name:"a" [| "k"; "v" |] in
  let b = Table.create ~name:"b" [| "k"; "v" |] in
  Table.append a [| 1; 7 |];
  Table.append a [| 1; 7 |];
  Table.append b [| 1; 9 |];
  Table.append b [| 1; 9 |];
  let run dedup =
    Join.nested_loop ~name:"j" ~cols:[| "k" |]
      ~out:[| Join.Col (Join.Build, 0) |]
      ~oweight:Join.No_weight ~dedup (a, [| 0 |]) (b, [| 0 |])
  in
  check_int "without dedup: 4 rows" 4 (Table.nrows (run false));
  check_int "with dedup: 1 row" 1 (Table.nrows (run true))

(* --- table I/O --- *)

let test_table_io_roundtrip () =
  let t = Table.create ~weighted:true ~name:"T_Pi" [| "I"; "R"; "x" |] in
  Table.append_w t [| 0; 3; 17 |] 0.96;
  Table.append t [| 1; 3; 18 |] (* null weight *);
  Table.append_w t [| 2; 4; -5 |] 1.25;
  let path = Filename.temp_file "tbl" ".tsv" in
  Relational.Table_io.to_file t path;
  let t' = Relational.Table_io.of_file path in
  Sys.remove path;
  Alcotest.(check string) "name" "T_Pi" (Table.name t');
  Alcotest.(check (array string)) "schema" (Table.cols t) (Table.cols t');
  Alcotest.(check bool) "rows equal" true (Tutil.table_rows_equal t t');
  Alcotest.(check (float 0.)) "weight" 0.96 (Table.weight t' 0);
  Alcotest.(check bool) "null preserved" true
    (Table.is_null_weight (Table.weight t' 1))

let test_table_io_roundtrip_qcheck =
  Tutil.qcheck_case "table io roundtrip (generated)"
    QCheck.(list (pair int (option (float_bound_inclusive 2.))))
    (fun rows ->
      let t = Table.create ~weighted:true ~name:"t" [| "v" |] in
      List.iter
        (fun (v, w) ->
          match w with
          | Some w -> Table.append_w t [| v |] w
          | None -> Table.append t [| v |])
        rows;
      let path = Filename.temp_file "tbl" ".tsv" in
      Relational.Table_io.to_file t path;
      let t' = Relational.Table_io.of_file path in
      Sys.remove path;
      Table.nrows t = Table.nrows t'
      && List.for_all
           (fun r ->
             Table.get t r 0 = Table.get t' r 0
             &&
             let w = Table.weight t r and w' = Table.weight t' r in
             (Table.is_null_weight w && Table.is_null_weight w') || w = w')
           (List.init (Table.nrows t) Fun.id))

let test_table_io_unweighted () =
  let t = Table.create ~name:"plain" [| "a"; "b" |] in
  Table.append t [| 1; 2 |];
  let path = Filename.temp_file "tbl" ".tsv" in
  Relational.Table_io.to_file t path;
  let t' = Relational.Table_io.of_file path in
  Sys.remove path;
  Alcotest.(check bool) "not weighted" false (Table.weighted t');
  Alcotest.(check bool) "rows" true (Tutil.table_rows_equal t t')

let test_table_io_rejects_garbage () =
  let path = Filename.temp_file "tbl" ".tsv" in
  let oc = open_out path in
  output_string oc "#table t a\n1\t2\n";
  close_out oc;
  let result =
    match Relational.Table_io.of_file path with
    | _ -> false
    | exception Relational.Table_io.Parse_error _ -> true
  in
  Sys.remove path;
  Alcotest.(check bool) "field-count error" true result

(* --- colstats --- *)

let test_colstats () =
  let t = Table.create ~name:"t" [| "a"; "b" |] in
  List.iter (fun (a, b) -> Table.append t [| a; b |])
    [ (1, 5); (1, 6); (2, 5); (3, 5) ];
  let st = Relational.Colstats.analyze t in
  check_int "rows" 4 (Relational.Colstats.rows st);
  check_int "ndv a" 3 (Relational.Colstats.ndv st 0);
  check_int "ndv b" 2 (Relational.Colstats.ndv st 1);
  Alcotest.(check (option int)) "min a" (Some 1) (Relational.Colstats.min_value st 0);
  Alcotest.(check (option int)) "max b" (Some 6) (Relational.Colstats.max_value st 1);
  (* Composite key NDV is capped at the row count. *)
  check_int "composite capped" 4 (Relational.Colstats.ndv_key st [| 0; 1 |]);
  let empty = Relational.Colstats.analyze (Table.create ~name:"e" [| "x" |]) in
  Alcotest.(check (option int)) "empty min" None (Relational.Colstats.min_value empty 0)

(* --- plans --- *)

let plan_fixture () =
  let people = Table.create ~name:"people" [| "id"; "city" |] in
  List.iter (fun (i, c) -> Table.append people [| i; c |])
    [ (1, 10); (2, 10); (3, 20); (4, 30) ];
  let cities = Table.create ~name:"cities" [| "city"; "country" |] in
  List.iter (fun (c, k) -> Table.append cities [| c; k |])
    [ (10, 100); (20, 100); (30, 200) ];
  (people, cities)

let test_plan_join_select_project () =
  let people, cities = plan_fixture () in
  (* SELECT people.id FROM people JOIN cities ON city WHERE country = 100
     ORDER BY id *)
  let p =
    Relational.Plan.(
      Order_by
        ( [| 0 |],
          Project
            ( [| 0 |],
              Select
                ( Eq_const (3, 100),
                  Equi_join
                    { left = Scan people; right = Scan cities;
                      lkey = [| 1 |]; rkey = [| 0 |] } ) ) ))
  in
  Alcotest.(check (array string)) "schema" [| "id" |] (Relational.Plan.columns p);
  let result = Relational.Plan.run p in
  Alcotest.(check (list (list int))) "ids in country 100"
    [ [ 1 ]; [ 2 ]; [ 3 ] ]
    (List.init (Table.nrows result) (fun r -> Array.to_list (Table.row result r)))

let test_plan_matches_direct_operators =
  Tutil.qcheck_case "plan executor = direct operators"
    QCheck.(pair (list (pair (int_bound 6) (int_bound 6)))
              (list (pair (int_bound 6) (int_bound 6))))
    (fun (xs, ys) ->
      let mk name rows =
        let t = Table.create ~name [| "k"; "v" |] in
        List.iter (fun (k, v) -> Table.append t [| k; v |]) rows;
        t
      in
      let a = mk "a" xs and b = mk "b" ys in
      let via_plan =
        Relational.Plan.(
          run
            (Distinct
               ( None,
                 Equi_join
                   { left = Scan a; right = Scan b; lkey = [| 0 |]; rkey = [| 0 |] } )))
      in
      let direct =
        Ops.distinct
          (Join.hash_join ~name:"j" ~cols:[| "k"; "v"; "k2"; "v2" |]
             ~out:
               [| Join.Col (Join.Build, 0); Join.Col (Join.Build, 1);
                  Join.Col (Join.Probe, 0); Join.Col (Join.Probe, 1) |]
             ~oweight:Join.No_weight (a, [| 0 |]) (b, [| 0 |]))
          [| 0; 1; 2; 3 |]
      in
      Tutil.table_rows_equal via_plan direct)

let test_plan_predicates () =
  let t = Table.create ~name:"t" [| "a"; "b" |] in
  List.iter (fun (a, b) -> Table.append t [| a; b |])
    [ (1, 1); (1, 2); (2, 2); (5, 0) ];
  let run_pred pred =
    Table.nrows (Relational.Plan.(run (Select (pred, Scan t))))
  in
  check_int "eq_cols" 2 (run_pred (Relational.Plan.Eq_cols (0, 1)));
  check_int "lt" 2 (run_pred (Relational.Plan.Lt_const (0, 2)));
  check_int "and" 1
    (run_pred (Relational.Plan.(And (Eq_cols (0, 1), Eq_const (0, 2)))));
  check_int "or" 3
    (run_pred (Relational.Plan.(Or (Eq_const (0, 1), Eq_const (1, 0)))));
  check_int "not" 2 (run_pred (Relational.Plan.(Not (Eq_cols (0, 1)))))

let test_plan_rejects_bad_columns () =
  let t = Table.create ~name:"t" [| "a" |] in
  match Relational.Plan.(columns (Project ([| 3 |], Scan t))) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_plan_estimates_join () =
  (* Uniform keys: the estimate |L|*|R|/ndv should be within 2x of the
     actual join size. *)
  let st = Tutil.rng 17 in
  let mk name n =
    let t = Table.create ~name [| "k" |] in
    for _ = 1 to n do
      Table.append t [| Random.State.int st 50 |]
    done;
    t
  in
  let a = mk "a" 500 and b = mk "b" 300 in
  let p =
    Relational.Plan.(
      Equi_join { left = Scan a; right = Scan b; lkey = [| 0 |]; rkey = [| 0 |] })
  in
  let est = Relational.Plan.estimate_rows p in
  let actual = Table.nrows (Relational.Plan.run p) in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %d within 2x of actual %d" est actual)
    true
    (est > actual / 2 && est < actual * 2)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_plan_explain_renders () =
  let people, cities = plan_fixture () in
  let p =
    Relational.Plan.(
      Equi_join
        { left = Scan people; right = Scan cities; lkey = [| 1 |]; rkey = [| 0 |] })
  in
  let text = Fmt.str "%a" Relational.Plan.explain p in
  Alcotest.(check bool) "mentions scans" true
    (contains_sub text "Seq Scan on people" && contains_sub text "Hash Join")

let () =
  Alcotest.run "relational"
    [
      ( "dict",
        [
          Alcotest.test_case "roundtrip" `Quick test_dict_roundtrip;
          Alcotest.test_case "dense ids" `Quick test_dict_dense_ids;
        ] );
      ( "table",
        [
          Alcotest.test_case "append/get" `Quick test_table_append_get;
          Alcotest.test_case "weights" `Quick test_table_weights;
          Alcotest.test_case "filter/sub/copy" `Quick test_table_filter_sub_copy;
          Alcotest.test_case "append_from weights" `Quick
            test_table_append_from_weight_transfer;
        ] );
      ( "index",
        [
          Alcotest.test_case "basic" `Quick test_index_basic;
          Alcotest.test_case "incremental" `Quick test_index_incremental;
          test_index_vs_scan_qcheck;
        ] );
      ( "join",
        [
          Alcotest.test_case "vs nested loop" `Quick test_join_matches_nested_loop;
          Alcotest.test_case "residual" `Quick test_join_residual;
          Alcotest.test_case "weight propagation" `Quick
            test_join_weight_propagation;
          Alcotest.test_case "const output" `Quick test_join_const_output;
          Alcotest.test_case "multi-column key" `Quick test_join_multi_column_key;
          Alcotest.test_case "anti semi join" `Quick test_semi_join_absent;
          Alcotest.test_case "parallel join deterministic" `Quick
            test_parallel_join_deterministic;
          Alcotest.test_case "parallel distinct deterministic" `Quick
            test_parallel_distinct_deterministic;
          Alcotest.test_case "nested loop dedup" `Quick test_nested_loop_dedup;
        ] );
      ( "sort",
        [
          Alcotest.test_case "sort orders" `Quick test_sort_orders_rows;
          Alcotest.test_case "sort stable" `Quick test_sort_is_stable;
          test_merge_join_matches_hash_join;
          Alcotest.test_case "merge join needs sorted input" `Quick
            test_merge_join_requires_sorted;
          test_distinct_sorted_matches_hash_distinct;
        ] );
      ( "table-io",
        [
          Alcotest.test_case "roundtrip" `Quick test_table_io_roundtrip;
          test_table_io_roundtrip_qcheck;
          Alcotest.test_case "unweighted" `Quick test_table_io_unweighted;
          Alcotest.test_case "garbage rejected" `Quick
            test_table_io_rejects_garbage;
        ] );
      ( "plan",
        [
          Alcotest.test_case "colstats" `Quick test_colstats;
          Alcotest.test_case "join-select-project" `Quick
            test_plan_join_select_project;
          test_plan_matches_direct_operators;
          Alcotest.test_case "predicates" `Quick test_plan_predicates;
          Alcotest.test_case "bad columns rejected" `Quick
            test_plan_rejects_bad_columns;
          Alcotest.test_case "join estimate" `Quick test_plan_estimates_join;
          Alcotest.test_case "explain renders" `Quick test_plan_explain_renders;
        ] );
      ( "stats-and-model",
        [
          Alcotest.test_case "stats" `Quick test_stats_accumulation;
          Alcotest.test_case "dbms model constants" `Quick test_dbms_model;
          Alcotest.test_case "inline dedup" `Quick test_join_inline_dedup;
          test_join_dedup_qcheck;
        ] );
      ( "ops",
        [
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "distinct keeps first" `Quick
            test_distinct_keeps_first;
          Alcotest.test_case "group_count" `Quick test_group_count;
          Alcotest.test_case "union_all" `Quick test_union_all;
          test_distinct_qcheck;
          test_group_count_qcheck;
          Alcotest.test_case "group aggregates" `Quick test_group_aggregates;
          test_group_agg_matches_group_count;
        ] );
    ]
