(* The out-of-core columnar store: segment round-trips through the mmap
   reader, store spill/sync, zone-map pruning (results invariant, only
   counters move), corruption detection, Table_io format versioning, and
   end-to-end differentials — spilled grounding and spilled MPP shards
   must be bit-identical to the fully in-memory runs. *)

module Table = Relational.Table
module Table_io = Relational.Table_io
module Segsrc = Relational.Segsrc
module Colstats = Relational.Colstats
module Plan = Relational.Plan
module Segment = Storage.Segment
module Store = Storage.Store
module Spill = Storage.Spill
module Obs = Probkb.Obs
module Summary = Obs.Summary

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- scratch directories --- *)

let tmp_counter = ref 0

let fresh_tmp prefix =
  incr tmp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "probkb-%s-%d-%d" prefix (Unix.getpid ()) !tmp_counter)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_tmpdir f =
  let dir = fresh_tmp "store" in
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

(* Bit-exact comparison: same rows in the same order with the same
   weights (NaN null weights compare equal under [compare]). *)
let tables_identical a b =
  Table.nrows a = Table.nrows b
  && Table.width a = Table.width b
  && Table.weighted a = Table.weighted b
  &&
  let ok = ref true in
  for r = 0 to Table.nrows a - 1 do
    if not (Table.equal_rows a r b r) then ok := false;
    if Table.weighted a && compare (Table.weight a r) (Table.weight b r) <> 0
    then ok := false
  done;
  !ok

(* Random tables exercising every lane encoding: tiny domains (dict),
   dense ranges (FOR), negatives and near-max_int values (8-byte codes,
   frame-of-reference wraparound), and NaN null weights. *)
let random_table ?(weighted = true) rng n width =
  let t =
    Table.create ~weighted ~name:"t"
      (Array.init width (Printf.sprintf "c%d"))
  in
  let cell () =
    match Random.State.int rng 6 with
    | 0 -> Random.State.int rng 4
    | 1 -> Random.State.int rng 100_000
    | 2 -> -Random.State.int rng 100_000 - 1
    | 3 -> max_int - Random.State.int rng 1_000
    | 4 -> min_int + Random.State.int rng 1_000
    | _ -> 0
  in
  let buf = Array.make width 0 in
  for _ = 1 to n do
    for c = 0 to width - 1 do
      buf.(c) <- cell ()
    done;
    if weighted then
      Table.append_w t buf
        (if Random.State.int rng 4 = 0 then Table.null_weight
         else Random.State.float rng 1.)
    else Table.append t buf
  done;
  t

(* --- segments --- *)

let test_segment_roundtrip () =
  let rng = Tutil.rng 7 in
  with_tmpdir (fun dir ->
      List.iter
        (fun (n, width, weighted) ->
          let t = random_table ~weighted rng n width in
          let path = Filename.concat dir "seg.pkb" in
          Segment.write ~path t ~lo:0 ~hi:n;
          let s = Segment.openf path in
          check_int "rows" n (Segment.rows s);
          check_int "width" width (Segment.width s);
          check_bool "weighted" weighted (Segment.weighted s);
          for r = 0 to n - 1 do
            for c = 0 to width - 1 do
              check_int "cell" (Table.get t r c) (Segment.get s r c)
            done;
            if weighted then
              check_bool "weight" true
                (compare (Table.weight t r) (Segment.weight s r) = 0)
          done;
          (* Zone maps decode to the true column ranges. *)
          for c = 0 to width - 1 do
            let lo = ref max_int and hi = ref min_int in
            for r = 0 to n - 1 do
              lo := min !lo (Table.get t r c);
              hi := max !hi (Table.get t r c)
            done;
            check_int "min" !lo (Segment.mins s).(c);
            check_int "max" !hi (Segment.maxs s).(c)
          done;
          Sys.remove path)
        [ (1, 1, false); (200, 3, true); (500, 2, false); (64, 4, true) ])

let test_segment_ndv_exact () =
  with_tmpdir (fun dir ->
      let t = Table.create ~name:"t" [| "a"; "b" |] in
      for i = 0 to 99 do
        Table.append t [| i mod 7; i |]
      done;
      let path = Filename.concat dir "seg.pkb" in
      Segment.write ~path t ~lo:0 ~hi:100;
      let s = Segment.openf path in
      check_int "ndv col 0" 7 (Segment.ndv s).(0);
      check_int "ndv col 1" 100 (Segment.ndv s).(1))

let corrupt_file path f =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let bytes = really_input_string ic len in
  close_in ic;
  let bytes = f (Bytes.of_string bytes) in
  let oc = open_out_bin path in
  output_bytes oc bytes;
  close_out oc

let expect_corrupt name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Corrupt" name
  | exception Segment.Corrupt _ -> ()

let test_segment_corruption_detected () =
  let rng = Tutil.rng 11 in
  with_tmpdir (fun dir ->
      let t = random_table rng 300 3 in
      let path = Filename.concat dir "seg.pkb" in
      let fresh () =
        Segment.write ~path t ~lo:0 ~hi:300;
        path
      in
      (* A flipped byte inside the checksummed header region. *)
      corrupt_file (fresh ()) (fun b ->
          Bytes.set b 40 (Char.chr (Char.code (Bytes.get b 40) lxor 0xff));
          b);
      expect_corrupt "torn header" (fun () -> Segment.openf path);
      (* Truncation: the header's file length no longer matches. *)
      corrupt_file (fresh ()) (fun b -> Bytes.sub b 0 (Bytes.length b - 16));
      expect_corrupt "truncated" (fun () -> Segment.openf path);
      (* Bad magic. *)
      corrupt_file (fresh ()) (fun b ->
          Bytes.blit_string "not a seg" 0 b 0 8;
          b);
      expect_corrupt "bad magic" (fun () -> Segment.openf path))

(* --- stores --- *)

let test_store_roundtrip () =
  let rng = Tutil.rng 23 in
  List.iter
    (fun (n, weighted) ->
      with_tmpdir (fun dir ->
          let t = random_table ~weighted rng n 3 in
          let st = Store.spill ~segment_rows:64 ~dir t in
          check_int "stored rows" n (Store.rows st);
          check_bool "round-trip" true (tables_identical t (Store.to_table st));
          (* Reopen from the manifest alone. *)
          let st2 = Store.open_dir dir in
          check_int "reopened rows" n (Store.rows st2);
          check_int "reopened segments" (Store.nsegments st) (Store.nsegments st2);
          check_bool "reopened round-trip" true
            (tables_identical t (Store.to_table st2))))
    [ (0, true); (63, false); (64, true); (777, true) ]

let test_store_stats_persisted () =
  with_tmpdir (fun dir ->
      let t = Table.create ~name:"t" [| "a"; "b" |] in
      for i = 0 to 499 do
        Table.append t [| i; 1000 - i |]
      done;
      let st = Store.open_dir (Store.dir (Store.spill ~segment_rows:100 ~dir t)) in
      let stats = Store.stats st in
      Alcotest.(check (option int)) "min a" (Some 0) (Colstats.min_value stats 0);
      Alcotest.(check (option int)) "max a" (Some 499) (Colstats.max_value stats 0);
      Alcotest.(check (option int)) "min b" (Some 501) (Colstats.min_value stats 1);
      Alcotest.(check (option int)) "max b" (Some 1000) (Colstats.max_value stats 1))

let test_store_sync_and_tail () =
  let rng = Tutil.rng 31 in
  with_tmpdir (fun dir ->
      let t = random_table rng 150 3 in
      (* Whole segments only: 150 rows at 64/segment stores 128. *)
      let st = Store.spill ~segment_rows:64 ~tail:false ~dir t in
      check_int "whole segments stored" 128 (Store.rows st);
      check_bool "prefix + tail ≡ table" true
        (tables_identical t (Segsrc.to_table (Store.source ~tail:t st)));
      (* Grow, sync, check again. *)
      let grow t n =
        let rng = Tutil.rng 37 in
        let extra = random_table rng n 3 in
        Table.iter (fun r -> Table.append_w t (Table.row extra r) (Table.weight extra r)) extra
      in
      grow t 200;
      let st = Store.sync st t in
      check_int "synced whole segments" 320 (Store.rows st);
      check_bool "synced prefix + tail ≡ table" true
        (tables_identical t (Segsrc.to_table (Store.source ~tail:t st)));
      (* Manifest survives reopen after sync. *)
      check_bool "reopen after sync" true
        (tables_identical t
           (Segsrc.to_table (Store.source ~tail:t (Store.open_dir dir)))))

let test_store_manifest_corruption () =
  with_tmpdir (fun dir ->
      let t = Table.create ~name:"t" [| "a" |] in
      Table.append t [| 1 |];
      ignore (Store.spill ~segment_rows:64 ~dir t);
      let manifest = Filename.concat dir "MANIFEST" in
      let oc = open_out manifest in
      output_string oc "pkbstore 99\n";
      close_out oc;
      match Store.open_dir dir with
      | _ -> Alcotest.fail "expected Corrupt on manifest version"
      | exception Store.Corrupt _ -> ())

(* --- segmented scans through the plan executor --- *)

let with_pools f =
  let p1 = Pool.create 1 and p4 = Pool.create 4 in
  Fun.protect
    ~finally:(fun () ->
      Pool.shutdown p1;
      Pool.shutdown p4)
    (fun () -> f p1 p4)

let gen_pred rng width =
  let rec go depth =
    let c = Random.State.int rng width in
    match if depth > 1 then 2 else Random.State.int rng 6 with
    | 0 -> Plan.And (go (depth + 1), go (depth + 1))
    | 1 -> Plan.Or (go (depth + 1), go (depth + 1))
    | 2 | 3 -> Plan.Lt_const (c, Random.State.int rng 40)
    | 4 -> Plan.Not (go (depth + 1))
    | _ -> Plan.Eq_const (c, Random.State.int rng 15)
  in
  go 0

(* Small-domain tables so selections and joins actually hit. *)
let plan_table rng n width kmax =
  let t =
    Table.create ~weighted:(Random.State.bool rng) ~name:"t"
      (Array.init width (Printf.sprintf "c%d"))
  in
  let buf = Array.make width 0 in
  for _ = 1 to n do
    for c = 0 to width - 1 do
      buf.(c) <- Random.State.int rng kmax
    done;
    if Table.weighted t then Table.append_w t buf (Random.State.float rng 1.)
    else Table.append t buf
  done;
  t

let test_spilled_scan_differential () =
  let rng = Tutil.rng 101 in
  with_pools (fun p1 p4 ->
      for _ = 1 to 25 do
        with_tmpdir (fun dir ->
            let n = Random.State.int rng 900 in
            let width = 1 + Random.State.int rng 3 in
            let tbl = plan_table rng n width 50 in
            let st = Store.spill ~segment_rows:64 ~dir tbl in
            let src = Store.source st in
            let pred = gen_pred rng width in
            let mem = Plan.Select (pred, Plan.Scan tbl) in
            let spl = Plan.Select (pred, Plan.Scan_segments src) in
            let expected = Plan.run_materializing mem in
            List.iter
              (fun pool ->
                check_bool "spilled select ≡ in-memory" true
                  (tables_identical expected (Plan.run ~pool spl));
                (* Join with the spilled source on the probe side. *)
                let probe =
                  Plan.Equi_join
                    {
                      left = Plan.Scan tbl;
                      right = Plan.Scan_segments src;
                      lkey = [| 0 |];
                      rkey = [| 0 |];
                    }
                in
                let probe_mem =
                  Plan.Equi_join
                    {
                      left = Plan.Scan tbl;
                      right = Plan.Scan tbl;
                      lkey = [| 0 |];
                      rkey = [| 0 |];
                    }
                in
                check_bool "spilled probe join ≡ in-memory" true
                  (tables_identical
                     (Plan.run_materializing probe_mem)
                     (Plan.run ~pool probe)))
              [ p1; p4 ])
      done)

let test_pruning_invariant_and_counted () =
  with_tmpdir (fun dir ->
      (* Ascending key column → disjoint per-segment zone maps. *)
      let t = Table.create ~name:"t" [| "k"; "v" |] in
      for i = 0 to 999 do
        Table.append t [| i; i mod 17 |]
      done;
      let st = Store.spill ~segment_rows:64 ~dir t in
      let run plan =
        let obs = Obs.create ~config:Obs.Config.enabled () in
        let out = Obs.with_ambient obs (fun () -> Plan.run plan) in
        (out, Summary.of_trace obs)
      in
      List.iter
        (fun (name, pred) ->
          let spilled, s =
            run (Plan.Select (pred, Plan.Scan_segments (Store.source st)))
          in
          let expected = Plan.run_materializing (Plan.Select (pred, Plan.Scan t)) in
          check_bool (name ^ ": pruning never changes results") true
            (tables_identical expected spilled);
          check_bool (name ^ ": segments skipped") true
            (Summary.counter s "storage.segments_skipped" > 0);
          check_int
            (name ^ ": scanned + skipped = segments")
            (Store.nsegments st)
            (Summary.counter s "storage.segments_scanned"
            + Summary.counter s "storage.segments_skipped"))
        [
          ("eq", Plan.Eq_const (0, 321));
          ("lt", Plan.Lt_const (0, 100));
          ("conj", Plan.And (Plan.Eq_const (0, 700), Plan.Lt_const (1, 40)));
        ];
      (* An unprunable predicate scans everything. *)
      let _, s =
        run
          (Plan.Select (Plan.Lt_const (1, 40), Plan.Scan_segments (Store.source st)))
      in
      check_int "unprunable: nothing skipped" 0
        (Summary.counter s "storage.segments_skipped"))

(* --- Table_io format versioning --- *)

let test_table_io_version_roundtrip =
  Tutil.qcheck_case "Table_io round-trip at the current format version"
    QCheck.(list (pair (pair small_int small_int) (option (float_bound_inclusive 1.0))))
    (fun rows ->
      let weighted = List.exists (fun (_, w) -> w <> None) rows in
      let t = Table.create ~weighted ~name:"t" [| "a"; "b" |] in
      List.iter
        (fun ((a, b), w) ->
          if weighted then
            Table.append_w t [| a; b |]
              (match w with Some w -> w | None -> Table.null_weight)
          else Table.append t [| a; b |])
        rows;
      let path = fresh_tmp "tio" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
        (fun () ->
          Table_io.to_file t path;
          tables_identical t (Table_io.of_file path)))

let test_table_io_rejects_other_versions () =
  let reject name content =
    let path = fresh_tmp "tio" in
    let oc = open_out path in
    output_string oc content;
    close_out oc;
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        match Table_io.of_file path with
        | _ -> Alcotest.failf "%s: expected Parse_error" name
        | exception Table_io.Parse_error _ -> ())
  in
  reject "unversioned v1 header" "#table t a b\n0\t1\n";
  reject "future version" "#table:99 t a b\n0\t1\n";
  reject "not a table file" "hello\n"

(* --- spilled grounding differentials --- *)

let spilled_policy dir = Spill.create ~segment_rows:128 ~threshold_bytes:0 ~root:dir ()

let workload_kb seed =
  Workload.Reverb_sherlock.kb
    (Workload.Reverb_sherlock.generate
       { Workload.Reverb_sherlock.default_config with scale = 0.008; seed })

let test_ground_spilled_differential () =
  List.iter
    (fun seed ->
      let kb = workload_kb seed in
      let kb1 = Tutil.copy_gamma kb in
      let r1 = Grounding.Ground.run kb1 in
      with_tmpdir (fun dir ->
          let kb2 = Tutil.copy_gamma kb in
          let r2 =
            Grounding.Ground.run
              ~options:
                {
                  Grounding.Ground.default_options with
                  spill = Some (spilled_policy dir);
                }
              kb2
          in
          check_bool "a store was written" true
            (Array.length (Sys.readdir dir) > 0);
          Alcotest.(check (list string))
            "same facts"
            (Tutil.fact_strings kb1) (Tutil.fact_strings kb2);
          check_int "same factor count"
            (Factor_graph.Fgraph.size r1.Grounding.Ground.graph)
            (Factor_graph.Fgraph.size r2.Grounding.Ground.graph);
          check_int "same iterations" r1.Grounding.Ground.iterations
            r2.Grounding.Ground.iterations))
    [ 1; 2 ]

let test_mpp_spilled_differential () =
  let cluster = { Mpp.Cluster.default with Mpp.Cluster.nseg = 4 } in
  let kb = workload_kb 3 in
  let kb1 = Tutil.copy_gamma kb in
  let r1 = Grounding.Ground.run kb1 in
  with_tmpdir (fun dir ->
      let kb2 = Tutil.copy_gamma kb in
      let r2 =
        Grounding.Ground_mpp.run
          ~options:
            {
              Grounding.Ground_mpp.default_options with
              spill = Some (spilled_policy dir);
            }
          ~mode:Grounding.Ground_mpp.No_views cluster kb2
      in
      check_bool "shards were written" true (Array.length (Sys.readdir dir) > 0);
      Alcotest.(check (list string))
        "same facts"
        (Tutil.fact_strings kb1) (Tutil.fact_strings kb2);
      check_int "same factor count"
        (Factor_graph.Fgraph.size r1.Grounding.Ground.graph)
        (Factor_graph.Fgraph.size r2.Grounding.Ground_mpp.graph))

let test_dtable_spilled_shards () =
  let cluster = { Mpp.Cluster.default with Mpp.Cluster.nseg = 4 } in
  let rng = Tutil.rng 41 in
  with_tmpdir (fun dir ->
      let t = plan_table rng 500 3 40 in
      let policy = Spill.create ~segment_rows:64 ~threshold_bytes:0 ~root:dir () in
      let resident = Mpp.Dtable.partition cluster t (Mpp.Dtable.Hash [| 0 |]) in
      let spilled =
        Mpp.Dtable.partition_spilled policy ~prefix:"t" cluster t
          (Mpp.Dtable.Hash [| 0 |])
      in
      check_int "same logical rows" (Mpp.Dtable.nrows resident)
        (Mpp.Dtable.nrows spilled);
      check_int "logical byte size is the resident size"
        (Mpp.Dtable.byte_size resident)
        (Mpp.Dtable.byte_size spilled);
      for i = 0 to Mpp.Dtable.nseg spilled - 1 do
        check_bool "shard is disk-backed" true (Mpp.Dtable.spilled spilled i);
        check_int "seg_rows without materializing"
          (Table.nrows (Mpp.Dtable.seg resident i))
          (Mpp.Dtable.seg_rows spilled i);
        check_bool "shard round-trip" true
          (tables_identical (Mpp.Dtable.seg resident i) (Mpp.Dtable.seg spilled i))
      done)

let test_engine_spill_config () =
  let kb = workload_kb 4 in
  let kb1 = Tutil.copy_gamma kb in
  let e1 =
    Probkb.Engine.expand
      (Probkb.Engine.create ~config:(Probkb.Config.make ~inference:None ()) kb1)
  in
  with_tmpdir (fun dir ->
      let kb2 = Tutil.copy_gamma kb in
      let config =
        Probkb.Config.make ~inference:None ~spill_dir:dir
          ~spill_threshold_bytes:0 ~segment_rows:128 ()
      in
      let e2 = Probkb.Engine.expand (Probkb.Engine.create ~config kb2) in
      Alcotest.(check (list string))
        "same facts through the engine"
        (Tutil.fact_strings kb1) (Tutil.fact_strings kb2);
      check_int "same factors" e1.Probkb.Engine.n_factors
        e2.Probkb.Engine.n_factors);
  (* Knob validation. *)
  (match Probkb.Config.make ~segment_rows:0 () with
  | _ -> Alcotest.fail "segment_rows 0 accepted"
  | exception Invalid_argument _ -> ());
  match Probkb.Config.with_spill ~spill_threshold_bytes:(-1) Probkb.Config.default with
  | _ -> Alcotest.fail "negative threshold accepted"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "storage"
    [
      ( "segment",
        [
          Alcotest.test_case "round-trip" `Quick test_segment_roundtrip;
          Alcotest.test_case "ndv" `Quick test_segment_ndv_exact;
          Alcotest.test_case "corruption" `Quick test_segment_corruption_detected;
        ] );
      ( "store",
        [
          Alcotest.test_case "round-trip" `Quick test_store_roundtrip;
          Alcotest.test_case "stats persisted" `Quick test_store_stats_persisted;
          Alcotest.test_case "sync + tail" `Quick test_store_sync_and_tail;
          Alcotest.test_case "manifest corruption" `Quick
            test_store_manifest_corruption;
        ] );
      ( "plan",
        [
          Alcotest.test_case "spilled scan differential" `Quick
            test_spilled_scan_differential;
          Alcotest.test_case "zone-map pruning" `Quick
            test_pruning_invariant_and_counted;
        ] );
      ( "table_io",
        [
          test_table_io_version_roundtrip;
          Alcotest.test_case "version rejection" `Quick
            test_table_io_rejects_other_versions;
        ] );
      ( "grounding",
        [
          Alcotest.test_case "spilled ≡ in-memory" `Quick
            test_ground_spilled_differential;
          Alcotest.test_case "mpp spilled shards ≡ in-memory" `Quick
            test_mpp_spilled_differential;
          Alcotest.test_case "dtable spilled shards" `Quick
            test_dtable_spilled_shards;
          Alcotest.test_case "engine spill config" `Quick
            test_engine_spill_config;
        ] );
    ]
