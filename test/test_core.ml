(* The Probkb facade: configuration plumbing and the full pipeline. *)

let check_int = Alcotest.(check int)

let test_expand_worked_example () =
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  let engine = Probkb.Engine.create ~config:(Probkb.Config.make ~inference:None ()) kb in
  let e = Probkb.Engine.expand engine in
  Alcotest.(check bool) "converged" true e.Probkb.Engine.converged;
  check_int "new facts" 5 e.Probkb.Engine.new_fact_count;
  check_int "factors" 8 e.Probkb.Engine.n_factors;
  check_int "rules used" 6 e.Probkb.Engine.rules_used

let test_run_stores_marginals () =
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  let engine =
    Probkb.Engine.create
      ~config:(Probkb.Config.make ~inference:(Some Inference.Marginal.Exact) ())
      kb
  in
  let result = Probkb.Engine.run engine in
  check_int "all inferred facts got probabilities" 5
    result.Probkb.Engine.marginals_stored;
  (* Base facts keep their extraction confidence. *)
  let base_weights = ref [] in
  Kb.Storage.iter
    (fun ~id:_ ~r:_ ~x:_ ~c1:_ ~y:_ ~c2:_ ~w ->
      if not (Relational.Table.is_null_weight w) then
        base_weights := w :: !base_weights)
    (Kb.Gamma.pi kb);
  Alcotest.(check bool) "extraction confidences preserved" true
    (List.exists (fun w -> Float.abs (w -. 0.96) < 1e-9) !base_weights);
  (* No null weights remain. *)
  let nulls = ref 0 in
  Kb.Storage.iter
    (fun ~id:_ ~r:_ ~x:_ ~c1:_ ~y:_ ~c2:_ ~w ->
      if Relational.Table.is_null_weight w then incr nulls)
    (Kb.Gamma.pi kb);
  check_int "no unresolved facts" 0 !nulls

let test_rule_cleaning_config () =
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  let engine =
    Probkb.Engine.create
      ~config:(Probkb.Config.make ~inference:None ~rule_theta:0.34 ())
      kb
  in
  let e = Probkb.Engine.expand engine in
  (* ceil(0.34 * 6) = 3 rules survive, the heaviest ones. *)
  check_int "rules used" 3 e.Probkb.Engine.rules_used;
  Alcotest.(check bool) "kb rules replaced" true
    (List.length (Kb.Gamma.rules kb) = 3)

let test_semantic_constraints_config () =
  let kb = Kb.Gamma.create () in
  ignore (Kb.Loader.load_rules kb [ "1.0 p(x:A, y:B) :- q(x, y)" ]);
  let add x y =
    ignore (Kb.Gamma.add_fact_by_name kb ~r:"q" ~x ~c1:"A" ~y ~c2:"B" ~w:0.9)
  in
  add "a" "b1";
  add "a" "b2";
  Kb.Gamma.add_funcon kb
    (Kb.Funcon.make ~rel:(Kb.Gamma.relation kb "q") ~ftype:Kb.Funcon.Type_I
       ~degree:1);
  let engine =
    Probkb.Engine.create
      ~config:(Probkb.Config.make ~inference:None ~semantic_constraints:true ())
      kb
  in
  let e = Probkb.Engine.expand engine in
  check_int "violating facts removed" 2 e.Probkb.Engine.removed_by_constraints;
  check_int "nothing inferred from removed facts" 0 e.Probkb.Engine.new_fact_count

let test_mpp_engine_config () =
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  let engine =
    Probkb.Engine.create
      ~config:
        (Probkb.Config.make ~inference:None
           ~engine:
             (Probkb.Config.Mpp
                {
                  cluster = { Mpp.Cluster.default with Mpp.Cluster.nseg = 4 };
                  views = true;
                })
           ())
      kb
  in
  let e = Probkb.Engine.expand engine in
  check_int "same expansion on MPP" 5 e.Probkb.Engine.new_fact_count;
  check_int "same factors on MPP" 8 e.Probkb.Engine.n_factors;
  Alcotest.(check bool) "sim clock reported" true
    (Option.is_some e.Probkb.Engine.sim_seconds)

let test_incremental_incorporate () =
  (* Expand once; then add a new born_in fact and check only its
     consequences are derived — and that the result equals a full
     re-expansion from scratch. *)
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  let engine = Probkb.Engine.create ~config:(Probkb.Config.make ~inference:None ()) kb in
  ignore (Probkb.Engine.expand engine);
  let n_before = Kb.Storage.size (Kb.Gamma.pi kb) in
  let r = Kb.Gamma.relation kb "born_in" in
  let x = Kb.Gamma.entity kb "Phil" in
  let c1 = Kb.Gamma.cls kb "W" in
  let y = Kb.Gamma.entity kb "Queens" in
  let c2 = Kb.Gamma.cls kb "P" in
  let inserted, inferred =
    Probkb.Engine.incorporate engine [ (r, x, c1, y, c2, 0.8) ]
  in
  check_int "one inserted" 1 inserted;
  (* born_in(Phil, Queens) derives live_in and grow_up_in (P-typed
     rules). *)
  check_int "two consequences" 2 inferred;
  check_int "store grew by 3" (n_before + 3) (Kb.Storage.size (Kb.Gamma.pi kb));
  (* Compare against a from-scratch expansion with the same base facts. *)
  let kb2, _, _ = Tutil.ruth_gruber_kb () in
  ignore
    (Kb.Gamma.add_fact_by_name kb2 ~r:"born_in" ~x:"Phil" ~c1:"W" ~y:"Queens"
       ~c2:"P" ~w:0.8);
  ignore (Grounding.Ground.run kb2);
  check_int "incremental = from scratch"
    (Kb.Storage.size (Kb.Gamma.pi kb2))
    (Kb.Storage.size (Kb.Gamma.pi kb));
  (* Duplicate insertions are no-ops. *)
  let inserted, inferred =
    Probkb.Engine.incorporate engine [ (r, x, c1, y, c2, 0.8) ]
  in
  check_int "dup insert" 0 inserted;
  check_int "dup infers nothing" 0 inferred

let test_incremental_chain_reaction () =
  (* New facts can cascade through two-atom rules. *)
  let kb = Kb.Gamma.create () in
  ignore
    (Kb.Loader.load_rules kb
       [ "1.0 anc(x:P, y:P) :- par(x, y)";
         "1.0 anc(x:P, y:P) :- anc(x, z:P), anc(z, y)" ]);
  let pair a b =
    ( Kb.Gamma.relation kb "par",
      Kb.Gamma.entity kb a,
      Kb.Gamma.cls kb "P",
      Kb.Gamma.entity kb b,
      Kb.Gamma.cls kb "P",
      1.0 )
  in
  let engine = Probkb.Engine.create ~config:(Probkb.Config.make ~inference:None ()) kb in
  ignore (Probkb.Engine.incorporate engine [ pair "a" "b"; pair "c" "d" ]);
  (* Two disconnected edges: anc(a,b), anc(c,d). *)
  check_int "4 facts" 4 (Kb.Storage.size (Kb.Gamma.pi kb));
  (* The bridging edge connects everything: a-b-c-d. *)
  ignore (Probkb.Engine.incorporate engine [ pair "b" "c" ]);
  (* anc = all 6 ordered pairs along the chain. *)
  let anc = Kb.Gamma.relation kb "anc" in
  let count = ref 0 in
  Kb.Storage.iter
    (fun ~id:_ ~r ~x:_ ~c1:_ ~y:_ ~c2:_ ~w:_ -> if r = anc then incr count)
    (Kb.Gamma.pi kb);
  check_int "anc closure after bridge" 6 !count

let test_incorporate_batches_differential =
  (* Feeding the same extractions through [incorporate] in k batches must
     reach the same closure as one from-scratch expansion over their
     union — the insert-path mirror of the retract differential in
     test_incremental. *)
  Tutil.qcheck_case ~count:10 "incorporate over batches = from-scratch expand"
    QCheck.(pair small_nat (int_range 2 5))
    (fun (seed, k) ->
      let g =
        Workload.Reverb_sherlock.generate
          { Workload.Reverb_sherlock.default_config with scale = 0.004; seed }
      in
      let proto = Workload.Reverb_sherlock.kb g in
      let base = ref [] in
      Kb.Storage.iter
        (fun ~id:_ ~r ~x ~c1 ~y ~c2 ~w ->
          base := (r, x, c1, y, c2, w) :: !base)
        (Kb.Gamma.pi proto);
      let base = List.rev !base in
      (* Deal the extractions round-robin into k arrival batches. *)
      let batches = Array.make k [] in
      List.iteri (fun i f -> batches.(i mod k) <- f :: batches.(i mod k)) base;
      let inc_kb = Kb.Gamma.create_like proto in
      List.iter (Kb.Gamma.add_rule inc_kb) (Kb.Gamma.rules proto);
      let engine =
        Probkb.Engine.create
          ~config:(Probkb.Config.make ~inference:None ())
          inc_kb
      in
      Array.iter
        (fun b -> ignore (Probkb.Engine.incorporate engine (List.rev b)))
        batches;
      let oracle = Tutil.copy_gamma proto in
      ignore (Grounding.Ground.closure oracle);
      let view kb =
        let acc = ref [] in
        Kb.Storage.iter
          (fun ~id:_ ~r ~x ~c1 ~y ~c2 ~w ->
            acc := (r, x, c1, y, c2, Relational.Table.is_null_weight w) :: !acc)
          (Kb.Gamma.pi kb);
        List.sort compare !acc
      in
      view inc_kb = view oracle)

(* Minimal substring search to avoid extra dependencies. *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_report_rendering () =
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  let engine =
    Probkb.Engine.create
      ~config:(Probkb.Config.make ~inference:(Some Inference.Marginal.Exact) ())
      kb
  in
  let result = Probkb.Engine.run engine in
  let text = Fmt.str "%a" Probkb.Report.pp_result result in
  Alcotest.(check bool) "mentions convergence" true
    (contains text "converged");
  Alcotest.(check bool) "mentions marginals" true
    (contains text "marginals stored: 5");
  let kb_text = Fmt.str "%a" Probkb.Report.pp_kb kb in
  Alcotest.(check bool) "lists relations" true (contains kb_text "born_in")

let test_expansion_trajectory () =
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  let engine =
    Probkb.Engine.create ~config:(Probkb.Config.make ~inference:None ()) kb
  in
  let e = Probkb.Engine.expand engine in
  let traj = e.Probkb.Engine.trajectory in
  (* No constraint hook: one point per closure iteration, no pre-pass. *)
  check_int "one point per iteration" e.Probkb.Engine.iterations
    (List.length traj);
  let total =
    List.fold_left
      (fun acc (p : Grounding.Ground.trajectory_point) ->
        acc + p.Grounding.Ground.new_facts)
      0 traj
  in
  check_int "trajectory sums to the new-fact count"
    e.Probkb.Engine.new_fact_count total;
  (* total_facts is non-decreasing without deletions. *)
  let rec monotone = function
    | (a : Grounding.Ground.trajectory_point)
      :: (b : Grounding.Ground.trajectory_point) :: rest ->
      a.Grounding.Ground.total_facts <= b.Grounding.Ground.total_facts
      && monotone (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "totals monotone" true (monotone traj);
  (* The bar plot renders, and both JSON encoders include the curve. *)
  let text = Fmt.str "%a" Probkb.Report.pp_trajectory traj in
  Alcotest.(check bool) "plot mentions totals" true (contains text "total");
  let json = Obs.Json.to_string (Probkb.Report.expansion_to_json e) in
  Alcotest.(check bool) "expansion JSON carries trajectory" true
    (contains json "\"trajectory\"")

let test_trajectory_with_constraints () =
  let kb = Kb.Gamma.create () in
  ignore (Kb.Loader.load_rules kb [ "1.0 p(x:A, y:B) :- q(x, y)" ]);
  let add x y =
    ignore (Kb.Gamma.add_fact_by_name kb ~r:"q" ~x ~c1:"A" ~y ~c2:"B" ~w:0.9)
  in
  add "a" "b1";
  add "a" "b2";
  Kb.Gamma.add_funcon kb
    (Kb.Funcon.make ~rel:(Kb.Gamma.relation kb "q") ~ftype:Kb.Funcon.Type_I
       ~degree:1);
  let engine =
    Probkb.Engine.create
      ~config:(Probkb.Config.make ~inference:None ~semantic_constraints:true ())
      kb
  in
  let e = Probkb.Engine.expand engine in
  match e.Probkb.Engine.trajectory with
  | (p0 : Grounding.Ground.trajectory_point) :: _ ->
    check_int "pre-pass is point 0" 0 p0.Grounding.Ground.iteration;
    check_int "pre-pass sees the violation" 1 p0.Grounding.Ground.violations;
    check_int "pre-pass removes both facts" 2 p0.Grounding.Ground.removed
  | [] -> Alcotest.fail "constraint run must record the pre-pass"

let test_run_reports_sampler_info () =
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  let engine =
    Probkb.Engine.create
      ~config:
        (Probkb.Config.make
           ~inference:
             (Some
                (Inference.Marginal.Chromatic
                   { Inference.Gibbs.burn_in = 50; samples = 200; seed = 3 }))
           ~target_r_hat:1.5 ~min_ess:5. ~checkpoint_sweeps:10 ())
      kb
  in
  let result = Probkb.Engine.run engine in
  (match result.Probkb.Engine.inference with
  | Some (Inference.Marginal.Chromatic_run i) ->
    Alcotest.(check bool) "sweeps recorded" true
      (i.Inference.Chromatic.sweeps_run > 0);
    (match i.Inference.Chromatic.diag with
    | Some _ -> ()
    | None -> Alcotest.fail "early-stop config implies online diagnostics")
  | Some _ | None -> Alcotest.fail "Chromatic run must report sampler info");
  let text = Fmt.str "%a" Probkb.Report.pp_result result in
  Alcotest.(check bool) "report mentions the sampler" true
    (contains text "sampler:");
  let json = Obs.Json.to_string (Probkb.Report.result_to_json result) in
  Alcotest.(check bool) "JSON carries sweeps_run" true
    (contains json "\"sweeps_run\"");
  Alcotest.(check bool) "JSON carries stopped_at_sweep" true
    (contains json "\"stopped_at_sweep\"")

let test_config_early_stop () =
  let c = Probkb.Config.make () in
  Alcotest.(check bool) "no criteria by default" true
    (Probkb.Config.early_stop_criteria c = None);
  let c' = Probkb.Config.with_early_stop ~target_r_hat:1.05 c in
  (match Probkb.Config.early_stop_criteria c' with
  | Some crit ->
    Alcotest.(check (float 1e-9)) "target carried" 1.05
      crit.Inference.Diagnostics.Online.target_r_hat;
    Alcotest.(check (float 1e-9)) "unset ESS never binds" 0.
      crit.Inference.Diagnostics.Online.min_ess
  | None -> Alcotest.fail "criterion set but not reported");
  match Probkb.Config.make ~checkpoint_sweeps:0 () with
  | _ -> Alcotest.fail "checkpoint_sweeps 0 must be rejected"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "core"
    [
      ( "engine",
        [
          Alcotest.test_case "expand worked example" `Quick
            test_expand_worked_example;
          Alcotest.test_case "run stores marginals" `Quick
            test_run_stores_marginals;
          Alcotest.test_case "rule cleaning" `Quick test_rule_cleaning_config;
          Alcotest.test_case "semantic constraints" `Quick
            test_semantic_constraints_config;
          Alcotest.test_case "mpp engine" `Quick test_mpp_engine_config;
          Alcotest.test_case "incremental incorporate" `Quick
            test_incremental_incorporate;
          Alcotest.test_case "incremental cascade" `Quick
            test_incremental_chain_reaction;
          test_incorporate_batches_differential;
          Alcotest.test_case "report rendering" `Quick test_report_rendering;
        ] );
      ( "live run health",
        [
          Alcotest.test_case "expansion trajectory" `Quick
            test_expansion_trajectory;
          Alcotest.test_case "trajectory with constraints" `Quick
            test_trajectory_with_constraints;
          Alcotest.test_case "sampler info in result" `Quick
            test_run_reports_sampler_info;
          Alcotest.test_case "early-stop config" `Quick test_config_early_stop;
        ] );
    ]
