(* The observability subsystem: deterministic span trees across pool
   sizes, counter totals on the worked example, EXPLAIN instrumentation,
   and JSON round-trips of summaries. *)

module Obs = Probkb.Obs
module Summary = Obs.Summary

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Span-tree shape with timings erased. *)
type shape = Node of string * int * shape list

let rec shape (n : Summary.node) =
  Node (n.Summary.name, n.Summary.count, List.map shape n.Summary.children)

let expand_with_obs () =
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  let config =
    Probkb.Config.make ~inference:None ~obs:Obs.Config.enabled ()
  in
  let engine = Probkb.Engine.create ~config kb in
  let e = Probkb.Engine.expand engine in
  (kb, e)

let with_pool_size d f =
  Pool.set_default_size d;
  Fun.protect ~finally:(fun () -> Pool.set_default_size (Pool.env_domains ())) f

let test_span_tree_deterministic () =
  let shapes_at d =
    with_pool_size d (fun () ->
        let _, e = expand_with_obs () in
        List.map shape e.Probkb.Engine.obs.Summary.spans)
  in
  let s1 = shapes_at 1 and s4 = shapes_at 4 in
  check_bool "same span tree for pool sizes 1 and 4" true (s1 = s4);
  (* The expand stage nests the closure, its iterations and the M-pattern
     queries. *)
  let _, e = expand_with_obs () in
  let s = e.Probkb.Engine.obs in
  check_bool "expand > closure > iteration 1 > M1 present" true
    (Option.is_some (Summary.find s [ "expand"; "closure"; "iteration 1"; "M1" ]));
  check_bool "factor span present" true
    (Option.is_some (Summary.find s [ "expand"; "factors" ]))

let test_counters_worked_example () =
  let _, e = expand_with_obs () in
  let s = e.Probkb.Engine.obs in
  (* The worked example derives exactly 5 new facts (Figure 2). *)
  check_int "ground.new_facts" 5 (Summary.counter s "ground.new_facts");
  check_int "iterations counted" e.Probkb.Engine.iterations
    (Summary.counter s "ground.iterations");
  check_int "factors counted" e.Probkb.Engine.n_factors
    (Summary.counter s "ground.clause_factors"
    + Summary.counter s "ground.singleton_factors");
  (* Operator counters obey their own bookkeeping identity. *)
  check_int "distinct rows_in - duplicates = rows_out"
    (Summary.counter s "distinct.rows_in"
    - Summary.counter s "distinct.duplicates")
    (Summary.counter s "distinct.rows_out");
  check_bool "joins recorded" true (Summary.counter s "join.joins" > 0)

let test_explain_est_vs_observed () =
  let kb, _ = expand_with_obs () in
  let prepared = Grounding.Queries.prepare (Kb.Gamma.partitions kb) in
  let pi = Kb.Gamma.pi kb in
  let checked = ref 0 in
  List.iter
    (fun pat ->
      if Mln.Partition.count (Grounding.Queries.partitions prepared) pat > 0
      then begin
        incr checked;
        let plan = Grounding.Queries.atoms_plan prepared pat pi in
        let table, a = Relational.Plan.analyze plan in
        check_int "observed rows match the result" (Relational.Table.nrows table)
          a.Relational.Plan.rows;
        check_bool "estimate is non-negative" true (a.Relational.Plan.est_rows >= 0);
        check_bool "plan has children" true (a.Relational.Plan.children <> []);
        check_bool "timing is non-negative" true (a.Relational.Plan.seconds >= 0.)
      end)
    Mln.Pattern.all;
  check_bool "at least one active pattern" true (!checked > 0)

let test_summary_json_roundtrip () =
  let obs = Obs.create ~config:Obs.Config.enabled () in
  Obs.with_ambient obs (fun () ->
      Obs.with_span obs "root" (fun () ->
          Obs.with_span obs "child" (fun () -> ());
          Obs.with_span obs "child" (fun () -> ()));
      Obs.add obs "c.hits" 3;
      Obs.incr obs "c.hits";
      Obs.add_time obs "t.busy" 0.125;
      Obs.gauge obs "g.skew" 2.5);
  let s = Summary.of_trace obs in
  check_int "aggregated count" 2
    (match Summary.find s [ "root"; "child" ] with
    | Some n -> n.Summary.count
    | None -> -1);
  let s' = Summary.of_json_string (Obs.Json.to_string (Summary.to_json s)) in
  check_bool "round-trips through JSON text" true (s = s');
  (* Engine summaries survive the same round-trip. *)
  let _, e = expand_with_obs () in
  let es = e.Probkb.Engine.obs in
  let es' = Summary.of_json_string (Obs.Json.to_string (Summary.to_json es)) in
  check_bool "engine summary round-trips" true (es = es')

let test_malformed_json () =
  check_bool "unterminated object rejected" true
    (Obs.Json.of_string_opt "{\"a\": " = None);
  check_bool "garbage rejected" true (Obs.Json.of_string_opt "nonsense" = None);
  let raised =
    try
      ignore (Summary.of_json_string "[1, 2]");
      false
    with Obs.Json.Malformed _ | Failure _ -> true
  in
  check_bool "non-summary JSON rejected" true raised

let test_disabled_trace_is_inert () =
  let _, e =
    let kb, _, _ = Tutil.ruth_gruber_kb () in
    let engine =
      Probkb.Engine.create ~config:(Probkb.Config.make ~inference:None ()) kb
    in
    (kb, Probkb.Engine.expand engine)
  in
  let s = e.Probkb.Engine.obs in
  check_bool "no spans recorded when disabled" true (s.Summary.spans = []);
  check_int "no counters recorded when disabled" 0
    (List.length s.Summary.counters)

let () =
  Alcotest.run "obs"
    [
      ( "tracing",
        [
          Alcotest.test_case "span tree deterministic across pool sizes"
            `Quick test_span_tree_deterministic;
          Alcotest.test_case "counters on the worked example" `Quick
            test_counters_worked_example;
          Alcotest.test_case "disabled trace is inert" `Quick
            test_disabled_trace_is_inert;
        ] );
      ( "explain",
        [
          Alcotest.test_case "estimated vs observed rows" `Quick
            test_explain_est_vs_observed;
        ] );
      ( "json",
        [
          Alcotest.test_case "summary round-trip" `Quick
            test_summary_json_roundtrip;
          Alcotest.test_case "malformed input" `Quick test_malformed_json;
        ] );
    ]
