(* The observability subsystem: deterministic span trees across pool
   sizes, counter totals on the worked example, EXPLAIN instrumentation,
   and JSON round-trips of summaries. *)

module Obs = Probkb.Obs
module Summary = Obs.Summary

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Span-tree shape with timings erased. *)
type shape = Node of string * int * shape list

let rec shape (n : Summary.node) =
  Node (n.Summary.name, n.Summary.count, List.map shape n.Summary.children)

let expand_with_obs () =
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  let config =
    Probkb.Config.make ~inference:None ~obs:Obs.Config.enabled ()
  in
  let engine = Probkb.Engine.create ~config kb in
  let e = Probkb.Engine.expand engine in
  (kb, e)

let with_pool_size d f =
  Pool.set_default_size d;
  Fun.protect ~finally:(fun () -> Pool.set_default_size (Pool.env_domains ())) f

let test_span_tree_deterministic () =
  let shapes_at d =
    with_pool_size d (fun () ->
        let _, e = expand_with_obs () in
        List.map shape e.Probkb.Engine.obs.Summary.spans)
  in
  let s1 = shapes_at 1 and s4 = shapes_at 4 in
  check_bool "same span tree for pool sizes 1 and 4" true (s1 = s4);
  (* The expand stage nests the closure, its iterations and the M-pattern
     queries. *)
  let _, e = expand_with_obs () in
  let s = e.Probkb.Engine.obs in
  check_bool "expand > closure > iteration 1 > M1 present" true
    (Option.is_some (Summary.find s [ "expand"; "closure"; "iteration 1"; "M1" ]));
  check_bool "factor span present" true
    (Option.is_some (Summary.find s [ "expand"; "factors" ]))

let test_counters_worked_example () =
  let _, e = expand_with_obs () in
  let s = e.Probkb.Engine.obs in
  (* The worked example derives exactly 5 new facts (Figure 2). *)
  check_int "ground.new_facts" 5 (Summary.counter s "ground.new_facts");
  check_int "iterations counted" e.Probkb.Engine.iterations
    (Summary.counter s "ground.iterations");
  check_int "factors counted" e.Probkb.Engine.n_factors
    (Summary.counter s "ground.clause_factors"
    + Summary.counter s "ground.singleton_factors");
  (* Operator counters obey their own bookkeeping identity. *)
  check_int "distinct rows_in - duplicates = rows_out"
    (Summary.counter s "distinct.rows_in"
    - Summary.counter s "distinct.duplicates")
    (Summary.counter s "distinct.rows_out");
  check_bool "joins recorded" true (Summary.counter s "join.joins" > 0)

let test_explain_est_vs_observed () =
  let kb, _ = expand_with_obs () in
  let prepared = Grounding.Queries.prepare (Kb.Gamma.partitions kb) in
  let pi = Kb.Gamma.pi kb in
  let checked = ref 0 in
  List.iter
    (fun pat ->
      if Mln.Partition.count (Grounding.Queries.partitions prepared) pat > 0
      then begin
        incr checked;
        let plan = Grounding.Queries.atoms_plan prepared pat pi in
        let table, a = Relational.Plan.analyze plan in
        check_int "observed rows match the result" (Relational.Table.nrows table)
          a.Relational.Plan.rows;
        check_bool "estimate is non-negative" true (a.Relational.Plan.est_rows >= 0);
        check_bool "plan has children" true (a.Relational.Plan.children <> []);
        check_bool "timing is non-negative" true (a.Relational.Plan.seconds >= 0.)
      end)
    Mln.Pattern.all;
  check_bool "at least one active pattern" true (!checked > 0)

let test_summary_json_roundtrip () =
  let obs = Obs.create ~config:Obs.Config.enabled () in
  Obs.with_ambient obs (fun () ->
      Obs.with_span obs "root" (fun () ->
          Obs.with_span obs "child" (fun () -> ());
          Obs.with_span obs "child" (fun () -> ()));
      Obs.add obs "c.hits" 3;
      Obs.incr obs "c.hits";
      Obs.add_time obs "t.busy" 0.125;
      Obs.gauge obs "g.skew" 2.5);
  let s = Summary.of_trace obs in
  check_int "aggregated count" 2
    (match Summary.find s [ "root"; "child" ] with
    | Some n -> n.Summary.count
    | None -> -1);
  let s' = Summary.of_json_string (Obs.Json.to_string (Summary.to_json s)) in
  check_bool "round-trips through JSON text" true (s = s');
  (* Engine summaries survive the same round-trip. *)
  let _, e = expand_with_obs () in
  let es = e.Probkb.Engine.obs in
  let es' = Summary.of_json_string (Obs.Json.to_string (Summary.to_json es)) in
  check_bool "engine summary round-trips" true (es = es')

let test_malformed_json () =
  check_bool "unterminated object rejected" true
    (Obs.Json.of_string_opt "{\"a\": " = None);
  check_bool "garbage rejected" true (Obs.Json.of_string_opt "nonsense" = None);
  let raised =
    try
      ignore (Summary.of_json_string "[1, 2]");
      false
    with Obs.Json.Malformed _ | Failure _ -> true
  in
  check_bool "non-summary JSON rejected" true raised

let test_nonfinite_json () =
  (* Non-finite floats encode as strings — the output stays valid JSON. *)
  let enc v = Obs.Json.to_string (Obs.Json.Float v) in
  Alcotest.(check string) "nan" "\"NaN\"" (enc Float.nan);
  Alcotest.(check string) "inf" "\"Infinity\"" (enc Float.infinity);
  Alcotest.(check string) "-inf" "\"-Infinity\"" (enc Float.neg_infinity);
  (* The encoded document parses back, and the accessor recovers the
     float. *)
  let doc =
    Obs.Json.to_string
      (Obs.Json.Obj
         [ ("r_hat", Obs.Json.Float Float.nan);
           ("ess", Obs.Json.Float Float.infinity);
           ("x", Obs.Json.Float 1.5) ])
  in
  let parsed = Obs.Json.of_string doc in
  let f name =
    Option.bind (Obs.Json.member name parsed) Obs.Json.to_float
  in
  check_bool "NaN round-trips" true
    (match f "r_hat" with Some v -> Float.is_nan v | None -> false);
  check_bool "Infinity round-trips" true (f "ess" = Some Float.infinity);
  check_bool "finite untouched" true (f "x" = Some 1.5);
  (* Bare non-finite tokens (what a naive printer would emit) are
     rejected with a clear error. *)
  List.iter
    (fun s ->
      check_bool (s ^ " rejected") true (Obs.Json.of_string_opt s = None))
    [ "NaN"; "Infinity"; "-Infinity"; "{\"a\": NaN}"; "[-Infinity]" ];
  let msg =
    try
      ignore (Obs.Json.of_string "NaN");
      ""
    with Obs.Json.Malformed m -> m
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool "error explains the encoding" true (contains msg "non-finite")

(* --- histograms --- *)

module Hist = Obs.Hist

let record_hist_at d values =
  with_pool_size d (fun () ->
      let obs = Obs.create ~config:Obs.Config.enabled () in
      let pool = Pool.get_default () in
      let values = Array.of_list values in
      (* Dynamic scheduling: which domain records which observation
         differs run to run and pool size to pool size — the merged
         result must not. *)
      Pool.parallel_for pool ~n:(Array.length values) (fun i ->
          Obs.observe obs "h" values.(i));
      Summary.of_trace obs)

let test_hist_pool_determinism =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30
       ~name:"hist merged across pool sizes 1 vs 4 is bit-identical"
       QCheck.(small_list (map Float.abs float))
       (fun values ->
         let s1 = record_hist_at 1 values and s4 = record_hist_at 4 values in
         let j s = Obs.Json.to_string (Summary.to_json s) in
         (match (Summary.hist s1 "h", Summary.hist s4 "h") with
         | Some h1, Some h4 ->
           Hist.equal h1 h4
           && Hist.count h1 = List.length values
           && Hist.sum_micro h1 = Hist.sum_micro h4
           && Hist.buckets h1 = Hist.buckets h4
         | None, None -> values = []
         | _ -> false)
         && j s1 = j s4))

let test_hist_json_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:50 ~name:"hist JSON round-trip"
       QCheck.(small_list (map Float.abs float))
       (fun values ->
         let h = Hist.create () in
         List.iter (Hist.observe h) values;
         let h' = Hist.of_json (Hist.to_json h) in
         Hist.equal h h'))

let test_hist_summary_roundtrip () =
  let obs = Obs.create ~config:Obs.Config.enabled () in
  Obs.observe obs "lat" 0.003;
  Obs.observe obs "lat" 0.04;
  Obs.observe obs "lat|op=q" 1e9;
  let s = Summary.of_trace obs in
  let s' = Summary.of_json_string (Obs.Json.to_string (Summary.to_json s)) in
  check_bool "summary with hists round-trips" true (s = s');
  check_bool "hist accessor finds the series" true
    (match Summary.hist s "lat" with
    | Some h -> Hist.count h = 2
    | None -> false)

let test_hist_quantile_edges () =
  let feq a b = Float.abs (a -. b) <= 1e-12 *. Float.max 1. (Float.abs b) in
  (* Empty: no rank to interpolate. *)
  let h = Hist.create () in
  check_bool "empty quantile is nan" true (Float.is_nan (Hist.quantile h 0.5));
  check_bool "empty max is nan" true (Float.is_nan (Hist.max_value h));
  (* Single occupied bucket: every quantile interpolates inside it. *)
  let h = Hist.create () in
  for _ = 1 to 5 do
    Hist.observe h 0.01
  done;
  let lower, upper =
    let i = ref 0 in
    while Hist.bound !i < 0.01 do
      incr i
    done;
    ((if !i = 0 then 0. else Hist.bound (!i - 1)), Hist.bound !i)
  in
  List.iter
    (fun q ->
      let v = Hist.quantile h q in
      check_bool "quantile inside the occupied bucket" true
        (v >= lower && v <= upper))
    [ 0.; 0.25; 0.5; 0.99; 1. ];
  check_bool "q=1 reaches the bucket's upper bound" true
    (feq (Hist.quantile h 1.) upper);
  (* Sub-resolution values land in bucket 0, whose lower edge is 0. *)
  let h = Hist.create () in
  Hist.observe h 1e-9;
  check_bool "tiny value quantile within bucket 0" true
    (Hist.quantile h 0.5 <= Hist.bound 0);
  (* Overflow bucket: quantiles and max clamp to the last finite bound. *)
  let h = Hist.create () in
  Hist.observe h 1e9;
  let last = Hist.bound (Hist.finite_buckets - 1) in
  check_bool "overflow quantile clamps" true (feq (Hist.quantile h 0.99) last);
  check_bool "overflow max clamps" true (feq (Hist.max_value h) last);
  check_bool "overflow counted" true (Hist.count h = 1);
  (* Exact bucket bounds are inclusive upper edges. *)
  let h = Hist.create () in
  Hist.observe h (Hist.bound 7);
  let b = Hist.buckets h in
  check_int "observation on a bound lands in that bucket" 1 b.(7)

let test_hist_merge_into () =
  let a = Hist.create () and b = Hist.create () in
  List.iter (Hist.observe a) [ 0.001; 0.002 ];
  List.iter (Hist.observe b) [ 0.004; 1e9 ];
  Hist.merge_into a b;
  check_int "merged count" 4 (Hist.count a);
  check_bool "merged sum" true
    (Float.abs (Hist.sum a -. (0.007 +. 1e9)) < 1e-5 *. 1e9);
  let expect = Hist.create () in
  List.iter (Hist.observe expect) [ 0.001; 0.002; 0.004; 1e9 ];
  check_bool "merge equals direct observation" true (Hist.equal a expect)

(* --- snapshots --- *)

let collect_snapshots ?(config = Probkb.Config.make ~inference:None ()) kb =
  let engine = Probkb.Engine.create ~config kb in
  let snaps = ref [] in
  Probkb.Obs.set_snapshot_sink
    (Probkb.Engine.trace engine)
    (Some (fun s -> snaps := s :: !snaps));
  let e = Probkb.Engine.expand engine in
  Probkb.Obs.set_snapshot_sink (Probkb.Engine.trace engine) None;
  (e, List.rev !snaps)

let test_snapshots_per_iteration () =
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  let e, snaps = collect_snapshots kb in
  let ground =
    List.filter (fun s -> s.Obs.Snapshot.stage = "ground") snaps
  in
  (* One snapshot per closure iteration (no constraint hook, so no
     iteration-0 pre-pass). *)
  check_int "one snapshot per grounding iteration" e.Probkb.Engine.iterations
    (List.length ground);
  List.iteri
    (fun i s ->
      check_int "step is the iteration number" (i + 1) s.Obs.Snapshot.step;
      check_bool "point" true (s.Obs.Snapshot.point = "iteration"))
    ground;
  (* seq is monotone over the stream. *)
  let seqs = List.map (fun s -> s.Obs.Snapshot.seq) snaps in
  check_bool "seq monotone" true (List.sort compare seqs = seqs);
  (* Snapshots flow without span recording: the trace stayed disabled. *)
  check_bool "trace stayed disabled" true
    ((Probkb.Engine.expand (Probkb.Engine.create kb)).Probkb.Engine.obs
     |> fun s -> s.Summary.spans = [])

let test_snapshot_json_roundtrip () =
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  let _, snaps = collect_snapshots kb in
  check_bool "collected something" true (snaps <> []);
  List.iter
    (fun s ->
      let s' =
        Obs.Snapshot.of_json_string
          (Obs.Json.to_string (Obs.Snapshot.to_json s))
      in
      check_bool "snapshot round-trips" true (s = s'))
    snaps

let test_snapshots_deterministic_across_pools () =
  let content_at d =
    with_pool_size d (fun () ->
        let kb, _, _ = Tutil.ruth_gruber_kb () in
        let _, snaps = collect_snapshots kb in
        List.map
          (fun s -> Obs.Json.to_string (Obs.Snapshot.deterministic_json s))
          snaps)
  in
  let c1 = content_at 1 and c4 = content_at 4 in
  check_bool "non-empty" true (c1 <> []);
  check_bool "snapshot content identical for pool sizes 1 and 4" true
    (c1 = c4)

let test_ndjson_sink () =
  let path = Filename.temp_file "probkb_snaps" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let kb, _, _ = Tutil.ruth_gruber_kb () in
      let engine =
        Probkb.Engine.create ~config:(Probkb.Config.make ~inference:None ()) kb
      in
      let oc = open_out path in
      Probkb.Obs.set_snapshot_sink
        (Probkb.Engine.trace engine)
        (Some (Obs.Snapshot.ndjson oc));
      let e = Probkb.Engine.expand engine in
      Probkb.Obs.set_snapshot_sink (Probkb.Engine.trace engine) None;
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      let lines = List.rev !lines in
      check_int "one NDJSON line per iteration" e.Probkb.Engine.iterations
        (List.length lines);
      let prev_at = ref neg_infinity in
      List.iter
        (fun line ->
          let s = Obs.Snapshot.of_json_string line in
          check_bool "at is monotone" true (s.Obs.Snapshot.at >= !prev_at);
          prev_at := s.Obs.Snapshot.at)
        lines)

let test_null_sink_refused () =
  Probkb.Obs.set_snapshot_sink Probkb.Obs.null (Some (fun _ -> ()));
  check_bool "null never accepts a sink" false
    (Probkb.Obs.snapshots_enabled Probkb.Obs.null)

let test_disabled_trace_is_inert () =
  let _, e =
    let kb, _, _ = Tutil.ruth_gruber_kb () in
    let engine =
      Probkb.Engine.create ~config:(Probkb.Config.make ~inference:None ()) kb
    in
    (kb, Probkb.Engine.expand engine)
  in
  let s = e.Probkb.Engine.obs in
  check_bool "no spans recorded when disabled" true (s.Summary.spans = []);
  check_int "no counters recorded when disabled" 0
    (List.length s.Summary.counters)

let () =
  Alcotest.run "obs"
    [
      ( "tracing",
        [
          Alcotest.test_case "span tree deterministic across pool sizes"
            `Quick test_span_tree_deterministic;
          Alcotest.test_case "counters on the worked example" `Quick
            test_counters_worked_example;
          Alcotest.test_case "disabled trace is inert" `Quick
            test_disabled_trace_is_inert;
        ] );
      ( "explain",
        [
          Alcotest.test_case "estimated vs observed rows" `Quick
            test_explain_est_vs_observed;
        ] );
      ( "json",
        [
          Alcotest.test_case "summary round-trip" `Quick
            test_summary_json_roundtrip;
          Alcotest.test_case "malformed input" `Quick test_malformed_json;
          Alcotest.test_case "non-finite floats" `Quick test_nonfinite_json;
        ] );
      ( "hist",
        [
          test_hist_pool_determinism;
          test_hist_json_roundtrip;
          Alcotest.test_case "summary with hists round-trips" `Quick
            test_hist_summary_roundtrip;
          Alcotest.test_case "quantile edge cases" `Quick
            test_hist_quantile_edges;
          Alcotest.test_case "merge_into" `Quick test_hist_merge_into;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "one per grounding iteration" `Quick
            test_snapshots_per_iteration;
          Alcotest.test_case "JSON round-trip" `Quick
            test_snapshot_json_roundtrip;
          Alcotest.test_case "deterministic across pool sizes" `Quick
            test_snapshots_deterministic_across_pools;
          Alcotest.test_case "ndjson sink" `Quick test_ndjson_sink;
          Alcotest.test_case "null refuses sinks" `Quick
            test_null_sink_refused;
        ] );
    ]
