module Table = Relational.Table
module Fgraph = Factor_graph.Fgraph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- the paper's worked example (Table 1, Figures 2-3) --- *)

let test_worked_example_closure () =
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  let result = Grounding.Ground.run kb in
  check_bool "converged" true result.Grounding.Ground.converged;
  let facts = Tutil.fact_strings kb in
  let expected =
    List.sort compare
      [
        "born_in(Ruth Gruber, New York City) 0.96";
        "born_in(Ruth Gruber, Brooklyn) 0.93";
        "live_in(Ruth Gruber, New York City)";
        "live_in(Ruth Gruber, Brooklyn)";
        "grow_up_in(Ruth Gruber, New York City)";
        "grow_up_in(Ruth Gruber, Brooklyn)";
        "located_in(Brooklyn, New York City)";
      ]
  in
  Alcotest.(check (list string)) "closure facts" expected facts

let test_worked_example_factors () =
  let kb, f1, f2 = Tutil.ruth_gruber_kb () in
  let result = Grounding.Ground.run kb in
  (* Figure 3(e): 2 singleton + 6 clause factors. *)
  check_int "singletons" 2 result.Grounding.Ground.n_singleton_factors;
  check_int "clause factors" 6 result.Grounding.Ground.n_clause_factors;
  check_int "total" 8 (Fgraph.size result.Grounding.Ground.graph);
  (* located_in(Brooklyn, NYC) has two derivations: via born_in (0.52)
     and via live_in (0.32). *)
  let pi = Kb.Gamma.pi kb in
  let rel = Relational.Dict.find (Kb.Gamma.relations kb) in
  let ent = Relational.Dict.find (Kb.Gamma.entities kb) in
  let cls = Relational.Dict.find (Kb.Gamma.classes kb) in
  let fid r x c1 y c2 =
    Option.get
      (Kb.Storage.find pi ~r:(rel r) ~x:(ent x) ~c1:(cls c1) ~y:(ent y)
         ~c2:(cls c2))
  in
  let loc = fid "located_in" "Brooklyn" "P" "New York City" "C" in
  let lineage = Factor_graph.Lineage.build result.Grounding.Ground.graph in
  let derivs =
    Factor_graph.Lineage.derivations lineage loc
    |> List.map (fun (_, _, w) -> w)
    |> List.sort compare
  in
  Alcotest.(check (list (float 1e-9))) "derivation weights" [ 0.32; 0.52 ] derivs;
  (* Depths: extracted facts 0, direct inferences 1, located_in 2 via
     live_in but also 1 via born_in, so min depth is 1. *)
  Alcotest.(check (option int)) "depth f1" (Some 0)
    (Factor_graph.Lineage.depth lineage f1);
  Alcotest.(check (option int)) "depth f2" (Some 0)
    (Factor_graph.Lineage.depth lineage f2);
  Alcotest.(check (option int)) "depth located_in" (Some 1)
    (Factor_graph.Lineage.depth lineage loc);
  let live = fid "live_in" "Ruth Gruber" "W" "Brooklyn" "P" in
  Alcotest.(check (option int)) "depth live_in" (Some 1)
    (Factor_graph.Lineage.depth lineage live)

let test_worked_example_iterations () =
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  let sizes = ref [] in
  let options =
    {
      Grounding.Ground.default_options with
      on_iteration =
        Some (fun ~iteration:_ ~new_facts -> sizes := new_facts :: !sizes);
    }
  in
  let result = Grounding.Ground.run ~options kb in
  (* Iteration 1 adds live_in x2 and grow_up_in x2 (M1) plus
     located_in via born_in (M3) = 5; iteration 2 adds nothing new
     (located_in via live_in already exists); iteration 3 confirms the
     fixpoint. *)
  check_int "iterations" 2 result.Grounding.Ground.iterations;
  Alcotest.(check (list int)) "new facts per iter" [ 5; 0 ] (List.rev !sizes)

let test_idempotent_regrounding () =
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  let r1 = Grounding.Ground.run kb in
  let n_facts = Kb.Storage.size (Kb.Gamma.pi kb) in
  (* Grounding an already-closed KB adds no facts and rebuilds the same
     factor graph. *)
  let r2 = Grounding.Ground.run kb in
  check_int "no new facts" n_facts (Kb.Storage.size (Kb.Gamma.pi kb));
  check_int "same factor count"
    (Fgraph.size r1.Grounding.Ground.graph)
    (Fgraph.size r2.Grounding.Ground.graph)

let test_no_duplicate_factors_within_partition () =
  (* Proposition 1: Query 2-i produces no duplicate (I1, I2, I3) when Mi
     has no duplicate rules. *)
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  let result = Grounding.Ground.run kb in
  let g = result.Grounding.Ground.graph in
  let seen = Hashtbl.create 16 in
  let dup = ref false in
  Fgraph.iter
    (fun _ (i1, i2, i3, w) ->
      (* Across partitions duplicates are legitimate (different rules);
         within this example every (I1,I2,I3,w) quadruple is unique. *)
      if Hashtbl.mem seen (i1, i2, i3, w) then dup := true;
      Hashtbl.add seen (i1, i2, i3, w) ())
    g;
  check_bool "no duplicates" false !dup

(* --- pattern coverage: each of the six shapes fires correctly --- *)

let single_pattern_kb rule facts =
  let kb = Kb.Gamma.create () in
  ignore (Kb.Loader.load_rules kb [ rule ]);
  List.iter
    (fun (r, x, c1, y, c2) ->
      ignore (Kb.Gamma.add_fact_by_name kb ~r ~x ~c1 ~y ~c2 ~w:0.9))
    facts;
  kb

let inferred kb =
  (* Facts with a null weight are the inferred ones. *)
  let acc = ref [] in
  Kb.Storage.iter
    (fun ~id ~r:_ ~x:_ ~c1:_ ~y:_ ~c2:_ ~w ->
      if Table.is_null_weight w then
        acc := Fmt.str "%a" (Kb.Gamma.pp_fact kb) id :: !acc)
    (Kb.Gamma.pi kb);
  List.sort compare !acc

let test_pattern_1 () =
  let kb =
    single_pattern_kb "1.0 p(x:A, y:B) :- q(x, y)"
      [ ("q", "a", "A", "b", "B"); ("q", "b", "B", "c", "C") ]
  in
  ignore (Grounding.Ground.run kb);
  Alcotest.(check (list string)) "P1" [ "p(a, b)" ] (inferred kb)

let test_pattern_2 () =
  let kb =
    single_pattern_kb "1.0 p(x:A, y:B) :- q(y, x)"
      [ ("q", "b", "B", "a", "A"); ("q", "a", "A", "b", "B") ]
  in
  ignore (Grounding.Ground.run kb);
  Alcotest.(check (list string)) "P2" [ "p(a, b)" ] (inferred kb)

let test_pattern_3 () =
  let kb =
    single_pattern_kb "1.0 p(x:A, y:B) :- q(z:Z, x), r(z, y)"
      [
        ("q", "z1", "Z", "a", "A");
        ("r", "z1", "Z", "b", "B");
        ("r", "z2", "Z", "b", "B");
      ]
  in
  ignore (Grounding.Ground.run kb);
  Alcotest.(check (list string)) "P3" [ "p(a, b)" ] (inferred kb)

let test_pattern_4 () =
  let kb =
    single_pattern_kb "1.0 p(x:A, y:B) :- q(x, z:Z), r(z, y)"
      [ ("q", "a", "A", "z1", "Z"); ("r", "z1", "Z", "b", "B") ]
  in
  ignore (Grounding.Ground.run kb);
  Alcotest.(check (list string)) "P4" [ "p(a, b)" ] (inferred kb)

let test_pattern_5 () =
  let kb =
    single_pattern_kb "1.0 p(x:A, y:B) :- q(z:Z, x), r(y, z)"
      [ ("q", "z1", "Z", "a", "A"); ("r", "b", "B", "z1", "Z") ]
  in
  ignore (Grounding.Ground.run kb);
  Alcotest.(check (list string)) "P5" [ "p(a, b)" ] (inferred kb)

let test_pattern_6 () =
  let kb =
    single_pattern_kb "1.0 p(x:A, y:B) :- q(x, z:Z), r(y, z)"
      [ ("q", "a", "A", "z1", "Z"); ("r", "b", "B", "z1", "Z") ]
  in
  ignore (Grounding.Ground.run kb);
  Alcotest.(check (list string)) "P6" [ "p(a, b)" ] (inferred kb)

let test_class_mismatch_blocks_rule () =
  (* The same relation name with a different class signature must not
     fire the rule: typing is part of the join key. *)
  let kb =
    single_pattern_kb "1.0 p(x:A, y:B) :- q(x, y)"
      [ ("q", "a", "A2", "b", "B") ]
  in
  ignore (Grounding.Ground.run kb);
  Alcotest.(check (list string)) "no inference" [] (inferred kb)

let test_z_join_requires_equal_entities () =
  let kb =
    single_pattern_kb "1.0 p(x:A, y:B) :- q(z:Z, x), r(z, y)"
      [ ("q", "z1", "Z", "a", "A"); ("r", "z2", "Z", "b", "B") ]
  in
  ignore (Grounding.Ground.run kb);
  Alcotest.(check (list string)) "no inference" [] (inferred kb)

let test_transitive_chain () =
  (* located_in chains: a rule whose output feeds itself. *)
  let kb = Kb.Gamma.create () in
  ignore
    (Kb.Loader.load_rules kb
       [ "1.0 anc(x:P, y:P) :- par(x, y)";
         "1.0 anc(x:P, y:P) :- anc(x, z:P), anc(z, y)" ]);
  let pair a b = ignore (Kb.Gamma.add_fact_by_name kb ~r:"par" ~x:a ~c1:"P" ~y:b ~c2:"P" ~w:1.0) in
  pair "a" "b";
  pair "b" "c";
  pair "c" "d";
  pair "d" "e";
  let result = Grounding.Ground.run kb in
  Alcotest.(check bool) "converged" true result.Grounding.Ground.converged;
  (* anc = transitive closure over 5 nodes in a chain: 4+3+2+1 = 10. *)
  Alcotest.(check int) "anc facts" 10 (List.length (inferred kb))

let test_constraints_hook_runs_each_iteration () =
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  let calls = ref 0 in
  let options =
    {
      Grounding.Ground.default_options with
      apply_constraints =
        Some
          (fun _ ->
            incr calls;
            (0, 0));
    }
  in
  let result = Grounding.Ground.run ~options kb in
  (* once up-front plus once per iteration *)
  check_int "hook calls" (result.Grounding.Ground.iterations + 1) !calls

let test_max_iterations_budget () =
  let kb = Kb.Gamma.create () in
  ignore
    (Kb.Loader.load_rules kb
       [ "1.0 anc(x:P, y:P) :- par(x, y)";
         "1.0 anc(x:P, y:P) :- anc(x, z:P), anc(z, y)" ]);
  for i = 0 to 40 do
    ignore
      (Kb.Gamma.add_fact_by_name kb ~r:"par"
         ~x:(Printf.sprintf "n%d" i)
         ~c1:"P"
         ~y:(Printf.sprintf "n%d" (i + 1))
         ~c2:"P" ~w:1.0)
  done;
  let options =
    { Grounding.Ground.default_options with max_iterations = 2 }
  in
  let result = Grounding.Ground.run ~options kb in
  Alcotest.(check bool) "not converged" false result.Grounding.Ground.converged;
  check_int "iterations" 2 result.Grounding.Ground.iterations

let test_singletons_only_for_weighted () =
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  let result = Grounding.Ground.run kb in
  (* 2 extracted facts are weighted; the 5 inferred facts must not get
     singleton factors. *)
  check_int "singletons" 2 result.Grounding.Ground.n_singleton_factors

let test_closure_skips_factor_phase () =
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  let result = Grounding.Ground.closure kb in
  check_int "no factors" 0 (Fgraph.size result.Grounding.Ground.graph);
  check_int "facts still inferred" 7 (Kb.Storage.size (Kb.Gamma.pi kb))

(* --- semi-naive (delta) evaluation --- *)

let closure_keys kb =
  let acc = ref [] in
  Kb.Storage.iter
    (fun ~id:_ ~r ~x ~c1 ~y ~c2 ~w:_ -> acc := (r, x, c1, y, c2) :: !acc)
    (Kb.Gamma.pi kb);
  List.sort compare !acc

let test_semi_naive_equivalence () =
  List.iter
    (fun seed ->
      let g =
        Workload.Reverb_sherlock.generate
          { Workload.Reverb_sherlock.default_config with scale = 0.008; seed }
      in
      let kb = Workload.Reverb_sherlock.kb g in
      let naive = Tutil.copy_gamma kb in
      let r1 = Grounding.Ground.run naive in
      let semi = Tutil.copy_gamma kb in
      let r2 =
        Grounding.Ground.run
          ~options:{ Grounding.Ground.default_options with semi_naive = true }
          semi
      in
      if not (r1.Grounding.Ground.converged && r2.Grounding.Ground.converged)
      then Alcotest.failf "seed %d: no convergence" seed;
      if closure_keys naive <> closure_keys semi then
        Alcotest.failf "seed %d: closures differ (%d vs %d facts)" seed
          (Kb.Storage.size (Kb.Gamma.pi naive))
          (Kb.Storage.size (Kb.Gamma.pi semi));
      check_int
        (Printf.sprintf "seed %d: factor counts" seed)
        (Fgraph.size r1.Grounding.Ground.graph)
        (Fgraph.size r2.Grounding.Ground.graph))
    [ 5; 23; 71 ]

let test_semi_naive_with_constraints_worked () =
  (* The constraint hook fires mid-closure: over a 7-node par-chain the
     transitive anc rule gives n0 four ancestors by round 3, tripping a
     Type I degree-3 funcon.  Semi-naive evaluation must survive that —
     the deleted rows are filtered out of the saved delta instead of
     falling back to naive evaluation — and land on the same fixpoint. *)
  let build () =
    let kb = Kb.Gamma.create () in
    ignore
      (Kb.Loader.load_rules kb
         [ "1.0 anc(x:P, y:P) :- par(x, y)";
           "1.0 anc(x:P, y:P) :- anc(x, z:P), anc(z, y)" ]);
    for i = 0 to 6 do
      ignore
        (Kb.Gamma.add_fact_by_name kb ~r:"par"
           ~x:(Printf.sprintf "n%d" i)
           ~c1:"P"
           ~y:(Printf.sprintf "n%d" (i + 1))
           ~c2:"P" ~w:1.0)
    done;
    Kb.Gamma.add_funcon kb
      (Kb.Funcon.make ~rel:(Kb.Gamma.relation kb "anc")
         ~ftype:Kb.Funcon.Type_I ~degree:3);
    kb
  in
  let run ~semi_naive kb =
    Grounding.Ground.run
      ~options:
        {
          Grounding.Ground.default_options with
          semi_naive;
          apply_constraints =
            Some (Quality.Semantic.hook (Kb.Gamma.omega kb));
        }
      kb
  in
  let naive_kb = build () in
  let r1 = run ~semi_naive:false naive_kb in
  let semi_kb = build () in
  let r2 = run ~semi_naive:true semi_kb in
  Alcotest.(check bool) "naive converged" true r1.Grounding.Ground.converged;
  Alcotest.(check bool) "semi converged" true r2.Grounding.Ground.converged;
  Alcotest.(check bool)
    "constraints fired" true
    (r1.Grounding.Ground.removed_by_constraints > 0);
  check_int "same removals" r1.Grounding.Ground.removed_by_constraints
    r2.Grounding.Ground.removed_by_constraints;
  Alcotest.(check (list (list int)))
    "same closure"
    (List.map
       (fun (a, b, c, d, e) -> [ a; b; c; d; e ])
       (closure_keys naive_kb))
    (List.map
       (fun (a, b, c, d, e) -> [ a; b; c; d; e ])
       (closure_keys semi_kb));
  check_int "same factor count"
    (Fgraph.size r1.Grounding.Ground.graph)
    (Fgraph.size r2.Grounding.Ground.graph)

let test_semi_naive_with_constraints_differential () =
  (* Workload KBs carry generated funcons; with Ω enforced through the
     hook, naive and semi-naive closures must still agree. *)
  let fired = ref false in
  List.iter
    (fun seed ->
      let g =
        Workload.Reverb_sherlock.generate
          { Workload.Reverb_sherlock.default_config with scale = 0.008; seed }
      in
      let kb = Workload.Reverb_sherlock.kb g in
      let run ~semi_naive kb =
        Grounding.Ground.run
          ~options:
            {
              Grounding.Ground.default_options with
              semi_naive;
              apply_constraints =
                Some (Quality.Semantic.hook (Kb.Gamma.omega kb));
            }
          kb
      in
      let naive = Tutil.copy_gamma kb in
      let r1 = run ~semi_naive:false naive in
      let semi = Tutil.copy_gamma kb in
      let r2 = run ~semi_naive:true semi in
      if r1.Grounding.Ground.removed_by_constraints > 0 then fired := true;
      check_int
        (Printf.sprintf "seed %d: removals" seed)
        r1.Grounding.Ground.removed_by_constraints
        r2.Grounding.Ground.removed_by_constraints;
      if closure_keys naive <> closure_keys semi then
        Alcotest.failf "seed %d: closures differ (%d vs %d facts)" seed
          (Kb.Storage.size (Kb.Gamma.pi naive))
          (Kb.Storage.size (Kb.Gamma.pi semi));
      check_int
        (Printf.sprintf "seed %d: factor counts" seed)
        (Fgraph.size r1.Grounding.Ground.graph)
        (Fgraph.size r2.Grounding.Ground.graph))
    [ 5; 23; 71 ];
  Alcotest.(check bool) "hook fired for at least one seed" true !fired

let test_pool_size_equivalence () =
  (* The whole grounding pipeline — parallel per-pattern queries, parallel
     partitioned joins, parallel distinct — must yield the same facts (same
     ids, same insertion order) and the same factor graph for any pool
     size. *)
  let facts_in_order kb =
    let acc = ref [] in
    Kb.Storage.iter
      (fun ~id ~r ~x ~c1 ~y ~c2 ~w -> acc := (id, r, x, c1, y, c2, w) :: !acc)
      (Kb.Gamma.pi kb);
    List.rev !acc
  in
  let g =
    Workload.Reverb_sherlock.generate
      { Workload.Reverb_sherlock.default_config with scale = 0.008; seed = 5 }
  in
  let kb = Workload.Reverb_sherlock.kb g in
  let run_with d =
    Pool.set_default_size d;
    let kb' = Tutil.copy_gamma kb in
    let r = Grounding.Ground.run kb' in
    (facts_in_order kb', Fgraph.size r.Grounding.Ground.graph)
  in
  Fun.protect
    ~finally:(fun () -> Pool.set_default_size (Pool.env_domains ()))
    (fun () ->
      let facts1, nf1 = run_with 1 in
      let facts4, nf4 = run_with 4 in
      (* [compare], not [=]: derived facts carry the null weight (a NaN),
         and [nan = nan] is false while [compare nan nan = 0]. *)
      Alcotest.(check bool)
        "facts identical (ids, order, weights)" true
        (compare facts1 facts4 = 0);
      check_int "factor counts" nf1 nf4)

let test_semi_naive_worked_example () =
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  let r =
    Grounding.Ground.run
      ~options:{ Grounding.Ground.default_options with semi_naive = true }
      kb
  in
  Alcotest.(check bool) "converged" true r.Grounding.Ground.converged;
  check_int "facts" 7 (Kb.Storage.size (Kb.Gamma.pi kb));
  check_int "factors" 8 (Fgraph.size r.Grounding.Ground.graph)

let test_semi_naive_transitive_chain () =
  (* The chain needs several delta rounds — the case naive evaluation
     recomputes from scratch each time. *)
  let kb = Kb.Gamma.create () in
  ignore
    (Kb.Loader.load_rules kb
       [ "1.0 anc(x:P, y:P) :- par(x, y)";
         "1.0 anc(x:P, y:P) :- anc(x, z:P), anc(z, y)" ]);
  for i = 0 to 15 do
    ignore
      (Kb.Gamma.add_fact_by_name kb ~r:"par"
         ~x:(Printf.sprintf "n%d" i)
         ~c1:"P"
         ~y:(Printf.sprintf "n%d" (i + 1))
         ~c2:"P" ~w:1.0)
  done;
  let r =
    Grounding.Ground.run
      ~options:{ Grounding.Ground.default_options with semi_naive = true }
      kb
  in
  Alcotest.(check bool) "converged" true r.Grounding.Ground.converged;
  (* anc over a 17-node chain: 17*16/2 = 136 pairs. *)
  check_int "anc facts" 136 r.Grounding.Ground.new_fact_count

let test_monotonicity =
  (* Adding facts never removes conclusions: closure(F1) ⊆ closure(F1∪F2). *)
  Tutil.qcheck_case ~count:30 "grounding is monotone"
    QCheck.(pair small_nat small_nat)
    (fun (seed, extra) ->
      let g =
        Workload.Reverb_sherlock.generate
          {
            Workload.Reverb_sherlock.default_config with
            scale = 0.004;
            seed = 1 + seed;
          }
      in
      let kb = Workload.Reverb_sherlock.kb g in
      let small = Tutil.copy_gamma kb in
      ignore (Grounding.Ground.closure small);
      let big = Tutil.copy_gamma kb in
      let rng = Workload.Rng.create (seed + 1000) in
      for _ = 1 to 1 + (extra mod 5) do
        let r, x, c1, y, c2 = Workload.Reverb_sherlock.random_fact g rng in
        ignore (Kb.Gamma.add_fact big ~r ~x ~c1 ~y ~c2 ~w:0.9)
      done;
      ignore (Grounding.Ground.closure big);
      let keys kb =
        let acc = ref [] in
        Kb.Storage.iter
          (fun ~id:_ ~r ~x ~c1 ~y ~c2 ~w:_ -> acc := (r, x, c1, y, c2) :: !acc)
          (Kb.Gamma.pi kb);
        !acc
      in
      let big_set = Hashtbl.create 1024 in
      List.iter (fun k -> Hashtbl.replace big_set k ()) (keys big);
      List.for_all (Hashtbl.mem big_set) (keys small))

(* --- the SQL of Figure 3 --- *)

let normalize s =
  String.split_on_char ' ' (String.map (function '\n' -> ' ' | c -> c) s)
  |> List.filter (fun w -> w <> "")
  |> String.concat " "

let test_sql_query_1_1 () =
  (* Figure 3 of the paper, verbatim up to whitespace. *)
  let paper =
    "SELECT M1.R1 AS R, T.x AS x, M1.C1 AS C1, T.y AS y, M1.C2 AS C2 \
     FROM M1 JOIN T ON M1.R2 = T.R AND M1.C1 = T.C1 AND M1.C2 = T.C2;"
  in
  Alcotest.(check string) "Query 1-1" (normalize paper)
    (normalize (Grounding.Sql.ground_atoms Mln.Pattern.P1))

let test_sql_query_1_3 () =
  let paper =
    "SELECT M3.R1 AS R, T2.y AS x, M3.C1 AS C1, T3.y AS y, M3.C2 AS C2 \
     FROM M3 JOIN T T2 ON M3.R2 = T2.R AND M3.C3 = T2.C1 AND M3.C1 = T2.C2 \
     JOIN T T3 ON M3.R3 = T3.R AND M3.C3 = T3.C1 AND M3.C2 = T3.C2 \
     WHERE T2.x = T3.x;"
  in
  Alcotest.(check string) "Query 1-3" (normalize paper)
    (normalize (Grounding.Sql.ground_atoms Mln.Pattern.P3))

let test_sql_query_2_3 () =
  let paper =
    "SELECT T1.I AS I1, T2.I AS I2, T3.I AS I3, M3.w AS w \
     FROM M3 JOIN T T1 ON M3.R1 = T1.R AND M3.C1 = T1.C1 AND M3.C2 = T1.C2 \
     JOIN T T2 ON M3.R2 = T2.R AND M3.C3 = T2.C1 AND M3.C1 = T2.C2 \
     JOIN T T3 ON M3.R3 = T3.R AND M3.C3 = T3.C1 AND M3.C2 = T3.C2 \
     WHERE T1.x = T2.y AND T1.y = T3.y AND T2.x = T3.x;"
  in
  Alcotest.(check string) "Query 2-3" (normalize paper)
    (normalize (Grounding.Sql.ground_factors Mln.Pattern.P3))

let test_sql_all_patterns_render () =
  List.iter
    (fun p ->
      Alcotest.(check bool) "atoms renders" true
        (String.length (Grounding.Sql.ground_atoms p) > 0);
      Alcotest.(check bool) "factors renders" true
        (String.length (Grounding.Sql.ground_factors p) > 0))
    Mln.Pattern.all

(* --- query counts: the headline batching claim --- *)

let test_query_count_independent_of_rule_count () =
  (* With k=2 active partitions (M1, M3) the closure phase must issue
     2 queries per iteration regardless of how many rules each holds. *)
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  let result = Grounding.Ground.run kb in
  let entries = Relational.Stats.entries result.Grounding.Ground.stats in
  let q1 =
    List.filter
      (fun e ->
        String.length e.Relational.Stats.label >= 7
        && String.sub e.Relational.Stats.label 0 7 = "Query 1")
      entries
  in
  check_int "Query 1 executions = partitions x iterations"
    (2 * result.Grounding.Ground.iterations)
    (List.length q1)

let () =
  Alcotest.run "grounding"
    [
      ( "worked-example",
        [
          Alcotest.test_case "closure facts" `Quick test_worked_example_closure;
          Alcotest.test_case "factor graph" `Quick test_worked_example_factors;
          Alcotest.test_case "iteration trace" `Quick
            test_worked_example_iterations;
          Alcotest.test_case "idempotent regrounding" `Quick
            test_idempotent_regrounding;
          Alcotest.test_case "proposition 1" `Quick
            test_no_duplicate_factors_within_partition;
        ] );
      ( "patterns",
        [
          Alcotest.test_case "P1" `Quick test_pattern_1;
          Alcotest.test_case "P2" `Quick test_pattern_2;
          Alcotest.test_case "P3" `Quick test_pattern_3;
          Alcotest.test_case "P4" `Quick test_pattern_4;
          Alcotest.test_case "P5" `Quick test_pattern_5;
          Alcotest.test_case "P6" `Quick test_pattern_6;
          Alcotest.test_case "class mismatch blocks" `Quick
            test_class_mismatch_blocks_rule;
          Alcotest.test_case "z join needs equal entities" `Quick
            test_z_join_requires_equal_entities;
        ] );
      ( "driver",
        [
          Alcotest.test_case "transitive chain" `Quick test_transitive_chain;
          Alcotest.test_case "constraint hook cadence" `Quick
            test_constraints_hook_runs_each_iteration;
          Alcotest.test_case "iteration budget" `Quick
            test_max_iterations_budget;
          Alcotest.test_case "singleton factors" `Quick
            test_singletons_only_for_weighted;
          Alcotest.test_case "closure-only mode" `Quick
            test_closure_skips_factor_phase;
          Alcotest.test_case "semi-naive worked example" `Quick
            test_semi_naive_worked_example;
          Alcotest.test_case "semi-naive chain" `Quick
            test_semi_naive_transitive_chain;
          Alcotest.test_case "semi-naive differential" `Slow
            test_semi_naive_equivalence;
          Alcotest.test_case "semi-naive + constraints worked" `Quick
            test_semi_naive_with_constraints_worked;
          Alcotest.test_case "semi-naive + constraints differential" `Slow
            test_semi_naive_with_constraints_differential;
          Alcotest.test_case "pool-size differential" `Quick
            test_pool_size_equivalence;
          test_monotonicity;
        ] );
      ( "figure-3-sql",
        [
          Alcotest.test_case "Query 1-1 verbatim" `Quick test_sql_query_1_1;
          Alcotest.test_case "Query 1-3 verbatim" `Quick test_sql_query_1_3;
          Alcotest.test_case "Query 2-3 verbatim" `Quick test_sql_query_2_3;
          Alcotest.test_case "all patterns render" `Quick
            test_sql_all_patterns_render;
          Alcotest.test_case "query count batching" `Quick
            test_query_count_independent_of_rule_count;
        ] );
    ]
