(* The serving layer: the shared op codec, the Snapshot/Writer split,
   and the socket server's snapshot-isolation guarantees.

   The load-bearing property is the concurrency differential: answers
   observed by reader domains racing a committing writer must be
   bit-identical to querying each published epoch serially — a reader
   sees exactly one epoch, never a blend. *)

(* Force the torn-read fingerprint checks on for this whole binary:
   every frozen-snapshot query below re-hashes the copied factor tables
   and fails loudly on any aliasing with live session state. *)
let () = Unix.putenv "PROBKB_DEBUG" "1"

module Gamma = Kb.Gamma
module Storage = Kb.Storage
module Dict = Relational.Dict
module Local = Grounding.Local
module Json = Obs.Json
module Engine = Probkb.Engine
module Session = Probkb.Engine.Session
module Snapshot = Probkb.Snapshot
module Writer = Probkb.Engine.Writer
module Protocol = Serve.Protocol
module Server = Serve.Server

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let sigmoid w = 1. /. (1. +. exp (-.w))

let no_infer_engine kb =
  Engine.create ~config:(Probkb.Config.make ~inference:None ()) kb

(* Resolve a string key to dictionary ids (interning — test setup only). *)
let key_ids kb (r, x, c1, y, c2) =
  ( Gamma.relation kb r,
    Gamma.entity kb x,
    Gamma.cls kb c1,
    Gamma.entity kb y,
    Gamma.cls kb c2 )

(* --- the shared codec -------------------------------------------------- *)

let test_codec_roundtrip () =
  let key = ("r", "x", "C1", "y", "C2") in
  let ops =
    [
      Protocol.Ingest [ (key, 0.9); (("s", "a", "C", "b", "C"), 0.5) ];
      Protocol.Retract { keys = [ key ]; ban = true };
      Protocol.Retract { keys = []; ban = false };
      Protocol.Retract_rules { head = "r" };
      Protocol.Add_rules [ "1.40 live_in(x:W, y:P) :- born_in(x, y)" ];
      Protocol.Reexpand;
      Protocol.Refresh;
      Protocol.Query key;
      Protocol.Query_local { key; budget = None };
      Protocol.Query_local
        {
          key;
          budget =
            Some
              (Local.budget ~max_facts:64 ~max_hops:3 ~decay:0.8
                 ~min_influence:0.01 ());
        };
      Protocol.Stats;
      Protocol.Metrics;
    ]
  in
  List.iter
    (fun op ->
      match Protocol.op_of_line (Json.to_string (Protocol.op_to_json op)) with
      | Ok op' -> check_bool "op survives the wire round-trip" true (op = op')
      | Error m -> Alcotest.failf "round-trip rejected: %s" m)
    ops

let test_codec_errors () =
  let err line =
    match Protocol.op_of_line line with
    | Error m -> m
    | Ok _ -> Alcotest.failf "accepted: %s" line
  in
  check_string "parse failure" "malformed JSON" (err "{");
  check_string "no op member" "missing op" (err {|{"x":1}|});
  check_string "unknown op" "unknown op \"frobnicate\""
    (err {|{"op":"frobnicate"}|});
  check_string "query without key" "query needs a key" (err {|{"op":"query"}|});
  check_string "retract_rules without head" "retract_rules needs a head relation"
    (err {|{"op":"retract_rules"}|});
  check_string "bad budget" "Local.budget: decay must be in (0, 1]"
    (err {|{"op":"query_local","key":["r","x","C","y","C"],"decay":0.0}|})

let test_resolve_reads_never_intern () =
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  let unknown = ("born_in", "Nobody At All", "W", "Nowhere", "P") in
  (match Protocol.resolve kb (Protocol.Query unknown) with
  | Ok (Protocol.RQuery None) -> ()
  | _ -> Alcotest.fail "unknown key should resolve to RQuery None");
  (match Protocol.resolve kb (Protocol.Query_local { key = unknown; budget = None })
   with
  | Ok (Protocol.RQuery_local { key = None; _ }) -> ()
  | _ -> Alcotest.fail "unknown key should resolve to RQuery_local None");
  check_bool "read-path resolution did not intern the entity" true
    (Dict.find_opt (Gamma.entities kb) "Nobody At All" = None)

let test_step_session_semantics () =
  (* [step] is the session subcommand's whole interpreter: write, then
     read your write, on one session. *)
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  let s = Engine.session (no_infer_engine kb) in
  let reply =
    Protocol.step kb s
      {|{"op":"ingest","facts":[["born_in","Saul Bellow","W","Montreal","C",0.7]]}|}
  in
  check_bool "ingest reports epoch 1" true
    (Json.member "epoch" reply = Some (Json.Int 1));
  let reply =
    Protocol.step kb s
      {|{"op":"query","key":["born_in","Saul Bellow","W","Montreal","C"]}|}
  in
  check_bool "the ingested fact is found" true
    (Json.member "found" reply = Some (Json.Bool true));
  let reply = Protocol.step kb s {|{"op":"refresh"}|} in
  check_bool "refresh without inference answers an error" true
    (Json.member "error" reply <> None)

(* --- freeze = live ----------------------------------------------------- *)

let test_freeze_equals_live () =
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  let s = Engine.session (no_infer_engine kb) in
  let snap = Session.snapshot s in
  check_bool "session snapshot is frozen" true (Snapshot.frozen snap);
  check_bool "frozen snapshot verifies" true (Snapshot.verify_integrity snap);
  check_bool "snapshot is cached per epoch" true
    (Session.snapshot s == snap);
  let st = Snapshot.stats snap in
  check_int "stats count the storage" (Storage.size (Gamma.pi kb))
    st.Snapshot.facts;
  Storage.iter
    (fun ~id ~r ~x ~c1 ~y ~c2 ~w:_ ->
      match
        ( Session.query_local s ~r ~x ~c1 ~y ~c2,
          Snapshot.query_local snap ~r ~x ~c1 ~y ~c2 )
      with
      | Some live, Some frz ->
        check_bool
          (Printf.sprintf "fact %d: frozen marginal = live marginal" id)
          true
          (live.Engine.marginal = frz.Snapshot.marginal);
        check_int "ids agree" live.Engine.id frz.Snapshot.id;
        check_int "answers carry the session epoch" live.Engine.epoch
          frz.Snapshot.epoch
      | _ -> Alcotest.failf "fact %d missing from one side" id)
    (Gamma.pi kb)

(* --- snapshot immutability --------------------------------------------- *)

let test_snapshot_immutable_across_epochs () =
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  let s = Engine.session (no_infer_engine kb) in
  let snap0 = Session.snapshot s in
  let keys = ref [] in
  Storage.iter
    (fun ~id ~r ~x ~c1 ~y ~c2 ~w:_ -> keys := (id, (r, x, c1, y, c2)) :: !keys)
    (Gamma.pi kb);
  let facts0 = Storage.size (Gamma.pi kb) in
  let answer snap (r, x, c1, y, c2) =
    match Snapshot.query_local snap ~r ~x ~c1 ~y ~c2 with
    | Some a -> a.Snapshot.marginal
    | None -> Alcotest.fail "key not answered"
  in
  let before = List.map (fun (id, k) -> (id, k, answer snap0 k)) !keys in
  (* A second writer born in both places adds a support factor to
     located_in(Brooklyn, NYC) — the old component's marginals move. *)
  let f1 = key_ids kb ("born_in", "Saul Bellow", "W", "Brooklyn", "P") in
  let f2 = key_ids kb ("born_in", "Saul Bellow", "W", "New York City", "C") in
  let tup (r, x, c1, y, c2) w = (r, x, c1, y, c2, w) in
  let st = Session.ingest s [ tup f1 0.8; tup f2 0.8 ] in
  check_int "two facts ingested" 2 st.Session.inserted;
  let snap1 = Session.snapshot s in
  check_bool "a new epoch was published" true
    (Snapshot.epoch snap1 > Snapshot.epoch snap0);
  check_bool "the cache rolled over" true (snap1 != snap0);
  (* The old snapshot answers exactly what it answered before. *)
  check_int "old snapshot still counts the old facts" facts0
    (Snapshot.stats snap0).Snapshot.facts;
  List.iter
    (fun (id, k, m) ->
      check_bool
        (Printf.sprintf "fact %d: old snapshot's answer is unchanged" id)
        true
        (answer snap0 k = m))
    before;
  let located =
    key_ids kb ("located_in", "Brooklyn", "P", "New York City", "C")
  in
  check_bool "the new evidence moved the new epoch's marginal" true
    (answer snap1 located <> answer snap0 located);
  let r, x, c1, y, c2 = f1 in
  check_bool "old snapshot cannot find the new fact" true
    (Snapshot.find snap0 ~r ~x ~c1 ~y ~c2 = None);
  check_bool "new snapshot finds it" true
    (Snapshot.find snap1 ~r ~x ~c1 ~y ~c2 <> None);
  check_bool "old snapshot still verifies after the commit" true
    (Snapshot.verify_integrity snap0)

(* --- engine cache invalidation on session rule edits ------------------- *)

(* Regression: the engine's memoized backward source used to survive
   [Session.add_rules] / [retract_rules], so point queries answered
   against the stale rule set.  Every epoch mutation must drop it. *)
let test_engine_sees_session_rule_edits () =
  let kb = Gamma.create () in
  ignore (Gamma.add_fact_by_name kb ~r:"r0" ~x:"a" ~c1:"C" ~y:"b" ~c2:"C" ~w:0.8);
  let engine = no_infer_engine kb in
  let s = Engine.session engine in
  let r0, x, c1, y, c2 = key_ids kb ("r0", "a", "C", "b", "C") in
  let marginal_of_r0 () =
    match Engine.query_local engine ~r:r0 ~x ~c1 ~y ~c2 with
    | Some a -> a.Engine.marginal
    | None -> Alcotest.fail "r0(a,b) not answered"
  in
  (* Warm the memoized source with the rule-free KB. *)
  check_bool "no rules: P = sigmoid(w)" true (marginal_of_r0 () = sigmoid 0.8);
  let clauses =
    Mln.Parse.parse_lines
      ~intern_rel:(Gamma.relation kb)
      ~intern_cls:(Gamma.cls kb)
      [ "1.10 r1(x:C, y:C) :- r0(x, y)" ]
  in
  let st = Session.add_rules s clauses in
  check_int "the rule derives r1(a,b)" 1 st.Session.derived;
  let r1 = Gamma.relation kb "r1" in
  check_bool "engine answers the newly derived fact" true
    (Engine.query_local engine ~r:r1 ~x ~c1 ~y ~c2 <> None);
  check_bool "the rule factor moved the base marginal" true
    (marginal_of_r0 () <> sigmoid 0.8);
  let st =
    Session.retract_rules s ~remove:(fun c -> c.Mln.Clause.head_rel = r1)
  in
  check_int "retracting the rule retracts its derivation" 1
    st.Session.retracted;
  check_bool "the derived fact is gone from the engine" true
    (Engine.query_local engine ~r:r1 ~x ~c1 ~y ~c2 = None);
  check_bool "the base marginal is the prior again, bitwise" true
    (marginal_of_r0 () = sigmoid 0.8)

(* --- concurrency differential ------------------------------------------ *)

(* K feeder relations q0..q{K-1} each imply r1; the writer ingests one
   feeder fact per epoch, shifting the whole component's marginals.
   Readers race the commits; afterwards, every recorded (key, epoch,
   marginal) triple must equal the serial replay of that epoch's
   published snapshot, bit for bit. *)
let test_concurrent_readers_differential () =
  let epochs = 5 and n_readers = 3 in
  let kb = Gamma.create () in
  let rules =
    "1.10 r1(x:C, y:C) :- r0(x, y)"
    :: "0.90 r2(x:C, y:C) :- r1(x, y)"
    :: List.init epochs (fun i ->
           Printf.sprintf "0.70 r1(x:C, y:C) :- q%d(x, y)" i)
  in
  ignore (Kb.Loader.load_rules kb rules);
  ignore (Gamma.add_fact_by_name kb ~r:"r0" ~x:"a" ~c1:"C" ~y:"b" ~c2:"C" ~w:0.9);
  (* Pre-intern everything the writer will touch: readers must not race
     dictionary mutation (the server serializes this under a lock; here
     we exercise the raw Snapshot/Writer layer). *)
  let feeders =
    List.init epochs (fun i ->
        key_ids kb (Printf.sprintf "q%d" i, "a", "C", "b", "C"))
  in
  let s = Engine.session (no_infer_engine kb) in
  let writer = Writer.of_session s in
  let keys =
    List.map (fun r -> key_ids kb (r, "a", "C", "b", "C")) [ "r0"; "r1"; "r2" ]
  in
  let snaps = Array.make (epochs + 1) (Writer.published writer) in
  let stop = Atomic.make false in
  let records = Array.make n_readers [] in
  let readers =
    List.init n_readers (fun ri ->
        Domain.spawn (fun () ->
            let acc = ref [] in
            while not (Atomic.get stop) do
              let snap = Writer.published writer in
              List.iteri
                (fun ki (r, x, c1, y, c2) ->
                  match Snapshot.query_local snap ~r ~x ~c1 ~y ~c2 with
                  | Some a ->
                    acc := (ki, a.Snapshot.epoch, a.Snapshot.marginal) :: !acc
                  | None -> Alcotest.fail "key missing from a snapshot")
                keys
            done;
            records.(ri) <- !acc))
  in
  List.iteri
    (fun i (r, x, c1, y, c2) ->
      ignore (Session.ingest s [ (r, x, c1, y, c2, 0.8) ]);
      snaps.(i + 1) <- Writer.publish writer;
      Unix.sleepf 0.01 (* let readers observe this epoch *))
    feeders;
  Atomic.set stop true;
  List.iter Domain.join readers;
  (* Serial replay: the per-epoch oracle. *)
  let expected = Hashtbl.create 64 in
  Array.iteri
    (fun i snap ->
      check_int "published snapshots are successive epochs" i
        (Snapshot.epoch snap);
      List.iteri
        (fun ki (r, x, c1, y, c2) ->
          match Snapshot.query_local snap ~r ~x ~c1 ~y ~c2 with
          | Some a -> Hashtbl.replace expected (ki, i) a.Snapshot.marginal
          | None -> Alcotest.fail "key missing from serial replay")
        keys)
    snaps;
  let observations = ref 0 in
  Array.iter
    (List.iter (fun (ki, e, m) ->
         incr observations;
         match Hashtbl.find_opt expected (ki, e) with
         | None -> Alcotest.failf "reader observed unpublished epoch %d" e
         | Some m' ->
           check_bool
             (Printf.sprintf "key %d at epoch %d: bitwise equal to replay" ki e)
             true (m = m')))
    records;
  check_bool "readers observed at least one answer" true (!observations > 0);
  (* Marginals genuinely moved across epochs — the differential is not
     vacuous. *)
  check_bool "epochs have distinct answers" true
    (Hashtbl.find expected (1, 0) <> Hashtbl.find expected (1, epochs))

(* --- the socket server -------------------------------------------------- *)

let send oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let send_op oc op = send oc (Json.to_string (Protocol.op_to_json op))

let test_server_end_to_end () =
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  let s = Engine.session (no_infer_engine kb) in
  let facts0 = Storage.size (Gamma.pi kb) in
  let writer = Writer.of_session s in
  let srv =
    Server.start ~pool:2 ~kb ~writer
      ~addr:(Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
      ()
  in
  let addr = Server.sockaddr srv in
  check_bool "a real port was bound" true (Server.port srv <> None);
  let connect () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd addr;
    (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
  in
  (* Concurrent clients: each ingests its own fact and must read it back
     on the same connection (the write reply is sent only after its
     epoch is published). *)
  let n_clients = 3 in
  let results = Array.make n_clients false in
  let clients =
    List.init n_clients (fun ci ->
        Domain.spawn (fun () ->
            let fd, ic, oc = connect () in
            let name = Printf.sprintf "client%d" ci in
            let key = ("born_in", name, "W", "Springfield", "P") in
            send_op oc (Protocol.Ingest [ (key, 0.7) ]);
            let ingest_ok =
              match Json.of_string_opt (input_line ic) with
              | Some doc -> Json.member "epoch" doc <> None
              | None -> false
            in
            send_op oc (Protocol.Query key);
            let read_ok =
              match Json.of_string_opt (input_line ic) with
              | Some doc -> Json.member "found" doc = Some (Json.Bool true)
              | None -> false
            in
            send oc {|{"op":"bogus"}|};
            let err_ok =
              match Json.of_string_opt (input_line ic) with
              | Some doc -> Json.member "error" doc <> None
              | None -> false
            in
            results.(ci) <- ingest_ok && read_ok && err_ok;
            try Unix.close fd with Unix.Unix_error (_, _, _) -> ()))
  in
  List.iter Domain.join clients;
  Array.iteri
    (fun i ok ->
      check_bool (Printf.sprintf "client %d read its own write" i) true ok)
    results;
  (* A fresh connection sees all three committed epochs, and the local
     point query answers over the wire. *)
  let fd, ic, oc = connect () in
  send_op oc Protocol.Stats;
  (match Json.of_string_opt (input_line ic) with
  | Some doc ->
    check_bool "stats reports the committed epochs" true
      (Json.member "epoch" doc = Some (Json.Int n_clients));
    check_bool "stats counts the ingested facts (and their derivations)" true
      (match Json.member "facts" doc with
      | Some (Json.Int n) -> n >= facts0 + n_clients
      | _ -> false)
  | None -> Alcotest.fail "stats reply did not parse");
  send_op oc
    (Protocol.Query_local
       { key = ("born_in", "Ruth Gruber", "W", "Brooklyn", "P"); budget = None });
  (match Json.of_string_opt (input_line ic) with
  | Some doc ->
    check_bool "query_local found the fact" true
      (Json.member "found" doc = Some (Json.Bool true));
    check_bool "the answer carries an epoch" true
      (Json.member "epoch" doc = Some (Json.Int n_clients));
    check_bool "the marginal is a number" true
      (match Json.member "marginal" doc with
      | Some (Json.Float _) -> true
      | _ -> false)
  | None -> Alcotest.fail "query_local reply did not parse");
  (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
  Server.stop srv;
  Server.stop srv (* idempotent *);
  check_bool "the socket refuses connections after stop" true
    (match connect () with
    | exception Unix.Unix_error (_, _, _) -> true
    | fd, _, _ ->
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      false)

(* --- telemetry: admin HTTP, metrics op, access/slow logs ---------------- *)

module Summary = Obs.Summary
module Admin = Serve.Admin
module Metrics = Serve.Metrics

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* A one-shot HTTP/1.0 request against the admin listener; returns the
   raw response text (status line, headers, body). *)
let http_request addr request =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      Unix.connect fd addr;
      let oc = Unix.out_channel_of_descr fd in
      output_string oc request;
      flush oc;
      let ic = Unix.in_channel_of_descr fd in
      let buf = Buffer.create 1024 in
      (try
         while true do
           Buffer.add_channel buf ic 1
         done
       with End_of_file -> ());
      Buffer.contents buf)

let http_get addr path =
  http_request addr ("GET " ^ path ^ " HTTP/1.0\r\nHost: t\r\n\r\n")

let http_status resp = Scanf.sscanf resp "HTTP/1.0 %d" Fun.id

let http_body resp =
  let rec find i =
    if i + 4 > String.length resp then String.length resp
    else if String.sub resp i 4 = "\r\n\r\n" then i + 4
    else find (i + 1)
  in
  let i = find 0 in
  String.sub resp i (String.length resp - i)

let test_admin_http () =
  let hits = Atomic.make 0 in
  let admin =
    Admin.start
      ~addr:(Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
      ~routes:
        [
          ( "/metrics",
            Admin.route ~content_type:"text/plain; version=0.0.4" (fun () ->
                Atomic.incr hits;
                Printf.sprintf "up %d\n" (Atomic.get hits)) );
          ( "/boom",
            Admin.route ~content_type:"text/plain" (fun () ->
                failwith "handler exploded") );
        ]
      ()
  in
  let addr = Admin.sockaddr admin in
  check_bool "a real port was bound" true (Admin.port admin <> None);
  let resp = http_get addr "/metrics" in
  check_int "GET known route is 200" 200 (http_status resp);
  check_bool "content-type header present" true
    (contains resp "Content-Type: text/plain; version=0.0.4");
  check_string "body is the handler's rendering" "up 1\n" (http_body resp);
  (* The body is re-evaluated per request. *)
  check_string "second scrape re-renders" "up 2\n"
    (http_body (http_get addr "/metrics"));
  check_string "query strings are stripped" "up 3\n"
    (http_body (http_get addr "/metrics?refresh=1"));
  check_int "unknown path is 404" 404 (http_status (http_get addr "/nope"));
  check_int "non-GET is 405" 405
    (http_status
       (http_request addr "POST /metrics HTTP/1.0\r\nHost: t\r\n\r\n"));
  check_int "raising handler is 500" 500 (http_status (http_get addr "/boom"));
  check_int "malformed request line is 400" 400
    (http_status (http_request addr "nonsense\r\n\r\n"));
  Admin.stop admin;
  Admin.stop admin (* idempotent *);
  check_bool "refuses connections after stop" true
    (match http_get addr "/metrics" with
    | exception Unix.Unix_error (_, _, _) -> true
    | "" -> true (* accepted then reset before a response *)
    | _ -> false)

(* One server, obs enabled, slow threshold 0 (every request is "slow"):
   drives the full telemetry path — metrics protocol op, Prometheus
   exposition, /statusz, access log with span subtrees — and checks the
   scraped request count against the client-side count. *)
let test_server_telemetry () =
  let kb, _, _ = Tutil.ruth_gruber_kb () in
  (* One trace shared by the engine and the server (as the CLI wires it):
     the query_local spans recorded inside snapshot answers nest under
     the server's serve.request spans. *)
  let engine =
    Engine.create
      ~config:(Probkb.Config.make ~inference:None ~obs:Obs.Config.enabled ())
      kb
  in
  let s = Engine.session engine in
  let writer = Writer.of_session s in
  let obs = Engine.trace engine in
  let log_path = Filename.temp_file "probkb_access" ".ndjson" in
  let log_oc = open_out log_path in
  Fun.protect
    ~finally:(fun () -> try Sys.remove log_path with Sys_error _ -> ())
    (fun () ->
      let srv =
        Server.start ~pool:2 ~obs
          ~access_log:(Server.ndjson_sink log_oc)
          ~slow_ms:0. ~kb ~writer
          ~addr:(Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
          ()
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Server.sockaddr srv);
      let ic = Unix.in_channel_of_descr fd
      and oc = Unix.out_channel_of_descr fd in
      let roundtrip op =
        send_op oc op;
        match Json.of_string_opt (input_line ic) with
        | Some doc -> doc
        | None ->
          Alcotest.failf "reply to %s did not parse"
            (Json.to_string (Protocol.op_to_json op))
      in
      let key = ("born_in", "Ruth Gruber", "W", "Brooklyn", "P") in
      ignore
        (roundtrip
           (Protocol.Ingest [ (("born_in", "X", "W", "Springfield", "P"), 0.7) ]));
      ignore (roundtrip (Protocol.Query key));
      ignore (roundtrip (Protocol.Query_local { key; budget = None }));
      ignore (roundtrip (Protocol.Stats));
      (* The in-band scrape: the metrics op answers the merged summary,
         including the requests that preceded it. *)
      let mreply = roundtrip Protocol.Metrics in
      (match Json.member "metrics" mreply with
      | Some m ->
        let sum = Summary.of_json_string (Json.to_string m) in
        check_bool "in-band summary counts the prior requests" true
          (Summary.counter sum "serve.requests" >= 4);
        check_bool "in-band summary carries request histograms" true
          (Summary.hist sum "serve.request_seconds" <> None)
      | None -> Alcotest.fail "metrics reply has no metrics member");
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      (* Client-side count: 5 ops, all replied to — and telemetry is
         recorded before each reply is written, so the scrape agrees. *)
      let n_ops = 5 in
      let sum = Summary.of_trace (Server.trace srv) in
      check_int "scraped request count = client-side count" n_ops
        (Summary.counter sum "serve.requests");
      check_bool "every request is in the latency histogram" true
        (match Summary.hist sum "serve.request_seconds" with
        | Some h -> Obs.Hist.count h = n_ops
        | None -> false);
      check_bool "per-op series recorded" true
        (match Summary.hist sum "serve.request_seconds|op=query_local" with
        | Some h -> Obs.Hist.count h = 1
        | None -> false);
      (* Prometheus exposition. *)
      let text = Server.metrics_text srv in
      List.iter
        (fun needle ->
          check_bool (Printf.sprintf "exposition contains %S" needle) true
            (contains text needle))
        [
          "# TYPE serve_requests_total counter";
          Printf.sprintf "serve_requests_total %d" n_ops;
          "# TYPE serve_request_seconds histogram";
          "serve_request_seconds_bucket{op=\"query_local\",le=\"+Inf\"} 1";
          "serve_request_seconds_count{op=\"query_local\"} 1";
          "# TYPE serve_epoch_lag gauge";
          "serve_epoch_lag 0";
          "serve_epoch_lag_dist_count 1";
          "serve_apply_seconds_count 1";
        ];
      (* /statusz. *)
      let st = Server.status_json srv in
      check_bool "statusz epoch is the committed epoch" true
        (Json.member "epoch" st = Some (Json.Int 1));
      check_bool "statusz counts requests" true
        (Json.member "requests" st = Some (Json.Int n_ops));
      check_bool "statusz counts the slow requests" true
        (Json.member "slow_requests" st = Some (Json.Int n_ops));
      check_bool "statusz has memory figures" true
        (match Json.member "mem" st with Some (Json.Obj _) -> true | _ -> false);
      check_bool "statusz has per-op latency digests" true
        (match Json.member "request_seconds" st with
        | Some (Json.Obj kv) ->
          List.mem_assoc "all" kv && List.mem_assoc "query_local" kv
        | _ -> false);
      Server.stop srv;
      close_out log_oc;
      (* The access log: one record per request, unique ids, and — with
         slow_ms 0 — span subtrees on every record; the query_local one
         carries the grounding walk's attributes. *)
      let ic = open_in log_path in
      let records = ref [] in
      (try
         while true do
           records := Json.of_string (input_line ic) :: !records
         done
       with End_of_file -> ());
      close_in ic;
      let records = List.rev !records in
      check_int "one access record per request" n_ops (List.length records);
      let ids =
        List.filter_map
          (fun r ->
            match Json.member "id" r with Some (Json.Int i) -> Some i | _ -> None)
          records
      in
      check_int "every record has an id" n_ops (List.length ids);
      check_bool "ids are unique" true
        (List.sort_uniq compare ids = List.sort compare ids
        && List.length (List.sort_uniq compare ids) = n_ops);
      List.iter
        (fun r ->
          check_bool "record marked slow at threshold 0" true
            (Json.member "slow" r = Some (Json.Bool true));
          check_bool "slow record carries spans" true
            (Json.member "spans" r <> None))
        records;
      let ql =
        List.find_opt
          (fun r -> Json.member "op" r = Some (Json.String "query_local"))
          records
      in
      match ql with
      | None -> Alcotest.fail "no access record for query_local"
      | Some r -> (
        match Json.member "spans" r with
        | Some spans ->
          let text = Json.to_string spans in
          List.iter
            (fun needle ->
              check_bool
                (Printf.sprintf "slow-query subtree carries %S" needle)
                true (contains text needle))
            [ "serve.request"; "query_local"; "hops"; "boundary"; "pruned_mass" ]
        | None -> Alcotest.fail "query_local record has no spans"))

let () =
  Alcotest.run "serve"
    [
      ( "codec",
        [
          Alcotest.test_case "ops round-trip the wire" `Quick
            test_codec_roundtrip;
          Alcotest.test_case "malformed input" `Quick test_codec_errors;
          Alcotest.test_case "read resolution never interns" `Quick
            test_resolve_reads_never_intern;
          Alcotest.test_case "session-mode step" `Quick
            test_step_session_semantics;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "freeze = live, bitwise" `Quick
            test_freeze_equals_live;
          Alcotest.test_case "immutable across epochs" `Quick
            test_snapshot_immutable_across_epochs;
          Alcotest.test_case "engine sees session rule edits" `Quick
            test_engine_sees_session_rule_edits;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "readers = serial replay" `Quick
            test_concurrent_readers_differential;
        ] );
      ( "server",
        [
          Alcotest.test_case "end to end over a socket" `Quick
            test_server_end_to_end;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "admin HTTP listener" `Quick test_admin_http;
          Alcotest.test_case "metrics, statusz and access logs" `Quick
            test_server_telemetry;
        ] );
    ]
